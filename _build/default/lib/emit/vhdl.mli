(** VHDL-93 netlist emitter.

    Renders an elaborated circuit as one entity/architecture pair using
    [ieee.numeric_std].  All ports and signals are [std_logic_vector]s; an
    implicit rising-edge clock port [clk] drives every register.  Register
    initial values are emitted as signal defaults — the simulation-oriented
    style the paper's VHDL blocks used. *)

val emit : Hdl.Circuit.t -> string
val write : out_channel -> Hdl.Circuit.t -> unit
