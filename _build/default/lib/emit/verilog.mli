(** Verilog-2001 netlist emitter.

    One module per circuit; an implicit [clk] port clocks every register;
    register initial values are emitted as [initial] blocks (simulation
    style, matching the paper's event-driven simulation setup). *)

val emit : Hdl.Circuit.t -> string
val write : out_channel -> Hdl.Circuit.t -> unit
