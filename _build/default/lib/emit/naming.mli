(** Identifier assignment shared by the HDL emitters: inputs, outputs and
    named internal nodes keep their (sanitized) declared names; everything
    else becomes ["n<uid>"].  Clashes are uniquified. *)

val sanitize : string -> string
(** Replace characters illegal in VHDL/Verilog identifiers and guard
    against leading digits. *)

type t

val build : Hdl.Circuit.t -> t
val name : t -> Hdl.Signal.t -> string
