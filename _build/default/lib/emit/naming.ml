(* Shared identifier table for the HDL emitters: inputs and outputs keep
   their (sanitized) declared names, every other node gets "n<uid>". *)

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" || not ((s.[0] >= 'a' && s.[0] <= 'z') || (s.[0] >= 'A' && s.[0] <= 'Z'))
  then "s_" ^ s
  else s

type t = (int, string) Hashtbl.t

let build circuit : t =
  let tbl = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let claim id name =
    let name = if Hashtbl.mem used name then Printf.sprintf "%s_u%d" name id else name in
    Hashtbl.replace used name ();
    Hashtbl.replace tbl id name
  in
  List.iter
    (fun s -> claim (Hdl.Signal.uid s) (sanitize (Hdl.Signal.name_of s)))
    (Hdl.Circuit.inputs circuit @ Hdl.Circuit.outputs circuit);
  (* keep user-declared register and wire names where possible *)
  Array.iter
    (fun s ->
      let id = Hdl.Signal.uid s in
      if not (Hashtbl.mem tbl id) then
        match s with
        | Hdl.Signal.Reg { name = Some n; _ } | Hdl.Signal.Wire { name = Some n; _ }
          ->
            claim id (sanitize n)
        | _ -> ())
    (Hdl.Circuit.nodes circuit);
  Array.iter
    (fun s ->
      let id = Hdl.Signal.uid s in
      if not (Hashtbl.mem tbl id) then claim id (Printf.sprintf "n%d" id))
    (Hdl.Circuit.nodes circuit);
  tbl

let name (t : t) s = Hashtbl.find t (Hdl.Signal.uid s)
