lib/emit/verilog.ml: Array Bits Bitvec Buffer Hdl List Naming Printf String
