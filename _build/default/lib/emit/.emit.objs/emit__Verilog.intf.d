lib/emit/verilog.mli: Hdl
