lib/emit/naming.mli: Hdl
