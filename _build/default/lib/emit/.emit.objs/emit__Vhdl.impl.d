lib/emit/vhdl.ml: Array Bits Bitvec Buffer Hdl List Naming Printf String
