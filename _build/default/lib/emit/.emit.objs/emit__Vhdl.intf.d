lib/emit/vhdl.mli: Hdl
