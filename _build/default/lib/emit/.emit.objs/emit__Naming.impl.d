lib/emit/naming.ml: Array Buffer Hashtbl Hdl List Printf String
