(** Protocol-level waveforms.

    Dumps the skeleton's wire activity — per channel: consumer-side
    [valid], [stop] and the payload — as a standard VCD file, so the
    Fig. 1/Fig. 2 evolutions can be inspected in GTKWave next to the RTL
    simulation's waves. *)

val record : ?cycles:int -> Engine.t -> out:out_channel -> unit
(** Advance the engine [cycles] steps (default 64), writing one VCD sample
    per cycle. *)

val to_string : ?cycles:int -> Engine.t -> string
