(** Zero-latency reference semantics.

    The design a LID must be equivalent to: the same network with all relay
    stations removed and ideal channels, where every pearl fires every
    cycle.  Latency insensitivity (the paper's safety notion) says the LID
    produces {e exactly the same value streams} at every sink, merely
    spread over more cycles — checked by {!Equiv}. *)

type t

val create : Topology.Network.t -> t
val step : t -> unit
val run : t -> cycles:int -> unit
val cycle : t -> int

val sink_values : t -> Topology.Network.node_id -> int list
(** One value per elapsed cycle, oldest first. *)
