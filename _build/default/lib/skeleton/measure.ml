module Net = Topology.Network

type report = {
  transient : int;
  period : int;
  node_throughput : (Net.node_id * float) list;
  sink_throughput : (Net.node_id * float) list;
  deadlocked : bool;
}

let find_repeat ?(max_cycles = 100_000) engine =
  let seen = Hashtbl.create 1024 in
  let rec go () =
    let s = Engine.signature engine in
    match Hashtbl.find_opt seen s with
    | Some first -> Some (first, Engine.cycle engine - first)
    | None ->
        if Engine.cycle engine - 0 > max_cycles then None
        else begin
          Hashtbl.add seen s (Engine.cycle engine);
          Engine.step engine;
          go ()
        end
  in
  go ()

let transient_and_period ?max_cycles engine = find_repeat ?max_cycles engine

let analyze ?max_cycles engine =
  match find_repeat ?max_cycles engine with
  | None -> None
  | Some (transient, period) ->
      let net = Engine.network engine in
      let shellish =
        List.filter
          (fun (n : Net.node) ->
            match n.kind with Net.Shell _ | Net.Source _ -> true | Net.Sink _ -> false)
          (Net.nodes net)
      in
      let sinks = Net.sinks net in
      let fired0 = List.map (fun (n : Net.node) -> (n.id, Engine.fired_count engine n.id)) shellish in
      let sunk0 = List.map (fun (n : Net.node) -> (n.id, Engine.sink_count engine n.id)) sinks in
      Engine.run engine ~cycles:period;
      let rate before count =
        float_of_int (count - before) /. float_of_int period
      in
      let node_throughput =
        List.map
          (fun (id, before) -> (id, rate before (Engine.fired_count engine id)))
          fired0
      in
      let sink_throughput =
        List.map
          (fun (id, before) -> (id, rate before (Engine.sink_count engine id)))
          sunk0
      in
      let deadlocked =
        node_throughput <> [] && List.for_all (fun (_, r) -> r = 0.) node_throughput
      in
      Some { transient; period; node_throughput; sink_throughput; deadlocked }

let system_throughput r =
  let net_rates = List.map snd r.node_throughput in
  match net_rates with
  | [] -> 0.
  | x :: rest -> List.fold_left min x rest

let pp_report net fmt r =
  Format.fprintf fmt "transient=%d period=%d%s@." r.transient r.period
    (if r.deadlocked then " DEADLOCK" else "");
  List.iter
    (fun (id, rate) ->
      Format.fprintf fmt "  %-12s throughput %.4f@." (Net.node net id).name rate)
    r.node_throughput;
  List.iter
    (fun (id, rate) ->
      Format.fprintf fmt "  %-12s consumes   %.4f@." (Net.node net id).name rate)
    r.sink_throughput
