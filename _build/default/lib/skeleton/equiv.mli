(** Latency equivalence check.

    "A LIP implementation is safe iff any composition of blocks will behave
    in a latency insensitive sense exactly as an equally connected system
    without shells and non-pipelined connections."  Concretely: at every
    sink, the sequence of valid values the LID delivers must be a prefix of
    the value sequence the zero-latency reference delivers. *)

type mismatch = {
  sink : string;
  position : int;
  expected : int option;  (** [None]: the LID produced surplus values *)
  got : int;
}

type result = Equivalent of { checked : int } | Divergent of mismatch

val check :
  ?flavour:Lid.Protocol.flavour ->
  ?cycles:int ->
  Topology.Network.t ->
  result
(** Runs the LID for [cycles] (default 300) and the reference long enough,
    then compares per sink.  [checked] is the total number of compared
    values across sinks. *)

val check_engine : Engine.t -> Reference.t -> result
(** Compare two already-run simulations (engine and reference must be over
    the same network). *)
