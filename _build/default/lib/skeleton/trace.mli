(** Evolution traces in the style of the paper's Fig. 1 / Fig. 2.

    Each row is one clock cycle; each shell/source column shows the tokens
    standing on its outputs ("n" for void, as in the paper), decorated with
    [*] when the node fires and [!] when a stop gates it; relay-station
    columns show the stored tokens; sink columns show what was consumed. *)

type t

val record : ?cycles:int -> Engine.t -> t
(** Advance the engine by [cycles] (default 16), recording a snapshot per
    cycle. *)

val render : t -> string
(** An aligned ASCII table. *)

val snapshots : t -> Engine.snapshot list

val output_row : t -> sink:string -> Lid.Token.t list
(** The consumption sequence of one sink across the recorded window
    (["Out=..."] row of the paper's figures). *)
