(** Self-checking VHDL testbenches.

    The paper validated its implementation by simulating "a VHDL
    description of all blocks" with an event-driven simulator.  This module
    regenerates that flow for any network: the protocol skeleton computes
    the expected cycle-by-cycle wire activity at every sink, and the
    generated testbench drives the elaborated RTL (entity [lid_system],
    see {!Topology.Rtl_net}) with the sinks' stall patterns while asserting
    the expected [valid]/[data] sequences.  Any divergence between the
    emitted hardware and the protocol model fails the VHDL simulation. *)

val vhdl :
  ?flavour:Lid.Protocol.flavour ->
  ?data_width:int ->
  ?cycles:int ->
  Topology.Network.t ->
  string
(** The testbench entity ([lid_system_tb]) as VHDL-93 text; [cycles]
    (default 64) is the length of the checked window.  Pair it with
    [Emit.Vhdl.emit (Topology.Rtl_net.of_network net)] in one file set. *)

val bundle :
  ?flavour:Lid.Protocol.flavour ->
  ?data_width:int ->
  ?cycles:int ->
  Topology.Network.t ->
  string
(** DUT then testbench, concatenated — a single self-contained file for a
    VHDL simulator. *)
