module Net = Topology.Network

type node_state =
  | R_shell of {
      pearl : Lid.Pearl.t;
      mutable st : int array;
      mutable out : int array;
    }
  | R_source of { mutable next_val : int; mutable out : int }
  | R_sink of { mutable got_rev : int list }

type t = {
  net : Net.t;
  impls : node_state array;
  mutable cycle : int;
}

let create net =
  let impls =
    Array.of_list
      (List.map
         (fun (n : Net.node) ->
           match n.kind with
           | Net.Shell pearl ->
               R_shell
                 {
                   pearl;
                   st = Array.copy pearl.Lid.Pearl.init_state;
                   out = Array.copy pearl.Lid.Pearl.initial_output;
                 }
           | Net.Source { start; _ } ->
               R_source { next_val = start + 1; out = start }
           | Net.Sink _ -> R_sink { got_rev = [] })
         (Net.nodes net))
  in
  { net; impls; cycle = 0 }

let presented t node port =
  match t.impls.(node) with
  | R_shell s -> s.out.(port)
  | R_source s -> s.out
  | R_sink _ -> invalid_arg "Reference: sink has no outputs"

let step t =
  let input_values node =
    Array.map
      (fun (e : Net.edge) -> presented t e.src.node e.src.port)
      (Net.in_edges t.net node)
  in
  let updates =
    Array.mapi
      (fun node impl ->
        match impl with
        | R_shell s ->
            let st', out = Lid.Pearl.apply s.pearl ~state:s.st ~inputs:(input_values node) in
            fun () ->
              s.st <- st';
              s.out <- out
        | R_source s ->
            fun () ->
              s.out <- s.next_val;
              s.next_val <- s.next_val + 1
        | R_sink s ->
            let v = (input_values node).(0) in
            fun () -> s.got_rev <- v :: s.got_rev)
      t.impls
  in
  Array.iter (fun f -> f ()) updates;
  t.cycle <- t.cycle + 1

let run t ~cycles =
  for _ = 1 to cycles do
    step t
  done

let cycle t = t.cycle

let sink_values t node =
  match t.impls.(node) with
  | R_sink s -> List.rev s.got_rev
  | _ -> invalid_arg "Reference.sink_values: not a sink"
