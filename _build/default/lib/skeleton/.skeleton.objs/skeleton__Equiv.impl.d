lib/skeleton/equiv.ml: Engine Reference Topology
