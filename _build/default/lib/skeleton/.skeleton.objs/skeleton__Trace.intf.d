lib/skeleton/trace.mli: Engine Lid
