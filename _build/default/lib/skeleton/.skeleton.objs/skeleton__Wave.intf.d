lib/skeleton/wave.mli: Engine
