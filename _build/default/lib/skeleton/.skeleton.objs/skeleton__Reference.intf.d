lib/skeleton/reference.mli: Topology
