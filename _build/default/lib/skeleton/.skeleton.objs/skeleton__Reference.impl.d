lib/skeleton/reference.ml: Array Lid List Topology
