lib/skeleton/cure.mli: Lid Measure Topology
