lib/skeleton/engine.mli: Lid Topology
