lib/skeleton/cure.ml: Engine Lid List Measure Option Stdlib Topology
