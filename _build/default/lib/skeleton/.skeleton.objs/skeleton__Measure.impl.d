lib/skeleton/measure.ml: Engine Format Hashtbl List Topology
