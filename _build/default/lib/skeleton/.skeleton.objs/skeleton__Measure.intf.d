lib/skeleton/measure.mli: Engine Format Topology
