lib/skeleton/testbench.mli: Lid Topology
