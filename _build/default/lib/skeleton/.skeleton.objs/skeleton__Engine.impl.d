lib/skeleton/engine.ml: Array Buffer Char Lid List Printf Topology
