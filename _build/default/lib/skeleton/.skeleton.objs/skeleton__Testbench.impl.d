lib/skeleton/testbench.ml: Array Buffer Emit Engine Lid List Option Printf Topology
