lib/skeleton/trace.ml: Array Engine Lid List Printf String
