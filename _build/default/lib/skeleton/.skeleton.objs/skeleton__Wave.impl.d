lib/skeleton/wave.ml: Char Engine Filename In_channel Lid List Option Printf String Sys Topology
