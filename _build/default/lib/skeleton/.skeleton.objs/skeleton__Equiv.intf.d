lib/skeleton/equiv.mli: Engine Lid Reference Topology
