(** Steady-state measurement by periodicity detection.

    A closed LID system with periodic environments is a deterministic
    finite-state machine at skeleton level, so its valid/stop behaviour is
    eventually periodic — the paper's "after a number of clock cycles ...
    each part of it behaves in a periodic fashion".  We detect the cycle by
    hashing the skeleton signature, then measure throughput over exactly one
    period. *)

type report = {
  transient : int;  (** first cycle of the periodic regime *)
  period : int;
  node_throughput : (Topology.Network.node_id * float) list;
      (** firings per cycle over one period, for shells and sources *)
  sink_throughput : (Topology.Network.node_id * float) list;
      (** valid tokens consumed per cycle over one period *)
  deadlocked : bool;
      (** no shell or source fires at all during the periodic regime *)
}

val analyze : ?max_cycles:int -> Engine.t -> report option
(** Runs the engine from its current state until the skeleton state repeats
    (or [max_cycles], default 100_000, elapse — in which case [None]).
    The engine is left somewhere inside the periodic regime. *)

val system_throughput : report -> float
(** Minimum firing rate over all shells and sources — the figure the paper
    calls system throughput (in a connected steady state all nodes settle
    to the same rate; the minimum is the conservative reading). *)

val transient_and_period : ?max_cycles:int -> Engine.t -> (int * int) option

val pp_report : Topology.Network.t -> Format.formatter -> report -> unit
