module Net = Topology.Network
module Token = Lid.Token

type track = {
  code_valid : string;
  code_stop : string;
  code_data : string;
  mutable last : (bool * bool * int) option;
}

let code_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let record ?(cycles = 64) engine ~out =
  let net = Engine.network engine in
  let pr fmt = Printf.fprintf out fmt in
  pr "$date today $end\n$version lid-repro skeleton waves $end\n";
  pr "$timescale 1ns $end\n$scope module skeleton $end\n";
  let next_code =
    let c = ref 0 in
    fun () ->
      let s = code_of_index !c in
      incr c;
      s
  in
  let tracks =
    List.map
      (fun (e : Net.edge) ->
        let label =
          Printf.sprintf "%s_to_%s_e%d" (Net.node net e.src.node).name
            (Net.node net e.dst.node).name e.id
        in
        let t =
          {
            code_valid = next_code ();
            code_stop = next_code ();
            code_data = next_code ();
            last = None;
          }
        in
        pr "$var wire 1 %s %s_valid $end\n" t.code_valid label;
        pr "$var wire 1 %s %s_stop $end\n" t.code_stop label;
        pr "$var wire 16 %s %s_data $end\n" t.code_data label;
        (e.id, t))
      (Net.edges net)
  in
  pr "$upscope $end\n$enddefinitions $end\n";
  for time = 0 to cycles - 1 do
    let snap = Engine.snapshot_next engine in
    let changes = ref [] in
    List.iter
      (fun (eid, tok, stop) ->
        let t = List.assoc eid tracks in
        let valid = Token.is_valid tok in
        let data = Option.value ~default:0 (Token.value_opt tok) land 0xffff in
        match t.last with
        | Some (v, s, d) when v = valid && s = stop && d = data -> ()
        | _ ->
            t.last <- Some (valid, stop, data);
            changes := (t, valid, stop, data) :: !changes)
      snap.Engine.chan_dst;
    if !changes <> [] then begin
      pr "#%d\n" time;
      List.iter
        (fun (t, valid, stop, data) ->
          pr "%c%s\n" (if valid then '1' else '0') t.code_valid;
          pr "%c%s\n" (if stop then '1' else '0') t.code_stop;
          let bin =
            String.init 16 (fun i -> if (data lsr (15 - i)) land 1 = 1 then '1' else '0')
          in
          pr "b%s %s\n" bin t.code_data)
        !changes
    end
  done;
  flush out

let to_string ?cycles engine =
  let path = Filename.temp_file "lid_wave" ".vcd" in
  let oc = open_out path in
  record ?cycles engine ~out:oc;
  close_out oc;
  let text = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  text
