(** Deadlock decision and low-intrusive cures.

    The paper's procedure: apply the static rules; when they leave a
    potential deadlock (half relay stations in loops), simulate the
    skeleton until the transient dies out — "either the deadlock will show,
    or will be forever avoided".  When it shows, the remedy is "adding /
    substituting few relay stations": we search for a minimal set of
    half-to-full substitutions on loop channels that removes the
    deadlock. *)

type decision = {
  verdict : Topology.Deadlock.verdict;
  simulated : Measure.report option;
      (** [None] when the static rules already guarantee liveness *)
  deadlocked : bool;
}

val decide :
  ?flavour:Lid.Protocol.flavour ->
  ?max_cycles:int ->
  Topology.Network.t ->
  decision
(** [max_cycles] defaults to {!Topology.Analysis.transient_bound} plus
    slack; the skeleton's periodicity makes the answer exact. *)

type substitution = { edge : Topology.Network.edge_id; station_index : int }

type cure_result =
  | Already_live
  | Cured of { network : Topology.Network.t; substitutions : substitution list }
  | Not_cured

val cure :
  ?flavour:Lid.Protocol.flavour ->
  ?max_cycles:int ->
  Topology.Network.t ->
  cure_result
(** Greedily upgrades half stations on loops to full stations until the
    skeleton simulation reports liveness. *)
