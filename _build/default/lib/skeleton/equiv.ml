module Net = Topology.Network

type mismatch = {
  sink : string;
  position : int;
  expected : int option;
  got : int;
}

type result = Equivalent of { checked : int } | Divergent of mismatch

let compare_streams ~sink_name ~reference ~lid =
  let rec go i ref_s lid_s =
    match (ref_s, lid_s) with
    | _, [] -> Ok i
    | [], got :: _ ->
        Error { sink = sink_name; position = i; expected = None; got }
    | e :: ref_rest, got :: lid_rest ->
        if e = got then go (i + 1) ref_rest lid_rest
        else Error { sink = sink_name; position = i; expected = Some e; got }
  in
  go 0 reference lid

let check_engine engine reference =
  let net = Engine.network engine in
  let rec across checked = function
    | [] -> Equivalent { checked }
    | (n : Net.node) :: rest -> (
        match
          compare_streams ~sink_name:n.name
            ~reference:(Reference.sink_values reference n.id)
            ~lid:(Engine.sink_values engine n.id)
        with
        | Ok k -> across (checked + k) rest
        | Error m -> Divergent m)
  in
  across 0 (Net.sinks net)

let check ?flavour ?(cycles = 300) net =
  let engine = Engine.create ?flavour net in
  Engine.run engine ~cycles;
  let reference = Reference.create net in
  (* The reference delivers one value per cycle, so [cycles] reference
     cycles dominate whatever the LID managed to deliver. *)
  Reference.run reference ~cycles;
  check_engine engine reference
