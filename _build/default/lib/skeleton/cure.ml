module Net = Topology.Network

type decision = {
  verdict : Topology.Deadlock.verdict;
  simulated : Measure.report option;
  deadlocked : bool;
}

let default_budget net = (4 * Topology.Analysis.transient_bound net) + 1000

let decide ?flavour ?max_cycles net =
  let verdict = Topology.Deadlock.static_verdict net in
  if Topology.Deadlock.is_statically_safe verdict then
    { verdict; simulated = None; deadlocked = false }
  else begin
    let max_cycles = Option.value max_cycles ~default:(default_budget net) in
    let engine = Engine.create ?flavour net in
    match Measure.analyze ~max_cycles engine with
    | Some report ->
        { verdict; simulated = Some report; deadlocked = report.deadlocked }
    | None ->
        (* No periodicity within budget: treat conservatively as stuck. *)
        { verdict; simulated = None; deadlocked = true }
  end

type substitution = { edge : Net.edge_id; station_index : int }

type cure_result =
  | Already_live
  | Cured of { network : Net.t; substitutions : substitution list }
  | Not_cured

let half_stations_on_loops net =
  match Topology.Deadlock.static_verdict net with
  | Topology.Deadlock.Safe_feedforward | Topology.Deadlock.Safe_full_only -> []
  | Topology.Deadlock.Potential { half_in_loops } ->
      let loop_nodes =
        List.concat_map fst half_in_loops |> List.sort_uniq Stdlib.compare
      in
      List.concat_map
        (fun (e : Net.edge) ->
          if List.mem e.src.node loop_nodes && List.mem e.dst.node loop_nodes
          then
            List.mapi (fun i k -> (i, k)) e.stations
            |> List.filter_map (fun (i, k) ->
                   if k = Lid.Relay_station.Half then
                     Some { edge = e.id; station_index = i }
                   else None)
          else [])
        (Net.edges net)

let substitute net { edge; station_index } =
  let e = Net.edge net edge in
  let stations =
    List.mapi
      (fun i k -> if i = station_index then Lid.Relay_station.Full else k)
      e.stations
  in
  Net.with_stations net edge stations

let cure ?flavour ?max_cycles net =
  if not (decide ?flavour ?max_cycles net).deadlocked then Already_live
  else begin
    let rec go net applied =
      match half_stations_on_loops net with
      | [] -> Not_cured
      | candidate :: _ ->
          let net' = substitute net candidate in
          let applied = candidate :: applied in
          if not (decide ?flavour ?max_cycles net').deadlocked then
            Cured { network = net'; substitutions = List.rev applied }
          else go net' applied
    in
    go net []
  end
