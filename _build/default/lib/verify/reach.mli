(** Explicit-state reachability analysis (the SMV substitute).

    Breadth-first exploration with predecessor tracking, so that safety
    violations come with a shortest counterexample trace; liveness
    ("progress is always eventually possible") is decided by a backward
    closure over the reachable transition graph. *)

exception State_space_exceeded of int

type ('s, 'i) trace = ('i option * 's) list
(** A run: the first element pairs [None] with an initial state, each later
    element pairs the input applied with the state it produced. *)

type ('s, 'i) safety_outcome =
  | Holds of { states : int; transitions : int }
  | Fails of { trace : ('s, 'i) trace }

val check_invariant :
  ?max_states:int ->
  ('s, 'i) Fsm.t ->
  invariant:('s -> bool) ->
  ('s, 'i) safety_outcome
(** Default [max_states]: 1_000_000.  Raises {!State_space_exceeded} when
    exploration exceeds the bound without finding a violation. *)

type ('s, 'i) liveness_outcome =
  | Live of { states : int }
  | Wedged of { trace : ('s, 'i) trace }
      (** a reachable state from which no sequence of choices ever enables
          a progress transition again *)

val check_progress :
  ?max_states:int ->
  ('s, 'i) Fsm.t ->
  progress:('s -> 'i -> 's -> bool) ->
  ('s, 'i) liveness_outcome

val reachable_states : ?max_states:int -> ('s, 'i) Fsm.t -> int
