(** Reduced ordered binary decision diagrams.

    A small but complete ROBDD package in the style of the engines inside
    SMV — hash-consed nodes, memoized [ite], quantification and
    order-preserving renaming — used by {!Symbolic} for symbolic
    reachability over circuits.

    Variables are non-negative integers; the variable order is the natural
    integer order (smaller index closer to the root). *)

type man
(** A manager owns the node store and operation caches. *)

val create : ?size_hint:int -> unit -> man

type t
(** A node handle, canonical within its manager: structural equivalence is
    handle equality. *)

val tru : t
val fls : t
val equal : t -> t -> bool
val is_true : t -> bool
val is_false : t -> bool

val var : man -> int -> t
(** The function [fun env -> env v]. *)

val nvar : man -> int -> t
val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val imp : man -> t -> t -> t
val iff : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val exists : man -> int list -> t -> t
(** Existential quantification over the given variables. *)

val forall : man -> int list -> t -> t

val rename : man -> (int -> int) -> t -> t
(** Variable substitution; the mapping must be strictly monotone on the
    variables occurring in the BDD (checked), so the result stays
    ordered. *)

val eval : man -> t -> (int -> bool) -> bool

val sat_count : man -> n_vars:int -> t -> float
(** Number of satisfying assignments over the variable universe
    [0 .. n_vars-1]. *)

val any_sat : man -> t -> (int * bool) list
(** One satisfying partial assignment (empty for [tru]); raises
    [Not_found] on [fls]. *)

val node_count : man -> t -> int
(** Nodes reachable from [t] (a size measure). *)
