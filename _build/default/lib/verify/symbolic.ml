open Bitvec
module S = Hdl.Signal

type t = {
  circuit : Hdl.Circuit.t;
  man : Bdd.man;
  n_state_bits : int;
  reg_offset : (int, int) Hashtbl.t; (* reg uid -> bit offset *)
  input_vars : (int, int) Hashtbl.t; (* input uid -> first variable *)
  vectors : (int, Bdd.t array) Hashtbl.t; (* signal uid -> value bits *)
  all_input_vars : int list;
  mutable reached : Bdd.t option;
  mutable iterations : int;
}

let cur_var offset bit = 2 * (offset + bit)
let nxt_var offset bit = (2 * (offset + bit)) + 1

(* ------------------------------------------------------------------ *)
(* Bit-blasting.                                                       *)

let blast_add m a b ~carry_in =
  let w = Array.length a in
  let out = Array.make w Bdd.fls in
  let carry = ref carry_in in
  for i = 0 to w - 1 do
    let axb = Bdd.xor_ m a.(i) b.(i) in
    out.(i) <- Bdd.xor_ m axb !carry;
    carry := Bdd.or_ m (Bdd.and_ m a.(i) b.(i)) (Bdd.and_ m !carry axb)
  done;
  out

let blast_not m a = Array.map (Bdd.not_ m) a
let blast_sub m a b = blast_add m a (blast_not m b) ~carry_in:Bdd.tru

let blast_mul m a b =
  let w = Array.length a in
  let acc = ref (Array.make w Bdd.fls) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) masked by b_i *)
    let partial =
      Array.init w (fun j -> if j < i then Bdd.fls else Bdd.and_ m b.(i) a.(j - i))
    in
    acc := blast_add m !acc partial ~carry_in:Bdd.fls
  done;
  !acc

let blast_ult m a b =
  let lt = ref Bdd.fls in
  Array.iteri
    (fun i ai ->
      let e = Bdd.iff m ai b.(i) in
      lt := Bdd.or_ m (Bdd.and_ m (Bdd.not_ m ai) b.(i)) (Bdd.and_ m e !lt))
    a;
  !lt

let blast_eq m a b =
  let acc = ref Bdd.tru in
  Array.iteri (fun i ai -> acc := Bdd.and_ m !acc (Bdd.iff m ai b.(i))) a;
  !acc

let bit b = if b then Bdd.tru else Bdd.fls

let blast_const bits = Array.init (Bits.width bits) (fun i -> bit (Bits.get bits i))

(* equality of a vector against an integer constant *)
let vector_is m vec value =
  let acc = ref Bdd.tru in
  Array.iteri
    (fun i v ->
      let want = (value lsr i) land 1 = 1 in
      acc := Bdd.and_ m !acc (if want then v else Bdd.not_ m v))
    vec;
  !acc

let build_vectors t =
  let m = t.man in
  let vec s = Hashtbl.find t.vectors (S.uid s) in
  let set s v = Hashtbl.replace t.vectors (S.uid s) v in
  (* sources *)
  Array.iter
    (fun s ->
      match s with
      | S.Const { bits; _ } -> set s (blast_const bits)
      | S.Reg { width; _ } ->
          let off = Hashtbl.find t.reg_offset (S.uid s) in
          set s (Array.init width (fun i -> Bdd.var m (cur_var off i)))
      | S.Input { width; _ } ->
          let base = Hashtbl.find t.input_vars (S.uid s) in
          set s (Array.init width (fun i -> Bdd.var m (base + i)))
      | _ -> ())
    (Hdl.Circuit.nodes t.circuit);
  (* combinational nodes in topological order *)
  Array.iter
    (fun s ->
      let v =
        match s with
        | S.Const _ | S.Input _ | S.Reg _ -> assert false
        | S.Wire { driver = Some d; _ } -> vec d
        | S.Wire { driver = None; _ } -> invalid_arg "Symbolic: undriven wire"
        | S.Unop { op; a; _ } -> (
            let a = vec a in
            match op with
            | S.Op_not -> blast_not m a
            | S.Op_neg -> blast_sub m (Array.map (fun _ -> Bdd.fls) a) a
            | S.Op_reduce_or ->
                [| Array.fold_left (Bdd.or_ m) Bdd.fls a |]
            | S.Op_reduce_and ->
                [| Array.fold_left (Bdd.and_ m) Bdd.tru a |]
            | S.Op_reduce_xor ->
                [| Array.fold_left (Bdd.xor_ m) Bdd.fls a |])
        | S.Binop { op; a; b; _ } -> (
            let a = vec a and b = vec b in
            match op with
            | S.Op_add -> blast_add m a b ~carry_in:Bdd.fls
            | S.Op_sub -> blast_sub m a b
            | S.Op_mul -> blast_mul m a b
            | S.Op_and -> Array.map2 (Bdd.and_ m) a b
            | S.Op_or -> Array.map2 (Bdd.or_ m) a b
            | S.Op_xor -> Array.map2 (Bdd.xor_ m) a b
            | S.Op_eq -> [| blast_eq m a b |]
            | S.Op_ne -> [| Bdd.not_ m (blast_eq m a b) |]
            | S.Op_ult -> [| blast_ult m a b |]
            | S.Op_ule -> [| Bdd.not_ m (blast_ult m b a) |]
            | S.Op_slt ->
                let flip v =
                  let v = Array.copy v in
                  v.(Array.length v - 1) <- Bdd.not_ m v.(Array.length v - 1);
                  v
                in
                [| blast_ult m (flip a) (flip b) |])
        | S.Mux { sel; cases; _ } ->
            let sel = vec sel in
            let cases = List.map vec cases in
            let n = List.length cases in
            let rec chain i = function
              | [] -> assert false
              | [ last ] -> last
              | c :: rest ->
                  let rest_v = chain (i + 1) rest in
                  let cond = vector_is m sel i in
                  ignore n;
                  Array.init (Array.length c) (fun j ->
                      Bdd.ite m cond c.(j) rest_v.(j))
              in
            chain 0 cases
        | S.Concat { parts; _ } ->
            (* parts are msb-first; bit arrays are lsb-first *)
            Array.concat (List.rev_map vec parts)
        | S.Select { a; hi; lo; _ } ->
            let a = vec a in
            Array.sub a lo (hi - lo + 1)
      in
      set s v)
    (Hdl.Circuit.comb_order t.circuit)

(* ------------------------------------------------------------------ *)

let of_circuit circuit =
  let man = Bdd.create ~size_hint:4096 () in
  let reg_offset = Hashtbl.create 8 in
  let n_state_bits =
    Array.fold_left
      (fun off r ->
        Hashtbl.replace reg_offset (S.uid r) off;
        off + S.width r)
      0 (Hdl.Circuit.regs circuit)
  in
  let input_vars = Hashtbl.create 8 in
  let all_input_vars = ref [] in
  let next_input = ref (2 * n_state_bits) in
  List.iter
    (fun i ->
      Hashtbl.replace input_vars (S.uid i) !next_input;
      for v = !next_input to !next_input + S.width i - 1 do
        all_input_vars := v :: !all_input_vars
      done;
      next_input := !next_input + S.width i)
    (Hdl.Circuit.inputs circuit);
  let t =
    {
      circuit;
      man;
      n_state_bits;
      reg_offset;
      input_vars;
      vectors = Hashtbl.create 64;
      all_input_vars = List.rev !all_input_vars;
      reached = None;
      iterations = 0;
    }
  in
  build_vectors t;
  t

let man t = t.man

let find_named signals name =
  match
    List.find_opt (fun s -> S.name_of s = name) signals
  with
  | Some s -> s
  | None -> raise Not_found

let signal_vector t s =
  match Hashtbl.find_opt t.vectors (S.uid s) with
  | Some v -> Array.copy v
  | None -> invalid_arg "Symbolic.signal_vector: signal not in circuit"

let input_vector t name = signal_vector t (Hdl.Circuit.find_input t.circuit name)
let output_vector t name = signal_vector t (Hdl.Circuit.find_output t.circuit name)

let reg_vector t name =
  signal_vector t (find_named (Array.to_list (Hdl.Circuit.regs t.circuit)) name)

(* transition relation and initial state *)
let transition t =
  let m = t.man in
  Array.fold_left
    (fun acc r ->
      match r with
      | S.Reg { d = Some d; enable; width; _ } ->
          let off = Hashtbl.find t.reg_offset (S.uid r) in
          let dv = Hashtbl.find t.vectors (S.uid d) in
          let en =
            match enable with
            | None -> Bdd.tru
            | Some e -> (Hashtbl.find t.vectors (S.uid e)).(0)
          in
          let acc = ref acc in
          for i = 0 to width - 1 do
            let cur = Bdd.var m (cur_var off i) in
            let nxt = Bdd.var m (nxt_var off i) in
            let next_val = Bdd.ite m en dv.(i) cur in
            acc := Bdd.and_ m !acc (Bdd.iff m nxt next_val)
          done;
          !acc
      | _ -> invalid_arg "Symbolic: unbound register")
    Bdd.tru (Hdl.Circuit.regs t.circuit)

let initial_states t =
  let m = t.man in
  Array.fold_left
    (fun acc r ->
      match r with
      | S.Reg { reset_value; width; _ } ->
          let off = Hashtbl.find t.reg_offset (S.uid r) in
          let acc = ref acc in
          for i = 0 to width - 1 do
            let v = Bdd.var m (cur_var off i) in
            acc :=
              Bdd.and_ m !acc (if Bits.get reset_value i then v else Bdd.not_ m v)
          done;
          !acc
      | _ -> acc)
    Bdd.tru (Hdl.Circuit.regs t.circuit)

let current_vars t = List.init t.n_state_bits (fun i -> 2 * i)

let reachable t =
  match t.reached with
  | Some r -> r
  | None ->
      let m = t.man in
      let trans = transition t in
      let cur = current_vars t in
      let quantified = cur @ t.all_input_vars in
      (* rename next -> current: 2i+1 -> 2i, strictly monotone *)
      let back v =
        if v < 2 * t.n_state_bits then
          if v land 1 = 1 then v - 1
          else invalid_arg "Symbolic: current variable survived quantification"
        else v
      in
      let image set =
        Bdd.rename m back (Bdd.exists m quantified (Bdd.and_ m set trans))
      in
      let rec fixpoint reached frontier n =
        if Bdd.is_false frontier then (reached, n)
        else begin
          let next = image frontier in
          let fresh = Bdd.and_ m next (Bdd.not_ m reached) in
          fixpoint (Bdd.or_ m reached fresh) fresh (n + 1)
        end
      in
      let init = initial_states t in
      let r, n = fixpoint init init 0 in
      t.reached <- Some r;
      t.iterations <- n;
      r

let reachable_count t =
  let r = reachable t in
  (* the reachable set ranges over current-state variables 0,2,4,...; count
     over that sub-universe by halving out the unused odd slots *)
  let full = Bdd.sat_count t.man ~n_vars:(2 * t.n_state_bits) r in
  full /. (2.0 ** float_of_int t.n_state_bits)

let iterations t = t.iterations

type verdict =
  | Holds
  | Violation of { state : (string * Bits.t) list }

let check_invariant t prop =
  let m = t.man in
  let bad =
    Bdd.and_ m (reachable t) (Bdd.exists m t.all_input_vars (Bdd.not_ m prop))
  in
  if Bdd.is_false bad then Holds
  else begin
    let assignment = Bdd.any_sat m bad in
    let value_of v =
      match List.assoc_opt v assignment with Some b -> b | None -> false
    in
    let state =
      Array.to_list (Hdl.Circuit.regs t.circuit)
      |> List.map (fun r ->
             let off = Hashtbl.find t.reg_offset (S.uid r) in
             let bits =
               Bits.of_bool_array
                 (Array.init (S.width r) (fun i -> value_of (cur_var off i)))
             in
             (S.name_of r, bits))
    in
    Violation { state }
  end
