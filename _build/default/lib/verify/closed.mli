(** Exhaustive liveness analysis of small LID systems.

    The paper decides deadlock by simulating the skeleton under the given
    environment.  This module goes further for small systems: it explores
    {e all} environment behaviours (each cycle, every source may emit or
    idle and every sink may stop or accept, nondeterministically) and
    checks that from every reachable protocol state some continuation lets
    a shell fire again.  [Live] is therefore a proof of deadlock freedom
    for every environment; [Wedged] exhibits an adversarial schedule.

    Data values are abstracted away (the skeleton argument: valid/stop
    dynamics do not depend on payloads), so the model is finite.  Pearls
    must be value-insensitive in the weak sense that their state stays
    bounded on all-zero inputs — true of every pearl in {!Lid.Pearl}. *)

type choice = { src_active : bool array; sink_stall : bool array }
(** Indexed by node id; only source (resp. sink) slots are meaningful. *)

type state

val fsm :
  ?flavour:Lid.Protocol.flavour ->
  Topology.Network.t ->
  (state, choice) Fsm.t

val check_deadlock_free :
  ?flavour:Lid.Protocol.flavour ->
  ?max_states:int ->
  Topology.Network.t ->
  (state, choice) Reach.liveness_outcome
(** Progress = some shell fires. *)

val validity_signature : state -> string
(** The valid/void occupancy of every buffer and station — directly
    comparable with {!Skeleton.Engine.signature} up to the environment
    phase suffix (used by the cross-check tests). *)

val reachable_states :
  ?flavour:Lid.Protocol.flavour -> ?max_states:int -> Topology.Network.t -> int
