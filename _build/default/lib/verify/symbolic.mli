(** Symbolic (BDD-based) reachability over circuits — the engine family SMV
    itself belongs to.

    A circuit's registers become interleaved current/next state variables,
    its inputs free variables; every signal is bit-blasted into a vector of
    BDDs and the transition relation is the conjunction of the registers'
    update equations.  Reachability is the usual image-computation fixpoint,
    and invariants are checked against the reachable set, yielding a
    concrete witness state on violation.

    The test suite cross-validates the reachable-state counts against
    explicit enumeration via {!Rtl_model}, and E11 uses this engine to
    verify structural invariants of the generated relay stations. *)

type t

val of_circuit : Hdl.Circuit.t -> t
val man : t -> Bdd.man

val input_vector : t -> string -> Bdd.t array
(** The free variables of a named input (lsb first). *)

val reg_vector : t -> string -> Bdd.t array
(** The current-state variables of a named register. *)

val output_vector : t -> string -> Bdd.t array
(** A named output as functions of current state and inputs. *)

val signal_vector : t -> Hdl.Signal.t -> Bdd.t array

val reachable : t -> Bdd.t
(** The set of reachable register states (over current-state variables);
    computed once and cached. *)

val reachable_count : t -> float
val iterations : t -> int
(** Image steps until the fixpoint (after {!reachable} ran). *)

type verdict =
  | Holds
  | Violation of { state : (string * Bitvec.Bits.t) list }
      (** a reachable register assignment falsifying the property (for some
          input assignment) *)

val check_invariant : t -> Bdd.t -> verdict
(** The property may mention current-state and input variables; it must
    hold for {e all} inputs in {e every} reachable state. *)
