(** Pure functional semantics of an elaborated circuit.

    The simulation kernels in {!Sim} are imperative; explicit-state model
    checking needs immutable, hashable states.  This module compiles a
    circuit into a pure stepper whose state is the vector of register
    values — which lets {!Props.check_relay_station_rtl} explore the
    {e generated netlists} exhaustively, closing the gap between the
    verified abstract FSMs and the emitted hardware. *)

open Bitvec

type t

val of_circuit : Hdl.Circuit.t -> t

type state = Bits.t array
(** Register values, in [Hdl.Circuit.regs] order. *)

val initial : t -> state

val outputs :
  t -> state -> inputs:(string * Bits.t) list -> (string -> Bits.t)
(** Combinational evaluation: the settled value of each named output under
    the given input assignment.  Raises [Not_found] on unknown names. *)

val step : t -> state -> inputs:(string * Bits.t) list -> state
(** One clock edge. *)
