lib/verify/reach.mli: Fsm
