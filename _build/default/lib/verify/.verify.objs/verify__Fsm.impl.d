lib/verify/fsm.ml:
