lib/verify/rtl_model.ml: Array Bits Bitvec Hashtbl Hdl List Sim
