lib/verify/bdd.ml: Array Hashtbl List
