lib/verify/reach.ml: Array Fsm Hashtbl List Option Queue
