lib/verify/props.ml: Array Bits Bitvec Format Fsm Lid List Option Printf Reach Rtl_model String
