lib/verify/bdd.mli:
