lib/verify/fsm.mli:
