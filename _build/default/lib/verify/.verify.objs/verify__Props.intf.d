lib/verify/props.mli: Format Lid Reach
