lib/verify/rtl_model.mli: Bits Bitvec Hdl
