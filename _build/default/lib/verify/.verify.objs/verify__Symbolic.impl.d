lib/verify/symbolic.ml: Array Bdd Bits Bitvec Hashtbl Hdl List
