lib/verify/symbolic.mli: Bdd Bitvec Hdl
