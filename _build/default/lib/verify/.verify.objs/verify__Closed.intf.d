lib/verify/closed.mli: Fsm Lid Reach Topology
