lib/verify/closed.ml: Array Buffer Char Fsm Lid List Option Reach Topology
