(* Hash-consed ROBDDs with a memoized ternary [ite] kernel (Brace, Rudell,
   Bryant).  Node 0 is false, node 1 is true; internal nodes start at 2.
   The low/high children of node [n] live at [lo.(n)]/[hi.(n)] and its
   variable at [level.(n)]; terminals carry level [max_int] so variable
   comparisons need no special cases. *)

type t = int

type man = {
  mutable level : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable next : int; (* next free node slot *)
  unique : (int * int * int, int) Hashtbl.t; (* (level, lo, hi) -> node *)
  ite_cache : (int * int * int, int) Hashtbl.t;
  quant_cache : (int, int) Hashtbl.t; (* per-operation scratch, cleared *)
}

let tru = 1
let fls = 0
let equal (a : t) (b : t) = a = b
let is_true n = n = tru
let is_false n = n = fls

let create ?(size_hint = 1024) () =
  let cap = max size_hint 16 in
  let level = Array.make cap max_int in
  let lo = Array.make cap 0 in
  let hi = Array.make cap 0 in
  (* terminals *)
  level.(0) <- max_int;
  level.(1) <- max_int;
  {
    level;
    lo;
    hi;
    next = 2;
    unique = Hashtbl.create cap;
    ite_cache = Hashtbl.create cap;
    quant_cache = Hashtbl.create 64;
  }

let grow m =
  let cap = Array.length m.level * 2 in
  let extend a fill =
    let a' = Array.make cap fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  in
  m.level <- extend m.level max_int;
  m.lo <- extend m.lo 0;
  m.hi <- extend m.hi 0

(* the single node constructor: enforces reduction and sharing *)
let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> n
    | None ->
        if m.next >= Array.length m.level then grow m;
        let n = m.next in
        m.next <- n + 1;
        m.level.(n) <- v;
        m.lo.(n) <- lo;
        m.hi.(n) <- hi;
        Hashtbl.replace m.unique (v, lo, hi) n;
        n

let var m v =
  if v < 0 then invalid_arg "Bdd.var: negative variable";
  mk m v fls tru

let nvar m v =
  if v < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m v tru fls

let top m f g h =
  min m.level.(f) (min m.level.(g) m.level.(h))

let cofactors m v n =
  if m.level.(n) = v then (m.lo.(n), m.hi.(n)) else (n, n)

let rec ite m f g h =
  if f = tru then g
  else if f = fls then h
  else if g = h then g
  else if g = tru && h = fls then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some n -> n
    | None ->
        let v = top m f g h in
        let f0, f1 = cofactors m v f in
        let g0, g1 = cofactors m v g in
        let h0, h1 = cofactors m v h in
        let lo = ite m f0 g0 h0 in
        let hi = ite m f1 g1 h1 in
        let n = mk m v lo hi in
        Hashtbl.replace m.ite_cache key n;
        n

let not_ m f = ite m f fls tru
let and_ m f g = ite m f g fls
let or_ m f g = ite m f tru g
let xor_ m f g = ite m f (not_ m g) g
let imp m f g = ite m f g tru
let iff m f g = ite m f g (not_ m g)

let exists m vars f =
  let in_vars = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace in_vars v ()) vars;
  Hashtbl.reset m.quant_cache;
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt m.quant_cache f with
      | Some n -> n
      | None ->
          let v = m.level.(f) in
          let lo = go m.lo.(f) and hi = go m.hi.(f) in
          let n = if Hashtbl.mem in_vars v then or_ m lo hi else mk m v lo hi in
          Hashtbl.replace m.quant_cache f n;
          n
  in
  go f

let forall m vars f = not_ m (exists m vars (not_ m f))

let rename m map f =
  Hashtbl.reset m.quant_cache;
  let last_seen = ref (-1) in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt m.quant_cache f with
      | Some n -> n
      | None ->
          let v = map m.level.(f) in
          ignore !last_seen;
          let lo = go m.lo.(f) and hi = go m.hi.(f) in
          (* monotonicity check: children levels must stay below v *)
          let child_level n = if n < 2 then max_int else m.level.(n) in
          if child_level lo <= v || child_level hi <= v then
            invalid_arg "Bdd.rename: mapping is not order-preserving";
          let n = mk m v lo hi in
          Hashtbl.replace m.quant_cache f n;
          n
  in
  go f

let eval m f env =
  let rec go f =
    if f = tru then true
    else if f = fls then false
    else if env m.level.(f) then go m.hi.(f)
    else go m.lo.(f)
  in
  go f

let sat_count m ~n_vars f =
  let memo = Hashtbl.create 64 in
  (* counts over variables in [from, n_vars) *)
  let rec go f from =
    if from >= n_vars then if f = tru then 1.0 else if f = fls then 0.0 else
        invalid_arg "Bdd.sat_count: variable out of range"
    else if f < 2 then (if f = tru then 2.0 ** float_of_int (n_vars - from) else 0.0)
    else
      match Hashtbl.find_opt memo (f, from) with
      | Some c -> c
      | None ->
          let v = m.level.(f) in
          let c =
            if v > from then 2.0 *. go f (from + 1)
            else go m.lo.(f) (from + 1) +. go m.hi.(f) (from + 1)
          in
          Hashtbl.replace memo (f, from) c;
          c
  in
  go f 0

let any_sat m f =
  if f = fls then raise Not_found;
  let rec go f acc =
    if f < 2 then List.rev acc
    else if m.hi.(f) <> fls then go m.hi.(f) ((m.level.(f), true) :: acc)
    else go m.lo.(f) ((m.level.(f), false) :: acc)
  in
  go f []

let node_count m f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      go m.lo.(f);
      go m.hi.(f)
    end
  in
  go f;
  Hashtbl.length seen + if f < 2 then 1 else 2
