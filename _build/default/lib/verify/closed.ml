module Token = Lid.Token
module RS = Lid.Relay_station
module Net = Topology.Network

type choice = { src_active : bool array; sink_stall : bool array }

type node_state =
  | C_shell of Lid.Shell.state
  | C_source of Token.t
  | C_sink

type state = {
  nodes : node_state array;
  rs : RS.state array array;
  progressed : bool;  (** a shell fired in the transition producing this state *)
}

(* All data are the abstract value 0: only validity matters. *)
let zero_token = Token.valid 0

let initial_state ?(flavour = Lid.Protocol.Optimized) net =
  let nodes =
    Array.of_list
      (List.map
         (fun (n : Net.node) ->
           match n.kind with
           | Net.Shell pearl ->
               C_shell (Lid.Shell.initial (Lid.Shell.create ~flavour pearl))
           | Net.Source _ -> C_source zero_token
           | Net.Sink _ -> C_sink)
         (Net.nodes net))
  in
  let rs =
    Array.of_list
      (List.map
         (fun (e : Net.edge) ->
           Array.of_list (List.map RS.initial e.stations))
         (Net.edges net))
  in
  { nodes; rs; progressed = false }

(* One synchronous step under environment [choice]; mirrors
   [Skeleton.Engine] at validity granularity (cross-checked by the test
   suite). *)
let step_state ~flavour net st choice =
  let shells =
    Array.of_list
      (List.map
         (fun (n : Net.node) ->
           match n.kind with
           | Net.Shell pearl -> Some (Lid.Shell.create ~flavour pearl)
           | _ -> None)
         (Net.nodes net))
  in
  let n_nodes = Array.length st.nodes in
  let n_edges = Net.n_edges net in
  let present node port =
    match st.nodes.(node) with
    | C_shell sh -> Lid.Shell.present sh port
    | C_source buf -> buf
    | C_sink -> invalid_arg "Closed: sink output"
  in
  let dst_token = Array.make n_edges Token.void in
  let seg = Array.make n_edges [||] in
  List.iter
    (fun (e : Net.edge) ->
      let chain = st.rs.(e.id) in
      let s = Array.make (Array.length chain + 1) Token.void in
      s.(0) <- present e.src.node e.src.port;
      Array.iteri (fun j r -> s.(j + 1) <- RS.present r ~input:s.(j)) chain;
      seg.(e.id) <- s;
      dst_token.(e.id) <- s.(Array.length s - 1))
    (Net.edges net);
  let fire = Array.make n_nodes None in
  let rec fire_of node =
    match fire.(node) with
    | Some (Some f) -> f
    | Some None -> failwith "Closed: combinational stop cycle"
    | None ->
        fire.(node) <- Some None;
        let f =
          match st.nodes.(node) with
          | C_shell sh ->
              let shell = Option.get shells.(node) in
              let inputs =
                Array.map
                  (fun (e : Net.edge) -> dst_token.(e.id))
                  (Net.in_edges net node)
              in
              Lid.Shell.fires shell sh ~inputs ~out_stops:(out_stops node)
          | C_source buf ->
              let stop = (out_stops node).(0) in
              let gated =
                stop
                &&
                (match flavour with
                | Lid.Protocol.Original -> true
                | Lid.Protocol.Optimized -> Token.is_valid buf)
              in
              choice.src_active.(node) && not gated
          | C_sink -> false
        in
        fire.(node) <- Some (Some f);
        f
  and out_stops node =
    Array.map (fun (e : Net.edge) -> consumer_stop e) (Net.out_edges net node)
  and consumer_stop (e : Net.edge) =
    if st.rs.(e.id) <> [||] then RS.stop_upstream st.rs.(e.id).(0)
    else dst_stop e
  and dst_stop (e : Net.edge) =
    match st.nodes.(e.dst.node) with
    | C_sink -> choice.sink_stall.(e.dst.node)
    | C_shell _ ->
        if fire_of e.dst.node then false
        else (
          match flavour with
          | Lid.Protocol.Original -> true
          | Lid.Protocol.Optimized -> Token.is_valid dst_token.(e.id))
    | C_source _ -> invalid_arg "Closed: source input"
  in
  Array.iteri
    (fun node ns -> match ns with C_sink -> () | _ -> ignore (fire_of node))
    st.nodes;
  (* commit *)
  let rs' =
    Array.of_list
      (List.map
         (fun (e : Net.edge) ->
           let chain = st.rs.(e.id) in
           let m = Array.length chain in
           Array.init m (fun j ->
               let stop_in =
                 if j = m - 1 then dst_stop e
                 else RS.stop_upstream chain.(j + 1)
               in
               RS.step ~flavour chain.(j) ~input:seg.(e.id).(j) ~stop_in))
         (Net.edges net))
  in
  let progressed = ref false in
  let nodes' =
    Array.mapi
      (fun node ns ->
        match ns with
        | C_shell sh ->
            let shell = Option.get shells.(node) in
            let inputs =
              Array.map
                (fun (e : Net.edge) ->
                  (* abstract values to 0 to keep the space finite *)
                  if Token.is_valid dst_token.(e.id) then zero_token
                  else Token.void)
                (Net.in_edges net node)
            in
            if fire_of node then progressed := true;
            C_shell (Lid.Shell.step shell sh ~inputs ~out_stops:(out_stops node))
        | C_source buf ->
            if fire_of node then C_source zero_token
            else if Token.is_valid buf && (out_stops node).(0) then C_source buf
            else C_source Token.void
        | C_sink -> C_sink)
      st.nodes
  in
  (* Normalize shell buffers to the abstract value too. *)
  { nodes = nodes'; rs = rs'; progressed = !progressed }

let normalize st =
  let norm_tok t = if Token.is_valid t then zero_token else Token.void in
  { st with rs = Array.map (Array.map (RS.map_tokens norm_tok)) st.rs }

let validity_signature st =
  let buf = Buffer.create 64 in
  Array.iter
    (fun ns ->
      match ns with
      | C_shell sh ->
          Array.iter
            (fun tok -> Buffer.add_char buf (if Token.is_valid tok then 'v' else '.'))
            (Lid.Shell.presented sh)
      | C_source b -> Buffer.add_char buf (if Token.is_valid b then 'V' else '_')
      | C_sink -> Buffer.add_char buf 'k')
    st.nodes;
  Array.iter
    (fun chain ->
      Buffer.add_char buf '/';
      Array.iter
        (fun r ->
          Buffer.add_char buf (Char.chr (Char.code '0' + RS.occupancy r)))
        chain)
    st.rs;
  Buffer.contents buf

let fsm ?(flavour = Lid.Protocol.Optimized) net =
  let sources = Net.sources net and sinks = Net.sinks net in
  let n = Net.n_nodes net in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let r = subsets rest in
        List.map (fun s -> x :: s) r @ r
  in
  let choices =
    List.concat_map
      (fun (act : Net.node list) ->
        List.map
          (fun (stl : Net.node list) ->
            let src_active = Array.make n false in
            let sink_stall = Array.make n false in
            List.iter (fun (s : Net.node) -> src_active.(s.id) <- true) act;
            List.iter (fun (s : Net.node) -> sink_stall.(s.id) <- true) stl;
            { src_active; sink_stall })
          (subsets sinks))
      (subsets sources)
  in
  Fsm.create ~name:"closed LID system" ~initial:[ initial_state ~flavour net ]
    ~inputs:(fun _ -> choices)
    (fun st c -> normalize (step_state ~flavour net st c))

let check_deadlock_free ?flavour ?max_states net =
  Reach.check_progress ?max_states (fsm ?flavour net)
    ~progress:(fun _ _ s' -> s'.progressed)

let reachable_states ?flavour ?max_states net =
  Reach.reachable_states ?max_states (fsm ?flavour net)
