type ('s, 'i) t = {
  name : string;
  initial : 's list;
  inputs : 's -> 'i list;
  next : 's -> 'i -> 's;
}

let create ~name ~initial ~inputs next = { name; initial; inputs; next }
