open Bitvec

type t = {
  circuit : Hdl.Circuit.t;
  reg_index : (int, int) Hashtbl.t; (* reg uid -> state slot *)
}

type state = Bits.t array

let of_circuit circuit =
  let reg_index = Hashtbl.create 16 in
  Array.iteri
    (fun i r -> Hashtbl.replace reg_index (Hdl.Signal.uid r) i)
    (Hdl.Circuit.regs circuit);
  { circuit; reg_index }

let initial t =
  Array.map
    (fun r ->
      match r with
      | Hdl.Signal.Reg { reset_value; _ } -> reset_value
      | _ -> assert false)
    (Hdl.Circuit.regs t.circuit)

(* settle all combinational values for one cycle *)
let settle t state ~inputs =
  let values = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let s = Hdl.Circuit.find_input t.circuit (fst i) in
      if Bits.width (snd i) <> Hdl.Signal.width s then
        invalid_arg "Rtl_model: input width mismatch";
      Hashtbl.replace values (Hdl.Signal.uid s) (snd i))
    inputs;
  Array.iter
    (fun s ->
      match s with
      | Hdl.Signal.Const { bits; _ } ->
          Hashtbl.replace values (Hdl.Signal.uid s) bits
      | _ -> ())
    (Hdl.Circuit.nodes t.circuit);
  Array.iter
    (fun r ->
      Hashtbl.replace values (Hdl.Signal.uid r)
        state.(Hashtbl.find t.reg_index (Hdl.Signal.uid r)))
    (Hdl.Circuit.regs t.circuit);
  let lookup s =
    match Hashtbl.find_opt values (Hdl.Signal.uid s) with
    | Some v -> v
    | None -> invalid_arg ("Rtl_model: no value for " ^ Hdl.Signal.name_of s)
  in
  Array.iter
    (fun s ->
      Hashtbl.replace values (Hdl.Signal.uid s) (Sim.Eval.comb_node ~lookup s))
    (Hdl.Circuit.comb_order t.circuit);
  lookup

let outputs t state ~inputs =
  let lookup = settle t state ~inputs in
  fun name -> lookup (Hdl.Circuit.find_output t.circuit name)

let step t state ~inputs =
  let lookup = settle t state ~inputs in
  Array.mapi
    (fun i r ->
      Sim.Eval.reg_next ~lookup ~current:state.(i) r)
    (Hdl.Circuit.regs t.circuit)
