(** Finite state machines for explicit-state verification.

    A machine couples the system under verification with its environment:
    [inputs s] enumerates the environment's nondeterministic choices
    enabled in state [s], and [next] is the deterministic successor under a
    given choice.  States must support structural equality and hashing. *)

type ('s, 'i) t = {
  name : string;
  initial : 's list;
  inputs : 's -> 'i list;
  next : 's -> 'i -> 's;
}

val create :
  name:string -> initial:'s list -> inputs:('s -> 'i list) -> ('s -> 'i -> 's) ->
  ('s, 'i) t
