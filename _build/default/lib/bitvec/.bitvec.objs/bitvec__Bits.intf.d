lib/bitvec/bits.mli: Format
