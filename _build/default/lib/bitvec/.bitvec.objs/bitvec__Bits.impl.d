lib/bitvec/bits.ml: Array Bytes Format List Printf Seq Stdlib String
