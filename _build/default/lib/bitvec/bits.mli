(** Fixed-width bit vectors.

    [Bits.t] is the value domain of the HDL: an immutable vector of [width]
    bits, [width >= 1].  Bit 0 is the least significant bit.  All binary
    operations require operands of equal width and raise [Invalid_argument]
    otherwise; arithmetic is modulo [2^width]. *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] takes the low [width] bits of [n] (two's complement
    for negative [n]). *)

val of_bool : bool -> t
(** 1-bit vector: [true] is [1], [false] is [0]. *)

val of_string : string -> t
(** [of_string s] parses a binary literal, msb first, e.g. ["1010"].
    An optional ["0b"] prefix and [_] separators are accepted.
    Width is the number of binary digits.  Raises [Invalid_argument] on the
    empty string or other characters. *)

val of_bool_array : bool array -> t
(** [of_bool_array a] has width [Array.length a]; [a.(i)] is bit [i] (lsb
    first). *)

val random : width:int -> (int -> int) -> t
(** [random ~width rng] draws each 30-bit chunk from [rng bound]. *)

(** {1 Observation} *)

val width : t -> int
val get : t -> int -> bool
val to_int : t -> int
(** Value as a non-negative OCaml [int].  Raises [Invalid_argument] if the
    value does not fit in 62 bits. *)

val to_signed_int : t -> int
(** Two's-complement value.  Raises [Invalid_argument] if [width > 62]. *)

val to_string : t -> string
(** Binary digits, msb first. *)

val to_bool_array : t -> bool array
val is_zero : t -> bool
val is_ones : t -> bool
val popcount : t -> int
val msb : t -> bool
val lsb : t -> bool

(** {1 Bitwise operations} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Product modulo [2^width]; both operands must have the same width. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison; widths must match. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool

(** {1 Shifts} *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Structure} *)

val concat : msb:t -> lsb:t -> t
(** [concat ~msb ~lsb] has width [width msb + width lsb]; [lsb] occupies the
    low bits. *)

val select : t -> hi:int -> lo:int -> t
(** [select t ~hi ~lo] extracts bits [lo..hi] inclusive.
    Requires [0 <= lo <= hi < width t]. *)

val zero_extend : t -> width:int -> t
val sign_extend : t -> width:int -> t
val resize : t -> width:int -> t
(** Zero-extend or truncate to [width]. *)

val reduce_or : t -> bool
val reduce_and : t -> bool
val reduce_xor : t -> bool

val mux : sel:t -> t list -> t
(** [mux ~sel cases] picks [List.nth cases (to_int sel)]; out-of-range
    selectors pick the last case.  [cases] must be non-empty and of equal
    widths. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_hex : t -> string
