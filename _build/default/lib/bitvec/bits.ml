(* Bit vectors stored lsb-first in a [bytes]; the unused high bits of the
   last byte are kept at zero so that [equal]/[compare]/hashing can work on
   the raw bytes. *)

type t = { width : int; data : Bytes.t }

let nbytes width = (width + 7) / 8

let check_width w = if w < 1 then invalid_arg "Bits: width must be >= 1"

(* Mask away the unused bits of the top byte. *)
let normalize t =
  let rem = t.width land 7 in
  if rem <> 0 then begin
    let last = nbytes t.width - 1 in
    let m = (1 lsl rem) - 1 in
    Bytes.set_uint8 t.data last (Bytes.get_uint8 t.data last land m)
  end;
  t

let zero w =
  check_width w;
  { width = w; data = Bytes.make (nbytes w) '\000' }

let ones w =
  check_width w;
  normalize { width = w; data = Bytes.make (nbytes w) '\255' }

let width t = t.width

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.get: index out of range";
  Bytes.get_uint8 t.data (i lsr 3) land (1 lsl (i land 7)) <> 0

let set_bit data i b =
  let byte = Bytes.get_uint8 data (i lsr 3) in
  let mask = 1 lsl (i land 7) in
  Bytes.set_uint8 data (i lsr 3) (if b then byte lor mask else byte land lnot mask)

let init w f =
  let t = zero w in
  for i = 0 to w - 1 do
    if f i then set_bit t.data i true
  done;
  t

let of_int ~width:w n =
  check_width w;
  init w (fun i -> if i >= 62 then n < 0 else (n lsr i) land 1 = 1)

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let of_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  let digits =
    match digits with
    | '0' :: 'b' :: rest -> rest
    | ds -> ds
  in
  let n = List.length digits in
  if n = 0 then invalid_arg "Bits.of_string: empty literal";
  let t = zero n in
  List.iteri
    (fun j c ->
      match c with
      | '0' -> ()
      | '1' -> set_bit t.data (n - 1 - j) true
      | _ -> invalid_arg "Bits.of_string: expected only 0, 1, _")
    digits;
  t

let of_bool_array a =
  if Array.length a = 0 then invalid_arg "Bits.of_bool_array: empty array";
  init (Array.length a) (fun i -> a.(i))

let random ~width:w rng =
  check_width w;
  init w (fun _ -> rng 2 = 1)

let to_bool_array t = Array.init t.width (get t)

let to_int t =
  let v = ref 0 in
  for i = t.width - 1 downto 0 do
    if get t i then
      if i >= 62 then invalid_arg "Bits.to_int: value does not fit in an int"
      else v := !v lor (1 lsl i)
  done;
  !v

let to_signed_int t =
  if t.width > 62 then invalid_arg "Bits.to_signed_int: width > 62";
  let v = to_int t in
  if get t (t.width - 1) then v - (1 lsl t.width) else v

let to_string t = String.init t.width (fun j -> if get t (t.width - 1 - j) then '1' else '0')

let is_zero t =
  let rec loop i = i >= Bytes.length t.data || (Bytes.get_uint8 t.data i = 0 && loop (i + 1)) in
  loop 0

let is_ones t =
  let rec loop i = i >= t.width || (get t i && loop (i + 1)) in
  loop 0

let popcount t =
  let n = ref 0 in
  for i = 0 to t.width - 1 do
    if get t i then incr n
  done;
  !n

let msb t = get t (t.width - 1)
let lsb t = get t 0

let same_width name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" name a.width b.width)

let map2 name f a b =
  same_width name a b;
  let r = zero a.width in
  for i = 0 to Bytes.length r.data - 1 do
    Bytes.set_uint8 r.data i (f (Bytes.get_uint8 a.data i) (Bytes.get_uint8 b.data i) land 0xff)
  done;
  normalize r

let logand a b = map2 "logand" ( land ) a b
let logor a b = map2 "logor" ( lor ) a b
let logxor a b = map2 "logxor" ( lxor ) a b

let lognot a =
  let r = zero a.width in
  for i = 0 to Bytes.length r.data - 1 do
    Bytes.set_uint8 r.data i (lnot (Bytes.get_uint8 a.data i) land 0xff)
  done;
  normalize r

let add a b =
  same_width "add" a b;
  let r = zero a.width in
  let carry = ref 0 in
  for i = 0 to Bytes.length r.data - 1 do
    let s = Bytes.get_uint8 a.data i + Bytes.get_uint8 b.data i + !carry in
    Bytes.set_uint8 r.data i (s land 0xff);
    carry := s lsr 8
  done;
  normalize r

let sub a b =
  same_width "sub" a b;
  let r = zero a.width in
  let borrow = ref 0 in
  for i = 0 to Bytes.length r.data - 1 do
    let s = Bytes.get_uint8 a.data i - Bytes.get_uint8 b.data i - !borrow in
    Bytes.set_uint8 r.data i (s land 0xff);
    borrow := if s < 0 then 1 else 0
  done;
  normalize r

let neg a = add (lognot a) (of_int ~width:a.width 1)

let mul a b =
  same_width "mul" a b;
  let w = a.width in
  let r = zero w in
  let nb = Bytes.length r.data in
  (* Schoolbook byte-wise multiplication, truncated to [nb] bytes. *)
  for i = 0 to nb - 1 do
    let carry = ref 0 in
    let ai = Bytes.get_uint8 a.data i in
    if ai <> 0 then
      for j = 0 to nb - 1 - i do
        let idx = i + j in
        let s = Bytes.get_uint8 r.data idx + (ai * Bytes.get_uint8 b.data j) + !carry in
        Bytes.set_uint8 r.data idx (s land 0xff);
        carry := s lsr 8
      done
  done;
  normalize r

let equal a b = a.width = b.width && Bytes.equal a.data b.data

let compare a b =
  same_width "compare" a b;
  let rec loop i =
    if i < 0 then 0
    else
      let x = Bytes.get_uint8 a.data i and y = Bytes.get_uint8 b.data i in
      if x <> y then Stdlib.compare x y else loop (i - 1)
  in
  loop (Bytes.length a.data - 1)

let ult a b = compare a b < 0
let ule a b = compare a b <= 0

let slt a b =
  same_width "slt" a b;
  match (msb a, msb b) with
  | true, false -> true
  | false, true -> false
  | _ -> ult a b

let shift_left t n =
  if n < 0 then invalid_arg "Bits.shift_left: negative shift";
  init t.width (fun i -> i >= n && get t (i - n))

let shift_right_logical t n =
  if n < 0 then invalid_arg "Bits.shift_right_logical: negative shift";
  init t.width (fun i -> i + n < t.width && get t (i + n))

let shift_right_arith t n =
  if n < 0 then invalid_arg "Bits.shift_right_arith: negative shift";
  let sign = msb t in
  init t.width (fun i -> if i + n < t.width then get t (i + n) else sign)

let concat ~msb ~lsb =
  init (msb.width + lsb.width) (fun i ->
      if i < lsb.width then get lsb i else get msb (i - lsb.width))

let select t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.width then invalid_arg "Bits.select: bad range";
  init (hi - lo + 1) (fun i -> get t (lo + i))

let zero_extend t ~width:w =
  if w < t.width then invalid_arg "Bits.zero_extend: narrowing";
  init w (fun i -> i < t.width && get t i)

let sign_extend t ~width:w =
  if w < t.width then invalid_arg "Bits.sign_extend: narrowing";
  let sign = msb t in
  init w (fun i -> if i < t.width then get t i else sign)

let resize t ~width:w =
  check_width w;
  init w (fun i -> i < t.width && get t i)

let reduce_or t = not (is_zero t)
let reduce_and t = is_ones t
let reduce_xor t = popcount t land 1 = 1

let mux ~sel cases =
  let n = List.length cases in
  if n = 0 then invalid_arg "Bits.mux: no cases";
  (match cases with
  | c0 :: rest -> List.iter (fun c -> same_width "mux" c0 c) rest
  | [] -> ());
  let low_width = min sel.width 30 in
  let high_set =
    sel.width > 30
    && not (is_zero (select sel ~hi:(sel.width - 1) ~lo:low_width))
  in
  let idx =
    if high_set then n - 1
    else min (to_int (select sel ~hi:(low_width - 1) ~lo:0)) (n - 1)
  in
  List.nth cases idx

let pp fmt t = Format.fprintf fmt "%d'b%s" t.width (to_string t)

let to_hex t =
  let nibbles = (t.width + 3) / 4 in
  String.init nibbles (fun j ->
      let lo = (nibbles - 1 - j) * 4 in
      let v = ref 0 in
      for k = 3 downto 0 do
        let i = lo + k in
        v := (!v lsl 1) lor (if i < t.width && get t i then 1 else 0)
      done;
      "0123456789abcdef".[!v])
