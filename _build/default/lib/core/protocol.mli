(** Protocol flavours.

    The paper employs "a slight variant of the original protocol": in
    Carloni's original formulation the stop signal is back-propagated by a
    stalled shell on all of its input channels regardless of the validity of
    the data standing there, and a stop received on any output channel
    stalls the shell even if that output currently carries a void.  In the
    paper's refinement, stops on invalid (void) signals are discarded, which
    raises throughput and keeps void/stop management local.

    The flavour parameterizes the {e shell} FSM; relay stations assert stop
    purely from their own occupancy in both flavours (they are the memory
    elements that make the protocol safe either way). *)

type flavour =
  | Original  (** stops processed regardless of data validity *)
  | Optimized  (** stops on void data are discarded (the paper's variant) *)

val all : flavour list
val to_string : flavour -> string
val pp : Format.formatter -> flavour -> unit
