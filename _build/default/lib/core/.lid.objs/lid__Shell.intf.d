lib/core/shell.mli: Format Pearl Protocol Token
