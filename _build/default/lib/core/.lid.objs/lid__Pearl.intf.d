lib/core/pearl.mli: Format
