lib/core/rtl_gen.mli: Bits Bitvec Hdl Protocol Relay_station
