lib/core/protocol.mli: Format
