lib/core/shell.ml: Array Format Pearl Protocol String Token
