lib/core/token.ml: Format Stdlib
