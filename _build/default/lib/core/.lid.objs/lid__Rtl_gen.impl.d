lib/core/rtl_gen.ml: Bits Bitvec Hdl List Option Printf Protocol Relay_station
