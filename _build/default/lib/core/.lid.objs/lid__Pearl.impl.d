lib/core/pearl.ml: Array Format Option Printf String
