lib/core/relay_station.mli: Format Protocol Token
