lib/core/protocol.ml: Format
