lib/core/relay_station.ml: Format List Protocol Token
