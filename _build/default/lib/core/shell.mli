(** Shells: protocol wrappers around pearls.

    A shell performs the three functions the paper lists:

    - {b data validation} — each output channel carries a valid bit telling
      whether the datum standing there has still to be consumed;
    - {b back pressure} — when the pearl cannot fire, the shell sends stop
      upstream (under the [Optimized] flavour, only on inputs that currently
      carry valid data);
    - {b clock gating} — a shell waiting for data or stopped keeps its state
      (the pearl does not advance).

    The shell itself stores no stop signal: its input-side stops are a
    combinational function of this cycle's conditions.  This is exactly why
    at least one (half) relay station must sit between two shells — the
    shell's output registers plus the relay station's storage provide the
    memory that makes the one-cycle stop round-trip safe.

    Firing rule: the pearl fires iff every input channel presents a valid
    token and no {e relevant} stop is asserted on its outputs.  Under
    [Optimized], a stop on an output currently holding a void is not
    relevant (it is discarded); under [Original] any asserted stop gates
    the shell.  On firing, all inputs are consumed, the pearl state
    advances, and every output buffer is reloaded; outputs that were valid
    and not stopped were consumed by downstream in the same cycle, voids
    are overwritten harmlessly, and valid-and-stopped outputs prevent
    firing altogether — so no datum is ever overwritten before use.

    Shell output buffers initialize {e valid} (with the pearl's
    [initial_output]); relay stations initialize void — the paper's
    initialization convention. *)

type t

val create : flavour:Protocol.flavour -> Pearl.t -> t
val pearl : t -> Pearl.t
val flavour : t -> Protocol.flavour

type state

val initial : t -> state

val present : state -> int -> Token.t
(** [present s o] is the token on output port [o] this cycle (Moore). *)

val presented : state -> Token.t array

val fires : t -> state -> inputs:Token.t array -> out_stops:bool array -> bool
(** Whether the pearl fires this cycle given the tokens standing on its
    input channels and the stops observed on its output channels. *)

val input_stops :
  t -> state -> inputs:Token.t array -> out_stops:bool array -> bool array
(** The back-pressure the shell asserts on each input channel this cycle
    (combinational). *)

val step :
  t -> state -> inputs:Token.t array -> out_stops:bool array -> state
(** One clock edge. *)

val pearl_state : state -> int array
val pp : Format.formatter -> state -> unit
