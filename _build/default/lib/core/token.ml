type t = Void | Valid of int

let void = Void
let valid v = Valid v
let is_valid = function Valid _ -> true | Void -> false

let value = function
  | Valid v -> v
  | Void -> invalid_arg "Token.value: void token"

let value_opt = function Valid v -> Some v | Void -> None
let equal a b = a = b
let compare = Stdlib.compare

let to_string = function Valid v -> string_of_int v | Void -> "n"
let pp fmt t = Format.pp_print_string fmt (to_string t)
