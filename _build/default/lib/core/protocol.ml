type flavour = Original | Optimized

let all = [ Original; Optimized ]
let to_string = function Original -> "original" | Optimized -> "optimized"
let pp fmt f = Format.pp_print_string fmt (to_string f)
