(** Channel tokens.

    Every forward channel of a latency-insensitive design carries either a
    valid datum or a "void" (the [valid] wire deasserted).  Data are modelled
    as OCaml [int]s — the protocol is data-independent, and integer payloads
    (typically sequence numbers) make ordering and loss violations
    observable. *)

type t = Void | Valid of int

val void : t
val valid : int -> t
val is_valid : t -> bool

val value : t -> int
(** Raises [Invalid_argument] on [Void]. *)

val value_opt : t -> int option
val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Valid tokens print as their value, void as ["n"] — the notation of the
    paper's Fig. 1/Fig. 2. *)

val to_string : t -> string
