type t = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  init_state : int array;
  initial_output : int array;
  f : int array -> int array -> int array * int array;
}

let create ~name ~n_inputs ~n_outputs ?(init_state = [||]) ~initial_output f =
  if n_inputs < 0 || n_outputs < 1 then
    invalid_arg "Pearl.create: need n_inputs >= 0 and n_outputs >= 1";
  if Array.length initial_output <> n_outputs then
    invalid_arg "Pearl.create: initial_output arity mismatch";
  { name; n_inputs; n_outputs; init_state; initial_output; f }

let counter ?(start = 0) () =
  create ~name:"counter" ~n_inputs:0 ~n_outputs:1
    ~init_state:[| start + 1 |] ~initial_output:[| start |]
    (fun state _ -> ([| state.(0) + 1 |], [| state.(0) |]))

let identity () =
  create ~name:"identity" ~n_inputs:1 ~n_outputs:1 ~initial_output:[| 0 |]
    (fun state inputs -> (state, [| inputs.(0) |]))

let delay_chain ?name k =
  if k < 0 then invalid_arg "Pearl.delay_chain: negative depth";
  if k = 0 then identity ()
  else
    let name = Option.value name ~default:(Printf.sprintf "delay%d" k) in
    create ~name ~n_inputs:1 ~n_outputs:1 ~init_state:(Array.make k 0)
      ~initial_output:[| 0 |]
      (fun state inputs ->
        let state' = Array.append (Array.sub state 1 (k - 1)) [| inputs.(0) |] in
        (state', [| state.(0) |]))

let combine ?(name = "combine") g =
  create ~name ~n_inputs:2 ~n_outputs:1 ~initial_output:[| 0 |]
    (fun state inputs -> (state, [| g inputs.(0) inputs.(1) |]))

let adder () = combine ~name:"adder" ( + )

let accumulator () =
  create ~name:"accumulator" ~n_inputs:1 ~n_outputs:1 ~init_state:[| 0 |]
    ~initial_output:[| 0 |]
    (fun state inputs ->
      let acc = state.(0) + inputs.(0) in
      ([| acc |], [| acc |]))

let fork2 () =
  create ~name:"fork2" ~n_inputs:1 ~n_outputs:2 ~initial_output:[| 0; 0 |]
    (fun state inputs -> (state, [| inputs.(0); inputs.(0) |]))

let map1 ?(name = "map1") g =
  create ~name ~n_inputs:1 ~n_outputs:1 ~initial_output:[| 0 |]
    (fun state inputs -> (state, [| g inputs.(0) |]))

let square () = map1 ~name:"square" (fun v -> v * v)
let inc () = map1 ~name:"inc" (fun v -> v + 1)

let tap () =
  create ~name:"tap" ~n_inputs:2 ~n_outputs:2 ~initial_output:[| 0; 0 |]
    (fun state inputs ->
      let v = inputs.(0) + inputs.(1) in
      (state, [| v; v |]))

let of_name name =
  match name with
  | "identity" -> Some (identity ())
  | "inc" -> Some (inc ())
  | "square" -> Some (square ())
  | "adder" -> Some (adder ())
  | "diff" -> Some (combine ~name:"diff" ( - ))
  | "fork2" -> Some (fork2 ())
  | "tap" -> Some (tap ())
  | "accumulator" -> Some (accumulator ())
  | "counter" -> Some (counter ())
  | _ ->
      if String.length name > 5 && String.sub name 0 5 = "delay" then
        match int_of_string_opt (String.sub name 5 (String.length name - 5)) with
        | Some k when k >= 0 -> Some (delay_chain ~name k)
        | _ -> None
      else None

let standard_names =
  [
    "identity"; "inc"; "square"; "adder"; "diff"; "fork2"; "tap";
    "accumulator"; "counter"; "delayN";
  ]

let apply p ~state ~inputs =
  if Array.length inputs <> p.n_inputs then
    invalid_arg (Printf.sprintf "Pearl.apply %s: input arity" p.name);
  let state', outputs = p.f state inputs in
  if Array.length outputs <> p.n_outputs then
    invalid_arg (Printf.sprintf "Pearl.apply %s: output arity" p.name);
  (state', outputs)

let pp fmt p =
  Format.fprintf fmt "%s(%d->%d)" p.name p.n_inputs p.n_outputs
