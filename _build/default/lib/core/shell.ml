type t = { flavour : Protocol.flavour; pearl : Pearl.t }

let create ~flavour pearl = { flavour; pearl }
let pearl t = t.pearl
let flavour t = t.flavour

type state = { pearl_state : int array; out_buf : Token.t array }

let initial t =
  {
    pearl_state = Array.copy t.pearl.Pearl.init_state;
    out_buf = Array.map Token.valid t.pearl.Pearl.initial_output;
  }

let present s o = s.out_buf.(o)
let presented s = Array.copy s.out_buf

let check_arities t ~inputs ~out_stops =
  if Array.length inputs <> t.pearl.Pearl.n_inputs then
    invalid_arg "Shell: input arity mismatch";
  if Array.length out_stops <> t.pearl.Pearl.n_outputs then
    invalid_arg "Shell: output arity mismatch"

let fires t s ~inputs ~out_stops =
  check_arities t ~inputs ~out_stops;
  let all_valid = Array.for_all Token.is_valid inputs in
  let gated = ref false in
  Array.iteri
    (fun o stop ->
      if stop then
        match t.flavour with
        | Protocol.Original -> gated := true
        | Protocol.Optimized ->
            if Token.is_valid s.out_buf.(o) then gated := true)
    out_stops;
  all_valid && not !gated

let input_stops t s ~inputs ~out_stops =
  let fire = fires t s ~inputs ~out_stops in
  Array.map
    (fun tok ->
      if fire then false
      else
        match t.flavour with
        | Protocol.Original -> true
        | Protocol.Optimized -> Token.is_valid tok)
    inputs

let step t s ~inputs ~out_stops =
  let fire = fires t s ~inputs ~out_stops in
  if fire then begin
    let data = Array.map Token.value inputs in
    let pearl_state', outputs =
      Pearl.apply t.pearl ~state:s.pearl_state ~inputs:data
    in
    { pearl_state = pearl_state'; out_buf = Array.map Token.valid outputs }
  end
  else
    let out_buf =
      Array.mapi
        (fun o tok ->
          if Token.is_valid tok && out_stops.(o) then tok else Token.void)
        s.out_buf
    in
    { s with out_buf }

let pearl_state s = Array.copy s.pearl_state

let pp fmt s =
  Format.fprintf fmt "shell{out=[%s]}"
    (String.concat ";" (Array.to_list (Array.map Token.to_string s.out_buf)))
