(** Event-driven simulator.

    Delta-cycle kernel in the style of classic VHDL simulators: a change on
    a signal schedules exactly its fan-out for re-evaluation, and the
    process repeats until the net settles.  Produces cycle-for-cycle the
    same values as {!Cycle_sim} (a cross-check used by the test suite), but
    touches only the active part of the design — the paper's simulations
    were run on such a kernel. *)

open Bitvec

type t

val create : Hdl.Circuit.t -> t
val circuit : t -> Hdl.Circuit.t
val poke : t -> string -> Bits.t -> unit
val peek : t -> Hdl.Signal.t -> Bits.t
val peek_output : t -> string -> Bits.t
val settle : t -> unit
val step : t -> unit
val reset : t -> unit
val cycle_count : t -> int

val event_count : t -> int
(** Total number of node re-evaluations since creation/reset — the activity
    measure an event-driven simulator's cost is proportional to. *)
