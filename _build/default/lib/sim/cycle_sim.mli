(** Levelized cycle-accurate simulator.

    Evaluates the combinational nodes of a circuit in topological order once
    per clock cycle, then commits all registers simultaneously — the
    standard "compiled" simulation strategy. *)

open Bitvec

type t

val create : Hdl.Circuit.t -> t
(** Registers take their reset values; inputs start at zero. *)

val circuit : t -> Hdl.Circuit.t

val poke : t -> string -> Bits.t -> unit
(** Set an input by name.  Raises [Not_found] on unknown input,
    [Invalid_argument] on width mismatch. *)

val peek : t -> Hdl.Signal.t -> Bits.t
(** Value of any reachable signal in the current (settled) cycle. *)

val peek_output : t -> string -> Bits.t

val settle : t -> unit
(** Recompute combinational values from current inputs and register state.
    [peek]/[peek_output] settle automatically; an explicit call is only
    useful for timing measurements. *)

val step : t -> unit
(** Settle, then advance registers by one clock edge. *)

val reset : t -> unit
(** Return all registers to their reset values (inputs are kept). *)

val cycle_count : t -> int
