open Bitvec

type tracked = {
  signal : Hdl.Signal.t;
  code : string;
  mutable last : Bits.t option;
}

type t = { out : out_channel; tracked : tracked list }

(* VCD identifier codes: printable ASCII 33..126, shortest-first. *)
let code_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ~out ~design signals =
  Printf.fprintf out "$date today $end\n";
  Printf.fprintf out "$version lid-repro vcd writer $end\n";
  Printf.fprintf out "$timescale 1ns $end\n";
  Printf.fprintf out "$scope module %s $end\n" design;
  let tracked =
    List.mapi
      (fun i (name, signal) ->
        let code = code_of_index i in
        Printf.fprintf out "$var wire %d %s %s $end\n" (Hdl.Signal.width signal)
          code name;
        { signal; code; last = None })
      signals
  in
  Printf.fprintf out "$upscope $end\n$enddefinitions $end\n";
  { out; tracked }

let write_value t tr v =
  if Bits.width v = 1 then
    Printf.fprintf t.out "%c%s\n" (if Bits.lsb v then '1' else '0') tr.code
  else Printf.fprintf t.out "b%s %s\n" (Bits.to_string v) tr.code

let sample t ~time ~peek =
  let changes =
    List.filter
      (fun tr ->
        let v = peek tr.signal in
        match tr.last with
        | Some old when Bits.equal old v -> false
        | _ ->
            tr.last <- Some v;
            true)
      t.tracked
  in
  if changes <> [] then begin
    Printf.fprintf t.out "#%d\n" time;
    List.iter
      (fun tr -> match tr.last with Some v -> write_value t tr v | None -> ())
      changes
  end

let close t = flush t.out
