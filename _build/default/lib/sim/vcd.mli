(** Minimal VCD (Value Change Dump) waveform writer.

    Tracks a chosen set of signals of a running simulation and emits a
    standard [.vcd] file viewable in GTKWave. *)

type t

val create :
  out:out_channel -> design:string -> (string * Hdl.Signal.t) list -> t
(** [create ~out ~design signals] writes the VCD header for the given
    [(display-name, signal)] pairs. *)

val sample : t -> time:int -> peek:(Hdl.Signal.t -> Bitvec.Bits.t) -> unit
(** Record the current value of every tracked signal at [time] (only
    changes are written, per the VCD format). *)

val close : t -> unit
