open Bitvec

type t = {
  circuit : Hdl.Circuit.t;
  values : (int, Bits.t) Hashtbl.t;
  fanout : (int, Hdl.Signal.t list) Hashtbl.t; (* uid -> dependent comb nodes *)
  queue : Hdl.Signal.t Queue.t;
  in_queue : (int, unit) Hashtbl.t;
  mutable cycles : int;
  mutable events : int;
}

let add_fanout t src node =
  let id = Hdl.Signal.uid src in
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.fanout id) in
  Hashtbl.replace t.fanout id (node :: cur)

let schedule t node =
  let id = Hdl.Signal.uid node in
  if not (Hashtbl.mem t.in_queue id) then begin
    Hashtbl.add t.in_queue id ();
    Queue.add node t.queue
  end

let schedule_fanout t src =
  match Hashtbl.find_opt t.fanout (Hdl.Signal.uid src) with
  | None -> ()
  | Some nodes -> List.iter (schedule t) nodes

let reset_registers t =
  Array.iter
    (fun r ->
      match r with
      | Hdl.Signal.Reg { reset_value; _ } ->
          let id = Hdl.Signal.uid r in
          let changed =
            match Hashtbl.find_opt t.values id with
            | Some v -> not (Bits.equal v reset_value)
            | None -> true
          in
          Hashtbl.replace t.values id reset_value;
          if changed then schedule_fanout t r
      | _ -> ())
    (Hdl.Circuit.regs t.circuit)

let create circuit =
  let t =
    {
      circuit;
      values = Hashtbl.create 256;
      fanout = Hashtbl.create 256;
      queue = Queue.create ();
      in_queue = Hashtbl.create 64;
      cycles = 0;
      events = 0;
    }
  in
  Array.iter
    (fun s -> List.iter (fun d -> add_fanout t d s) (Hdl.Signal.deps s))
    (Hdl.Circuit.comb_order circuit);
  List.iter
    (fun i ->
      Hashtbl.replace t.values (Hdl.Signal.uid i) (Bits.zero (Hdl.Signal.width i)))
    (Hdl.Circuit.inputs circuit);
  Array.iter
    (fun s ->
      match s with
      | Hdl.Signal.Const { bits; _ } ->
          Hashtbl.replace t.values (Hdl.Signal.uid s) bits
      | _ -> ())
    (Hdl.Circuit.nodes circuit);
  (* give every combinational node a placeholder value so that lookups are
     total regardless of the order in which events drain *)
  Array.iter
    (fun s ->
      Hashtbl.replace t.values (Hdl.Signal.uid s)
        (Bits.zero (Hdl.Signal.width s)))
    (Hdl.Circuit.comb_order circuit);
  reset_registers t;
  (* Initial settling: every combinational node is an event once. *)
  Array.iter (schedule t) (Hdl.Circuit.comb_order circuit);
  t

let circuit t = t.circuit

let lookup t s =
  match Hashtbl.find_opt t.values (Hdl.Signal.uid s) with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Event_sim: no value for signal %S" (Hdl.Signal.name_of s))

let settle t =
  while not (Queue.is_empty t.queue) do
    let node = Queue.pop t.queue in
    Hashtbl.remove t.in_queue (Hdl.Signal.uid node);
    t.events <- t.events + 1;
    let v = Eval.comb_node ~lookup:(lookup t) node in
    let id = Hdl.Signal.uid node in
    let changed =
      match Hashtbl.find_opt t.values id with
      | Some old -> not (Bits.equal old v)
      | None -> true
    in
    if changed then begin
      Hashtbl.replace t.values id v;
      schedule_fanout t node
    end
  done

let poke t name v =
  let i = Hdl.Circuit.find_input t.circuit name in
  if Bits.width v <> Hdl.Signal.width i then
    invalid_arg (Printf.sprintf "Event_sim.poke %S: width mismatch" name);
  let id = Hdl.Signal.uid i in
  let changed =
    match Hashtbl.find_opt t.values id with
    | Some old -> not (Bits.equal old v)
    | None -> true
  in
  Hashtbl.replace t.values id v;
  if changed then schedule_fanout t i

let peek t s =
  settle t;
  lookup t s

let peek_output t name = peek t (Hdl.Circuit.find_output t.circuit name)

let step t =
  settle t;
  let regs = Hdl.Circuit.regs t.circuit in
  let nexts =
    Array.map
      (fun r -> Eval.reg_next ~lookup:(lookup t) ~current:(lookup t r) r)
      regs
  in
  Array.iteri
    (fun i r ->
      let id = Hdl.Signal.uid r in
      let old = Hashtbl.find t.values id in
      if not (Bits.equal old nexts.(i)) then begin
        Hashtbl.replace t.values id nexts.(i);
        schedule_fanout t r
      end)
    regs;
  t.cycles <- t.cycles + 1

let reset t =
  reset_registers t;
  settle t;
  t.cycles <- 0

let cycle_count t = t.cycles
let event_count t = t.events
