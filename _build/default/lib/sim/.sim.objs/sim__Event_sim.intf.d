lib/sim/event_sim.mli: Bits Bitvec Hdl
