lib/sim/vcd.mli: Bitvec Hdl
