lib/sim/eval.ml: Bits Bitvec Hdl List
