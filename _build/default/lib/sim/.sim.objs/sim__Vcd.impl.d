lib/sim/vcd.ml: Bits Bitvec Char Hdl List Printf String
