lib/sim/cycle_sim.ml: Array Bits Bitvec Eval Hashtbl Hdl List Printf
