lib/sim/eval.mli: Bits Bitvec Hdl
