lib/sim/event_sim.ml: Array Bits Bitvec Eval Hashtbl Hdl List Option Printf Queue
