lib/sim/cycle_sim.mli: Bits Bitvec Hdl
