(* Shared single-node evaluation semantics used by both simulation kernels.
   [lookup] returns the current value of a dependency. *)

open Bitvec

let unop = Hdl.Ops.unop
let binop = Hdl.Ops.binop

let comb_node ~lookup (s : Hdl.Signal.t) =
  match s with
  | Const _ | Input _ | Reg _ ->
      invalid_arg "Eval.comb_node: not a combinational node"
  | Wire { driver = Some d; _ } -> lookup d
  | Wire { driver = None; _ } -> invalid_arg "Eval.comb_node: undriven wire"
  | Unop { op; a; _ } -> unop op (lookup a)
  | Binop { op; a; b; _ } -> binop op (lookup a) (lookup b)
  | Mux { sel; cases; _ } -> Bits.mux ~sel:(lookup sel) (List.map lookup cases)
  | Concat { parts; _ } ->
      let rec cat = function
        | [] -> invalid_arg "Eval.comb_node: empty concat"
        | [ p ] -> lookup p
        | p :: rest -> Bits.concat ~msb:(lookup p) ~lsb:(cat rest)
      in
      cat parts
  | Select { a; hi; lo; _ } -> Bits.select (lookup a) ~hi ~lo

(* Next-state of a register given this cycle's settled values. *)
let reg_next ~lookup ~current (s : Hdl.Signal.t) =
  match s with
  | Reg { d = Some d; enable; _ } ->
      let enabled =
        match enable with None -> true | Some e -> Bits.reduce_or (lookup e)
      in
      if enabled then lookup d else current
  | _ -> invalid_arg "Eval.reg_next: not a bound register"
