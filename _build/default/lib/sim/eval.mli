(** Shared single-node evaluation semantics for the simulation kernels. *)

open Bitvec

val unop : Hdl.Signal.unary_op -> Bits.t -> Bits.t
val binop : Hdl.Signal.binary_op -> Bits.t -> Bits.t -> Bits.t

val comb_node : lookup:(Hdl.Signal.t -> Bits.t) -> Hdl.Signal.t -> Bits.t
(** The cycle-[t] value of a combinational node, given the settled values
    of its dependencies.  Raises [Invalid_argument] on sources
    (constants, inputs, registers) and undriven wires. *)

val reg_next :
  lookup:(Hdl.Signal.t -> Bits.t) -> current:Bits.t -> Hdl.Signal.t -> Bits.t
(** A register's next value from this cycle's settled [d] and [enable]. *)
