open Bitvec

type t = {
  circuit : Hdl.Circuit.t;
  values : (int, Bits.t) Hashtbl.t; (* signal uid -> current value *)
  mutable dirty : bool;
  mutable cycles : int;
}

let reset_registers t =
  Array.iter
    (fun r ->
      match r with
      | Hdl.Signal.Reg { reset_value; _ } ->
          Hashtbl.replace t.values (Hdl.Signal.uid r) reset_value
      | _ -> ())
    (Hdl.Circuit.regs t.circuit)

let create circuit =
  let t = { circuit; values = Hashtbl.create 256; dirty = true; cycles = 0 } in
  List.iter
    (fun i ->
      Hashtbl.replace t.values (Hdl.Signal.uid i) (Bits.zero (Hdl.Signal.width i)))
    (Hdl.Circuit.inputs circuit);
  Array.iter
    (fun s ->
      match s with
      | Hdl.Signal.Const { bits; _ } ->
          Hashtbl.replace t.values (Hdl.Signal.uid s) bits
      | _ -> ())
    (Hdl.Circuit.nodes circuit);
  reset_registers t;
  t

let circuit t = t.circuit

let lookup t s =
  match Hashtbl.find_opt t.values (Hdl.Signal.uid s) with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Cycle_sim: no value for signal %S" (Hdl.Signal.name_of s))

let settle t =
  if t.dirty then begin
    let look s = lookup t s in
    Array.iter
      (fun s -> Hashtbl.replace t.values (Hdl.Signal.uid s) (Eval.comb_node ~lookup:look s))
      (Hdl.Circuit.comb_order t.circuit);
    t.dirty <- false
  end

let poke t name v =
  let i = Hdl.Circuit.find_input t.circuit name in
  if Bits.width v <> Hdl.Signal.width i then
    invalid_arg (Printf.sprintf "Cycle_sim.poke %S: width mismatch" name);
  Hashtbl.replace t.values (Hdl.Signal.uid i) v;
  t.dirty <- true

let peek t s =
  settle t;
  lookup t s

let peek_output t name = peek t (Hdl.Circuit.find_output t.circuit name)

let step t =
  settle t;
  let regs = Hdl.Circuit.regs t.circuit in
  let nexts =
    Array.map
      (fun r ->
        Eval.reg_next ~lookup:(lookup t) ~current:(lookup t r) r)
      regs
  in
  Array.iteri
    (fun i r -> Hashtbl.replace t.values (Hdl.Signal.uid r) nexts.(i))
    regs;
  t.cycles <- t.cycles + 1;
  t.dirty <- true

let reset t =
  reset_registers t;
  t.cycles <- 0;
  t.dirty <- true

let cycle_count t = t.cycles
