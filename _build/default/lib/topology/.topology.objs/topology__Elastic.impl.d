lib/topology/elastic.ml: Array Format Lid List Network Printf
