lib/topology/equalize.mli: Network
