lib/topology/classify.mli: Format Network
