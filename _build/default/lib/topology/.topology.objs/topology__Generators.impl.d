lib/topology/generators.ml: Array Lid List Network Pattern Printf Random
