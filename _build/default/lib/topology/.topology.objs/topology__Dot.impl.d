lib/topology/dot.ml: Buffer Format Lid List Network Pattern Printf String
