lib/topology/pattern.ml: Array Format String
