lib/topology/deadlock.mli: Format Network
