lib/topology/floorplan.mli: Format Lid Network Pattern
