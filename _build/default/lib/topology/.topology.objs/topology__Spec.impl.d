lib/topology/spec.ml: Array Buffer Hashtbl In_channel Lid List Network Pattern Printf String
