lib/topology/network.mli: Format Lid Pattern
