lib/topology/network.ml: Array Format Lid List Option Pattern Printf
