lib/topology/analysis.mli: Network
