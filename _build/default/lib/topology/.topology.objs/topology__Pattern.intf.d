lib/topology/pattern.mli: Format
