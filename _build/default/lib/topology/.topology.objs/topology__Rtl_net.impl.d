lib/topology/rtl_net.ml: Array Bits Bitvec Hashtbl Hdl Lid List Network Pattern Printf String
