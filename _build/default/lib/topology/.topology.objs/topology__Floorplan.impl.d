lib/topology/floorplan.ml: Format Lid List Network String
