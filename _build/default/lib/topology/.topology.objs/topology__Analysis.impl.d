lib/topology/analysis.ml: Classify Elastic Lid List Network Pattern
