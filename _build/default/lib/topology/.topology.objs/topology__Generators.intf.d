lib/topology/generators.mli: Lid Network Pattern Random
