lib/topology/deadlock.ml: Classify Format List Network String
