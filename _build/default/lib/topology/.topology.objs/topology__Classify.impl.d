lib/topology/classify.ml: Array Format Hashtbl Int Lid List Network Queue Set Stdlib
