lib/topology/elastic.mli: Format Network
