lib/topology/rtl_net.mli: Hdl Lid Network
