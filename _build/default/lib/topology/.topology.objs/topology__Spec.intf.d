lib/topology/spec.mli: Network
