lib/topology/equalize.ml: Array Classify Elastic Lid List Network Queue
