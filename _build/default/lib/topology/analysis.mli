(** The paper's closed-form performance figures, plus general bounds.

    The closed forms are special cases of {!Elastic.min_cycle_ratio}; the
    benches check all three agree with skeleton measurements. *)

val loop_throughput : s:int -> r:int -> float
(** Feedback loop of [s] shells and [r] full relay stations:
    [T = S / (S + R)] — at most [s] valid data circulate among [s + r]
    positions. *)

val ff_throughput : m:int -> i:int -> float
(** Reconvergent feed-forward pair of branches: [T = (m - i) / m], where
    [i] is the relay-station imbalance between the branches and [m] the
    total number of relay stations in the virtual loop plus the shells on
    the more-pipelined path (counting the forking shell's output stage,
    not the joining shell). *)

val ff_params :
  r_short:int -> r_long:int -> shells_long:int -> int * int
(** [(m, i)] for a two-branch reconvergence: [r_short]/[r_long] full
    stations on the branches ([r_long >= r_short]), [shells_long]
    intermediate shells on the long branch.  [m = r_short + r_long +
    shells_long + 1] (the [+1] is the fork's output stage) and
    [i = r_long - r_short]. *)

val throughput_bound : Network.t -> float
(** General analytic bound via the elastic marked graph (assumes free
    environments). *)

val env_throughput_cap : Network.t -> float
(** The further cap imposed by source/sink duty cycles: the minimum duty
    over all environment patterns. *)

val transient_bound : Network.t -> int
(** A predictable upper bound on the transient length, in cycles — the
    paper's claim is that the transient "is related to the number of relay
    stations and shells, and can be predicted upfront".  We use
    [2 * (positions + capacity) * env_period + longest_path + env_period],
    which experiment E7 validates against measured transients. *)
