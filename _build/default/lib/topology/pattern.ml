type t =
  | Always
  | Never
  | Periodic of { period : int; active : int; phase : int }
  | Word of bool array

let always = Always
let never = Never

let periodic ?(phase = 0) ~period ~active () =
  if period < 1 then invalid_arg "Pattern.periodic: period must be >= 1";
  if active < 0 || active > period then
    invalid_arg "Pattern.periodic: need 0 <= active <= period";
  Periodic { period; active; phase }

let word = function
  | [] -> invalid_arg "Pattern.word: empty word"
  | bits -> Word (Array.of_list bits)

let active t ~cycle =
  match t with
  | Always -> true
  | Never -> false
  | Periodic { period; active; phase } ->
      let c = (cycle + phase) mod period in
      let c = if c < 0 then c + period else c in
      c < active
  | Word w -> w.(cycle mod Array.length w)

let period = function
  | Always | Never -> 1
  | Periodic { period; _ } -> period
  | Word w -> Array.length w

let duty t =
  let p = period t in
  let n = ref 0 in
  for c = 0 to p - 1 do
    if active t ~cycle:c then incr n
  done;
  float_of_int !n /. float_of_int p

let pp fmt = function
  | Always -> Format.pp_print_string fmt "always"
  | Never -> Format.pp_print_string fmt "never"
  | Periodic { period; active; phase } ->
      Format.fprintf fmt "%d/%d@%d" active period phase
  | Word w ->
      Format.pp_print_string fmt
        (String.init (Array.length w) (fun i -> if w.(i) then '1' else '0'))
