(** Graphviz export of LID networks.

    Shells are boxes, sources/sinks are ellipses, and each channel edge is
    labelled with its relay chain ([F] = full, [H] = half).  Feed the
    output to [dot -Tsvg]. *)

val of_network : ?highlight:Network.node_id list -> Network.t -> string
(** [highlight] nodes are filled (used to show critical cycles or
    deadlocking loops). *)
