(** Whole-network RTL elaboration.

    Turns a LID network into one flat synchronous circuit: every shell,
    source and relay station instantiated from {!Lid.Rtl_gen} fragments and
    wired exactly as the network prescribes.  The result can be simulated
    with either {!Sim} kernel (experiment E10 compares its cost against the
    protocol skeleton) or emitted as VHDL/Verilog — the full "latency
    insensitive design" artifact.

    Circuit interface:
    - input [stall_<sink>] (1 bit) per sink — the environment's stop;
    - outputs [valid_<sink>] and [data_<sink>] per sink.

    Sources must use the [Always] pattern (environment stutter belongs to
    the testbench, i.e. the simulator driving the circuit); sink patterns
    are likewise left to the testbench via the stall inputs.

    Pearls are mapped to RTL datapaths by name; the pearls of
    {!Lid.Pearl}'s standard library ([identity], [inc], [adder], [diff],
    [fork2], [tap], [accumulator], [counter], [square], [delayN]) are
    supported.  Raises [Invalid_argument] on an unknown pearl or a
    non-[Always] source. *)

val of_network :
  ?flavour:Lid.Protocol.flavour ->
  ?data_width:int ->
  ?name:string ->
  Network.t ->
  Hdl.Circuit.t
(** Default [data_width] is 16. *)
