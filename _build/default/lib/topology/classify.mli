(** Topology classification, following the paper's taxonomy: trees,
    reconvergent feed-forward graphs, feedback loops, and general
    feed-forward combinations of self-interacting loops. *)

type shape =
  | Tree  (** feed-forward, every node has at most one input channel path *)
  | Reconvergent_feedforward
      (** a DAG in which two distinct paths from a common origin reconverge
          — the implicit loops created by reverse-flowing stops *)
  | Join_feedforward
      (** a DAG with multi-input joins but no shared-origin reconvergence *)
  | Single_loop  (** exactly one simple cycle and nothing else *)
  | General_cyclic  (** loops combined with feed-forward structure *)

type info = {
  shape : shape;
  cyclic : bool;
  n_simple_cycles : int;  (** counted up to [max_cycles] *)
  reconvergent_joins : Network.node_id list;
      (** join shells reachable from a common ancestor along two disjoint
          input channels *)
  longest_path : int;
      (** forward-latency length of the longest source-to-sink path
          (shell output buffers plus full stations); 0 for cyclic graphs *)
}

val classify : ?max_cycles:int -> Network.t -> info
val shape_to_string : shape -> string
val pp : Format.formatter -> info -> unit

val simple_cycles : ?limit:int -> Network.t -> Network.node_id list list
(** Simple cycles of the channel graph over shell-like nodes (each cycle as
    a node list), at most [limit] (default 1000). *)

val loop_stations : Network.t -> Network.node_id list -> int * int
(** [(full, half)] station counts along the cycle's channels. *)
