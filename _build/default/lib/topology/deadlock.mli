(** Static deadlock rules.

    The paper's conclusions on liveness:

    - any LID with a feed-forward topology (possibly reconvergent) is
      deadlock free;
    - any LID using only full relay stations is deadlock free;
    - a LID mixing full and half relay stations has {e potential} deadlocks
      iff half relay stations are present in loops.

    The static verdict applies these rules syntactically; when the result
    is [Potential], the paper's remedy is to simulate the skeleton up to
    the transient's extinction (see {!Skeleton} / the [Cure] module), which
    decides the question exactly. *)

type verdict =
  | Safe_feedforward  (** no loops at all *)
  | Safe_full_only  (** loops exist but contain only full relay stations *)
  | Potential of { half_in_loops : (Network.node_id list * int) list }
      (** loops containing half stations, with the half count per loop *)

val static_verdict : Network.t -> verdict
val is_statically_safe : verdict -> bool
val pp_verdict : Network.t -> Format.formatter -> verdict -> unit
