type verdict =
  | Safe_feedforward
  | Safe_full_only
  | Potential of { half_in_loops : (Network.node_id list * int) list }

let static_verdict net =
  let info = Classify.classify net in
  if not info.cyclic then Safe_feedforward
  else begin
    let cycles = Classify.simple_cycles net in
    let with_half =
      List.filter_map
        (fun cycle ->
          let _, half = Classify.loop_stations net cycle in
          if half > 0 then Some (cycle, half) else None)
        cycles
    in
    if with_half = [] then Safe_full_only
    else Potential { half_in_loops = with_half }
  end

let is_statically_safe = function
  | Safe_feedforward | Safe_full_only -> true
  | Potential _ -> false

let pp_verdict net fmt = function
  | Safe_feedforward -> Format.pp_print_string fmt "safe (feed-forward topology)"
  | Safe_full_only ->
      Format.pp_print_string fmt "safe (loops contain only full relay stations)"
  | Potential { half_in_loops } ->
      Format.fprintf fmt "potential deadlock: %d loop(s) contain half relay stations:"
        (List.length half_in_loops);
      List.iter
        (fun (cycle, half) ->
          Format.fprintf fmt "@.  [%s] with %d half station(s)"
            (String.concat " -> "
               (List.map (fun id -> (Network.node net id).name) cycle))
            half)
        half_in_loops
