module Net = Network

type addition = { edge : Net.edge_id; spare : int }

let fulls stations =
  List.length (List.filter (( = ) Lid.Relay_station.Full) stations)

let plan net =
  if (Classify.classify net).cyclic then
    invalid_arg "Equalize.plan: network contains loops; only feed-forward \
                 paths are equalized";
  let n = Net.n_nodes net in
  let in_depth = Array.make n 0 in
  let indeg = Array.make n 0 in
  List.iter
    (fun (e : Net.edge) -> indeg.(e.dst.node) <- indeg.(e.dst.node) + 1)
    (Net.edges net);
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    Array.iter
      (fun (e : Net.edge) ->
        let w = e.dst.node in
        let arrival = in_depth.(v) + 1 + fulls e.stations in
        in_depth.(w) <- max in_depth.(w) arrival;
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Net.out_edges net v)
  done;
  List.filter_map
    (fun (e : Net.edge) ->
      let arrival = in_depth.(e.src.node) + 1 + fulls e.stations in
      let spare = in_depth.(e.dst.node) - arrival in
      if spare > 0 then Some { edge = e.id; spare } else None)
    (Net.edges net)

let apply net additions =
  List.fold_left
    (fun net { edge; spare } ->
      let e = Net.edge net edge in
      let extra = List.init spare (fun _ -> Lid.Relay_station.Full) in
      Net.with_stations net edge (e.stations @ extra))
    net additions

let equalize net =
  let additions = plan net in
  (apply net additions, additions)

let add_one net eid =
  let e = Net.edge net eid in
  Net.with_stations net eid (e.stations @ [ Lid.Relay_station.Full ])

let optimize ?(budget = 64) net =
  if Elastic.min_cycle_ratio (Elastic.of_network net) = (1, 1) then (net, [])
  else
  let net0, base = equalize net in
  let ratio n =
    let tok, lat = Elastic.min_cycle_ratio (Elastic.of_network n) in
    float_of_int tok /. float_of_int lat
  in
  let rec go net extra budget best =
    let best_net, best_r, best_extra = best in
    let el = Elastic.of_network net in
    let (tok, lat), origins = Elastic.critical_cycle_origins el in
    let r = float_of_int tok /. float_of_int lat in
    let best =
      if r > best_r then (net, r, extra) else (best_net, best_r, best_extra)
    in
    if tok >= lat || budget = 0 then best
    else begin
      (* prefer widening a relay chain the critical cycle crosses against
         the data flow; fall back to a starved producer buffer's channel *)
      let station_bwd =
        List.filter_map
          (function Elastic.O_station (e, _, `Backward) -> Some e | _ -> None)
          origins
      in
      let buffer_bwd =
        List.filter_map
          (function Elastic.O_buffer (e, `Backward) -> Some e | _ -> None)
          origins
      in
      match station_bwd @ buffer_bwd with
      | [] -> best
      | eid :: _ ->
          let extra =
            match List.partition (fun a -> a.edge = eid) extra with
            | [ a ], rest -> { a with spare = a.spare + 1 } :: rest
            | _, rest -> { edge = eid; spare = 1 } :: rest
          in
          go (add_one net eid) extra (budget - 1) best
    end
  in
  let _, _, extra = go net0 [] budget (net0, ratio net0, []) in
  let final = List.fold_left (fun n a -> Net.with_stations n a.edge
      ((Net.edge n a.edge).stations
       @ List.init a.spare (fun _ -> Lid.Relay_station.Full))) net0 extra in
  (* merge the base (latency) additions with the capacity additions *)
  let merged =
    List.fold_left
      (fun acc a ->
        match List.partition (fun b -> b.edge = a.edge) acc with
        | [ b ], rest -> { b with spare = b.spare + a.spare } :: rest
        | _, rest -> a :: rest)
      base extra
  in
  (final, merged)
