(** Path equalization.

    "To get the maximum throughput from a feedforward arrangement, it is
    necessary to insert enough spare relay stations to make all converging
    paths of the same length."  This module computes, for a feed-forward
    network, the minimal number of spare full relay stations to append to
    each channel so that every join receives its inputs with equal forward
    latency — after which the analytic throughput bound is 1. *)

type addition = { edge : Network.edge_id; spare : int }

val plan : Network.t -> addition list
(** Raises [Invalid_argument] on cyclic networks (the paper's point is that
    loops must {e not} be equalized: the protocol adapts instead). *)

val apply : Network.t -> addition list -> Network.t
val equalize : Network.t -> Network.t * addition list
(** [plan] + [apply]. *)

val optimize : ?budget:int -> Network.t -> Network.t * addition list
(** Latency equalization alone leaves capacity-starved reconvergences below
    throughput 1 when a branch runs through shells (which, in this paper's
    simplified design, buffer a single datum and queue nothing).  [optimize]
    starts from [equalize] and then greedily inserts spare full stations on
    channels that the analytic critical cycle traverses against the data
    flow, until the elastic bound reaches 1 or [budget] (default 64)
    insertions have been tried.  Returns the best network found and all
    additions relative to the input.  Raises on cyclic networks. *)
