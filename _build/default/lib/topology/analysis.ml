let loop_throughput ~s ~r =
  if s < 1 then invalid_arg "Analysis.loop_throughput: need at least one shell";
  float_of_int s /. float_of_int (s + r)

let ff_throughput ~m ~i =
  if m < 1 || i < 0 || i > m then invalid_arg "Analysis.ff_throughput: bad m/i";
  float_of_int (m - i) /. float_of_int m

let ff_params ~r_short ~r_long ~shells_long =
  if r_long < r_short then invalid_arg "Analysis.ff_params: r_long < r_short";
  (r_short + r_long + shells_long + 1, r_long - r_short)

let throughput_bound = Elastic.throughput_bound

let env_throughput_cap net =
  List.fold_left
    (fun acc (n : Network.node) ->
      match n.kind with
      | Network.Source { pattern; _ } -> min acc (Pattern.duty pattern)
      | Network.Sink { pattern } -> min acc (1.0 -. Pattern.duty pattern)
      | Network.Shell _ -> acc)
    1.0 (Network.nodes net)

let total_capacity net =
  List.fold_left
    (fun acc (e : Network.edge) ->
      List.fold_left
        (fun acc k -> acc + Lid.Relay_station.capacity k)
        acc e.stations)
    0 (Network.edges net)

let transient_bound net =
  let positions =
    List.length (Network.shells net) + List.length (Network.sources net)
  in
  let env = Network.env_period net in
  let longest = (Classify.classify net).longest_path in
  (2 * (positions + total_capacity net) * env) + longest + env
