(** Activity patterns for environment nodes (sources and sinks).

    A pattern is a pure, periodic function of the cycle index, so the
    environment is finite-state: its phase is part of the skeleton state
    used for periodicity detection. *)

type t =
  | Always
  | Never
  | Periodic of { period : int; active : int; phase : int }
      (** active for the first [active] cycles of every [period], shifted
          by [phase]. *)
  | Word of bool array  (** cyclically repeated activity word *)

val always : t
val never : t

val periodic : ?phase:int -> period:int -> active:int -> unit -> t
(** Raises [Invalid_argument] unless [0 <= active <= period] and
    [period >= 1]. *)

val word : bool list -> t
(** Raises [Invalid_argument] on the empty list. *)

val active : t -> cycle:int -> bool
val period : t -> int
val duty : t -> float
(** Fraction of active cycles over one period. *)

val pp : Format.formatter -> t -> unit
