(** Analytic throughput model.

    The protocol behaviour of a LID system is captured by a marked graph in
    which every storage stage contributes a forward edge (carrying its
    initial tokens and forward latency) and a backward edge (carrying its
    spare capacity — "bubbles" — and its stop-registration latency):

    - a shell or source output buffer: forward (latency 1, 1 token),
      backward (latency 0, 0 bubbles) — its single slot starts full and its
      back-pressure is combinational;
    - a full relay station: forward (latency 1, 0 tokens), backward
      (latency 1, 2 bubbles);
    - a half relay station: forward (latency 0, 0 tokens), backward
      (latency 1, 1 bubble).

    System throughput is the minimum, over all directed cycles of this
    graph, of (tokens on the cycle) / (latency of the cycle) — capped at 1
    by the shell-internal cycles themselves.  This single computation
    subsumes both closed forms of the paper: a feedback loop of [S] shells
    and [R] full stations yields [S/(S+R)]; the virtual loop of a
    reconvergent pair of branches yields [(m-i)/m].  Experiments E3-E5
    check it against skeleton measurements. *)

type origin =
  | O_internal  (** a producer's output-buffer stage *)
  | O_station of Network.edge_id * int * [ `Forward | `Backward ]
      (** stage [i] of channel [e], traversed with or against the data flow *)
  | O_buffer of Network.edge_id * [ `Forward | `Backward ]
      (** the producer buffer stage of channel [e] *)

type edge = {
  src : int;
  dst : int;
  tokens : int;
  latency : int;
  origin : origin;
}

type t = {
  n : int;
  edges : edge array;
  labels : string array;  (** printable node labels, length [n] *)
}

val of_network : Network.t -> t
(** Assumes free environments (always-active sources, never-stalling
    sinks); environment patterns further reduce real throughput. *)

exception Zero_latency_cycle of string
(** Raised by the ratio computation when a latency-free cycle exists — the
    combinational-cycle situation that the relay-station requirement
    forbids. *)

val min_cycle_ratio : t -> int * int
(** [(tokens, latency)] of a critical cycle, as an exact (not necessarily
    reduced) fraction; [(1, 1)] when no cycle constrains the system below
    throughput 1. *)

val critical_cycle : t -> int list
(** Node indices of one critical cycle (in order), or [[]] when throughput
    is 1. *)

val critical_cycle_origins : t -> (int * int) * origin list
(** [(tokens, latency)] of a critical cycle together with the network
    provenance of its edges — the handle {!Equalize.optimize} uses to pick
    where to insert spare stations. *)

val throughput : t -> float

val throughput_bound : Network.t -> float
(** [throughput (of_network net)]. *)

val pp : Format.formatter -> t -> unit
