open Lid.Relay_station

let full_chain n = List.init n (fun _ -> Full)

let fig1 ?(r_direct = 1) ?(r_to_b = 1) ?(r_from_b = 1) () =
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" () in
  let a = Network.add_shell b ~name:"A" (Lid.Pearl.fork2 ()) in
  let bn = Network.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let c = Network.add_shell b ~name:"C" (Lid.Pearl.adder ()) in
  let sink = Network.add_sink b ~name:"out" () in
  let _ = Network.connect b ~src:(src, 0) ~dst:(a, 0) () in
  let _ =
    Network.connect b ~stations:(full_chain r_direct) ~src:(a, 0) ~dst:(c, 0) ()
  in
  let _ =
    Network.connect b ~stations:(full_chain r_to_b) ~src:(a, 1) ~dst:(bn, 0) ()
  in
  let _ =
    Network.connect b ~stations:(full_chain r_from_b) ~src:(bn, 0) ~dst:(c, 1) ()
  in
  let _ = Network.connect b ~stations:[] ~src:(c, 0) ~dst:(sink, 0) () in
  Network.build b

let reconvergent ?(stations_kind = Full) ~r_short ~r_long_head ~r_long_tail () =
  let chain n = List.init n (fun _ -> stations_kind) in
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" () in
  let a = Network.add_shell b ~name:"A" (Lid.Pearl.fork2 ()) in
  let bn = Network.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let c = Network.add_shell b ~name:"C" (Lid.Pearl.adder ()) in
  let sink = Network.add_sink b ~name:"out" () in
  let _ = Network.connect b ~src:(src, 0) ~dst:(a, 0) () in
  let _ = Network.connect b ~stations:(chain (max 1 r_short)) ~src:(a, 0) ~dst:(c, 0) () in
  let _ = Network.connect b ~stations:(chain (max 1 r_long_head)) ~src:(a, 1) ~dst:(bn, 0) () in
  let _ = Network.connect b ~stations:(chain (max 1 r_long_tail)) ~src:(bn, 0) ~dst:(c, 1) () in
  let _ = Network.connect b ~stations:[] ~src:(c, 0) ~dst:(sink, 0) () in
  Network.build b

let fig2 ?(stations_ab = 1) ?(stations_ba = 1) () =
  let b = Network.builder () in
  let a = Network.add_shell b ~name:"A" (Lid.Pearl.identity ()) in
  let bn = Network.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let _ = Network.connect b ~stations:(full_chain stations_ab) ~src:(a, 0) ~dst:(bn, 0) () in
  let _ = Network.connect b ~stations:(full_chain stations_ba) ~src:(bn, 0) ~dst:(a, 0) () in
  Network.build b

let chain ?(n_shells = 3) ?(stations = [ Full ]) ?(source_pattern = Pattern.always)
    ?(sink_pattern = Pattern.never) () =
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" ~pattern:source_pattern () in
  let shells =
    List.init n_shells (fun i ->
        Network.add_shell b ~name:(Printf.sprintf "s%d" i) (Lid.Pearl.identity ()))
  in
  let sink = Network.add_sink b ~name:"out" ~pattern:sink_pattern () in
  let rec wire prev = function
    | [] -> ignore (Network.connect b ~stations ~src:(prev, 0) ~dst:(sink, 0) ())
    | s :: rest ->
        ignore (Network.connect b ~stations ~src:(prev, 0) ~dst:(s, 0) ());
        wire s rest
  in
  wire src shells;
  Network.build b

let tree ~depth ?(stations = [ Full ]) () =
  if depth < 1 then invalid_arg "Generators.tree: depth must be >= 1";
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" () in
  (* Build forks level by level; returns the open endpoints of a subtree. *)
  let rec grow level parent_port =
    if level = depth then begin
      let sink = Network.add_sink b () in
      ignore (Network.connect b ~stations ~src:parent_port ~dst:(sink, 0) ())
    end
    else begin
      let f =
        Network.add_shell b ~name:(Printf.sprintf "fork_l%d_%d" level (fst parent_port))
          (Lid.Pearl.fork2 ())
      in
      ignore (Network.connect b ~stations ~src:parent_port ~dst:(f, 0) ());
      grow (level + 1) (f, 0);
      grow (level + 1) (f, 1)
    end
  in
  grow 0 (src, 0);
  Network.build b

let ring ~n_shells ?(stations = [ Full ]) () =
  if n_shells < 2 then invalid_arg "Generators.ring: need at least 2 shells";
  let b = Network.builder () in
  let shells =
    Array.init n_shells (fun i ->
        Network.add_shell b ~name:(Printf.sprintf "s%d" i) (Lid.Pearl.identity ()))
  in
  Array.iteri
    (fun i s ->
      let next = shells.((i + 1) mod n_shells) in
      ignore (Network.connect b ~stations ~src:(s, 0) ~dst:(next, 0) ()))
    shells;
  Network.build b

let tap_pearl () =
  Lid.Pearl.create ~name:"tap" ~n_inputs:2 ~n_outputs:2 ~initial_output:[| 0; 0 |]
    (fun state inputs ->
      let v = inputs.(0) + inputs.(1) in
      (state, [| v; v |]))

let ring_tapped ~n_shells ?(stations = [ Full ]) ?(source_pattern = Pattern.always)
    ?(sink_pattern = Pattern.never) () =
  if n_shells < 2 then invalid_arg "Generators.ring_tapped: need at least 2 shells";
  let b = Network.builder () in
  let src = Network.add_source b ~name:"src" ~pattern:source_pattern () in
  let sink = Network.add_sink b ~name:"out" ~pattern:sink_pattern () in
  (* Shell 0 is the tap: input 0 from the loop, input 1 from the source;
     output 0 to the loop, output 1 to the sink. *)
  let tap = Network.add_shell b ~name:"tap" (tap_pearl ()) in
  let shells =
    Array.init (n_shells - 1) (fun i ->
        Network.add_shell b ~name:(Printf.sprintf "s%d" (i + 1)) (Lid.Pearl.identity ()))
  in
  let _ = Network.connect b ~src:(src, 0) ~dst:(tap, 1) () in
  let _ = Network.connect b ~stations:[] ~src:(tap, 1) ~dst:(sink, 0) () in
  let loop_nodes = Array.append [| tap |] shells in
  Array.iteri
    (fun i s ->
      let next = loop_nodes.((i + 1) mod Array.length loop_nodes) in
      ignore (Network.connect b ~stations ~src:(s, 0) ~dst:(next, 0) ()))
    loop_nodes;
  Network.build b

(* ------------------------------------------------------------------ *)
(* Random instances.                                                   *)

let random_stations rng ~max_stations ~half_probability =
  let n = 1 + Random.State.int rng (max max_stations 1) in
  List.init n (fun _ ->
      if Random.State.float rng 1.0 < half_probability then Half else Full)

let random_pearl rng =
  match Random.State.int rng 6 with
  | 0 -> Lid.Pearl.identity ()
  | 1 -> Lid.Pearl.map1 ~name:"inc" (fun v -> v + 1)
  | 2 -> Lid.Pearl.adder ()
  | 3 -> Lid.Pearl.accumulator ()
  | 4 -> Lid.Pearl.delay_chain 2
  | _ -> Lid.Pearl.combine ~name:"diff" (fun a c -> a - c)

let random_net ~rng ~n_shells ~back_edges ~max_stations ~half_probability =
  let b = Network.builder () in
  (* [avail] holds output endpoints not yet consumed. *)
  let avail = ref [] in
  let take_avail () =
    match !avail with
    | [] ->
        let s = Network.add_source b () in
        (s, 0)
    | _ ->
        let i = Random.State.int rng (List.length !avail) in
        let ep = List.nth !avail i in
        avail := List.filteri (fun j _ -> j <> i) !avail;
        ep
  in
  let stations () = random_stations rng ~max_stations ~half_probability in
  let reserved = ref [] in
  let shell_ids = ref [] in
  for k = 0 to n_shells - 1 do
    let reserve_back = k < back_edges in
    let pearl = if reserve_back then Lid.Pearl.adder () else random_pearl rng in
    let id = Network.add_shell b pearl in
    shell_ids := id :: !shell_ids;
    let src0 = take_avail () in
    ignore (Network.connect b ~stations:(stations ()) ~src:src0 ~dst:(id, 0) ());
    if pearl.Lid.Pearl.n_inputs = 2 then
      if reserve_back then reserved := (id, k) :: !reserved
      else begin
        let src1 = take_avail () in
        ignore (Network.connect b ~stations:(stations ()) ~src:src1 ~dst:(id, 1) ())
      end;
    avail := (id, 0) :: !avail
  done;
  (* Keep one dangling output aside so the network always retains at least
     one sink (otherwise small instances can be swallowed whole by the back
     edges, leaving nothing observable). *)
  let reserved_for_sink =
    (* the oldest dangling output: least useful for closing loops *)
    match List.rev !avail with
    | [] -> None
    | ep :: rest_rev ->
        avail := List.rev rest_rev;
        Some ep
  in
  (* Close loops: feed each reserved input from an available output of a
     shell created no earlier than the joiner (so the edge points backward
     or sideways), falling back to any available output. *)
  List.iter
    (fun (joiner, _) ->
      let candidates =
        List.filter (fun (n, _) -> n <> joiner && n >= joiner) !avail
      in
      let pool = if candidates = [] then List.filter (fun (n, _) -> n <> joiner) !avail else candidates in
      let ep =
        match pool with
        | [] ->
            let s = Network.add_source b () in
            (s, 0)
        | _ -> List.nth pool (Random.State.int rng (List.length pool))
      in
      avail := List.filter (fun e -> e <> ep) !avail;
      ignore (Network.connect b ~stations:(stations ()) ~src:ep ~dst:(joiner, 1) ()))
    (List.rev !reserved);
  (match reserved_for_sink with Some ep -> avail := ep :: !avail | None -> ());
  (* Every dangling output feeds a sink. *)
  List.iter
    (fun ep ->
      let sink = Network.add_sink b () in
      ignore (Network.connect b ~stations:[] ~src:ep ~dst:(sink, 0) ()))
    !avail;
  Network.build b

let random_dag ~rng ~n_shells ?(max_stations = 3) ?(half_probability = 0.) () =
  random_net ~rng ~n_shells ~back_edges:0 ~max_stations ~half_probability

let random_loopy ~rng ~n_shells ?(extra_back_edges = 1) ?(max_stations = 3)
    ?(half_probability = 0.) () =
  random_net ~rng ~n_shells ~back_edges:extra_back_edges ~max_stations
    ~half_probability
