(** LID system graphs.

    A network is a directed (possibly cyclic) graph of synchronous
    processes, exactly the object the paper associates with a system:
    shells (wrapping pearls), environment sources and sinks, and channels,
    each channel carrying an ordered chain of relay stations.

    The builder enforces the paper's minimum-memory theorem: since a shell
    does not store incoming stop signals, every channel between two
    shell-like producers (shells or sources) must contain at least one
    (half or full) relay station.  [~allow_direct:true] lifts the check —
    used by the test suite to demonstrate what goes wrong without it. *)

type node_id = int
type edge_id = int

type node_kind =
  | Shell of Lid.Pearl.t
  | Source of { pattern : Pattern.t; start : int }
      (** emits [start, start+1, ...] on the cycles where [pattern] is
          active (and the protocol lets it) *)
  | Sink of { pattern : Pattern.t }
      (** asserts stop on the cycles where [pattern] is active *)

type node = { id : node_id; name : string; kind : node_kind }

type endpoint = { node : node_id; port : int }

type edge = {
  id : edge_id;
  src : endpoint;
  dst : endpoint;
  stations : Lid.Relay_station.kind list;  (** producer-to-consumer order *)
}

type t

(** {1 Building} *)

type builder

val builder : unit -> builder
val add_shell : builder -> ?name:string -> Lid.Pearl.t -> node_id

val add_source :
  builder -> ?name:string -> ?start:int -> ?pattern:Pattern.t -> unit -> node_id

val add_sink : builder -> ?name:string -> ?pattern:Pattern.t -> unit -> node_id

val connect :
  builder ->
  ?stations:Lid.Relay_station.kind list ->
  src:node_id * int ->
  dst:node_id * int ->
  unit ->
  edge_id
(** [connect b ~stations ~src:(n, port) ~dst:(m, port') ()] adds a channel.
    [stations] defaults to [[Full]]. *)

val build : ?allow_direct:bool -> builder -> t
(** Validates and freezes the network.  Raises [Invalid_argument] when a
    port is unconnected or doubly connected, a port index is out of range,
    or (unless [allow_direct]) a shell/source output reaches a shell input
    through a station-less channel. *)

(** {1 Accessors} *)

val nodes : t -> node list
val edges : t -> edge list
val node : t -> node_id -> node
val edge : t -> edge_id -> edge
val n_nodes : t -> int
val n_edges : t -> int

val in_edges : t -> node_id -> edge array
(** Indexed by destination port. *)

val out_edges : t -> node_id -> edge array
(** Indexed by source port. *)

val shells : t -> node list
val sources : t -> node list
val sinks : t -> node list

val n_inputs_of : t -> node_id -> int
val n_outputs_of : t -> node_id -> int

val station_count : t -> Lid.Relay_station.kind -> int
val env_period : t -> int
(** Least common multiple of all source/sink pattern periods. *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Surgery} *)

val with_stations : t -> edge_id -> Lid.Relay_station.kind list -> t
(** A copy of the network with one channel's relay chain replaced (used by
    path equalization and deadlock cures). *)
