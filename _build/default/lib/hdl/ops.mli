(** Bit-level semantics of the IR operators — the single source of truth
    shared by the simulators ({!Sim}) and the constant folder
    ({!Simplify}). *)

open Bitvec

val unop : Signal.unary_op -> Bits.t -> Bits.t
val binop : Signal.binary_op -> Bits.t -> Bits.t -> Bits.t
