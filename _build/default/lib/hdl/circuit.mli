(** Elaborated circuits.

    [create] closes a signal graph over its reachable nodes, checks
    well-formedness (all wires driven, all registers bound, no combinational
    cycles) and computes the evaluation order used by the simulators and the
    HDL emitters. *)

type t

val create : name:string -> inputs:Signal.t list -> outputs:Signal.t list -> t
(** [create ~name ~inputs ~outputs] elaborates the graph reachable from
    [outputs] (through both combinational and register inputs).

    Raises [Invalid_argument] if:
    - an output is not a named wire;
    - a reachable wire has no driver, or a register has no bound [d];
    - a combinational cycle exists (the message lists the cycle);
    - a reachable [Input] node is missing from [inputs];
    - two inputs/outputs share a name. *)

val name : t -> string
val inputs : t -> Signal.t list
val outputs : t -> Signal.t list

val comb_order : t -> Signal.t array
(** All non-source reachable nodes, topologically sorted so that each node
    appears after its combinational dependencies. *)

val regs : t -> Signal.t array
val nodes : t -> Signal.t array

val find_input : t -> string -> Signal.t
(** Raises [Not_found]. *)

val find_output : t -> string -> Signal.t

type stats = {
  n_inputs : int;
  n_outputs : int;
  n_regs : int;
  n_comb : int;
  reg_bits : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
