open Bitvec

type unary_op = Op_not | Op_neg | Op_reduce_or | Op_reduce_and | Op_reduce_xor

type binary_op =
  | Op_add
  | Op_sub
  | Op_mul
  | Op_and
  | Op_or
  | Op_xor
  | Op_eq
  | Op_ne
  | Op_ult
  | Op_ule
  | Op_slt

type t =
  | Const of { id : int; bits : Bits.t }
  | Input of { id : int; name : string; width : int }
  | Wire of { id : int; width : int; mutable driver : t option; name : string option }
  | Unop of { id : int; op : unary_op; a : t; width : int }
  | Binop of { id : int; op : binary_op; a : t; b : t; width : int }
  | Mux of { id : int; sel : t; cases : t list; width : int }
  | Concat of { id : int; parts : t list; width : int }
  | Select of { id : int; a : t; hi : int; lo : int }
  | Reg of {
      id : int;
      width : int;
      mutable d : t option;
      mutable enable : t option;
      reset_value : Bits.t;
      name : string option;
    }

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let uid = function
  | Const { id; _ }
  | Input { id; _ }
  | Wire { id; _ }
  | Unop { id; _ }
  | Binop { id; _ }
  | Mux { id; _ }
  | Concat { id; _ }
  | Select { id; _ }
  | Reg { id; _ } ->
      id

let width = function
  | Const { bits; _ } -> Bits.width bits
  | Input { width; _ }
  | Wire { width; _ }
  | Unop { width; _ }
  | Binop { width; _ }
  | Mux { width; _ }
  | Concat { width; _ }
  | Reg { width; _ } ->
      width
  | Select { hi; lo; _ } -> hi - lo + 1

let deps = function
  | Const _ | Input _ | Reg _ -> []
  | Wire { driver; _ } -> ( match driver with None -> [] | Some d -> [ d ])
  | Unop { a; _ } -> [ a ]
  | Binop { a; b; _ } -> [ a; b ]
  | Mux { sel; cases; _ } -> sel :: cases
  | Concat { parts; _ } -> parts
  | Select { a; _ } -> [ a ]

let sequential_deps = function
  | Reg { d; enable; _ } ->
      let add acc = function None -> acc | Some s -> s :: acc in
      add (add [] enable) d
  | Const _ | Input _ | Wire _ | Unop _ | Binop _ | Mux _ | Concat _ | Select _
    ->
      []

let const bits = Const { id = next_id (); bits }
let consti ~width n = const (Bits.of_int ~width n)
let vdd = const (Bits.of_bool true)
let gnd = const (Bits.of_bool false)

let input name w =
  if w < 1 then invalid_arg "Signal.input: width must be >= 1";
  Input { id = next_id (); name; width = w }

let wire ?name w =
  if w < 1 then invalid_arg "Signal.wire: width must be >= 1";
  Wire { id = next_id (); width = w; driver = None; name }

let assign w driver =
  match w with
  | Wire r ->
      if r.driver <> None then invalid_arg "Signal.assign: wire already driven";
      if width driver <> r.width then
        invalid_arg
          (Printf.sprintf "Signal.assign: width mismatch (%d vs %d)" r.width
             (width driver));
      r.driver <- Some driver
  | _ -> invalid_arg "Signal.assign: not a wire"

let output name s =
  let w = wire ~name (width s) in
  assign w s;
  w

let same_width name a b =
  if width a <> width b then
    invalid_arg
      (Printf.sprintf "Signal.%s: width mismatch (%d vs %d)" name (width a)
         (width b))

let unop op a ~width = Unop { id = next_id (); op; a; width }

let binop name op a b ~width =
  same_width name a b;
  Binop { id = next_id (); op; a; b; width }

let ( ~: ) a = unop Op_not a ~width:(width a)
let negate a = unop Op_neg a ~width:(width a)
let ( &: ) a b = binop "(&:)" Op_and a b ~width:(width a)
let ( |: ) a b = binop "(|:)" Op_or a b ~width:(width a)
let ( ^: ) a b = binop "(^:)" Op_xor a b ~width:(width a)
let ( +: ) a b = binop "(+:)" Op_add a b ~width:(width a)
let ( -: ) a b = binop "(-:)" Op_sub a b ~width:(width a)
let ( *: ) a b = binop "( *: )" Op_mul a b ~width:(width a)
let ( ==: ) a b = binop "(==:)" Op_eq a b ~width:1
let ( <>: ) a b = binop "(<>:)" Op_ne a b ~width:1
let ( <: ) a b = binop "(<:)" Op_ult a b ~width:1
let ( <=: ) a b = binop "(<=:)" Op_ule a b ~width:1
let slt a b = binop "slt" Op_slt a b ~width:1
let reduce_or a = unop Op_reduce_or a ~width:1
let reduce_and a = unop Op_reduce_and a ~width:1
let reduce_xor a = unop Op_reduce_xor a ~width:1

let mux sel cases =
  match cases with
  | [] -> invalid_arg "Signal.mux: no cases"
  | c0 :: rest ->
      List.iter (fun c -> same_width "mux" c0 c) rest;
      Mux { id = next_id (); sel; cases; width = width c0 }

let mux2 sel on_true on_false =
  if width sel <> 1 then invalid_arg "Signal.mux2: selector must be 1 bit";
  mux sel [ on_false; on_true ]

let concat_msb parts =
  if parts = [] then invalid_arg "Signal.concat_msb: no parts";
  let w = List.fold_left (fun acc p -> acc + width p) 0 parts in
  Concat { id = next_id (); parts; width = w }

let select a ~hi ~lo =
  if lo < 0 || hi < lo || hi >= width a then
    invalid_arg "Signal.select: bad range";
  Select { id = next_id (); a; hi; lo }

let bit a i = select a ~hi:i ~lo:i

let zero_extend a ~width:w =
  if w < width a then invalid_arg "Signal.zero_extend: narrowing"
  else if w = width a then a
  else concat_msb [ const (Bits.zero (w - width a)); a ]

let sign_extend a ~width:w =
  if w < width a then invalid_arg "Signal.sign_extend: narrowing"
  else if w = width a then a
  else
    let sign = select a ~hi:(width a - 1) ~lo:(width a - 1) in
    let rec copies n acc = if n = 0 then acc else copies (n - 1) (sign :: acc) in
    concat_msb (copies (w - width a) [ a ])

let repeat s n =
  if n < 1 then invalid_arg "Signal.repeat: need n >= 1";
  concat_msb (List.init n (fun _ -> s))

let msb a = bit a (width a - 1)
let lsb a = bit a 0

let sll a n =
  if n < 0 then invalid_arg "Signal.sll: negative shift";
  let w = width a in
  if n = 0 then a
  else if n >= w then const (Bits.zero w)
  else concat_msb [ select a ~hi:(w - 1 - n) ~lo:0; const (Bits.zero n) ]

let srl a n =
  if n < 0 then invalid_arg "Signal.srl: negative shift";
  let w = width a in
  if n = 0 then a
  else if n >= w then const (Bits.zero w)
  else concat_msb [ const (Bits.zero n); select a ~hi:(w - 1) ~lo:n ]

let sra a n =
  if n < 0 then invalid_arg "Signal.sra: negative shift";
  let w = width a in
  if n = 0 then a
  else
    let sign = msb a in
    if n >= w then repeat sign w
    else concat_msb [ repeat sign n; select a ~hi:(w - 1) ~lo:n ]

let reg ?name ?enable ~reset d =
  if Bits.width reset <> width d then
    invalid_arg "Signal.reg: reset width mismatch";
  (match enable with
  | Some e when width e <> 1 -> invalid_arg "Signal.reg: enable must be 1 bit"
  | _ -> ());
  Reg
    { id = next_id (); width = width d; d = Some d; enable; reset_value = reset; name }

let reg_unbound ?name ~reset () =
  Reg
    {
      id = next_id ();
      width = Bits.width reset;
      d = None;
      enable = None;
      reset_value = reset;
      name;
    }

let reg_assign r ~d =
  match r with
  | Reg rr ->
      if rr.d <> None then invalid_arg "Signal.reg_assign: already bound";
      if width d <> rr.width then invalid_arg "Signal.reg_assign: width mismatch";
      rr.d <- Some d
  | _ -> invalid_arg "Signal.reg_assign: not a register"

let reg_set_enable r ~enable =
  match r with
  | Reg rr ->
      if rr.enable <> None then invalid_arg "Signal.reg_set_enable: already set";
      if width enable <> 1 then invalid_arg "Signal.reg_set_enable: enable must be 1 bit";
      rr.enable <- Some enable
  | _ -> invalid_arg "Signal.reg_set_enable: not a register"

let reg_fb ?name ?enable ~reset ~width:w f =
  if Bits.width reset <> w then invalid_arg "Signal.reg_fb: reset width mismatch";
  let r =
    Reg { id = next_id (); width = w; d = None; enable; reset_value = reset; name }
  in
  reg_assign r ~d:(f r);
  r

let name_of s =
  match s with
  | Input { name; _ } -> name
  | Wire { name = Some n; _ } | Reg { name = Some n; _ } -> n
  | _ -> Printf.sprintf "_%d" (uid s)

let is_comb_source = function
  | Const _ | Input _ | Reg _ -> true
  | Wire _ | Unop _ | Binop _ | Mux _ | Concat _ | Select _ -> false

let pp_kind fmt s =
  let k =
    match s with
    | Const _ -> "const"
    | Input _ -> "input"
    | Wire _ -> "wire"
    | Unop _ -> "unop"
    | Binop _ -> "binop"
    | Mux _ -> "mux"
    | Concat _ -> "concat"
    | Select _ -> "select"
    | Reg _ -> "reg"
  in
  Format.pp_print_string fmt k
