lib/hdl/circuit.mli: Format Signal
