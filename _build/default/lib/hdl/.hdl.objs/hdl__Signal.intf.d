lib/hdl/signal.mli: Bits Bitvec Format
