lib/hdl/simplify.mli: Circuit Format
