lib/hdl/ops.ml: Bits Bitvec Signal
