lib/hdl/signal.ml: Bits Bitvec Format List Printf
