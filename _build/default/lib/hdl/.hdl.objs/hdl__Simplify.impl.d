lib/hdl/simplify.ml: Bits Bitvec Circuit Format Hashtbl List Ops Option Signal
