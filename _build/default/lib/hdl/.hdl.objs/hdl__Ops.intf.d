lib/hdl/ops.mli: Bits Bitvec Signal
