lib/hdl/circuit.ml: Array Format Hashtbl List Printf Signal String
