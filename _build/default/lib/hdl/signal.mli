(** Structural RTL signals.

    A signal is a node in a directed graph of combinational operators,
    registers, inputs and constants.  Registers and wires have mutable
    drivers so that feedback (sequential loops) can be built; a {!Circuit}
    later checks that every wire is driven and that no purely combinational
    cycle exists. *)

open Bitvec

type unary_op = Op_not | Op_neg | Op_reduce_or | Op_reduce_and | Op_reduce_xor

type binary_op =
  | Op_add
  | Op_sub
  | Op_mul
  | Op_and
  | Op_or
  | Op_xor
  | Op_eq
  | Op_ne
  | Op_ult
  | Op_ule
  | Op_slt

type t =
  | Const of { id : int; bits : Bits.t }
  | Input of { id : int; name : string; width : int }
  | Wire of { id : int; width : int; mutable driver : t option; name : string option }
  | Unop of { id : int; op : unary_op; a : t; width : int }
  | Binop of { id : int; op : binary_op; a : t; b : t; width : int }
  | Mux of { id : int; sel : t; cases : t list; width : int }
  | Concat of { id : int; parts : t list; width : int }
      (** [parts] are listed msb-first. *)
  | Select of { id : int; a : t; hi : int; lo : int }
  | Reg of {
      id : int;
      width : int;
      mutable d : t option;
      mutable enable : t option;
      reset_value : Bits.t;
      name : string option;
    }

val uid : t -> int
val width : t -> int

val deps : t -> t list
(** Combinational dependencies: for a register this is [[]] (its current
    value is state, not a function of this cycle's inputs); for a wire it is
    its driver. *)

val sequential_deps : t -> t list
(** For a register: its [d] and [enable] signals.  Empty otherwise. *)

(** {1 Constructors} *)

val const : Bits.t -> t
val consti : width:int -> int -> t
val vdd : t
(** The constant 1-bit [1].  (A fresh node per use of [vdd] is not needed;
    this is a shared constant.) *)

val gnd : t

val input : string -> int -> t
val wire : ?name:string -> int -> t

val assign : t -> t -> unit
(** [assign w driver] sets the driver of wire [w].  Raises if [w] is not a
    wire, is already driven, or on width mismatch. *)

val output : string -> t -> t
(** [output name s] is a named wire driven by [s] — convenient for circuit
    outputs. *)

(** {1 Operators} *)

val ( ~: ) : t -> t
val negate : t -> t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
val ( <=: ) : t -> t -> t
val slt : t -> t -> t
val reduce_or : t -> t
val reduce_and : t -> t
val reduce_xor : t -> t

val mux : t -> t list -> t
(** [mux sel cases]: all cases must share a width; a selector value beyond
    the last case selects the last case. *)

val mux2 : t -> t -> t -> t
(** [mux2 sel on_true on_false]; [sel] must be 1 bit wide. *)

val concat_msb : t list -> t
val select : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
val zero_extend : t -> width:int -> t
val sign_extend : t -> width:int -> t

val repeat : t -> int -> t
(** [repeat s n] concatenates [n >= 1] copies of [s]. *)

val msb : t -> t
val lsb : t -> t

val sll : t -> int -> t
(** Left shift by a constant, zero fill; shifts of [width] or more give
    zero. *)

val srl : t -> int -> t
val sra : t -> int -> t

(** {1 Registers} *)

val reg : ?name:string -> ?enable:t -> reset:Bits.t -> t -> t
(** [reg ~enable ~reset d] is a D flip-flop with synchronous enable
    (default: always enabled) and reset value [reset] (the simulation /
    emission model uses an implicit global clock and an initial value). *)

val reg_fb :
  ?name:string -> ?enable:t -> reset:Bits.t -> width:int -> (t -> t) -> t
(** [reg_fb ~reset ~width f] builds a register whose next value is
    [f current_value] — the standard feedback idiom. *)

val reg_unbound : ?name:string -> reset:Bits.t -> unit -> t
(** A register with no data input yet; bind it later with {!reg_assign}
    (and optionally {!reg_set_enable}).  Used by netlist transformations
    that must rebuild sequential cycles. *)

val reg_assign : t -> d:t -> unit
(** Late binding of a register's data input (for feedback built by hand).
    Raises if already bound or on width mismatch. *)

val reg_set_enable : t -> enable:t -> unit

(** {1 Naming and traversal} *)

val name_of : t -> string
(** A printable name: the declared name if any, otherwise ["_<uid>"]. *)

val is_comb_source : t -> bool
(** True for constants, inputs and registers: nodes whose cycle-[t] value
    does not depend on other cycle-[t] values. *)

val pp_kind : Format.formatter -> t -> unit
