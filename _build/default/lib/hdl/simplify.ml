open Bitvec
module S = Signal

type key =
  | K_const of int * string
  | K_un of S.unary_op * int
  | K_bin of S.binary_op * int * int
  | K_mux of int * int list
  | K_cat of int list
  | K_sel of int * int * int

let const_of (s : S.t) =
  match s with S.Const { bits; _ } -> Some bits | _ -> None

(* chase wire drivers without entering registers *)
let rec syntactic_root (s : S.t) =
  match s with S.Wire { driver = Some d; _ } -> syntactic_root d | _ -> s

let circuit c =
  let memo : (int, S.t) Hashtbl.t = Hashtbl.create 256 in
  let cse : (key, S.t) Hashtbl.t = Hashtbl.create 256 in
  let share key build =
    match Hashtbl.find_opt cse key with
    | Some s -> s
    | None ->
        let s = build () in
        Hashtbl.replace cse key s;
        s
  in
  let const bits =
    share (K_const (Bits.width bits, Bits.to_string bits)) (fun () -> S.const bits)
  in
  let is_zero s = match const_of s with Some b -> Bits.is_zero b | None -> false in
  let is_ones s = match const_of s with Some b -> Bits.is_ones b | None -> false in
  let is_one s =
    match const_of s with
    | Some b -> (not (Bits.is_zero b)) && Bits.is_zero (Bits.shift_right_logical b 1)
    | None -> false
  in
  let rec go (s : S.t) =
    match Hashtbl.find_opt memo (S.uid s) with
    | Some s' -> s'
    | None ->
        let s' = rewrite s in
        Hashtbl.replace memo (S.uid s) s';
        s'
  and rewrite (s : S.t) =
    match s with
    | S.Input _ -> s
    | S.Const { bits; _ } -> const bits
    | S.Wire { driver = Some d; _ } -> go d
    | S.Wire { driver = None; _ } -> invalid_arg "Simplify: undriven wire"
    | S.Reg { d = Some d; enable; reset_value; name; _ } -> (
        (* an enable syntactically tied to 0 freezes the register *)
        match Option.map syntactic_root enable with
        | Some (S.Const { bits; _ }) when Bits.is_zero bits -> const reset_value
        | _ ->
            let fresh = S.reg_unbound ?name ~reset:reset_value () in
            Hashtbl.replace memo (S.uid s) fresh;
            S.reg_assign fresh ~d:(go d);
            (match enable with
            | None -> ()
            | Some e ->
                let e' = go e in
                if is_ones e' then () else S.reg_set_enable fresh ~enable:e');
            fresh)
    | S.Reg { d = None; _ } -> invalid_arg "Simplify: unbound register"
    | S.Unop { op; a; _ } -> (
        let a = go a in
        match const_of a with
        | Some bits -> const (Ops.unop op bits)
        | None -> (
            match (op, a) with
            | S.Op_not, S.Unop { op = S.Op_not; a = inner; _ } -> inner
            | (S.Op_reduce_or | S.Op_reduce_and | S.Op_reduce_xor), _
              when S.width a = 1 ->
                a
            | _ -> share (K_un (op, S.uid a)) (fun () -> mk_unop op a)))
    | S.Binop { op; a; b; _ } -> binop op (go a) (go b)
    | S.Mux { sel; cases; _ } -> (
        let sel = go sel in
        let cases = List.map go cases in
        match const_of sel with
        | Some bits ->
            let n = List.length cases in
            let idx =
              let w = Bits.width bits in
              if w > 30 && Bits.reduce_or (Bits.select bits ~hi:(w - 1) ~lo:30)
              then n - 1
              else min (Bits.to_int (Bits.resize bits ~width:(min w 30))) (n - 1)
            in
            List.nth cases idx
        | None -> (
            match cases with
            | first :: rest when List.for_all (fun c -> S.uid c = S.uid first) rest
              ->
                first
            | _ ->
                share
                  (K_mux (S.uid sel, List.map S.uid cases))
                  (fun () -> S.mux sel cases)))
    | S.Concat { parts; _ } -> (
        let parts = List.map go parts in
        match parts with
        | [ p ] -> p
        | _ ->
            if List.for_all (fun p -> const_of p <> None) parts then
              const
                (List.fold_left
                   (fun acc p ->
                     match (acc, const_of p) with
                     | None, Some b -> Some b
                     | Some acc, Some b -> Some (Bits.concat ~msb:acc ~lsb:b)
                     | _, None -> assert false)
                   None parts
                |> Option.get)
            else share (K_cat (List.map S.uid parts)) (fun () -> S.concat_msb parts))
    | S.Select { a; hi; lo; _ } -> (
        let a = go a in
        if lo = 0 && hi = S.width a - 1 then a
        else
          match const_of a with
          | Some bits -> const (Bits.select bits ~hi ~lo)
          | None ->
              share (K_sel (S.uid a, hi, lo)) (fun () -> S.select a ~hi ~lo))
  and mk_unop op a =
    match op with
    | S.Op_not -> S.( ~: ) a
    | S.Op_neg -> S.negate a
    | S.Op_reduce_or -> S.reduce_or a
    | S.Op_reduce_and -> S.reduce_and a
    | S.Op_reduce_xor -> S.reduce_xor a
  and binop op a b =
    let default () = share (K_bin (op, S.uid a, S.uid b)) (fun () -> raw_binop op a b) in
    match (const_of a, const_of b) with
    | Some ba, Some bb -> const (Ops.binop op ba bb)
    | _ -> (
        let same = S.uid a = S.uid b in
        match op with
        | S.Op_and ->
            if is_zero a || is_zero b then const (Bits.zero (S.width a))
            else if is_ones a then b
            else if is_ones b then a
            else if same then a
            else default ()
        | S.Op_or ->
            if is_ones a || is_ones b then const (Bits.ones (S.width a))
            else if is_zero a then b
            else if is_zero b then a
            else if same then a
            else default ()
        | S.Op_xor ->
            if is_zero a then b
            else if is_zero b then a
            else if same then const (Bits.zero (S.width a))
            else default ()
        | S.Op_add ->
            if is_zero a then b else if is_zero b then a else default ()
        | S.Op_sub ->
            if is_zero b then a
            else if same then const (Bits.zero (S.width a))
            else default ()
        | S.Op_mul ->
            if is_zero a || is_zero b then const (Bits.zero (S.width a))
            else if is_one a then b
            else if is_one b then a
            else default ()
        | S.Op_eq -> if same then const (Bits.of_bool true) else default ()
        | S.Op_ne -> if same then const (Bits.of_bool false) else default ()
        | S.Op_ult -> if same then const (Bits.of_bool false) else default ()
        | S.Op_ule -> if same then const (Bits.of_bool true) else default ()
        | S.Op_slt -> if same then const (Bits.of_bool false) else default ())
  and raw_binop op a b =
    match op with
    | S.Op_add -> S.( +: ) a b
    | S.Op_sub -> S.( -: ) a b
    | S.Op_mul -> S.( *: ) a b
    | S.Op_and -> S.( &: ) a b
    | S.Op_or -> S.( |: ) a b
    | S.Op_xor -> S.( ^: ) a b
    | S.Op_eq -> S.( ==: ) a b
    | S.Op_ne -> S.( <>: ) a b
    | S.Op_ult -> S.( <: ) a b
    | S.Op_ule -> S.( <=: ) a b
    | S.Op_slt -> S.slt a b
  in
  let outputs =
    List.map
      (fun o ->
        match o with
        | S.Wire { driver = Some d; _ } -> S.output (S.name_of o) (go d)
        | _ -> invalid_arg "Simplify: output is not a driven wire")
      (Circuit.outputs c)
  in
  Circuit.create ~name:(Circuit.name c) ~inputs:(Circuit.inputs c) ~outputs

type report = { before : Circuit.stats; after : Circuit.stats }

let with_report c =
  let c' = circuit c in
  ({ before = Circuit.stats c; after = Circuit.stats c' } : report)
  |> fun r -> (c', r)

let pp_report fmt r =
  Format.fprintf fmt "before: %a@.after:  %a" Circuit.pp_stats r.before
    Circuit.pp_stats r.after
