(* Bit-level semantics of the IR operators; shared by the simulators and
   the constant folder. *)

open Bitvec

let unop (op : Signal.unary_op) a =
  match op with
  | Signal.Op_not -> Bits.lognot a
  | Signal.Op_neg -> Bits.neg a
  | Signal.Op_reduce_or -> Bits.of_bool (Bits.reduce_or a)
  | Signal.Op_reduce_and -> Bits.of_bool (Bits.reduce_and a)
  | Signal.Op_reduce_xor -> Bits.of_bool (Bits.reduce_xor a)

let binop (op : Signal.binary_op) a b =
  match op with
  | Signal.Op_add -> Bits.add a b
  | Signal.Op_sub -> Bits.sub a b
  | Signal.Op_mul -> Bits.mul a b
  | Signal.Op_and -> Bits.logand a b
  | Signal.Op_or -> Bits.logor a b
  | Signal.Op_xor -> Bits.logxor a b
  | Signal.Op_eq -> Bits.of_bool (Bits.equal a b)
  | Signal.Op_ne -> Bits.of_bool (not (Bits.equal a b))
  | Signal.Op_ult -> Bits.of_bool (Bits.ult a b)
  | Signal.Op_ule -> Bits.of_bool (Bits.ule a b)
  | Signal.Op_slt -> Bits.of_bool (Bits.slt a b)
