(** Netlist optimization.

    Rewrites a circuit bottom-up with:
    - constant folding (operators over constants evaluate at elaboration);
    - algebraic identities ([a & 0], [a + 0], [mux] with constant selector,
      double negation, full-range selects, ...);
    - common-subexpression elimination (structurally identical operator
      nodes are shared);
    - register pruning (an enable tied to 0 freezes the register at its
      reset value, which then folds onward); wires are collapsed into
      their drivers.

    Inputs keep their identity, outputs keep their names, registers keep
    their reset values — the simplified circuit is cycle-for-cycle
    equivalent to the original (a qcheck property in the test suite). *)

val circuit : Circuit.t -> Circuit.t

type report = { before : Circuit.stats; after : Circuit.stats }

val with_report : Circuit.t -> Circuit.t * report
val pp_report : Format.formatter -> report -> unit
