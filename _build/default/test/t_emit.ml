open Bitvec
open Hdl.Signal

let contains s affix = Astring.String.is_infix ~affix s

let adder_circuit () =
  let a = input "a" 8 and b = input "b" 8 in
  Hdl.Circuit.create ~name:"adder8" ~inputs:[ a; b ]
    ~outputs:[ output "sum" (a +: b) ]

let reg_circuit () =
  let d = input "d" 4 and en = input "en" 1 in
  let q = reg ~name:"q_reg" ~enable:en ~reset:(Bits.of_int ~width:4 5) d in
  Hdl.Circuit.create ~name:"dff" ~inputs:[ d; en ] ~outputs:[ output "q" q ]

let test_vhdl_structure () =
  let text = Emit.Vhdl.emit (adder_circuit ()) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (contains text affix))
    [
      "entity adder8 is";
      "architecture rtl of adder8";
      "clk : in std_logic";
      "a : in std_logic_vector(7 downto 0)";
      "sum : out std_logic_vector(7 downto 0)";
      "unsigned(a) + unsigned(b)";
      "end architecture rtl;";
    ]

let test_vhdl_register () =
  let text = Emit.Vhdl.emit (reg_circuit ()) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (contains text affix))
    [
      "signal q_reg : std_logic_vector(3 downto 0) := \"0101\"";
      "rising_edge(clk)";
      "if en = \"1\" then q_reg <= d; end if;";
    ]

let test_verilog_structure () =
  let text = Emit.Verilog.emit (adder_circuit ()) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (contains text affix))
    [
      "module adder8 (";
      "input wire clk";
      "input wire [7:0] a";
      "output wire [7:0] sum";
      "(a + b)";
      "endmodule";
    ]

let test_verilog_register () =
  let text = Emit.Verilog.emit (reg_circuit ()) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (contains text affix))
    [
      "reg [3:0] q_reg";
      "initial q_reg = 4'b0101";
      "always @(posedge clk)";
      "if (en) q_reg <= d;";
    ]

let test_name_sanitization () =
  Alcotest.(check string) "spaces" "a_b" (Emit.Naming.sanitize "a b");
  Alcotest.(check string) "leading digit" "s_1x" (Emit.Naming.sanitize "1x");
  Alcotest.(check string) "ok" "half_rs" (Emit.Naming.sanitize "half_rs")

let test_every_block_emits () =
  (* all protocol blocks must render in both languages without raising *)
  let blocks =
    [
      Lid.Rtl_gen.relay_station ~data_width:16 Lid.Relay_station.Full;
      Lid.Rtl_gen.relay_station ~data_width:16 Lid.Relay_station.Half;
      Lid.Rtl_gen.relay_station ~flavour:Lid.Protocol.Original ~data_width:16
        Lid.Relay_station.Half;
      Lid.Rtl_gen.identity_shell ~data_width:16 ();
      Lid.Rtl_gen.adder_shell ~data_width:16 ();
      Lid.Rtl_gen.accumulator_shell ~data_width:16 ();
    ]
  in
  List.iter
    (fun circ ->
      let v = Emit.Vhdl.emit circ and sv = Emit.Verilog.emit circ in
      Alcotest.(check bool) "vhdl non-trivial" true (String.length v > 400);
      Alcotest.(check bool) "verilog non-trivial" true (String.length sv > 250))
    blocks

let test_vhdl_mux_chain () =
  let s = input "s" 2 and a = input "a" 4 and b = input "b" 4 and c = input "c" 4 in
  let circ =
    Hdl.Circuit.create ~name:"m" ~inputs:[ s; a; b; c ]
      ~outputs:[ output "o" (mux s [ a; b; c ]) ]
  in
  let text = Emit.Vhdl.emit circ in
  Alcotest.(check bool) "when chain" true (contains text "when s = \"00\" else");
  let vtext = Emit.Verilog.emit circ in
  Alcotest.(check bool) "ternary chain" true (contains vtext "s == 2'b00 ?")

let test_const_inlined () =
  let a = input "a" 4 in
  let circ =
    Hdl.Circuit.create ~name:"k" ~inputs:[ a ]
      ~outputs:[ output "o" (a +: consti ~width:4 3) ]
  in
  Alcotest.(check bool) "vhdl literal" true
    (contains (Emit.Vhdl.emit circ) "\"0011\"");
  Alcotest.(check bool) "verilog literal" true
    (contains (Emit.Verilog.emit circ) "4'b0011")

let suite =
  [
    Alcotest.test_case "vhdl entity structure" `Quick test_vhdl_structure;
    Alcotest.test_case "vhdl register process" `Quick test_vhdl_register;
    Alcotest.test_case "verilog module structure" `Quick test_verilog_structure;
    Alcotest.test_case "verilog register block" `Quick test_verilog_register;
    Alcotest.test_case "name sanitization" `Quick test_name_sanitization;
    Alcotest.test_case "all blocks emit" `Quick test_every_block_emits;
    Alcotest.test_case "mux rendering" `Quick test_vhdl_mux_chain;
    Alcotest.test_case "constants inlined" `Quick test_const_inlined;
  ]
