(* Closed-form analysis, path equalization, static deadlock rules. *)

module A = Topology.Analysis
module G = Topology.Generators
module Eq = Topology.Equalize

let flt = Alcotest.(check (float 1e-9))

let test_loop_throughput_formula () =
  flt "2/(2+2)" 0.5 (A.loop_throughput ~s:2 ~r:2);
  flt "3/(3+1)" 0.75 (A.loop_throughput ~s:3 ~r:1);
  flt "no stations" 1.0 (A.loop_throughput ~s:4 ~r:0);
  Alcotest.check_raises "s=0"
    (Invalid_argument "Analysis.loop_throughput: need at least one shell")
    (fun () -> ignore (A.loop_throughput ~s:0 ~r:1))

let test_ff_throughput_formula () =
  flt "fig1" 0.8 (A.ff_throughput ~m:5 ~i:1);
  flt "balanced" 1.0 (A.ff_throughput ~m:6 ~i:0);
  Alcotest.check_raises "bad i" (Invalid_argument "Analysis.ff_throughput: bad m/i")
    (fun () -> ignore (A.ff_throughput ~m:3 ~i:4))

let test_ff_params () =
  Alcotest.(check (pair int int)) "fig1 params" (5, 1)
    (A.ff_params ~r_short:1 ~r_long:2 ~shells_long:1)

let test_transient_bound_positive () =
  Alcotest.(check bool) "positive" true (A.transient_bound (G.fig1 ()) > 0)

(* equalization *)

let test_plan_balances_fig1 () =
  let additions = Eq.plan (G.fig1 ()) in
  (* the direct branch is 2 stations short in latency *)
  Alcotest.(check int) "one channel touched" 1 (List.length additions);
  Alcotest.(check int) "2 spares" 2 (List.hd additions).Eq.spare

let test_plan_empty_on_balanced () =
  Alcotest.(check int) "no additions" 0
    (List.length (Eq.plan (G.chain ~n_shells:4 ())))

let test_plan_rejects_loops () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eq.plan (G.fig2 ()));
       false
     with Invalid_argument _ -> true)

let test_optimize_reaches_one () =
  List.iter
    (fun net ->
      let net', _ = Eq.optimize net in
      flt "bound 1" 1.0 (Topology.Elastic.throughput_bound net');
      (* and the real system agrees *)
      let engine = Skeleton.Engine.create net' in
      match Skeleton.Measure.analyze engine with
      | Some r -> flt "measured 1" 1.0 (Skeleton.Measure.system_throughput r)
      | None -> Alcotest.fail "no steady state")
    [
      G.fig1 ();
      G.fig1 ~r_to_b:2 ~r_from_b:2 ();
      G.reconvergent ~r_short:1 ~r_long_head:3 ~r_long_tail:1 ();
    ]

let test_optimize_noop_when_already_full () =
  let net = G.chain ~n_shells:3 () in
  let _, additions = Eq.optimize net in
  Alcotest.(check int) "untouched" 0 (List.length additions)

let prop_optimize_random_dags =
  QCheck.Test.make ~name:"optimize reaches throughput 1 on random DAGs"
    ~count:30 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 41 |] in
      let net = Topology.Generators.random_dag ~rng ~n_shells:(3 + (seed mod 5)) () in
      let net', _ = Eq.optimize ~budget:128 net in
      Topology.Elastic.throughput_bound net' = 1.0)

(* static deadlock rules *)

let test_static_feedforward_safe () =
  List.iter
    (fun net ->
      Alcotest.(check bool) "safe" true
        (Topology.Deadlock.is_statically_safe (Topology.Deadlock.static_verdict net)))
    [ G.chain ~n_shells:3 (); G.fig1 (); G.tree ~depth:3 () ]

let test_static_full_only_safe () =
  match Topology.Deadlock.static_verdict (G.fig2 ()) with
  | Topology.Deadlock.Safe_full_only -> ()
  | _ -> Alcotest.fail "expected Safe_full_only"

let test_static_half_in_loop_flagged () =
  let net = G.ring ~n_shells:3 ~stations:[ Lid.Relay_station.Half ] () in
  match Topology.Deadlock.static_verdict net with
  | Topology.Deadlock.Potential { half_in_loops } ->
      Alcotest.(check int) "one loop" 1 (List.length half_in_loops);
      Alcotest.(check int) "3 halves" 3 (snd (List.hd half_in_loops))
  | _ -> Alcotest.fail "expected Potential"

let test_static_half_off_loop_ok () =
  (* halves on a feed-forward spur of a full-station loop are harmless *)
  let net =
    G.ring_tapped ~n_shells:3 ~stations:[ Lid.Relay_station.Full ] ()
  in
  let e0 = (Topology.Network.out_edges net 0).(0) in
  ignore e0;
  Alcotest.(check bool) "safe" true
    (Topology.Deadlock.is_statically_safe (Topology.Deadlock.static_verdict net))

let suite =
  [
    Alcotest.test_case "loop formula" `Quick test_loop_throughput_formula;
    Alcotest.test_case "ff formula" `Quick test_ff_throughput_formula;
    Alcotest.test_case "ff params" `Quick test_ff_params;
    Alcotest.test_case "transient bound positive" `Quick test_transient_bound_positive;
    Alcotest.test_case "plan balances fig1" `Quick test_plan_balances_fig1;
    Alcotest.test_case "plan no-op when balanced" `Quick test_plan_empty_on_balanced;
    Alcotest.test_case "plan rejects loops" `Quick test_plan_rejects_loops;
    Alcotest.test_case "optimize reaches 1" `Quick test_optimize_reaches_one;
    Alcotest.test_case "optimize no-op at 1" `Quick test_optimize_noop_when_already_full;
    QCheck_alcotest.to_alcotest prop_optimize_random_dags;
    Alcotest.test_case "static: feed-forward safe" `Quick test_static_feedforward_safe;
    Alcotest.test_case "static: full-only safe" `Quick test_static_full_only_safe;
    Alcotest.test_case "static: half in loop flagged" `Quick
      test_static_half_in_loop_flagged;
    Alcotest.test_case "static: half off loop ok" `Quick test_static_half_off_loop_ok;
  ]
