(* The model checker and the paper's verification properties. *)

module R = Verify.Reach
module P = Verify.Props
module G = Topology.Generators

let holds name outcome =
  match outcome with
  | R.Holds { states; _ } -> Alcotest.(check bool) (name ^ " explored") true (states > 0)
  | R.Fails { trace } ->
      Alcotest.fail (Printf.sprintf "%s failed with trace of %d" name (List.length trace))

let fails name outcome =
  match outcome with
  | R.Fails { trace } ->
      Alcotest.(check bool) (name ^ " trace nonempty") true (List.length trace > 1)
  | R.Holds _ -> Alcotest.fail (name ^ " unexpectedly holds")

(* generic engine sanity on a toy FSM *)
let toy_counter limit =
  Verify.Fsm.create ~name:"toy" ~initial:[ 0 ]
    ~inputs:(fun _ -> [ `Inc; `Dec ])
    (fun s i ->
      match i with `Inc -> min limit (s + 1) | `Dec -> max 0 (s - 1))

let test_reach_invariant () =
  (match R.check_invariant (toy_counter 5) ~invariant:(fun s -> s <= 5) with
  | R.Holds { states; transitions } ->
      Alcotest.(check int) "states" 6 states;
      Alcotest.(check bool) "transitions counted" true (transitions >= 10)
  | R.Fails _ -> Alcotest.fail "should hold");
  match R.check_invariant (toy_counter 5) ~invariant:(fun s -> s < 3) with
  | R.Fails { trace } ->
      (* shortest counterexample: 0 -> 1 -> 2 -> 3 *)
      Alcotest.(check int) "shortest trace" 4 (List.length trace)
  | R.Holds _ -> Alcotest.fail "should fail"

let test_reach_bound () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (R.check_invariant ~max_states:3 (toy_counter 10) ~invariant:(fun _ -> true));
       false
     with R.State_space_exceeded 3 -> true)

let test_progress_toy () =
  (* progress = incrementing below the limit; at the limit `Inc is a
     self-loop but `Dec always re-enables it: live *)
  match
    R.check_progress (toy_counter 3) ~progress:(fun s i _ -> i = `Inc && s < 3)
  with
  | R.Live { states } -> Alcotest.(check int) "states" 4 states
  | R.Wedged _ -> Alcotest.fail "should be live"

let test_progress_wedge_found () =
  (* a one-way door: from state 2 onwards no progress transition exists *)
  let fsm =
    Verify.Fsm.create ~name:"door" ~initial:[ 0 ]
      ~inputs:(fun _ -> [ () ])
      (fun s () -> min 2 (s + 1))
  in
  match R.check_progress fsm ~progress:(fun s () _ -> s = 0) with
  | R.Wedged { trace } -> Alcotest.(check bool) "found" true (List.length trace >= 1)
  | R.Live _ -> Alcotest.fail "should wedge"

(* the paper's six properties *)

let test_rs_safety_all () =
  List.iter
    (fun kind ->
      List.iter
        (fun fl ->
          holds
            (Printf.sprintf "%s/%s" (Lid.Relay_station.kind_to_string kind)
               (Lid.Protocol.to_string fl))
            (P.check_relay_station ~flavour:fl kind))
        Lid.Protocol.all)
    [ Lid.Relay_station.Full; Lid.Relay_station.Half ]

let test_rs_rtl_safety () =
  (* the generated netlists, explored exhaustively via the pure stepper *)
  List.iter
    (fun kind ->
      List.iter
        (fun fl ->
          holds
            (Printf.sprintf "RTL %s/%s" (Lid.Relay_station.kind_to_string kind)
               (Lid.Protocol.to_string fl))
            (P.check_relay_station_rtl ~flavour:fl kind))
        Lid.Protocol.all)
    [ Lid.Relay_station.Full; Lid.Relay_station.Half ]

let test_rtl_model_stepper () =
  (* the pure stepper agrees with the imperative simulator *)
  let circ = Lid.Rtl_gen.identity_shell ~data_width:4 () in
  let model = Verify.Rtl_model.of_circuit circ in
  let sim = Sim.Cycle_sim.create circ in
  let rng = Random.State.make [| 3; 93 |] in
  let st = ref (Verify.Rtl_model.initial model) in
  for _ = 1 to 100 do
    let inputs =
      List.map
        (fun name ->
          let w = Hdl.Signal.width (Hdl.Circuit.find_input circ name) in
          (name, Bitvec.Bits.random ~width:w (Random.State.int rng)))
        [ "in_valid_0"; "in_data_0"; "stop_in_0" ]
    in
    List.iter (fun (n, v) -> Sim.Cycle_sim.poke sim n v) inputs;
    let out_f = Verify.Rtl_model.outputs model !st ~inputs in
    List.iter
      (fun name ->
        if not (Bitvec.Bits.equal (out_f name) (Sim.Cycle_sim.peek_output sim name))
        then Alcotest.fail ("stepper disagrees on " ^ name))
      [ "out_valid_0"; "out_data_0"; "stop_out_0" ];
    st := Verify.Rtl_model.step model !st ~inputs;
    Sim.Cycle_sim.step sim
  done

let test_shell_safety_all () =
  List.iter
    (fun pearl ->
      List.iter
        (fun fl -> holds "shell" (P.check_shell ~flavour:fl pearl))
        Lid.Protocol.all)
    [ P.Identity; P.Adder; P.Accumulator; P.Fork ]

let test_mutants_caught () =
  fails "drop_on_stop/full"
    (P.check_relay_station ~step:P.mutant_drop_on_stop Lid.Relay_station.Full);
  fails "drop_on_stop/half"
    (P.check_relay_station ~step:P.mutant_drop_on_stop Lid.Relay_station.Half);
  fails "no_hold/full"
    (P.check_relay_station ~step:P.mutant_no_hold Lid.Relay_station.Full);
  fails "no_hold/half"
    (P.check_relay_station ~step:P.mutant_no_hold Lid.Relay_station.Half);
  fails "duplicate/full"
    (P.check_relay_station ~step:P.mutant_duplicate Lid.Relay_station.Full);
  fails "duplicate/half"
    (P.check_relay_station ~step:P.mutant_duplicate Lid.Relay_station.Half)

(* closed-system liveness *)

let live name net flavour =
  match Verify.Closed.check_deadlock_free ~flavour net with
  | R.Live _ -> ()
  | R.Wedged { trace } ->
      Alcotest.fail (Printf.sprintf "%s wedged at depth %d" name (List.length trace))

let wedged name net flavour =
  match Verify.Closed.check_deadlock_free ~flavour net with
  | R.Wedged _ -> ()
  | R.Live _ -> Alcotest.fail (name ^ " unexpectedly live")

let half = [ Lid.Relay_station.Half ]

let test_liveness_paper_claims () =
  (* feed-forward: deadlock free (refined protocol) *)
  live "chain" (G.chain ~n_shells:2 ()) Lid.Protocol.Optimized;
  live "chain halves" (G.chain ~n_shells:2 ~stations:half ()) Lid.Protocol.Optimized;
  (* full stations only: deadlock free under both flavours *)
  live "fig2" (G.fig2 ()) Lid.Protocol.Optimized;
  live "fig2 orig" (G.fig2 ()) Lid.Protocol.Original;
  live "tapped full" (G.ring_tapped ~n_shells:3 ()) Lid.Protocol.Optimized;
  live "tapped full orig" (G.ring_tapped ~n_shells:3 ()) Lid.Protocol.Original

let test_liveness_half_in_loop () =
  (* under the unrefined discipline, half stations in loops wedge *)
  wedged "tapped halves orig" (G.ring_tapped ~n_shells:3 ~stations:half ())
    Lid.Protocol.Original;
  wedged "tapped halves orig (2)" (G.ring_tapped ~n_shells:2 ~stations:half ())
    Lid.Protocol.Original;
  (* the refinement removes the wedge *)
  live "tapped halves opt" (G.ring_tapped ~n_shells:3 ~stations:half ())
    Lid.Protocol.Optimized

let test_liveness_mixed_cured () =
  (* one full station in the loop restores liveness even when half
     stations remain — the paper's low-intrusive cure *)
  live "mixed"
    (G.ring_tapped ~n_shells:2
       ~stations:[ Lid.Relay_station.Half; Lid.Relay_station.Full ]
       ())
    Lid.Protocol.Original

let test_closed_engine_lockstep () =
  (* drive the pure model with the deterministic always/never environment
     and compare validity signatures against the engine, cycle by cycle *)
  List.iter
    (fun (name, net) ->
      let engine = Skeleton.Engine.create net in
      let fsm = Verify.Closed.fsm net in
      let n = Topology.Network.n_nodes net in
      let choice =
        {
          Verify.Closed.src_active = Array.make n true;
          sink_stall = Array.make n false;
        }
      in
      let st = ref (List.hd fsm.Verify.Fsm.initial) in
      for cycle = 0 to 39 do
        let eng_sig = Skeleton.Engine.signature engine in
        let eng_core =
          match String.index_opt eng_sig '@' with
          | Some i -> String.sub eng_sig 0 i
          | None -> eng_sig
        in
        Alcotest.(check string)
          (Printf.sprintf "%s cycle %d" name cycle)
          eng_core
          (Verify.Closed.validity_signature !st);
        Skeleton.Engine.step engine;
        st := fsm.Verify.Fsm.next !st choice
      done)
    [
      ("fig1", G.fig1 ());
      ("fig2", G.fig2 ());
      ("tapped ring", G.ring_tapped ~n_shells:3 ());
      ("half chain", G.chain ~n_shells:2 ~stations:half ());
    ]

let test_closed_matches_engine () =
  (* the pure verification model and the imperative engine agree on the
     deterministic always/never environment: same firing counts *)
  let net = G.ring_tapped ~n_shells:3 () in
  let engine = Skeleton.Engine.create net in
  let n = Topology.Network.n_nodes net in
  let all_active =
    {
      Verify.Closed.src_active = Array.make n true;
      sink_stall = Array.make n false;
    }
  in
  let fsm = Verify.Closed.fsm net in
  let st = ref (List.hd fsm.Verify.Fsm.initial) in
  let fired_closed = ref 0 and fired_engine = ref 0 in
  for _ = 1 to 30 do
    st := fsm.Verify.Fsm.next !st all_active;
    Skeleton.Engine.step engine
  done;
  List.iter
    (fun (nd : Topology.Network.node) ->
      match nd.kind with
      | Topology.Network.Shell _ ->
          fired_engine := !fired_engine + Skeleton.Engine.fired_count engine nd.id
      | _ -> ())
    (Topology.Network.nodes net);
  ignore fired_closed;
  (* engine: shells fired some amount; closed model reached a progressing
     state (weak but structural cross-check; exact per-cycle agreement is
     covered by the trace-level engine tests) *)
  Alcotest.(check bool) "engine progressed" true (!fired_engine > 0);
  Alcotest.(check bool) "closed progressed" true
    (match Verify.Closed.check_deadlock_free net with
    | R.Live _ -> true
    | R.Wedged _ -> false)

let prop_closed_engine_random =
  QCheck.Test.make ~name:"closed model = engine on random networks" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 103 |] in
      let net =
        if seed mod 2 = 0 then
          G.random_dag ~rng ~n_shells:(2 + (seed mod 4)) ~half_probability:0.3 ()
        else G.random_loopy ~rng ~n_shells:(2 + (seed mod 4)) ()
      in
      let engine = Skeleton.Engine.create net in
      let fsm = Verify.Closed.fsm net in
      let n = Topology.Network.n_nodes net in
      let choice =
        {
          Verify.Closed.src_active = Array.make n true;
          sink_stall = Array.make n false;
        }
      in
      let st = ref (List.hd fsm.Verify.Fsm.initial) in
      let ok = ref true in
      for _ = 0 to 29 do
        let eng_sig = Skeleton.Engine.signature engine in
        let eng_core =
          match String.index_opt eng_sig '@' with
          | Some i -> String.sub eng_sig 0 i
          | None -> eng_sig
        in
        if eng_core <> Verify.Closed.validity_signature !st then ok := false;
        Skeleton.Engine.step engine;
        st := fsm.Verify.Fsm.next !st choice
      done;
      !ok)

let test_reachable_states_counted () =
  let n = Verify.Closed.reachable_states (G.fig2 ()) in
  Alcotest.(check bool) "small closed loop" true (n >= 2 && n < 20)

let suite =
  [
    Alcotest.test_case "invariant checking" `Quick test_reach_invariant;
    Alcotest.test_case "state bound" `Quick test_reach_bound;
    Alcotest.test_case "progress (live)" `Quick test_progress_toy;
    Alcotest.test_case "progress (wedged)" `Quick test_progress_wedge_found;
    Alcotest.test_case "relay station safety (all kinds/flavours)" `Quick
      test_rs_safety_all;
    Alcotest.test_case "relay station RTL safety (exhaustive)" `Quick
      test_rs_rtl_safety;
    Alcotest.test_case "pure stepper = simulator" `Quick test_rtl_model_stepper;
    Alcotest.test_case "shell safety (all pearls/flavours)" `Quick
      test_shell_safety_all;
    Alcotest.test_case "mutants caught" `Quick test_mutants_caught;
    Alcotest.test_case "liveness: paper claims" `Quick test_liveness_paper_claims;
    Alcotest.test_case "liveness: half in loop" `Quick test_liveness_half_in_loop;
    Alcotest.test_case "liveness: mixed cured" `Quick test_liveness_mixed_cured;
    Alcotest.test_case "closed model vs engine" `Quick test_closed_matches_engine;
    Alcotest.test_case "closed/engine signature lockstep" `Quick
      test_closed_engine_lockstep;
    Alcotest.test_case "reachable states" `Quick test_reachable_states_counted;
    QCheck_alcotest.to_alcotest prop_closed_engine_random;
  ]
