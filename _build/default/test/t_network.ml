module Net = Topology.Network
module RS = Lid.Relay_station

let simple_chain () =
  let b = Net.builder () in
  let src = Net.add_source b ~name:"s" () in
  let sh = Net.add_shell b ~name:"x" (Lid.Pearl.identity ()) in
  let snk = Net.add_sink b ~name:"k" () in
  let e1 = Net.connect b ~src:(src, 0) ~dst:(sh, 0) () in
  let e2 = Net.connect b ~stations:[] ~src:(sh, 0) ~dst:(snk, 0) () in
  (Net.build b, e1, e2)

let test_build_and_accessors () =
  let net, e1, _ = simple_chain () in
  Alcotest.(check int) "nodes" 3 (Net.n_nodes net);
  Alcotest.(check int) "edges" 2 (Net.n_edges net);
  Alcotest.(check int) "one full station" 1 (Net.station_count net RS.Full);
  Alcotest.(check int) "no half" 0 (Net.station_count net RS.Half);
  Alcotest.(check string) "node name" "x" (Net.node net 1).Net.name;
  Alcotest.(check int) "edge src" 0 (Net.edge net e1).Net.src.node;
  Alcotest.(check int) "shells" 1 (List.length (Net.shells net));
  Alcotest.(check int) "sources" 1 (List.length (Net.sources net));
  Alcotest.(check int) "sinks" 1 (List.length (Net.sinks net))

let test_min_memory_rule () =
  (* "at least one half or one full relay station between two shells" *)
  let b = Net.builder () in
  let s1 = Net.add_shell b ~name:"a" (Lid.Pearl.counter ()) in
  let s2 = Net.add_shell b ~name:"b" (Lid.Pearl.identity ()) in
  let _ = Net.connect b ~stations:[] ~src:(s1, 0) ~dst:(s2, 0) () in
  let snk = Net.add_sink b () in
  let _ = Net.connect b ~stations:[] ~src:(s2, 0) ~dst:(snk, 0) () in
  (try
     ignore (Net.build b);
     Alcotest.fail "expected minimum-memory violation"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions relay station" true
       (Astring.String.is_infix ~affix:"relay station" msg));
  (* the same build is accepted with allow_direct, or with a half station *)
  ignore (Net.build ~allow_direct:true b)

let test_half_station_satisfies_rule () =
  let b = Net.builder () in
  let s1 = Net.add_shell b ~name:"a" (Lid.Pearl.counter ()) in
  let s2 = Net.add_shell b ~name:"b" (Lid.Pearl.identity ()) in
  let _ = Net.connect b ~stations:[ RS.Half ] ~src:(s1, 0) ~dst:(s2, 0) () in
  let snk = Net.add_sink b () in
  let _ = Net.connect b ~stations:[] ~src:(s2, 0) ~dst:(snk, 0) () in
  ignore (Net.build b)

let test_sink_channel_needs_no_station () =
  (* a sink's stop is pattern-driven (registered), so direct is fine *)
  let net, _, _ = simple_chain () in
  Alcotest.(check int) "built" 3 (Net.n_nodes net)

let test_unconnected_port () =
  let b = Net.builder () in
  let _ = Net.add_shell b ~name:"a" (Lid.Pearl.adder ()) in
  Alcotest.check_raises "input 0 unconnected"
    (Invalid_argument "Network.build: input port 0 of \"a\" unconnected")
    (fun () -> ignore (Net.build b))

let test_double_connection () =
  let b = Net.builder () in
  let src1 = Net.add_source b ~name:"s1" () in
  let src2 = Net.add_source b ~name:"s2" () in
  let sh = Net.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let snk = Net.add_sink b () in
  let _ = Net.connect b ~src:(src1, 0) ~dst:(sh, 0) () in
  let _ = Net.connect b ~src:(src2, 0) ~dst:(sh, 0) () in
  let _ = Net.connect b ~stations:[] ~src:(sh, 0) ~dst:(snk, 0) () in
  Alcotest.check_raises "doubly connected"
    (Invalid_argument "Network.build: input port 0 of \"a\" doubly connected")
    (fun () -> ignore (Net.build b))

let test_port_out_of_range () =
  let b = Net.builder () in
  let src = Net.add_source b ~name:"s" () in
  let sh = Net.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let _ = Net.connect b ~src:(src, 0) ~dst:(sh, 5) () in
  (try
     ignore (Net.build b);
     Alcotest.fail "expected port range error"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions range" true
       (Astring.String.is_infix ~affix:"out of range" msg))

let test_env_period () =
  let b = Net.builder () in
  let _ =
    Net.add_source b ~name:"s"
      ~pattern:(Topology.Pattern.periodic ~period:4 ~active:1 ())
      ()
  in
  let sh = Net.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let _ = Net.connect b ~src:(0, 0) ~dst:(sh, 0) () in
  let _ =
    Net.add_sink b ~name:"k"
      ~pattern:(Topology.Pattern.periodic ~period:6 ~active:1 ())
      ()
  in
  let _ = Net.connect b ~stations:[] ~src:(sh, 0) ~dst:(2, 0) () in
  let net = Net.build b in
  Alcotest.(check int) "lcm 4 6" 12 (Net.env_period net)

let test_with_stations () =
  let net, e1, _ = simple_chain () in
  let net' = Net.with_stations net e1 [ RS.Half; RS.Half ] in
  Alcotest.(check int) "halves" 2 (Net.station_count net' RS.Half);
  Alcotest.(check int) "original unchanged" 0 (Net.station_count net RS.Half);
  Alcotest.(check int) "in_edges view updated" 2
    (List.length (Net.in_edges net' 1).(0).Net.stations)

let test_generators_shapes () =
  let rng = Random.State.make [| 99 |] in
  let dag = Topology.Generators.random_dag ~rng ~n_shells:6 () in
  Alcotest.(check int) "dag shell count" 6 (List.length (Net.shells dag));
  Alcotest.(check bool) "dag acyclic" false (Topology.Classify.classify dag).cyclic;
  let ring = Topology.Generators.ring ~n_shells:4 () in
  Alcotest.(check bool) "ring cyclic" true (Topology.Classify.classify ring).cyclic;
  let tree = Topology.Generators.tree ~depth:3 () in
  Alcotest.(check int) "tree sinks" 8 (List.length (Net.sinks tree))

let test_ring_validation () =
  Alcotest.check_raises "ring size"
    (Invalid_argument "Generators.ring: need at least 2 shells") (fun () ->
      ignore (Topology.Generators.ring ~n_shells:1 ()))

let suite =
  [
    Alcotest.test_case "build and accessors" `Quick test_build_and_accessors;
    Alcotest.test_case "minimum memory rule" `Quick test_min_memory_rule;
    Alcotest.test_case "half station satisfies rule" `Quick
      test_half_station_satisfies_rule;
    Alcotest.test_case "sink channels are free" `Quick
      test_sink_channel_needs_no_station;
    Alcotest.test_case "unconnected port" `Quick test_unconnected_port;
    Alcotest.test_case "double connection" `Quick test_double_connection;
    Alcotest.test_case "port out of range" `Quick test_port_out_of_range;
    Alcotest.test_case "env period" `Quick test_env_period;
    Alcotest.test_case "with_stations" `Quick test_with_stations;
    Alcotest.test_case "generator shapes" `Quick test_generators_shapes;
    Alcotest.test_case "generator validation" `Quick test_ring_validation;
  ]
