(* Larger-system sanity: the analysis and the engine agree and stay fast
   well beyond the paper's toy sizes. *)

module G = Topology.Generators

let test_long_chain () =
  let net = G.chain ~n_shells:100 () in
  let engine = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze ~max_cycles:5000 engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "T=1" 1.0 (Skeleton.Measure.system_throughput r);
      Alcotest.(check bool) "transient about the pipeline depth" true
        (r.transient < 500)
  | None -> Alcotest.fail "no steady state"

let test_big_ring () =
  let net = G.ring ~n_shells:80 () in
  Alcotest.(check (float 1e-9)) "bound 80/160" 0.5
    (Topology.Elastic.throughput_bound net);
  let engine = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze ~max_cycles:5000 engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "measured 0.5" 0.5
        (Skeleton.Measure.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_unbalanced_big_ring () =
  (* 60 shells, 100 full stations spread unevenly: T = 60/160 *)
  let b = Topology.Network.builder () in
  let shells =
    Array.init 60 (fun i ->
        Topology.Network.add_shell b ~name:(Printf.sprintf "s%d" i)
          (Lid.Pearl.identity ()))
  in
  Array.iteri
    (fun i sh ->
      let k = if i < 40 then 2 else 1 in
      let st = List.init k (fun _ -> Lid.Relay_station.Full) in
      ignore
        (Topology.Network.connect b ~stations:st ~src:(sh, 0)
           ~dst:(shells.((i + 1) mod 60), 0)
           ()))
    shells;
  let net = Topology.Network.build b in
  Alcotest.(check (float 1e-9)) "bound 60/160" (60. /. 160.)
    (Topology.Elastic.throughput_bound net)

let test_wide_tree () =
  let net = G.tree ~depth:6 () in
  Alcotest.(check int) "64 leaves" 64 (List.length (Topology.Network.sinks net));
  let engine = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze ~max_cycles:5000 engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "tree runs at 1" 1.0
        (Skeleton.Measure.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_large_random_agreement () =
  (* one big random loopy system: analytic bound still equals measurement *)
  let rng = Random.State.make [| 2026 |] in
  let net =
    G.random_loopy ~rng ~n_shells:40 ~extra_back_edges:4 ~max_stations:4 ()
  in
  let bound = Topology.Elastic.throughput_bound net in
  let engine = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze ~max_cycles:100_000 engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "bound = measured" bound
        (Skeleton.Measure.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_big_rtl_elaboration () =
  let net = G.chain ~n_shells:30 ~stations:[ Lid.Relay_station.Full ] () in
  let circ = Topology.Rtl_net.of_network ~data_width:8 net in
  let stats = Hdl.Circuit.stats circ in
  Alcotest.(check bool) "hundreds of registers" true (stats.Hdl.Circuit.n_regs > 90);
  (* and it still simulates correctly *)
  let sim = Sim.Cycle_sim.create circ in
  Sim.Cycle_sim.poke sim "stall_out" (Bitvec.Bits.of_bool false);
  let valids = ref 0 in
  for _ = 1 to 120 do
    if Bitvec.Bits.lsb (Sim.Cycle_sim.peek_output sim "valid_out") then incr valids;
    Sim.Cycle_sim.step sim
  done;
  Alcotest.(check bool) "pipeline filled and flowed" true (!valids > 50)

let suite =
  [
    Alcotest.test_case "chain of 100" `Quick test_long_chain;
    Alcotest.test_case "ring of 80" `Quick test_big_ring;
    Alcotest.test_case "unbalanced ring of 60" `Quick test_unbalanced_big_ring;
    Alcotest.test_case "tree of depth 6" `Quick test_wide_tree;
    Alcotest.test_case "random 40-shell system" `Quick test_large_random_agreement;
    Alcotest.test_case "30-stage RTL elaboration" `Quick test_big_rtl_elaboration;
  ]
