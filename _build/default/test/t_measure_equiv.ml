(* Measurement (periodicity detection) and latency equivalence. *)

module G = Topology.Generators
module M = Skeleton.Measure

let test_transient_and_period () =
  let engine = Skeleton.Engine.create (G.fig1 ()) in
  match M.transient_and_period engine with
  | Some (transient, period) ->
      Alcotest.(check int) "period" 5 period;
      Alcotest.(check bool) "short transient" true (transient <= 10)
  | None -> Alcotest.fail "no period"

let test_transient_within_bound () =
  List.iter
    (fun net ->
      let bound = Topology.Analysis.transient_bound net in
      let engine = Skeleton.Engine.create net in
      match M.transient_and_period engine with
      | Some (transient, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "measured %d <= bound %d" transient bound)
            true (transient <= bound)
      | None -> Alcotest.fail "no period")
    [
      G.fig1 ();
      G.fig2 ();
      G.chain ~n_shells:5 ();
      G.tree ~depth:3 ();
      G.ring_tapped ~n_shells:4 ();
      G.chain ~n_shells:3
        ~sink_pattern:(Topology.Pattern.periodic ~period:3 ~active:1 ())
        ();
    ]

let test_all_rates_equal_in_connected_system () =
  let engine = Skeleton.Engine.create (G.fig1 ()) in
  match M.analyze engine with
  | Some r ->
      List.iter
        (fun (_, rate) -> Alcotest.(check (float 1e-9)) "same rate" 0.8 rate)
        r.node_throughput
  | None -> Alcotest.fail "no steady state"

let test_env_cap () =
  let net =
    G.chain ~n_shells:2
      ~source_pattern:(Topology.Pattern.periodic ~period:3 ~active:2 ())
      ~sink_pattern:(Topology.Pattern.periodic ~period:5 ~active:1 ())
      ()
  in
  (* source duty 2/3, sink availability 4/5 -> cap = min = 2/3 *)
  Alcotest.(check (float 1e-9)) "cap" (2. /. 3.)
    (Topology.Analysis.env_throughput_cap net);
  let engine = Skeleton.Engine.create net in
  match M.analyze engine with
  | Some r ->
      Alcotest.(check bool) "measured <= cap" true
        (M.system_throughput r <= (2. /. 3.) +. 1e-9)
  | None -> Alcotest.fail "no steady state"

let test_deadlock_flag () =
  let net =
    G.ring_tapped ~n_shells:3 ~stations:[ Lid.Relay_station.Half ]
      ~sink_pattern:(Topology.Pattern.periodic ~period:4 ~active:2 ())
      ()
  in
  let orig = Skeleton.Engine.create ~flavour:Lid.Protocol.Original net in
  (match M.analyze orig with
  | Some r -> Alcotest.(check bool) "original deadlocks" true r.deadlocked
  | None -> Alcotest.fail "no period");
  let opt = Skeleton.Engine.create ~flavour:Lid.Protocol.Optimized net in
  match M.analyze opt with
  | Some r -> Alcotest.(check bool) "optimized lives" false r.deadlocked
  | None -> Alcotest.fail "no period"

(* latency equivalence *)

let test_equiv_basic () =
  List.iter
    (fun net ->
      match Skeleton.Equiv.check net with
      | Skeleton.Equiv.Equivalent { checked } ->
          Alcotest.(check bool) "checked some" true (checked > 0)
      | Skeleton.Equiv.Divergent m ->
          Alcotest.fail (Printf.sprintf "diverged at %s[%d]" m.sink m.position))
    [
      G.chain ~n_shells:4 ();
      G.fig1 ();
      G.tree ~depth:2 ();
      G.ring_tapped ~n_shells:3 ();
      G.chain ~n_shells:2 ~stations:[ Lid.Relay_station.Half ] ();
    ]

let test_equiv_under_stalling_envs () =
  let net =
    G.chain ~n_shells:3
      ~source_pattern:(Topology.Pattern.word [ true; false; true ])
      ~sink_pattern:(Topology.Pattern.word [ false; true; true; false ])
      ()
  in
  match Skeleton.Equiv.check net with
  | Skeleton.Equiv.Equivalent _ -> ()
  | Skeleton.Equiv.Divergent m ->
      Alcotest.fail (Printf.sprintf "diverged at %s[%d]" m.sink m.position)

let test_equiv_detects_divergence () =
  (* sanity of the checker itself: compare two different networks *)
  let net_a = G.chain ~n_shells:1 () in
  let engine = Skeleton.Engine.create net_a in
  Skeleton.Engine.run engine ~cycles:50;
  let b = Topology.Network.builder () in
  let src = Topology.Network.add_source b ~name:"src" ~start:7 () in
  let sh =
    Topology.Network.add_shell b ~name:"s0" (Lid.Pearl.map1 (fun v -> v * 100))
  in
  let snk = Topology.Network.add_sink b ~name:"out" () in
  let _ = Topology.Network.connect b ~src:(src, 0) ~dst:(sh, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(sh, 0) ~dst:(snk, 0) () in
  let other = Topology.Network.build b in
  let reference = Skeleton.Reference.create other in
  Skeleton.Reference.run reference ~cycles:50;
  match Skeleton.Equiv.check_engine engine reference with
  | Skeleton.Equiv.Divergent _ -> ()
  | Skeleton.Equiv.Equivalent _ -> Alcotest.fail "expected divergence"

let prop_equiv_random_dags flavour =
  QCheck.Test.make
    ~name:
      ("latency equivalence on random DAGs ("
      ^ Lid.Protocol.to_string flavour
      ^ ")")
    ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed; 31 |] in
      let net =
        Topology.Generators.random_dag ~rng ~n_shells:(2 + (seed mod 6))
          ~half_probability:0.3 ()
      in
      match Skeleton.Equiv.check ~flavour ~cycles:150 net with
      | Skeleton.Equiv.Equivalent _ -> true
      | Skeleton.Equiv.Divergent _ -> false)

let prop_equiv_random_loopy =
  QCheck.Test.make ~name:"latency equivalence on random loopy networks"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 37 |] in
      let net =
        Topology.Generators.random_loopy ~rng ~n_shells:(3 + (seed mod 5)) ()
      in
      match Skeleton.Equiv.check ~cycles:150 net with
      | Skeleton.Equiv.Equivalent _ -> true
      | Skeleton.Equiv.Divergent _ -> false)

let suite =
  [
    Alcotest.test_case "transient and period" `Quick test_transient_and_period;
    Alcotest.test_case "transient within predicted bound" `Quick
      test_transient_within_bound;
    Alcotest.test_case "rates equalize across the system" `Quick
      test_all_rates_equal_in_connected_system;
    Alcotest.test_case "environment caps throughput" `Quick test_env_cap;
    Alcotest.test_case "deadlock flag per flavour" `Quick test_deadlock_flag;
    Alcotest.test_case "equivalence on standard nets" `Quick test_equiv_basic;
    Alcotest.test_case "equivalence under stalling envs" `Quick
      test_equiv_under_stalling_envs;
    Alcotest.test_case "checker detects divergence" `Quick
      test_equiv_detects_divergence;
    QCheck_alcotest.to_alcotest (prop_equiv_random_dags Lid.Protocol.Optimized);
    QCheck_alcotest.to_alcotest (prop_equiv_random_dags Lid.Protocol.Original);
    QCheck_alcotest.to_alcotest prop_equiv_random_loopy;
  ]
