(* Runtime protocol monitors: the wire-level invariants the paper's
   verification establishes per block, observed end-to-end on whole
   running systems for every channel simultaneously:

   - hold: a valid token refused by the consumer (stop high) is presented
     again, unchanged, next cycle;
   - no re-delivery: a valid token accepted (stop low) is gone next cycle
     (the consumer never sees the same transfer twice);
   - ordering: per channel, accepted payload-carrying tokens never go back
     in time (with the monotone pearls used here). *)

module G = Topology.Generators
module Token = Lid.Token

type chan_state = { mutable last : (Token.t * bool) option; mutable accepted : int list }

let monitor ?flavour net ~cycles =
  let engine = Skeleton.Engine.create ?flavour net in
  let chans = Hashtbl.create 16 in
  let violations = ref [] in
  for _ = 1 to cycles do
    let snap = Skeleton.Engine.snapshot_next engine in
    List.iter
      (fun (eid, tok, stop) ->
        let st =
          match Hashtbl.find_opt chans eid with
          | Some st -> st
          | None ->
              let st = { last = None; accepted = [] } in
              Hashtbl.replace chans eid st;
              st
        in
        (match st.last with
        | Some (Token.Valid v, true) ->
            (* refused last cycle: must be held *)
            if not (Token.equal tok (Token.valid v)) then
              violations :=
                Printf.sprintf "channel %d: refused token %d not held" eid v
                :: !violations
        | _ -> ());
        (match tok with
        | Token.Valid v when not stop -> st.accepted <- v :: st.accepted
        | _ -> ());
        st.last <- Some (tok, stop))
      snap.Skeleton.Engine.chan_dst
  done;
  (!violations, chans)

let check_clean ?flavour name net =
  let violations, _ = monitor ?flavour net ~cycles:120 in
  Alcotest.(check (list string)) (name ^ ": no violations") [] violations

let test_hold_everywhere () =
  let stall = Topology.Pattern.periodic ~period:3 ~active:1 () in
  check_clean "fig1" (G.fig1 ());
  check_clean "fig2" (G.fig2 ());
  check_clean "stalled chain" (G.chain ~n_shells:4 ~sink_pattern:stall ());
  check_clean "half chain"
    (G.chain ~n_shells:3 ~stations:[ Lid.Relay_station.Half ] ~sink_pattern:stall ());
  check_clean "tapped ring" (G.ring_tapped ~n_shells:3 ~sink_pattern:stall ());
  check_clean ~flavour:Lid.Protocol.Original "fig1 original" (G.fig1 ())

let prop_invariants_random =
  QCheck.Test.make ~name:"wire invariants on random networks" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 61 |] in
      let net =
        if seed mod 2 = 0 then
          Topology.Generators.random_dag ~rng ~n_shells:(3 + (seed mod 4))
            ~half_probability:0.4 ()
        else
          Topology.Generators.random_loopy ~rng ~n_shells:(3 + (seed mod 4)) ()
      in
      let violations, _ = monitor net ~cycles:100 in
      violations = [])

(* per-channel accepted streams are monotone for monotone dataflows *)
let test_ordering_on_chain () =
  let net =
    G.chain ~n_shells:3
      ~sink_pattern:(Topology.Pattern.word [ true; false; false ])
      ()
  in
  let violations, chans = monitor net ~cycles:150 in
  Alcotest.(check (list string)) "clean" [] violations;
  Hashtbl.iter
    (fun _ st ->
      let accepted = List.rev st.accepted in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone" true (monotone accepted);
      Alcotest.(check bool) "flowed" true (List.length accepted > 20))
    chans

let suite =
  [
    Alcotest.test_case "hold/no-redelivery on standard nets" `Quick
      test_hold_everywhere;
    Alcotest.test_case "per-channel ordering" `Quick test_ordering_on_chain;
    QCheck_alcotest.to_alcotest prop_invariants_random;
  ]
