open Bitvec
open Hdl.Signal

let n_comb c = (Hdl.Circuit.stats c).Hdl.Circuit.n_comb
let n_regs c = (Hdl.Circuit.stats c).Hdl.Circuit.n_regs

let test_constant_folding () =
  let a = consti ~width:8 3 +: consti ~width:8 4 in
  let c =
    Hdl.Circuit.create ~name:"k" ~inputs:[] ~outputs:[ output "o" a ]
  in
  let c' = Hdl.Simplify.circuit c in
  let sim = Sim.Cycle_sim.create c' in
  Alcotest.(check int) "value" 7 (Bits.to_int (Sim.Cycle_sim.peek_output sim "o"));
  Alcotest.(check int) "just the output wire left" 1 (n_comb c')

let test_identities () =
  let x = input "x" 8 in
  let zero = consti ~width:8 0 in
  let expr = ((x +: zero) &: const (Bits.ones 8)) ^: zero in
  let c = Hdl.Circuit.create ~name:"i" ~inputs:[ x ] ~outputs:[ output "o" expr ] in
  let c' = Hdl.Simplify.circuit c in
  (* o = x after folding *)
  Alcotest.(check int) "collapsed" 1 (n_comb c');
  let sim = Sim.Cycle_sim.create c' in
  Sim.Cycle_sim.poke sim "x" (Bits.of_int ~width:8 42);
  Alcotest.(check int) "still x" 42 (Bits.to_int (Sim.Cycle_sim.peek_output sim "o"))

let test_mul_identities () =
  let x = input "x" 8 in
  let one = consti ~width:8 1 and zero = consti ~width:8 0 in
  let c =
    Hdl.Circuit.create ~name:"m" ~inputs:[ x ]
      ~outputs:[ output "by1" (x *: one); output "by0" (x *: zero) ]
  in
  let c' = Hdl.Simplify.circuit c in
  let sim = Sim.Cycle_sim.create c' in
  Sim.Cycle_sim.poke sim "x" (Bits.of_int ~width:8 9);
  Alcotest.(check int) "x*1" 9 (Bits.to_int (Sim.Cycle_sim.peek_output sim "by1"));
  Alcotest.(check int) "x*0" 0 (Bits.to_int (Sim.Cycle_sim.peek_output sim "by0"))

let test_double_negation () =
  let x = input "x" 4 in
  let c =
    Hdl.Circuit.create ~name:"nn" ~inputs:[ x ]
      ~outputs:[ output "o" ~:(~:x) ]
  in
  Alcotest.(check int) "only the output wire" 1 (n_comb (Hdl.Simplify.circuit c))

let test_same_operand_folds () =
  let x = input "x" 8 in
  let c =
    Hdl.Circuit.create ~name:"s" ~inputs:[ x ]
      ~outputs:
        [
          output "sub" (x -: x);
          output "eq" (x ==: x);
          output "andd" (x &: x);
        ]
  in
  let c' = Hdl.Simplify.circuit c in
  let sim = Sim.Cycle_sim.create c' in
  Sim.Cycle_sim.poke sim "x" (Bits.of_int ~width:8 77);
  Alcotest.(check int) "x-x" 0 (Bits.to_int (Sim.Cycle_sim.peek_output sim "sub"));
  Alcotest.(check int) "x==x" 1 (Bits.to_int (Sim.Cycle_sim.peek_output sim "eq"));
  Alcotest.(check int) "x&x" 77 (Bits.to_int (Sim.Cycle_sim.peek_output sim "andd"))

let test_cse () =
  let a = input "a" 8 and b = input "b" 8 in
  (* the same sum built twice *)
  let c =
    Hdl.Circuit.create ~name:"cse" ~inputs:[ a; b ]
      ~outputs:[ output "o" ((a +: b) ^: (a +: b)) ]
  in
  let c' = Hdl.Simplify.circuit c in
  (* x ^ x folds to 0 only if CSE first merged the two sums *)
  let sim = Sim.Cycle_sim.create c' in
  Sim.Cycle_sim.poke sim "a" (Bits.of_int ~width:8 12);
  Sim.Cycle_sim.poke sim "b" (Bits.of_int ~width:8 34);
  Alcotest.(check int) "folded to zero" 0
    (Bits.to_int (Sim.Cycle_sim.peek_output sim "o"));
  Alcotest.(check int) "no adders left" 1 (n_comb c')

let test_frozen_register () =
  let d = input "d" 8 in
  let r = reg ~name:"frozen" ~enable:gnd ~reset:(Bits.of_int ~width:8 5) d in
  let c = Hdl.Circuit.create ~name:"fr" ~inputs:[ d ] ~outputs:[ output "o" r ] in
  let c' = Hdl.Simplify.circuit c in
  Alcotest.(check int) "register gone" 0 (n_regs c');
  let sim = Sim.Cycle_sim.create c' in
  Sim.Cycle_sim.step sim;
  Alcotest.(check int) "stuck at reset" 5
    (Bits.to_int (Sim.Cycle_sim.peek_output sim "o"))

let test_enable_one_dropped () =
  let d = input "d" 8 in
  let r = reg ~name:"r" ~enable:vdd ~reset:(Bits.zero 8) d in
  let c = Hdl.Circuit.create ~name:"e1" ~inputs:[ d ] ~outputs:[ output "o" r ] in
  let c' = Hdl.Simplify.circuit c in
  match Hdl.Circuit.regs c' with
  | [| Hdl.Signal.Reg { enable = None; _ } |] -> ()
  | _ -> Alcotest.fail "expected a single always-enabled register"

let test_sequential_loop_survives () =
  let r = reg_fb ~name:"cnt" ~reset:(Bits.zero 8) ~width:8 (fun r -> r +: consti ~width:8 1) in
  let c = Hdl.Circuit.create ~name:"cnt" ~inputs:[] ~outputs:[ output "o" r ] in
  let c' = Hdl.Simplify.circuit c in
  let sim = Sim.Cycle_sim.create c' in
  for _ = 1 to 5 do Sim.Cycle_sim.step sim done;
  Alcotest.(check int) "counts" 5 (Bits.to_int (Sim.Cycle_sim.peek_output sim "o"))

let test_relay_station_shrinks_or_equal () =
  List.iter
    (fun kind ->
      let c = Lid.Rtl_gen.relay_station ~data_width:16 kind in
      let c', r = Hdl.Simplify.with_report c in
      Alcotest.(check bool) "not larger" true
        (r.after.Hdl.Circuit.n_comb <= r.before.Hdl.Circuit.n_comb);
      Alcotest.(check int) "same registers" (n_regs c) (n_regs c'))
    [ Lid.Relay_station.Full; Lid.Relay_station.Half ]

(* random circuits: the pass preserves behaviour cycle-for-cycle *)
let random_circuit rng =
  let w = 1 + Random.State.int rng 10 in
  let inputs = List.init 2 (fun i -> input (Printf.sprintf "i%d" i) w) in
  let pool = ref (inputs @ [ consti ~width:w 0; consti ~width:w 1; const (Bits.ones w) ]) in
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  for _ = 1 to 15 do
    let a = pick () and b = pick () in
    let s =
      match Random.State.int rng 10 with
      | 0 -> a +: b
      | 1 -> a -: b
      | 2 -> a &: b
      | 3 -> a |: b
      | 4 -> a ^: b
      | 5 -> ~:a
      | 6 -> mux2 (a <: b) a b
      | 7 -> a *: b
      | 8 -> mux2 (a ==: b) b a
      | _ -> reg ~reset:(Bits.of_int ~width:w (Random.State.int rng 16)) a
    in
    pool := s :: !pool
  done;
  Hdl.Circuit.create ~name:"rand" ~inputs
    ~outputs:[ output "o1" (pick ()); output "o2" (pick ()) ]

let prop_preserves_behaviour =
  QCheck.Test.make ~name:"simplify preserves behaviour" ~count:80 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed; 51 |] in
      let c = random_circuit rng in
      let c' = Hdl.Simplify.circuit c in
      let s = Sim.Cycle_sim.create c and s' = Sim.Cycle_sim.create c' in
      let ok = ref true in
      for _ = 1 to 30 do
        List.iter
          (fun i ->
            let v = Bits.random ~width:(Hdl.Signal.width i) (Random.State.int rng) in
            let n = Hdl.Signal.name_of i in
            Sim.Cycle_sim.poke s n v;
            Sim.Cycle_sim.poke s' n v)
          (Hdl.Circuit.inputs c);
        List.iter
          (fun o ->
            let n = Hdl.Signal.name_of o in
            if not (Bits.equal (Sim.Cycle_sim.peek_output s n) (Sim.Cycle_sim.peek_output s' n))
            then ok := false)
          (Hdl.Circuit.outputs c);
        Sim.Cycle_sim.step s;
        Sim.Cycle_sim.step s'
      done;
      !ok)

let prop_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent on node counts" ~count:40
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed; 53 |] in
      let c = Hdl.Simplify.circuit (random_circuit rng) in
      let c' = Hdl.Simplify.circuit c in
      n_comb c' = n_comb c && n_regs c' = n_regs c)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "identities" `Quick test_identities;
    Alcotest.test_case "mul identities" `Quick test_mul_identities;
    Alcotest.test_case "double negation" `Quick test_double_negation;
    Alcotest.test_case "same-operand folds" `Quick test_same_operand_folds;
    Alcotest.test_case "common subexpressions" `Quick test_cse;
    Alcotest.test_case "frozen register folds away" `Quick test_frozen_register;
    Alcotest.test_case "enable-1 dropped" `Quick test_enable_one_dropped;
    Alcotest.test_case "sequential loops survive" `Quick test_sequential_loop_survives;
    Alcotest.test_case "protocol blocks not enlarged" `Quick
      test_relay_station_shrinks_or_equal;
    QCheck_alcotest.to_alcotest prop_preserves_behaviour;
    QCheck_alcotest.to_alcotest prop_idempotent;
  ]
