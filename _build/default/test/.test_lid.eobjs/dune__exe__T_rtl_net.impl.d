test/t_rtl_net.ml: Alcotest Astring Bits Bitvec Emit Hashtbl Hdl Lid List QCheck QCheck_alcotest Random Sim Skeleton String Topology
