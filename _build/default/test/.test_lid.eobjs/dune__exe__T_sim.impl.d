test/t_sim.ml: Alcotest Astring Bits Bitvec Filename Hdl In_channel List Printf QCheck QCheck_alcotest Random Sim String Sys
