test/t_floorplan.ml: Alcotest Astring Lid List Skeleton Topology
