test/t_simplify.ml: Alcotest Bits Bitvec Hdl Lid List Printf QCheck QCheck_alcotest Random Sim
