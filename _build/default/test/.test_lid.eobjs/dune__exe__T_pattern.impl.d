test/t_pattern.ml: Alcotest Format List Topology
