test/t_relay_station.ml: Alcotest Lid List Printf QCheck QCheck_alcotest Random
