test/t_elastic.ml: Alcotest Lid List Printf QCheck QCheck_alcotest Random Skeleton Topology
