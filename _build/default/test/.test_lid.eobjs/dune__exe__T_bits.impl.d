test/t_bits.ml: Alcotest Bits Bitvec List Printf QCheck QCheck_alcotest Stdlib
