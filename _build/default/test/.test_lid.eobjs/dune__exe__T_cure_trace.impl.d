test/t_cure_trace.ml: Alcotest Astring Lid List Skeleton String Topology
