test/t_rtl_gen.ml: Alcotest Array Bits Bitvec Hdl Lid List Option Printf QCheck QCheck_alcotest Random Sim
