test/t_engine.ml: Alcotest Lid List Skeleton Topology
