test/t_analysis.ml: Alcotest Array Lid List QCheck QCheck_alcotest Random Skeleton Topology
