test/t_spec.ml: Alcotest Astring Emit Lid List Printf QCheck QCheck_alcotest Random Skeleton String Topology
