test/t_protocol_invariants.ml: Alcotest Hashtbl Lid List Printf QCheck QCheck_alcotest Random Skeleton Topology
