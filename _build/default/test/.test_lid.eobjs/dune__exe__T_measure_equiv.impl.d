test/t_measure_equiv.ml: Alcotest Lid List Printf QCheck QCheck_alcotest Random Skeleton Topology
