test/t_verify.ml: Alcotest Array Bitvec Hdl Lid List Printf QCheck QCheck_alcotest Random Sim Skeleton String Topology Verify
