test/test_lid.mli:
