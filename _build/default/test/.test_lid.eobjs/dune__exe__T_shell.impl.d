test/t_shell.ml: Alcotest Lid List
