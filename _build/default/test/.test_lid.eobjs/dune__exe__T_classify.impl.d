test/t_classify.ml: Alcotest Format Lid List Topology
