test/t_scale.ml: Alcotest Array Bitvec Hdl Lid List Printf Random Sim Skeleton Topology
