test/t_network.ml: Alcotest Array Astring Lid List Random Topology
