test/t_core.ml: Alcotest Array Lid List
