test/t_emit.ml: Alcotest Astring Bits Bitvec Emit Hdl Lid List String
