test/t_hdl.ml: Alcotest Array Bits Bitvec Hdl List Sim String
