test/t_bdd.ml: Alcotest Array Bits Bitvec Hashtbl Hdl Lid List Printf QCheck QCheck_alcotest Queue Random Verify
