open Bitvec
open Hdl.Signal

let counter_circuit ?(w = 8) () =
  let en = input "en" 1 in
  let r =
    reg_fb ~name:"cnt" ~enable:en ~reset:(Bits.zero w) ~width:w (fun r ->
        r +: consti ~width:w 1)
  in
  Hdl.Circuit.create ~name:"counter" ~inputs:[ en ] ~outputs:[ output "q" r ]

let test_counter_cycle_sim () =
  let sim = Sim.Cycle_sim.create (counter_circuit ()) in
  Sim.Cycle_sim.poke sim "en" (Bits.of_bool true);
  for i = 0 to 9 do
    Alcotest.(check int) (Printf.sprintf "count %d" i) i
      (Bits.to_int (Sim.Cycle_sim.peek_output sim "q"));
    Sim.Cycle_sim.step sim
  done;
  Alcotest.(check int) "cycle count" 10 (Sim.Cycle_sim.cycle_count sim)

let test_counter_enable_gates () =
  let sim = Sim.Cycle_sim.create (counter_circuit ()) in
  Sim.Cycle_sim.poke sim "en" (Bits.of_bool true);
  Sim.Cycle_sim.step sim;
  Sim.Cycle_sim.step sim;
  Sim.Cycle_sim.poke sim "en" (Bits.of_bool false);
  Sim.Cycle_sim.step sim;
  Sim.Cycle_sim.step sim;
  Alcotest.(check int) "held at 2" 2 (Bits.to_int (Sim.Cycle_sim.peek_output sim "q"))

let test_reset () =
  let sim = Sim.Cycle_sim.create (counter_circuit ()) in
  Sim.Cycle_sim.poke sim "en" (Bits.of_bool true);
  for _ = 1 to 5 do Sim.Cycle_sim.step sim done;
  Sim.Cycle_sim.reset sim;
  Alcotest.(check int) "back to 0" 0 (Bits.to_int (Sim.Cycle_sim.peek_output sim "q"));
  Alcotest.(check int) "cycles cleared" 0 (Sim.Cycle_sim.cycle_count sim)

let test_poke_validation () =
  let sim = Sim.Cycle_sim.create (counter_circuit ()) in
  Alcotest.check_raises "bad width"
    (Invalid_argument "Cycle_sim.poke \"en\": width mismatch") (fun () ->
      Sim.Cycle_sim.poke sim "en" (Bits.zero 2));
  Alcotest.check_raises "unknown input" Not_found (fun () ->
      Sim.Cycle_sim.poke sim "nope" (Bits.zero 1))

let test_comb_only () =
  let a = input "a" 8 and b = input "b" 8 in
  let c =
    Hdl.Circuit.create ~name:"mix" ~inputs:[ a; b ]
      ~outputs:
        [
          output "sum" (a +: b);
          output "eq" (a ==: b);
          output "min" (mux2 (a <: b) a b);
        ]
  in
  let sim = Sim.Cycle_sim.create c in
  Sim.Cycle_sim.poke sim "a" (Bits.of_int ~width:8 13);
  Sim.Cycle_sim.poke sim "b" (Bits.of_int ~width:8 29);
  Alcotest.(check int) "sum" 42 (Bits.to_int (Sim.Cycle_sim.peek_output sim "sum"));
  Alcotest.(check int) "eq" 0 (Bits.to_int (Sim.Cycle_sim.peek_output sim "eq"));
  Alcotest.(check int) "min" 13 (Bits.to_int (Sim.Cycle_sim.peek_output sim "min"))

let test_event_sim_counter () =
  let sim = Sim.Event_sim.create (counter_circuit ()) in
  Sim.Event_sim.poke sim "en" (Bits.of_bool true);
  for i = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "count %d" i) i
      (Bits.to_int (Sim.Event_sim.peek_output sim "q"));
    Sim.Event_sim.step sim
  done

let test_event_sim_activity () =
  (* a quiescent circuit should cost no events after settling *)
  let sim = Sim.Event_sim.create (counter_circuit ()) in
  Sim.Event_sim.poke sim "en" (Bits.of_bool false);
  Sim.Event_sim.settle sim;
  let before = Sim.Event_sim.event_count sim in
  for _ = 1 to 50 do
    Sim.Event_sim.step sim;
    Sim.Event_sim.settle sim
  done;
  Alcotest.(check int) "no events while idle" before (Sim.Event_sim.event_count sim)

(* random circuit generator for the cross-check property *)
let random_circuit rng =
  let n_inputs = 1 + Random.State.int rng 3 in
  let w = 1 + Random.State.int rng 12 in
  let inputs = List.init n_inputs (fun i -> input (Printf.sprintf "i%d" i) w) in
  let pool = ref inputs in
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  let regs = ref [] in
  for _ = 1 to 12 do
    let a = pick () and b = pick () in
    let s =
      match Random.State.int rng 9 with
      | 0 -> a +: b
      | 1 -> a -: b
      | 2 -> a &: b
      | 3 -> a |: b
      | 4 -> a ^: b
      | 5 -> ~:a
      | 6 -> mux2 (a <: b) a b
      | 7 -> a *: b
      | _ ->
          let r =
            reg ~reset:(Bits.of_int ~width:w (Random.State.int rng 100)) a
          in
          regs := r :: !regs;
          r
    in
    pool := s :: !pool
  done;
  let o = output "out" (pick ()) in
  let o2 = output "out2" (pick ()) in
  Hdl.Circuit.create ~name:"rand" ~inputs ~outputs:[ o; o2 ]

let prop_cycle_eq_event =
  QCheck.Test.make ~name:"cycle sim = event-driven sim on random circuits"
    ~count:60 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let circ = random_circuit rng in
      let c = Sim.Cycle_sim.create circ and e = Sim.Event_sim.create circ in
      let ok = ref true in
      for _ = 1 to 40 do
        List.iter
          (fun i ->
            let w = Hdl.Signal.width i in
            let v = Bits.random ~width:w (Random.State.int rng) in
            let name = Hdl.Signal.name_of i in
            Sim.Cycle_sim.poke c name v;
            Sim.Event_sim.poke e name v)
          (Hdl.Circuit.inputs circ);
        List.iter
          (fun o ->
            let name = Hdl.Signal.name_of o in
            if
              not
                (Bits.equal
                   (Sim.Cycle_sim.peek_output c name)
                   (Sim.Event_sim.peek_output e name))
            then ok := false)
          (Hdl.Circuit.outputs circ);
        Sim.Cycle_sim.step c;
        Sim.Event_sim.step e
      done;
      !ok)

let test_vcd () =
  let circ = counter_circuit ~w:4 () in
  let sim = Sim.Cycle_sim.create circ in
  Sim.Cycle_sim.poke sim "en" (Bits.of_bool true);
  let path = Filename.temp_file "lid" ".vcd" in
  let oc = open_out path in
  let q = Hdl.Circuit.find_output circ "q" in
  let vcd = Sim.Vcd.create ~out:oc ~design:"counter" [ ("q", q); ("en", Hdl.Circuit.find_input circ "en") ] in
  for t = 0 to 7 do
    Sim.Vcd.sample vcd ~time:t ~peek:(Sim.Cycle_sim.peek sim);
    Sim.Cycle_sim.step sim
  done;
  Sim.Vcd.close vcd;
  close_out oc;
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check bool) "has header" true
    (String.length content > 0
    && Astring.String.is_infix ~affix:"$enddefinitions" content);
  Alcotest.(check bool) "has q samples" true
    (Astring.String.is_infix ~affix:"b0011" content)

let suite =
  [
    Alcotest.test_case "counter (cycle sim)" `Quick test_counter_cycle_sim;
    Alcotest.test_case "enable gating" `Quick test_counter_enable_gates;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "poke validation" `Quick test_poke_validation;
    Alcotest.test_case "combinational outputs" `Quick test_comb_only;
    Alcotest.test_case "counter (event sim)" `Quick test_event_sim_counter;
    Alcotest.test_case "event sim idle costs nothing" `Quick test_event_sim_activity;
    Alcotest.test_case "vcd writer" `Quick test_vcd;
    QCheck_alcotest.to_alcotest prop_cycle_eq_event;
  ]
