(* Deadlock decision/cure and figure-style traces. *)

module G = Topology.Generators
module C = Skeleton.Cure

let half = [ Lid.Relay_station.Half ]

let stalling_tap () =
  G.ring_tapped ~n_shells:3 ~stations:half
    ~sink_pattern:(Topology.Pattern.periodic ~period:4 ~active:2 ())
    ()

let test_decide_static_fast_path () =
  let d = C.decide (G.chain ~n_shells:3 ()) in
  Alcotest.(check bool) "no simulation needed" true (d.simulated = None);
  Alcotest.(check bool) "live" false d.deadlocked

let test_decide_simulates_potential () =
  let d = C.decide ~flavour:Lid.Protocol.Optimized (stalling_tap ()) in
  Alcotest.(check bool) "simulated" true (d.simulated <> None);
  Alcotest.(check bool) "live under refinement" false d.deadlocked

let test_decide_finds_deadlock () =
  let d = C.decide ~flavour:Lid.Protocol.Original (stalling_tap ()) in
  Alcotest.(check bool) "deadlock found" true d.deadlocked

let test_cure_restores_liveness () =
  match C.cure ~flavour:Lid.Protocol.Original (stalling_tap ()) with
  | C.Cured { network; substitutions } ->
      Alcotest.(check bool) "few substitutions" true
        (List.length substitutions <= 3);
      let d = C.decide ~flavour:Lid.Protocol.Original network in
      Alcotest.(check bool) "live after cure" false d.deadlocked;
      (* cured network still computes the right streams *)
      (match Skeleton.Equiv.check ~flavour:Lid.Protocol.Original network with
      | Skeleton.Equiv.Equivalent _ -> ()
      | Skeleton.Equiv.Divergent _ -> Alcotest.fail "cure broke equivalence")
  | C.Already_live -> Alcotest.fail "expected a deadlock to cure"
  | C.Not_cured -> Alcotest.fail "cure failed"

let test_cure_noop_when_live () =
  match C.cure (G.fig2 ()) with
  | C.Already_live -> ()
  | _ -> Alcotest.fail "expected Already_live"

(* traces *)

let test_trace_fig1_rendering () =
  let engine = Skeleton.Engine.create (G.fig1 ()) in
  let trace = Skeleton.Trace.record ~cycles:16 engine in
  let text = Skeleton.Trace.render trace in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true
        (Astring.String.is_infix ~affix text))
    [ "cycle"; "src"; "A"; "B"; "C"; "out<=" ];
  Alcotest.(check int) "17 lines (header + 16 cycles)" 17
    (List.length (String.split_on_char '\n' text))

let test_trace_output_row_periodic () =
  (* steady state: void every 5 cycles at the output *)
  let engine = Skeleton.Engine.create (G.fig1 ()) in
  Skeleton.Engine.run engine ~cycles:10;
  let trace = Skeleton.Trace.record ~cycles:10 engine in
  let row = Skeleton.Trace.output_row trace ~sink:"out" in
  let voids = List.length (List.filter (fun t -> not (Lid.Token.is_valid t)) row) in
  Alcotest.(check int) "2 voids in 10 cycles" 2 voids

let test_trace_snapshots_accessible () =
  let engine = Skeleton.Engine.create (G.fig2 ()) in
  let trace = Skeleton.Trace.record ~cycles:4 engine in
  Alcotest.(check int) "4 snapshots" 4 (List.length (Skeleton.Trace.snapshots trace))

let test_wave_vcd () =
  let engine = Skeleton.Engine.create (G.fig1 ()) in
  let vcd = Skeleton.Wave.to_string ~cycles:12 engine in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true
        (Astring.String.is_infix ~affix vcd))
    [ "$enddefinitions"; "A_to_C_e1_valid"; "C_to_out_e4_stop"; "#0"; "#1" ];
  Alcotest.(check int) "engine advanced" 12 (Skeleton.Engine.cycle engine)

let suite =
  [
    Alcotest.test_case "decide: static fast path" `Quick test_decide_static_fast_path;
    Alcotest.test_case "decide: simulates potentials" `Quick
      test_decide_simulates_potential;
    Alcotest.test_case "decide: finds deadlock" `Quick test_decide_finds_deadlock;
    Alcotest.test_case "cure restores liveness" `Quick test_cure_restores_liveness;
    Alcotest.test_case "cure no-op when live" `Quick test_cure_noop_when_live;
    Alcotest.test_case "fig1 trace rendering" `Quick test_trace_fig1_rendering;
    Alcotest.test_case "periodic output row" `Quick test_trace_output_row_periodic;
    Alcotest.test_case "snapshots accessible" `Quick test_trace_snapshots_accessible;
    Alcotest.test_case "skeleton waveform VCD" `Quick test_wave_vcd;
  ]
