module Shell = Lid.Shell
module Token = Lid.Token
module Pearl = Lid.Pearl

let token = Alcotest.testable Token.pp Token.equal

let mk ?(flavour = Lid.Protocol.Optimized) pearl = Shell.create ~flavour pearl

let test_initial_valid () =
  (* "the shells outputs are initialized with valid data" *)
  let sh = mk (Pearl.counter ~start:4 ()) in
  let st = Shell.initial sh in
  Alcotest.check token "valid initial" (Token.valid 4) (Shell.present st 0)

let test_fires_when_ready () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  Alcotest.(check bool) "fires" true
    (Shell.fires sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| false |]);
  Alcotest.(check bool) "void input blocks" false
    (Shell.fires sh st ~inputs:[| Token.void |] ~out_stops:[| false |])

let test_stop_gates_valid_output () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  (* initial output is valid, so a stop is relevant under both flavours *)
  Alcotest.(check bool) "gated" false
    (Shell.fires sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| true |])

let test_optimized_discards_stop_on_void () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  (* consume the initial output without providing input: buffer goes void *)
  let st = Shell.step sh st ~inputs:[| Token.void |] ~out_stops:[| false |] in
  Alcotest.check token "buffer void" Token.void (Shell.present st 0);
  Alcotest.(check bool) "stop on void output discarded" true
    (Shell.fires sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| true |])

let test_original_honours_stop_on_void () =
  let sh = mk ~flavour:Lid.Protocol.Original (Pearl.identity ()) in
  let st = Shell.initial sh in
  let st = Shell.step sh st ~inputs:[| Token.void |] ~out_stops:[| false |] in
  Alcotest.(check bool) "stop on void output still gates" false
    (Shell.fires sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| true |])

let test_clock_gating () =
  (* pearl state must not advance while the shell is stalled *)
  let sh = mk (Pearl.accumulator ()) in
  let st = Shell.initial sh in
  let st = Shell.step sh st ~inputs:[| Token.valid 10 |] ~out_stops:[| false |] in
  Alcotest.(check (array int)) "accumulated" [| 10 |] (Shell.pearl_state st);
  (* stalled on a void input for three cycles: state frozen *)
  let st' = ref st in
  for _ = 1 to 3 do
    st' := Shell.step sh !st' ~inputs:[| Token.void |] ~out_stops:[| false |]
  done;
  Alcotest.(check (array int)) "frozen" [| 10 |] (Shell.pearl_state !st')

let test_output_held_under_stop () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  let st = Shell.step sh st ~inputs:[| Token.valid 5 |] ~out_stops:[| false |] in
  Alcotest.check token "new output" (Token.valid 5) (Shell.present st 0);
  let st = Shell.step sh st ~inputs:[| Token.valid 6 |] ~out_stops:[| true |] in
  Alcotest.check token "held under stop" (Token.valid 5) (Shell.present st 0)

let test_output_void_after_consumption () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  (* consumed (no stop) but shell cannot fire (void input): next is void *)
  let st = Shell.step sh st ~inputs:[| Token.void |] ~out_stops:[| false |] in
  Alcotest.check token "void" Token.void (Shell.present st 0)

let test_back_pressure () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  let stops =
    Shell.input_stops sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| true |]
  in
  Alcotest.(check (array bool)) "stop sent on valid input" [| true |] stops;
  let stops_void =
    Shell.input_stops sh st ~inputs:[| Token.void |] ~out_stops:[| true |]
  in
  Alcotest.(check (array bool)) "optimized: no stop on void input" [| false |]
    stops_void;
  let sh_orig = mk ~flavour:Lid.Protocol.Original (Pearl.identity ()) in
  let st_o = Shell.initial sh_orig in
  let stops_orig =
    Shell.input_stops sh_orig st_o ~inputs:[| Token.void |] ~out_stops:[| true |]
  in
  Alcotest.(check (array bool)) "original: stop regardless" [| true |] stops_orig

let test_no_stop_when_firing () =
  let sh = mk (Pearl.identity ()) in
  let st = Shell.initial sh in
  let stops =
    Shell.input_stops sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| false |]
  in
  Alcotest.(check (array bool)) "consumed, no stop" [| false |] stops

let test_multi_output_independent_buffers () =
  let sh = mk (Pearl.fork2 ()) in
  let st = Shell.initial sh in
  (* output 0 stopped (held), output 1 free (consumed): they diverge *)
  let st =
    Shell.step sh st ~inputs:[| Token.void |] ~out_stops:[| true; false |]
  in
  Alcotest.check token "port 0 held" (Token.valid 0) (Shell.present st 0);
  Alcotest.check token "port 1 void" Token.void (Shell.present st 1)

let test_mixed_stop_gating () =
  (* a stop on one valid output gates the whole shell *)
  let sh = mk (Pearl.fork2 ()) in
  let st = Shell.initial sh in
  Alcotest.(check bool) "gated by port 1" false
    (Shell.fires sh st ~inputs:[| Token.valid 1 |] ~out_stops:[| false; true |])

let test_arity_validation () =
  let sh = mk (Pearl.adder ()) in
  let st = Shell.initial sh in
  Alcotest.check_raises "inputs" (Invalid_argument "Shell: input arity mismatch")
    (fun () ->
      ignore (Shell.fires sh st ~inputs:[| Token.void |] ~out_stops:[| false |]))

let test_identity_stream () =
  (* feed a stuttering stream; output values must be the input stream *)
  let sh = mk (Pearl.identity ()) in
  let st = ref (Shell.initial sh) in
  let fed = [ Some 1; None; Some 2; Some 3; None; None; Some 4 ] in
  let got = ref [] in
  List.iter
    (fun x ->
      let inputs =
        [| (match x with Some v -> Token.valid v | None -> Token.void) |]
      in
      (match Shell.present !st 0 with
      | Token.Valid v -> got := v :: !got
      | Token.Void -> ());
      st := Shell.step sh !st ~inputs ~out_stops:[| false |])
    fed;
  Alcotest.(check (list int)) "initial 0 then stream" [ 0; 1; 2; 3 ]
    (List.rev !got)

let suite =
  [
    Alcotest.test_case "initial output valid" `Quick test_initial_valid;
    Alcotest.test_case "firing rule" `Quick test_fires_when_ready;
    Alcotest.test_case "stop gates valid output" `Quick test_stop_gates_valid_output;
    Alcotest.test_case "optimized discards stop on void" `Quick
      test_optimized_discards_stop_on_void;
    Alcotest.test_case "original honours stop on void" `Quick
      test_original_honours_stop_on_void;
    Alcotest.test_case "clock gating freezes pearl" `Quick test_clock_gating;
    Alcotest.test_case "output held under stop" `Quick test_output_held_under_stop;
    Alcotest.test_case "output void after consumption" `Quick
      test_output_void_after_consumption;
    Alcotest.test_case "back pressure per flavour" `Quick test_back_pressure;
    Alcotest.test_case "no stop when firing" `Quick test_no_stop_when_firing;
    Alcotest.test_case "independent output buffers" `Quick
      test_multi_output_independent_buffers;
    Alcotest.test_case "mixed stop gating" `Quick test_mixed_stop_gating;
    Alcotest.test_case "arity validation" `Quick test_arity_validation;
    Alcotest.test_case "identity value stream" `Quick test_identity_stream;
  ]
