module E = Topology.Elastic
module G = Topology.Generators

let bound net = E.throughput_bound net
let flt = Alcotest.(check (float 1e-9))

let test_chain_bound_one () = flt "chain" 1.0 (bound (G.chain ~n_shells:4 ()))
let test_tree_bound_one () = flt "tree" 1.0 (bound (G.tree ~depth:3 ()))

let test_fig1_bound () = flt "fig1 4/5" 0.8 (bound (G.fig1 ()))

let test_fig1_balanced () =
  flt "balanced" 1.0 (bound (G.fig1 ~r_direct:2 ()))

let test_loop_bounds () =
  flt "2/(2+2)" 0.5 (bound (G.fig2 ()));
  flt "2/(2+5)" (2. /. 7.) (bound (G.fig2 ~stations_ab:2 ~stations_ba:3 ()));
  flt "5/(5+5)" 0.5 (bound (G.ring ~n_shells:5 ()))

let test_half_stations_latency_free () =
  flt "ring of halves" 1.0
    (bound (G.ring ~n_shells:4 ~stations:[ Lid.Relay_station.Half ] ()))

let test_exact_ratio () =
  let el = E.of_network (G.fig1 ()) in
  let tok, lat = E.min_cycle_ratio el in
  Alcotest.(check int) "tokens" 4 tok;
  Alcotest.(check int) "latency" 5 lat

let test_critical_cycle_nonempty () =
  let el = E.of_network (G.fig1 ()) in
  Alcotest.(check bool) "cycle found" true (List.length (E.critical_cycle el) > 0);
  let el1 = E.of_network (G.chain ~n_shells:2 ()) in
  Alcotest.(check (list int)) "no constraint -> no cycle" [] (E.critical_cycle el1)

let test_critical_cycle_ratio_matches () =
  let el = E.of_network (G.fig2 ~stations_ab:2 ~stations_ba:3 ()) in
  let (tok, lat), origins = E.critical_cycle_origins el in
  Alcotest.(check bool) "consistent" true (tok * 7 = lat * 2);
  Alcotest.(check bool) "has origins" true (List.length origins > 0)

let test_zero_latency_cycle_detection () =
  (* two shells tied with direct (station-less) channels both ways: the
     combinational stop cycle the minimum-memory theorem forbids *)
  let b = Topology.Network.builder () in
  let a = Topology.Network.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let c = Topology.Network.add_shell b ~name:"c" (Lid.Pearl.identity ()) in
  let _ = Topology.Network.connect b ~stations:[] ~src:(a, 0) ~dst:(c, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(c, 0) ~dst:(a, 0) () in
  let net = Topology.Network.build ~allow_direct:true b in
  Alcotest.(check bool) "raises" true
    (try
       ignore (E.min_cycle_ratio (E.of_network net));
       false
     with E.Zero_latency_cycle _ -> true)

let test_ff_formula_matches_elastic () =
  (* (m-i)/m = elastic bound across a parameter sweep *)
  List.iter
    (fun (r_short, r_head, r_tail) ->
      let net = G.reconvergent ~r_short ~r_long_head:r_head ~r_long_tail:r_tail () in
      let r_long = r_head + r_tail in
      if r_long >= r_short then begin
        let m, i =
          Topology.Analysis.ff_params ~r_short ~r_long ~shells_long:1
        in
        flt
          (Printf.sprintf "formula (%d,%d,%d)" r_short r_head r_tail)
          (Topology.Analysis.ff_throughput ~m ~i)
          (bound net)
      end)
    [ (1, 1, 1); (1, 2, 1); (1, 1, 2); (2, 2, 1); (1, 2, 2); (2, 2, 2); (3, 2, 2) ]

let test_loop_formula_matches_elastic () =
  List.iter
    (fun (s, r_ab, r_ba) ->
      ignore s;
      let net = G.fig2 ~stations_ab:r_ab ~stations_ba:r_ba () in
      flt
        (Printf.sprintf "loop (%d,%d)" r_ab r_ba)
        (Topology.Analysis.loop_throughput ~s:2 ~r:(r_ab + r_ba))
        (bound net))
    [ (2, 1, 1); (2, 1, 2); (2, 3, 1); (2, 4, 4) ]

(* the central validation: the analytic bound equals the measured
   steady-state throughput on random loopy networks *)
let prop_bound_is_exact =
  QCheck.Test.make ~name:"elastic bound = measured throughput (random nets)"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 17 |] in
      let net =
        Topology.Generators.random_loopy ~rng ~n_shells:(3 + (seed mod 5))
          ~extra_back_edges:(1 + (seed mod 2))
          ()
      in
      let b = bound net in
      let engine = Skeleton.Engine.create net in
      match Skeleton.Measure.analyze ~max_cycles:50_000 engine with
      | None -> false
      | Some r -> abs_float (Skeleton.Measure.system_throughput r -. b) < 1e-9)

let prop_bound_is_exact_dags =
  QCheck.Test.make ~name:"elastic bound = measured throughput (random DAGs)"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 23 |] in
      let net = Topology.Generators.random_dag ~rng ~n_shells:(3 + (seed mod 6)) () in
      let b = bound net in
      let engine = Skeleton.Engine.create net in
      match Skeleton.Measure.analyze ~max_cycles:50_000 engine with
      | None -> false
      | Some r -> abs_float (Skeleton.Measure.system_throughput r -. b) < 1e-9)

let suite =
  [
    Alcotest.test_case "chain bound 1" `Quick test_chain_bound_one;
    Alcotest.test_case "tree bound 1" `Quick test_tree_bound_one;
    Alcotest.test_case "fig1 bound 4/5" `Quick test_fig1_bound;
    Alcotest.test_case "balanced fig1 bound 1" `Quick test_fig1_balanced;
    Alcotest.test_case "loop bounds S/(S+R)" `Quick test_loop_bounds;
    Alcotest.test_case "half stations latency-free" `Quick
      test_half_stations_latency_free;
    Alcotest.test_case "exact critical ratio" `Quick test_exact_ratio;
    Alcotest.test_case "critical cycle extraction" `Quick test_critical_cycle_nonempty;
    Alcotest.test_case "critical cycle consistency" `Quick
      test_critical_cycle_ratio_matches;
    Alcotest.test_case "combinational stop cycle detected" `Quick
      test_zero_latency_cycle_detection;
    Alcotest.test_case "(m-i)/m sweep" `Quick test_ff_formula_matches_elastic;
    Alcotest.test_case "S/(S+R) sweep" `Quick test_loop_formula_matches_elastic;
    QCheck_alcotest.to_alcotest prop_bound_is_exact;
    QCheck_alcotest.to_alcotest prop_bound_is_exact_dags;
  ]
