module P = Topology.Pattern

let test_always_never () =
  Alcotest.(check bool) "always" true (P.active P.always ~cycle:17);
  Alcotest.(check bool) "never" false (P.active P.never ~cycle:17);
  Alcotest.(check int) "trivial periods" 1 (P.period P.always)

let test_periodic () =
  let p = P.periodic ~period:5 ~active:2 () in
  Alcotest.(check (list bool)) "first period" [ true; true; false; false; false ]
    (List.init 5 (fun c -> P.active p ~cycle:c));
  Alcotest.(check bool) "repeats" true (P.active p ~cycle:5);
  Alcotest.(check bool) "repeats off" false (P.active p ~cycle:9);
  Alcotest.(check (float 1e-9)) "duty" 0.4 (P.duty p)

let test_phase () =
  let p = P.periodic ~phase:1 ~period:4 ~active:1 () in
  Alcotest.(check (list bool)) "shifted" [ false; false; false; true ]
    (List.init 4 (fun c -> P.active p ~cycle:c))

let test_periodic_validation () =
  Alcotest.check_raises "period 0"
    (Invalid_argument "Pattern.periodic: period must be >= 1") (fun () ->
      ignore (P.periodic ~period:0 ~active:0 ()));
  Alcotest.check_raises "active > period"
    (Invalid_argument "Pattern.periodic: need 0 <= active <= period") (fun () ->
      ignore (P.periodic ~period:3 ~active:4 ()))

let test_word () =
  let p = P.word [ true; false; true ] in
  Alcotest.(check int) "period" 3 (P.period p);
  Alcotest.(check bool) "cycle 0" true (P.active p ~cycle:0);
  Alcotest.(check bool) "cycle 1" false (P.active p ~cycle:1);
  Alcotest.(check bool) "cycle 4" false (P.active p ~cycle:4);
  Alcotest.check_raises "empty" (Invalid_argument "Pattern.word: empty word")
    (fun () -> ignore (P.word []))

let test_pp () =
  Alcotest.(check string) "periodic" "2/5@0"
    (Format.asprintf "%a" P.pp (P.periodic ~period:5 ~active:2 ()));
  Alcotest.(check string) "word" "101" (Format.asprintf "%a" P.pp (P.word [ true; false; true ]))

let suite =
  [
    Alcotest.test_case "always/never" `Quick test_always_never;
    Alcotest.test_case "periodic" `Quick test_periodic;
    Alcotest.test_case "phase" `Quick test_phase;
    Alcotest.test_case "validation" `Quick test_periodic_validation;
    Alcotest.test_case "word" `Quick test_word;
    Alcotest.test_case "printing" `Quick test_pp;
  ]
