module C = Topology.Classify
module G = Topology.Generators

let shape =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (C.shape_to_string s))
    ( = )

let test_chain_is_tree () =
  let info = C.classify (G.chain ~n_shells:3 ()) in
  Alcotest.check shape "tree" C.Tree info.shape;
  Alcotest.(check bool) "acyclic" false info.cyclic

let test_tree_is_tree () =
  let info = C.classify (G.tree ~depth:3 ()) in
  Alcotest.check shape "tree" C.Tree info.shape

let test_fig1_reconvergent () =
  let info = C.classify (G.fig1 ()) in
  Alcotest.check shape "reconvergent" C.Reconvergent_feedforward info.shape;
  Alcotest.(check int) "one join" 1 (List.length info.reconvergent_joins)

let test_fig2_single_loop () =
  let info = C.classify (G.fig2 ()) in
  Alcotest.check shape "single loop" C.Single_loop info.shape;
  Alcotest.(check int) "one cycle" 1 info.n_simple_cycles

let test_tapped_ring_general () =
  let info = C.classify (G.ring_tapped ~n_shells:3 ()) in
  Alcotest.(check bool) "cyclic" true info.cyclic;
  Alcotest.check shape "general" C.General_cyclic info.shape

let test_join_without_reconvergence () =
  (* two independent sources joining: a join, but no shared origin *)
  let b = Topology.Network.builder () in
  let s1 = Topology.Network.add_source b ~name:"s1" () in
  let s2 = Topology.Network.add_source b ~name:"s2" () in
  let j = Topology.Network.add_shell b ~name:"j" (Lid.Pearl.adder ()) in
  let k = Topology.Network.add_sink b () in
  let _ = Topology.Network.connect b ~src:(s1, 0) ~dst:(j, 0) () in
  let _ = Topology.Network.connect b ~src:(s2, 0) ~dst:(j, 1) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(j, 0) ~dst:(k, 0) () in
  let info = C.classify (Topology.Network.build b) in
  Alcotest.check shape "join but not reconvergent" C.Join_feedforward info.shape

let test_longest_path () =
  (* source -> 3 shells -> sink, one full station per channel:
     4 producer stages + 4 stations *)
  let info = C.classify (G.chain ~n_shells:3 ()) in
  Alcotest.(check int) "longest path" 8 info.longest_path

let test_simple_cycles_enumeration () =
  let cycles = C.simple_cycles (G.fig2 ~stations_ab:2 ~stations_ba:1 ()) in
  Alcotest.(check int) "one simple cycle" 1 (List.length cycles);
  match cycles with
  | [ cycle ] ->
      let full, half = C.loop_stations (G.fig2 ~stations_ab:2 ~stations_ba:1 ()) cycle in
      Alcotest.(check int) "3 full stations on the loop" 3 full;
      Alcotest.(check int) "no halves" 0 half
  | _ -> Alcotest.fail "expected exactly one cycle"

let test_two_loops () =
  (* ring of 4 with a chord creating a second loop *)
  let b = Topology.Network.builder () in
  let p () = Lid.Pearl.identity () in
  let fork = Topology.Network.add_shell b ~name:"f" (Lid.Pearl.fork2 ()) in
  let join =
    Topology.Network.add_shell b ~name:"j"
      (Lid.Pearl.combine ~name:"j" (fun a b -> a + b))
  in
  let mid = Topology.Network.add_shell b ~name:"m" (p ()) in
  let st = [ Lid.Relay_station.Full ] in
  (* j -> f; f -> j (short); f -> m -> j (long): two loops through f/j *)
  let _ = Topology.Network.connect b ~stations:st ~src:(join, 0) ~dst:(fork, 0) () in
  let _ = Topology.Network.connect b ~stations:st ~src:(fork, 0) ~dst:(join, 0) () in
  let _ = Topology.Network.connect b ~stations:st ~src:(fork, 1) ~dst:(mid, 0) () in
  let _ = Topology.Network.connect b ~stations:st ~src:(mid, 0) ~dst:(join, 1) () in
  let net = Topology.Network.build b in
  let info = C.classify net in
  Alcotest.(check int) "two simple cycles" 2 info.n_simple_cycles;
  Alcotest.check shape "general" C.General_cyclic info.shape

let suite =
  [
    Alcotest.test_case "chain is a tree" `Quick test_chain_is_tree;
    Alcotest.test_case "binary tree is a tree" `Quick test_tree_is_tree;
    Alcotest.test_case "fig1 reconvergent" `Quick test_fig1_reconvergent;
    Alcotest.test_case "fig2 single loop" `Quick test_fig2_single_loop;
    Alcotest.test_case "tapped ring general" `Quick test_tapped_ring_general;
    Alcotest.test_case "join vs reconvergence" `Quick test_join_without_reconvergence;
    Alcotest.test_case "longest path" `Quick test_longest_path;
    Alcotest.test_case "simple cycle enumeration" `Quick test_simple_cycles_enumeration;
    Alcotest.test_case "multiple loops" `Quick test_two_loops;
  ]
