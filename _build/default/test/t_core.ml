(* Tokens, pearls, protocol. *)

module Token = Lid.Token
module Pearl = Lid.Pearl

let token = Alcotest.testable Token.pp Token.equal

let test_token_basics () =
  Alcotest.(check bool) "valid" true (Token.is_valid (Token.valid 3));
  Alcotest.(check bool) "void" false (Token.is_valid Token.void);
  Alcotest.(check int) "value" 3 (Token.value (Token.valid 3));
  Alcotest.check_raises "value of void" (Invalid_argument "Token.value: void token")
    (fun () -> ignore (Token.value Token.void));
  Alcotest.(check (option int)) "value_opt" (Some 3) (Token.value_opt (Token.valid 3));
  Alcotest.(check (option int)) "value_opt void" None (Token.value_opt Token.void)

let test_token_printing () =
  Alcotest.(check string) "valid prints value" "7" (Token.to_string (Token.valid 7));
  Alcotest.(check string) "void prints n (paper notation)" "n"
    (Token.to_string Token.void)

let test_pearl_counter () =
  let p = Pearl.counter ~start:5 () in
  Alcotest.(check int) "initial output" 5 p.Pearl.initial_output.(0);
  let st, out = Pearl.apply p ~state:p.Pearl.init_state ~inputs:[||] in
  Alcotest.(check int) "first fired output" 6 out.(0);
  let _, out2 = Pearl.apply p ~state:st ~inputs:[||] in
  Alcotest.(check int) "second" 7 out2.(0)

let test_pearl_identity () =
  let p = Pearl.identity () in
  let _, out = Pearl.apply p ~state:[||] ~inputs:[| 42 |] in
  Alcotest.(check int) "repeats input" 42 out.(0)

let test_pearl_delay_chain () =
  let p = Pearl.delay_chain 3 in
  let st = ref p.Pearl.init_state in
  let outs = ref [] in
  List.iter
    (fun v ->
      let st', out = Pearl.apply p ~state:!st ~inputs:[| v |] in
      st := st';
      outs := out.(0) :: !outs)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "delayed by 3" [ 0; 0; 0; 1; 2 ] (List.rev !outs)

let test_pearl_delay_zero_is_identity () =
  let p = Pearl.delay_chain 0 in
  Alcotest.(check string) "name" "identity" p.Pearl.name

let test_pearl_adder_accumulator () =
  let p = Pearl.adder () in
  let _, out = Pearl.apply p ~state:[||] ~inputs:[| 3; 4 |] in
  Alcotest.(check int) "sum" 7 out.(0);
  let a = Pearl.accumulator () in
  let st, o1 = Pearl.apply a ~state:a.Pearl.init_state ~inputs:[| 10 |] in
  let _, o2 = Pearl.apply a ~state:st ~inputs:[| 5 |] in
  Alcotest.(check int) "acc 10" 10 o1.(0);
  Alcotest.(check int) "acc 15" 15 o2.(0)

let test_pearl_fork () =
  let p = Pearl.fork2 () in
  let _, out = Pearl.apply p ~state:[||] ~inputs:[| 9 |] in
  Alcotest.(check (array int)) "copies" [| 9; 9 |] out

let test_pearl_arity_checks () =
  let p = Pearl.adder () in
  Alcotest.check_raises "input arity" (Invalid_argument "Pearl.apply adder: input arity")
    (fun () -> ignore (Pearl.apply p ~state:[||] ~inputs:[| 1 |]));
  Alcotest.check_raises "create arity"
    (Invalid_argument "Pearl.create: initial_output arity mismatch") (fun () ->
      ignore
        (Pearl.create ~name:"bad" ~n_inputs:1 ~n_outputs:2 ~initial_output:[| 0 |]
           (fun s i -> (s, i))))

let test_flavours () =
  Alcotest.(check (list string)) "both flavours" [ "original"; "optimized" ]
    (List.map Lid.Protocol.to_string Lid.Protocol.all)

let _ = token

let suite =
  [
    Alcotest.test_case "token basics" `Quick test_token_basics;
    Alcotest.test_case "token printing" `Quick test_token_printing;
    Alcotest.test_case "counter pearl" `Quick test_pearl_counter;
    Alcotest.test_case "identity pearl" `Quick test_pearl_identity;
    Alcotest.test_case "delay chain pearl" `Quick test_pearl_delay_chain;
    Alcotest.test_case "delay 0 is identity" `Quick test_pearl_delay_zero_is_identity;
    Alcotest.test_case "adder and accumulator" `Quick test_pearl_adder_accumulator;
    Alcotest.test_case "fork pearl" `Quick test_pearl_fork;
    Alcotest.test_case "arity checks" `Quick test_pearl_arity_checks;
    Alcotest.test_case "protocol flavours" `Quick test_flavours;
  ]
