(* The ROBDD package and the symbolic reachability engine. *)

module B = Verify.Bdd
open Bitvec

let test_constants () =
  let m = B.create () in
  Alcotest.(check bool) "true" true (B.is_true B.tru);
  Alcotest.(check bool) "false" true (B.is_false B.fls);
  Alcotest.(check bool) "not true = false" true (B.is_false (B.not_ m B.tru))

let test_canonicity () =
  let m = B.create () in
  let x = B.var m 0 and y = B.var m 1 in
  (* same function built two ways shares the same node *)
  let a = B.and_ m x y in
  let b = B.not_ m (B.or_ m (B.not_ m x) (B.not_ m y)) in
  Alcotest.(check bool) "De Morgan, canonical" true (B.equal a b);
  Alcotest.(check bool) "x xor x = false" true (B.is_false (B.xor_ m x x));
  Alcotest.(check bool) "x or !x = true" true (B.is_true (B.or_ m x (B.not_ m x)))

let test_ite () =
  let m = B.create () in
  let x = B.var m 0 and y = B.var m 1 and z = B.var m 2 in
  let f = B.ite m x y z in
  Alcotest.(check bool) "ite eval 1" true (B.eval m f (fun v -> v = 0 || v = 1));
  Alcotest.(check bool) "ite eval 0" false (B.eval m f (fun v -> v = 0));
  Alcotest.(check bool) "ite eval else" true (B.eval m f (fun v -> v = 2))

let test_quantifiers () =
  let m = B.create () in
  let x = B.var m 0 and y = B.var m 1 in
  let f = B.and_ m x y in
  Alcotest.(check bool) "exists x. x&y = y" true (B.equal (B.exists m [ 0 ] f) y);
  Alcotest.(check bool) "forall x. x&y = false" true
    (B.is_false (B.forall m [ 0 ] f));
  Alcotest.(check bool) "forall x. x|!x" true
    (B.is_true (B.forall m [ 0 ] (B.or_ m x (B.not_ m x))))

let test_rename () =
  let m = B.create () in
  let f = B.and_ m (B.var m 1) (B.var m 3) in
  let g = B.rename m (fun v -> v - 1) f in
  Alcotest.(check bool) "renamed" true
    (B.equal g (B.and_ m (B.var m 0) (B.var m 2)));
  Alcotest.check_raises "non-monotone rejected"
    (Invalid_argument "Bdd.rename: mapping is not order-preserving") (fun () ->
      ignore (B.rename m (fun v -> 3 - v) f))

let test_sat_count () =
  let m = B.create () in
  let x = B.var m 0 and y = B.var m 1 in
  Alcotest.(check (float 1e-9)) "x over 2 vars" 2.0 (B.sat_count m ~n_vars:2 x);
  Alcotest.(check (float 1e-9)) "x&y" 1.0 (B.sat_count m ~n_vars:2 (B.and_ m x y));
  Alcotest.(check (float 1e-9)) "x|y" 3.0 (B.sat_count m ~n_vars:2 (B.or_ m x y));
  Alcotest.(check (float 1e-9)) "true over 5" 32.0 (B.sat_count m ~n_vars:5 B.tru)

let test_any_sat () =
  let m = B.create () in
  let f = B.and_ m (B.var m 0) (B.nvar m 2) in
  let a = B.any_sat m f in
  Alcotest.(check bool) "satisfies" true
    (B.eval m f (fun v -> match List.assoc_opt v a with Some b -> b | None -> false));
  Alcotest.check_raises "unsat" Not_found (fun () -> ignore (B.any_sat m B.fls))

(* random expressions: BDD evaluation equals direct evaluation *)
type expr = V of int | Not of expr | And of expr * expr | Or of expr * expr | Xor of expr * expr

let rec gen_expr rng depth =
  if depth = 0 || Random.State.int rng 4 = 0 then V (Random.State.int rng 5)
  else
    match Random.State.int rng 4 with
    | 0 -> Not (gen_expr rng (depth - 1))
    | 1 -> And (gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 2 -> Or (gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | _ -> Xor (gen_expr rng (depth - 1), gen_expr rng (depth - 1))

let rec eval_expr env = function
  | V v -> env v
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let rec bdd_expr m = function
  | V v -> B.var m v
  | Not e -> B.not_ m (bdd_expr m e)
  | And (a, b) -> B.and_ m (bdd_expr m a) (bdd_expr m b)
  | Or (a, b) -> B.or_ m (bdd_expr m a) (bdd_expr m b)
  | Xor (a, b) -> B.xor_ m (bdd_expr m a) (bdd_expr m b)

let prop_bdd_semantics =
  QCheck.Test.make ~name:"BDD = direct evaluation (exhaustive over 5 vars)"
    ~count:200 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed; 81 |] in
      let e = gen_expr rng 6 in
      let m = B.create () in
      let f = bdd_expr m e in
      let ok = ref true in
      for bits = 0 to 31 do
        let env v = (bits lsr v) land 1 = 1 in
        if B.eval m f env <> eval_expr env e then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Symbolic reachability.                                              *)

let counter_circuit ~w ~limit () =
  (* counts up to [limit] then wraps to 0 *)
  let open Hdl.Signal in
  let r =
    reg_fb ~name:"cnt" ~reset:(Bits.zero w) ~width:w (fun r ->
        mux2 (r ==: consti ~width:w limit) (consti ~width:w 0)
          (r +: consti ~width:w 1))
  in
  Hdl.Circuit.create ~name:"cnt" ~inputs:[] ~outputs:[ output "q" r ]

let test_reachable_counter () =
  let sym = Verify.Symbolic.of_circuit (counter_circuit ~w:4 ~limit:9 ()) in
  Alcotest.(check (float 1e-9)) "10 states" 10.0 (Verify.Symbolic.reachable_count sym);
  Alcotest.(check bool) "iterations near diameter" true
    (Verify.Symbolic.iterations sym >= 9)

let test_reachable_with_inputs () =
  (* an up/down saturating counter: inputs make the space richer *)
  let open Hdl.Signal in
  let up = input "up" 1 in
  let w = 3 in
  let r =
    reg_fb ~name:"c" ~reset:(Bits.zero w) ~width:w (fun r ->
        mux2 up
          (mux2 (r ==: consti ~width:w 7) r (r +: consti ~width:w 1))
          (mux2 (r ==: consti ~width:w 0) r (r -: consti ~width:w 1)))
  in
  let c = Hdl.Circuit.create ~name:"ud" ~inputs:[ up ] ~outputs:[ output "q" r ] in
  let sym = Verify.Symbolic.of_circuit c in
  Alcotest.(check (float 1e-9)) "all 8 states" 8.0 (Verify.Symbolic.reachable_count sym)

(* cross-validation: symbolic count = explicit enumeration *)
let explicit_count circ =
  let model = Verify.Rtl_model.of_circuit circ in
  let inputs = Hdl.Circuit.inputs circ in
  let n_bits =
    List.fold_left (fun acc i -> acc + Hdl.Signal.width i) 0 inputs
  in
  let assignments =
    List.init (1 lsl n_bits) (fun k ->
        let off = ref 0 in
        List.map
          (fun i ->
            let w = Hdl.Signal.width i in
            let v = (k lsr !off) land ((1 lsl w) - 1) in
            off := !off + w;
            (Hdl.Signal.name_of i, Bits.of_int ~width:w v))
          inputs)
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let add st =
    let key = Array.to_list (Array.map Bits.to_string st) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      Queue.add st queue
    end
  in
  add (Verify.Rtl_model.initial model);
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    List.iter (fun inputs -> add (Verify.Rtl_model.step model st ~inputs)) assignments
  done;
  Hashtbl.length seen

let test_symbolic_equals_explicit_rs () =
  List.iter
    (fun (kind, fl) ->
      let circ = Lid.Rtl_gen.relay_station ~flavour:fl ~data_width:2 kind in
      let sym = Verify.Symbolic.of_circuit circ in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s/%s" (Lid.Relay_station.kind_to_string kind)
           (Lid.Protocol.to_string fl))
        (float_of_int (explicit_count circ))
        (Verify.Symbolic.reachable_count sym))
    [
      (Lid.Relay_station.Full, Lid.Protocol.Optimized);
      (Lid.Relay_station.Half, Lid.Protocol.Optimized);
      (Lid.Relay_station.Half, Lid.Protocol.Original);
    ]

let test_rs_structural_invariants () =
  let m_of = Verify.Symbolic.man in
  (* full station: the skid slot is only ever occupied behind an occupied
     main slot, and stop is exactly skid occupancy *)
  let circ = Lid.Rtl_gen.relay_station ~data_width:2 Lid.Relay_station.Full in
  let sym = Verify.Symbolic.of_circuit circ in
  let m = m_of sym in
  let v_main = (Verify.Symbolic.reg_vector sym "v_main_r").(0) in
  let v_aux = (Verify.Symbolic.reg_vector sym "v_aux_r").(0) in
  (match Verify.Symbolic.check_invariant sym (Verify.Bdd.imp m v_aux v_main) with
  | Verify.Symbolic.Holds -> ()
  | Verify.Symbolic.Violation _ -> Alcotest.fail "v_aux => v_main violated");
  let stop_out = (Verify.Symbolic.output_vector sym "stop_out").(0) in
  (match Verify.Symbolic.check_invariant sym (Verify.Bdd.iff m stop_out v_aux) with
  | Verify.Symbolic.Holds -> ()
  | Verify.Symbolic.Violation _ -> Alcotest.fail "stop_out <-> v_aux violated");
  (* and a deliberately false property yields a witness *)
  match Verify.Symbolic.check_invariant sym (Verify.Bdd.not_ m v_main) with
  | Verify.Symbolic.Violation { state } ->
      Alcotest.(check bool) "witness names registers" true
        (List.mem_assoc "v_main_r" state)
  | Verify.Symbolic.Holds -> Alcotest.fail "expected a violation"

let test_half_original_invariant () =
  (* the original half station never holds a datum without its stop
     register set (the no-duplication argument) *)
  let circ =
    Lid.Rtl_gen.relay_station ~flavour:Lid.Protocol.Original ~data_width:2
      Lid.Relay_station.Half
  in
  let sym = Verify.Symbolic.of_circuit circ in
  let m = Verify.Symbolic.man sym in
  let v_hold = (Verify.Symbolic.reg_vector sym "v_hold_r").(0) in
  let sreg = (Verify.Symbolic.reg_vector sym "sreg_r").(0) in
  match Verify.Symbolic.check_invariant sym (Verify.Bdd.imp m v_hold sreg) with
  | Verify.Symbolic.Holds -> ()
  | Verify.Symbolic.Violation _ -> Alcotest.fail "holding => sreg violated"

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    QCheck_alcotest.to_alcotest prop_bdd_semantics;
    Alcotest.test_case "reachable: counter" `Quick test_reachable_counter;
    Alcotest.test_case "reachable: with inputs" `Quick test_reachable_with_inputs;
    Alcotest.test_case "symbolic = explicit (relay stations)" `Quick
      test_symbolic_equals_explicit_rs;
    Alcotest.test_case "relay station invariants (symbolic)" `Quick
      test_rs_structural_invariants;
    Alcotest.test_case "original half invariant (symbolic)" `Quick
      test_half_original_invariant;
  ]
