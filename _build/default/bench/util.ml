(* Table rendering and measurement helpers shared by the experiments. *)

let section id title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s - %s\n" id title;
  Printf.printf "==============================================================\n"

let table header rows =
  let all = header :: rows in
  let n_cols = List.length header in
  let widths = Array.make n_cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render cells =
    "  "
    ^ String.concat "  "
        (List.mapi
           (fun i c -> c ^ String.make (widths.(i) - String.length c) ' ')
           cells)
  in
  print_endline (render header);
  print_endline
    ("  "
    ^ String.concat "  "
        (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> print_endline (render r)) rows

let f4 x = Printf.sprintf "%.4f" x
let frac (p, q) = Printf.sprintf "%d/%d" p q

let measured_throughput ?flavour ?(max_cycles = 200_000) net =
  let engine = Skeleton.Engine.create ?flavour net in
  match Skeleton.Measure.analyze ~max_cycles engine with
  | Some r -> Some (Skeleton.Measure.system_throughput r, r)
  | None -> None

let throughput_cell ?flavour net =
  match measured_throughput ?flavour net with
  | Some (t, _) -> f4 t
  | None -> "n/a"

let check_tag ok = if ok then "ok" else "MISMATCH"
let close a b = abs_float (a -. b) < 1e-9
