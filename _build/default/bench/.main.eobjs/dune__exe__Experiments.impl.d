bench/experiments.ml: Array Lid List Printf Random Sim Skeleton String Sys Topology Util Verify
