bench/main.mli:
