bench/main.ml: Analyze Array Bechamel Benchmark Emit Experiments Hashtbl Instance Lid List Printf Random Sim Skeleton Staged Sys Test Time Toolkit Topology Util Verify
