bench/util.ml: Array List Printf Skeleton String
