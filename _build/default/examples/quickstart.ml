(* Quickstart: wrap two pearls in shells, join them with relay stations,
   simulate, and measure steady-state throughput.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A producer feeding a squarer and then an accumulator through 2-deep
     relay chains (a "long wire" of two clock cycles each). *)
  let b = Topology.Network.builder () in
  let src = Topology.Network.add_source b ~name:"producer" () in
  let square =
    Topology.Network.add_shell b ~name:"square"
      (Lid.Pearl.map1 ~name:"square" (fun v -> v * v))
  in
  let acc = Topology.Network.add_shell b ~name:"acc" (Lid.Pearl.accumulator ()) in
  let sink = Topology.Network.add_sink b ~name:"consumer" () in
  let long_wire = [ Lid.Relay_station.Full; Lid.Relay_station.Full ] in
  let _ = Topology.Network.connect b ~stations:long_wire ~src:(src, 0) ~dst:(square, 0) () in
  let _ = Topology.Network.connect b ~stations:long_wire ~src:(square, 0) ~dst:(acc, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(acc, 0) ~dst:(sink, 0) () in
  let net = Topology.Network.build b in

  Format.printf "%a@.@." Topology.Network.pp_summary net;

  (* Simulate the protocol skeleton. *)
  let engine = Skeleton.Engine.create net in
  Skeleton.Engine.run engine ~cycles:20;
  Format.printf "first values at the consumer: %s@."
    (String.concat ", "
       (List.map string_of_int (Skeleton.Engine.sink_values engine sink)));

  (* The latency-insensitive system delivers exactly the zero-latency
     reference stream, just later. *)
  (match Skeleton.Equiv.check net with
  | Skeleton.Equiv.Equivalent { checked } ->
      Format.printf "latency equivalence: OK (%d values checked)@." checked
  | Skeleton.Equiv.Divergent m ->
      Format.printf "DIVERGED at %s[%d]@." m.sink m.position);

  (* Steady state: throughput 1 despite the 4 cycles of wire latency. *)
  (match Skeleton.Measure.analyze engine with
  | Some report ->
      Format.printf "transient %d cycles, period %d, system throughput %.3f@."
        report.transient report.period
        (Skeleton.Measure.system_throughput report)
  | None -> Format.printf "no steady state found@.");
  Format.printf "analytic bound: %.3f@." (Topology.Analysis.throughput_bound net)
