(* Deadlock and its cure.

   Under the unrefined ("original") stop discipline, half relay stations
   inside loops can wedge: a stop wave circulates through the registered
   stop bits and gates every shell forever.  The paper's procedure decides
   this by simulating the protocol skeleton until the transient dies out,
   and cures it by substituting a few relay stations.

   Our refined ("optimized") flavour — stops on void data are discarded —
   removes the wedge entirely, which we confirm by exhaustive state-space
   search, not just simulation.

   Run with: dune exec examples/deadlock_cure.exe *)

let half = [ Lid.Relay_station.Half ]

let () =
  let net =
    Topology.Generators.ring_tapped ~n_shells:3 ~stations:half
      ~sink_pattern:(Topology.Pattern.periodic ~period:4 ~active:2 ())
      ()
  in
  Format.printf "%a@.@." Topology.Network.pp_summary net;

  (* 1. the static rule: half stations in a loop are a potential deadlock *)
  let verdict = Topology.Deadlock.static_verdict net in
  Format.printf "static rule: %a@.@." (Topology.Deadlock.pp_verdict net) verdict;

  (* 2. the paper's decision procedure: skeleton simulation to periodicity *)
  let decide fl label =
    let d = Skeleton.Cure.decide ~flavour:fl net in
    Format.printf "skeleton simulation (%s): %s@." label
      (if d.deadlocked then "DEADLOCK" else "live");
    d.deadlocked
  in
  let orig_dead = decide Lid.Protocol.Original "original stop discipline" in
  let opt_dead = decide Lid.Protocol.Optimized "optimized stop discipline" in
  assert (orig_dead && not opt_dead);

  (* 3. exhaustive confirmation for every environment *)
  (match Verify.Closed.check_deadlock_free ~flavour:Lid.Protocol.Original net with
  | Verify.Reach.Wedged { trace } ->
      Format.printf
        "@.exhaustive search (original): wedged after %d steps of an adversarial schedule@."
        (List.length trace - 1)
  | Verify.Reach.Live _ -> Format.printf "@.unexpectedly live@.");
  (match Verify.Closed.check_deadlock_free ~flavour:Lid.Protocol.Optimized net with
  | Verify.Reach.Live { states } ->
      Format.printf
        "exhaustive search (optimized): deadlock free for all environments (%d states)@."
        states
  | Verify.Reach.Wedged _ -> Format.printf "unexpectedly wedged@.");

  (* 4. the low-intrusive cure under the original discipline *)
  match Skeleton.Cure.cure ~flavour:Lid.Protocol.Original net with
  | Skeleton.Cure.Cured { network; substitutions } ->
      Format.printf
        "@.cure: substituting %d half station(s) with full station(s) restores liveness:@."
        (List.length substitutions);
      List.iter
        (fun (s : Skeleton.Cure.substitution) ->
          let e = Topology.Network.edge network s.edge in
          Format.printf "  station %d on %s -> %s@." s.station_index
            (Topology.Network.node network e.src.node).name
            (Topology.Network.node network e.dst.node).name)
        substitutions;
      let d = Skeleton.Cure.decide ~flavour:Lid.Protocol.Original network in
      Format.printf "re-check after cure: %s@."
        (if d.deadlocked then "still deadlocked!" else "live")
  | Skeleton.Cure.Already_live -> Format.printf "already live?@."
  | Skeleton.Cure.Not_cured -> Format.printf "could not cure@."
