examples/fig2_feedback.ml: Format Lid Skeleton Topology Verify
