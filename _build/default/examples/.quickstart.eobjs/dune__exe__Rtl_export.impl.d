examples/rtl_export.ml: Bits Bitvec Emit Format Hdl Lid List Option Printf Random Sim String
