examples/soc_pipeline.ml: Format Lid List Skeleton Topology
