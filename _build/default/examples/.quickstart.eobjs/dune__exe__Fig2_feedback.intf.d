examples/fig2_feedback.mli:
