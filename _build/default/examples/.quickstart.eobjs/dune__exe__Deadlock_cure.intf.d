examples/deadlock_cure.mli:
