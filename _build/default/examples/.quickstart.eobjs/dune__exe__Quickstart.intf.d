examples/quickstart.mli:
