examples/fig1_reconvergent.ml: Format Lid List Skeleton String Topology
