examples/fig1_reconvergent.mli:
