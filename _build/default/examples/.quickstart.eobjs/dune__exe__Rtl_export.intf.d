examples/rtl_export.mli:
