examples/floorplan_flow.ml: Format Lid List Skeleton Topology
