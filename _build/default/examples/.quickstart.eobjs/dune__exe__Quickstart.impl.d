examples/quickstart.ml: Format Lid List Skeleton String Topology
