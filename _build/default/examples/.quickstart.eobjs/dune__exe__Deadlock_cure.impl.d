examples/deadlock_cure.ml: Format Lid List Skeleton Topology Verify
