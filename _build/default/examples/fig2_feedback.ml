(* The paper's Fig. 2: "FeedBack Topology Evolution".

   Two shells A and B in a directed loop with one relay station per
   channel.  At most S = 2 valid data circulate among S + R = 4 positions,
   so the maximum throughput is S/(S+R) = 1/2 — the relay stations'
   initialization voids can never be flushed out of a loop.

   Run with: dune exec examples/fig2_feedback.exe *)

let () =
  let print_case ~stations_ab ~stations_ba =
    let net = Topology.Generators.fig2 ~stations_ab ~stations_ba () in
    let s = 2 and r = stations_ab + stations_ba in
    Format.printf "== loop with S=%d shells, R=%d full relay stations ==@." s r;
    let engine = Skeleton.Engine.create net in
    let trace = Skeleton.Trace.record ~cycles:10 engine in
    print_endline (Skeleton.Trace.render trace);
    Skeleton.Engine.reset engine;
    (match Skeleton.Measure.analyze engine with
    | Some report ->
        Format.printf
          "measured throughput %.4f; paper formula S/(S+R) = %.4f; elastic bound %.4f@.@."
          (Skeleton.Measure.system_throughput report)
          (Topology.Analysis.loop_throughput ~s ~r)
          (Topology.Analysis.throughput_bound net)
    | None -> assert false)
  in
  print_case ~stations_ab:1 ~stations_ba:1;
  print_case ~stations_ab:2 ~stations_ba:1;
  print_case ~stations_ab:2 ~stations_ba:3;

  (* The deadlock-freedom claim for full-station loops, verified
     exhaustively rather than by simulation. *)
  (match Verify.Closed.check_deadlock_free (Topology.Generators.fig2 ()) with
  | Verify.Reach.Live { states } ->
      Format.printf
        "exhaustive check: the loop is deadlock free (%d reachable protocol states)@."
        states
  | Verify.Reach.Wedged _ -> assert false);

  (* Half relay stations add no forward latency, so they do not degrade a
     loop's throughput the way full stations do. *)
  let net = Topology.Generators.ring ~n_shells:3 ~stations:[ Lid.Relay_station.Half ] () in
  let engine = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze engine with
  | Some report ->
      Format.printf
        "ring of 3 shells with half stations: throughput %.4f (half stations are latency-free)@."
        (Skeleton.Measure.system_throughput report)
  | None -> assert false
