(* A System-on-Chip-style workload: the situation the paper's introduction
   motivates.  A front-end feeds two execution clusters over long
   interconnects of different physical lengths (hence different relay
   station counts), and a commit unit joins them.  Without equalization the
   reconvergence throttles everyone; the protocol adapts automatically, and
   equalization recovers full throughput.

   Run with: dune exec examples/soc_pipeline.exe *)

module Net = Topology.Network

let fulls n = List.init n (fun _ -> Lid.Relay_station.Full)

let build () =
  let b = Net.builder () in
  let fetch = Net.add_source b ~name:"fetch" () in
  let decode = Net.add_shell b ~name:"decode" (Lid.Pearl.fork2 ()) in
  (* short interconnect to the integer cluster: 1 cycle of wire *)
  let int_cluster =
    Net.add_shell b ~name:"int_ex" (Lid.Pearl.map1 ~name:"int" (fun v -> v + 1))
  in
  (* long interconnect to the floating-point cluster: 3 cycles of wire,
     plus an internal 2-stage pipeline *)
  let fp_cluster =
    Net.add_shell b ~name:"fp_ex" (Lid.Pearl.delay_chain ~name:"fp" 2)
  in
  let commit = Net.add_shell b ~name:"commit" (Lid.Pearl.adder ()) in
  let retire = Net.add_sink b ~name:"retire" () in
  let _ = Net.connect b ~stations:(fulls 1) ~src:(fetch, 0) ~dst:(decode, 0) () in
  let _ = Net.connect b ~stations:(fulls 1) ~src:(decode, 0) ~dst:(int_cluster, 0) () in
  let _ = Net.connect b ~stations:(fulls 3) ~src:(decode, 1) ~dst:(fp_cluster, 0) () in
  let _ = Net.connect b ~stations:(fulls 1) ~src:(int_cluster, 0) ~dst:(commit, 0) () in
  let _ = Net.connect b ~stations:(fulls 1) ~src:(fp_cluster, 0) ~dst:(commit, 1) () in
  let _ = Net.connect b ~stations:[] ~src:(commit, 0) ~dst:(retire, 0) () in
  Net.build b

let report net =
  let engine = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze engine with
  | Some r ->
      Format.printf
        "  classification: %a@.  analytic bound %.4f, measured %.4f, transient %d, period %d@."
        Topology.Classify.pp
        (Topology.Classify.classify net)
        (Topology.Analysis.throughput_bound net)
        (Skeleton.Measure.system_throughput r)
        r.transient r.period
  | None -> Format.printf "  no steady state@."

let () =
  let net = build () in
  Format.printf "%a@." Net.pp_summary net;
  Format.printf "@.as designed (unbalanced interconnect):@.";
  report net;

  (* the critical cycle pins down the bottleneck *)
  let elastic = Topology.Elastic.of_network net in
  let tok, lat = Topology.Elastic.min_cycle_ratio elastic in
  Format.printf "  critical cycle: %d tokens / %d latency@." tok lat;

  Format.printf "@.after path equalization:@.";
  let net', additions = Topology.Equalize.equalize net in
  List.iter
    (fun (a : Topology.Equalize.addition) ->
      let e = Net.edge net' a.edge in
      Format.printf "  +%d spare station(s) on %s -> %s@." a.spare
        (Net.node net' e.src.node).name
        (Net.node net' e.dst.node).name)
    additions;
  report net';

  (* the LID still computes exactly what the zero-latency design computes *)
  match Skeleton.Equiv.check net' with
  | Skeleton.Equiv.Equivalent { checked } ->
      Format.printf "@.latency equivalence after surgery: OK (%d values)@." checked
  | Skeleton.Equiv.Divergent m ->
      Format.printf "@.DIVERGED at %s[%d]@." m.sink m.position
