(* RTL export: generate the paper's building blocks as synthesizable
   netlists, emit VHDL and Verilog, and cross-check the RTL against the
   abstract protocol FSM cycle by cycle.

   Run with: dune exec examples/rtl_export.exe
   (writes half_relay_station.vhd / .v etc. into the working directory) *)

open Bitvec

let save name text =
  let oc = open_out name in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" name (String.length text)

let lockstep kind cycles =
  let circ = Lid.Rtl_gen.relay_station ~data_width:8 kind in
  let sim = Sim.Cycle_sim.create circ in
  let rng = Random.State.make [| 2024 |] in
  let st = ref (Lid.Relay_station.initial kind) in
  let pres = ref Lid.Token.void in
  let seq = ref 0 in
  let ok = ref true in
  for _ = 1 to cycles do
    let stop_up = Lid.Relay_station.stop_upstream !st in
    (match !pres with
    | Lid.Token.Valid _ when stop_up -> () (* environment holds under stop *)
    | _ ->
        if Random.State.bool rng then begin
          pres := Lid.Token.valid (!seq land 0xff);
          incr seq
        end
        else pres := Lid.Token.void);
    let stop_in = Random.State.bool rng in
    let out_abs = Lid.Relay_station.present !st ~input:!pres in
    Sim.Cycle_sim.poke sim "in_valid" (Bits.of_bool (Lid.Token.is_valid !pres));
    Sim.Cycle_sim.poke sim "in_data"
      (Bits.of_int ~width:8 (Option.value ~default:0 (Lid.Token.value_opt !pres)));
    Sim.Cycle_sim.poke sim "stop_in" (Bits.of_bool stop_in);
    let rtl_valid = Bits.lsb (Sim.Cycle_sim.peek_output sim "out_valid") in
    let rtl_data = Bits.to_int (Sim.Cycle_sim.peek_output sim "out_data") in
    let rtl_stop = Bits.lsb (Sim.Cycle_sim.peek_output sim "stop_out") in
    if
      rtl_valid <> Lid.Token.is_valid out_abs
      || rtl_stop <> stop_up
      || (rtl_valid && rtl_data <> Lid.Token.value out_abs)
    then ok := false;
    st := Lid.Relay_station.step !st ~input:!pres ~stop_in;
    Sim.Cycle_sim.step sim
  done;
  !ok

let () =
  let blocks =
    [
      ( "full_relay_station",
        Lid.Rtl_gen.relay_station ~data_width:32 Lid.Relay_station.Full );
      ( "half_relay_station",
        Lid.Rtl_gen.relay_station ~data_width:32 Lid.Relay_station.Half );
      ("identity_shell", Lid.Rtl_gen.identity_shell ~data_width:32 ());
      ("adder_shell", Lid.Rtl_gen.adder_shell ~data_width:32 ());
      ("accumulator_shell", Lid.Rtl_gen.accumulator_shell ~data_width:32 ());
    ]
  in
  List.iter
    (fun (name, circ) ->
      Format.printf "%-20s %a@." name Hdl.Circuit.pp_stats (Hdl.Circuit.stats circ);
      save (name ^ ".vhd") (Emit.Vhdl.emit circ);
      save (name ^ ".v") (Emit.Verilog.emit circ))
    blocks;
  print_newline ();
  List.iter
    (fun kind ->
      Printf.printf "RTL vs abstract FSM lockstep (%s, 5000 random cycles): %s\n"
        (Lid.Relay_station.kind_to_string kind)
        (if lockstep kind 5000 then "OK" else "MISMATCH"))
    [ Lid.Relay_station.Full; Lid.Relay_station.Half ]
