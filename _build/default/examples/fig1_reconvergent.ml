(* The paper's Fig. 1: "FeedForward Topology Evolution".

   A fork shell A reaches join shell C along two reconvergent branches —
   directly (1 relay station) and via shell B (2 relay stations).  The
   imbalance i = 1 forces the longer branch to inject one void per period;
   after the transient the output utters an invalid datum every 5 cycles,
   so the throughput is T = (m - i)/m = 4/5.

   Run with: dune exec examples/fig1_reconvergent.exe *)

let () =
  let net = Topology.Generators.fig1 () in
  Format.printf "%a@." Topology.Network.pp_summary net;
  let info = Topology.Classify.classify net in
  Format.printf "topology: %a@.@." Topology.Classify.pp info;

  Format.printf
    "evolution (tokens on each output; * fired, ! stopped, n void):@.@.";
  let engine = Skeleton.Engine.create net in
  let trace = Skeleton.Trace.record ~cycles:16 engine in
  print_endline (Skeleton.Trace.render trace);

  let out_row = Skeleton.Trace.output_row trace ~sink:"out" in
  Format.printf "@.Out = %s@."
    (String.concat " "
       (List.map Lid.Token.to_string out_row));

  (* measured vs the paper's closed form *)
  Skeleton.Engine.reset engine;
  (match Skeleton.Measure.analyze engine with
  | Some report ->
      let m, i = Topology.Analysis.ff_params ~r_short:1 ~r_long:2 ~shells_long:1 in
      Format.printf
        "@.measured: period %d, throughput %.4f; paper formula (m=%d, i=%d): %.4f@."
        report.period
        (Skeleton.Measure.system_throughput report)
        m i
        (Topology.Analysis.ff_throughput ~m ~i)
  | None -> assert false);

  (* path equalization (plus capacity slack) restores T = 1 *)
  let net', additions = Topology.Equalize.optimize net in
  Format.printf "@.path equalization adds %d spare station(s): "
    (List.fold_left (fun acc (a : Topology.Equalize.addition) -> acc + a.spare) 0 additions);
  List.iter
    (fun (a : Topology.Equalize.addition) ->
      let e = Topology.Network.edge net' a.edge in
      Format.printf "%s->%s +%d "
        (Topology.Network.node net' e.src.node).name
        (Topology.Network.node net' e.dst.node).name a.spare)
    additions;
  let engine' = Skeleton.Engine.create net' in
  match Skeleton.Measure.analyze engine' with
  | Some report ->
      Format.printf "@.equalized throughput: %.4f@."
        (Skeleton.Measure.system_throughput report)
  | None -> assert false
