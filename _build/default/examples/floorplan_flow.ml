(* The motivating flow of the paper: an SoC whose modules are placed on a
   die, where "long interconnects require more than one clock cycle".

   We place a small media-style pipeline on a 10x10 die and synthesize the
   latency-insensitive design at several clock targets: a faster clock
   means shorter per-cycle signal reach, hence more relay stations on the
   long wires.  The protocol keeps the system functionally identical at
   every clock (latency equivalence), and the analysis reports how much
   throughput each reconvergence costs until equalization repairs it.

   Run with: dune exec examples/floorplan_flow.exe *)

module F = Topology.Floorplan

let build () =
  let f = F.create () in
  (* a DSP-ish pipeline with a long detour through a far-away coprocessor *)
  let sensor = F.add_source f ~name:"sensor" ~x:0.0 ~y:0.0 () in
  let split = F.add_shell f ~name:"split" ~x:1.0 ~y:0.0 (Lid.Pearl.fork2 ()) in
  let filter = F.add_shell f ~name:"filter" ~x:2.0 ~y:0.5 (Lid.Pearl.map1 ~name:"inc" (fun v -> v + 1)) in
  (* the coprocessor sits across the die *)
  let coproc = F.add_shell f ~name:"coproc" ~x:9.0 ~y:8.0 (Lid.Pearl.map1 ~name:"square" (fun v -> v * v)) in
  let merge = F.add_shell f ~name:"merge" ~x:3.0 ~y:1.0 (Lid.Pearl.adder ()) in
  let dma = F.add_sink f ~name:"dma" ~x:4.0 ~y:1.0 () in
  F.connect f ~src:(sensor, 0) ~dst:(split, 0);
  F.connect f ~src:(split, 0) ~dst:(filter, 0);
  F.connect f ~src:(split, 1) ~dst:(coproc, 0);
  F.connect f ~src:(filter, 0) ~dst:(merge, 0);
  F.connect f ~src:(coproc, 0) ~dst:(merge, 1);
  F.connect f ~src:(merge, 0) ~dst:(dma, 0);
  f

let () =
  Format.printf
    "clock-target sweep: shorter reach = faster clock = more stations on\n\
     the long wires (distance is Manhattan on a 10x10 die)\n@.";
  List.iter
    (fun reach ->
      let f = build () in
      let net, report = F.synthesize ~reach f in
      Format.printf "-- reach %.1f --------------------------------------@."
        reach;
      Format.printf "%a" F.pp_report report;
      let bound = Topology.Elastic.throughput_bound net in
      let net_eq, adds = Topology.Equalize.optimize net in
      let bound_eq = Topology.Elastic.throughput_bound net_eq in
      let spares =
        List.fold_left
          (fun acc (a : Topology.Equalize.addition) -> acc + a.spare)
          0 adds
      in
      Format.printf
        "  throughput bound %.4f; after equalization (+%d spares): %.4f@."
        bound spares bound_eq;
      (match Skeleton.Equiv.check net with
      | Skeleton.Equiv.Equivalent _ -> ()
      | Skeleton.Equiv.Divergent m ->
          Format.printf "  !! diverged at %s[%d]@." m.sink m.position);
      Format.printf "@.")
    [ 16.0; 8.0; 4.0; 2.0 ];
  (* a picture of the tightest design *)
  let f = build () in
  let net, _ = F.synthesize ~reach:2.0 f in
  print_endline "graphviz of the reach-2.0 design (pipe into `dot -Tsvg`):";
  print_string (Topology.Dot.of_network net)
