(* The paper's evaluation, regenerated.  One function per table/figure;
   see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
   recorded paper-vs-measured outcomes. *)

module G = Topology.Generators
module Net = Topology.Network
module RS = Lid.Relay_station
open Util

(* ------------------------------------------------------------------ *)

let e1_fig1 () =
  section "E1 (Fig. 1)" "reconvergent feed-forward evolution";
  Printf.printf
    "paper: after the transient the output utters one invalid datum every 5\n\
     cycles; throughput T = (m-i)/m = 4/5 with i = 1, m = 5.\n\n";
  let net = G.fig1 () in
  let engine = Skeleton.Engine.create net in
  let trace = Skeleton.Trace.record ~cycles:16 engine in
  print_endline (Skeleton.Trace.render trace);
  let out_row = Skeleton.Trace.output_row trace ~sink:"out" in
  Printf.printf "\nOut = %s\n"
    (String.concat " " (List.map Lid.Token.to_string out_row));
  Skeleton.Engine.reset engine;
  (match Skeleton.Measure.analyze engine with
  | Some r ->
      let t = Skeleton.Measure.system_throughput r in
      Printf.printf
        "\nmeasured: transient %d, period %d, throughput %s  [formula 4/5 = \
         0.8000: %s]\n"
        r.transient r.period (f4 t)
        (check_tag (close t 0.8))
  | None -> print_endline "no steady state found");
  let voids =
    List.length (List.filter (fun t -> not (Lid.Token.is_valid t)) out_row)
  in
  Printf.printf "voids in the 16-cycle window: %d (transient + one per period)\n"
    voids

(* ------------------------------------------------------------------ *)

let e2_fig2 () =
  section "E2 (Fig. 2)" "feedback topology evolution";
  Printf.printf
    "paper: a loop of S shells and R relay stations sustains at most\n\
     S valid data over S+R positions: T = S/(S+R) = 2/4 = 1/2 for Fig. 2.\n\n";
  let net = G.fig2 () in
  let engine = Skeleton.Engine.create net in
  let trace = Skeleton.Trace.record ~cycles:10 engine in
  print_endline (Skeleton.Trace.render trace);
  Skeleton.Engine.reset engine;
  match Skeleton.Measure.analyze engine with
  | Some r ->
      let t = Skeleton.Measure.system_throughput r in
      Printf.printf "\nmeasured throughput %s  [S/(S+R) = 0.5000: %s]\n" (f4 t)
        (check_tag (close t 0.5))
  | None -> print_endline "no steady state found"

(* ------------------------------------------------------------------ *)

let e3_ff_throughput () =
  section "E3" "reconvergent feed-forward throughput: T = (m-i)/m";
  Printf.printf
    "sweep of station counts on the two branches (short r_s; long r_h + r_t\n\
     around shell B); every row compares the closed form, the elastic\n\
     marked-graph bound, and the measured skeleton throughput.\n\n";
  let rows =
    List.filter_map
      (fun (r_s, r_h, r_t) ->
        let r_long = r_h + r_t in
        if r_long < r_s then None
        else begin
          let net = G.reconvergent ~r_short:r_s ~r_long_head:r_h ~r_long_tail:r_t () in
          let m, i = Topology.Analysis.ff_params ~r_short:r_s ~r_long ~shells_long:1 in
          let formula = Topology.Analysis.ff_throughput ~m ~i in
          let bound = Topology.Elastic.throughput_bound net in
          let measured =
            match measured_throughput net with Some (t, _) -> t | None -> nan
          in
          Some
            [
              Printf.sprintf "%d" r_s;
              Printf.sprintf "%d+%d" r_h r_t;
              Printf.sprintf "%d" m;
              Printf.sprintf "%d" i;
              f4 formula;
              f4 bound;
              f4 measured;
              check_tag (close formula bound && close bound measured);
            ]
        end)
      [
        (1, 1, 1); (1, 2, 1); (1, 1, 2); (1, 2, 2); (2, 2, 1); (2, 2, 2);
        (3, 2, 2); (1, 3, 2); (2, 3, 3); (4, 3, 2);
      ]
  in
  table [ "r_short"; "r_long"; "m"; "i"; "(m-i)/m"; "elastic"; "measured"; "" ] rows

(* ------------------------------------------------------------------ *)

let e4_loop_throughput () =
  section "E4" "feedback loop throughput: T = S/(S+R)";
  let ring_net s r =
    (* distribute r full stations over the loop's s channels *)
    let base = r / s and extra = r mod s in
    let b = Net.builder () in
    let shells =
      Array.init s (fun i ->
          Net.add_shell b ~name:(Printf.sprintf "s%d" i) (Lid.Pearl.identity ()))
    in
    Array.iteri
      (fun i sh ->
        let k = base + if i < extra then 1 else 0 in
        (* channels without a full station still need their minimum memory
           element; a half station adds no forward latency, so S/(S+R)
           counts full stations only *)
        let st = if k = 0 then [ RS.Half ] else List.init k (fun _ -> RS.Full) in
        ignore
          (Net.connect b ~stations:st ~src:(sh, 0) ~dst:(shells.((i + 1) mod s), 0) ()))
      shells;
    Net.build b
  in
  let rows =
    List.map
      (fun (s, r) ->
        let net = ring_net s r in
        let formula = Topology.Analysis.loop_throughput ~s ~r in
        let bound = Topology.Elastic.throughput_bound net in
        let measured =
          match measured_throughput net with Some (t, _) -> t | None -> nan
        in
        [
          string_of_int s;
          string_of_int r;
          f4 formula;
          f4 bound;
          f4 measured;
          check_tag (close formula bound && close bound measured);
        ])
      [ (2, 1); (2, 2); (2, 4); (3, 1); (3, 3); (4, 2); (5, 5); (6, 3); (8, 8) ]
  in
  table [ "S"; "R"; "S/(S+R)"; "elastic"; "measured"; "" ] rows;
  Printf.printf
    "\nhalf stations are latency-free and cost a loop nothing:\n";
  let rows =
    List.map
      (fun s ->
        let net = G.ring ~n_shells:s ~stations:[ RS.Half ] () in
        [ string_of_int s; throughput_cell net ])
      [ 2; 3; 5 ]
  in
  table [ "S (half stations)"; "measured" ] rows

(* ------------------------------------------------------------------ *)

let e5_composition () =
  section "E5" "general topology: the slowest sub-topology dictates";
  Printf.printf
    "paper: a feed-forward combination of self-interacting loops slows down\n\
     to the slowest subtopology, with no equalization needed.\n\n";
  (* a slow loop (T=2/5) feeding a fast pipeline *)
  let b = Net.builder () in
  let src = Net.add_source b ~name:"src" () in
  let tap = Net.add_shell b ~name:"tap" (G.tap_pearl ()) in
  let loop1 = Net.add_shell b ~name:"l1" (Lid.Pearl.identity ()) in
  let fast = Net.add_shell b ~name:"fast" (Lid.Pearl.identity ()) in
  let sink = Net.add_sink b ~name:"out" () in
  let fulls n = List.init n (fun _ -> RS.Full) in
  let _ = Net.connect b ~src:(src, 0) ~dst:(tap, 1) () in
  let _ = Net.connect b ~stations:(fulls 2) ~src:(tap, 0) ~dst:(loop1, 0) () in
  let _ = Net.connect b ~stations:(fulls 1) ~src:(loop1, 0) ~dst:(tap, 0) () in
  let _ = Net.connect b ~stations:(fulls 1) ~src:(tap, 1) ~dst:(fast, 0) () in
  let _ = Net.connect b ~stations:[] ~src:(fast, 0) ~dst:(sink, 0) () in
  let net = Net.build b in
  let loop_bound = Topology.Analysis.loop_throughput ~s:2 ~r:3 in
  (match measured_throughput net with
  | Some (t, r) ->
      Printf.printf
        "loop bound S/(S+R) = %s; whole system measured %s  [%s]\n"
        (f4 loop_bound) (f4 t)
        (check_tag (close t loop_bound));
      List.iter
        (fun (id, rate) ->
          Printf.printf "  %-6s rate %s\n" (Net.node net id).name (f4 rate))
        r.node_throughput
  | None -> print_endline "no steady state");
  Printf.printf
    "\nrandom feed-forward combinations of loops (elastic bound vs measured):\n";
  let rng = Random.State.make [| 2004 |] in
  let rows =
    List.init 8 (fun i ->
        let net =
          G.random_loopy ~rng ~n_shells:(4 + (i mod 4)) ~extra_back_edges:2 ()
        in
        let bound = Topology.Elastic.throughput_bound net in
        let measured =
          match measured_throughput net with Some (t, _) -> t | None -> nan
        in
        [
          Printf.sprintf "random #%d" (i + 1);
          Printf.sprintf "%d" (List.length (Net.shells net));
          f4 bound;
          f4 measured;
          check_tag (close bound measured);
        ])
  in
  table [ "instance"; "shells"; "elastic"; "measured"; "" ] rows

(* ------------------------------------------------------------------ *)

let e6_equalization () =
  section "E6" "path equalization";
  Printf.printf
    "paper: inserting enough spare relay stations to equalize converging\n\
     paths recovers maximum throughput.  (Because these shells buffer only\n\
     a single datum, full recovery also needs capacity slack on the\n\
     shell-heavy branch - Equalize.optimize inserts both.)\n\n";
  let rows =
    List.map
      (fun (name, net) ->
        let before = Topology.Elastic.throughput_bound net in
        let net', additions = Topology.Equalize.optimize net in
        let spares =
          List.fold_left
            (fun acc (a : Topology.Equalize.addition) -> acc + a.spare)
            0 additions
        in
        let after =
          match measured_throughput net' with Some (t, _) -> t | None -> nan
        in
        [ name; f4 before; string_of_int spares; f4 after; check_tag (close after 1.0) ])
      [
        ("fig1 (1,1,1)", G.fig1 ());
        ("fig1 (1,2,1)", G.fig1 ~r_to_b:2 ());
        ("fig1 (1,2,2)", G.fig1 ~r_to_b:2 ~r_from_b:2 ());
        ("fig1 (3,1,1)", G.fig1 ~r_direct:3 ());
        ("recon (1,3,1)", G.reconvergent ~r_short:1 ~r_long_head:3 ~r_long_tail:1 ());
      ]
  in
  table [ "network"; "T before"; "spares added"; "T after"; "" ] rows

(* ------------------------------------------------------------------ *)

let e7_transient () =
  section "E7" "transient length is predictable";
  Printf.printf
    "paper: after a system-dependent number of cycles every part behaves\n\
     periodically; the transient relates to the numbers of relay stations\n\
     and shells and can be predicted upfront.\n\n";
  let cases =
    [
      ("chain 2", G.chain ~n_shells:2 ());
      ("chain 5", G.chain ~n_shells:5 ());
      ("chain 10", G.chain ~n_shells:10 ());
      ("tree d2", G.tree ~depth:2 ());
      ("tree d4", G.tree ~depth:4 ());
      ("fig1", G.fig1 ());
      ("fig1 (1,3,2)", G.fig1 ~r_to_b:3 ~r_from_b:2 ());
      ("fig2", G.fig2 ());
      ("ring 6", G.ring ~n_shells:6 ());
      ("tapped ring 4", G.ring_tapped ~n_shells:4 ());
      ( "stalled chain",
        G.chain ~n_shells:4
          ~sink_pattern:(Topology.Pattern.periodic ~period:3 ~active:1 ())
          () );
    ]
  in
  let all_ok = ref true in
  let rows =
    List.map
      (fun (name, net) ->
        let bound = Topology.Analysis.transient_bound net in
        let engine = Skeleton.Engine.create net in
        match Skeleton.Measure.transient_and_period engine with
        | Some (transient, period) ->
            let ok = transient <= bound in
            if not ok then all_ok := false;
            [
              name;
              string_of_int transient;
              string_of_int period;
              string_of_int bound;
              check_tag ok;
            ]
        | None ->
            all_ok := false;
            [ name; "?"; "?"; string_of_int bound; "no period" ])
      cases
  in
  table [ "system"; "transient"; "period"; "predicted bound"; "" ] rows;
  Printf.printf "\nall transients within the predicted bound: %s\n"
    (check_tag !all_ok)

(* ------------------------------------------------------------------ *)

let e8_flavours () =
  section "E8" "protocol refinement: discarding stops on void data";
  Printf.printf
    "paper: \"stops on invalid signals are discarded. The overall\n\
     computation can get a significant speedup.\"  Three measurable faces:\n\n";
  Printf.printf "(a) survival: random systems with half stations and stalling\n";
  Printf.printf "    environments, simulated to steady state per flavour:\n\n";
  let rng = Random.State.make [| 7 |] in
  let n_cases = 120 in
  let orig_dead = ref 0 and opt_dead = ref 0 and faster = ref 0 and equal = ref 0 in
  for i = 1 to n_cases do
    let pat () =
      let period = 2 + Random.State.int rng 5 in
      let active = 1 + Random.State.int rng (period - 1) in
      Topology.Pattern.periodic ~period ~active ()
    in
    let stations = [ (if i mod 2 = 0 then RS.Half else RS.Full) ] in
    let net =
      if i mod 3 = 0 then
        G.ring_tapped ~n_shells:(2 + (i mod 3)) ~stations ~sink_pattern:(pat ()) ()
      else
        G.chain ~n_shells:(1 + (i mod 4)) ~stations ~source_pattern:(pat ())
          ~sink_pattern:(pat ()) ()
    in
    let t fl =
      match measured_throughput ~flavour:fl net with
      | Some (t, _) -> t
      | None -> 0.
    in
    let t_opt = t Lid.Protocol.Optimized and t_orig = t Lid.Protocol.Original in
    if t_orig = 0. then incr orig_dead;
    if t_opt = 0. then incr opt_dead;
    if t_opt -. t_orig > 1e-9 then incr faster
    else if close t_opt t_orig then incr equal
  done;
  table
    [ "flavour"; "deadlocked"; "of" ]
    [
      [ "original"; string_of_int !orig_dead; string_of_int n_cases ];
      [ "optimized"; string_of_int !opt_dead; string_of_int n_cases ];
    ];
  Printf.printf
    "\n(b) steady-state: optimized strictly faster in %d/%d cases (equal in\n\
     %d; the strictly-faster cases are dominated by original-flavour\n\
     deadlocks, i.e. throughput 0 vs > 0).\n"
    !faster n_cases !equal;
  Printf.printf "\n(c) transients on full-station chains with stalling sinks:\n";
  let shorter = ref 0 and same = ref 0 and longer = ref 0 in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 150 do
    let period = 2 + Random.State.int rng 5 in
    let active = 1 + Random.State.int rng (period - 1) in
    let net =
      G.chain ~n_shells:(1 + Random.State.int rng 4)
        ~sink_pattern:(Topology.Pattern.periodic ~period ~active ())
        ()
    in
    let tr fl =
      let e = Skeleton.Engine.create ~flavour:fl net in
      match Skeleton.Measure.transient_and_period e with
      | Some (t, _) -> t
      | None -> max_int
    in
    let o = tr Lid.Protocol.Original and p = tr Lid.Protocol.Optimized in
    if p < o then incr shorter else if p = o then incr same else incr longer
  done;
  table
    [ "optimized transient"; "count" ]
    [
      [ "shorter"; string_of_int !shorter ];
      [ "equal"; string_of_int !same ];
      [ "longer"; string_of_int !longer ];
    ]

(* ------------------------------------------------------------------ *)

let e9_deadlock () =
  section "E9" "liveness: static rules, skeleton decision, cures";
  Printf.printf
    "paper: feed-forward LIDs and full-station LIDs are deadlock free; half\n\
     stations in loops are a potential deadlock, decided exactly by\n\
     simulating the skeleton until the transient dies out, and cured by\n\
     substituting a few relay stations.\n\n";
  let half = [ RS.Half ] in
  let stall = Topology.Pattern.periodic ~period:4 ~active:2 () in
  let cases =
    [
      ("chain (ff)", G.chain ~n_shells:3 (), Lid.Protocol.Optimized);
      ("fig1 (ff, reconv)", G.fig1 (), Lid.Protocol.Optimized);
      ("fig2 (full loop)", G.fig2 (), Lid.Protocol.Optimized);
      ("tapped ring, full", G.ring_tapped ~n_shells:3 ~sink_pattern:stall (), Lid.Protocol.Original);
      ( "tapped ring, half (orig)",
        G.ring_tapped ~n_shells:3 ~stations:half ~sink_pattern:stall (),
        Lid.Protocol.Original );
      ( "tapped ring, half (opt)",
        G.ring_tapped ~n_shells:3 ~stations:half ~sink_pattern:stall (),
        Lid.Protocol.Optimized );
    ]
  in
  let rows =
    List.map
      (fun (name, net, fl) ->
        let verdict = Topology.Deadlock.static_verdict net in
        let static =
          match verdict with
          | Topology.Deadlock.Safe_feedforward -> "safe (ff)"
          | Topology.Deadlock.Safe_full_only -> "safe (full)"
          | Topology.Deadlock.Potential _ -> "potential"
        in
        let d = Skeleton.Cure.decide ~flavour:fl net in
        let sim = if d.deadlocked then "DEADLOCK" else "live" in
        let exhaustive =
          if Net.n_nodes net <= 8 then
            match Verify.Closed.check_deadlock_free ~flavour:fl net with
            | Verify.Reach.Live { states } -> Printf.sprintf "live (%d states)" states
            | Verify.Reach.Wedged { trace } ->
                Printf.sprintf "wedged @%d" (List.length trace - 1)
          else "-"
        in
        [ name; Lid.Protocol.to_string fl; static; sim; exhaustive ])
      cases
  in
  table [ "system"; "flavour"; "static rule"; "skeleton sim"; "exhaustive env search" ] rows;
  Printf.printf "\ncure of the deadlocking instance (original flavour):\n";
  let net = G.ring_tapped ~n_shells:3 ~stations:half ~sink_pattern:stall () in
  (match Skeleton.Cure.cure ~flavour:Lid.Protocol.Original net with
  | Skeleton.Cure.Cured { network; substitutions } ->
      Printf.printf "  substituted %d half station(s) -> full; re-simulation: %s\n"
        (List.length substitutions)
        (if (Skeleton.Cure.decide ~flavour:Lid.Protocol.Original network).deadlocked
         then "still dead"
         else "live");
      Printf.printf "  value streams preserved after cure: %s\n"
        (match Skeleton.Equiv.check ~flavour:Lid.Protocol.Original network with
        | Skeleton.Equiv.Equivalent _ -> "ok"
        | Skeleton.Equiv.Divergent _ -> "BROKEN")
  | Skeleton.Cure.Already_live -> print_endline "  already live"
  | Skeleton.Cure.Not_cured -> print_endline "  NOT CURED");
  Printf.printf
    "\nnote: under the refined protocol the same systems never wedged in any\n\
     of our exhaustive searches - the refinement strengthens the paper's\n\
     conservative rule (see EXPERIMENTS.md).\n"

(* ------------------------------------------------------------------ *)

let e10_cost_nets () =
  [
    ("fig1", G.fig1 ());
    ("soc-ish", G.reconvergent ~r_short:2 ~r_long_head:3 ~r_long_tail:2 ());
    ("chain 10", G.chain ~n_shells:10 ~stations:[ RS.Full; RS.Full ] ());
  ]

let e10_cost_quick () =
  section "E10" "skeleton simulation cost vs full RTL simulation";
  Printf.printf
    "paper: \"we are allowed to simulate just the skeleton of the system\n\
     consisting of stop and valid signals, thus the simulation cost is\n\
     absolutely negligible.\"  Wall-clock per simulated cycle (quick\n\
     measurement; run `main.exe cost` for the rigorous bechamel version):\n\n";
  let time_per_cycle f cycles =
    let t0 = Sys.time () in
    f cycles;
    (Sys.time () -. t0) /. float_of_int cycles *. 1e6
  in
  let rows =
    List.map
      (fun (name, net) ->
        let skeleton us =
          let e = Skeleton.Engine.create net in
          Skeleton.Engine.run e ~cycles:us
        in
        let rtl_cycle us =
          let sim = Sim.Cycle_sim.create (Topology.Rtl_net.of_network net) in
          for _ = 1 to us do
            Sim.Cycle_sim.step sim
          done
        in
        let rtl_event us =
          let sim = Sim.Event_sim.create (Topology.Rtl_net.of_network net) in
          for _ = 1 to us do
            Sim.Event_sim.settle sim;
            Sim.Event_sim.step sim
          done
        in
        let sk = time_per_cycle skeleton 20_000 in
        let rc = time_per_cycle rtl_cycle 4_000 in
        let re = time_per_cycle rtl_event 4_000 in
        [
          name;
          Printf.sprintf "%.2f us" sk;
          Printf.sprintf "%.2f us" rc;
          Printf.sprintf "%.2f us" re;
          Printf.sprintf "%.1fx / %.1fx" (rc /. sk) (re /. sk);
        ])
      (e10_cost_nets ())
  in
  table
    [ "system"; "skeleton"; "RTL (levelized)"; "RTL (event-driven)"; "RTL/skeleton" ]
    rows

(* ------------------------------------------------------------------ *)

let e11_verification () =
  section "E11" "formal verification of the blocks (SMV substitute)";
  Printf.printf
    "paper: SMV checks that shells elaborate coherent data, produce outputs\n\
     in order and skip none; relay stations produce outputs in order, skip\n\
     none and keep them under stop - all under environment assumptions.\n\n";
  let show_rs kind fl =
    match Verify.Props.check_relay_station ~flavour:fl kind with
    | Verify.Reach.Holds { states; transitions } ->
        [
          Printf.sprintf "%s relay station" (RS.kind_to_string kind);
          Lid.Protocol.to_string fl;
          "order, no-skip, hold-on-stop";
          Printf.sprintf "HOLDS (%d states, %d transitions)" states transitions;
        ]
    | Verify.Reach.Fails { trace } ->
        [
          Printf.sprintf "%s relay station" (RS.kind_to_string kind);
          Lid.Protocol.to_string fl;
          "order, no-skip, hold-on-stop";
          Printf.sprintf "FAILS (%d-step trace)" (List.length trace);
        ]
  in
  let show_shell pearl fl label prop =
    match Verify.Props.check_shell ~flavour:fl pearl with
    | Verify.Reach.Holds { states; transitions } ->
        [
          label;
          Lid.Protocol.to_string fl;
          prop;
          Printf.sprintf "HOLDS (%d states, %d transitions)" states transitions;
        ]
    | Verify.Reach.Fails { trace } ->
        [ label; Lid.Protocol.to_string fl; prop;
          Printf.sprintf "FAILS (%d-step trace)" (List.length trace) ]
  in
  let rows =
    List.concat_map (fun fl -> [ show_rs RS.Full fl; show_rs RS.Half fl ]) Lid.Protocol.all
    @ List.concat_map
        (fun fl ->
          [
            show_shell Verify.Props.Identity fl "identity shell" "order, no-skip";
            show_shell Verify.Props.Adder fl "adder shell" "coherence, order, no-skip";
            show_shell Verify.Props.Accumulator fl "accumulator shell"
              "state coherence (clock gating), order, no-skip";
            show_shell Verify.Props.Fork fl "fork shell (2 outputs)"
              "per-port order, no-skip, independent buffers";
          ])
        Lid.Protocol.all
  in
  let rtl_rows =
    List.concat_map
      (fun fl ->
        List.map
          (fun kind ->
            match Verify.Props.check_relay_station_rtl ~flavour:fl kind with
            | Verify.Reach.Holds { states; transitions } ->
                [
                  Printf.sprintf "%s relay station (generated RTL)"
                    (RS.kind_to_string kind);
                  Lid.Protocol.to_string fl;
                  "order, no-skip, hold-on-stop";
                  Printf.sprintf "HOLDS (%d states, %d transitions)" states
                    transitions;
                ]
            | Verify.Reach.Fails { trace } ->
                [
                  Printf.sprintf "%s relay station (generated RTL)"
                    (RS.kind_to_string kind);
                  Lid.Protocol.to_string fl;
                  "order, no-skip, hold-on-stop";
                  Printf.sprintf "FAILS (%d)" (List.length trace);
                ])
          [ RS.Full; RS.Half ])
      Lid.Protocol.all
  in
  table [ "block"; "flavour"; "properties"; "result" ] (rows @ rtl_rows);
  Printf.printf
    "\nsymbolic (BDD) reachability over the generated netlists (2-bit\n\
     datapath), with structural invariants:\n\n";
  let sym_row kind fl invariants =
    let circ = Lid.Rtl_gen.relay_station ~flavour:fl ~data_width:2 kind in
    let sym = Verify.Symbolic.of_circuit circ in
    let count = Verify.Symbolic.reachable_count sym in
    let iters = Verify.Symbolic.iterations sym in
    let verdicts =
      List.map
        (fun (name, prop) ->
          match Verify.Symbolic.check_invariant sym (prop sym) with
          | Verify.Symbolic.Holds -> name ^ ": holds"
          | Verify.Symbolic.Violation _ -> name ^ ": VIOLATED")
        invariants
    in
    [
      Printf.sprintf "%s station" (RS.kind_to_string kind);
      Lid.Protocol.to_string fl;
      Printf.sprintf "%.0f states, %d image steps" count iters;
      (match verdicts with [] -> "-" | vs -> String.concat "; " vs);
    ]
  in
  let full_invariants =
    [
      ( "aux=>main",
        fun sym ->
          let m = Verify.Symbolic.man sym in
          Verify.Bdd.imp m
            (Verify.Symbolic.reg_vector sym "v_aux_r").(0)
            (Verify.Symbolic.reg_vector sym "v_main_r").(0) );
      ( "stop<->aux",
        fun sym ->
          let m = Verify.Symbolic.man sym in
          Verify.Bdd.iff m
            (Verify.Symbolic.output_vector sym "stop_out").(0)
            (Verify.Symbolic.reg_vector sym "v_aux_r").(0) );
    ]
  in
  let half_orig_invariants =
    [
      ( "hold=>sreg",
        fun sym ->
          let m = Verify.Symbolic.man sym in
          Verify.Bdd.imp m
            (Verify.Symbolic.reg_vector sym "v_hold_r").(0)
            (Verify.Symbolic.reg_vector sym "sreg_r").(0) );
    ]
  in
  table
    [ "block"; "flavour"; "reachable set"; "invariants" ]
    [
      sym_row RS.Full Lid.Protocol.Optimized full_invariants;
      sym_row RS.Half Lid.Protocol.Optimized [];
      sym_row RS.Half Lid.Protocol.Original half_orig_invariants;
    ];
  Printf.printf "\nseeded-bug mutants (the properties have teeth):\n\n";
  let mutant name step =
    List.map
      (fun kind ->
        match Verify.Props.check_relay_station ~step kind with
        | Verify.Reach.Fails { trace } ->
            [
              name;
              RS.kind_to_string kind;
              Printf.sprintf "caught (%d-step counterexample)" (List.length trace - 1);
            ]
        | Verify.Reach.Holds _ -> [ name; RS.kind_to_string kind; "MISSED" ])
      [ RS.Full; RS.Half ]
  in
  table
    [ "mutant"; "station"; "verdict" ]
    (mutant "drop datum on stop" Verify.Props.mutant_drop_on_stop
    @ mutant "no hold on stop" Verify.Props.mutant_no_hold
    @ mutant "duplicate delivery" Verify.Props.mutant_duplicate)

(* ------------------------------------------------------------------ *)

let e12_equivalence () =
  section "E12" "latency equivalence: LID = zero-latency reference";
  Printf.printf
    "paper: a safe implementation behaves \"exactly as an equally connected\n\
     system without shells and non-pipelined connections\".  Every sink's\n\
     valid-value stream must be a prefix of the reference stream.\n\n";
  let run name count make =
    let checked = ref 0 and failed = ref 0 in
    for i = 1 to count do
      let net = make i in
      match Skeleton.Equiv.check ~cycles:200 net with
      | Skeleton.Equiv.Equivalent { checked = k } -> checked := !checked + k
      | Skeleton.Equiv.Divergent _ -> incr failed
    done;
    [
      name;
      string_of_int count;
      string_of_int !checked;
      (if !failed = 0 then "all equivalent" else Printf.sprintf "%d FAILED" !failed);
    ]
  in
  let rng = Random.State.make [| 42 |] in
  let rows =
    [
      run "standard topologies" 5 (fun i ->
          List.nth
            [
              G.chain ~n_shells:4 ();
              G.fig1 ();
              G.tree ~depth:3 ();
              G.ring_tapped ~n_shells:3 ();
              G.chain ~n_shells:3 ~stations:[ RS.Half ] ();
            ]
            (i - 1));
      run "random DAGs" 40 (fun _ ->
          G.random_dag ~rng ~n_shells:(3 + Random.State.int rng 5)
            ~half_probability:0.3 ());
      run "random loopy" 30 (fun _ ->
          G.random_loopy ~rng ~n_shells:(3 + Random.State.int rng 4) ());
      run "stuttering envs" 20 (fun i ->
          G.chain ~n_shells:3
            ~source_pattern:(Topology.Pattern.periodic ~period:(2 + (i mod 3)) ~active:1 ())
            ~sink_pattern:(Topology.Pattern.periodic ~period:(2 + (i mod 4)) ~active:1 ())
            ());
    ]
  in
  table [ "family"; "instances"; "values compared"; "verdict" ] rows

(* ------------------------------------------------------------------ *)

let a1_attribution () =
  section "A1 (ablation)" "stall attribution: where do the cycles go?";
  Printf.printf
    "per shell: cycles spent firing, gated by back-pressure (stop waves),\n\
     or starved by void inputs, over one steady-state window - the\n\
     designer-facing view of the Fig. 1 imbalance and its repair.\n\n";
  let attribution name net =
    let engine = Skeleton.Engine.create net in
    match Skeleton.Measure.transient_and_period engine with
    | None -> ()
    | Some (_, period) ->
        let window = 20 * period in
        let base =
          List.map
            (fun (n : Net.node) ->
              ( n,
                Skeleton.Engine.fired_count engine n.id,
                Skeleton.Engine.gated_count engine n.id,
                Skeleton.Engine.starved_count engine n.id ))
            (Net.shells net)
        in
        Skeleton.Engine.run engine ~cycles:window;
        Printf.printf "%s (window %d cycles):\n" name window;
        table
          [ "shell"; "fired"; "gated"; "starved" ]
          (List.map
             (fun ((n : Net.node), f0, g0, s0) ->
               [
                 n.name;
                 string_of_int (Skeleton.Engine.fired_count engine n.id - f0);
                 string_of_int (Skeleton.Engine.gated_count engine n.id - g0);
                 string_of_int (Skeleton.Engine.starved_count engine n.id - s0);
               ])
             base);
        print_newline ()
  in
  attribution "fig1 (unbalanced: C starves on the long branch, A is gated)"
    (G.fig1 ());
  attribution "fig1 equalized (all cycles fire)"
    (fst (Topology.Equalize.optimize (G.fig1 ())));
  attribution "chain with a stalling sink (pure back-pressure)"
    (G.chain ~n_shells:3
       ~sink_pattern:(Topology.Pattern.periodic ~period:4 ~active:2 ())
       ())

(* ------------------------------------------------------------------ *)

let soc_net () =
  Topology.Spec.parse_exn
    "source fetch\n\
     shell  decode fork2\n\
     shell  int_ex inc\n\
     shell  fp_ex  delay2\n\
     shell  commit adder\n\
     sink   retire\n\
     fetch.0  -> decode.0 : full\n\
     decode.0 -> int_ex.0 : full\n\
     decode.1 -> fp_ex.0  : full full full\n\
     int_ex.0 -> commit.0 : full\n\
     fp_ex.0  -> commit.1 : full\n\
     commit.0 -> retire.0\n"

let e13_fault_injection () =
  section "E13" "fault-injection robustness: outcome distribution per flavour";
  Printf.printf
    "single transient faults on valid/stop wires and relay registers,\n\
     classified against the zero-latency reference and the runtime\n\
     monitors.  The optimized flavour discards stops on void data, so the\n\
     two flavours absorb (or propagate) the same fault differently.\n\n";
  let soc = soc_net () in
  let rng = Random.State.make [| 13 |] in
  let systems =
    [
      ("fig1", G.fig1 ());
      ("fig2", G.fig2 ());
      ("soc", soc);
      ("loopy8", G.random_loopy ~rng ~n_shells:8 ~extra_back_edges:2 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (name, net) ->
        List.map
          (fun flavour ->
            let config =
              {
                Fault.Campaign.default_config with
                cycles = 128;
                flavour;
                max_sites_per_kind = 6;
              }
            in
            let result = Fault.Campaign.run config net in
            let count o =
              List.length
                (List.filter
                   (fun (r : Fault.Classify.report) -> r.outcome = o)
                   result.reports)
            in
            name
            :: (match flavour with
               | Lid.Protocol.Optimized -> "optimized"
               | Lid.Protocol.Original -> "original")
            :: string_of_int (List.length result.reports)
            :: List.map
                 (fun o -> string_of_int (count o))
                 Fault.Classify.all_outcomes)
          [ Lid.Protocol.Optimized; Lid.Protocol.Original ])
      systems
  in
  table
    ([ "system"; "flavour"; "inj" ]
    @ List.map Fault.Classify.outcome_to_string Fault.Classify.all_outcomes)
    rows;
  Printf.printf
    "\nwith injection disabled the monitors stay silent (checked by the\n\
     test suite over every examples/specs topology, both flavours).\n"

(* ------------------------------------------------------------------ *)

let e14_packed_speedup () =
  section "E14"
    "packed-engine speedup: steady-state measurement, engine vs packed";
  Printf.printf
    "each case runs Measure.analyze on the reference engine and\n\
     Measure.analyze_packed on the packed engine (same nets, same\n\
     figures — the harness refuses to time disagreeing engines), plus a\n\
     serial-vs-parallel fault campaign on the domain driver.\n\n";
  let r = Campaign.Bench.run ~quick:true () in
  Format.printf "%a" Campaign.Bench.pp r

(* ------------------------------------------------------------------ *)

let e15_lane_campaign () =
  section "E15"
    "lane-parallel campaigns: W-1 fault injections per word operation";
  Printf.printf
    "one bit-sliced run carries a fault-free reference in lane 0 and an\n\
     injection per remaining lane; lanes whose state words never diverge\n\
     from the reference are classified from a recorded replay, the rest\n\
     fall back to exact per-fault simulation.  Every width is asserted\n\
     bit-identical to the serial campaign before it is timed.\n\n";
  let injections, serial_s, points = Campaign.Bench.lane_sweep ~quick:true () in
  Printf.printf "%d injections, serial (instrumented engine): %.3fs\n\n"
    injections serial_s;
  table
    [ "lanes"; "time (s)"; "speedup" ]
    (List.map
       (fun (p : Campaign.Bench.lane_point) ->
         [
           string_of_int p.lp_lanes;
           Printf.sprintf "%.3f" p.lp_s;
           Printf.sprintf "%.1fx" p.lp_speedup;
         ])
       points)

let e16_lint_vs_packed () =
  section "E16" "static lint prediction vs packed-engine measurement";
  Printf.printf
    "the lint pass predicts sustained throughput purely statically: the\n\
     minimum cycle ratio of the elastic marked graph, capped by the\n\
     environment duty.  Each row cross-multiplies that exact rational\n\
     against tokens fired over one measured period of the packed engine\n\
     (no float comparison anywhere); LID003 shows the diagnosed relay\n\
     imbalance behind any loss.\n\n";
  let rng = Random.State.make [| 13 |] in
  let cases =
    [
      ("fig1", G.fig1 ());
      ("fig1 r_direct=2", G.fig1 ~r_direct:2 ());
      ("fig1 r_direct=3", G.fig1 ~r_direct:3 ());
      ("fig2", G.fig2 ());
      ("fig2 R=4", G.fig2 ~stations_ab:2 ~stations_ba:2 ());
      ("soc", soc_net ());
      ("loopy8", G.random_loopy ~rng ~n_shells:8 ~extra_back_edges:2 ());
      ("chain-6", G.chain ~n_shells:6 ());
      ("tree-3", G.tree ~depth:3 ());
      ("ring-5", G.ring ~n_shells:5 ());
      ("reconv 2/3+2", G.reconvergent ~r_short:2 ~r_long_head:3 ~r_long_tail:2 ());
      ( "chain sink 2/4",
        G.chain ~n_shells:3
          ~sink_pattern:(Topology.Pattern.periodic ~period:4 ~active:2 ())
          () );
    ]
    @ List.init 3 (fun i ->
          ( Printf.sprintf "dag seed=%d" i,
            G.random_dag
              ~rng:(Random.State.make [| 100 + i |])
              ~n_shells:(4 + i) () ))
  in
  let rows =
    List.map
      (fun (name, net) ->
        let r = Lint.Checks.run ~gate:false net in
        let imbalance =
          match
            List.find_opt
              (fun (d : Lint.Diagnostic.t) -> d.code = Lint.Diagnostic.LID003)
              r.diagnostics
          with
          | Some { params = Lint.Diagnostic.P_reconvergence { m; i; _ }; _ } ->
              Printf.sprintf "i=%d m=%d" i m
          | Some { params = Lint.Diagnostic.P_loop { s; r; _ }; _ } ->
              Printf.sprintf "S=%d R=%d" s r
          | _ -> "-"
        in
        let predicted = Option.get r.predicted in
        let measured =
          Option.get
            (Skeleton.Measure.steady_ratio_packed (Skeleton.Packed.create net))
        in
        [
          name;
          imbalance;
          frac predicted;
          f4 (Lint.Checks.ratio_value predicted);
          frac measured;
          f4 (float_of_int (fst measured) /. float_of_int (snd measured));
          check_tag (Lint.Checks.ratio_eq predicted measured);
        ])
      cases
  in
  table
    [ "system"; "LID003"; "lint"; "" ; "packed"; ""; "exact" ]
    rows;
  Printf.printf
    "\nevery prediction matches the dynamic steady state exactly -- the\n\
     analyzer's fractions are the paper's closed forms, not estimates.\n"

let e17_dynamic_lid () =
  section "E17" "dynamic LID: throughput vs jitter bound vs replay depth";
  Printf.printf
    "variable-latency channels under the dynamic-LID wire model.  First,\n\
     every channel of each system is decorated with a jitter profile of\n\
     growing bound (entrance gates meter the launches): throughput is the\n\
     packed engine's exact steady ratio.  The jitter schedule is a\n\
     compiled periodic table, so the faster engine still finds an exact\n\
     period -- no sampling.\n\n";
  let rng = Random.State.make [| 17 |] in
  let systems =
    [
      ("fig1", G.fig1 ());
      ("fig2", G.fig2 ());
      ("soc", soc_net ());
      ("loopy8", G.random_loopy ~rng ~n_shells:8 ~extra_back_edges:2 ());
    ]
  in
  let bounds = [ 0; 1; 2; 4 ] in
  let rows =
    List.map
      (fun (name, net) ->
        name
        :: List.map
             (fun (_label, jittered) ->
               match
                 Skeleton.Measure.steady_ratio_packed
                   (Skeleton.Packed.create jittered)
               with
               | Some (n, d) ->
                   Printf.sprintf "%s = %s" (frac (n, d))
                     (f4 (float_of_int n /. float_of_int d))
               | None -> "-")
             (Campaign.Sweep.jitter_family ~seed:17 ~bounds net))
      systems
  in
  table ("system" :: List.map (Printf.sprintf "jitter<=%d") bounds) rows;
  Printf.printf
    "\nsecond, the replay-buffer depth of a retransmitting (go-back-N)\n\
     station spanning one such channel.  The worst-case round trip is\n\
     3 + max-delay cycles; a shallower buffer stalls the launch window\n\
     waiting on acks (the analyzer's LID008), and a flit-drop campaign\n\
     on the same channel shows the recovery machinery absorbing faults\n\
     (masked-by-retx) without ever corrupting the stream.\n\n";
  let mk ~bound ~depth =
    Topology.Spec.parse_exn
      (Printf.sprintf
         "source src\n\
          shell  A identity\n\
          sink   out\n\
          src.0 -> A.0 latency=jitter:0:%d:11 : retx:%d\n\
          A.0 -> out.0 : full\n"
         bound depth)
  in
  let flit_kinds =
    [ Fault.Model.Flit_corrupt; Fault.Model.Flit_drop; Fault.Model.Flit_dup ]
  in
  let rows =
    List.concat_map
      (fun bound ->
        List.map
          (fun depth ->
            let net = mk ~bound ~depth in
            let t =
              match
                Skeleton.Measure.steady_ratio_packed
                  (Skeleton.Packed.create net)
              with
              | Some (n, d) -> f4 (float_of_int n /. float_of_int d)
              | None -> "-"
            in
            let lint = Lint.Checks.run ~gate:false net in
            let warned =
              List.exists
                (fun (d : Lint.Diagnostic.t) ->
                  d.code = Lint.Diagnostic.LID008)
                lint.diagnostics
            in
            let result =
              Fault.Campaign.run
                {
                  Fault.Campaign.default_config with
                  kinds = flit_kinds;
                  cycles = 256;
                  injections_per_site = 8;
                }
                net
            in
            let count o =
              List.length
                (List.filter
                   (fun (r : Fault.Classify.report) -> r.outcome = o)
                   result.reports)
            in
            let recoveries =
              List.fold_left
                (fun acc (r : Fault.Classify.report) ->
                  acc + r.evidence.recoveries)
                0 result.reports
            in
            [
              string_of_int bound;
              string_of_int depth;
              t;
              (if warned then "LID008" else "-");
              string_of_int (List.length result.reports);
              string_of_int (count Fault.Classify.Masked_by_retx);
              string_of_int
                (count Fault.Classify.Masked + count Fault.Classify.Latency_only);
              string_of_int recoveries;
            ])
          [ 1; 2; 4; 8 ])
      [ 0; 2; 4 ]
  in
  table
    [ "jitter"; "depth"; "T"; "lint"; "inj"; "retx-masked"; "clean"; "recov" ]
    rows;
  Printf.printf
    "\na buffer at least as deep as the round trip keeps full launch rate\n\
     and silences LID008; every injected drop/corruption lands in a\n\
     recovered bin -- none reach data-corrupting.\n"

let e18_dynamic_lanes () =
  section "E18"
    "dynamic nets on the lane fast path: retx + jitter campaign, single core";
  Printf.printf
    "a chain whose head channels carry jitter profiles spanned by\n\
     go-back-N stations: the lane engine keeps per-lane retransmission\n\
     state and entrance-gate counters, injects link faults through each\n\
     lane's own station FSM, and screens against the fault-free lane 0\n\
     on (signature, recoveries).  Reports asserted bit-identical to the\n\
     serial run before timing; jobs = 1 isolates the lane win.\n\n";
  let d = Campaign.Bench.run_dynamic ~quick:true () in
  Format.printf "%a" Campaign.Bench.pp_dynamic d

let e21_compose () =
  section "E21" "compositional verification vs explicit-state reachability";
  Printf.printf
    "the assume-guarantee discharge: every component class is checked\n\
     once against its protocol contract, the network verdict is a linear\n\
     pass over the contract graph.  On every topology small enough to\n\
     decide both ways the composed deadlock verdict is cross-checked\n\
     against the exhaustive all-environments liveness analysis; then the\n\
     same discharge runs on a NoC-size mesh whose flat state space no\n\
     explicit engine can even enumerate one step of.\n\n";
  let r = Lint.Compose_bench.run ~quick:true () in
  Format.printf "%a" Lint.Compose_bench.pp r;
  if not r.Lint.Compose_bench.identical then
    failwith "E21: composed verdicts diverged from explicit-state reachability"

let all_quick () =
  e1_fig1 ();
  e2_fig2 ();
  e3_ff_throughput ();
  e4_loop_throughput ();
  e5_composition ();
  e6_equalization ();
  e7_transient ();
  e8_flavours ();
  e9_deadlock ();
  e10_cost_quick ();
  e11_verification ();
  e12_equivalence ();
  e13_fault_injection ();
  e14_packed_speedup ();
  e15_lane_campaign ();
  e16_lint_vs_packed ();
  e17_dynamic_lid ();
  e18_dynamic_lanes ();
  e21_compose ();
  a1_attribution ()
