(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4).

   Usage:
     main.exe              run E1..E12 (prints all tables)
     main.exe e1 e4 ...    run selected experiments
     main.exe cost         E10 with rigorous bechamel timing
     main.exe list         list experiment ids *)

let experiments =
  [
    ("e1", "Fig. 1 reconvergent evolution", Experiments.e1_fig1);
    ("e2", "Fig. 2 feedback evolution", Experiments.e2_fig2);
    ("e3", "(m-i)/m feed-forward sweep", Experiments.e3_ff_throughput);
    ("e4", "S/(S+R) loop sweep", Experiments.e4_loop_throughput);
    ("e5", "slowest subtopology dictates", Experiments.e5_composition);
    ("e6", "path equalization", Experiments.e6_equalization);
    ("e7", "transient predictability", Experiments.e7_transient);
    ("e8", "protocol flavour ablation", Experiments.e8_flavours);
    ("e9", "deadlock rules and cures", Experiments.e9_deadlock);
    ("e10", "skeleton vs RTL cost (quick)", Experiments.e10_cost_quick);
    ("e11", "block verification", Experiments.e11_verification);
    ("e12", "latency equivalence", Experiments.e12_equivalence);
    ("e13", "fault-injection robustness", Experiments.e13_fault_injection);
    ("e14", "packed-engine speedup", Experiments.e14_packed_speedup);
    ("e15", "lane-parallel campaign speedup", Experiments.e15_lane_campaign);
    ("e16", "lint-predicted vs packed-measured", Experiments.e16_lint_vs_packed);
    ("e17", "dynamic LID: jitter vs replay depth", Experiments.e17_dynamic_lid);
    ("e18", "dynamic nets on the lane fast path", Experiments.e18_dynamic_lanes);
    ("e21", "compositional vs explicit-state verification", Experiments.e21_compose);
    ("a1", "stall attribution (ablation)", Experiments.a1_attribution);
  ]

(* --- library microbenchmarks: one Bechamel Test.make per core kernel --- *)

let bechamel_perf () =
  let open Bechamel in
  let open Toolkit in
  Util.section "PERF" "library kernel microbenchmarks (bechamel)";
  let fig1 = Topology.Generators.fig1 () in
  let big_ring = Topology.Generators.ring ~n_shells:64 () in
  let rng = Random.State.make [| 5 |] in
  let loopy = Topology.Generators.random_loopy ~rng ~n_shells:10 ~extra_back_edges:2 () in
  let tests =
    [
      Test.make ~name:"skeleton-step/fig1"
        (Staged.stage (fun () ->
             let e = Skeleton.Engine.create fig1 in
             Skeleton.Engine.run e ~cycles:500));
      Test.make ~name:"skeleton-step/ring64"
        (Staged.stage (fun () ->
             let e = Skeleton.Engine.create big_ring in
             Skeleton.Engine.run e ~cycles:100));
      Test.make ~name:"elastic-mcr/fig1"
        (Staged.stage (fun () ->
             ignore (Topology.Elastic.throughput_bound fig1)));
      Test.make ~name:"elastic-mcr/loopy10"
        (Staged.stage (fun () ->
             ignore (Topology.Elastic.throughput_bound loopy)));
      Test.make ~name:"classify/loopy10"
        (Staged.stage (fun () -> ignore (Topology.Classify.classify loopy)));
      Test.make ~name:"equalize-optimize/fig1"
        (Staged.stage (fun () -> ignore (Topology.Equalize.optimize fig1)));
      Test.make ~name:"explicit-mc/full-rs"
        (Staged.stage (fun () ->
             ignore (Verify.Props.check_relay_station Lid.Relay_station.Full)));
      Test.make ~name:"bdd-reach/full-rs"
        (Staged.stage (fun () ->
             let circ =
               Lid.Rtl_gen.relay_station ~data_width:2 Lid.Relay_station.Full
             in
             let sym = Verify.Symbolic.of_circuit circ in
             ignore (Verify.Symbolic.reachable_count sym)));
      Test.make ~name:"rtl-elaborate/fig1"
        (Staged.stage (fun () -> ignore (Topology.Rtl_net.of_network fig1)));
      Test.make ~name:"vhdl-emit/fig1"
        (Staged.stage (fun () ->
             ignore (Emit.Vhdl.emit (Topology.Rtl_net.of_network fig1))));
    ]
  in
  let grouped = Test.make_grouped ~name:"perf" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%12.0f" e
        | _ -> "?"
      in
      rows := [ name; est ] :: !rows)
    results;
  Util.table [ "kernel"; "ns / run" ] (List.sort compare !rows)

(* --- E10, rigorous: one Bechamel Test.make per simulator and system --- *)

let bechamel_cost () =
  let open Bechamel in
  let open Toolkit in
  Util.section "E10 (bechamel)" "skeleton vs RTL simulation cost";
  let tests =
    List.concat_map
      (fun (name, net) ->
        let skeleton =
          Test.make
            ~name:(name ^ "/skeleton")
            (Staged.stage (fun () ->
                 let e = Skeleton.Engine.create net in
                 Skeleton.Engine.run e ~cycles:100))
        in
        let rtl_cycle =
          let circ = Topology.Rtl_net.of_network net in
          Test.make
            ~name:(name ^ "/rtl-levelized")
            (Staged.stage (fun () ->
                 let sim = Sim.Cycle_sim.create circ in
                 for _ = 1 to 100 do
                   Sim.Cycle_sim.step sim
                 done))
        in
        let rtl_event =
          let circ = Topology.Rtl_net.of_network net in
          Test.make
            ~name:(name ^ "/rtl-event-driven")
            (Staged.stage (fun () ->
                 let sim = Sim.Event_sim.create circ in
                 for _ = 1 to 100 do
                   Sim.Event_sim.settle sim;
                   Sim.Event_sim.step sim
                 done))
        in
        [ skeleton; rtl_cycle; rtl_event ])
      (Experiments.e10_cost_nets ())
  in
  let grouped = Test.make_grouped ~name:"cost" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  Printf.printf "\nnanoseconds per 100 simulated cycles (OLS estimate):\n\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%13.0f" e
        | _ -> "?"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "?"
      in
      rows := [ name; est; r2 ] :: !rows)
    results;
  Util.table
    [ "benchmark"; "ns / 100 cycles"; "r^2" ]
    (List.sort compare !rows)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter (fun (_, _, f) -> f ()) experiments;
      print_newline ()
  | [ "list" ] ->
      List.iter (fun (id, desc, _) -> Printf.printf "%-5s %s\n" id desc) experiments;
      Printf.printf "%-5s %s\n" "cost" "E10 with bechamel timing";
      Printf.printf "%-5s %s\n" "perf" "library kernel microbenchmarks"
  | [ "cost" ] -> bechamel_cost ()
  | [ "perf" ] -> bechamel_perf ()
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S (try: main.exe list)\n" id;
              exit 1)
        ids
