# An SoC-ish pipeline with an unbalanced long interconnect to a
# floating-point cluster; see examples/soc_pipeline.ml.
source fetch
shell  decode fork2
shell  int_ex inc
shell  fp_ex  delay2
shell  commit adder
sink   retire
fetch.0  -> decode.0 : full
decode.0 -> int_ex.0 : full
decode.1 -> fp_ex.0  : full full full
int_ex.0 -> commit.0 : full
fp_ex.0  -> commit.1 : full
commit.0 -> retire.0
