# Half relay stations inside a loop with a stalling consumer: a potential
# deadlock per the paper's static rule.  Under the unrefined protocol it
# wedges; the refined protocol survives.
#   lidtool deadlock examples/specs/deadlock.lid -f original --cure
#   lidtool deadlock examples/specs/deadlock.lid -f optimized
source src
shell  tap tap
shell  s1 identity
shell  s2 identity
sink   out pattern=2/4
src.0 -> tap.1 : full
tap.1 -> out.0
tap.0 -> s1.0 : half
s1.0 -> s2.0 : half
s2.0 -> tap.0 : half
