# Dynamic LID: a variable-latency channel (jitter up to 2 extra cycles,
# deterministic per-channel schedule) spanned by a retransmitting
# go-back-N relay station.  The replay buffer is deeper than the
# worst-case round trip (3 + 2 = 5 cycles), so the channel sustains
# full rate and the analyzer stays quiet (no LID008).
source src
shell  A identity
sink   out
src.0 -> A.0 latency=jitter:0:2:5 : retx:6
A.0 -> out.0 : full
