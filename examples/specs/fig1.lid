# The paper's Fig. 1: reconvergent feed-forward topology.
# Try:
#   lidtool analyze  examples/specs/fig1.lid
#   lidtool simulate examples/specs/fig1.lid -t 16
#   lidtool equalize examples/specs/fig1.lid
source src
shell  A fork2
shell  B identity
shell  C adder
sink   out
src.0 -> A.0 : full
A.0 -> C.0 : full
A.1 -> B.0 : full
B.0 -> C.1 : full
C.0 -> out.0
