# The paper's Fig. 2: a feedback loop of two shells and two relay
# stations; maximum throughput S/(S+R) = 1/2.
shell A identity
shell B identity
A.0 -> B.0 : full
B.0 -> A.0 : full
