(* The NoC-scale generator families: lint cleanliness (in particular no
   LID004 token-free cycle), predicted-vs-measured throughput, packed vs
   reference engine agreement, and the spec-level [generate] syntax. *)

module G = Topology.Generators
module Net = Topology.Network
module Spec = Topology.Spec
module M = Skeleton.Measure

let lint net = Lint.Checks.run ~gate:false net

let codes report =
  List.sort_uniq compare
    (List.map
       (fun (d : Lint.Diagnostic.t) -> Lint.Diagnostic.code_id d.code)
       report.Lint.Checks.diagnostics)

let check_no_lid004 name report =
  Alcotest.(check bool)
    (name ^ ": no token-free cycle (LID004)")
    false
    (List.mem "LID004" (codes report))

(* Measure the steady state on both engines and require them to agree
   exactly — the small-size lockstep leg of the acceptance criteria. *)
let check_engines_agree name net =
  let reference = M.analyze (Skeleton.Engine.create net) in
  let packed = M.analyze_packed (Skeleton.Packed.create net) in
  match (reference, packed) with
  | Some r, Some p ->
      Alcotest.(check int) (name ^ ": transient") r.M.transient p.M.transient;
      Alcotest.(check int) (name ^ ": period") r.M.period p.M.period;
      Alcotest.(check (float 1e-9))
        (name ^ ": system throughput")
        (M.system_throughput r) (M.system_throughput p);
      M.system_throughput p
  | None, _ | _, None ->
      Alcotest.failf "%s: no steady state on one of the engines" name

let test_mesh () =
  let net = G.mesh ~n:4 ~m:5 () in
  Alcotest.(check int) "shells" 20 (List.length (Net.shells net));
  Alcotest.(check int) "sources" (4 + 5) (List.length (Net.sources net));
  Alcotest.(check int) "sinks" (4 + 5) (List.length (Net.sinks net));
  let report = lint net in
  Alcotest.(check (list string)) "mesh lint-clean" [] (codes report);
  (* balanced Manhattan fabric: every path equalized, full throughput *)
  Alcotest.(check (float 1e-9))
    "mesh throughput 1" 1.0
    (check_engines_agree "mesh 4x5" net)

let test_torus () =
  let net = G.torus ~n:3 ~m:4 () in
  Alcotest.(check int) "shells" 12 (List.length (Net.shells net));
  Alcotest.(check int) "no environment" 0 (List.length (Net.sources net));
  let report = lint net in
  check_no_lid004 "torus 3x4" report;
  Alcotest.(check bool)
    "torus has no errors" true
    (Lint.Checks.count report Lint.Diagnostic.Error = 0);
  (* each row/column ring carries k shells over k stations: k/(k+k) *)
  Alcotest.(check (float 1e-9))
    "torus throughput 1/2" 0.5
    (check_engines_agree "torus 3x4" net)

let test_butterfly () =
  let k = 3 in
  let net = G.butterfly ~k () in
  Alcotest.(check int)
    "shells" ((k + 1) * (1 lsl k))
    (List.length (Net.shells net));
  let report = lint net in
  Alcotest.(check (list string)) "butterfly lint-clean" [] (codes report);
  Alcotest.(check (float 1e-9))
    "butterfly throughput 1" 1.0
    (check_engines_agree "butterfly 3" net)

let prop_soc_linted =
  QCheck.Test.make ~name:"random_soc: never a token-free cycle" ~count:30
    QCheck.(pair (int_range 1 40) small_int)
    (fun (n_shells, seed) ->
      let rng = Random.State.make [| 0x50c; seed |] in
      let net =
        G.random_soc ~rng ~n_shells ~loop_density:0.3 ~reconv_density:0.7 ()
      in
      not (List.mem "LID004" (codes (lint net))))

let prop_soc_engines_agree =
  QCheck.Test.make ~name:"random_soc: packed and reference engines agree"
    ~count:15
    QCheck.(pair (int_range 1 20) small_int)
    (fun (n_shells, seed) ->
      let rng = Random.State.make [| 0x50c; seed |] in
      let net = G.random_soc ~rng ~n_shells () in
      match
        ( M.analyze (Skeleton.Engine.create net),
          M.analyze_packed (Skeleton.Packed.create net) )
      with
      | Some r, Some p ->
          r.M.transient = p.M.transient
          && r.M.period = p.M.period
          && M.system_throughput r = M.system_throughput p
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The [generate] spec syntax. *)

let test_generate_syntax () =
  let viaspec = Spec.parse_exn "generate mesh 3 3 stations=full" in
  let direct = G.mesh ~n:3 ~m:3 () in
  Alcotest.(check string)
    "generate mesh = Generators.mesh" (Spec.print direct) (Spec.print viaspec);
  (* print/parse round-trip of a generated fabric *)
  let reparsed = Spec.parse_exn (Spec.print viaspec) in
  Alcotest.(check string)
    "round-trip" (Spec.print viaspec) (Spec.print reparsed);
  (* soc generation is deterministic in the seed *)
  let a = Spec.parse_exn "generate soc 25 seed=9 loops=0.2" in
  let b = Spec.parse_exn "generate soc 25 seed=9 loops=0.2" in
  Alcotest.(check string) "soc deterministic" (Spec.print a) (Spec.print b)

let test_generate_errors () =
  List.iter
    (fun (text, fragment) ->
      match Spec.parse text with
      | Ok _ -> Alcotest.failf "%s: should not parse" text
      | Error m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error mentions %S (got %S)" text fragment m)
            true
            (Astring.String.is_infix ~affix:fragment m))
    [
      ("generate ring 4", "unknown generator");
      ("generate mesh 3", "wants N M");
      ("generate torus 1 4", "n, m >= 2");
      ("generate mesh 9999 9999", "exceed");
      ("source s\ngenerate mesh 2 2", "only declaration");
      ("generate mesh 2 2\ngenerate mesh 2 2", "multiple generate");
      ("generate soc 10 seed=x", "bad seed");
    ]

let suite =
  [
    Alcotest.test_case "mesh" `Quick test_mesh;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "butterfly" `Quick test_butterfly;
    Alcotest.test_case "generate syntax" `Quick test_generate_syntax;
    Alcotest.test_case "generate errors" `Quick test_generate_errors;
    QCheck_alcotest.to_alcotest prop_soc_linted;
    QCheck_alcotest.to_alcotest prop_soc_engines_agree;
  ]
