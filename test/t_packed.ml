(* The packed engine: closed-form throughputs, per-cycle equivalence with
   the reference engine (with and without fault injection), and the
   interned-signature bijection. *)

module G = Topology.Generators
module M = Skeleton.Measure
module E = Skeleton.Engine
module P = Skeleton.Packed
module Net = Topology.Network

let shellish net =
  List.filter
    (fun (n : Net.node) ->
      match n.kind with
      | Net.Shell _ | Net.Source _ -> true
      | Net.Sink _ -> false)
    (Net.nodes net)

(* Step both engines in lockstep, checking every observable each cycle and
   the signature bijection (equal engine signatures <-> equal packed ids). *)
let check_lockstep ?hooks ?(cycles = 120) ~flavour net =
  let e = E.create ~flavour net and p = P.create ~flavour net in
  (match hooks with
  | None -> ()
  | Some h ->
      E.set_fault_hooks e (Some h);
      P.set_fault_hooks p (Some h));
  let sig_to_id = Hashtbl.create 64 and id_to_sig = Hashtbl.create 64 in
  let nodes = shellish net and sinks = Net.sinks net in
  for cycle = 0 to cycles - 1 do
    let s = E.signature e and id = P.signature_id p in
    (match (Hashtbl.find_opt sig_to_id s, Hashtbl.find_opt id_to_sig id) with
    | None, None ->
        Hashtbl.add sig_to_id s id;
        Hashtbl.add id_to_sig id s
    | Some id', _ when id' <> id ->
        Alcotest.failf "cycle %d: signature %S mapped to ids %d and %d" cycle
          s id' id
    | _, Some s' when s' <> s ->
        Alcotest.failf "cycle %d: id %d names signatures %S and %S" cycle id
          s' s
    | _ -> ());
    let stepped_e =
      try
        E.step e;
        true
      with E.Combinational_stop_cycle _ -> false
    in
    let stepped_p =
      try
        P.step p;
        true
      with E.Combinational_stop_cycle _ -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d: both step or both raise" cycle)
      stepped_e stepped_p;
    if not stepped_e then raise Exit;
    List.iter
      (fun (n : Net.node) ->
        let ce = E.fired_count e n.id and cp = P.fired_count p n.id in
        if ce <> cp then
          Alcotest.failf "cycle %d: %s fired %d (engine) vs %d (packed)" cycle
            n.name ce cp;
        let ge = E.gated_count e n.id and gp = P.gated_count p n.id in
        if ge <> gp then
          Alcotest.failf "cycle %d: %s gated %d vs %d" cycle n.name ge gp;
        let se = E.starved_count e n.id and sp = P.starved_count p n.id in
        if se <> sp then
          Alcotest.failf "cycle %d: %s starved %d vs %d" cycle n.name se sp)
      nodes;
    List.iter
      (fun (n : Net.node) ->
        if E.sink_count e n.id <> P.sink_count p n.id then
          Alcotest.failf "cycle %d: %s consumed %d vs %d" cycle n.name
            (E.sink_count e n.id) (P.sink_count p n.id))
      sinks
  done;
  List.iter
    (fun (n : Net.node) ->
      Alcotest.(check (list int))
        (n.name ^ " sink values")
        (E.sink_values e n.id) (P.sink_values p n.id))
    sinks

let lockstep ?hooks ?cycles ~flavour net =
  try check_lockstep ?hooks ?cycles ~flavour net with Exit -> ()

(* --- closed forms, via both engines ------------------------------- *)

let test_fig1_throughput () =
  (* reconvergent paths, mismatch 1 over longest path 5: T = 4/5 *)
  List.iter
    (fun rate -> Alcotest.(check (float 1e-9)) "fig1 rate" 0.8 rate)
    (let p = P.create (G.fig1 ()) in
     match M.analyze_packed p with
     | Some r -> List.map snd r.node_throughput
     | None -> Alcotest.fail "no steady state");
  let e = E.create (G.fig1 ()) in
  match M.analyze e with
  | Some r -> Alcotest.(check (float 1e-9)) "engine agrees" 0.8 (M.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_fig2_loop_throughput () =
  (* a loop of S shells and R stations sustains T = S / (S + R) *)
  List.iter
    (fun (ab, ba, expect) ->
      let net = G.fig2 ~stations_ab:ab ~stations_ba:ba () in
      let p = P.create net in
      match M.analyze_packed p with
      | Some r ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "loop S=2 R=%d" (ab + ba))
            expect (M.system_throughput r)
      | None -> Alcotest.fail "no steady state")
    [ (1, 1, 0.5); (2, 1, 2. /. 5.); (3, 2, 2. /. 7.) ]

let test_tree_throughput () =
  (* trees have no reconvergence: T = 1, transient bounded by the pipeline
     depth of the longest source-to-sink path *)
  let net = G.tree ~depth:3 () in
  let bound = Topology.Analysis.transient_bound net in
  let p = P.create net in
  match M.analyze_packed p with
  | Some r ->
      Alcotest.(check (float 1e-9)) "tree rate" 1.0 (M.system_throughput r);
      Alcotest.(check bool)
        (Printf.sprintf "transient %d <= path bound %d" r.transient bound)
        true (r.transient <= bound)
  | None -> Alcotest.fail "no steady state"

(* --- measure regressions ------------------------------------------ *)

let test_transient_relative_to_start () =
  (* a warmed-up engine is already periodic: the residual transient is 0,
     not the absolute cycle of the first repeat *)
  let e = E.create (G.fig1 ()) in
  E.run e ~cycles:25;
  (match M.transient_and_period e with
  | Some (transient, period) ->
      Alcotest.(check int) "warm engine period" 5 period;
      Alcotest.(check int) "residual transient" 0 transient
  | None -> Alcotest.fail "no period");
  let p = P.create (G.fig1 ()) in
  P.run p ~cycles:25;
  match M.transient_and_period_packed p with
  | Some (transient, period) ->
      Alcotest.(check int) "warm packed period" 5 period;
      Alcotest.(check int) "residual transient (packed)" 0 transient
  | None -> Alcotest.fail "no period"

let test_max_cycles_is_exact () =
  (* detection succeeds iff transient + period <= max_cycles *)
  let t0, p0 =
    match M.transient_and_period (E.create (G.fig1 ())) with
    | Some tp -> tp
    | None -> Alcotest.fail "no period"
  in
  (match M.transient_and_period ~max_cycles:(t0 + p0) (E.create (G.fig1 ())) with
  | Some (t, p) ->
      Alcotest.(check int) "transient at exact budget" t0 t;
      Alcotest.(check int) "period at exact budget" p0 p
  | None -> Alcotest.fail "exact budget must suffice");
  match M.transient_and_period ~max_cycles:(t0 + p0 - 1) (E.create (G.fig1 ())) with
  | Some _ -> Alcotest.fail "budget one short must fail"
  | None -> ()

let test_signature_capacity () =
  let t0, p0 =
    match M.transient_and_period (E.create (G.fig1 ())) with
    | Some tp -> tp
    | None -> Alcotest.fail "no period"
  in
  (* a capacity above the period still converges (the restart only costs
     transient precision)... *)
  (match
     M.transient_and_period ~signature_capacity:(p0 + 1) (E.create (G.fig1 ()))
   with
  | Some (t, p) ->
      Alcotest.(check int) "period survives restarts" p0 p;
      Alcotest.(check bool) "transient is an upper bound" true (t >= t0)
  | None -> Alcotest.fail "capacity > period must converge");
  (* ... a capacity below it cannot, and hits the cycle budget instead *)
  match
    M.transient_and_period ~max_cycles:500 ~signature_capacity:(p0 - 1)
      (E.create (G.fig1 ()))
  with
  | Some _ -> Alcotest.fail "capacity < period cannot converge"
  | None -> ()

let test_deadlock_integer_detection () =
  (* flavour-dependent deadlock decided on integer deltas, via both paths *)
  let net =
    G.ring_tapped ~n_shells:3 ~stations:[ Lid.Relay_station.Half ]
      ~sink_pattern:(Topology.Pattern.periodic ~period:4 ~active:2 ())
      ()
  in
  List.iter
    (fun (flavour, expect) ->
      (match M.analyze (E.create ~flavour net) with
      | Some r -> Alcotest.(check bool) "engine deadlock flag" expect r.deadlocked
      | None -> Alcotest.fail "no period");
      match M.analyze_packed (P.create ~flavour net) with
      | Some r -> Alcotest.(check bool) "packed deadlock flag" expect r.deadlocked
      | None -> Alcotest.fail "no period")
    [ (Lid.Protocol.Original, true); (Lid.Protocol.Optimized, false) ]

(* --- equivalence with the reference engine ------------------------ *)

let test_lockstep_standard_nets () =
  List.iter
    (fun net ->
      List.iter
        (fun flavour -> lockstep ~flavour net)
        [ Lid.Protocol.Optimized; Lid.Protocol.Original ])
    [
      G.fig1 ();
      G.fig2 ();
      G.chain ~n_shells:4 ();
      G.chain ~n_shells:3 ~stations:[ Lid.Relay_station.Half ] ();
      G.tree ~depth:3 ();
      G.ring_tapped ~n_shells:4 ();
      G.chain ~n_shells:2
        ~source_pattern:(Topology.Pattern.word [ true; false; true ])
        ~sink_pattern:(Topology.Pattern.periodic ~period:3 ~active:1 ())
        ();
    ]

let prop_lockstep_random flavour =
  QCheck.Test.make
    ~name:
      ("packed = engine on random loopy networks ("
      ^ Lid.Protocol.to_string flavour
      ^ ")")
    ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed; 0x9a5 |] in
      let net =
        G.random_loopy ~rng ~n_shells:(3 + (seed mod 5)) ~half_probability:0.4 ()
      in
      lockstep ~flavour net;
      true)

let prop_analyze_equal =
  QCheck.Test.make ~name:"analyze = analyze_packed on random networks"
    ~count:30 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0xb07 |] in
      let net = G.random_loopy ~rng ~n_shells:(3 + (seed mod 4)) () in
      let re = M.analyze (E.create net) in
      let rp = M.analyze_packed (P.create net) in
      match (re, rp) with
      | None, None -> true
      | Some a, Some b ->
          a.M.transient = b.M.transient && a.M.period = b.M.period
          && a.M.node_throughput = b.M.node_throughput
          && a.M.sink_throughput = b.M.sink_throughput
          && a.M.deadlocked = b.M.deadlocked
      | _ -> false)

(* --- equivalence under fault injection ---------------------------- *)

let test_lockstep_under_campaign_faults () =
  (* every injection of a small (but kind-complete) campaign, replayed on
     both engines in lockstep *)
  let net = G.fig1 () in
  let config =
    {
      Fault.Campaign.default_config with
      seed = 7;
      max_sites_per_kind = 2;
      injections_per_site = 1;
    }
  in
  let faults = Fault.Campaign.faults_of_config config net in
  Alcotest.(check bool) "campaign is non-trivial" true (List.length faults >= 6);
  List.iter
    (fun fault ->
      let hooks = Fault.Model.hooks [ fault ] in
      lockstep ~hooks ~cycles:100 ~flavour:config.flavour net)
    faults

let prop_lockstep_under_faults =
  QCheck.Test.make ~name:"packed = engine under faults (random networks)"
    ~count:25 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0xfa17 |] in
      let net =
        G.random_loopy ~rng ~n_shells:(3 + (seed mod 4)) ~half_probability:0.3 ()
      in
      let config =
        {
          Fault.Campaign.default_config with
          seed;
          cycles = 96;
          max_sites_per_kind = 1;
        }
      in
      List.iter
        (fun fault ->
          let hooks = Fault.Model.hooks [ fault ] in
          lockstep ~hooks ~cycles:96 ~flavour:config.Fault.Campaign.flavour net)
        (Fault.Campaign.faults_of_config config net);
      true)

(* --- dynamic LID: jittered channels and retransmitting stations ---- *)

let dyn_spec text = Topology.Spec.parse_exn text

let dyn_nets () =
  [
    (* entrance gate, fixed extra delay *)
    dyn_spec
      "source src\nshell A identity\nsink out\n\
       src.0 -> A.0 latency=fixed:2 : full\nA.0 -> out.0 : full\n";
    (* entrance gate, jitter *)
    dyn_spec
      "source src\nshell A identity\nsink out\n\
       src.0 -> A.0 latency=jitter:0:3:11 : full full\nA.0 -> out.0 : full\n";
    (* retransmitting station spanning the jittered wire *)
    dyn_spec
      "source src\nshell A identity\nsink out\n\
       src.0 -> A.0 latency=jitter:1:2:7 : retx:5\nA.0 -> out.0 : full\n";
    (* retx chain mixed with ordinary stations, delay table *)
    dyn_spec
      "source src\nshell A identity\nshell B identity\nsink out\n\
       src.0 -> A.0 latency=table:0,2,1 : full retx:4 half\n\
       A.0 -> B.0 latency=dist:5:2 : retx:6\nB.0 -> out.0 : full\n";
    (* jittered channel inside a feedback loop (fig2 shape) *)
    dyn_spec
      "shell A identity\nshell B identity\n\
       A.0 -> B.0 latency=jitter:0:2:3 : full full\nB.0 -> A.0 : full\n";
  ]

let test_lockstep_dynamic_nets () =
  (* the acceptance bar of the dynamic-LID work: both engines agree
     bit-for-bit (signature partition, counters, streams) on any latency
     schedule — gates, retx stations, loops *)
  List.iter
    (fun net ->
      List.iter
        (fun flavour -> lockstep ~cycles:200 ~flavour net)
        [ Lid.Protocol.Optimized; Lid.Protocol.Original ])
    (dyn_nets ())

let test_lockstep_dynamic_under_link_faults () =
  (* replay a kind-complete link-fault campaign on the retx nets, both
     engines in lockstep *)
  List.iter
    (fun net ->
      if Net.retx_count net > 0 then
        let config =
          {
            Fault.Campaign.default_config with
            seed = 3;
            cycles = 120;
            kinds =
              [
                Fault.Model.Flit_corrupt;
                Fault.Model.Flit_corrupt_silent;
                Fault.Model.Flit_drop;
                Fault.Model.Flit_dup;
              ];
            injections_per_site = 2;
          }
        in
        List.iter
          (fun fault ->
            let hooks = Fault.Model.hooks [ fault ] in
            lockstep ~hooks ~cycles:120 ~flavour:config.flavour net)
          (Fault.Campaign.faults_of_config config net))
    (dyn_nets ())

let prop_lockstep_jitter =
  QCheck.Test.make ~name:"packed = engine on jittered channels (random seeds)"
    ~count:30 QCheck.small_int (fun seed ->
      let bound = 1 + (seed mod 3) in
      let net =
        dyn_spec
          (Printf.sprintf
             "source src\nshell A identity\nshell B identity\nsink out\n\
              src.0 -> A.0 latency=jitter:0:%d:%d : full\n\
              A.0 -> B.0 latency=jitter:1:%d:%d : retx:%d\n\
              B.0 -> out.0 : full\n"
             bound (seed + 1) bound
             ((seed * 7) + 3)
             (3 + (seed mod 4)))
      in
      lockstep ~cycles:150 ~flavour:Lid.Protocol.Optimized net;
      true)

let test_gated_table_throughput () =
  (* measure regression: the signature must fold the gate's pending-delay
     state.  A table:0,2 entrance gate alternates 1-cycle and 3-cycle
     handovers: sustained throughput is exactly 2 tokens / 4 cycles = 0.5.
     A signature blind to the gate timer/phase would intern a repeat after
     the first handover and misreport the period. *)
  let net =
    dyn_spec
      "source src\nshell A identity\nsink out\n\
       src.0 -> A.0 latency=table:0,2 : full\nA.0 -> out.0 : full\n"
  in
  (match M.analyze (E.create net) with
  | Some r ->
      Alcotest.(check (float 1e-9)) "engine rate" 0.5 (M.system_throughput r);
      Alcotest.(check bool)
        (Printf.sprintf "period %d covers the table" r.period)
        true
        (r.period mod 4 = 0)
  | None -> Alcotest.fail "no steady state (engine)");
  match M.analyze_packed (P.create net) with
  | Some r ->
      Alcotest.(check (float 1e-9)) "packed rate" 0.5 (M.system_throughput r)
  | None -> Alcotest.fail "no steady state (packed)"

let test_recovery_counters_agree () =
  (* the recovery/dup counters that feed the campaign classifier must
     agree between the engines under the same fault schedule *)
  let net =
    dyn_spec
      "source src\nshell A identity\nsink out\n\
       src.0 -> A.0 latency=jitter:0:2:5 : retx:6\nA.0 -> out.0 : full\n"
  in
  let mk_fault kind cycle =
    {
      Fault.Model.kind;
      site = Fault.Model.Link { edge = 0; station = 0 };
      cycle;
      duration = 2;
      param = 0x21;
    }
  in
  List.iter
    (fun fault ->
      let hooks = Fault.Model.hooks [ fault ] in
      let e = E.create net and p = P.create net in
      E.set_fault_hooks e (Some hooks);
      P.set_fault_hooks p (Some hooks);
      E.run e ~cycles:150;
      P.run p ~cycles:150;
      Alcotest.(check int) "recoveries agree" (E.recovery_count e)
        (P.recovery_count p);
      Alcotest.(check int) "dup discards agree" (E.dup_drop_count e)
        (P.dup_drop_count p))
    [
      mk_fault Fault.Model.Flit_drop 20;
      mk_fault Fault.Model.Flit_corrupt 33;
      mk_fault Fault.Model.Flit_dup 41;
    ]

(* --- interning ----------------------------------------------------- *)

let test_intern_table () =
  let p = P.create (G.fig1 ()) in
  let ids = List.init 60 (fun _ ->
      let id = P.signature_id p in
      P.step p;
      id)
  in
  let distinct = P.signature_intern_size p in
  Alcotest.(check bool) "table bounded by transient+period" true (distinct < 60);
  Alcotest.(check bool) "table saw a full period" true (distinct >= 5);
  Alcotest.(check bool) "ids are dense" true
    (List.for_all (fun id -> id >= 0 && id < distinct) ids);
  P.signature_intern_clear p;
  Alcotest.(check int) "cleared" 0 (P.signature_intern_size p);
  Alcotest.(check int) "ids restart from 0" 0 (P.signature_id p)

let suite =
  [
    Alcotest.test_case "fig1: T = 4/5" `Quick test_fig1_throughput;
    Alcotest.test_case "fig2 loops: T = S/(S+R)" `Quick test_fig2_loop_throughput;
    Alcotest.test_case "trees: T = 1, transient <= path bound" `Quick
      test_tree_throughput;
    Alcotest.test_case "transient is relative to analysis start" `Quick
      test_transient_relative_to_start;
    Alcotest.test_case "max_cycles budget is exact" `Quick test_max_cycles_is_exact;
    Alcotest.test_case "signature capacity cap" `Quick test_signature_capacity;
    Alcotest.test_case "deadlock decided on integer deltas" `Quick
      test_deadlock_integer_detection;
    Alcotest.test_case "lockstep on standard nets" `Quick test_lockstep_standard_nets;
    Alcotest.test_case "lockstep under campaign faults" `Quick
      test_lockstep_under_campaign_faults;
    QCheck_alcotest.to_alcotest (prop_lockstep_random Lid.Protocol.Optimized);
    QCheck_alcotest.to_alcotest (prop_lockstep_random Lid.Protocol.Original);
    QCheck_alcotest.to_alcotest prop_analyze_equal;
    QCheck_alcotest.to_alcotest prop_lockstep_under_faults;
    Alcotest.test_case "lockstep on dynamic nets (gates, retx)" `Quick
      test_lockstep_dynamic_nets;
    Alcotest.test_case "lockstep under link faults" `Quick
      test_lockstep_dynamic_under_link_faults;
    QCheck_alcotest.to_alcotest prop_lockstep_jitter;
    Alcotest.test_case "gated table:0,2 rate is exactly 1/2" `Quick
      test_gated_table_throughput;
    Alcotest.test_case "recovery counters agree across engines" `Quick
      test_recovery_counters_agree;
    Alcotest.test_case "signature interning" `Quick test_intern_table;
  ]
