(* Cone-of-influence incremental re-simulation.  The load-bearing
   property is bit-identity: [Classify.classify_incr] (restore at the
   fault window, re-step the perturbed middle, splice the recorded tail
   at the first proven convergence) must produce structurally the very
   report [Classify.classify_fast] computes by re-simulating the whole
   horizon — outcome, evidence, violations, recovery counts — on every
   topology class, static and dynamic; the driver's cone path must be
   bit-identical to the cone-off path for every jobs x lanes; and
   [Packed.resume] must be lockstep with a fresh compile of the edited
   network.  The cone masks themselves are only a grouping heuristic
   (stop wires propagate upstream), so their tests are structural. *)

module G = Topology.Generators
module C = Fault.Campaign
module Cl = Fault.Classify
module P = Skeleton.Packed
module PL = Skeleton.Packed_lanes
module Net = Topology.Network

let config ~seed ~cycles ~max_sites =
  { C.default_config with seed; cycles; max_sites_per_kind = max_sites }

let retx_jitter_net () =
  Topology.Spec.parse_exn
    "source src\n\
     shell  A identity\n\
     sink   out\n\
     src.0 -> A.0 latency=jitter:0:2:5 : retx:6\n\
     A.0 -> out.0 : full\n"

let dyn_mixed_net () =
  Topology.Spec.parse_exn
    "source src\n\
     shell  A identity\n\
     shell  B identity\n\
     sink   out pattern=%0010011\n\
     src.0 -> A.0 latency=table:0,2,1 : retx:3 full\n\
     A.0 -> B.0 latency=fixed:2 : full\n\
     B.0 -> out.0 : retx:2\n"

(* ------------------------------------------------------------------ *)
(* classify_incr = classify_fast, fault by fault.                       *)

let check_incr_matches_fast label net config =
  let faults = C.faults_of_config config net in
  Alcotest.(check bool)
    (label ^ ": campaign is non-trivial")
    true
    (List.length faults >= 8);
  let baseline =
    Cl.baseline ~cycles:config.C.cycles ~flavour:config.C.flavour net
  in
  match
    Cl.record baseline
      ~window_starts:(List.map (fun (f : Fault.Model.t) -> f.cycle) faults)
  with
  | None -> Alcotest.failf "%s: fault-free run unusable as a recording" label
  | Some rc ->
      List.iteri
        (fun i fault ->
          let fast = Cl.classify_fast baseline fault in
          let incr = Cl.classify_incr baseline rc fault in
          if fast <> incr then
            Alcotest.failf "%s: fault %d (%s) differs: fast %s, incr %s" label
              i
              (Fault.Model.kind_to_string fault.Fault.Model.kind)
              (Cl.outcome_to_string fast.Cl.outcome)
              (Cl.outcome_to_string incr.Cl.outcome))
        faults

let test_incr_matches_fast_static () =
  List.iter
    (fun (label, net) ->
      check_incr_matches_fast label net
        { (config ~seed:11 ~cycles:160 ~max_sites:2) with
          C.injections_per_site = 3
        })
    [
      ("fig1", G.fig1 ());
      ("fig2", G.fig2 ());
      ("mesh 3x3", G.mesh ~n:3 ~m:3 ());
      ("torus 3x3", G.torus ~n:3 ~m:3 ());
    ]

let test_incr_matches_fast_dynamic () =
  List.iter
    (fun (label, net, seed) ->
      check_incr_matches_fast label net
        { (config ~seed ~cycles:192 ~max_sites:2) with
          C.injections_per_site = 4
        })
    [
      ("retx/jitter", retx_jitter_net (), 5);
      ("mixed dynamics", dyn_mixed_net (), 9);
    ]

let prop_incr_matches_fast_random =
  QCheck.Test.make ~name:"classify_incr = classify_fast on random SoCs"
    ~count:6 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| 0xc0; 0x9e; seed |] in
      let net = G.random_soc ~rng ~n_shells:6 () in
      let config =
        { (config ~seed ~cycles:128 ~max_sites:1) with
          C.injections_per_site = 2
        }
      in
      let faults = C.faults_of_config config net in
      let baseline =
        Cl.baseline ~cycles:config.C.cycles ~flavour:config.C.flavour net
      in
      match
        Cl.record baseline
          ~window_starts:(List.map (fun (f : Fault.Model.t) -> f.cycle) faults)
      with
      | None -> true (* driver falls back to classify_fast; nothing to pin *)
      | Some rc ->
          List.for_all
            (fun fault ->
              Cl.classify_fast baseline fault
              = Cl.classify_incr baseline rc fault)
            faults)

(* ------------------------------------------------------------------ *)
(* The driver: cone on = cone off = serial, at every width.             *)

let test_driver_cone_on_off () =
  List.iter
    (fun (label, net, seed) ->
      let config =
        { (config ~seed ~cycles:160 ~max_sites:2) with
          C.injections_per_site = 3
        }
      in
      let serial = C.run config net in
      List.iter
        (fun (jobs, lanes) ->
          let on = Campaign.Fault_driver.run ~jobs ~lanes ~cone:true config net
          and off =
            Campaign.Fault_driver.run ~jobs ~lanes ~cone:false config net
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d lanes=%d: cone on = off" label jobs
               lanes)
            true
            (on.C.reports = off.C.reports);
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d lanes=%d: cone on = serial" label jobs
               lanes)
            true
            (serial.C.reports = on.C.reports))
        [ (1, 1); (3, 1); (1, PL.max_lanes); (3, PL.max_lanes) ])
    [
      ("fig1", G.fig1 (), 13);
      ("retx/jitter", retx_jitter_net (), 5);
      ("torus 3x3", G.torus ~n:3 ~m:3 (), 3);
    ]

(* ------------------------------------------------------------------ *)
(* resume: lockstep with a fresh compile of the edited network.         *)

let probes_equal (a : P.probe_view) (b : P.probe_view) =
  a.P.pv_cycle = b.P.pv_cycle
  && a.P.pv_any_fired = b.P.pv_any_fired
  && a.P.pv_sink_valid = b.P.pv_sink_valid
  && a.P.pv_probes = b.P.pv_probes

let check_resume_lockstep label base edits ~cycles =
  let edited =
    List.fold_left (fun n (e, p) -> Net.with_latency n e p) base edits
  in
  let from_base = P.resume (P.create base) ~edits in
  let fresh = P.create edited in
  for cy = 1 to cycles do
    let pa = P.probe_next from_base and pb = P.probe_next fresh in
    if not (probes_equal pa pb) then
      Alcotest.failf "%s: probes differ at cycle %d" label cy
  done;
  List.iter
    (fun (n : Net.node) ->
      Alcotest.(check (list int))
        (Printf.sprintf "%s: sink %s stream" label n.name)
        (P.sink_values fresh n.id)
        (P.sink_values from_base n.id))
    (Net.sinks edited);
  Alcotest.(check int)
    (label ^ ": recoveries")
    (P.recovery_count fresh)
    (P.recovery_count from_base)

let test_resume_lockstep () =
  let jitter e = (e, Some (Lid.Latency.Jitter { base = 0; bound = 3; seed = 7 }))
  and fixed e = (e, Some (Lid.Latency.Fixed 2))
  and strip e = (e, None) in
  let first_edges n net =
    List.filteri (fun i _ -> i < n) (Net.edges net)
    |> List.map (fun (e : Net.edge) -> e.id)
  in
  let fig1 = G.fig1 () in
  (match first_edges 2 fig1 with
  | [ a; b ] ->
      check_resume_lockstep "fig1 + profiles" fig1 [ jitter a; fixed b ]
        ~cycles:200
  | _ -> Alcotest.fail "fig1 has at least two edges");
  let rj = retx_jitter_net () in
  (match first_edges 1 rj with
  | [ a ] ->
      (* re-profile the retx channel, then strip it entirely *)
      check_resume_lockstep "retx re-profiled" rj [ fixed a ] ~cycles:256;
      check_resume_lockstep "retx stripped" rj [ strip a ] ~cycles:256
  | _ -> Alcotest.fail "retx net has an edge");
  let mixed = dyn_mixed_net () in
  match first_edges 3 mixed with
  | [ a; b; c ] ->
      check_resume_lockstep "mixed re-profiled" mixed
        [ jitter a; strip b; fixed c ]
        ~cycles:256
  | _ -> Alcotest.fail "mixed net has three edges"

let test_resume_base_untouched () =
  (* resuming must not perturb the base engine mid-flight *)
  let base = P.create (retx_jitter_net ()) in
  P.run base ~cycles:50;
  let sig_before = P.signature_id base in
  let edited =
    P.resume base
      ~edits:
        [ (List.hd (Net.edges (P.network base))).Net.id, None ]
  in
  Alcotest.(check int) "base cycle unchanged" 50 (P.cycle base);
  Alcotest.(check int)
    "base signature unchanged" sig_before (P.signature_id base);
  Alcotest.(check int) "edited engine starts at 0" 0 (P.cycle edited)

(* ------------------------------------------------------------------ *)
(* Cone structure.                                                      *)

let test_cone_structure () =
  let net = G.chain ~n_shells:4 () in
  let t = P.create net in
  let edges = Net.edges net in
  let n_edges = Net.n_edges net in
  List.iter
    (fun (e : Net.edge) ->
      let c = P.Cone.of_edge t e.id in
      Alcotest.(check int) "site" e.id (P.Cone.site c);
      Alcotest.(check bool)
        "cone contains its site" true
        (Bitvec.Bitset.get (P.Cone.edges c) e.id);
      Alcotest.(check bool)
        "rep is the minimum edge in the cone" true
        (P.Cone.rep c
        = List.fold_left min max_int
            (List.filter
               (Bitvec.Bitset.get (P.Cone.edges c))
               (List.init n_edges Fun.id)));
      Alcotest.(check int)
        "order covers the cone" (P.Cone.size c)
        (Array.length (P.Cone.order c));
      (* memoized: same structure back *)
      Alcotest.(check bool)
        "memo idempotent" true
        (P.Cone.of_edge t e.id == c))
    edges;
  (* a chain is totally ordered: the first edge reaches everything *)
  let head = P.Cone.of_edge t (List.hd edges).Net.id in
  Alcotest.(check int) "head cone spans the chain" n_edges (P.Cone.size head);
  (* a torus is one strongly connected fabric: every cone is everything,
     so every fault shares one rep *)
  let torus = G.torus ~n:3 ~m:3 () in
  let tt = P.create torus in
  let reps =
    List.sort_uniq compare
      (List.map
         (fun (e : Net.edge) -> P.Cone.rep (P.Cone.of_edge tt e.id))
         (Net.edges torus))
  in
  Alcotest.(check int) "torus: one cone class" 1 (List.length reps)

let test_lane_width_63 () =
  Alcotest.(check int) "max_lanes is the full word" Sys.int_size PL.max_lanes

let suite =
  [
    Alcotest.test_case "incremental = fast (static nets)" `Quick
      test_incr_matches_fast_static;
    Alcotest.test_case "incremental = fast (dynamic nets)" `Quick
      test_incr_matches_fast_dynamic;
    QCheck_alcotest.to_alcotest ~long:false prop_incr_matches_fast_random;
    Alcotest.test_case "driver: cone on = off = serial" `Quick
      test_driver_cone_on_off;
    Alcotest.test_case "resume lockstep with fresh compile" `Quick
      test_resume_lockstep;
    Alcotest.test_case "resume leaves the base engine alone" `Quick
      test_resume_base_untouched;
    Alcotest.test_case "cone structure and memoization" `Quick
      test_cone_structure;
    Alcotest.test_case "lane width covers the word" `Quick test_lane_width_63;
  ]
