(* The batch-analysis daemon: responses bit-identical to the one-shot
   emitters and independent of cache state, memoization observable in
   the batch statistics, LRU bounds respected, and the NoC-scale
   acceptance topology (a 64x64 mesh) served within the default
   signature capacity. *)

module J = Lidjson
module D = Serve.Daemon

let req ?(id = 1) ?(analysis = "throughput") ?(extras = []) gen =
  J.Obj
    ([
       ("id", J.Int id);
       ("generate", J.String gen);
       ("analysis", J.String analysis);
     ]
    @ extras)

let respond daemon requests = fst (D.process daemon requests)

let render rs = List.map J.to_string rs

(* ------------------------------------------------------------------ *)
(* Protocol basics. *)

let test_response_shape () =
  let daemon = D.create ~jobs:1 () in
  match respond daemon [ req ~id:42 "mesh 3 3" ] with
  | [ r ] ->
      Alcotest.(check bool) "ok" true (J.member "ok" r = Some (J.Bool true));
      Alcotest.(check bool) "echoes id" true (J.member "id" r = Some (J.Int 42));
      Alcotest.(check bool)
        "has topology_hash" true
        (match J.member "topology_hash" r with
        | Some (J.String h) -> String.length h = 16
        | _ -> false);
      Alcotest.(check bool)
        "reports jobs" true
        (J.member "jobs" r = Some (J.Int 1));
      Alcotest.(check bool)
        "throughput payload" true
        (match J.member "result" r with
        | Some payload ->
            J.member "system_throughput" payload = Some (J.Float 1.0)
        | None -> false)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

let test_errors () =
  let daemon = D.create ~jobs:1 () in
  let cases =
    [
      (J.String "not an object", "must be a JSON object");
      (J.Obj [ ("analysis", J.String "lint") ], "missing topology");
      ( J.Obj [ ("generate", J.String "mesh 2 2") ],
        "missing \"analysis\"" );
      ( J.Obj
          [
            ("generate", J.String "mesh 2 2");
            ("spec", J.String "source s");
            ("analysis", J.String "lint");
          ],
        "not both" );
      (req ~analysis:"frobnicate" "mesh 2 2", "unknown analysis");
      (req "mesh 0 3", "n, m >= 1");
      (req ~analysis:"equalize" "torus 2 2", "loops");
      ( J.Obj
          [
            ("spec", J.String "shell a nosuchpearl");
            ("analysis", J.String "lint");
          ],
        "unknown pearl" );
    ]
  in
  List.iter2
    (fun (input, fragment) r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: not ok" (J.to_string input))
        true
        (J.member "ok" r = Some (J.Bool false));
      match J.member "error" r with
      | Some (J.String m) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error mentions %S (got %S)" (J.to_string input)
               fragment m)
            true
            (Astring.String.is_infix ~affix:fragment m)
      | _ -> Alcotest.failf "%s: no error member" (J.to_string input))
    cases
    (respond daemon (List.map fst cases))

(* ------------------------------------------------------------------ *)
(* Bit-identity with the one-shot emitters. *)

let test_matches_one_shot_lint () =
  let daemon = D.create ~jobs:1 () in
  let gen = "soc 18 seed=4 loops=0.3" in
  let net = Topology.Spec.parse_exn ~allow_direct:true ("generate " ^ gen) in
  let oneshot = J.parse_exn (Lint.Checks.to_json (Lint.Checks.run net)) in
  match respond daemon [ req ~analysis:"lint" gen ] with
  | [ r ] ->
      Alcotest.(check string)
        "serve lint = lidtool lint --json" (J.to_string oneshot)
        (J.to_string (Option.get (J.member "result" r)))
  | _ -> Alcotest.fail "one response expected"

let test_matches_one_shot_inject () =
  let daemon = D.create ~jobs:1 () in
  let gen = "torus 2 2" in
  let extras = [ ("cycles", J.Int 64); ("sites", J.Int 2) ] in
  let net = Topology.Spec.parse_exn ("generate " ^ gen) in
  let config =
    {
      Fault.Campaign.default_config with
      Fault.Campaign.cycles = 64;
      max_sites_per_kind = 2;
    }
  in
  let lanes_used = ref 1 in
  let result =
    Campaign.Fault_driver.run ~jobs:1
      ~on_lanes:(fun n _ -> lanes_used := n)
      config net
  in
  let oneshot =
    J.parse_exn (Fault.Campaign.json ~jobs:1 ~lanes_used:!lanes_used result)
  in
  match respond daemon [ req ~analysis:"inject" ~extras gen ] with
  | [ r ] ->
      Alcotest.(check string)
        "serve inject = lidtool inject --json" (J.to_string oneshot)
        (J.to_string (Option.get (J.member "result" r)))
  | _ -> Alcotest.fail "one response expected"

(* ------------------------------------------------------------------ *)
(* Memoization. *)

let test_cache_hits () =
  let daemon = D.create ~jobs:1 () in
  let batch =
    [
      req ~id:1 "mesh 3 3";
      req ~id:2 ~analysis:"lint" ~extras:[ ("gate", J.Bool false) ] "mesh 3 3";
      (* in-batch duplicate of request 1 under a different id *)
      req ~id:3 "mesh 3 3";
    ]
  in
  let first, s1 = D.process daemon batch in
  Alcotest.(check int) "first pass misses" 2 s1.D.misses;
  Alcotest.(check int) "first pass hits" 1 s1.D.hits;
  let second, s2 = D.process daemon batch in
  Alcotest.(check int) "second pass misses" 0 s2.D.misses;
  Alcotest.(check int) "second pass hits" 3 s2.D.hits;
  Alcotest.(check (list string))
    "responses independent of cache state" (render first) (render second);
  (* the duplicate differs from its twin only in the echoed id *)
  match first with
  | [ a; _; c ] ->
      let strip r =
        match r with
        | J.Obj kvs -> J.Obj (List.filter (fun (k, _) -> k <> "id") kvs)
        | r -> r
      in
      Alcotest.(check string)
        "duplicate answered identically"
        (J.to_string (strip a))
        (J.to_string (strip c))
  | _ -> Alcotest.fail "three responses expected"

let test_distinct_params_distinct_slots () =
  let daemon = D.create ~jobs:1 () in
  let _, s =
    D.process daemon
      [
        req ~id:1 ~analysis:"lint" ~extras:[ ("gate", J.Bool false) ] "mesh 2 2";
        req ~id:2 ~analysis:"lint" ~extras:[ ("gate", J.Bool true) ] "mesh 2 2";
        req ~id:3
          ~extras:[ ("flavour", J.String "original") ]
          "mesh 2 2";
        req ~id:4 "mesh 2 2";
      ]
  in
  Alcotest.(check int) "four distinct memo keys" 4 s.D.misses

let test_lru_bound () =
  let daemon = D.create ~jobs:1 ~result_capacity:1 () in
  let a = req ~id:1 "mesh 2 2" and b = req ~id:2 "mesh 2 3" in
  ignore (D.process daemon [ a ]);
  ignore (D.process daemon [ b ]);
  (* capacity 1: b evicted a, so a misses again *)
  let _, s = D.process daemon [ a ] in
  Alcotest.(check int) "evicted entry recomputed" 1 s.D.misses

(* equal networks written differently key the same slot *)
let test_canonical_hash () =
  let daemon = D.create ~jobs:1 () in
  let inline =
    Topology.Spec.print (Topology.Spec.parse_exn "generate mesh 2 2")
  in
  let batch =
    [
      req ~id:1 "mesh 2 2";
      J.Obj
        [
          ("id", J.Int 2);
          ("spec", J.String inline);
          ("analysis", J.String "throughput");
        ];
    ]
  in
  let responses, s = D.process daemon batch in
  Alcotest.(check int) "one compute for both spellings" 1 s.D.misses;
  match List.map (fun r -> J.member "topology_hash" r) responses with
  | [ Some a; Some b ] ->
      Alcotest.(check string) "same hash" (J.to_string a) (J.to_string b)
  | _ -> Alcotest.fail "hashes expected"

(* ------------------------------------------------------------------ *)
(* Latency edits and incremental recompilation. *)

let edit_spec =
  "source src\n\
   shell  A identity\n\
   sink   out\n\
   src.0 -> A.0 : full\n\
   A.0 -> out.0 : full\n"

let spec_req ?(id = 1) ?(analysis = "throughput") ?(extras = []) spec =
  J.Obj
    ([
       ("id", J.Int id);
       ("spec", J.String spec);
       ("analysis", J.String analysis);
     ]
    @ extras)

let edits_member pairs =
  ( "edits",
    J.List
      (List.map
         (fun (c, l) ->
           J.Obj [ ("channel", J.String c); ("latency", J.String l) ])
         pairs) )

let strip_id r =
  match r with
  | J.Obj kvs -> J.Obj (List.filter (fun (k, _) -> k <> "id") kvs)
  | r -> r

let test_edits_equal_inline_spec () =
  (* an edited request and an inline spec carrying the same profile are
     the same analysis: one canonical, one memo slot, one answer *)
  let daemon = D.create ~jobs:1 () in
  let net = Topology.Spec.parse_exn edit_spec in
  let edge = List.hd (Topology.Network.edges net) in
  let inline =
    Topology.Spec.print
      (Topology.Network.with_latency net edge.Topology.Network.id
         (Some (Lid.Latency.Fixed 2)))
  in
  let batch =
    [
      spec_req ~id:1
        ~extras:[ edits_member [ ("src.0->A.0", "fixed:2") ] ]
        edit_spec;
      spec_req ~id:2 inline;
    ]
  in
  let responses, s = D.process daemon batch in
  Alcotest.(check int) "one compute for both spellings" 1 s.D.misses;
  match responses with
  | [ a; b ] ->
      Alcotest.(check string)
        "identical answers"
        (J.to_string (strip_id a))
        (J.to_string (strip_id b))
  | _ -> Alcotest.fail "two responses expected"

let test_edits_resume_pooled_engine () =
  let daemon = D.create ~jobs:1 () in
  let edited =
    spec_req ~id:2
      ~extras:
        [ edits_member [ ("src.0->A.0", "table:0,2,1"); ("A.0->out.0", "none") ] ]
      edit_spec
  in
  (* 1: the unedited analysis pools a compiled engine; nothing reused *)
  let r1, s1 = D.process daemon [ spec_req ~id:1 edit_spec ] in
  Alcotest.(check bool) "cold batch: no reuse" false s1.D.cone_reuse;
  (* 2: the edited analysis finds that engine and resumes it *)
  let r2, s2 = D.process daemon [ edited ] in
  Alcotest.(check int) "edited key is a distinct slot" 1 s2.D.misses;
  Alcotest.(check bool) "resumed a pooled compilation" true s2.D.cone_reuse;
  let base_hash =
    match r1 with
    | [ r ] -> (
        match J.member "topology_hash" r with
        | Some (J.String h) -> h
        | _ -> Alcotest.fail "base hash expected")
    | _ -> Alcotest.fail "one response expected"
  in
  Alcotest.(check (option string))
    "stats name the reused compilation" (Some base_hash)
    s2.D.reused_compilation;
  let stats_line = D.stats_json daemon s2 in
  Alcotest.(check bool)
    "stats line reports the reuse" true
    (Astring.String.is_infix ~affix:"\"cone_reuse\": true" stats_line
    && Astring.String.is_infix ~affix:"\"reused_compilation\"" stats_line);
  (* the resumed answer is byte-identical to a cold daemon's *)
  let cold = D.create ~jobs:1 () in
  let r2', s2' = D.process cold [ edited ] in
  Alcotest.(check bool) "cold daemon resumes nothing" false s2'.D.cone_reuse;
  Alcotest.(check (list string))
    "resumed = compiled from scratch" (render r2') (render r2);
  (* 3: the edited engine is pooled under its own key now — a repeat
     batch with a fresh analysis parameter reuses it as-is *)
  let r3, s3 =
    D.process daemon
      [
        spec_req ~id:3
          ~extras:
            [
              edits_member
                [ ("src.0->A.0", "table:0,2,1"); ("A.0->out.0", "none") ];
              ("max_cycles", J.Int 512);
            ]
          edit_spec;
      ]
  in
  Alcotest.(check int) "distinct params recompute" 1 s3.D.misses;
  Alcotest.(check bool) "no resume needed this time" false s3.D.cone_reuse;
  match (r2, r3) with
  | [ a ], [ b ] ->
      Alcotest.(check bool)
        "same steady state either way" true
        (J.member "result" a = J.member "result" b)
  | _ -> Alcotest.fail "one response each expected"

let test_edits_errors () =
  let daemon = D.create ~jobs:1 () in
  let cases =
    [
      ( spec_req ~extras:[ ("edits", J.String "nope") ] edit_spec,
        "must be an array" );
      ( spec_req ~extras:[ ("edits", J.List [ J.Int 3 ]) ] edit_spec,
        "must be an object" );
      ( spec_req
          ~extras:
            [
              ( "edits",
                J.List [ J.Obj [ ("latency", J.String "fixed:1") ] ] );
            ]
          edit_spec,
        "needs a \"channel\"" );
      ( spec_req
          ~extras:[ edits_member [ ("src.0->A.0", "warp:9") ] ]
          edit_spec,
        "bad latency profile" );
      ( spec_req
          ~extras:[ edits_member [ ("src.9->A.9", "fixed:1") ] ]
          edit_spec,
        "unknown channel" );
    ]
  in
  List.iter2
    (fun (_input, fragment) r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: not ok" fragment)
        true
        (J.member "ok" r = Some (J.Bool false));
      match J.member "error" r with
      | Some (J.String m) ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %S (got %S)" fragment m)
            true
            (Astring.String.is_infix ~affix:fragment m)
      | _ -> Alcotest.fail "no error member")
    cases
    (respond daemon (List.map fst cases))

(* ------------------------------------------------------------------ *)
(* Concurrent socket clients. *)

let test_socket_concurrent_clients () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lid-serve-%d.sock" (Unix.getpid ()))
  in
  let daemon = D.create ~jobs:2 () in
  let server =
    Domain.spawn (fun () -> D.serve_socket ~connections:3 daemon path)
  in
  let rec await n =
    if not (Sys.file_exists path) then
      if n = 0 then Alcotest.fail "socket never appeared"
      else (
        Unix.sleepf 0.01;
        await (n - 1))
  in
  await 500;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let ask (ic, oc) request =
    output_string oc (J.to_string request);
    output_char oc '\n';
    flush oc;
    J.parse_exn (input_line ic)
  in
  let reference = D.create ~jobs:2 () in
  let expect request =
    match fst (D.process reference [ request ]) with
    | [ r ] -> J.to_string r
    | _ -> Alcotest.fail "one reference response expected"
  in
  let check_answer label conn request =
    Alcotest.(check string) label (expect request) (J.to_string (ask conn request))
  in
  (* two clients live at once (the daemon's bound), interleaved *)
  let c1 = connect () and c2 = connect () in
  check_answer "c2 first" c2 (req ~id:21 "mesh 2 2");
  check_answer "c1 interleaved" c1 (req ~id:11 "mesh 2 3");
  check_answer "c1 again" c1 (req ~id:12 ~analysis:"lint" "mesh 2 3");
  check_answer "c2 cached twin" c2 (req ~id:22 "mesh 2 3");
  close_out (snd c1);
  (* a third client takes the freed slot *)
  let c3 = connect () in
  check_answer "c3 after a slot freed" c3 (req ~id:31 "mesh 2 2");
  close_out (snd c2);
  close_out (snd c3);
  Domain.join server;
  Alcotest.(check bool) "socket unlinked on exit" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* The NoC-scale acceptance topology. *)

let test_mesh_64 () =
  let daemon = D.create ~jobs:1 () in
  let batch =
    [
      req ~id:1 ~analysis:"lint" ~extras:[ ("gate", J.Bool false) ] "mesh 64 64";
      req ~id:2 "mesh 64 64";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "64x64 mesh served" true
        (J.member "ok" r = Some (J.Bool true)))
    (respond daemon batch)

let suite =
  [
    Alcotest.test_case "response shape" `Quick test_response_shape;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "matches one-shot lint" `Quick test_matches_one_shot_lint;
    Alcotest.test_case "matches one-shot inject" `Quick
      test_matches_one_shot_inject;
    Alcotest.test_case "cache hits" `Quick test_cache_hits;
    Alcotest.test_case "distinct params, distinct slots" `Quick
      test_distinct_params_distinct_slots;
    Alcotest.test_case "LRU bound" `Quick test_lru_bound;
    Alcotest.test_case "canonical hash" `Quick test_canonical_hash;
    Alcotest.test_case "edits = inline spec" `Quick test_edits_equal_inline_spec;
    Alcotest.test_case "edits resume a pooled engine" `Quick
      test_edits_resume_pooled_engine;
    Alcotest.test_case "edit errors" `Quick test_edits_errors;
    Alcotest.test_case "concurrent socket clients" `Quick
      test_socket_concurrent_clients;
    Alcotest.test_case "64x64 mesh" `Slow test_mesh_64;
  ]
