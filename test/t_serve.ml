(* The batch-analysis daemon: responses bit-identical to the one-shot
   emitters and independent of cache state, memoization observable in
   the batch statistics, LRU bounds respected, and the NoC-scale
   acceptance topology (a 64x64 mesh) served within the default
   signature capacity. *)

module J = Lidjson
module D = Serve.Daemon

let req ?(id = 1) ?(analysis = "throughput") ?(extras = []) gen =
  J.Obj
    ([
       ("id", J.Int id);
       ("generate", J.String gen);
       ("analysis", J.String analysis);
     ]
    @ extras)

let respond daemon requests = fst (D.process daemon requests)

let render rs = List.map J.to_string rs

(* ------------------------------------------------------------------ *)
(* Protocol basics. *)

let test_response_shape () =
  let daemon = D.create ~jobs:1 () in
  match respond daemon [ req ~id:42 "mesh 3 3" ] with
  | [ r ] ->
      Alcotest.(check bool) "ok" true (J.member "ok" r = Some (J.Bool true));
      Alcotest.(check bool) "echoes id" true (J.member "id" r = Some (J.Int 42));
      Alcotest.(check bool)
        "has topology_hash" true
        (match J.member "topology_hash" r with
        | Some (J.String h) -> String.length h = 16
        | _ -> false);
      Alcotest.(check bool)
        "reports jobs" true
        (J.member "jobs" r = Some (J.Int 1));
      Alcotest.(check bool)
        "throughput payload" true
        (match J.member "result" r with
        | Some payload ->
            J.member "system_throughput" payload = Some (J.Float 1.0)
        | None -> false)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

let test_errors () =
  let daemon = D.create ~jobs:1 () in
  let cases =
    [
      (J.String "not an object", "must be a JSON object");
      (J.Obj [ ("analysis", J.String "lint") ], "missing topology");
      ( J.Obj [ ("generate", J.String "mesh 2 2") ],
        "missing \"analysis\"" );
      ( J.Obj
          [
            ("generate", J.String "mesh 2 2");
            ("spec", J.String "source s");
            ("analysis", J.String "lint");
          ],
        "not both" );
      (req ~analysis:"frobnicate" "mesh 2 2", "unknown analysis");
      (req "mesh 0 3", "n, m >= 1");
      (req ~analysis:"equalize" "torus 2 2", "loops");
      ( J.Obj
          [
            ("spec", J.String "shell a nosuchpearl");
            ("analysis", J.String "lint");
          ],
        "unknown pearl" );
    ]
  in
  List.iter2
    (fun (input, fragment) r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: not ok" (J.to_string input))
        true
        (J.member "ok" r = Some (J.Bool false));
      match J.member "error" r with
      | Some (J.String m) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error mentions %S (got %S)" (J.to_string input)
               fragment m)
            true
            (Astring.String.is_infix ~affix:fragment m)
      | _ -> Alcotest.failf "%s: no error member" (J.to_string input))
    cases
    (respond daemon (List.map fst cases))

(* ------------------------------------------------------------------ *)
(* Bit-identity with the one-shot emitters. *)

let test_matches_one_shot_lint () =
  let daemon = D.create ~jobs:1 () in
  let gen = "soc 18 seed=4 loops=0.3" in
  let net = Topology.Spec.parse_exn ~allow_direct:true ("generate " ^ gen) in
  let oneshot = J.parse_exn (Lint.Checks.to_json (Lint.Checks.run net)) in
  match respond daemon [ req ~analysis:"lint" gen ] with
  | [ r ] ->
      Alcotest.(check string)
        "serve lint = lidtool lint --json" (J.to_string oneshot)
        (J.to_string (Option.get (J.member "result" r)))
  | _ -> Alcotest.fail "one response expected"

let test_matches_one_shot_inject () =
  let daemon = D.create ~jobs:1 () in
  let gen = "torus 2 2" in
  let extras = [ ("cycles", J.Int 64); ("sites", J.Int 2) ] in
  let net = Topology.Spec.parse_exn ("generate " ^ gen) in
  let config =
    {
      Fault.Campaign.default_config with
      Fault.Campaign.cycles = 64;
      max_sites_per_kind = 2;
    }
  in
  let lanes_used = ref 1 in
  let result =
    Campaign.Fault_driver.run ~jobs:1
      ~on_lanes:(fun n _ -> lanes_used := n)
      config net
  in
  let oneshot =
    J.parse_exn (Fault.Campaign.json ~jobs:1 ~lanes_used:!lanes_used result)
  in
  match respond daemon [ req ~analysis:"inject" ~extras gen ] with
  | [ r ] ->
      Alcotest.(check string)
        "serve inject = lidtool inject --json" (J.to_string oneshot)
        (J.to_string (Option.get (J.member "result" r)))
  | _ -> Alcotest.fail "one response expected"

(* ------------------------------------------------------------------ *)
(* Memoization. *)

let test_cache_hits () =
  let daemon = D.create ~jobs:1 () in
  let batch =
    [
      req ~id:1 "mesh 3 3";
      req ~id:2 ~analysis:"lint" ~extras:[ ("gate", J.Bool false) ] "mesh 3 3";
      (* in-batch duplicate of request 1 under a different id *)
      req ~id:3 "mesh 3 3";
    ]
  in
  let first, s1 = D.process daemon batch in
  Alcotest.(check int) "first pass misses" 2 s1.D.misses;
  Alcotest.(check int) "first pass hits" 1 s1.D.hits;
  let second, s2 = D.process daemon batch in
  Alcotest.(check int) "second pass misses" 0 s2.D.misses;
  Alcotest.(check int) "second pass hits" 3 s2.D.hits;
  Alcotest.(check (list string))
    "responses independent of cache state" (render first) (render second);
  (* the duplicate differs from its twin only in the echoed id *)
  match first with
  | [ a; _; c ] ->
      let strip r =
        match r with
        | J.Obj kvs -> J.Obj (List.filter (fun (k, _) -> k <> "id") kvs)
        | r -> r
      in
      Alcotest.(check string)
        "duplicate answered identically"
        (J.to_string (strip a))
        (J.to_string (strip c))
  | _ -> Alcotest.fail "three responses expected"

let test_distinct_params_distinct_slots () =
  let daemon = D.create ~jobs:1 () in
  let _, s =
    D.process daemon
      [
        req ~id:1 ~analysis:"lint" ~extras:[ ("gate", J.Bool false) ] "mesh 2 2";
        req ~id:2 ~analysis:"lint" ~extras:[ ("gate", J.Bool true) ] "mesh 2 2";
        req ~id:3
          ~extras:[ ("flavour", J.String "original") ]
          "mesh 2 2";
        req ~id:4 "mesh 2 2";
      ]
  in
  Alcotest.(check int) "four distinct memo keys" 4 s.D.misses

let test_lru_bound () =
  let daemon = D.create ~jobs:1 ~result_capacity:1 () in
  let a = req ~id:1 "mesh 2 2" and b = req ~id:2 "mesh 2 3" in
  ignore (D.process daemon [ a ]);
  ignore (D.process daemon [ b ]);
  (* capacity 1: b evicted a, so a misses again *)
  let _, s = D.process daemon [ a ] in
  Alcotest.(check int) "evicted entry recomputed" 1 s.D.misses

(* equal networks written differently key the same slot *)
let test_canonical_hash () =
  let daemon = D.create ~jobs:1 () in
  let inline =
    Topology.Spec.print (Topology.Spec.parse_exn "generate mesh 2 2")
  in
  let batch =
    [
      req ~id:1 "mesh 2 2";
      J.Obj
        [
          ("id", J.Int 2);
          ("spec", J.String inline);
          ("analysis", J.String "throughput");
        ];
    ]
  in
  let responses, s = D.process daemon batch in
  Alcotest.(check int) "one compute for both spellings" 1 s.D.misses;
  match List.map (fun r -> J.member "topology_hash" r) responses with
  | [ Some a; Some b ] ->
      Alcotest.(check string) "same hash" (J.to_string a) (J.to_string b)
  | _ -> Alcotest.fail "hashes expected"

(* ------------------------------------------------------------------ *)
(* The NoC-scale acceptance topology. *)

let test_mesh_64 () =
  let daemon = D.create ~jobs:1 () in
  let batch =
    [
      req ~id:1 ~analysis:"lint" ~extras:[ ("gate", J.Bool false) ] "mesh 64 64";
      req ~id:2 "mesh 64 64";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "64x64 mesh served" true
        (J.member "ok" r = Some (J.Bool true)))
    (respond daemon batch)

let suite =
  [
    Alcotest.test_case "response shape" `Quick test_response_shape;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "matches one-shot lint" `Quick test_matches_one_shot_lint;
    Alcotest.test_case "matches one-shot inject" `Quick
      test_matches_one_shot_inject;
    Alcotest.test_case "cache hits" `Quick test_cache_hits;
    Alcotest.test_case "distinct params, distinct slots" `Quick
      test_distinct_params_distinct_slots;
    Alcotest.test_case "LRU bound" `Quick test_lru_bound;
    Alcotest.test_case "canonical hash" `Quick test_canonical_hash;
    Alcotest.test_case "64x64 mesh" `Slow test_mesh_64;
  ]
