let () =
  Alcotest.run "lid-repro"
    [
      ("bits", T_bits.suite);
      ("hdl", T_hdl.suite);
      ("sim", T_sim.suite);
      ("emit", T_emit.suite);
      ("core", T_core.suite);
      ("relay-station", T_relay_station.suite);
      ("shell", T_shell.suite);
      ("rtl-gen", T_rtl_gen.suite);
      ("pattern", T_pattern.suite);
      ("network", T_network.suite);
      ("classify", T_classify.suite);
      ("elastic", T_elastic.suite);
      ("analysis", T_analysis.suite);
      ("engine", T_engine.suite);
      ("measure-equiv", T_measure_equiv.suite);
      ("packed", T_packed.suite);
      ("lanes", T_lanes.suite);
      ("campaign", T_campaign.suite);
      ("cone", T_cone.suite);
      ("verify", T_verify.suite);
      ("cure-trace", T_cure_trace.suite);
      ("rtl-net", T_rtl_net.suite);
      ("spec", T_spec.suite);
      ("floorplan", T_floorplan.suite);
      ("simplify", T_simplify.suite);
      ("protocol-invariants", T_protocol_invariants.suite);
      ("relay-chain", T_relay_chain.suite);
      ("fault", T_fault.suite);
      ("bdd-symbolic", T_bdd.suite);
      ("lint", T_lint.suite);
      ("scale", T_scale.suite);
      ("json", T_json.suite);
      ("generators", T_generators.suite);
      ("serve", T_serve.suite);
    ]
