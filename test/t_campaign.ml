(* The campaign layer's one load-bearing property is determinism: a
   parallel run must be bit-identical to the serial one for every [jobs],
   merge order must follow input order, and a raised exception must be
   the one of the lowest failing index.  All of that is observable even
   on a single core, since the domains still really run. *)

module G = Topology.Generators
module P = Campaign.Parallel

let test_map_matches_list_map () =
  let xs = List.init 57 Fun.id in
  let f x = (x * x) - (3 * x) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map ~jobs:%d = List.map" jobs)
        (List.map f xs)
        (P.map ~jobs f xs))
    [ 1; 2; 4; 7 ]

let test_map_order_under_uneven_work () =
  (* give early items the heaviest work so a naive "fastest first" merge
     would come back rotated *)
  let xs = List.init 24 Fun.id in
  let f x =
    let spin = (24 - x) * 10_000 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := !acc + (i mod 7)
    done;
    (x, !acc land 1)
  in
  Alcotest.(check (list (pair int int)))
    "input order survives uneven work" (List.map f xs) (P.map ~jobs:4 f xs)

exception Boom of int

let test_map_exception_lowest_index () =
  let xs = List.init 30 Fun.id in
  let f x = if x mod 11 = 5 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match P.map ~jobs f xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "lowest failing index wins (jobs %d)" jobs)
            5 i)
    [ 1; 3; 8 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (P.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (P.map ~jobs:4 Fun.id [ 9 ])


let test_fault_driver_matches_serial () =
  let rng = Random.State.make [| 0x5e; 0xed |] in
  let net = G.random_loopy ~rng ~n_shells:8 ~extra_back_edges:2 () in
  let config =
    {
      Fault.Campaign.default_config with
      seed = 23;
      cycles = 120;
      max_sites_per_kind = 3;
    }
  in
  let serial = Fault.Campaign.run config net in
  Alcotest.(check bool)
    "campaign exercises several faults"
    true
    (List.length serial.Fault.Campaign.reports >= 6);
  List.iter
    (fun jobs ->
      let par = Campaign.Fault_driver.run ~jobs config net in
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d bit-identical to serial" jobs)
        true
        (serial.Fault.Campaign.reports = par.Fault.Campaign.reports))
    [ 1; 2; 5 ]

let test_fault_driver_on_report_order () =
  let net = G.fig1 () in
  let config =
    { Fault.Campaign.default_config with seed = 7; cycles = 80 }
  in
  let seen = ref [] in
  let r =
    Campaign.Fault_driver.run ~jobs:4
      ~on_report:(fun rep -> seen := rep.Fault.Classify.fault :: !seen)
      config net
  in
  Alcotest.(check bool)
    "on_report follows campaign order" true
    (List.map
       (fun (rep : Fault.Classify.report) -> rep.fault)
       r.Fault.Campaign.reports
    = List.rev !seen)

let test_sweep_order_and_agreement () =
  let nets =
    List.map
      (fun n -> (Printf.sprintf "chain-%d" n, G.chain ~n_shells:n ()))
      [ 3; 6; 9; 12 ]
  in
  let serial = Campaign.Sweep.measure ~jobs:1 nets in
  let par = Campaign.Sweep.measure ~jobs:4 nets in
  Alcotest.(check (list string))
    "labels in input order"
    (List.map fst nets)
    (List.map (fun (e : Campaign.Sweep.entry) -> e.label) par);
  List.iter2
    (fun (a : Campaign.Sweep.entry) (b : Campaign.Sweep.entry) ->
      match (a.report, b.report) with
      | Some ra, Some rb ->
          Alcotest.(check bool)
            ("reports agree for " ^ a.label)
            true
            (ra.transient = rb.transient && ra.period = rb.period
            && ra.node_throughput = rb.node_throughput)
      | _ -> Alcotest.fail ("no steady state for " ^ a.label))
    serial par

let suite =
  [
    Alcotest.test_case "parallel map = sequential map" `Quick
      test_map_matches_list_map;
    Alcotest.test_case "merge order under uneven work" `Quick
      test_map_order_under_uneven_work;
    Alcotest.test_case "exception of lowest index" `Quick
      test_map_exception_lowest_index;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_map_empty_and_singleton;
    Alcotest.test_case "fault campaign: parallel = serial" `Quick
      test_fault_driver_matches_serial;
    Alcotest.test_case "fault campaign: on_report order" `Quick
      test_fault_driver_on_report_order;
    Alcotest.test_case "sweep: order and agreement" `Quick
      test_sweep_order_and_agreement;
  ]
