(* The shared JSON kit: escaping that real parsers accept (the bug the
   %S-based emitters had), printer/parser round-trips, and the emitters
   that embed user-controlled names surviving adversarial input. *)

module J = Lidjson
module Net = Topology.Network

(* ------------------------------------------------------------------ *)
(* Escaping. *)

let test_escape_table () =
  List.iter
    (fun (raw, quoted) ->
      Alcotest.(check string) (Printf.sprintf "quote %S" raw) quoted (J.quote raw))
    [
      ("", {|""|});
      ("plain", {|"plain"|});
      ("with \"quotes\"", {|"with \"quotes\""|});
      ("back\\slash", {|"back\\slash"|});
      ("line\nbreak", {|"line\nbreak"|});
      ("tab\there", {|"tab\there"|});
      ("\r\b\012", {|"\r\b\f"|});
      (* control bytes that have no short escape become \u00XX — the
         case OCaml's %S renders as decimal \007, which JSON rejects *)
      ("\007", "\"\\u0007\"");
      ("\000", "\"\\u0000\"");
      (* raw UTF-8 passes through untouched *)
      ("caf\xc3\xa9", "\"caf\xc3\xa9\"");
    ]

let prop_quote_parses_back =
  QCheck.Test.make ~name:"parse (quote s) = String s for arbitrary bytes"
    ~count:1000
    QCheck.(string_gen (Gen.char_range '\000' '\255'))
    (fun s ->
      match J.parse (J.quote s) with
      | Ok (J.String s') -> s' = s
      | Ok _ | Error _ -> false)

(* %S and the JSON escaper agree on the printable-ASCII subset the
   existing emitters were exercising — the escaper swap could not have
   changed any previously-valid output. *)
let prop_printable_ascii_matches_caml =
  QCheck.Test.make ~name:"quote = %S on printable ASCII" ~count:500
    QCheck.(string_gen (Gen.char_range ' ' '~'))
    (fun s -> J.quote s = Printf.sprintf "%S" s)

(* ------------------------------------------------------------------ *)
(* Value round-trips. *)

let rec value_gen depth =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun n -> J.Int n) small_signed_int;
        map (fun f -> J.Float f) (float_bound_inclusive 1e6);
        map (fun s -> J.String s) (string_size (int_bound 12));
      ]
  in
  if depth = 0 then scalar
  else
    oneof
      [
        scalar;
        map (fun l -> J.List l) (list_size (int_bound 4) (value_gen (depth - 1)));
        map
          (fun l -> J.Obj l)
          (list_size (int_bound 4)
             (pair (string_size (int_bound 8)) (value_gen (depth - 1))));
      ]

let prop_value_roundtrip =
  QCheck.Test.make ~name:"parse (to_string v) = v" ~count:500
    (QCheck.make (value_gen 3))
    (fun v -> J.parse (J.to_string v) = Ok v)

let test_parse_escapes () =
  List.iter
    (fun (text, expect) ->
      match J.parse text with
      | Ok v -> Alcotest.(check string) text expect (J.to_string v)
      | Error m -> Alcotest.failf "%s: %s" text m)
    [
      ({|"Aé"|}, "\"A\xc3\xa9\"");
      (* surrogate pair: U+1F600 *)
      ({|"😀"|}, "\"\xf0\x9f\x98\x80\"");
      ({|[1, -2.5, true, null]|}, "[1, -2.5, true, null]");
    ]

let test_parse_rejects () =
  List.iter
    (fun text ->
      match J.parse text with
      | Ok _ -> Alcotest.failf "%s: should not parse" text
      | Error _ -> ())
    [ ""; "{"; {|"\q"|}; "[1,]"; "{1: 2}"; "tru"; "1 2"; {|"\123"|} ]

(* ------------------------------------------------------------------ *)
(* Emitters under adversarial node names.  These networks carry names
   with quotes, newlines, control bytes and UTF-8; every JSON document
   the toolkit emits about them must still parse. *)

let nasty_names =
  [ "a\"b"; "line\nbreak"; "bell\007"; "caf\xc3\xa9"; "back\\slash" ]

let nasty_ring () =
  let b = Net.builder () in
  let shells =
    List.map (fun name -> Net.add_shell b ~name (Lid.Pearl.identity ())) nasty_names
  in
  let rec wire = function
    | a :: (c :: _ as rest) ->
        ignore
          (Net.connect b
             ~stations:[ Lid.Relay_station.Full; Lid.Relay_station.Full ]
             ~src:(a, 0) ~dst:(c, 0) ());
        wire rest
    | [ last ] ->
        ignore
          (Net.connect b
             ~stations:[ Lid.Relay_station.Full; Lid.Relay_station.Full ]
             ~src:(last, 0) ~dst:(List.hd shells, 0) ())
    | [] -> ()
  in
  wire shells;
  Net.build b

let test_lint_json_nasty_names () =
  (* the over-stationed ring throttles below 1, so the diagnostics
     mention the loop through every adversarial name *)
  let report = Lint.Checks.run ~gate:false (nasty_ring ()) in
  Alcotest.(check bool)
    "produces diagnostics" true
    (report.Lint.Checks.diagnostics <> []);
  match J.parse (Lint.Checks.to_json report) with
  | Ok v ->
      let rendered = J.to_string v in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "mentions %S" name)
            true
            (Astring.String.is_infix ~affix:(J.to_string (J.String name))
               rendered))
        [ "a\"b"; "line\nbreak" ]
  | Error m -> Alcotest.failf "lint JSON does not parse: %s" m

let test_campaign_json_nasty_names () =
  let net = nasty_ring () in
  let config =
    {
      Fault.Campaign.default_config with
      Fault.Campaign.cycles = 64;
      max_sites_per_kind = 2;
    }
  in
  let result = Campaign.Fault_driver.run ~jobs:1 config net in
  match J.parse (Fault.Campaign.json ~jobs:1 ~lanes_used:1 result) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "campaign JSON does not parse: %s" m

let suite =
  [
    Alcotest.test_case "escape table" `Quick test_escape_table;
    Alcotest.test_case "parse escapes" `Quick test_parse_escapes;
    Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
    Alcotest.test_case "lint JSON, adversarial names" `Quick
      test_lint_json_nasty_names;
    Alcotest.test_case "campaign JSON, adversarial names" `Quick
      test_campaign_json_nasty_names;
    QCheck_alcotest.to_alcotest prop_quote_parses_back;
    QCheck_alcotest.to_alcotest prop_printable_ascii_matches_caml;
    QCheck_alcotest.to_alcotest prop_value_roundtrip;
  ]
