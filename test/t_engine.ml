module Eng = Skeleton.Engine
module G = Topology.Generators
module Token = Lid.Token

let test_fig1_headline () =
  (* the paper's Fig. 1 numbers: period 5, one void per period, T = 4/5 *)
  let engine = Eng.create (G.fig1 ()) in
  match Skeleton.Measure.analyze engine with
  | Some r ->
      Alcotest.(check int) "period" 5 r.period;
      Alcotest.(check (float 1e-9)) "throughput" 0.8
        (Skeleton.Measure.system_throughput r);
      Alcotest.(check bool) "live" false r.deadlocked
  | None -> Alcotest.fail "no steady state"

let test_fig1_output_pattern () =
  (* after the transient, exactly one void reaches the sink every 5 cycles *)
  let engine = Eng.create (G.fig1 ()) in
  Eng.run engine ~cycles:20 (* skip transient *);
  let before = Eng.sink_count engine 4 in
  Eng.run engine ~cycles:25;
  Alcotest.(check int) "20 tokens in 25 cycles" (before + 20) (Eng.sink_count engine 4)

let test_fig2_headline () =
  let engine = Eng.create (G.fig2 ()) in
  match Skeleton.Measure.analyze engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "T = 1/2" 0.5
        (Skeleton.Measure.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_chain_full_throughput () =
  let engine = Eng.create (G.chain ~n_shells:5 ()) in
  Eng.run engine ~cycles:100;
  (* after warmup the sink receives one token per cycle *)
  let before = Eng.sink_count engine 6 in
  Eng.run engine ~cycles:50;
  Alcotest.(check int) "50 tokens in 50 cycles" (before + 50) (Eng.sink_count engine 6)

let test_values_in_order () =
  let engine = Eng.create (G.chain ~n_shells:3 ()) in
  Eng.run engine ~cycles:50;
  let vs = Eng.sink_values engine 4 in
  (* identity chain of a counter source: 0,1,2,... with the shells' initial
     zeros in front *)
  let rec strictly_monotone = function
    | a :: (b :: _ as rest) -> a <= b && strictly_monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (strictly_monotone vs);
  Alcotest.(check bool) "plenty arrived" true (List.length vs > 30)

let test_source_pattern_throttles () =
  let engine =
    Eng.create
      (G.chain ~n_shells:2
         ~source_pattern:(Topology.Pattern.periodic ~period:4 ~active:1 ())
         ())
  in
  match Skeleton.Measure.analyze engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "quarter rate" 0.25
        (Skeleton.Measure.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_sink_pattern_throttles () =
  let engine =
    Eng.create
      (G.chain ~n_shells:2
         ~sink_pattern:(Topology.Pattern.periodic ~period:2 ~active:1 ())
         ())
  in
  match Skeleton.Measure.analyze engine with
  | Some r ->
      Alcotest.(check (float 1e-9)) "half rate" 0.5
        (Skeleton.Measure.system_throughput r)
  | None -> Alcotest.fail "no steady state"

let test_no_token_lost_under_stalls () =
  (* brutal sink stall pattern; conservation: sink values = prefix of the
     monotone source sequence with shell initials in front *)
  let engine =
    Eng.create
      (G.chain ~n_shells:3
         ~sink_pattern:(Topology.Pattern.word [ true; true; false; true; false ])
         ())
  in
  Eng.run engine ~cycles:200;
  let vs = Eng.sink_values engine 4 in
  (* the shells' initial zeros arrive first, then the source's consecutive
     sequence (which itself starts at 0): nothing lost, nothing reordered *)
  let rec drop_zeros = function 0 :: rest -> drop_zeros rest | l -> l in
  let stream = drop_zeros vs in
  Alcotest.(check (list int)) "consecutive"
    (match stream with
    | [] -> []
    | first :: _ -> List.init (List.length stream) (fun i -> first + i))
    stream;
  Alcotest.(check bool) "many delivered" true (List.length vs > 60)

let test_reset () =
  let engine = Eng.create (G.fig1 ()) in
  Eng.run engine ~cycles:37;
  Eng.reset engine;
  Alcotest.(check int) "cycle 0" 0 (Eng.cycle engine);
  Alcotest.(check int) "sink cleared" 0 (Eng.sink_count engine 4);
  let sig0 = Eng.signature engine in
  let fresh = Eng.create (G.fig1 ()) in
  Alcotest.(check string) "same initial signature" (Eng.signature fresh) sig0

let test_signature_periodicity () =
  let engine = Eng.create (G.fig2 ()) in
  Eng.run engine ~cycles:2 (* transient 0, period 2 *);
  let s0 = Eng.signature engine in
  Eng.run engine ~cycles:2;
  Alcotest.(check string) "signature repeats with period" s0 (Eng.signature engine)

let test_combinational_stop_cycle_raises () =
  let b = Topology.Network.builder () in
  let a = Topology.Network.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let c = Topology.Network.add_shell b ~name:"c" (Lid.Pearl.identity ()) in
  let _ = Topology.Network.connect b ~stations:[] ~src:(a, 0) ~dst:(c, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(c, 0) ~dst:(a, 0) () in
  let net = Topology.Network.build ~allow_direct:true b in
  let engine = Eng.create net in
  Alcotest.(check bool) "raises" true
    (try
       Eng.step engine;
       false
     with Eng.Combinational_stop_cycle _ -> true)

let shell_loop ~stations =
  let b = Topology.Network.builder () in
  let a = Topology.Network.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let c = Topology.Network.add_shell b ~name:"c" (Lid.Pearl.identity ()) in
  let _ = Topology.Network.connect b ~stations ~src:(a, 0) ~dst:(c, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(c, 0) ~dst:(a, 0) () in
  Topology.Network.build ~allow_direct:true b

let test_combinational_stop_cycle_original () =
  (* the minimum-memory violation is flavour-independent *)
  let engine = Eng.create ~flavour:Lid.Protocol.Original (shell_loop ~stations:[]) in
  Alcotest.(check bool) "raises under original" true
    (try
       Eng.step engine;
       false
     with Eng.Combinational_stop_cycle _ -> true)

let test_station_breaks_stop_cycle () =
  (* one relay station anywhere on the loop registers the stop path, so the
     same topology becomes simulable — in both flavours *)
  List.iter
    (fun stations ->
      List.iter
        (fun flavour ->
          let engine = Eng.create ~flavour (shell_loop ~stations) in
          Eng.run engine ~cycles:50;
          Alcotest.(check int) "ran to 50" 50 (Eng.cycle engine))
        [ Lid.Protocol.Original; Lid.Protocol.Optimized ])
    [ [ Lid.Relay_station.Full ]; [ Lid.Relay_station.Half ] ]

let test_gated_vs_starved_back_pressure () =
  (* a stalling sink: every lost cycle of every shell is back-pressure *)
  let net =
    G.chain ~n_shells:2
      ~sink_pattern:(Topology.Pattern.periodic ~period:2 ~active:1 ())
      ()
  in
  let engine = Eng.create net in
  Eng.run engine ~cycles:100;
  List.iter
    (fun (n : Topology.Network.node) ->
      let f = Eng.fired_count engine n.id
      and g = Eng.gated_count engine n.id
      and s = Eng.starved_count engine n.id in
      Alcotest.(check int) "fired+gated+starved = cycles" 100 (f + g + s);
      Alcotest.(check bool) "gated ~half" true (g >= 40);
      Alcotest.(check bool) "starved only at startup" true (s <= 3))
    (Topology.Network.shells net)

let test_gated_vs_starved_starvation () =
  (* a throttled source: the same lost throughput, now attributed to
     starvation — no stop wave anywhere *)
  let net =
    G.chain ~n_shells:2
      ~source_pattern:(Topology.Pattern.periodic ~period:2 ~active:1 ())
      ()
  in
  let engine = Eng.create net in
  Eng.run engine ~cycles:100;
  List.iter
    (fun (n : Topology.Network.node) ->
      let f = Eng.fired_count engine n.id
      and g = Eng.gated_count engine n.id
      and s = Eng.starved_count engine n.id in
      Alcotest.(check int) "fired+gated+starved = cycles" 100 (f + g + s);
      Alcotest.(check bool) "starved ~half" true (s >= 40);
      Alcotest.(check int) "never gated" 0 g)
    (Topology.Network.shells net)

let test_direct_channel_resolution () =
  (* a station-less shell-to-shell channel is resolved combinationally when
     acyclic (allow_direct); behaviour matches having... the same stream *)
  let b = Topology.Network.builder () in
  let src = Topology.Network.add_source b ~name:"s" () in
  let s1 = Topology.Network.add_shell b ~name:"x" (Lid.Pearl.identity ()) in
  let s2 = Topology.Network.add_shell b ~name:"y" (Lid.Pearl.identity ()) in
  let snk = Topology.Network.add_sink b ~name:"k" () in
  let _ = Topology.Network.connect b ~src:(src, 0) ~dst:(s1, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(s1, 0) ~dst:(s2, 0) () in
  let _ = Topology.Network.connect b ~stations:[] ~src:(s2, 0) ~dst:(snk, 0) () in
  let net = Topology.Network.build ~allow_direct:true b in
  let engine = Eng.create net in
  Eng.run engine ~cycles:30;
  Alcotest.(check bool) "flows" true (Eng.sink_count engine snk > 20)

let test_flavours_same_steady_state_chain () =
  let t fl =
    let e = Eng.create ~flavour:fl (G.chain ~n_shells:3 ()) in
    match Skeleton.Measure.analyze e with
    | Some r -> Skeleton.Measure.system_throughput r
    | None -> nan
  in
  Alcotest.(check (float 1e-9)) "both reach 1" (t Lid.Protocol.Original)
    (t Lid.Protocol.Optimized)

let test_fig1_golden_stream () =
  (* the exact sink stream of the paper's Fig. 1 system over the first 21
     cycles: shells' initial zeros, the transient, then the 4-in-5 periodic
     regime of odd sums (A forks k to both branches, C adds k+k) *)
  let engine = Eng.create (G.fig1 ()) in
  Eng.run engine ~cycles:21;
  Alcotest.(check (list int)) "golden stream"
    [ 0; 0; 0; 1; 3; 5; 7; 9; 11; 13; 15; 17; 19; 21; 23 ]
    (Eng.sink_values engine 4)

let test_stall_attribution () =
  let engine = Eng.create (G.fig1 ()) in
  Eng.run engine ~cycles:105 (* transient + 20 periods *);
  (* steady state: per 5-cycle period, A fires 4 and is gated once; B and C
     fire 4 and starve once *)
  let near x v = abs (x - v) <= 4 in
  Alcotest.(check bool) "A gated ~20%%" true (near (Eng.gated_count engine 1) 21);
  Alcotest.(check bool) "A starves only at startup" true
    (Eng.starved_count engine 1 <= 2);
  Alcotest.(check bool) "B starves ~20%%" true (near (Eng.starved_count engine 2) 21);
  Alcotest.(check bool) "B gated at most at startup" true
    (Eng.gated_count engine 2 <= 2);
  Alcotest.(check bool) "counts partition the window" true
    (let f = Eng.fired_count engine 1
     and g = Eng.gated_count engine 1
     and s = Eng.starved_count engine 1 in
     f + g + s = 105)

let test_attribution_reset () =
  let engine = Eng.create (G.fig1 ()) in
  Eng.run engine ~cycles:50;
  Eng.reset engine;
  Alcotest.(check int) "gated cleared" 0 (Eng.gated_count engine 1);
  Alcotest.(check int) "starved cleared" 0 (Eng.starved_count engine 2)

let test_snapshot_shape () =
  let engine = Eng.create (G.fig1 ()) in
  let s = Eng.snapshot_next engine in
  Alcotest.(check int) "cycle 0" 0 s.Eng.snap_cycle;
  Alcotest.(check int) "4 shell-like columns" 4 (List.length s.Eng.node_out);
  Alcotest.(check int) "5 channels" 5 (List.length s.Eng.rs_contents);
  Alcotest.(check int) "1 sink" 1 (List.length s.Eng.sink_got);
  Alcotest.(check int) "stepped" 1 (Eng.cycle engine)

let suite =
  [
    Alcotest.test_case "fig1 headline numbers" `Quick test_fig1_headline;
    Alcotest.test_case "fig1 output pattern" `Quick test_fig1_output_pattern;
    Alcotest.test_case "fig2 headline numbers" `Quick test_fig2_headline;
    Alcotest.test_case "chain reaches throughput 1" `Quick test_chain_full_throughput;
    Alcotest.test_case "values stay ordered" `Quick test_values_in_order;
    Alcotest.test_case "source pattern throttles" `Quick test_source_pattern_throttles;
    Alcotest.test_case "sink pattern throttles" `Quick test_sink_pattern_throttles;
    Alcotest.test_case "no token lost under stalls" `Quick
      test_no_token_lost_under_stalls;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "signature periodicity" `Quick test_signature_periodicity;
    Alcotest.test_case "combinational stop cycle detected" `Quick
      test_combinational_stop_cycle_raises;
    Alcotest.test_case "combinational stop cycle (original flavour)" `Quick
      test_combinational_stop_cycle_original;
    Alcotest.test_case "a station breaks the stop cycle" `Quick
      test_station_breaks_stop_cycle;
    Alcotest.test_case "gated vs starved: back-pressure" `Quick
      test_gated_vs_starved_back_pressure;
    Alcotest.test_case "gated vs starved: starvation" `Quick
      test_gated_vs_starved_starvation;
    Alcotest.test_case "direct channels (acyclic)" `Quick
      test_direct_channel_resolution;
    Alcotest.test_case "flavours agree on simple chains" `Quick
      test_flavours_same_steady_state_chain;
    Alcotest.test_case "fig1 golden stream" `Quick test_fig1_golden_stream;
    Alcotest.test_case "stall attribution" `Quick test_stall_attribution;
    Alcotest.test_case "attribution reset" `Quick test_attribution_reset;
    Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
  ]
