open Bitvec
open Hdl.Signal

let test_widths () =
  let a = input "a" 8 and b = input "b" 8 in
  Alcotest.(check int) "add width" 8 (width (a +: b));
  Alcotest.(check int) "eq width" 1 (width (a ==: b));
  Alcotest.(check int) "concat width" 16 (width (concat_msb [ a; b ]));
  Alcotest.(check int) "select width" 4 (width (select a ~hi:5 ~lo:2));
  Alcotest.(check int) "bit width" 1 (width (bit a 3));
  Alcotest.(check int) "zext width" 12 (width (zero_extend a ~width:12))

let test_width_mismatch () =
  let a = input "a" 8 and b = input "b" 4 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Signal.(+:): width mismatch (8 vs 4)") (fun () ->
      ignore (a +: b))

let test_mux2_checks () =
  let a = input "a" 8 and b = input "b" 8 in
  Alcotest.check_raises "mux2 selector"
    (Invalid_argument "Signal.mux2: selector must be 1 bit") (fun () ->
      ignore (mux2 a a b));
  let s = input "s" 1 in
  Alcotest.(check int) "mux2 ok" 8 (width (mux2 s a b))

let test_wire_assign () =
  let w = wire 8 in
  let a = input "a" 8 in
  assign w a;
  Alcotest.check_raises "double assign"
    (Invalid_argument "Signal.assign: wire already driven") (fun () -> assign w a);
  let w2 = wire 4 in
  Alcotest.check_raises "width" (Invalid_argument "Signal.assign: width mismatch (4 vs 8)")
    (fun () -> assign w2 a)

let test_reg_fb () =
  let r =
    reg_fb ~name:"cnt" ~reset:(Bits.zero 8) ~width:8 (fun r ->
        r +: consti ~width:8 1)
  in
  Alcotest.(check int) "reg width" 8 (width r);
  match r with
  | Reg { d = Some _; _ } -> ()
  | _ -> Alcotest.fail "expected bound register"

let test_reg_checks () =
  Alcotest.check_raises "reset width"
    (Invalid_argument "Signal.reg: reset width mismatch") (fun () ->
      ignore (reg ~reset:(Bits.zero 4) (input "x" 8)))

let test_uid_unique () =
  let a = input "a" 1 and b = input "b" 1 in
  Alcotest.(check bool) "distinct uids" true (uid a <> uid b)

(* circuit elaboration *)

let test_circuit_simple () =
  let a = input "a" 8 and b = input "b" 8 in
  let sum = output "sum" (a +: b) in
  let c = Hdl.Circuit.create ~name:"adder" ~inputs:[ a; b ] ~outputs:[ sum ] in
  let s = Hdl.Circuit.stats c in
  Alcotest.(check int) "inputs" 2 s.n_inputs;
  Alcotest.(check int) "regs" 0 s.n_regs;
  Alcotest.(check bool) "comb nodes" true (s.n_comb >= 2)

let test_circuit_counter () =
  let r = reg_fb ~name:"c" ~reset:(Bits.zero 4) ~width:4 (fun r -> r +: consti ~width:4 1) in
  let c =
    Hdl.Circuit.create ~name:"counter" ~inputs:[] ~outputs:[ output "q" r ]
  in
  Alcotest.(check int) "one reg" 1 (Hdl.Circuit.stats c).n_regs;
  Alcotest.(check int) "4 reg bits" 4 (Hdl.Circuit.stats c).reg_bits

let test_undriven_wire () =
  let w = wire ~name:"dangling" 4 in
  let o = output "o" w in
  Alcotest.check_raises "undriven"
    (Invalid_argument "Circuit: wire \"dangling\" has no driver") (fun () ->
      ignore (Hdl.Circuit.create ~name:"bad" ~inputs:[] ~outputs:[ o ]))

let test_unbound_register () =
  let r = Reg { id = 999_999_999; width = 4; d = None; enable = None;
                reset_value = Bits.zero 4; name = Some "r" } in
  (* bypass reg_fb to make an unbound register *)
  let o = output "o" r in
  Alcotest.check_raises "unbound"
    (Invalid_argument "Circuit: register \"r\" has no data input") (fun () ->
      ignore (Hdl.Circuit.create ~name:"bad" ~inputs:[] ~outputs:[ o ]))

let test_comb_cycle_detected () =
  let w = wire ~name:"loop" 4 in
  assign w (w +: consti ~width:4 1);
  let o = output "o" w in
  (try
     ignore (Hdl.Circuit.create ~name:"cyc" ~inputs:[] ~outputs:[ o ]);
     Alcotest.fail "expected combinational cycle error"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions cycle" true
       (String.length msg > 0
       && String.sub msg 0 29 = "Circuit: combinational cycle:"))

(* The cycle message must be evidence, not decoration: the reported list
   starts and ends with the same node, every adjacent pair is a real
   dependency edge of the graph, and the DFS entry path into the cycle is
   trimmed away. *)
let test_comb_cycle_message_is_cycle () =
  let a = wire ~name:"a" 1 in
  let b = wire ~name:"b" 1 in
  let c = wire ~name:"c" 1 in
  assign a ~:b;
  assign b ~:c;
  assign c ~:a;
  let x = input "x" 1 in
  let o = output "o" (x &: a) in
  match Hdl.Circuit.create ~name:"cyc3" ~inputs:[ x ] ~outputs:[ o ] with
  | _ -> Alcotest.fail "expected combinational cycle error"
  | exception Invalid_argument msg ->
      let prefix = "Circuit: combinational cycle: " in
      Alcotest.(check bool) "prefix" true (String.starts_with ~prefix msg);
      let body =
        String.sub msg (String.length prefix)
          (String.length msg - String.length prefix)
      in
      let names = Astring.String.cuts ~sep:" <- " body in
      Alcotest.(check bool) "long enough to close" true (List.length names >= 3);
      Alcotest.(check string) "first = last" (List.hd names)
        (List.hd (List.rev names));
      (* resolve printed names back to the signals we built *)
      let tbl = Hashtbl.create 16 in
      let rec collect s =
        if not (Hashtbl.mem tbl (name_of s)) then begin
          Hashtbl.add tbl (name_of s) s;
          List.iter collect (deps s);
          List.iter collect (sequential_deps s)
        end
      in
      collect o;
      let sig_of n =
        match Hashtbl.find_opt tbl n with
        | Some s -> s
        | None -> Alcotest.fail ("message names an unknown node: " ^ n)
      in
      let rec check_pairs = function
        | p :: (q :: _ as tl) ->
            Alcotest.(check bool)
              (p ^ " is a dependency of " ^ q)
              true
              (List.exists
                 (fun d -> uid d = uid (sig_of p))
                 (deps (sig_of q)));
            check_pairs tl
        | _ -> ()
      in
      check_pairs names;
      Alcotest.(check bool) "cycle wire reported" true
        (List.exists (fun n -> List.mem n names) [ "a"; "b"; "c" ]);
      Alcotest.(check bool) "entry path trimmed" false (List.mem "o" names)

let test_reg_breaks_cycle () =
  (* feedback through a register is legal *)
  let r = reg_fb ~name:"acc" ~reset:(Bits.zero 4) ~width:4 (fun r -> r +: r) in
  let c = Hdl.Circuit.create ~name:"ok" ~inputs:[] ~outputs:[ output "o" r ] in
  Alcotest.(check int) "elaborated" 1 (Hdl.Circuit.stats c).n_regs

let test_undeclared_input () =
  let a = input "a" 4 in
  let o = output "o" (a +: consti ~width:4 1) in
  Alcotest.check_raises "undeclared"
    (Invalid_argument "Circuit: reachable input \"a\" not declared") (fun () ->
      ignore (Hdl.Circuit.create ~name:"bad" ~inputs:[] ~outputs:[ o ]))

let test_duplicate_names () =
  let a = input "x" 4 and b = input "x" 4 in
  let o = output "o" (a +: b) in
  Alcotest.check_raises "dup"
    (Invalid_argument "Circuit: duplicate input name \"x\"") (fun () ->
      ignore (Hdl.Circuit.create ~name:"bad" ~inputs:[ a; b ] ~outputs:[ o ]))

let test_output_not_named_wire () =
  let a = input "a" 4 in
  Alcotest.check_raises "raw signal as output"
    (Invalid_argument "Circuit: outputs must be named wires") (fun () ->
      ignore
        (Hdl.Circuit.create ~name:"bad" ~inputs:[ a ]
           ~outputs:[ a +: consti ~width:4 1 ]))

let test_topo_order () =
  let a = input "a" 4 in
  let x = a +: consti ~width:4 1 in
  let y = x +: x in
  let o = output "o" y in
  let c = Hdl.Circuit.create ~name:"t" ~inputs:[ a ] ~outputs:[ o ] in
  let order = Hdl.Circuit.comb_order c in
  let pos s =
    let p = ref (-1) in
    Array.iteri (fun i n -> if Hdl.Signal.uid n = Hdl.Signal.uid s then p := i) order;
    !p
  in
  Alcotest.(check bool) "x before y" true (pos x < pos y);
  Alcotest.(check bool) "y before o" true (pos y < pos o)

let test_find () =
  let a = input "a" 4 in
  let o = output "o" a in
  let c = Hdl.Circuit.create ~name:"f" ~inputs:[ a ] ~outputs:[ o ] in
  Alcotest.(check int) "find_input" (uid a) (uid (Hdl.Circuit.find_input c "a"));
  Alcotest.(check int) "find_output" (uid o) (uid (Hdl.Circuit.find_output c "o"));
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Hdl.Circuit.find_input c "zzz"))

let eval_circuit circ inputs =
  let sim = Sim.Cycle_sim.create circ in
  List.iter
    (fun (n, v) ->
      let w = Hdl.Signal.width (Hdl.Circuit.find_input circ n) in
      Sim.Cycle_sim.poke sim n (Bits.of_int ~width:w v))
    inputs;
  fun name -> Bits.to_int (Sim.Cycle_sim.peek_output sim name)

let test_shift_combinators () =
  let a = input "a" 8 in
  let circ =
    Hdl.Circuit.create ~name:"sh" ~inputs:[ a ]
      ~outputs:
        [
          output "l2" (sll a 2);
          output "r3" (srl a 3);
          output "ar3" (sra a 3);
          output "l9" (sll a 9);
          output "rep" (repeat (bit a 0) 4);
          output "sx" (sign_extend (select a ~hi:3 ~lo:0) ~width:8);
        ]
  in
  let sim = eval_circuit circ [ ("a", 0b10110101) ] in
  Alcotest.(check int) "sll 2" 0b11010100 (sim "l2");
  Alcotest.(check int) "srl 3" 0b00010110 (sim "r3");
  Alcotest.(check int) "sra 3" 0b11110110 (sim "ar3");
  Alcotest.(check int) "sll 9 = 0" 0 (sim "l9");
  Alcotest.(check int) "repeat lsb" 0b1111 (sim "rep");
  Alcotest.(check int) "sign extend nibble" 0b00000101 (sim "sx")

let suite =
  [
    Alcotest.test_case "operator widths" `Quick test_widths;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "mux2 checks" `Quick test_mux2_checks;
    Alcotest.test_case "wire assignment" `Quick test_wire_assign;
    Alcotest.test_case "reg_fb" `Quick test_reg_fb;
    Alcotest.test_case "reg checks" `Quick test_reg_checks;
    Alcotest.test_case "uid uniqueness" `Quick test_uid_unique;
    Alcotest.test_case "simple circuit" `Quick test_circuit_simple;
    Alcotest.test_case "counter circuit" `Quick test_circuit_counter;
    Alcotest.test_case "undriven wire rejected" `Quick test_undriven_wire;
    Alcotest.test_case "unbound register rejected" `Quick test_unbound_register;
    Alcotest.test_case "combinational cycle rejected" `Quick test_comb_cycle_detected;
    Alcotest.test_case "cycle message forms a cycle" `Quick
      test_comb_cycle_message_is_cycle;
    Alcotest.test_case "register breaks cycles" `Quick test_reg_breaks_cycle;
    Alcotest.test_case "undeclared input rejected" `Quick test_undeclared_input;
    Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_names;
    Alcotest.test_case "output must be named wire" `Quick test_output_not_named_wire;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "find input/output" `Quick test_find;
    Alcotest.test_case "shift/replicate combinators" `Quick test_shift_combinators;
  ]
