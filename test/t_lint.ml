(* The static protocol analyzer: stable diagnostics, the paper's closed
   forms as LID003 parameters, and the static-vs-dynamic contract — the
   lint-predicted sustained throughput must equal the packed engine's
   measured steady state exactly (cross-multiplied integers, no float
   comparison anywhere). *)

module Net = Topology.Network
module G = Topology.Generators
module P = Topology.Pattern
module D = Lint.Diagnostic
module C = Lint.Checks

let with_code (r : C.report) code =
  List.filter (fun (d : D.t) -> d.code = code) r.diagnostics

let ratio = Alcotest.(pair int int)

(* --- the paper's closed forms as diagnostics ------------------------ *)

let test_fig1_closed_form () =
  let r = C.run (G.fig1 ()) in
  match with_code r D.LID003 with
  | [ d ] ->
      Alcotest.(check string) "severity" "warning"
        (D.severity_to_string d.severity);
      (match d.params with
      | D.P_reconvergence { m; i; tokens; latency } ->
          Alcotest.(check int) "m" 5 m;
          Alcotest.(check int) "i" 1 i;
          Alcotest.check ratio "critical cycle" (4, 5) (tokens, latency)
      | _ -> Alcotest.fail "expected reconvergence params");
      Alcotest.(check bool) "has a fix-it" true (d.fixits <> []);
      (match r.predicted with
      | Some p ->
          Alcotest.(check bool) "T = 4/5" true (C.ratio_eq p (4, 5))
      | None -> Alcotest.fail "expected a predicted throughput");
      Alcotest.(check bool) "stop paths proved" true r.gate_proved;
      Alcotest.(check int) "no errors" 0 (C.count r D.Error)
  | ds -> Alcotest.failf "expected exactly one LID003, got %d" (List.length ds)

let test_fig2_closed_form () =
  let r = C.run (G.fig2 ()) in
  match with_code r D.LID003 with
  | [ d ] ->
      (match d.params with
      | D.P_loop { s; r = st; tokens; latency } ->
          Alcotest.(check int) "S" 2 s;
          Alcotest.(check int) "R" 2 st;
          Alcotest.check ratio "critical cycle" (2, 4) (tokens, latency)
      | _ -> Alcotest.fail "expected loop params");
      Alcotest.(check bool) "loops get no fix-it" true (d.fixits = []);
      (match r.predicted with
      | Some p -> Alcotest.(check bool) "T = 1/2" true (C.ratio_eq p (1, 2))
      | None -> Alcotest.fail "expected a predicted throughput")
  | ds -> Alcotest.failf "expected exactly one LID003, got %d" (List.length ds)

let test_fig1_fixit_restores_throughput () =
  let net = G.fig1 () in
  let r = C.run ~gate:false net in
  match with_code r D.LID003 with
  | [ d ] ->
      let cured =
        List.fold_left
          (fun n (f : D.fixit) ->
            let e = Net.edge n f.fix_edge in
            Net.with_stations n f.fix_edge
              (e.stations
              @ List.init f.fix_spare (fun _ -> Lid.Relay_station.Full)))
          net d.fixits
      in
      let r' = C.run ~gate:false cured in
      Alcotest.(check int) "no LID003 after the fix" 0
        (List.length (with_code r' D.LID003));
      (match r'.predicted with
      | Some p -> Alcotest.(check bool) "throughput 1" true (C.ratio_eq p (1, 1))
      | None -> Alcotest.fail "expected a predicted throughput")
  | _ -> Alcotest.fail "expected one LID003 on fig1"

(* The fix-it lines a report prints are pasteable: replacing the flagged
   channel declaration of the spec text with the fix-it's line — pure
   string surgery, no network API — must parse back and lint clean. *)
let test_fixit_line_pastes_back () =
  let net = G.fig1 () in
  let spec = Topology.Spec.print net in
  let r = C.run ~gate:false net in
  match with_code r D.LID003 with
  | [ d ] ->
      let patched =
        List.fold_left
          (fun text (f : D.fixit) ->
            let old_line = Topology.Spec.channel_line net f.fix_edge in
            let new_line = D.fixit_line net f in
            Alcotest.(check bool)
              ("spec contains " ^ old_line)
              true
              (Astring.String.is_infix ~affix:(old_line ^ "\n") text);
            Astring.String.cuts ~sep:(old_line ^ "\n") text
            |> String.concat (new_line ^ "\n"))
          spec d.fixits
      in
      (match Topology.Spec.parse patched with
      | Error m -> Alcotest.failf "patched spec does not parse: %s" m
      | Ok cured ->
          let r' = C.run ~gate:false cured in
          Alcotest.(check int) "no LID003 after pasting the fix-it" 0
            (List.length (with_code r' D.LID003));
          Alcotest.(check int) "no errors either" 0 (C.count r' D.Error))
  | _ -> Alcotest.fail "expected one LID003 on fig1"

(* --- protocol violations (LID001 / LID002) -------------------------- *)

let direct_chain () =
  (* source -> A (stationed) -> B (direct!) -> sink (direct, legal) *)
  let b = Net.builder () in
  let s = Net.add_source b ~name:"s" () in
  let a = Net.add_shell b ~name:"A" (Lid.Pearl.identity ()) in
  let bb = Net.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  let out = Net.add_sink b ~name:"out" () in
  ignore (Net.connect b ~src:(s, 0) ~dst:(a, 0) ());
  let e_ab = Net.connect b ~stations:[] ~src:(a, 0) ~dst:(bb, 0) () in
  ignore (Net.connect b ~stations:[] ~src:(bb, 0) ~dst:(out, 0) ());
  (Net.build ~allow_direct:true b, e_ab)

let test_direct_channel_violations () =
  let net, e_ab = direct_chain () in
  let r = C.run net in
  (match with_code r D.LID002 with
  | [ d ] ->
      Alcotest.(check bool) "on the shell-to-shell channel" true
        (d.loc = D.L_edge e_ab)
  | ds -> Alcotest.failf "expected exactly one LID002, got %d" (List.length ds));
  (match with_code r D.LID001 with
  | [ d ] ->
      Alcotest.(check bool) "on the shell-to-shell channel" true
        (d.loc = D.L_edge e_ab);
      (match d.params with
      | D.P_stop_sources srcs ->
          Alcotest.(check bool) "environment stall visible" true
            (List.mem "stall(out)" srcs)
      | _ -> Alcotest.fail "expected stop-source params")
  | ds -> Alcotest.failf "expected exactly one LID001, got %d" (List.length ds));
  Alcotest.(check bool) "gate pass ran" true r.gate_ran;
  Alcotest.(check bool) "not proved" false r.gate_proved;
  Alcotest.(check bool) "errors reported" true
    (C.max_severity r = Some D.Error)

let test_stop_path_direct () =
  (* the stop-path pass alone, on the same network *)
  let net, e_ab = direct_chain () in
  let circ = Topology.Rtl_net.of_network net in
  let res = Lint.Stop_path.analyze net circ in
  Alcotest.(check bool) "not proved" false res.proved;
  Alcotest.(check int) "every channel checked" (Net.n_edges net)
    res.edges_checked;
  match res.violations with
  | [ v ] ->
      Alcotest.(check int) "the direct channel" e_ab v.v_edge;
      Alcotest.(check bool) "stall origin listed" true
        (List.exists
           (fun s -> Lint.Stop_path.source_name net s = "stall(out)")
           v.v_sources)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_stop_path_proved_on_built_networks () =
  List.iter
    (fun net ->
      let circ = Topology.Rtl_net.of_network net in
      let res = Lint.Stop_path.analyze net circ in
      Alcotest.(check bool) "proved" true res.proved;
      Alcotest.(check int) "every channel checked" (Net.n_edges net)
        res.edges_checked)
    [
      G.fig1 ();
      G.fig2 ();
      G.chain ~n_shells:3 ();
      G.tree ~depth:2 ();
      G.ring ~n_shells:3 ();
    ]

let test_zero_latency_cycle () =
  let b = Net.builder () in
  let a = Net.add_shell b ~name:"A" (Lid.Pearl.identity ()) in
  let bb = Net.add_shell b ~name:"B" (Lid.Pearl.identity ()) in
  ignore (Net.connect b ~stations:[] ~src:(a, 0) ~dst:(bb, 0) ());
  ignore (Net.connect b ~stations:[] ~src:(bb, 0) ~dst:(a, 0) ());
  let net = Net.build ~allow_direct:true b in
  let r = C.run net in
  Alcotest.(check bool) "LID001 at topology level" true
    (with_code r D.LID001 <> []);
  Alcotest.(check bool) "no prediction possible" true (r.predicted = None);
  Alcotest.(check bool) "gate pass skipped" false r.gate_ran

(* --- environment diagnostics (LID005 / LID006) ---------------------- *)

let test_dead_source () =
  let net = G.chain ~n_shells:2 ~source_pattern:P.never () in
  let r = C.run ~gate:false net in
  Alcotest.(check int) "one LID005" 1 (List.length (with_code r D.LID005));
  (match r.predicted with
  | Some p -> Alcotest.(check bool) "predicted 0" true (C.ratio_eq p (0, 1))
  | None -> Alcotest.fail "expected a prediction");
  (* the dynamic side agrees: nothing fires in steady state *)
  match
    Skeleton.Measure.steady_ratio_packed (Skeleton.Packed.create net)
  with
  | Some m -> Alcotest.(check bool) "measured 0" true (C.ratio_eq m (0, 1))
  | None -> Alcotest.fail "no steady state found"

let test_blocked_sink () =
  let net = G.chain ~n_shells:2 ~sink_pattern:P.always () in
  let r = C.run ~gate:false net in
  match with_code r D.LID005 with
  | [ d ] ->
      Alcotest.(check bool) "located at the sink" true
        (match d.loc with
        | D.L_node id -> (
            match (Net.node net id).kind with
            | Net.Sink _ -> true
            | _ -> false)
        | _ -> false);
      (match r.predicted with
      | Some p -> Alcotest.(check bool) "predicted 0" true (C.ratio_eq p (0, 1))
      | None -> Alcotest.fail "expected a prediction")
  | ds -> Alcotest.failf "expected exactly one LID005, got %d" (List.length ds)

let test_env_duty_cap () =
  let net =
    G.chain ~n_shells:2 ~sink_pattern:(P.periodic ~period:4 ~active:2 ()) ()
  in
  let r = C.run ~gate:false net in
  (match with_code r D.LID006 with
  | [ d ] -> (
      match d.params with
      | D.P_duty { active; period } ->
          Alcotest.check ratio "accept duty" (2, 4) (active, period)
      | _ -> Alcotest.fail "expected duty params")
  | ds -> Alcotest.failf "expected exactly one LID006, got %d" (List.length ds));
  match r.predicted with
  | Some p -> Alcotest.(check bool) "capped at 1/2" true (C.ratio_eq p (1, 2))
  | None -> Alcotest.fail "expected a prediction"

(* --- LID004 and LID007 ---------------------------------------------- *)

let test_token_free_cycle () =
  (* hand-built elastic graph: a cycle carrying latency but no tokens *)
  let el =
    {
      Topology.Elastic.n = 2;
      edges =
        [|
          {
            Topology.Elastic.src = 0;
            dst = 1;
            tokens = 0;
            latency = 1;
            origin = Topology.Elastic.O_internal;
          };
          {
            Topology.Elastic.src = 1;
            dst = 0;
            tokens = 0;
            latency = 1;
            origin = Topology.Elastic.O_internal;
          };
        |];
      labels = [| "x"; "y" |];
    }
  in
  let diags, structural = C.check_elastic el ~cyclic:true in
  (match diags with
  | [ d ] ->
      Alcotest.(check string) "code" "LID004" (D.code_id d.code);
      Alcotest.(check string) "severity" "error"
        (D.severity_to_string d.severity)
  | ds -> Alcotest.failf "expected exactly one finding, got %d" (List.length ds));
  match structural with
  | Some s -> Alcotest.(check bool) "bound 0" true (C.ratio_eq s (0, 1))
  | None -> Alcotest.fail "expected a structural bound"

let test_half_station_loop () =
  let net =
    G.ring ~n_shells:2 ~stations:[ Lid.Relay_station.Half ] ()
  in
  let r = C.run ~gate:false net in
  Alcotest.(check bool) "LID007 reported" true (with_code r D.LID007 <> [])

let test_retx_buffer_undersized () =
  (* jitter:0:4 stretches the worst-case round trip to 3 + 4 = 7 cycles:
     a depth-2 replay buffer stalls the pipeline waiting on acks *)
  let shallow =
    Topology.Spec.parse_exn
      "source src\n\
       shell  A identity\n\
       sink   out\n\
       src.0 -> A.0 latency=jitter:0:4:9 : retx:2\n\
       A.0 -> out.0 : full\n"
  in
  let r = C.run ~gate:false shallow in
  (match with_code r D.LID008 with
  | [ d ] -> (
      Alcotest.(check bool) "warning severity" true (d.severity = D.Warning);
      match d.params with
      | D.P_retx { depth; rtt } ->
          Alcotest.(check int) "depth" 2 depth;
          Alcotest.(check int) "rtt" 7 rtt
      | _ -> Alcotest.fail "expected retx params")
  | ds -> Alcotest.failf "expected exactly one LID008, got %d" (List.length ds));
  (* deepening the buffer to the round trip silences the warning *)
  let deep =
    Topology.Spec.parse_exn
      "source src\n\
       shell  A identity\n\
       sink   out\n\
       src.0 -> A.0 latency=jitter:0:4:9 : retx:7\n\
       A.0 -> out.0 : full\n"
  in
  Alcotest.(check int) "no LID008 once deep enough" 0
    (List.length (with_code (C.run ~gate:false deep) D.LID008))

let test_retx_buffer_exact_boundary () =
  (* LID008 draws its bound from the same constant the RTL replay sizing
     uses — [Relay_station.round_trip].  Pin the boundary exactly: a
     buffer of precisely the round trip is clean, one flit shallower is
     diagnosed.  Computed from the constant, not hard-coded, so a drift
     in either consumer breaks this test. *)
  let max_delay = 3 in
  let rtt = Lid.Relay_station.round_trip ~max_delay in
  let net_with_depth depth =
    Topology.Spec.parse_exn
      (Printf.sprintf
         "source src\n\
          shell  A identity\n\
          sink   out\n\
          src.0 -> A.0 latency=jitter:0:%d:9 : retx:%d\n\
          A.0 -> out.0 : full\n"
         max_delay depth)
  in
  Alcotest.(check int) "depth = round trip: clean" 0
    (List.length (with_code (C.run ~gate:false (net_with_depth rtt)) D.LID008));
  match with_code (C.run ~gate:false (net_with_depth (rtt - 1))) D.LID008 with
  | [ d ] -> (
      match d.params with
      | D.P_retx { depth; rtt = reported } ->
          Alcotest.(check int) "reported depth" (rtt - 1) depth;
          Alcotest.(check int) "reported rtt" rtt reported
      | _ -> Alcotest.fail "expected retx params")
  | ds ->
      Alcotest.failf "depth = round trip - 1: expected one LID008, got %d"
        (List.length ds)

(* --- qcheck: the Equalize contract ---------------------------------- *)

let prop_no_imbalance_after_optimize =
  QCheck.Test.make
    ~name:"optimized random feed-forward networks raise no LID003" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 11 |] in
      let net =
        Topology.Generators.random_dag ~rng ~n_shells:(3 + (seed mod 5)) ()
      in
      let cured, _ = Topology.Equalize.optimize ~budget:128 net in
      let r = C.run ~gate:false cured in
      with_code r D.LID003 = [] && with_code r D.LID004 = [])

(* --- the static-vs-dynamic contract --------------------------------- *)

let predicted_equals_measured name net =
  let r = C.run ~gate:false net in
  match r.predicted with
  | None -> Alcotest.failf "%s: no prediction" name
  | Some (p, q) -> (
      match
        Skeleton.Measure.steady_ratio_packed (Skeleton.Packed.create net)
      with
      | None -> Alcotest.failf "%s: no steady state" name
      | Some (f, period) ->
          if not (C.ratio_eq (p, q) (f, period)) then
            Alcotest.failf "%s: lint predicts %d/%d but packed measures %d/%d"
              name p q f period)

let test_predicted_equals_measured () =
  let rng = Random.State.make [| 2026 |] in
  let cases =
    [
      ("fig1", G.fig1 ());
      ("fig1 r_direct=2", G.fig1 ~r_direct:2 ());
      ("fig1 r_direct=3", G.fig1 ~r_direct:3 ());
      ("fig2", G.fig2 ());
      ("fig2 R=5", G.fig2 ~stations_ab:2 ~stations_ba:3 ());
      ("soc-ish", G.reconvergent ~r_short:2 ~r_long_head:3 ~r_long_tail:2 ());
      ("chain", G.chain ~n_shells:4 ());
      ("tree", G.tree ~depth:3 ());
      ("ring4", G.ring ~n_shells:4 ());
      ( "ring3 double-stationed",
        G.ring ~n_shells:3
          ~stations:[ Lid.Relay_station.Full; Lid.Relay_station.Full ]
          () );
      ("ring_tapped", G.ring_tapped ~n_shells:3 ());
      ( "chain stalling sink",
        G.chain ~n_shells:3 ~sink_pattern:(P.periodic ~period:4 ~active:2 ()) ()
      );
      ("dead source", G.chain ~n_shells:2 ~source_pattern:P.never ());
    ]
    @ List.init 4 (fun i ->
          ( Printf.sprintf "random_dag %d" i,
            G.random_dag ~rng ~n_shells:(3 + i) () ))
    @ List.init 4 (fun i ->
          ( Printf.sprintf "random_loopy %d" i,
            G.random_loopy ~rng ~n_shells:(4 + i) ~extra_back_edges:2 () ))
  in
  List.iter (fun (name, net) -> predicted_equals_measured name net) cases

(* --- report plumbing ------------------------------------------------ *)

let test_json_shape () =
  let net, _ = direct_chain () in
  let json = C.to_json (C.run net) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring.String.is_infix ~affix:needle json))
    [
      "\"code\": \"LID001\"";
      "\"code\": \"LID002\"";
      "\"slug\": \"missing-memory-element\"";
      "\"severity\": \"error\"";
      "\"stop_path\": {\"ran\": true, \"proved\": false}";
      "\"predicted_throughput\"";
      "\"fixits\"";
    ]

let test_severity_order () =
  let net, _ = direct_chain () in
  let r = C.run net in
  let ranks =
    List.map (fun (d : D.t) -> D.severity_rank d.severity) r.diagnostics
  in
  Alcotest.(check (list int)) "errors first" (List.sort (fun a b -> compare b a) ranks) ranks

let test_code_table_is_stable () =
  Alcotest.(check (list string)) "ids"
    [
      "LID001";
      "LID002";
      "LID003";
      "LID004";
      "LID005";
      "LID006";
      "LID007";
      "LID008";
      "LID009";
      "LID010";
      "LID011";
    ]
    (List.map D.code_id D.all_codes)

let suite =
  [
    Alcotest.test_case "fig1: LID003 with m=5 i=1 T=4/5" `Quick
      test_fig1_closed_form;
    Alcotest.test_case "fig2: LID003 with S=2 R=2 T=1/2" `Quick
      test_fig2_closed_form;
    Alcotest.test_case "fig1 fix-it restores throughput 1" `Quick
      test_fig1_fixit_restores_throughput;
    Alcotest.test_case "fix-it lines paste back into the spec text" `Quick
      test_fixit_line_pastes_back;
    Alcotest.test_case "direct channel: LID001 + LID002" `Quick
      test_direct_channel_violations;
    Alcotest.test_case "stop-path pass localizes the violation" `Quick
      test_stop_path_direct;
    Alcotest.test_case "stop-path pass proves built networks" `Quick
      test_stop_path_proved_on_built_networks;
    Alcotest.test_case "zero-latency cycle" `Quick test_zero_latency_cycle;
    Alcotest.test_case "dead source: LID005, predicted = measured = 0" `Quick
      test_dead_source;
    Alcotest.test_case "blocked sink: LID005" `Quick test_blocked_sink;
    Alcotest.test_case "env duty cap: LID006" `Quick test_env_duty_cap;
    Alcotest.test_case "token-free cycle: LID004" `Quick test_token_free_cycle;
    Alcotest.test_case "half stations in a loop: LID007" `Quick
      test_half_station_loop;
    Alcotest.test_case "undersized replay buffer: LID008" `Quick
      test_retx_buffer_undersized;
    Alcotest.test_case "LID008 boundary = Relay_station.round_trip exactly"
      `Quick test_retx_buffer_exact_boundary;
    QCheck_alcotest.to_alcotest prop_no_imbalance_after_optimize;
    Alcotest.test_case "predicted == measured (cross-multiplied)" `Quick
      test_predicted_equals_measured;
    Alcotest.test_case "JSON report shape" `Quick test_json_shape;
    Alcotest.test_case "diagnostics sorted errors-first" `Quick
      test_severity_order;
    Alcotest.test_case "code table is stable" `Quick test_code_table_is_stable;
  ]
