(* Fault injection and runtime monitors: the monitors stay silent on every
   fault-free example system, every fault kind is detectable, campaigns are
   reproducible, and the watchdog proves the reconvergence deadlock. *)

module Net = Topology.Network
module G = Topology.Generators
module Eng = Skeleton.Engine

let specs_dir = "../examples/specs"

let spec_files () =
  Sys.readdir specs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".lid")
  |> List.sort compare

let load_spec file =
  In_channel.with_open_text (Filename.concat specs_dir file) In_channel.input_all
  |> Topology.Spec.parse_exn

let test_monitors_silent_on_specs () =
  let files = spec_files () in
  Alcotest.(check bool) "found the example specs" true (List.length files >= 4);
  List.iter
    (fun file ->
      List.iter
        (fun flavour ->
          let net = load_spec file in
          let engine = Eng.create ~flavour net in
          let mon = Fault.Monitor.create net in
          Fault.Monitor.attach mon engine;
          Eng.run engine ~cycles:300;
          match Fault.Monitor.violations mon with
          | [] -> ()
          | v :: _ ->
              Alcotest.failf "%s (%s): %s" file
                (match flavour with
                | Lid.Protocol.Original -> "original"
                | Lid.Protocol.Optimized -> "optimized")
                (Format.asprintf "%a" (Fault.Monitor.pp_violation net) v))
        [ Lid.Protocol.Original; Lid.Protocol.Optimized ])
    files

(* A small dynamic-LID system: one variable-latency channel spanned by a
   retransmitting station — the only kind of network where the flit
   (link-fault) plane is non-empty. *)
let retx_net () =
  Topology.Spec.parse_exn
    "source src\n\
     shell  A identity\n\
     sink   out\n\
     src.0 -> A.0 latency=jitter:0:2:5 : retx:6\n\
     A.0 -> out.0 : full\n"

let test_every_kind_detectable () =
  (* an exhaustive single-fault campaign must produce at least one
     non-masked injection of every kind — faults do not hide from the
     classifier.  Wire/register kinds attack Fig. 1; flit kinds need a
     retransmitting station, whose link plane Fig. 1 does not have. *)
  let flit_kind = function
    | Fault.Model.Flit_corrupt | Fault.Model.Flit_corrupt_silent
    | Fault.Model.Flit_drop | Fault.Model.Flit_dup ->
        true
    | _ -> false
  in
  let config = { Fault.Campaign.default_config with cycles = 128 } in
  let fig1_result = Fault.Campaign.run config (G.fig1 ()) in
  let retx_result =
    (* a longer horizon: a duplicated delivery only shows up as a schedule
       shift once the system is past its transient *)
    Fault.Campaign.run
      { config with
        kinds = List.filter flit_kind Fault.Model.all_kinds;
        cycles = 256;
        injections_per_site = 16;
      }
      (retx_net ())
  in
  List.iter
    (fun kind ->
      let result = if flit_kind kind then retx_result else fig1_result in
      let detected =
        List.exists
          (fun (r : Fault.Classify.report) ->
            r.fault.kind = kind && r.outcome <> Fault.Classify.Masked)
          result.reports
      in
      Alcotest.(check bool)
        (Fault.Model.kind_to_string kind ^ " detected")
        true detected)
    Fault.Model.all_kinds

let test_recovery_taxonomy () =
  (* the recovery-aware bins, pinned on concrete injections: a detectable
     corruption or a dropped flit is repaired by the go-back-N machinery
     (masked-by-retx, recoveries > 0), while a corruption that defeats the
     checksum sails through and damages data.  Both engines must agree. *)
  let net = retx_net () in
  let baseline =
    Fault.Classify.baseline ~cycles:256 ~flavour:Lid.Protocol.Optimized net
  in
  let link_site =
    List.hd (Fault.Model.sites net Fault.Model.Flit_drop)
  in
  let check_bin kind expected recovered =
    let fault =
      { Fault.Model.kind; site = link_site; cycle = 20; duration = 8; param = 0x21 }
    in
    let slow = Fault.Classify.classify baseline fault in
    let fast = Fault.Classify.classify_fast baseline fault in
    let name = Fault.Model.kind_to_string kind in
    Alcotest.(check string) (name ^ " bin")
      expected
      (Fault.Classify.outcome_to_string slow.outcome);
    Alcotest.(check string) (name ^ ": engines agree")
      (Fault.Classify.outcome_to_string slow.outcome)
      (Fault.Classify.outcome_to_string fast.outcome);
    Alcotest.(check bool) (name ^ " recoveries")
      recovered
      (slow.evidence.recoveries > 0);
    Alcotest.(check int) (name ^ ": recovery evidence agrees")
      slow.evidence.recoveries fast.evidence.recoveries
  in
  check_bin Fault.Model.Flit_drop "masked-by-retx" true;
  check_bin Fault.Model.Flit_corrupt "masked-by-retx" true;
  check_bin Fault.Model.Flit_corrupt_silent "data-corrupting" false

let test_campaign_reproducible () =
  let config =
    { Fault.Campaign.default_config with cycles = 96; max_sites_per_kind = 3 }
  in
  let outcomes result =
    List.map (fun (r : Fault.Classify.report) -> r.outcome) result.Fault.Campaign.reports
  in
  let a = Fault.Campaign.run config (G.fig2 ()) in
  let b = Fault.Campaign.run config (G.fig2 ()) in
  Alcotest.(check bool) "same outcomes" true (outcomes a = outcomes b);
  Alcotest.(check bool) "non-empty" true (a.reports <> [])

let edge_by ~src_name ~src_port net =
  let e =
    List.find
      (fun (e : Net.edge) ->
        (Net.node net e.src.node).name = src_name && e.src.port = src_port)
      (Net.edges net)
  in
  e.id

let test_reconvergence_deadlock () =
  (* a stop stuck high at the producer boundary of one fork branch makes the
     shell keep presenting a token the unstopped relay keeps accepting:
     duplicated tokens on one branch of a reconvergent fork, and the whole
     system wedges once the window clears — caught by the watchdog, flagged
     by the duplication monitor *)
  let net = G.fig1 () in
  let fault =
    {
      Fault.Model.kind = Fault.Model.Stop_stuck;
      site = Fault.Model.Backward { edge = edge_by ~src_name:"A" ~src_port:1 net; boundary = 0 };
      cycle = 8;
      duration = 8;
      param = 0;
    }
  in
  let baseline = Fault.Classify.baseline ~cycles:200 ~flavour:Lid.Protocol.Optimized net in
  let report = Fault.Classify.classify baseline fault in
  Alcotest.(check string) "classified as deadlock" "deadlock"
    (Fault.Classify.outcome_to_string report.outcome);
  Alcotest.(check bool) "duplication evidence" true
    (List.exists
       (fun (v : Fault.Monitor.violation) ->
         v.v_kind = Fault.Monitor.Token_duplicated)
       report.evidence.violations);
  match report.evidence.watchdog with
  | Fault.Monitor.Watchdog.Periodic { live; _ } ->
      Alcotest.(check bool) "non-live regime" false live
  | Fault.Monitor.Watchdog.Watching -> Alcotest.fail "watchdog never settled"

let test_benign_fault_masked () =
  (* dropping a stop that is never asserted changes nothing: a free-running
     chain has no back-pressure, so every stop-drop is masked *)
  let net = G.chain ~n_shells:2 () in
  let baseline = Fault.Classify.baseline ~cycles:128 ~flavour:Lid.Protocol.Optimized net in
  List.iter
    (fun site ->
      let fault =
        { Fault.Model.kind = Fault.Model.Stop_drop; site; cycle = 10; duration = 1; param = 0 }
      in
      let report = Fault.Classify.classify baseline fault in
      Alcotest.(check string) "masked" "masked"
        (Fault.Classify.outcome_to_string report.outcome))
    (Fault.Model.sites net Fault.Model.Stop_drop)

let test_monitor_sees_corruption_mid_chain () =
  (* monitor-level (not classifier-level) detection: corrupt the wire
     between two relay stations and the channel monitor must localize it *)
  let net = G.fig1 () in
  let eid = edge_by ~src_name:"src" ~src_port:0 net in
  let fault =
    {
      Fault.Model.kind = Fault.Model.Data_corrupt;
      site = Fault.Model.Forward { edge = eid; seg = 1 };
      cycle = 12;
      duration = 1;
      param = 0xff;
    }
  in
  let engine = Eng.create net in
  Eng.set_fault_hooks engine (Some (Fault.Model.hooks [ fault ]));
  let mon = Fault.Monitor.create net in
  Fault.Monitor.attach mon engine;
  Eng.run engine ~cycles:64;
  Alcotest.(check bool) "flagged on the faulted channel" true
    (List.exists
       (fun (v : Fault.Monitor.violation) ->
         v.v_edge = eid && v.v_kind = Fault.Monitor.Token_mismatched)
       (Fault.Monitor.violations mon))

let test_station_upset_semantics () =
  let open Lid.Relay_station in
  (* conjure into an empty full station, then the upset of a non-empty one
     drops a token — occupancy changes by exactly one in each direction *)
  let empty = initial Full in
  let conjured = upset ~payload:7 empty in
  Alcotest.(check int) "0 -> 1" 1 (occupancy conjured);
  Alcotest.(check int) "1 -> 0" 0 (occupancy (upset ~payload:9 conjured))

let test_watchdog_unit () =
  let open Fault.Monitor.Watchdog in
  let live = create ~quiesce_after:2 () in
  note live ~cycle:0 ~signature:"a" ~progress:true;
  note live ~cycle:1 ~signature:"b" ~progress:true;
  note live ~cycle:2 ~signature:"c" ~progress:true;
  note live ~cycle:3 ~signature:"d" ~progress:true;
  note live ~cycle:4 ~signature:"c" ~progress:true;
  Alcotest.(check bool) "live periodic is not deadlock" false (deadlocked live);
  (match verdict live with
  | Periodic { transient; period; live } ->
      Alcotest.(check int) "transient" 2 transient;
      Alcotest.(check int) "period" 2 period;
      Alcotest.(check bool) "live" true live
  | Watching -> Alcotest.fail "no verdict");
  let dead = create () in
  note dead ~cycle:0 ~signature:"x" ~progress:false;
  note dead ~cycle:1 ~signature:"x" ~progress:false;
  Alcotest.(check bool) "frozen signature, no firing" true (deadlocked dead)

let test_sites_cover_all_planes () =
  let net = G.fig1 () in
  let segs =
    List.fold_left
      (fun acc (e : Net.edge) -> acc + List.length e.stations + 1)
      0 (Net.edges net)
  in
  let stations =
    List.fold_left
      (fun acc (e : Net.edge) -> acc + List.length e.stations)
      0 (Net.edges net)
  in
  Alcotest.(check int) "forward plane" segs
    (List.length (Fault.Model.sites net Fault.Model.Valid_flip));
  Alcotest.(check int) "backward plane" segs
    (List.length (Fault.Model.sites net Fault.Model.Stop_drop));
  Alcotest.(check int) "register plane" stations
    (List.length (Fault.Model.sites net Fault.Model.Station_upset))

let suite =
  [
    Alcotest.test_case "monitors silent on all example specs" `Quick
      test_monitors_silent_on_specs;
    Alcotest.test_case "every fault kind detectable" `Quick
      test_every_kind_detectable;
    Alcotest.test_case "recovery taxonomy pinned on concrete faults" `Quick
      test_recovery_taxonomy;
    Alcotest.test_case "campaigns reproducible from the seed" `Quick
      test_campaign_reproducible;
    Alcotest.test_case "reconvergence deadlock caught" `Quick
      test_reconvergence_deadlock;
    Alcotest.test_case "benign stop-drop masked" `Quick test_benign_fault_masked;
    Alcotest.test_case "mid-chain corruption localized" `Quick
      test_monitor_sees_corruption_mid_chain;
    Alcotest.test_case "station upset semantics" `Quick
      test_station_upset_semantics;
    Alcotest.test_case "watchdog verdicts" `Quick test_watchdog_unit;
    Alcotest.test_case "site enumeration covers the planes" `Quick
      test_sites_cover_all_planes;
  ]
