(* The network description format. *)

module S = Topology.Spec
module Net = Topology.Network

let fig1_text =
  {|# the paper's Fig. 1
source src
shell  A fork2
shell  B identity
shell  C adder
sink   out
src.0 -> A.0 : full
A.0 -> C.0 : full
A.1 -> B.0 : full
B.0 -> C.1 : full
C.0 -> out.0
|}

let measured net =
  let e = Skeleton.Engine.create net in
  match Skeleton.Measure.analyze e with
  | Some r -> Some (Skeleton.Measure.system_throughput r)
  | None -> None

let test_parse_fig1 () =
  let net = S.parse_exn fig1_text in
  Alcotest.(check int) "nodes" 5 (Net.n_nodes net);
  Alcotest.(check int) "edges" 5 (Net.n_edges net);
  Alcotest.(check int) "4 full stations" 4
    (Net.station_count net Lid.Relay_station.Full);
  (* and it behaves like the generator's fig1 *)
  match measured net with
  | Some t -> Alcotest.(check (float 1e-9)) "T=4/5" 0.8 t
  | None -> Alcotest.fail "no steady state"

let test_roundtrip () =
  List.iter
    (fun net ->
      let text = S.print net in
      let net' = S.parse_exn text in
      Alcotest.(check string) "stable under reprint" text (S.print net');
      (* behavioural isomorphism: same steady-state throughput *)
      match (measured net, measured net') with
      | Some a, Some b -> Alcotest.(check (float 1e-9)) "same throughput" a b
      | _ -> Alcotest.fail "no steady state")
    [
      Topology.Generators.fig1 ();
      Topology.Generators.fig2 ();
      Topology.Generators.chain ~n_shells:3
        ~stations:[ Lid.Relay_station.Half ]
        ~sink_pattern:(Topology.Pattern.periodic ~period:3 ~active:1 ())
        ();
      Topology.Generators.ring_tapped ~n_shells:3 ();
      (* dynamic LID: latency profiles and retransmitting stations must
         survive the print/parse cycle too *)
      S.parse_exn
        "source src\n\
         shell  A identity\n\
         sink   out\n\
         src.0 -> A.0 latency=jitter:0:2:5 : retx:6\n\
         A.0 -> out.0 latency=table:0,2 : full\n";
    ]

let test_patterns_in_spec () =
  let net =
    S.parse_exn
      {|source s pattern=2/5@1 start=7
shell  x identity
sink   k pattern=%101
s.0 -> x.0 : full half
x.0 -> k.0
|}
  in
  (match (Net.node net 0).kind with
  | Net.Source { pattern; start } ->
      Alcotest.(check int) "start" 7 start;
      Alcotest.(check bool) "phase" false (Topology.Pattern.active pattern ~cycle:1)
  | _ -> Alcotest.fail "not a source");
  Alcotest.(check int) "half station" 1 (Net.station_count net Lid.Relay_station.Half);
  match (Net.node net 2).kind with
  | Net.Sink { pattern } ->
      Alcotest.(check bool) "word" true (Topology.Pattern.active pattern ~cycle:0)
  | _ -> Alcotest.fail "not a sink"

let expect_error ?allow_direct text fragment =
  match S.parse ?allow_direct text with
  | Ok _ -> Alcotest.fail ("expected error mentioning " ^ fragment)
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in %S" fragment m)
        true
        (Astring.String.is_infix ~affix:fragment m)

let test_errors () =
  expect_error "shell a nopearl\n" "unknown pearl";
  expect_error "source s\nshell a identity\ns.0 -> b.0\n" "unknown node";
  expect_error "source s\nsource s\n" "duplicate node name";
  expect_error "source s\nshell a identity\ns.0 -> a.0 : turbo\n" "unknown station kind";
  expect_error "source s pattern=9\n" "bad pattern";
  expect_error "gibberish here\n" "cannot parse";
  expect_error "source s\nshell a identity\nsink k\ns.zero -> a.0\n" "bad port";
  (* builder-level error surfaces through parse *)
  expect_error "source s\nshell a identity\nshell b identity\nsink k\ns.0 -> a.0\na.0 -> b.0\nb.0 -> k.0\n"
    "relay station"

let test_line_numbers () =
  match S.parse "source s\n\nshell a nopearl\n" with
  | Error m ->
      Alcotest.(check bool) "line 3" true (Astring.String.is_infix ~affix:"line 3" m)
  | Ok _ -> Alcotest.fail "expected error"

let test_pearl_of_name () =
  List.iter
    (fun name ->
      match Lid.Pearl.of_name name with
      | Some p -> Alcotest.(check string) "name preserved" name p.Lid.Pearl.name
      | None -> Alcotest.fail ("missing " ^ name))
    [ "identity"; "inc"; "square"; "adder"; "diff"; "fork2"; "tap";
      "accumulator"; "counter"; "delay3" ];
  Alcotest.(check bool) "unknown" true (Lid.Pearl.of_name "bogus" = None);
  Alcotest.(check bool) "delayX" true (Lid.Pearl.of_name "delayX" = None)

let test_spec_to_rtl () =
  (* the textual pipeline all the way to VHDL *)
  let net = S.parse_exn fig1_text in
  let vhdl = Emit.Vhdl.emit (Topology.Rtl_net.of_network net) in
  Alcotest.(check bool) "emits" true (String.length vhdl > 1000)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"spec print/parse roundtrip on random networks"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 97 |] in
      let net =
        if seed mod 2 = 0 then
          Topology.Generators.random_dag ~rng ~n_shells:(2 + (seed mod 5))
            ~half_probability:0.3 ()
        else Topology.Generators.random_loopy ~rng ~n_shells:(3 + (seed mod 4)) ()
      in
      let net' = S.parse_exn (S.print net) in
      S.print net = S.print net'
      &&
      match (measured net, measured net') with
      | Some a, Some b -> abs_float (a -. b) < 1e-9
      | _ -> false)

let suite =
  [
    Alcotest.test_case "parse fig1" `Quick test_parse_fig1;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "patterns and attributes" `Quick test_patterns_in_spec;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "error line numbers" `Quick test_line_numbers;
    Alcotest.test_case "pearl of_name" `Quick test_pearl_of_name;
    Alcotest.test_case "spec to RTL" `Quick test_spec_to_rtl;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
