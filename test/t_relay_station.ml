module RS = Lid.Relay_station
module Token = Lid.Token

let token = Alcotest.testable Token.pp Token.equal

let step = RS.step ?flavour:None

let test_kinds () =
  Alcotest.(check int) "full capacity" 2 (RS.capacity RS.Full);
  Alcotest.(check int) "half capacity" 1 (RS.capacity RS.Half);
  Alcotest.(check int) "full latency" 1 (RS.forward_latency RS.Full);
  Alcotest.(check int) "half latency" 0 (RS.forward_latency RS.Half)

let test_initially_void () =
  (* "each relay station must be initialized with non valid outputs" *)
  List.iter
    (fun kind ->
      let st = RS.initial kind in
      Alcotest.(check int) "empty" 0 (RS.occupancy st);
      Alcotest.check token "void out (void in)" Token.void
        (RS.present st ~input:Token.void);
      Alcotest.(check bool) "no stop" false (RS.stop_upstream st))
    [ RS.Full; RS.Half ]

let test_full_pipeline_latency_one () =
  (* free-flowing full station: out(t+1) = in(t) *)
  let st = ref (RS.initial RS.Full) in
  let outs = ref [] in
  List.iteri
    (fun i () ->
      outs := RS.present !st ~input:(Token.valid i) :: !outs;
      st := step !st ~input:(Token.valid i) ~stop_in:false)
    [ (); (); (); () ];
  Alcotest.(check (list token)) "one cycle late"
    [ Token.void; Token.valid 0; Token.valid 1; Token.valid 2 ]
    (List.rev !outs)

let test_half_pass_through () =
  (* empty half station: zero-latency combinational pass *)
  let st = RS.initial RS.Half in
  Alcotest.check token "passes" (Token.valid 9) (RS.present st ~input:(Token.valid 9))

let test_full_absorbs_in_flight () =
  (* the scenario requiring the second register: stop arrives while a datum
     is in flight *)
  let st = RS.initial RS.Full in
  let st = step st ~input:(Token.valid 0) ~stop_in:false in
  (* holding 0; consumer stops, producer (not yet seeing our stop) sends 1 *)
  Alcotest.(check bool) "not stopping yet" false (RS.stop_upstream st);
  let st = step st ~input:(Token.valid 1) ~stop_in:true in
  Alcotest.(check int) "both stored" 2 (RS.occupancy st);
  Alcotest.(check bool) "now stops upstream" true (RS.stop_upstream st);
  Alcotest.check token "still presents 0" (Token.valid 0)
    (RS.present st ~input:Token.void);
  (* consumer releases: 0 drains, 1 moves up, stop clears *)
  let st = step st ~input:Token.void ~stop_in:false in
  Alcotest.check token "presents 1" (Token.valid 1) (RS.present st ~input:Token.void);
  Alcotest.(check bool) "stop released" false (RS.stop_upstream st);
  let st = step st ~input:Token.void ~stop_in:false in
  Alcotest.(check int) "drained" 0 (RS.occupancy st)

let test_full_holds_under_stop () =
  let st = step (RS.initial RS.Full) ~input:(Token.valid 7) ~stop_in:false in
  let st2 = step st ~input:Token.void ~stop_in:true in
  Alcotest.check token "held" (Token.valid 7) (RS.present st2 ~input:Token.void);
  let st3 = step st2 ~input:Token.void ~stop_in:true in
  Alcotest.check token "still held" (Token.valid 7) (RS.present st3 ~input:Token.void)

let test_half_captures_on_stop () =
  let st = RS.initial RS.Half in
  (* datum 3 passing while consumer stops: capture *)
  let st = step st ~input:(Token.valid 3) ~stop_in:true in
  Alcotest.(check int) "captured" 1 (RS.occupancy st);
  Alcotest.(check bool) "stops upstream" true (RS.stop_upstream st);
  Alcotest.check token "presents captured" (Token.valid 3)
    (RS.present st ~input:(Token.valid 4));
  (* release: captured datum drains; the held upstream datum passes next *)
  let st = step st ~input:(Token.valid 4) ~stop_in:false in
  Alcotest.(check int) "empty again" 0 (RS.occupancy st);
  Alcotest.check token "pass-through resumes" (Token.valid 4)
    (RS.present st ~input:(Token.valid 4))

let test_half_no_capture_on_void () =
  let st = step (RS.initial RS.Half) ~input:Token.void ~stop_in:true in
  Alcotest.(check int) "nothing to capture" 0 (RS.occupancy st);
  Alcotest.(check bool) "optimized: stop on void discarded" false
    (RS.stop_upstream st)

let test_half_original_propagates_stop_on_void () =
  let st =
    RS.step ~flavour:Lid.Protocol.Original (RS.initial RS.Half)
      ~input:Token.void ~stop_in:true
  in
  Alcotest.(check bool) "original: stop back-propagated regardless" true
    (RS.stop_upstream st)

let test_half_original_no_forward_while_stopped () =
  (* while the registered stop is asserted the producer's datum must not
     pass (it would be delivered twice) *)
  let st =
    RS.step ~flavour:Lid.Protocol.Original (RS.initial RS.Half)
      ~input:Token.void ~stop_in:true
  in
  Alcotest.check token "blocked" Token.void (RS.present st ~input:(Token.valid 5))

(* --- retransmitting stations --------------------------------------- *)

(* Drive one retx station with an eager protocol-obeying producer and a
   never-stopping consumer, injecting [link] faults per cycle; return the
   delivered stream and the final state. *)
let run_retx ?(table = [| 0 |]) ?(depth = 4) ?(cycles = 80) ~link () =
  let st = ref (RS.initial ~table (RS.Retx { depth })) in
  let next = ref 0 in
  let pres = ref Token.void in
  let prev_stop = ref false in
  let delivered = ref [] in
  for c = 0 to cycles - 1 do
    (match !pres with
    | Token.Valid _ when !prev_stop -> ()
    | _ ->
        pres := Token.valid !next;
        incr next);
    (match RS.present !st ~input:!pres with
    | Token.Valid v -> delivered := v :: !delivered
    | Token.Void -> ());
    prev_stop := RS.stop_upstream !st;
    st := RS.step ~link:(link c) !st ~input:!pres ~stop_in:false
  done;
  (List.rev !delivered, !st)

let consecutive got = got = List.init (List.length got) (fun i -> i)

let test_retx_kind_figures () =
  Alcotest.(check int) "capacity" 5 (RS.capacity (RS.Retx { depth = 4 }));
  Alcotest.(check int) "latency" 2 (RS.forward_latency (RS.Retx { depth = 4 }))

let test_retx_fifo_free_flow () =
  let got, st = run_retx ~link:(fun _ -> RS.Link_ok) () in
  Alcotest.(check bool) "in order, exactly once" true (consecutive got);
  Alcotest.(check bool) "sustained flow" true (List.length got >= 70);
  Alcotest.(check int) "no recoveries fault-free" 0 (RS.recoveries st)

let test_retx_drop_recovered () =
  (* flits vanishing on the hop: the timeout/NACK path must resend them,
     and the receiver must still deliver the exact in-order stream *)
  let link c = if c >= 20 && c <= 22 then RS.Link_drop else RS.Link_ok in
  let got, st = run_retx ~link () in
  Alcotest.(check bool) "in order, exactly once" true (consecutive got);
  Alcotest.(check bool) "recovered" true (RS.recoveries st >= 1);
  Alcotest.(check bool) "stream not truncated" true (List.length got >= 60)

let test_retx_corrupt_recovered () =
  (* detectable damage: the receiver NACKs, the sender rewinds — the
     corrupted payload is never delivered *)
  let link c = if c = 20 then RS.Link_corrupt 0x5a else RS.Link_ok in
  let got, st = run_retx ~link () in
  Alcotest.(check bool) "in order, exactly once" true (consecutive got);
  Alcotest.(check bool) "recovered" true (RS.recoveries st >= 1)

let test_retx_corrupt_silent_delivers_damage () =
  (* damage that defeats the checksum is delivered as if intact: the
     stream carries a wrong value — this is what the recovery protocol
     cannot save you from *)
  let link c = if c = 20 then RS.Link_corrupt_silent 0x5a else RS.Link_ok in
  let got, st = run_retx ~link () in
  Alcotest.(check bool) "stream corrupted" true (not (consecutive got));
  Alcotest.(check int) "no recovery triggered" 0 (RS.recoveries st)

let test_retx_dup_exactly_once () =
  (* a duplicated delivery: the stale copy must be discarded, not
     re-delivered *)
  let link c = if c = 20 then RS.Link_dup else RS.Link_ok in
  let got, st = run_retx ~link () in
  Alcotest.(check bool) "in order, exactly once" true (consecutive got);
  Alcotest.(check bool) "duplicate discarded" true (RS.dup_discards st >= 1)

let test_retx_delay_table () =
  (* per-launch link delays from the channel's latency table slow the
     stream down but never break FIFO/exactly-once *)
  let got, st =
    run_retx ~table:[| 0; 2; 1 |] ~link:(fun _ -> RS.Link_ok) ()
  in
  Alcotest.(check bool) "in order, exactly once" true (consecutive got);
  Alcotest.(check bool) "still flows" true (List.length got >= 20);
  Alcotest.(check int) "no recoveries fault-free" 0 (RS.recoveries st)

let test_retx_shallow_buffer_backpressure () =
  (* depth 1: at most one unacked flit — throughput collapses to the
     round trip, but nothing is lost *)
  let got, _ = run_retx ~depth:1 ~link:(fun _ -> RS.Link_ok) () in
  Alcotest.(check bool) "in order, exactly once" true (consecutive got);
  Alcotest.(check bool) "throttled but alive" true (List.length got >= 10)

let test_map_tokens () =
  let st = step (RS.initial RS.Full) ~input:(Token.valid 41) ~stop_in:false in
  let norm t = if Token.is_valid t then Token.valid 0 else t in
  let st = RS.map_tokens norm st in
  Alcotest.check token "payload rewritten" (Token.valid 0)
    (RS.present st ~input:Token.void);
  Alcotest.(check int) "occupancy kept" 1 (RS.occupancy st)

(* property: under a protocol-obeying producer, a relay station never loses,
   duplicates or reorders data — random-stimulus version of the
   model-checked property *)
let prop_stream_preserved kind flavour =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s station (%s) preserves the stream"
         (RS.kind_to_string kind)
         (Lid.Protocol.to_string flavour))
    ~count:200 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed; 3 |] in
      let st = ref (RS.initial kind) in
      let pres = ref Token.void in
      let prev_stop = ref false in
      let next = ref 0 in
      let delivered = ref [] in
      for _ = 1 to 200 do
        (* the environment assumption: this cycle's presentation repeats the
           previous one when the station stopped it last cycle *)
        (match !pres with
        | Token.Valid _ when !prev_stop -> ()
        | _ ->
            if Random.State.bool rng then begin
              pres := Token.valid !next;
              incr next
            end
            else pres := Token.void);
        let stop_in = Random.State.bool rng in
        let out = RS.present !st ~input:!pres in
        (match out with
        | Token.Valid v when not stop_in -> delivered := v :: !delivered
        | _ -> ());
        prev_stop := RS.stop_upstream !st;
        st := RS.step ~flavour !st ~input:!pres ~stop_in
      done;
      let got = List.rev !delivered in
      got = List.init (List.length got) (fun i -> i))

let suite =
  [
    Alcotest.test_case "kind parameters" `Quick test_kinds;
    Alcotest.test_case "initialized void" `Quick test_initially_void;
    Alcotest.test_case "full: latency one" `Quick test_full_pipeline_latency_one;
    Alcotest.test_case "half: pass-through" `Quick test_half_pass_through;
    Alcotest.test_case "full: absorbs datum in flight" `Quick test_full_absorbs_in_flight;
    Alcotest.test_case "full: holds under stop" `Quick test_full_holds_under_stop;
    Alcotest.test_case "half: captures on stop" `Quick test_half_captures_on_stop;
    Alcotest.test_case "half: no capture on void" `Quick test_half_no_capture_on_void;
    Alcotest.test_case "half original: stop on void propagated" `Quick
      test_half_original_propagates_stop_on_void;
    Alcotest.test_case "half original: blocked while stopped" `Quick
      test_half_original_no_forward_while_stopped;
    Alcotest.test_case "map_tokens" `Quick test_map_tokens;
    Alcotest.test_case "retx: kind parameters" `Quick test_retx_kind_figures;
    Alcotest.test_case "retx: FIFO free flow" `Quick test_retx_fifo_free_flow;
    Alcotest.test_case "retx: drop recovered" `Quick test_retx_drop_recovered;
    Alcotest.test_case "retx: corrupt NACKed and resent" `Quick
      test_retx_corrupt_recovered;
    Alcotest.test_case "retx: silent corruption delivered" `Quick
      test_retx_corrupt_silent_delivers_damage;
    Alcotest.test_case "retx: duplicate discarded" `Quick
      test_retx_dup_exactly_once;
    Alcotest.test_case "retx: delay table" `Quick test_retx_delay_table;
    Alcotest.test_case "retx: depth-1 backpressure" `Quick
      test_retx_shallow_buffer_backpressure;
  ]
  @ List.concat_map
      (fun kind ->
        List.map
          (fun fl -> QCheck_alcotest.to_alcotest (prop_stream_preserved kind fl))
          Lid.Protocol.all)
      [ RS.Full; RS.Half; RS.Retx { depth = 4 }; RS.Retx { depth = 1 } ]
