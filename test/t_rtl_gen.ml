(* RTL circuits vs abstract protocol FSMs, cycle-for-cycle. *)

open Bitvec
module RS = Lid.Relay_station
module Token = Lid.Token

let width = 8

let lockstep_rs ?(table = [| 0 |]) kind flavour seed cycles =
  let circ =
    Lid.Rtl_gen.relay_station ~flavour ~table ~data_width:width kind
  in
  let sim = Sim.Cycle_sim.create circ in
  let rng = Random.State.make [| seed; 13 |] in
  let st = ref (RS.initial ~table kind) in
  let pres = ref Token.void in
  let seq = ref 0 in
  let ok = ref true in
  for _ = 1 to cycles do
    let stop_up = RS.stop_upstream !st in
    (match !pres with
    | Token.Valid _ when stop_up -> ()
    | _ ->
        if Random.State.bool rng then begin
          pres := Token.valid (!seq land 0xff);
          incr seq
        end
        else pres := Token.void);
    let stop_in = Random.State.bool rng in
    let out_abs = RS.present !st ~input:!pres in
    Sim.Cycle_sim.poke sim "in_valid" (Bits.of_bool (Token.is_valid !pres));
    Sim.Cycle_sim.poke sim "in_data"
      (Bits.of_int ~width (Option.value ~default:0 (Token.value_opt !pres)));
    Sim.Cycle_sim.poke sim "stop_in" (Bits.of_bool stop_in);
    let rtl_valid = Bits.lsb (Sim.Cycle_sim.peek_output sim "out_valid") in
    let rtl_stop = Bits.lsb (Sim.Cycle_sim.peek_output sim "stop_out") in
    let rtl_data = Bits.to_int (Sim.Cycle_sim.peek_output sim "out_data") in
    if rtl_valid <> Token.is_valid out_abs then ok := false;
    if rtl_stop <> stop_up then ok := false;
    if rtl_valid && rtl_data <> Token.value out_abs then ok := false;
    st := RS.step ~flavour !st ~input:!pres ~stop_in;
    Sim.Cycle_sim.step sim
  done;
  !ok

let prop_rs kind flavour =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "RTL %s station (%s) = abstract FSM"
         (RS.kind_to_string kind)
         (Lid.Protocol.to_string flavour))
    ~count:40 QCheck.small_int
    (fun seed -> lockstep_rs kind flavour seed 300)

(* The retransmitting station's RTL: sequence counters, replay register
   file, timeout — against the abstract go-back-N FSM, over the delay
   schedules the latency profiles actually compile to.  Random stop_in
   exercises the refuse-NACK/rewind and stale-duplicate paths. *)
let retx_tables = [| [| 0 |]; [| 2 |]; [| 0; 2; 1 |]; [| 3; 0 |] |]

let prop_retx =
  QCheck.Test.make ~name:"RTL retx station = abstract go-back-N FSM"
    ~count:40
    QCheck.(pair small_int (int_range 0 (Array.length retx_tables - 1)))
    (fun (seed, tsel) ->
      let table = retx_tables.(tsel) in
      let depth = 1 + (seed mod 7) in
      lockstep_rs ~table (RS.Retx { depth }) Lid.Protocol.Optimized seed 400)

(* identity-shell RTL against the abstract shell *)
let lockstep_shell flavour seed cycles =
  let circ = Lid.Rtl_gen.identity_shell ~flavour ~data_width:width () in
  let sim = Sim.Cycle_sim.create circ in
  let shell = Lid.Shell.create ~flavour (Lid.Pearl.identity ()) in
  let st = ref (Lid.Shell.initial shell) in
  let rng = Random.State.make [| seed; 29 |] in
  let pres = ref Token.void in
  let seq = ref 1 in
  let ok = ref true in
  for _ = 1 to cycles do
    let stop_in = Random.State.bool rng in
    (* environment: keep the input while the shell stops it *)
    let stops =
      Lid.Shell.input_stops shell !st ~inputs:[| !pres |] ~out_stops:[| stop_in |]
    in
    (match !pres with
    | Token.Valid _ when stops.(0) -> ()
    | _ ->
        if Random.State.bool rng then begin
          pres := Token.valid (!seq land 0xff);
          incr seq
        end
        else pres := Token.void);
    let out_abs = Lid.Shell.present !st 0 in
    let stops_abs =
      Lid.Shell.input_stops shell !st ~inputs:[| !pres |] ~out_stops:[| stop_in |]
    in
    Sim.Cycle_sim.poke sim "in_valid_0" (Bits.of_bool (Token.is_valid !pres));
    Sim.Cycle_sim.poke sim "in_data_0"
      (Bits.of_int ~width (Option.value ~default:0 (Token.value_opt !pres)));
    Sim.Cycle_sim.poke sim "stop_in_0" (Bits.of_bool stop_in);
    let rtl_valid = Bits.lsb (Sim.Cycle_sim.peek_output sim "out_valid_0") in
    let rtl_data = Bits.to_int (Sim.Cycle_sim.peek_output sim "out_data_0") in
    let rtl_stop = Bits.lsb (Sim.Cycle_sim.peek_output sim "stop_out_0") in
    if rtl_valid <> Token.is_valid out_abs then ok := false;
    if rtl_valid && rtl_data <> Token.value out_abs then ok := false;
    if rtl_stop <> stops_abs.(0) then ok := false;
    st := Lid.Shell.step shell !st ~inputs:[| !pres |] ~out_stops:[| stop_in |];
    Sim.Cycle_sim.step sim
  done;
  !ok

let prop_shell flavour =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "RTL identity shell (%s) = abstract shell"
         (Lid.Protocol.to_string flavour))
    ~count:40 QCheck.small_int
    (fun seed -> lockstep_shell flavour seed 300)

let test_stats () =
  let full = Lid.Rtl_gen.relay_station ~data_width:16 RS.Full in
  let half = Lid.Rtl_gen.relay_station ~data_width:16 RS.Half in
  let sf = Hdl.Circuit.stats full and sh = Hdl.Circuit.stats half in
  (* the whole point: the half station has one data register, the full one
     has two *)
  Alcotest.(check int) "full: 2 data + 2 flag regs" 4 sf.n_regs;
  Alcotest.(check int) "full reg bits" 34 sf.reg_bits;
  Alcotest.(check int) "half: 1 data + 1 flag reg" 2 sh.n_regs;
  Alcotest.(check int) "half reg bits" 17 sh.reg_bits;
  let half_orig =
    Hdl.Circuit.stats
      (Lid.Rtl_gen.relay_station ~flavour:Lid.Protocol.Original ~data_width:16
         RS.Half)
  in
  Alcotest.(check int) "original half keeps its stop register" 3
    half_orig.n_regs

let test_accumulator_shell_gating () =
  (* the accumulator's internal state register must be clock-gated: a
     stalled cycle must not accumulate *)
  let circ = Lid.Rtl_gen.accumulator_shell ~data_width:width () in
  let sim = Sim.Cycle_sim.create circ in
  let feed v valid stop =
    Sim.Cycle_sim.poke sim "in_valid_0" (Bits.of_bool valid);
    Sim.Cycle_sim.poke sim "in_data_0" (Bits.of_int ~width v);
    Sim.Cycle_sim.poke sim "stop_in_0" (Bits.of_bool stop);
    Sim.Cycle_sim.step sim
  in
  feed 10 true false;
  (* stalled: input invalid for 3 cycles *)
  feed 0 false false;
  feed 0 false false;
  feed 0 false false;
  feed 5 true false;
  Alcotest.(check int) "10 + 5, stalls ignored" 15
    (Bits.to_int (Sim.Cycle_sim.peek_output sim "out_data_0"))

let test_shell_initial_outputs_valid () =
  let circ = Lid.Rtl_gen.adder_shell ~data_width:width () in
  let sim = Sim.Cycle_sim.create circ in
  Alcotest.(check int) "out_valid at reset" 1
    (Bits.to_int (Sim.Cycle_sim.peek_output sim "out_valid_0"))

let test_spec_validation () =
  Alcotest.check_raises "initial arity"
    (Invalid_argument "Rtl_gen.shell: initial_outputs arity mismatch")
    (fun () ->
      ignore
        (Lid.Rtl_gen.shell
           {
             name = "bad";
             data_width = 4;
             n_inputs = 1;
             n_outputs = 2;
             initial_outputs = [ Bits.zero 4 ];
             datapath = (fun ~fire:_ ins -> ins @ ins);
           }))

let suite =
  [
    Alcotest.test_case "register counts (half vs full)" `Quick test_stats;
    Alcotest.test_case "accumulator clock gating" `Quick test_accumulator_shell_gating;
    Alcotest.test_case "shell initial outputs valid" `Quick
      test_shell_initial_outputs_valid;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
  ]
  @ List.concat_map
      (fun kind -> List.map (fun fl -> QCheck_alcotest.to_alcotest (prop_rs kind fl)) Lid.Protocol.all)
      [ RS.Full; RS.Half ]
  @ [ QCheck_alcotest.to_alcotest prop_retx ]
  @ List.map (fun fl -> QCheck_alcotest.to_alcotest (prop_shell fl)) Lid.Protocol.all
