(* The lane-parallel campaign path earns its keep only if it is
   bit-identical to the serial one: same reports, same order, for every
   lane width — including widths that leave idle lanes in the final
   batch.  The serial oracle is [Fault.Campaign.run], which still drives
   the instrumented [Engine], so these properties also pin
   [Classify.classify_fast] (packed probes) and [Classify.masked_report]
   (replay synthesis) to [Classify.classify]. *)

module G = Topology.Generators
module C = Fault.Campaign
module PL = Skeleton.Packed_lanes

let config ~seed ~cycles ~max_sites =
  {
    C.default_config with
    seed;
    cycles;
    max_sites_per_kind = max_sites;
  }

let report_equal (a : Fault.Classify.report) (b : Fault.Classify.report) =
  a = b

let check_same_result label (serial : C.result) (lanes : C.result) =
  Alcotest.(check int)
    (label ^ ": same report count")
    (List.length serial.reports)
    (List.length lanes.reports);
  List.iteri
    (fun i (a, b) ->
      if not (report_equal a b) then
        Alcotest.failf "%s: report %d differs (%s vs %s)" label i
          (Fault.Classify.outcome_to_string a.Fault.Classify.outcome)
          (Fault.Classify.outcome_to_string b.Fault.Classify.outcome))
    (List.combine serial.reports lanes.reports);
  Alcotest.(check bool) (label ^ ": same tally") true (C.tally serial = C.tally lanes);
  Alcotest.(check bool) (label ^ ": same worst") true (C.worst serial = C.worst lanes)

let test_run_lanes_matches_serial_fig1 () =
  let net = G.fig1 () in
  let config = config ~seed:5 ~cycles:120 ~max_sites:2 in
  let serial = C.run config net in
  Alcotest.(check bool)
    "campaign is non-trivial" true
    (List.length serial.C.reports >= 10);
  List.iter
    (fun lanes ->
      check_same_result
        (Printf.sprintf "lanes %d" lanes)
        serial
        (C.run_lanes ~lanes config net))
    [ 2; 7; 32; PL.max_lanes ]

let prop_run_lanes_matches_serial =
  QCheck.Test.make ~name:"run_lanes = run on random loopy networks" ~count:12
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0x1a2e |] in
      let net =
        G.random_loopy ~rng ~n_shells:(3 + (seed mod 4)) ~half_probability:0.3
          ()
      in
      let config = config ~seed ~cycles:96 ~max_sites:1 in
      let serial = C.run config net in
      List.for_all
        (fun lanes ->
          let lr = C.run_lanes ~lanes config net in
          serial.C.reports = lr.C.reports)
        [ 2; 7; PL.max_lanes ])

let test_idle_lanes_in_final_batch () =
  (* 6 kinds x 1 site = ~6 faults; lanes 32 puts them all in one batch
     with ~25 idle lanes, lanes 5 leaves a partial final batch *)
  let net = G.fig1 () in
  let config = config ~seed:3 ~cycles:100 ~max_sites:1 in
  let faults = C.faults_of_config config net in
  let n = List.length faults in
  Alcotest.(check bool) "enough faults" true (n >= 5);
  Alcotest.(check bool)
    "lanes 32: idle lanes present" true
    (n < 31);
  let serial = C.run config net in
  check_same_result "lanes 32 (idle lanes)" serial (C.run_lanes ~lanes:32 config net);
  Alcotest.(check bool)
    "lanes 5: partial final batch" true
    (n mod 4 <> 0);
  check_same_result "lanes 5 (partial batch)" serial (C.run_lanes ~lanes:5 config net)

let test_lane_batches_shape () =
  let f i = { (List.hd (C.faults_of_config (config ~seed:1 ~cycles:64 ~max_sites:1) (G.fig1 ()))) with Fault.Model.cycle = 5 + i } in
  let faults = List.init 10 f in
  let batches = C.lane_batches ~lanes:4 faults in
  Alcotest.(check (list int))
    "batches of lanes-1, order kept"
    [ 3; 3; 3; 1 ]
    (List.map List.length batches);
  Alcotest.(check bool) "concat restores input" true (List.concat batches = faults);
  Alcotest.(check (list int))
    "exact multiple leaves no runt"
    [ 3; 3 ]
    (List.map List.length (C.lane_batches ~lanes:4 (List.init 6 f)))

let test_classify_fast_matches_classify () =
  let net = G.fig1 () in
  let config = config ~seed:11 ~cycles:120 ~max_sites:2 in
  let baseline =
    Fault.Classify.baseline ~cycles:config.C.cycles ~flavour:config.C.flavour
      net
  in
  List.iter
    (fun fault ->
      let a = Fault.Classify.classify baseline fault in
      let b = Fault.Classify.classify_fast baseline fault in
      if not (report_equal a b) then
        Alcotest.failf "classify_fast differs on %s (%s vs %s)"
          (Format.asprintf "%a" (Fault.Model.pp net) fault)
          (Fault.Classify.outcome_to_string a.Fault.Classify.outcome)
          (Fault.Classify.outcome_to_string b.Fault.Classify.outcome))
    (C.faults_of_config config net)

let test_lane_reports_sanity () =
  (* a forced stop on a busy boundary diverges, and not before the fault
     is first active; an idle spec list reports nothing *)
  let net = G.fig1 () in
  let spec =
    {
      PL.eff = PL.Force_stop;
      site = PL.Backward { edge = 0; boundary = 0 };
      from_cycle = 10;
      duration = 3;
    }
  in
  let t = PL.create ~lanes:8 net [ spec ] in
  PL.run t ~cycles:80;
  let lr = (PL.lane_reports t).(0) in
  Alcotest.(check bool) "stop fault diverges" true lr.PL.lr_diverged;
  (match lr.PL.lr_first_divergence with
  | Some c ->
      Alcotest.(check bool)
        (Printf.sprintf "first divergence %d not before injection" c)
        true (c >= 10)
  | None -> Alcotest.fail "diverged lane has a first divergence");
  Alcotest.(check bool) "divergent cycles counted" true
    (lr.PL.lr_divergent_cycles >= 1 && lr.PL.lr_divergent_cycles <= 80);
  let idle = PL.create ~lanes:8 net [] in
  PL.run idle ~cycles:80;
  Alcotest.(check int) "no specs, no reports" 0
    (Array.length (PL.lane_reports idle))

let test_spec_validation () =
  let net = G.fig1 () in
  let spec eff site =
    { PL.eff; site; from_cycle = 4; duration = 1 }
  in
  Alcotest.check_raises "lanes too small"
    (Invalid_argument
       (Printf.sprintf "Packed_lanes.create: lanes must be in [2, %d]"
          PL.max_lanes))
    (fun () -> ignore (PL.create ~lanes:1 net []));
  Alcotest.check_raises "too many specs"
    (Invalid_argument "Packed_lanes.create: more specs than injection lanes")
    (fun () ->
      ignore
        (PL.create ~lanes:2 net
           (List.init 2 (fun _ ->
                spec PL.Flip_valid (PL.Forward { edge = 0; seg = 0 })))));
  Alcotest.check_raises "effect on wrong plane"
    (Invalid_argument "Packed_lanes: spec 0 pairs an effect with the wrong site plane")
    (fun () ->
      ignore
        (PL.create ~lanes:4 net
           [ spec PL.Force_stop (PL.Forward { edge = 0; seg = 0 }) ]))

let test_driver_lanes_and_jobs () =
  let rng = Random.State.make [| 0xd4; 0x1e |] in
  let net = G.random_loopy ~rng ~n_shells:6 ~extra_back_edges:1 () in
  let config = config ~seed:17 ~cycles:96 ~max_sites:2 in
  let serial = C.run config net in
  List.iter
    (fun (jobs, lanes) ->
      let par = Campaign.Fault_driver.run ~jobs ~lanes config net in
      Alcotest.(check bool)
        (Printf.sprintf "driver jobs=%d lanes=%d bit-identical" jobs lanes)
        true
        (serial.C.reports = par.C.reports))
    [ (1, 1); (1, PL.max_lanes); (2, 8); (2, PL.max_lanes) ]

(* ------------------------------------------------------------------ *)
(* Dynamic networks on the lane path: retransmitting stations carry one
   boxed go-back-N state per lane, gated variable-latency channels one
   delay counter per lane, and the link-fault plane is injected through
   the station's own FSM.  The oracle is unchanged: the serial campaign
   over the instrumented engine. *)

let retx_jitter_net () =
  Topology.Spec.parse_exn
    "source src\n\
     shell  A identity\n\
     sink   out\n\
     src.0 -> A.0 latency=jitter:0:2:5 : retx:6\n\
     A.0 -> out.0 : full\n"

(* two retx stations on one channel (only the first takes the profile),
   a gated channel with no retx at all, and a stalling sink driving the
   refuse-NACK path *)
let dyn_mixed_net () =
  Topology.Spec.parse_exn
    "source src\n\
     shell  A identity\n\
     shell  B identity\n\
     sink   out pattern=%0010011\n\
     src.0 -> A.0 latency=table:0,2,1 : retx:3 full\n\
     A.0 -> B.0 latency=fixed:2 : full\n\
     B.0 -> out.0 : retx:2\n"

let test_run_lanes_matches_serial_dynamic () =
  List.iter
    (fun (label, net, seed) ->
      let config =
        {
          (config ~seed ~cycles:256 ~max_sites:2) with
          C.injections_per_site = 8;
        }
      in
      let serial = C.run config net in
      Alcotest.(check bool)
        (label ^ ": campaign is non-trivial") true
        (List.length serial.C.reports >= 30);
      List.iter
        (fun lanes ->
          check_same_result
            (Printf.sprintf "%s lanes %d" label lanes)
            serial
            (C.run_lanes ~lanes config net))
        [ 2; 7; PL.max_lanes ])
    [
      ("retx/jitter", retx_jitter_net (), 5);
      ("mixed dynamics", dyn_mixed_net (), 9);
    ]

let test_dynamic_bins_reached () =
  (* the recovery-aware bins flow through the lane path: injections that
     the go-back-N machinery repairs must come back masked-by-retx, with
     identical evidence to the serial run *)
  let net = retx_jitter_net () in
  let config =
    {
      (config ~seed:5 ~cycles:256 ~max_sites:2) with
      C.kinds =
        [
          Fault.Model.Flit_corrupt;
          Fault.Model.Flit_drop;
          Fault.Model.Flit_dup;
          Fault.Model.Flit_corrupt_silent;
        ];
      injections_per_site = 16;
    }
  in
  let serial = C.run config net in
  let lanes = C.run_lanes ~lanes:PL.max_lanes config net in
  check_same_result "flit campaign" serial lanes;
  let count o =
    List.length
      (List.filter
         (fun (r : Fault.Classify.report) -> r.Fault.Classify.outcome = o)
         lanes.C.reports)
  in
  Alcotest.(check bool) "some masked-by-retx" true
    (count Fault.Classify.Masked_by_retx > 0);
  Alcotest.(check bool) "some plain masked" true
    (count Fault.Classify.Masked > 0)

let test_flit_sweep_bit_identity () =
  (* every injection cycle in a dense window, one lane each: all flit /
     arrival / refuse alignments — including the corruption that lands on
     a refuse cycle, whose only fault-free difference is the recovery
     counter — must classify bit-identically to the serial engine *)
  let net = dyn_mixed_net () in
  let config = config ~seed:1 ~cycles:160 ~max_sites:0 in
  let baseline =
    Fault.Classify.baseline ~cycles:config.C.cycles ~flavour:config.C.flavour
      net
  in
  let replay = Fault.Classify.replay baseline in
  Alcotest.(check bool) "replay usable" true (replay <> None);
  let sites = Fault.Model.sites net Fault.Model.Flit_corrupt in
  Alcotest.(check int) "two link sites" 2 (List.length sites);
  List.iter
    (fun kind ->
      let faults =
        List.concat_map
          (fun site ->
            List.init 40 (fun i ->
                {
                  Fault.Model.kind;
                  site;
                  cycle = 4 + (3 * i);
                  duration = 2;
                  param = 0x21;
                }))
          sites
      in
      let serial = List.map (Fault.Classify.classify_fast baseline) faults in
      let lanes =
        List.concat_map
          (C.classify_lane_batch baseline replay config net ~lanes:PL.max_lanes)
          (C.lane_batches ~lanes:PL.max_lanes faults)
      in
      Alcotest.(check bool)
        (Fault.Model.kind_to_string kind ^ " sweep bit-identical")
        true (serial = lanes))
    [
      Fault.Model.Flit_corrupt;
      Fault.Model.Flit_drop;
      Fault.Model.Flit_dup;
      Fault.Model.Flit_corrupt_silent;
    ]

let prop_dynamic_run_lanes_matches_serial =
  QCheck.Test.make ~name:"run_lanes = run on random dynamic nets" ~count:8
    QCheck.small_int (fun seed ->
      let profile =
        match seed mod 3 with
        | 0 -> Printf.sprintf "latency=jitter:0:2:%d " (3 + seed)
        | 1 -> "latency=table:0,2,1 "
        | _ -> Printf.sprintf "latency=jitter:1:3:%d " (7 + seed)
      in
      let depth = 1 + (seed mod 5) in
      let sink = if seed mod 2 = 0 then "" else " pattern=%0010011" in
      let net =
        Topology.Spec.parse_exn
          (Printf.sprintf
             "source src\n\
              shell  A identity\n\
              sink   out%s\n\
              src.0 -> A.0 %s: retx:%d\n\
              A.0 -> out.0 : full\n"
             sink profile depth)
      in
      let config =
        {
          (config ~seed ~cycles:128 ~max_sites:1) with
          C.injections_per_site = 4;
        }
      in
      let serial = C.run config net in
      List.for_all
        (fun lanes -> serial.C.reports = (C.run_lanes ~lanes config net).C.reports)
        [ 2; 7; PL.max_lanes ])

let test_driver_dynamic_lanes_and_jobs () =
  (* the parallel driver no longer falls off the lane path for dynamic
     nets; [on_lanes] reports the width actually used *)
  let net = retx_jitter_net () in
  let config =
    { (config ~seed:7 ~cycles:192 ~max_sites:2) with C.injections_per_site = 4 }
  in
  let serial = C.run config net in
  List.iter
    (fun (jobs, lanes, expect) ->
      let used = ref 0 and why = ref None in
      let par =
        Campaign.Fault_driver.run ~jobs ~lanes
          ~on_lanes:(fun n reason ->
            used := n;
            why := reason)
          config net
      in
      Alcotest.(check bool)
        (Printf.sprintf "dynamic driver jobs=%d lanes=%d bit-identical" jobs
           lanes)
        true
        (serial.C.reports = par.C.reports);
      Alcotest.(check int)
        (Printf.sprintf "lanes used (asked %d)" lanes)
        expect !used;
      Alcotest.(check bool) "no downgrade reason" true (!why = None))
    [ (1, 1, 1); (1, 8, 8); (2, 1000, PL.max_lanes); (2, PL.max_lanes, PL.max_lanes) ]

let test_ring_dynamics_through_lanes () =
  (* a closed loop through a retransmitting station over a jittery
     channel: upsets conjure/vanish ring tokens, so the severe bins
     (loss, duplication, corruption) all appear — and the lane path must
     reproduce each report exactly, recovery evidence included.
     (A true livelock — deadlock with recoveries — is unreachable for
     single transient faults: refuse-NACKs do not count as recoveries
     and link faults are always repaired once the window closes; the
     lane path's agreement on the Livelock bin is pinned by the same
     full-report equality wherever the classifier produces it.) *)
  let net = G.ring ~n_shells:4 () in
  let net =
    Topology.Network.with_stations net 0 [ Lid.Relay_station.Retx { depth = 2 } ]
  in
  let net =
    Topology.Network.with_latency net 0
      (Some (Lid.Latency.Jitter { base = 0; bound = 2; seed = 5 }))
  in
  let config =
    {
      (config ~seed:1 ~cycles:256 ~max_sites:0) with
      C.kinds = [ Fault.Model.Station_upset; Fault.Model.Valid_flip ];
      injections_per_site = 8;
    }
  in
  let serial = C.run config net in
  let severe =
    List.exists
      (fun (r : Fault.Classify.report) ->
        Fault.Classify.rank r.Fault.Classify.outcome
        >= Fault.Classify.rank Fault.Classify.Token_loss)
      serial.C.reports
  in
  Alcotest.(check bool) "ring campaign reaches severe bins" true severe;
  check_same_result "retx ring" serial
    (C.run_lanes ~lanes:PL.max_lanes config net)

let test_link_spec_validation () =
  let net = retx_jitter_net () in
  let spec eff site = { PL.eff; site; from_cycle = 4; duration = 1 } in
  (* edge 0 station 0 is the retx station; edge 1 station 0 is full *)
  ignore
    (PL.create ~lanes:4 net
       [ spec (PL.Link_fault Lid.Relay_station.Link_drop)
           (PL.Link { edge = 0; station = 0 }) ]);
  Alcotest.check_raises "link fault on a non-retx station"
    (Invalid_argument
       "Packed_lanes: spec 0 targets the link of a non-retransmitting station")
    (fun () ->
      ignore
        (PL.create ~lanes:4 net
           [ spec (PL.Link_fault Lid.Relay_station.Link_drop)
               (PL.Link { edge = 1; station = 0 }) ]));
  Alcotest.check_raises "link effect on wrong plane"
    (Invalid_argument
       "Packed_lanes: spec 0 pairs an effect with the wrong site plane")
    (fun () ->
      ignore
        (PL.create ~lanes:4 net
           [ spec (PL.Link_fault Lid.Relay_station.Link_drop)
               (PL.Forward { edge = 0; seg = 0 }) ]))

let suite =
  [
    Alcotest.test_case "run_lanes = run on fig1, several widths" `Quick
      test_run_lanes_matches_serial_fig1;
    QCheck_alcotest.to_alcotest ~long:false prop_run_lanes_matches_serial;
    Alcotest.test_case "idle lanes in the final batch" `Quick
      test_idle_lanes_in_final_batch;
    Alcotest.test_case "lane_batches shape" `Quick test_lane_batches_shape;
    Alcotest.test_case "classify_fast = classify" `Quick
      test_classify_fast_matches_classify;
    Alcotest.test_case "lane report sanity" `Quick test_lane_reports_sanity;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "driver: lanes x jobs = serial" `Quick
      test_driver_lanes_and_jobs;
    Alcotest.test_case "run_lanes = run on dynamic nets" `Quick
      test_run_lanes_matches_serial_dynamic;
    Alcotest.test_case "dynamic bins through the lane path" `Quick
      test_dynamic_bins_reached;
    Alcotest.test_case "flit sweep bit-identity (all alignments)" `Quick
      test_flit_sweep_bit_identity;
    QCheck_alcotest.to_alcotest ~long:false prop_dynamic_run_lanes_matches_serial;
    Alcotest.test_case "driver: dynamic lanes x jobs = serial" `Quick
      test_driver_dynamic_lanes_and_jobs;
    Alcotest.test_case "retx ring through the lane path" `Quick
      test_ring_dynamics_through_lanes;
    Alcotest.test_case "link spec validation" `Quick test_link_spec_validation;
  ]
