(* The lane-parallel campaign path earns its keep only if it is
   bit-identical to the serial one: same reports, same order, for every
   lane width — including widths that leave idle lanes in the final
   batch.  The serial oracle is [Fault.Campaign.run], which still drives
   the instrumented [Engine], so these properties also pin
   [Classify.classify_fast] (packed probes) and [Classify.masked_report]
   (replay synthesis) to [Classify.classify]. *)

module G = Topology.Generators
module C = Fault.Campaign
module PL = Skeleton.Packed_lanes

let config ~seed ~cycles ~max_sites =
  {
    C.default_config with
    seed;
    cycles;
    max_sites_per_kind = max_sites;
  }

let report_equal (a : Fault.Classify.report) (b : Fault.Classify.report) =
  a = b

let check_same_result label (serial : C.result) (lanes : C.result) =
  Alcotest.(check int)
    (label ^ ": same report count")
    (List.length serial.reports)
    (List.length lanes.reports);
  List.iteri
    (fun i (a, b) ->
      if not (report_equal a b) then
        Alcotest.failf "%s: report %d differs (%s vs %s)" label i
          (Fault.Classify.outcome_to_string a.Fault.Classify.outcome)
          (Fault.Classify.outcome_to_string b.Fault.Classify.outcome))
    (List.combine serial.reports lanes.reports);
  Alcotest.(check bool) (label ^ ": same tally") true (C.tally serial = C.tally lanes);
  Alcotest.(check bool) (label ^ ": same worst") true (C.worst serial = C.worst lanes)

let test_run_lanes_matches_serial_fig1 () =
  let net = G.fig1 () in
  let config = config ~seed:5 ~cycles:120 ~max_sites:2 in
  let serial = C.run config net in
  Alcotest.(check bool)
    "campaign is non-trivial" true
    (List.length serial.C.reports >= 10);
  List.iter
    (fun lanes ->
      check_same_result
        (Printf.sprintf "lanes %d" lanes)
        serial
        (C.run_lanes ~lanes config net))
    [ 2; 7; 32; PL.max_lanes ]

let prop_run_lanes_matches_serial =
  QCheck.Test.make ~name:"run_lanes = run on random loopy networks" ~count:12
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0x1a2e |] in
      let net =
        G.random_loopy ~rng ~n_shells:(3 + (seed mod 4)) ~half_probability:0.3
          ()
      in
      let config = config ~seed ~cycles:96 ~max_sites:1 in
      let serial = C.run config net in
      List.for_all
        (fun lanes ->
          let lr = C.run_lanes ~lanes config net in
          serial.C.reports = lr.C.reports)
        [ 2; 7; PL.max_lanes ])

let test_idle_lanes_in_final_batch () =
  (* 6 kinds x 1 site = ~6 faults; lanes 32 puts them all in one batch
     with ~25 idle lanes, lanes 5 leaves a partial final batch *)
  let net = G.fig1 () in
  let config = config ~seed:3 ~cycles:100 ~max_sites:1 in
  let faults = C.faults_of_config config net in
  let n = List.length faults in
  Alcotest.(check bool) "enough faults" true (n >= 5);
  Alcotest.(check bool)
    "lanes 32: idle lanes present" true
    (n < 31);
  let serial = C.run config net in
  check_same_result "lanes 32 (idle lanes)" serial (C.run_lanes ~lanes:32 config net);
  Alcotest.(check bool)
    "lanes 5: partial final batch" true
    (n mod 4 <> 0);
  check_same_result "lanes 5 (partial batch)" serial (C.run_lanes ~lanes:5 config net)

let test_lane_batches_shape () =
  let f i = { (List.hd (C.faults_of_config (config ~seed:1 ~cycles:64 ~max_sites:1) (G.fig1 ()))) with Fault.Model.cycle = 5 + i } in
  let faults = List.init 10 f in
  let batches = C.lane_batches ~lanes:4 faults in
  Alcotest.(check (list int))
    "batches of lanes-1, order kept"
    [ 3; 3; 3; 1 ]
    (List.map List.length batches);
  Alcotest.(check bool) "concat restores input" true (List.concat batches = faults);
  Alcotest.(check (list int))
    "exact multiple leaves no runt"
    [ 3; 3 ]
    (List.map List.length (C.lane_batches ~lanes:4 (List.init 6 f)))

let test_classify_fast_matches_classify () =
  let net = G.fig1 () in
  let config = config ~seed:11 ~cycles:120 ~max_sites:2 in
  let baseline =
    Fault.Classify.baseline ~cycles:config.C.cycles ~flavour:config.C.flavour
      net
  in
  List.iter
    (fun fault ->
      let a = Fault.Classify.classify baseline fault in
      let b = Fault.Classify.classify_fast baseline fault in
      if not (report_equal a b) then
        Alcotest.failf "classify_fast differs on %s (%s vs %s)"
          (Format.asprintf "%a" (Fault.Model.pp net) fault)
          (Fault.Classify.outcome_to_string a.Fault.Classify.outcome)
          (Fault.Classify.outcome_to_string b.Fault.Classify.outcome))
    (C.faults_of_config config net)

let test_lane_reports_sanity () =
  (* a forced stop on a busy boundary diverges, and not before the fault
     is first active; an idle spec list reports nothing *)
  let net = G.fig1 () in
  let spec =
    {
      PL.eff = PL.Force_stop;
      site = PL.Backward { edge = 0; boundary = 0 };
      from_cycle = 10;
      duration = 3;
    }
  in
  let t = PL.create ~lanes:8 net [ spec ] in
  PL.run t ~cycles:80;
  let lr = (PL.lane_reports t).(0) in
  Alcotest.(check bool) "stop fault diverges" true lr.PL.lr_diverged;
  (match lr.PL.lr_first_divergence with
  | Some c ->
      Alcotest.(check bool)
        (Printf.sprintf "first divergence %d not before injection" c)
        true (c >= 10)
  | None -> Alcotest.fail "diverged lane has a first divergence");
  Alcotest.(check bool) "divergent cycles counted" true
    (lr.PL.lr_divergent_cycles >= 1 && lr.PL.lr_divergent_cycles <= 80);
  let idle = PL.create ~lanes:8 net [] in
  PL.run idle ~cycles:80;
  Alcotest.(check int) "no specs, no reports" 0
    (Array.length (PL.lane_reports idle))

let test_spec_validation () =
  let net = G.fig1 () in
  let spec eff site =
    { PL.eff; site; from_cycle = 4; duration = 1 }
  in
  Alcotest.check_raises "lanes too small"
    (Invalid_argument
       (Printf.sprintf "Packed_lanes.create: lanes must be in [2, %d]"
          PL.max_lanes))
    (fun () -> ignore (PL.create ~lanes:1 net []));
  Alcotest.check_raises "too many specs"
    (Invalid_argument "Packed_lanes.create: more specs than injection lanes")
    (fun () ->
      ignore
        (PL.create ~lanes:2 net
           (List.init 2 (fun _ ->
                spec PL.Flip_valid (PL.Forward { edge = 0; seg = 0 })))));
  Alcotest.check_raises "effect on wrong plane"
    (Invalid_argument "Packed_lanes: spec 0 pairs an effect with the wrong site plane")
    (fun () ->
      ignore
        (PL.create ~lanes:4 net
           [ spec PL.Force_stop (PL.Forward { edge = 0; seg = 0 }) ]))

let test_driver_lanes_and_jobs () =
  let rng = Random.State.make [| 0xd4; 0x1e |] in
  let net = G.random_loopy ~rng ~n_shells:6 ~extra_back_edges:1 () in
  let config = config ~seed:17 ~cycles:96 ~max_sites:2 in
  let serial = C.run config net in
  List.iter
    (fun (jobs, lanes) ->
      let par = Campaign.Fault_driver.run ~jobs ~lanes config net in
      Alcotest.(check bool)
        (Printf.sprintf "driver jobs=%d lanes=%d bit-identical" jobs lanes)
        true
        (serial.C.reports = par.C.reports))
    [ (1, 1); (1, PL.max_lanes); (2, 8); (2, PL.max_lanes) ]

let suite =
  [
    Alcotest.test_case "run_lanes = run on fig1, several widths" `Quick
      test_run_lanes_matches_serial_fig1;
    QCheck_alcotest.to_alcotest ~long:false prop_run_lanes_matches_serial;
    Alcotest.test_case "idle lanes in the final batch" `Quick
      test_idle_lanes_in_final_batch;
    Alcotest.test_case "lane_batches shape" `Quick test_lane_batches_shape;
    Alcotest.test_case "classify_fast = classify" `Quick
      test_classify_fast_matches_classify;
    Alcotest.test_case "lane report sanity" `Quick test_lane_reports_sanity;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "driver: lanes x jobs = serial" `Quick
      test_driver_lanes_and_jobs;
  ]
