(* Whole-network RTL vs the protocol skeleton engine, cycle for cycle. *)

open Bitvec
module G = Topology.Generators
module Net = Topology.Network

(* Drive the network RTL with the sinks' stall patterns and collect each
   sink's consumed-value stream; it must equal the engine's. *)
let rtl_sink_streams ?flavour net ~cycles =
  let circ = Topology.Rtl_net.of_network ?flavour ~data_width:16 net in
  let sim = Sim.Cycle_sim.create circ in
  let sinks =
    List.filter_map
      (fun (n : Net.node) ->
        match n.kind with Net.Sink { pattern } -> Some (n, pattern) | _ -> None)
      (Net.nodes net)
  in
  let streams = Hashtbl.create 4 in
  List.iter (fun ((n : Net.node), _) -> Hashtbl.replace streams n.name []) sinks;
  for cycle = 0 to cycles - 1 do
    List.iter
      (fun ((n : Net.node), pattern) ->
        let stall = Topology.Pattern.active pattern ~cycle in
        Sim.Cycle_sim.poke sim ("stall_" ^ n.name) (Bits.of_bool stall);
        let valid = Bits.lsb (Sim.Cycle_sim.peek_output sim ("valid_" ^ n.name)) in
        if valid && not stall then
          Hashtbl.replace streams n.name
            (Bits.to_int (Sim.Cycle_sim.peek_output sim ("data_" ^ n.name))
            :: Hashtbl.find streams n.name))
      sinks;
    Sim.Cycle_sim.step sim
  done;
  List.map
    (fun ((n : Net.node), _) -> (n.name, List.rev (Hashtbl.find streams n.name)))
    sinks

let engine_sink_streams ?flavour net ~cycles =
  let engine = Skeleton.Engine.create ?flavour net in
  Skeleton.Engine.run engine ~cycles;
  List.map
    (fun (n : Net.node) ->
      (n.name, List.map (fun v -> v land 0xffff) (Skeleton.Engine.sink_values engine n.id)))
    (Net.sinks net)

let check_net ?flavour name net =
  let rtl = rtl_sink_streams ?flavour net ~cycles:60 in
  let eng = engine_sink_streams ?flavour net ~cycles:60 in
  Alcotest.(check (list (pair string (list int)))) name eng rtl

let test_fig1 () = check_net "fig1" (G.fig1 ())
let test_fig1_original () =
  check_net ~flavour:Lid.Protocol.Original "fig1 original" (G.fig1 ())

let test_chain () = check_net "chain" (G.chain ~n_shells:3 ())

let test_chain_halves () =
  check_net "chain halves"
    (G.chain ~n_shells:3 ~stations:[ Lid.Relay_station.Half ] ())

let test_stalling_sink () =
  check_net "stalling sink"
    (G.chain ~n_shells:2
       ~sink_pattern:(Topology.Pattern.word [ true; false; false; true; false ])
       ())

let test_soc_like () =
  check_net "reconvergent, mixed stations"
    (G.reconvergent ~stations_kind:Lid.Relay_station.Full ~r_short:1
       ~r_long_head:2 ~r_long_tail:1 ())

let test_ring_probes () =
  (* closed loop: probe outputs observable; shell firing rate = 1/2 *)
  let net = G.fig2 () in
  let circ = Topology.Rtl_net.of_network net in
  let sim = Sim.Cycle_sim.create circ in
  let valids = ref 0 in
  for _ = 1 to 40 do
    if Bits.lsb (Sim.Cycle_sim.peek_output sim "probe_valid_A") then incr valids;
    Sim.Cycle_sim.step sim
  done;
  Alcotest.(check int) "half of 40 cycles valid" 20 !valids

(* Dynamic nets: the channel's compiled delay schedule drives the retx
   station's internal hop in both the skeleton and the RTL, so the sink
   streams must stay cycle-for-cycle equal. *)
let retx_spec lat depth tail =
  Topology.Spec.parse_exn
    (Printf.sprintf
       "source src\n\
        shell  A identity\n\
        sink   out\n\
        src.0 -> A.0 %s: retx:%d\n\
        A.0 -> out.0 : %s\n"
       lat depth tail)

let test_retx_jitter () =
  check_net "retx over jitter channel"
    (retx_spec "latency=jitter:0:2:5 " 6 "full")

let test_retx_table () =
  check_net "retx over table channel"
    (retx_spec "latency=table:0,2,1 " 4 "full")

let test_retx_plain () =
  (* no latency profile: the retx machinery still sequences every token *)
  check_net "retx without profile" (retx_spec "" 2 "full")

let test_retx_stalled_sink () =
  (* back-pressure reaching the receiver's output register: the
     refuse-NACK/rewind path, cycle-for-cycle *)
  let net =
    Topology.Spec.parse_exn
      "source src\n\
       shell  A identity\n\
       sink   out pattern=%0010011\n\
       src.0 -> A.0 latency=jitter:1:2:9 : retx:3\n\
       A.0 -> out.0 : full\n"
  in
  check_net "retx against stalling sink" net

let test_gated_edge_rejected () =
  (* a latency profile without a retx station has no hardware realization
     (the entrance gate is a simulation artifact): clean capability error *)
  let net = retx_spec "latency=fixed:2 " 2 "full" in
  let gated =
    Topology.Spec.parse_exn
      "source src\n\
       shell  A identity\n\
       sink   out\n\
       src.0 -> A.0 latency=fixed:2 : full\n\
       A.0 -> out.0 : full\n"
  in
  ignore (Topology.Rtl_net.of_network net);
  Alcotest.(check bool) "gated edge rejected" true
    (try
       ignore (Topology.Rtl_net.of_network gated);
       false
     with Invalid_argument msg ->
       Astring.String.is_infix ~affix:"entrance gate" msg)

let test_vhdl_of_whole_network () =
  let text = Emit.Vhdl.emit (Topology.Rtl_net.of_network (G.fig1 ())) in
  Alcotest.(check bool) "substantial" true (String.length text > 4000);
  Alcotest.(check bool) "has sink port" true
    (Astring.String.is_infix ~affix:"valid_out : out" text)

let test_unknown_pearl_rejected () =
  let b = Net.builder () in
  let src = Net.add_source b () in
  let s =
    Net.add_shell b
      (Lid.Pearl.create ~name:"mystery" ~n_inputs:1 ~n_outputs:1
         ~initial_output:[| 0 |] (fun st i -> (st, i)))
  in
  let k = Net.add_sink b () in
  let _ = Net.connect b ~src:(src, 0) ~dst:(s, 0) () in
  let _ = Net.connect b ~stations:[] ~src:(s, 0) ~dst:(k, 0) () in
  let net = Net.build b in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topology.Rtl_net.of_network net);
       false
     with Invalid_argument _ -> true)

let prop_random_dags =
  QCheck.Test.make ~name:"random-DAG RTL = skeleton" ~count:15 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed; 67 |] in
      let net =
        Topology.Generators.random_dag ~rng ~n_shells:(2 + (seed mod 4))
          ~half_probability:0.3 ()
      in
      rtl_sink_streams net ~cycles:40 = engine_sink_streams net ~cycles:40)

let prop_random_dags_simplified =
  QCheck.Test.make ~name:"random-DAG optimized RTL = skeleton" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 71 |] in
      let net =
        Topology.Generators.random_dag ~rng ~n_shells:(2 + (seed mod 3)) ()
      in
      (* run the simplifier over the elaborated network before simulating *)
      let circ = Hdl.Simplify.circuit (Topology.Rtl_net.of_network ~data_width:16 net) in
      let sim = Sim.Cycle_sim.create circ in
      let sinks = Net.sinks net in
      let streams = Hashtbl.create 4 in
      List.iter (fun (n : Net.node) -> Hashtbl.replace streams n.name []) sinks;
      for _ = 0 to 39 do
        List.iter
          (fun (n : Net.node) ->
            Sim.Cycle_sim.poke sim ("stall_" ^ n.name) (Bits.of_bool false);
            if Bits.lsb (Sim.Cycle_sim.peek_output sim ("valid_" ^ n.name)) then
              Hashtbl.replace streams n.name
                (Bits.to_int (Sim.Cycle_sim.peek_output sim ("data_" ^ n.name))
                :: Hashtbl.find streams n.name))
          sinks;
        Sim.Cycle_sim.step sim
      done;
      let rtl =
        List.map
          (fun (n : Net.node) -> (n.name, List.rev (Hashtbl.find streams n.name)))
          sinks
      in
      rtl = engine_sink_streams net ~cycles:40)

let test_testbench_generation () =
  let net =
    G.chain ~n_shells:2
      ~sink_pattern:(Topology.Pattern.word [ false; false; true ])
      ()
  in
  let tb = Skeleton.Testbench.vhdl ~cycles:24 net in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true
        (Astring.String.is_infix ~affix tb))
    [
      "entity lid_system_tb";
      "entity work.lid_system";
      "rising_edge(clk)";
      "stall_out <= \"1\"";
      "assert valid_out";
      "testbench completed: 24 cycles checked";
    ];
  (* one wait per checked cycle *)
  let count affix s =
    let n = ref 0 and i = ref 0 in
    let len = String.length affix in
    while !i + len <= String.length s do
      if String.sub s !i len = affix then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "24 edges" 24 (count "wait until rising_edge" tb);
  let bundle = Skeleton.Testbench.bundle ~cycles:8 net in
  Alcotest.(check bool) "bundle has dut" true
    (Astring.String.is_infix ~affix:"entity lid_system is" bundle);
  Alcotest.(check bool) "bundle has tb" true
    (Astring.String.is_infix ~affix:"entity lid_system_tb is" bundle)

let test_testbench_expected_values () =
  (* chain of identities: after warmup the expected data are the counter
     sequence; spot-check one assertion *)
  let net = G.chain ~n_shells:1 () in
  let tb = Skeleton.Testbench.vhdl ~cycles:10 net in
  Alcotest.(check bool) "asserts a concrete payload" true
    (Astring.String.is_infix ~affix:"assert unsigned(data_out) = 3" tb)

let suite =
  [
    Alcotest.test_case "fig1 RTL = skeleton" `Quick test_fig1;
    Alcotest.test_case "testbench generation" `Quick test_testbench_generation;
    Alcotest.test_case "testbench expected values" `Quick
      test_testbench_expected_values;
    QCheck_alcotest.to_alcotest prop_random_dags;
    QCheck_alcotest.to_alcotest prop_random_dags_simplified;
    Alcotest.test_case "fig1 RTL = skeleton (original)" `Quick test_fig1_original;
    Alcotest.test_case "chain RTL = skeleton" `Quick test_chain;
    Alcotest.test_case "half-station chain RTL = skeleton" `Quick test_chain_halves;
    Alcotest.test_case "stalling sink RTL = skeleton" `Quick test_stalling_sink;
    Alcotest.test_case "reconvergent RTL = skeleton" `Quick test_soc_like;
    Alcotest.test_case "closed-loop probes" `Quick test_ring_probes;
    Alcotest.test_case "whole-network VHDL" `Quick test_vhdl_of_whole_network;
    Alcotest.test_case "unknown pearl rejected" `Quick test_unknown_pearl_rejected;
    Alcotest.test_case "retx/jitter RTL = skeleton" `Quick test_retx_jitter;
    Alcotest.test_case "retx/table RTL = skeleton" `Quick test_retx_table;
    Alcotest.test_case "plain retx RTL = skeleton" `Quick test_retx_plain;
    Alcotest.test_case "retx vs stalling sink RTL = skeleton" `Quick
      test_retx_stalled_sink;
    Alcotest.test_case "gated edge rejected" `Quick test_gated_edge_rejected;
  ]
