(* Property: a relay-station chain is a FIFO.  For any chain composition
   (full, half, mixed, including the station-less channel), any periodic
   producer/consumer duty pattern, and both protocol flavours, the values
   a sink consumes are exactly the values the source emitted — no token
   lost, duplicated or reordered.  The same runs double as the oracle for
   the runtime monitors of lib/fault: fault-free, they must stay silent. *)

module Net = Topology.Network
module RS = Lid.Relay_station

type case = {
  kinds : RS.kind list;
  src_duty : (int * int) option;  (* (period, active), None = always *)
  snk_duty : (int * int) option;
  flavour : Lid.Protocol.flavour;
}

let pattern = function
  | None -> None
  | Some (period, active) -> Some (Topology.Pattern.periodic ~period ~active ())

let make_net case =
  let b = Net.builder () in
  let src = Net.add_source b ~name:"p" ?pattern:(pattern case.src_duty) () in
  let snk = Net.add_sink b ~name:"q" ?pattern:(pattern case.snk_duty) () in
  let _ = Net.connect b ~stations:case.kinds ~src:(src, 0) ~dst:(snk, 0) () in
  Net.build ~allow_direct:true b

let case_gen =
  let open QCheck.Gen in
  let duty =
    oneof
      [
        return None;
        (int_range 2 5 >>= fun period ->
         int_range 1 (period - 1) >>= fun active -> return (Some (period, active)));
      ]
  in
  list_size (int_range 0 4) (oneofl [ RS.Full; RS.Half ]) >>= fun kinds ->
  duty >>= fun src_duty ->
  duty >>= fun snk_duty ->
  oneofl [ Lid.Protocol.Original; Lid.Protocol.Optimized ] >>= fun flavour ->
  return { kinds; src_duty; snk_duty; flavour }

let case_print case =
  Printf.sprintf "chain [%s], src %s, snk %s, %s"
    (String.concat "; "
       (List.map (function RS.Full -> "full" | RS.Half -> "half") case.kinds))
    (match case.src_duty with
    | None -> "always"
    | Some (p, a) -> Printf.sprintf "%d/%d" a p)
    (match case.snk_duty with
    | None -> "always"
    | Some (p, a) -> Printf.sprintf "%d/%d" a p)
    (match case.flavour with
    | Lid.Protocol.Original -> "original"
    | Lid.Protocol.Optimized -> "optimized")

let prop_chain_is_fifo =
  QCheck.Test.make ~name:"relay chains never lose/duplicate/reorder" ~count:300
    (QCheck.make ~print:case_print case_gen)
    (fun case ->
      let net = make_net case in
      let engine = Skeleton.Engine.create ~flavour:case.flavour net in
      let mon = Fault.Monitor.create net in
      Fault.Monitor.attach mon engine;
      Skeleton.Engine.run engine ~cycles:150;
      let got = Skeleton.Engine.sink_values engine 1 in
      (* sources emit 0, 1, 2, ... so FIFO conservation means the sink
         stream is exactly the consecutive integers from 0 *)
      let consecutive = List.mapi (fun i v -> i = v) got in
      if not (List.for_all (fun b -> b) consecutive) then
        QCheck.Test.fail_reportf "stream broken: %s"
          (String.concat " " (List.map string_of_int got));
      (match Fault.Monitor.violations mon with
      | [] -> ()
      | v :: _ ->
          QCheck.Test.fail_reportf "monitor fired fault-free: %s"
            (Format.asprintf "%a" (Fault.Monitor.pp_violation net) v));
      (* the channel must actually flow: at least one token per duty-limited
         period window *)
      List.length got > 0)

let suite = [ QCheck_alcotest.to_alcotest prop_chain_is_fifo ]
