(* Property: a relay-station chain is a FIFO.  For any chain composition
   (full, half, mixed, including the station-less channel), any periodic
   producer/consumer duty pattern, and both protocol flavours, the values
   a sink consumes are exactly the values the source emitted — no token
   lost, duplicated or reordered.  The same runs double as the oracle for
   the runtime monitors of lib/fault: fault-free, they must stay silent. *)

module Net = Topology.Network
module RS = Lid.Relay_station

type case = {
  kinds : RS.kind list;
  src_duty : (int * int) option;  (* (period, active), None = always *)
  snk_duty : (int * int) option;
  flavour : Lid.Protocol.flavour;
}

let pattern = function
  | None -> None
  | Some (period, active) -> Some (Topology.Pattern.periodic ~period ~active ())

let make_net case =
  let b = Net.builder () in
  let src = Net.add_source b ~name:"p" ?pattern:(pattern case.src_duty) () in
  let snk = Net.add_sink b ~name:"q" ?pattern:(pattern case.snk_duty) () in
  let _ = Net.connect b ~stations:case.kinds ~src:(src, 0) ~dst:(snk, 0) () in
  Net.build ~allow_direct:true b

let case_gen =
  let open QCheck.Gen in
  let duty =
    oneof
      [
        return None;
        (int_range 2 5 >>= fun period ->
         int_range 1 (period - 1) >>= fun active -> return (Some (period, active)));
      ]
  in
  list_size (int_range 0 4) (oneofl [ RS.Full; RS.Half ]) >>= fun kinds ->
  duty >>= fun src_duty ->
  duty >>= fun snk_duty ->
  oneofl [ Lid.Protocol.Original; Lid.Protocol.Optimized ] >>= fun flavour ->
  return { kinds; src_duty; snk_duty; flavour }

let case_print case =
  Printf.sprintf "chain [%s], src %s, snk %s, %s"
    (String.concat "; " (List.map RS.kind_to_string case.kinds))
    (match case.src_duty with
    | None -> "always"
    | Some (p, a) -> Printf.sprintf "%d/%d" a p)
    (match case.snk_duty with
    | None -> "always"
    | Some (p, a) -> Printf.sprintf "%d/%d" a p)
    (match case.flavour with
    | Lid.Protocol.Original -> "original"
    | Lid.Protocol.Optimized -> "optimized")

let prop_chain_is_fifo =
  QCheck.Test.make ~name:"relay chains never lose/duplicate/reorder" ~count:300
    (QCheck.make ~print:case_print case_gen)
    (fun case ->
      let net = make_net case in
      let engine = Skeleton.Engine.create ~flavour:case.flavour net in
      let mon = Fault.Monitor.create net in
      Fault.Monitor.attach mon engine;
      Skeleton.Engine.run engine ~cycles:150;
      let got = Skeleton.Engine.sink_values engine 1 in
      (* sources emit 0, 1, 2, ... so FIFO conservation means the sink
         stream is exactly the consecutive integers from 0 *)
      let consecutive = List.mapi (fun i v -> i = v) got in
      if not (List.for_all (fun b -> b) consecutive) then
        QCheck.Test.fail_reportf "stream broken: %s"
          (String.concat " " (List.map string_of_int got));
      (match Fault.Monitor.violations mon with
      | [] -> ()
      | v :: _ ->
          QCheck.Test.fail_reportf "monitor fired fault-free: %s"
            (Format.asprintf "%a" (Fault.Monitor.pp_violation net) v));
      (* the channel must actually flow: at least one token per duty-limited
         period window *)
      List.length got > 0)

(* --- dynamic LID: retransmitting chains under link faults ----------- *)

(* Property: a chain containing a retransmitting station, spanning a
   variable-latency channel, delivers the EXACT token sequence of the
   fault-free reference — in order, exactly once — under any burst of
   recoverable link faults (detectable corruption, drops, duplicated
   deliveries).  This is the recovery guarantee of the go-back-N protocol,
   checked end to end through the engine. *)

type retx_case = {
  r_depth : int;
  r_bound : int;  (* jitter bound of the channel's latency profile *)
  r_seed : int;
  r_pre : RS.kind list;  (* stations ahead of the retx one *)
  r_post : RS.kind list;
  r_faults : (int * int) list;  (* (cycle, fault selector 0..2) *)
  r_flavour : Lid.Protocol.flavour;
}

let make_retx_net case =
  let b = Net.builder () in
  let src = Net.add_source b ~name:"p" () in
  let snk = Net.add_sink b ~name:"q" () in
  let stations =
    case.r_pre @ (RS.Retx { depth = case.r_depth } :: case.r_post)
  in
  let latency =
    if case.r_bound = 0 then None
    else Some (Lid.Latency.Jitter { base = 0; bound = case.r_bound; seed = case.r_seed })
  in
  let _ = Net.connect b ~stations ?latency ~src:(src, 0) ~dst:(snk, 0) () in
  Net.build ~allow_direct:true b

let link_hooks faults =
  {
    Skeleton.Engine.fh_forward = (fun ~cycle:_ ~edge:_ ~seg:_ tok -> tok);
    fh_stop = (fun ~cycle:_ ~edge:_ ~boundary:_ stop -> stop);
    fh_station = (fun ~cycle:_ ~edge:_ ~station:_ st -> st);
    fh_link =
      (fun ~cycle ~edge:_ ~station:_ ->
        match List.assoc_opt cycle faults with
        | Some 0 -> RS.Link_corrupt 0x33
        | Some 1 -> RS.Link_drop
        | Some _ -> RS.Link_dup
        | None -> RS.Link_ok);
  }

let retx_case_gen =
  let open QCheck.Gen in
  int_range 1 6 >>= fun r_depth ->
  int_range 0 3 >>= fun r_bound ->
  int_range 1 1000 >>= fun r_seed ->
  list_size (int_range 0 2) (oneofl [ RS.Full; RS.Half ]) >>= fun r_pre ->
  list_size (int_range 0 2) (oneofl [ RS.Full; RS.Half ]) >>= fun r_post ->
  list_size (int_range 0 8)
    (pair (int_range 2 120) (int_range 0 2))
  >>= fun r_faults ->
  oneofl [ Lid.Protocol.Original; Lid.Protocol.Optimized ] >>= fun r_flavour ->
  return { r_depth; r_bound; r_seed; r_pre; r_post; r_faults; r_flavour }

let retx_case_print case =
  Printf.sprintf "retx:%d bound %d seed %d, pre [%s], post [%s], faults [%s], %s"
    case.r_depth case.r_bound case.r_seed
    (String.concat "; " (List.map RS.kind_to_string case.r_pre))
    (String.concat "; " (List.map RS.kind_to_string case.r_post))
    (String.concat "; "
       (List.map (fun (c, k) -> Printf.sprintf "%d:%d" c k) case.r_faults))
    (match case.r_flavour with
    | Lid.Protocol.Original -> "original"
    | Lid.Protocol.Optimized -> "optimized")

let prop_retx_chain_recovers =
  QCheck.Test.make
    ~name:"retransmitting chains deliver the fault-free sequence" ~count:200
    (QCheck.make ~print:retx_case_print retx_case_gen)
    (fun case ->
      let cycles = 220 in
      (* fault-free reference stream *)
      let net = make_retx_net case in
      let engine = Skeleton.Engine.create ~flavour:case.r_flavour net in
      Skeleton.Engine.run engine ~cycles;
      let reference = Skeleton.Engine.sink_values engine 1 in
      (* same system under the injected link-fault schedule *)
      let faulted = Skeleton.Engine.create ~flavour:case.r_flavour net in
      Skeleton.Engine.set_fault_hooks faulted (Some (link_hooks case.r_faults));
      let mon = Fault.Monitor.create net in
      Fault.Monitor.attach mon faulted;
      Skeleton.Engine.run faulted ~cycles;
      let got = Skeleton.Engine.sink_values faulted 1 in
      (* recoverable faults may slow delivery but never change the
         sequence: the faulted stream is a prefix of the reference *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      if not (is_prefix got reference) then
        QCheck.Test.fail_reportf "sequence diverged:\nref %s\ngot %s"
          (String.concat " " (List.map string_of_int reference))
          (String.concat " " (List.map string_of_int got));
      (match Fault.Monitor.violations mon with
      | [] -> ()
      | v :: _ ->
          QCheck.Test.fail_reportf "monitor fired on a recoverable fault: %s"
            (Format.asprintf "%a" (Fault.Monitor.pp_violation net) v));
      (* the system must not wedge: deliveries keep coming after the last
         fault has passed *)
      List.length got > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_chain_is_fifo;
    QCheck_alcotest.to_alcotest prop_retx_chain_recovers;
  ]
