(* The assume-guarantee layer: per-class contract discharge (the measured
   strength matrix, memoization), the composed network verdicts LID009-
   LID011, and the qcheck cross-validation of the composed deadlock
   verdict against explicit-state reachability wherever both decide. *)

module Net = Topology.Network
module G = Topology.Generators
module RS = Lid.Relay_station
module C = Verify.Contract
module D = Lint.Diagnostic
module Compose = Lint.Compose

let optimized = Lid.Protocol.Optimized
let original = Lid.Protocol.Original

let codes (r : Compose.report) =
  List.sort_uniq compare
    (List.map (fun (d : D.t) -> D.code_id d.D.code) r.Compose.diagnostics)

let find_code (r : Compose.report) code =
  List.filter (fun (d : D.t) -> D.code_id d.D.code = code) r.Compose.diagnostics

(* ------------------------------------------------------------------ *)
(* Class discharge: the strength matrix. *)

let proved = function C.Proved _ -> true | _ -> false

let check_class ~flavour cls ~strong =
  let v = C.discharge ~flavour cls in
  let name = C.class_key ~flavour cls in
  Alcotest.(check bool) (name ^ " handshake proved") true (proved v.C.handshake);
  Alcotest.(check bool)
    (name ^ " responsive proved")
    true
    (proved v.C.responsive);
  Alcotest.(check bool)
    (name ^ " stall_implies_token")
    strong v.C.stall_implies_token

let test_strength_matrix_optimized () =
  check_class ~flavour:optimized (C.Shell { n_inputs = 1; n_outputs = 1 })
    ~strong:true;
  check_class ~flavour:optimized (C.Shell { n_inputs = 1; n_outputs = 2 })
    ~strong:true;
  check_class ~flavour:optimized (C.Shell { n_inputs = 2; n_outputs = 1 })
    ~strong:false;
  check_class ~flavour:optimized (C.Shell { n_inputs = 2; n_outputs = 2 })
    ~strong:false;
  check_class ~flavour:optimized (C.Station { kind = RS.Full; table = [||] })
    ~strong:true;
  (* the cure: the optimized half station is a strong guarantee *)
  check_class ~flavour:optimized (C.Station { kind = RS.Half; table = [||] })
    ~strong:true

let test_strength_matrix_original () =
  check_class ~flavour:original (C.Shell { n_inputs = 1; n_outputs = 1 })
    ~strong:false;
  check_class ~flavour:original (C.Shell { n_inputs = 2; n_outputs = 2 })
    ~strong:false;
  check_class ~flavour:original (C.Station { kind = RS.Full; table = [||] })
    ~strong:true;
  (* the paper's deadlock: the original half station can sustain stop
     while empty *)
  check_class ~flavour:original (C.Station { kind = RS.Half; table = [||] })
    ~strong:false

let test_retx_and_gate_classes () =
  check_class ~flavour:optimized
    (C.Station { kind = RS.Retx { depth = 4 }; table = [| 0 |] })
    ~strong:true;
  check_class ~flavour:original
    (C.Station { kind = RS.Retx { depth = 4 }; table = [| 0 |] })
    ~strong:true;
  check_class ~flavour:optimized (C.Gate { table = [| 1; 0 |] }) ~strong:true

let test_symbolic_cross_check () =
  (* full/half station verdicts carry an independent BDD confirmation
     over the generated RTL *)
  List.iter
    (fun (flavour, kind) ->
      let v = C.discharge ~flavour (C.Station { kind; table = [||] }) in
      match v.C.symbolic with
      | Some (_, holds) ->
          Alcotest.(check bool)
            (C.class_key ~flavour v.C.cls ^ " symbolic = probed")
            v.C.stall_implies_token holds
      | None ->
          Alcotest.fail
            (C.class_key ~flavour v.C.cls ^ ": expected a symbolic leg"))
    [
      (optimized, RS.Full);
      (optimized, RS.Half);
      (original, RS.Full);
      (original, RS.Half);
    ]

let test_memoization () =
  C.memo_clear ();
  let net = G.mesh ~n:4 ~m:4 () in
  let r1 = Compose.run ~flavour:optimized net in
  let distinct1, _ = C.memo_stats () in
  Alcotest.(check int)
    "distinct classes = class table size" distinct1
    (List.length r1.Compose.classes);
  let r2 = Compose.run ~flavour:optimized net in
  let distinct2, hits2 = C.memo_stats () in
  Alcotest.(check int) "second run discharges nothing new" distinct1 distinct2;
  Alcotest.(check bool)
    "second run hits the memo" true
    (hits2 >= List.length r2.Compose.classes)

(* ------------------------------------------------------------------ *)
(* Seeded contract mutants refute their class: LID009. *)

let mutant_refuted step =
  let net = G.chain ~n_shells:2 ~stations:[ RS.Full ] () in
  let r = Compose.run ~flavour:optimized ~station_step:step net in
  let lid009 = find_code r "LID009" in
  Alcotest.(check bool) "LID009 emitted" true (lid009 <> []);
  Alcotest.(check bool)
    "LID009 is an error" true
    (List.exists (fun (d : D.t) -> d.D.severity = D.Error) lid009);
  List.iter
    (fun (d : D.t) ->
      match d.D.params with
      | D.P_contract { cls; outcome; _ } ->
          Alcotest.(check bool)
            "names the station class" true
            (Astring.String.is_infix ~affix:"station:full" cls);
          Alcotest.(check bool)
            "outcome is a refutation" true
            (Astring.String.is_infix ~affix:"refuted" outcome)
      | _ -> Alcotest.fail "LID009 params should be P_contract")
    lid009

let test_mutant_drop_on_stop () = mutant_refuted Verify.Props.mutant_drop_on_stop
let test_mutant_no_hold () = mutant_refuted Verify.Props.mutant_no_hold
let test_mutant_duplicate () = mutant_refuted Verify.Props.mutant_duplicate

(* ------------------------------------------------------------------ *)
(* Composed verdicts on known topologies. *)

let test_clean_networks () =
  List.iter
    (fun (name, flavour, net) ->
      let r = Compose.run ~flavour net in
      Alcotest.(check int)
        (name ^ ": no errors")
        0
        (Compose.count r D.Error);
      Alcotest.(check bool) (name ^ ": deadlock free") true r.Compose.deadlock_free)
    [
      ("fig1/optimized", optimized, G.fig1 ());
      ("fig1/original", original, G.fig1 ());
      ("fig2/optimized", optimized, G.fig2 ());
      ("mesh4x4/optimized", optimized, G.mesh ~n:4 ~m:4 ());
      ("mesh4x4/original", original, G.mesh ~n:4 ~m:4 ());
      ("torus3x3/optimized", optimized, G.torus ~n:3 ~m:3 ());
      ("ring4-half/optimized", optimized,
       G.ring_tapped ~n_shells:4 ~stations:[ RS.Half ] ());
    ]

let test_lid010_half_ring_original () =
  (* the paper's deadlock/cure story, found compositionally: an open ring
     of half stations starves under Original and is safe under Optimized *)
  let net () = G.ring_tapped ~n_shells:4 ~stations:[ RS.Half ] () in
  let r = Compose.run ~flavour:original (net ()) in
  let lid010 = find_code r "LID010" in
  Alcotest.(check int) "one LID010" 1 (List.length lid010);
  Alcotest.(check bool) "not deadlock free" false r.Compose.deadlock_free;
  let d = List.hd lid010 in
  Alcotest.(check bool) "it is an error" true (d.D.severity = D.Error);
  (match d.D.params with
  | D.P_cycle { length; classes } ->
      Alcotest.(check int) "cycle length" 4 length;
      Alcotest.(check bool)
        "half station fuels it" true
        (List.exists (Astring.String.is_infix ~affix:"station:half") classes)
  | _ -> Alcotest.fail "LID010 params should be P_cycle");
  (* the fix-it proposes one full station on a loop channel; applying it
     cures the composed verdict *)
  (match d.D.fixits with
  | [ { D.fix_edge; fix_spare } ] ->
      Alcotest.(check int) "one spare station" 1 fix_spare;
      let e = List.find (fun (e : Net.edge) -> e.Net.id = fix_edge)
          (Net.edges r.Compose.net) in
      let cured =
        Net.with_stations r.Compose.net fix_edge (e.Net.stations @ [ RS.Full ])
      in
      let r' = Compose.run ~flavour:original cured in
      Alcotest.(check (list string))
        "fix-it cures the cycle" []
        (List.map (fun (d : D.t) -> D.code_id d.D.code) (find_code r' "LID010"))
      (* not deadlock-free yet: the other half->shell weak links still
         wedge — exactly what the explicit engine says of the cured ring *)
  | _ -> Alcotest.fail "LID010 should carry exactly one fix-it");
  Alcotest.(check bool)
    "optimized flavour is the cure" true
    (Compose.run ~flavour:optimized (net ())).Compose.deadlock_free

let test_lid011_weak_link_wedges () =
  (* the glue obligation: under Original a half station facing a shell
     wedges as soon as a void arrives — composed and explicit agree *)
  let net = G.chain ~n_shells:2 ~stations:[ RS.Half ] () in
  let r = Compose.run ~flavour:original net in
  Alcotest.(check bool) "LID011 emitted" true (find_code r "LID011" <> []);
  Alcotest.(check bool) "not deadlock free" false r.Compose.deadlock_free;
  Alcotest.(check bool)
    "no cycle finding on a pipeline" true
    (find_code r "LID010" = []);
  (* a full station after the half re-establishes the strong face *)
  let r' =
    Compose.run ~flavour:original
      (G.chain ~n_shells:2 ~stations:[ RS.Half; RS.Full ] ())
  in
  Alcotest.(check bool) "half+full is clean" true r'.Compose.deadlock_free;
  (* facing a sink (not a shell) the weak face is harmless *)
  Alcotest.(check (list string))
    "codes on the weak chain" [ "LID011" ] (codes r);
  (* and with no sources (closed torus) the voids never come: exempt *)
  let torus = Compose.run ~flavour:original (G.torus ~n:2 ~m:2 ~stations:[ RS.Half ] ()) in
  Alcotest.(check bool) "closed torus exempt" true torus.Compose.deadlock_free

let test_lid011_direct_channel () =
  (* a station-less shell-to-shell channel: no memory element backs the
     consumer's interface assumption *)
  let b = Net.builder () in
  let src = Net.add_source b ~name:"src" () in
  let a = Net.add_shell b ~name:"a" (Lid.Pearl.identity ()) in
  let c = Net.add_shell b ~name:"c" (Lid.Pearl.identity ()) in
  let k = Net.add_sink b ~name:"k" () in
  ignore (Net.connect b ~stations:[ RS.Full ] ~src:(src, 0) ~dst:(a, 0) ());
  ignore (Net.connect b ~stations:[] ~src:(a, 0) ~dst:(c, 0) ());
  ignore (Net.connect b ~stations:[] ~src:(c, 0) ~dst:(k, 0) ());
  let net = Net.build ~allow_direct:true b in
  let r = Compose.run ~flavour:optimized net in
  let lid011 = find_code r "LID011" in
  Alcotest.(check int) "one LID011" 1 (List.length lid011);
  let d = List.hd lid011 in
  Alcotest.(check bool) "it is an error" true (d.D.severity = D.Error);
  match d.D.params with
  | D.P_assume { producer; consumer } ->
      Alcotest.(check bool)
        "producer side is combinational" true
        (Astring.String.is_infix ~affix:"combinational" producer);
      Alcotest.(check bool)
        "consumer assumes a registered face" true
        (Astring.String.is_infix ~affix:"registered" consumer)
  | _ -> Alcotest.fail "LID011 params should be P_assume"

let test_lid011_refuted_guarantee_through_half () =
  (* a refuted station class taints every channel it feeds: the mismatch
     is reported at the consumer, through the pass-through half station *)
  let net = G.chain ~n_shells:2 ~stations:[ RS.Half ] () in
  let r =
    Compose.run ~flavour:optimized
      ~station_step:Verify.Props.mutant_drop_on_stop net
  in
  Alcotest.(check bool) "LID009 present" true (find_code r "LID009" <> []);
  Alcotest.(check bool) "LID011 present" true (find_code r "LID011" <> [])

let test_json_shape () =
  let r =
    Compose.run ~flavour:original
      (G.ring_tapped ~n_shells:3 ~stations:[ RS.Half ] ())
  in
  let json = Compose.to_json r in
  (match Lidjson.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("verify report is not valid JSON: " ^ e));
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true
        (Astring.String.is_infix ~affix json))
    [
      "\"flavour\""; "\"classes\""; "\"stall_implies_token\"";
      "\"diagnostics\""; "\"LID010\""; "\"deadlock_free\"";
    ]

(* ------------------------------------------------------------------ *)
(* Cross-validation: composed deadlock verdict == explicit-state
   reachability, wherever the flat engine can decide at all. *)

let explicit_verdict ?(max_states = 200_000) ~flavour net =
  match Verify.Closed.check_deadlock_free ~flavour ~max_states net with
  | Verify.Reach.Live _ -> Some true
  | Verify.Reach.Wedged _ -> Some false
  | exception Verify.Reach.State_space_exceeded _ -> None

let agree ?max_states name ~flavour net =
  let composed = (Compose.run ~flavour net).Compose.deadlock_free in
  match explicit_verdict ?max_states ~flavour net with
  | None -> true (* undecided: nothing to compare *)
  | Some explicit ->
      if composed = explicit then true
      else
        QCheck.Test.fail_reportf
          "%s: composed says deadlock_free=%b, explicit says %b" name composed
          explicit

let prop_composed_matches_explicit =
  (* the paper figures, chains, open rings, tori, retx chains and small
     meshes over both flavours and every station kind mix.  Retx chains
     and meshes are measured to exceed any reasonable explicit budget
     (the choice enumeration alone is exponential in environment size),
     so they run under a small budget and compare vacuously when the
     flat engine gives up — the composed side still runs in full *)
  QCheck.Test.make ~name:"composed deadlock verdict = explicit-state verdict"
    ~count:60
    QCheck.(
      triple (int_range 0 6) (int_range 0 2) (pair small_int bool))
    (fun (shape, station_mix, (size_seed, orig)) ->
      let flavour = if orig then original else optimized in
      let stations =
        match station_mix with
        | 0 -> [ RS.Full ]
        | 1 -> [ RS.Half ]
        | _ -> [ RS.Half; RS.Full ]
      in
      let n = 2 + (size_seed mod 3) in
      let name, net, max_states =
        match shape with
        | 0 -> ("fig1", G.fig1 (), None)
        | 1 -> ("fig2", G.fig2 (), None)
        | 2 ->
            (Printf.sprintf "chain%d" n, G.chain ~n_shells:n ~stations (), None)
        | 3 ->
            ( Printf.sprintf "ring%d" (n + 1),
              G.ring_tapped ~n_shells:(n + 1) ~stations (),
              None )
        | 4 -> ("torus2x2", G.torus ~n:2 ~m:2 ~stations (), None)
        | 5 ->
            ( "retx-chain",
              G.chain ~n_shells:1
                ~stations:[ RS.Retx { depth = 2 + (size_seed mod 3) } ]
                (),
              Some 2_000 )
        | _ -> ("mesh2x2", G.mesh ~n:2 ~m:2 ~stations (), Some 2_000)
      in
      agree ?max_states
        (Printf.sprintf "%s/%s/%s" name
           (Lid.Protocol.to_string flavour)
           (String.concat "+" (List.map RS.kind_to_string stations)))
        ~flavour net)

let prop_random_soc_composed_matches_explicit =
  QCheck.Test.make ~name:"random SoC: composed verdict = explicit-state verdict"
    ~count:15
    QCheck.(pair (int_range 1 5) small_int)
    (fun (n_shells, seed) ->
      let rng = Random.State.make [| 0xc05e; seed |] in
      let net =
        G.random_soc ~rng ~n_shells ~loop_density:0.3 ~half_probability:0.4 ()
      in
      (* the flat engine enumerates 2^(sources+sinks) environment choices
         per state; cap the environment so the explicit leg terminates *)
      let env =
        List.length (Net.sources net) + List.length (Net.sinks net)
      in
      env > 6
      || agree ~max_states:20_000
           (Printf.sprintf "soc%d seed %d orig" n_shells seed)
           ~flavour:original net
         && agree ~max_states:20_000
              (Printf.sprintf "soc%d seed %d opt" n_shells seed)
              ~flavour:optimized net)

let suite =
  [
    Alcotest.test_case "strength matrix (optimized)" `Quick
      test_strength_matrix_optimized;
    Alcotest.test_case "strength matrix (original)" `Quick
      test_strength_matrix_original;
    Alcotest.test_case "retx and gate classes" `Quick test_retx_and_gate_classes;
    Alcotest.test_case "symbolic cross-check" `Quick test_symbolic_cross_check;
    Alcotest.test_case "class discharge is memoized" `Quick test_memoization;
    Alcotest.test_case "mutant drop-on-stop refuted (LID009)" `Quick
      test_mutant_drop_on_stop;
    Alcotest.test_case "mutant no-hold refuted (LID009)" `Quick
      test_mutant_no_hold;
    Alcotest.test_case "mutant duplicate refuted (LID009)" `Quick
      test_mutant_duplicate;
    Alcotest.test_case "clean networks verify clean" `Quick test_clean_networks;
    Alcotest.test_case "half-ring deadlock and cure (LID010)" `Quick
      test_lid010_half_ring_original;
    Alcotest.test_case "weak link wedges (LID011)" `Quick
      test_lid011_weak_link_wedges;
    Alcotest.test_case "direct channel mismatch (LID011)" `Quick
      test_lid011_direct_channel;
    Alcotest.test_case "refuted guarantee through half (LID011)" `Quick
      test_lid011_refuted_guarantee_through_half;
    Alcotest.test_case "verify report JSON" `Quick test_json_shape;
    QCheck_alcotest.to_alcotest prop_composed_matches_explicit;
    QCheck_alcotest.to_alcotest prop_random_soc_composed_matches_explicit;
  ]
