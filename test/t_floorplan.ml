module F = Topology.Floorplan
module Net = Topology.Network

let simple ?(coproc_xy = (9.0, 8.0)) () =
  let f = F.create () in
  let src = F.add_source f ~name:"src" ~x:0.0 ~y:0.0 () in
  let a = F.add_shell f ~name:"a" ~x:1.0 ~y:0.0 (Lid.Pearl.fork2 ()) in
  let b =
    F.add_shell f ~name:"b" ~x:(fst coproc_xy) ~y:(snd coproc_xy)
      (Lid.Pearl.identity ())
  in
  let c = F.add_shell f ~name:"c" ~x:2.0 ~y:1.0 (Lid.Pearl.adder ()) in
  let k = F.add_sink f ~name:"k" ~x:3.0 ~y:1.0 () in
  F.connect f ~src:(src, 0) ~dst:(a, 0);
  F.connect f ~src:(a, 0) ~dst:(c, 0);
  F.connect f ~src:(a, 1) ~dst:(b, 0);
  F.connect f ~src:(b, 0) ~dst:(c, 1);
  F.connect f ~src:(c, 0) ~dst:(k, 0);
  f

let test_station_counts_scale_with_clock () =
  let stations reach =
    let _, r = F.synthesize ~reach (simple ()) in
    r.F.full_stations
  in
  let coarse = stations 100.0 and medium = stations 8.0 and fine = stations 2.0 in
  Alcotest.(check int) "one-cycle wires need no full stations" 0 coarse;
  Alcotest.(check bool) "finer clock, more stations" true (fine > medium);
  Alcotest.(check bool) "medium has some" true (medium > 0)

let test_short_shell_channels_get_half () =
  let _, r = F.synthesize ~reach:100.0 (simple ()) in
  (* 4 shell-to-shell(ish) channels get a half station; the sink channel
     gets none *)
  Alcotest.(check int) "halves" 4 r.F.half_stations;
  let into_sink = List.nth r.F.channels 4 in
  Alcotest.(check (list bool)) "sink channel empty" []
    (List.map (fun _ -> true) into_sink.F.stations)

let test_wire_cycles_from_distance () =
  let _, r = F.synthesize ~reach:4.0 (simple ()) in
  let ab = List.nth r.F.channels 2 in
  (* a(1,0) -> b(9,8): manhattan 16 -> 4 cycles at reach 4 *)
  Alcotest.(check string) "a->b" "b" ab.F.dst_name;
  Alcotest.(check int) "cycles" 4 ab.F.wire_cycles;
  Alcotest.(check int) "stations = cycles - 1" 3 (List.length ab.F.stations)

let test_synthesized_network_is_valid_and_live () =
  let net, _ = F.synthesize ~reach:3.0 (simple ()) in
  (* builder validation passed; protocol behaves *)
  match Skeleton.Equiv.check net with
  | Skeleton.Equiv.Equivalent { checked } ->
      Alcotest.(check bool) "values flowed" true (checked > 50)
  | Skeleton.Equiv.Divergent _ -> Alcotest.fail "diverged"

let test_throughput_drops_then_equalizes () =
  let net, _ = F.synthesize ~reach:2.0 (simple ()) in
  let before = Topology.Elastic.throughput_bound net in
  Alcotest.(check bool) "unbalanced detour costs throughput" true (before < 1.0);
  let net', _ = Topology.Equalize.optimize net in
  Alcotest.(check (float 1e-9)) "equalization recovers" 1.0
    (Topology.Elastic.throughput_bound net')

let test_balanced_floorplan_needs_nothing () =
  (* if the detour is as short as the direct path, nothing is lost *)
  let net, _ = F.synthesize ~reach:2.0 (simple ~coproc_xy:(1.5, 1.0) ()) in
  Alcotest.(check (float 1e-9)) "full speed" 1.0
    (Topology.Elastic.throughput_bound net)

let steady net =
  match Skeleton.Measure.steady_ratio_packed (Skeleton.Packed.create net) with
  | Some (fired, period) -> float_of_int fired /. float_of_int period
  | None -> Alcotest.fail "no steady period found"

let test_latency_synthesis_profiles () =
  let reach = 4.0 in
  let _, r = F.synthesize_latency ~reach (simple ()) in
  let multi = List.filter (fun c -> c.F.wire_cycles > 1) r.F.channels in
  Alcotest.(check bool) "floorplan has long wires" true (multi <> []);
  List.iter
    (fun c ->
      let label = c.F.src_name ^ "->" ^ c.F.dst_name in
      match c.F.profile with
      | Some (Lid.Latency.Distance _ as p) ->
          Alcotest.(check int)
            (label ^ " profile delay = wire_cycles - 1")
            (c.F.wire_cycles - 1) (Lid.Latency.max_delay p);
          Alcotest.(check (list string))
            (label ^ " one full station")
            [ "full" ]
            (List.map Lid.Relay_station.kind_to_string c.F.stations)
      | _ -> Alcotest.fail (label ^ ": expected a Distance profile"))
    multi;
  List.iter
    (fun c ->
      match c.F.profile with
      | None -> ()
      | Some _ ->
          Alcotest.fail (c.F.src_name ^ ": single-cycle wire got a profile"))
    (List.filter (fun c -> c.F.wire_cycles <= 1) r.F.channels);
  (* one full station per long wire, instead of [wire_cycles - 1] *)
  Alcotest.(check int) "full stations" (List.length multi) r.F.full_stations

let with_explicit_tables net =
  List.fold_left
    (fun net (e : Net.edge) ->
      match e.Net.latency with
      | Some p ->
          Net.with_latency net e.Net.id
            (Some (Lid.Latency.Table [| Lid.Latency.max_delay p |]))
      | None -> net)
    net (Net.edges net)

let test_latency_synthesis_lockstep () =
  (* the derived [Distance] profile and the hand-written [Table] profile it
     is documented to equal must drive the skeleton identically, and the
     dynamic rendering must still compute the same values as the reference
     model *)
  let check_reach reach =
    let net_stations, _ = F.synthesize ~reach (simple ()) in
    let net_profile, _ = F.synthesize_latency ~reach (simple ()) in
    let p = steady net_profile in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "reach %.1f: distance lockstep with explicit table" reach)
      p
      (steady (with_explicit_tables net_profile));
    (* the profile wire is unpipelined (one token in flight), so it can never
       beat the pipelining stations it replaces *)
    Alcotest.(check bool)
      (Printf.sprintf "reach %.1f: profile cannot beat stations" reach)
      true
      (p <= steady net_stations +. 1e-9);
    match Skeleton.Equiv.check net_profile with
    | Skeleton.Equiv.Equivalent { checked } ->
        Alcotest.(check bool) "values flowed" true (checked > 20)
    | Skeleton.Equiv.Divergent _ ->
        Alcotest.fail
          (Printf.sprintf "reach %.1f: dynamic rendering diverged" reach)
  in
  List.iter check_reach [ 2.0; 3.0; 4.0 ]

let pipeline () =
  (* src --1--> a --8--> b --1--> sink: one dominant long wire *)
  let f = F.create () in
  let src = F.add_source f ~name:"src" ~x:0.0 ~y:0.0 () in
  let a = F.add_shell f ~name:"a" ~x:1.0 ~y:0.0 (Lid.Pearl.identity ()) in
  let b = F.add_shell f ~name:"b" ~x:9.0 ~y:0.0 (Lid.Pearl.identity ()) in
  let k = F.add_sink f ~name:"k" ~x:10.0 ~y:0.0 () in
  F.connect f ~src:(src, 0) ~dst:(a, 0);
  F.connect f ~src:(a, 0) ~dst:(b, 0);
  F.connect f ~src:(b, 0) ~dst:(k, 0);
  f

let test_latency_synthesis_pipeline_cost () =
  (* on a linear pipeline the pipelined rendering runs at full speed while
     the unpipelined profile wire serializes to [1 / wire_cycles] — the
     storage the removed stations provided is exactly what it gives up *)
  List.iter
    (fun reach ->
      let net_s, _ = F.synthesize ~reach (pipeline ()) in
      let net_p, r = F.synthesize_latency ~reach (pipeline ()) in
      let max_wc =
        List.fold_left (fun m c -> max m c.F.wire_cycles) 1 r.F.channels
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "reach %.1f: stations full speed" reach)
        1.0 (steady net_s);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "reach %.1f: profile serializes to 1/%d" reach max_wc)
        (1.0 /. float_of_int max_wc)
        (steady net_p))
    [ 2.0; 4.0; 8.0 ]

let test_reach_validation () =
  Alcotest.check_raises "reach 0"
    (Invalid_argument "Floorplan.synthesize: reach must be positive") (fun () ->
      ignore (F.synthesize ~reach:0.0 (simple ())))

let test_dot_export () =
  let net, _ = F.synthesize ~reach:4.0 (simple ()) in
  let dot = Topology.Dot.of_network net in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true
        (Astring.String.is_infix ~affix dot))
    [ "digraph lid"; "shape=box"; "shape=ellipse"; "label=\"FFF\""; "->" ]

let test_dot_highlight () =
  let net = Topology.Generators.fig2 () in
  let dot = Topology.Dot.of_network ~highlight:[ 0 ] net in
  Alcotest.(check bool) "highlighted" true
    (Astring.String.is_infix ~affix:"lightsalmon" dot)

let suite =
  [
    Alcotest.test_case "stations scale with clock" `Quick
      test_station_counts_scale_with_clock;
    Alcotest.test_case "short channels get half stations" `Quick
      test_short_shell_channels_get_half;
    Alcotest.test_case "wire cycles from distance" `Quick
      test_wire_cycles_from_distance;
    Alcotest.test_case "synthesized network valid and equivalent" `Quick
      test_synthesized_network_is_valid_and_live;
    Alcotest.test_case "throughput drop and recovery" `Quick
      test_throughput_drops_then_equalizes;
    Alcotest.test_case "balanced floorplan free" `Quick
      test_balanced_floorplan_needs_nothing;
    Alcotest.test_case "latency synthesis derives distance profiles" `Quick
      test_latency_synthesis_profiles;
    Alcotest.test_case "latency synthesis lockstep with explicit table" `Quick
      test_latency_synthesis_lockstep;
    Alcotest.test_case "latency synthesis pipeline cost" `Quick
      test_latency_synthesis_pipeline_cost;
    Alcotest.test_case "reach validation" `Quick test_reach_validation;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "dot highlight" `Quick test_dot_highlight;
  ]
