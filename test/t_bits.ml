open Bitvec

let check_bits = Alcotest.testable Bits.pp Bits.equal

let test_zero_ones () =
  Alcotest.(check int) "zero width" 7 (Bits.width (Bits.zero 7));
  Alcotest.(check bool) "zero is_zero" true (Bits.is_zero (Bits.zero 7));
  Alcotest.(check bool) "ones is_ones" true (Bits.is_ones (Bits.ones 7));
  Alcotest.(check bool) "ones not zero" false (Bits.is_zero (Bits.ones 7));
  Alcotest.(check int) "popcount ones" 13 (Bits.popcount (Bits.ones 13))

let test_width_validation () =
  Alcotest.check_raises "zero width" (Invalid_argument "Bits: width must be >= 1")
    (fun () -> ignore (Bits.zero 0));
  Alcotest.check_raises "negative width" (Invalid_argument "Bits: width must be >= 1")
    (fun () -> ignore (Bits.ones (-3)))

let test_of_int_roundtrip () =
  List.iter
    (fun (w, n) ->
      Alcotest.(check int)
        (Printf.sprintf "roundtrip %d width %d" n w)
        n
        (Bits.to_int (Bits.of_int ~width:w n)))
    [ (1, 0); (1, 1); (8, 255); (8, 170); (16, 40000); (31, 0x7fffffff); (62, 12345678901234) ]

let test_of_int_truncates () =
  Alcotest.check check_bits "256 in 8 bits is 0" (Bits.zero 8)
    (Bits.of_int ~width:8 256);
  Alcotest.(check int) "257 in 8 bits is 1" 1 (Bits.to_int (Bits.of_int ~width:8 257))

let test_of_int_negative () =
  Alcotest.(check int) "-1 in 8 bits" 255 (Bits.to_int (Bits.of_int ~width:8 (-1)));
  Alcotest.(check int) "-1 signed" (-1) (Bits.to_signed_int (Bits.of_int ~width:8 (-1)));
  Alcotest.(check int) "-128 signed" (-128) (Bits.to_signed_int (Bits.of_int ~width:8 128))

let test_of_string () =
  Alcotest.(check int) "1010" 10 (Bits.to_int (Bits.of_string "1010"));
  Alcotest.(check int) "0b prefix" 5 (Bits.to_int (Bits.of_string "0b101"));
  Alcotest.(check int) "underscores" 10 (Bits.to_int (Bits.of_string "10_10"));
  Alcotest.(check int) "width" 4 (Bits.width (Bits.of_string "0011"));
  Alcotest.check_raises "empty" (Invalid_argument "Bits.of_string: empty literal")
    (fun () -> ignore (Bits.of_string ""));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bits.of_string: expected only 0, 1, _") (fun () ->
      ignore (Bits.of_string "10x1"))

let test_to_string () =
  Alcotest.(check string) "msb first" "1010" (Bits.to_string (Bits.of_int ~width:4 10));
  Alcotest.(check string) "padded" "0001" (Bits.to_string (Bits.of_int ~width:4 1))

let test_get_set_bounds () =
  let b = Bits.of_int ~width:4 0b1010 in
  Alcotest.(check bool) "bit 1" true (Bits.get b 1);
  Alcotest.(check bool) "bit 0" false (Bits.get b 0);
  Alcotest.(check bool) "msb" true (Bits.msb b);
  Alcotest.(check bool) "lsb" false (Bits.lsb b);
  Alcotest.check_raises "oob" (Invalid_argument "Bits.get: index out of range")
    (fun () -> ignore (Bits.get b 4))

let test_logic () =
  let a = Bits.of_int ~width:8 0b11001100 and b = Bits.of_int ~width:8 0b10101010 in
  Alcotest.(check int) "and" 0b10001000 (Bits.to_int (Bits.logand a b));
  Alcotest.(check int) "or" 0b11101110 (Bits.to_int (Bits.logor a b));
  Alcotest.(check int) "xor" 0b01100110 (Bits.to_int (Bits.logxor a b));
  Alcotest.(check int) "not" 0b00110011 (Bits.to_int (Bits.lognot a))

let test_width_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Bits.add: width mismatch (8 vs 4)") (fun () ->
      ignore (Bits.add (Bits.zero 8) (Bits.zero 4)))

let test_arith () =
  Alcotest.(check int) "add" 300 (Bits.to_int (Bits.add (Bits.of_int ~width:16 100) (Bits.of_int ~width:16 200)));
  Alcotest.(check int) "add wraps" 44
    (Bits.to_int (Bits.add (Bits.of_int ~width:8 200) (Bits.of_int ~width:8 100)));
  Alcotest.(check int) "sub" 100 (Bits.to_int (Bits.sub (Bits.of_int ~width:16 300) (Bits.of_int ~width:16 200)));
  Alcotest.(check int) "sub wraps" 206
    (Bits.to_int (Bits.sub (Bits.of_int ~width:8 100) (Bits.of_int ~width:8 150)));
  Alcotest.(check int) "neg" 246 (Bits.to_int (Bits.neg (Bits.of_int ~width:8 10)));
  Alcotest.(check int) "mul" 200 (Bits.to_int (Bits.mul (Bits.of_int ~width:16 10) (Bits.of_int ~width:16 20)));
  Alcotest.(check int) "mul wraps" ((123 * 57) land 0xff)
    (Bits.to_int (Bits.mul (Bits.of_int ~width:8 123) (Bits.of_int ~width:8 57)))

let test_compare () =
  let b8 = Bits.of_int ~width:8 in
  Alcotest.(check bool) "ult" true (Bits.ult (b8 5) (b8 6));
  Alcotest.(check bool) "ult eq" false (Bits.ult (b8 6) (b8 6));
  Alcotest.(check bool) "ule eq" true (Bits.ule (b8 6) (b8 6));
  Alcotest.(check bool) "slt neg" true (Bits.slt (b8 255) (b8 0));
  Alcotest.(check bool) "slt pos" true (Bits.slt (b8 3) (b8 4));
  Alcotest.(check bool) "slt mixed" false (Bits.slt (b8 3) (b8 128))

let test_shifts () =
  let b = Bits.of_int ~width:8 0b1001 in
  Alcotest.(check int) "sll" 0b100100 (Bits.to_int (Bits.shift_left b 2));
  Alcotest.(check int) "sll out" 0 (Bits.to_int (Bits.shift_left b 8));
  Alcotest.(check int) "srl" 0b10 (Bits.to_int (Bits.shift_right_logical b 2));
  let n = Bits.of_int ~width:8 0b10000001 in
  Alcotest.(check int) "sra" 0b11100000 (Bits.to_int (Bits.shift_right_arith n 2))

let test_concat_select () =
  let hi = Bits.of_int ~width:4 0xA and lo = Bits.of_int ~width:4 0x5 in
  let c = Bits.concat ~msb:hi ~lsb:lo in
  Alcotest.(check int) "concat" 0xA5 (Bits.to_int c);
  Alcotest.(check int) "select hi" 0xA (Bits.to_int (Bits.select c ~hi:7 ~lo:4));
  Alcotest.(check int) "select lo" 0x5 (Bits.to_int (Bits.select c ~hi:3 ~lo:0));
  Alcotest.(check int) "select mid" 0b1001 (Bits.to_int (Bits.select c ~hi:5 ~lo:2));
  Alcotest.check_raises "bad range" (Invalid_argument "Bits.select: bad range")
    (fun () -> ignore (Bits.select c ~hi:8 ~lo:0))

let test_extend () =
  let b = Bits.of_int ~width:4 0b1010 in
  Alcotest.(check int) "zext" 0b1010 (Bits.to_int (Bits.zero_extend b ~width:8));
  Alcotest.(check int) "sext" 0b11111010 (Bits.to_int (Bits.sign_extend b ~width:8));
  Alcotest.(check int) "resize down" 0b10 (Bits.to_int (Bits.resize b ~width:2));
  Alcotest.(check int) "resize up" 0b1010 (Bits.to_int (Bits.resize b ~width:6))

let test_reduce () =
  Alcotest.(check bool) "or zero" false (Bits.reduce_or (Bits.zero 5));
  Alcotest.(check bool) "or some" true (Bits.reduce_or (Bits.of_int ~width:5 4));
  Alcotest.(check bool) "and ones" true (Bits.reduce_and (Bits.ones 5));
  Alcotest.(check bool) "and partial" false (Bits.reduce_and (Bits.of_int ~width:5 30));
  Alcotest.(check bool) "xor odd" true (Bits.reduce_xor (Bits.of_int ~width:5 0b10110));
  Alcotest.(check bool) "xor even" false (Bits.reduce_xor (Bits.of_int ~width:5 0b10010))

let test_mux () =
  let cases = List.map (Bits.of_int ~width:8) [ 10; 20; 30 ] in
  let sel i = Bits.of_int ~width:4 i in
  Alcotest.(check int) "mux 0" 10 (Bits.to_int (Bits.mux ~sel:(sel 0) cases));
  Alcotest.(check int) "mux 2" 30 (Bits.to_int (Bits.mux ~sel:(sel 2) cases));
  Alcotest.(check int) "mux clamp" 30 (Bits.to_int (Bits.mux ~sel:(sel 9) cases));
  let wide_sel = Bits.ones 40 in
  Alcotest.(check int) "mux wide clamp" 30 (Bits.to_int (Bits.mux ~sel:wide_sel cases))

let test_hex () =
  Alcotest.(check string) "hex" "a5" (Bits.to_hex (Bits.of_int ~width:8 0xa5));
  Alcotest.(check string) "hex pad" "05" (Bits.to_hex (Bits.of_int ~width:8 5));
  Alcotest.(check string) "hex 5 bits" "15" (Bits.to_hex (Bits.of_int ~width:5 0b10101))

let test_wide () =
  (* widths beyond one word *)
  let a = Bits.ones 100 in
  Alcotest.(check int) "popcount 100" 100 (Bits.popcount a);
  let b = Bits.add a (Bits.of_int ~width:100 1) in
  Alcotest.(check bool) "ones+1 wraps to zero" true (Bits.is_zero b);
  let c = Bits.shift_left (Bits.of_int ~width:100 1) 99 in
  Alcotest.(check bool) "msb set" true (Bits.msb c);
  Alcotest.(check bool) "only one bit" true (Bits.popcount c = 1)

(* property tests: agreement with OCaml int arithmetic on small widths *)
let gen_pair w =
  QCheck.pair (QCheck.int_bound ((1 lsl w) - 1)) (QCheck.int_bound ((1 lsl w) - 1))

let prop name w f =
  QCheck.Test.make ~name ~count:500 (gen_pair w) (fun (x, y) -> f x y)

let mask w v = v land ((1 lsl w) - 1)

let props =
  let w = 13 in
  let b v = Bits.of_int ~width:w v in
  [
    prop "add = int add mod 2^w" w (fun x y ->
        Bits.to_int (Bits.add (b x) (b y)) = mask w (x + y));
    prop "sub = int sub mod 2^w" w (fun x y ->
        Bits.to_int (Bits.sub (b x) (b y)) = mask w (x - y));
    prop "mul = int mul mod 2^w" w (fun x y ->
        Bits.to_int (Bits.mul (b x) (b y)) = mask w (x * y));
    prop "and" w (fun x y -> Bits.to_int (Bits.logand (b x) (b y)) = x land y);
    prop "or" w (fun x y -> Bits.to_int (Bits.logor (b x) (b y)) = x lor y);
    prop "xor" w (fun x y -> Bits.to_int (Bits.logxor (b x) (b y)) = x lxor y);
    prop "ult = <" w (fun x y -> Bits.ult (b x) (b y) = (x < y));
    prop "compare consistent with to_int" w (fun x y ->
        Stdlib.compare x y = Bits.compare (b x) (b y));
    prop "to_string/of_string roundtrip" w (fun x _ ->
        Bits.equal (b x) (Bits.of_string (Bits.to_string (b x))));
    prop "neg is two's complement" w (fun x _ ->
        Bits.to_int (Bits.neg (b x)) = mask w (-x));
    prop "lognot . lognot = id" w (fun x _ ->
        Bits.equal (b x) (Bits.lognot (Bits.lognot (b x))));
    prop "concat then select recovers parts" w (fun x y ->
        let c = Bits.concat ~msb:(b x) ~lsb:(b y) in
        Bits.to_int (Bits.select c ~hi:((2 * w) - 1) ~lo:w) = x
        && Bits.to_int (Bits.select c ~hi:(w - 1) ~lo:0) = y);
  ]

(* --- Bitset lane views (the lane-parallel campaign primitives) ------ *)

let random_bitset rng n =
  let t = Bitset.create n in
  for i = 0 to n - 1 do
    if Random.State.bool rng then Bitset.set t i
  done;
  t

let test_bitset_transpose_explicit () =
  (* 2x3 row-major matrix 1 0 1 / 0 1 1 *)
  let t = Bitset.create 6 in
  List.iter (Bitset.set t) [ 0; 2; 4; 5 ];
  let tr = Bitset.transpose ~rows:2 ~cols:3 t in
  (* column-major: (1 0) (0 1) (1 1) *)
  Alcotest.(check (list bool))
    "transposed bits"
    [ true; false; false; true; true; true ]
    (List.init 6 (Bitset.get tr));
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Bitset.transpose: rows * cols must equal length")
    (fun () -> ignore (Bitset.transpose ~rows:2 ~cols:2 t))

let prop_transpose_involution =
  QCheck.Test.make ~name:"Bitset: transpose . transpose = id" ~count:200
    (QCheck.pair QCheck.small_int QCheck.small_int)
    (fun (seed, shape) ->
      let rows = 1 + (shape mod 9) and cols = 1 + (shape / 9 mod 9) in
      let rng = Random.State.make [| seed; 0xb5e7 |] in
      let t = random_bitset rng (rows * cols) in
      Bitset.equal t
        (Bitset.transpose ~rows:cols ~cols:rows
           (Bitset.transpose ~rows ~cols t)))

let prop_lane_mask_extract =
  QCheck.Test.make ~name:"Bitset: lane_extract/lane_mask agree with scalar"
    ~count:200
    (QCheck.pair QCheck.small_int QCheck.small_int)
    (fun (seed, shape) ->
      let lanes = 1 + (shape mod 8) and per_lane = 1 + (shape / 8 mod 16) in
      let rng = Random.State.make [| seed; 0x1a9e |] in
      let t = random_bitset rng (lanes * per_lane) in
      List.for_all
        (fun lane ->
          let masked = Bitset.lane_mask ~lanes ~lane t in
          let dense = Bitset.lane_extract ~lanes ~lane t in
          (* masked keeps only this lane's bits, in place *)
          List.for_all
            (fun i ->
              Bitset.get masked i
              = (i mod lanes = lane && Bitset.get t i))
            (List.init (Bitset.length t) Fun.id)
          (* dense is the per-row view of the same lane *)
          && List.for_all
               (fun row ->
                 Bitset.get dense row = Bitset.get t ((row * lanes) + lane))
               (List.init per_lane Fun.id)
          (* extract sees through mask; popcount matches a scalar recount *)
          && Bitset.equal dense (Bitset.lane_extract ~lanes ~lane masked)
          && Bitset.popcount dense = Bitset.popcount masked
          && Bitset.popcount dense
             = List.length
                 (List.filter
                    (fun row -> Bitset.get t ((row * lanes) + lane))
                    (List.init per_lane Fun.id)))
        (List.init lanes Fun.id))

let prop_set_algebra =
  QCheck.Test.make ~name:"Bitset: union_into/is_subset/iter_set agree"
    ~count:200
    (QCheck.pair QCheck.small_int QCheck.small_int)
    (fun (seed, len) ->
      let n = 1 + (len mod 130) in
      let rng = Random.State.make [| seed; 0x5e7a |] in
      let a = random_bitset rng n and b = random_bitset rng n in
      let members t =
        List.filter (Bitset.get t) (List.init n Fun.id)
      in
      let u = Bitset.copy a in
      Bitset.union_into ~into:u b;
      let collected = ref [] in
      Bitset.iter_set u (fun i -> collected := i :: !collected);
      (* union contains exactly the members of both operands *)
      List.for_all (fun i -> Bitset.get u i = (Bitset.get a i || Bitset.get b i))
        (List.init n Fun.id)
      (* iter_set enumerates members in increasing order *)
      && List.rev !collected = members u
      (* both operands are subsets of the union; the union is a subset of
         an operand only when it equals it *)
      && Bitset.is_subset a ~of_:u
      && Bitset.is_subset b ~of_:u
      && Bitset.is_subset u ~of_:a = Bitset.equal u a)

let test_set_algebra_explicit () =
  let a = Bitset.create 70 and b = Bitset.create 70 in
  List.iter (Bitset.set a) [ 0; 63; 64 ];
  List.iter (Bitset.set b) [ 0; 69 ];
  Alcotest.(check bool) "not a subset" false (Bitset.is_subset a ~of_:b);
  Bitset.union_into ~into:b a;
  Alcotest.(check bool) "subset after union" true (Bitset.is_subset a ~of_:b);
  let seen = ref [] in
  Bitset.iter_set b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "members across words" [ 0; 63; 64; 69 ]
    (List.rev !seen);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bitset.union_into: length mismatch") (fun () ->
      Bitset.union_into ~into:a (Bitset.create 3))

let test_lane_bounds () =
  let t = Bitset.create 12 in
  Alcotest.check_raises "lane out of range"
    (Invalid_argument "Bitset.lane_extract: lane out of range") (fun () ->
      ignore (Bitset.lane_extract ~lanes:4 ~lane:4 t));
  Alcotest.check_raises "length not a multiple"
    (Invalid_argument "Bitset.lane_mask: length must be a multiple of lanes")
    (fun () -> ignore (Bitset.lane_mask ~lanes:5 ~lane:0 t))

let suite =
  [
    Alcotest.test_case "zero/ones" `Quick test_zero_ones;
    Alcotest.test_case "width validation" `Quick test_width_validation;
    Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
    Alcotest.test_case "of_int truncates" `Quick test_of_int_truncates;
    Alcotest.test_case "negative ints" `Quick test_of_int_negative;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "get/bounds" `Quick test_get_set_bounds;
    Alcotest.test_case "logic ops" `Quick test_logic;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_compare;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "concat/select" `Quick test_concat_select;
    Alcotest.test_case "extend/resize" `Quick test_extend;
    Alcotest.test_case "reductions" `Quick test_reduce;
    Alcotest.test_case "mux" `Quick test_mux;
    Alcotest.test_case "hex" `Quick test_hex;
    Alcotest.test_case "wide vectors" `Quick test_wide;
    Alcotest.test_case "bitset: transpose explicit" `Quick
      test_bitset_transpose_explicit;
    Alcotest.test_case "bitset: lane bounds" `Quick test_lane_bounds;
    Alcotest.test_case "bitset: set algebra explicit" `Quick
      test_set_algebra_explicit;
    QCheck_alcotest.to_alcotest ~long:false prop_set_algebra;
    QCheck_alcotest.to_alcotest ~long:false prop_transpose_involution;
    QCheck_alcotest.to_alcotest ~long:false prop_lane_mask_extract;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
