(* lidtool — command-line front end for the latency-insensitive design kit.

   dune exec bin/lidtool.exe -- <command> ...   (try: lidtool --help) *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments.                                                    *)

let network_arg =
  let doc =
    "Network description file (see `lidtool sample' for the format), or - \
     for stdin."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

(* Every subcommand reports its failures the same way: the library
   layers raise [Invalid_argument] for anything a user can get wrong —
   spec parse errors (with line numbers), generator parameter
   validation, elaboration capability gaps — and [Sys_error] covers
   unreadable files.  One wrapper turns all of them into a clean
   [error:] line and exit code 2 instead of a backtrace. *)
let with_diagnostics f =
  try f () with
  | Invalid_argument m | Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 2

let load_network ?allow_direct path =
  let text =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  match Topology.Spec.parse ?allow_direct text with
  | Ok net -> net
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      exit 2

let flavour_arg =
  let flavour_conv =
    Arg.enum
      [ ("optimized", Lid.Protocol.Optimized); ("original", Lid.Protocol.Original) ]
  in
  Arg.(
    value
    & opt flavour_conv Lid.Protocol.Optimized
    & info [ "f"; "flavour" ] ~docv:"FLAVOUR"
        ~doc:"Protocol flavour: $(b,optimized) (the paper's refinement, \
              default) or $(b,original).")

let lang_arg =
  let lang_conv = Arg.enum [ ("vhdl", `Vhdl); ("verilog", `Verilog) ] in
  Arg.(
    value & opt lang_conv `Vhdl
    & info [ "l"; "lang" ] ~docv:"LANG" ~doc:"Output HDL: vhdl or verilog.")

let width_arg =
  Arg.(
    value & opt int 16
    & info [ "w"; "width" ] ~docv:"BITS" ~doc:"Datapath width in bits.")

let profile_conv =
  let parse s =
    match Lid.Latency.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "bad latency profile %S (want fixed:D, \
                 jitter:BASE:BOUND:SEED, dist:LEN:PITCH or table:D0,D1,...)"
                s))
  in
  Arg.conv (parse, Lid.Latency.pp)

(* Overlay one latency profile on every channel of the network (channels
   that already carry a profile in the spec keep their own). *)
let overlay_profile net profile =
  List.fold_left
    (fun acc (e : Topology.Network.edge) ->
      if e.latency <> None then acc
      else Topology.Network.with_latency acc e.id (Some profile))
    net
    (Topology.Network.edges net)

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)

let analyze_cmd =
  let run file =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    Format.printf "%a@.@." Topology.Network.pp_summary net;
    Format.printf "classification : %a@." Topology.Classify.pp
      (Topology.Classify.classify net);
    let el = Topology.Elastic.of_network net in
    let tok, lat = Topology.Elastic.min_cycle_ratio el in
    Format.printf "throughput     : %d/%d = %.4f (protocol bound)@." tok lat
      (min 1.0 (float_of_int tok /. float_of_int lat));
    Format.printf "env cap        : %.4f (source/sink duty cycles)@."
      (Topology.Analysis.env_throughput_cap net);
    Format.printf "transient bound: %d cycles@."
      (Topology.Analysis.transient_bound net);
    Format.printf "liveness       : %a@."
      (Topology.Deadlock.pp_verdict net)
      (Topology.Deadlock.static_verdict net);
    if tok < lat then begin
      let cyc = Topology.Elastic.critical_cycle el in
      Format.printf "critical cycle : %s@."
        (String.concat " -> "
           (List.map (fun i -> el.Topology.Elastic.labels.(i)) cyc))
    end
  in
  let term = Term.(const run $ network_arg) in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Classify a network and compute its analytic figures.")
    term

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)

let lint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let fail_on_arg =
    let level =
      Arg.enum [ ("never", `Never); ("warn", `Warn); ("error", `Error) ]
    in
    Arg.(
      value & opt level `Error
      & info [ "fail-on" ] ~docv:"LEVEL"
          ~doc:"Exit 1 when a diagnostic of at least this severity is \
                present: $(b,never), $(b,warn) or $(b,error) (the default).")
  in
  let no_rtl_arg =
    Arg.(
      value & flag
      & info [ "no-rtl" ]
          ~doc:"Skip the gate-level stop-path pass (topology checks only).")
  in
  let run file flavour width json fail_on no_rtl =
    with_diagnostics @@ fun () ->
    (* parse with allow_direct: the linter's job is to report the
       protocol violations the builder would refuse to construct *)
    let net = load_network ~allow_direct:true file in
    let report =
      Lint.Checks.run ~flavour ~data_width:width ~gate:(not no_rtl) net
    in
    if json then print_string (Lint.Checks.to_json report)
    else Format.printf "%a" Lint.Checks.pp report;
    let fail =
      match (fail_on, Lint.Checks.max_severity report) with
      | `Never, _ | _, None -> false
      | `Warn, Some s -> s = Lint.Diagnostic.Warning || s = Lint.Diagnostic.Error
      | `Error, Some s -> s = Lint.Diagnostic.Error
    in
    if fail then exit 1
  in
  let term =
    Term.(
      const run $ network_arg $ flavour_arg $ width_arg $ json_arg
      $ fail_on_arg $ no_rtl_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze a network: protocol violations (stop \
             registration, minimum memory), throughput hazards with exact \
             predicted rates and fix-its, liveness — with stable LIDnnn \
             diagnostic codes and optional JSON output.")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                             *)

let simulate_cmd =
  let cycles_arg =
    Arg.(
      value & opt int 0
      & info [ "t"; "trace" ] ~docv:"N" ~doc:"Print an N-cycle evolution trace first.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some profile_conv) None
      & info [ "latency-profile" ] ~docv:"PROFILE"
          ~doc:"Overlay a channel latency profile on every channel that \
                does not already carry one: $(b,fixed:D), \
                $(b,jitter:BASE:BOUND:SEED), $(b,dist:LEN:PITCH) or \
                $(b,table:D0,D1,...).")
  in
  let run file flavour trace_cycles profile =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    let net =
      match profile with None -> net | Some p -> overlay_profile net p
    in
    let engine = Skeleton.Engine.create ~flavour net in
    if trace_cycles > 0 then begin
      print_endline
        (Skeleton.Trace.render (Skeleton.Trace.record ~cycles:trace_cycles engine));
      Skeleton.Engine.reset engine
    end;
    match Skeleton.Measure.analyze engine with
    | Some report ->
        Format.printf "@.%a" (Skeleton.Measure.pp_report net) report;
        Format.printf "system throughput: %.4f%s@."
          (Skeleton.Measure.system_throughput report)
          (if report.deadlocked then "  ** DEADLOCK **" else "");
        let window = 20 * report.period in
        let base =
          List.map
            (fun (n : Topology.Network.node) ->
              ( n,
                Skeleton.Engine.fired_count engine n.id,
                Skeleton.Engine.gated_count engine n.id,
                Skeleton.Engine.starved_count engine n.id ))
            (Topology.Network.shells net)
        in
        Skeleton.Engine.run engine ~cycles:window;
        Format.printf "@.stall attribution over %d steady-state cycles:@." window;
        List.iter
          (fun ((n : Topology.Network.node), f0, g0, s0) ->
            Format.printf "  %-12s fired %4d  gated %4d  starved %4d@." n.name
              (Skeleton.Engine.fired_count engine n.id - f0)
              (Skeleton.Engine.gated_count engine n.id - g0)
              (Skeleton.Engine.starved_count engine n.id - s0))
          base
    | None -> Format.printf "no periodic steady state found@."
  in
  let term =
    Term.(const run $ network_arg $ flavour_arg $ cycles_arg $ profile_arg)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the protocol skeleton to steady state and report throughput.")
    term

(* ------------------------------------------------------------------ *)
(* equalize                                                             *)

let equalize_cmd =
  let run file =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    let before = Topology.Elastic.throughput_bound net in
    let net', additions = Topology.Equalize.optimize net in
    Format.printf "throughput bound: %.4f -> %.4f@." before
      (Topology.Elastic.throughput_bound net');
    List.iter
      (fun (a : Topology.Equalize.addition) ->
        let e = Topology.Network.edge net' a.edge in
        Format.printf "  +%d full station(s) on %s.%d -> %s.%d@." a.spare
          (Topology.Network.node net' e.src.node).name e.src.port
          (Topology.Network.node net' e.dst.node).name e.dst.port)
      additions;
    Format.printf "@.%s" (Topology.Spec.print net')
  in
  let term = Term.(const run $ network_arg) in
  Cmd.v
    (Cmd.info "equalize"
       ~doc:"Insert spare relay stations to recover full throughput; print \
             the resulting network.")
    term

(* ------------------------------------------------------------------ *)
(* deadlock                                                             *)

let deadlock_cmd =
  let cure_arg =
    Arg.(value & flag & info [ "cure" ] ~doc:"Search for a relay substitution cure.")
  in
  let run file flavour cure =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    Format.printf "static rule : %a@."
      (Topology.Deadlock.pp_verdict net)
      (Topology.Deadlock.static_verdict net);
    let d = Skeleton.Cure.decide ~flavour net in
    Format.printf "skeleton sim: %s@."
      (if d.deadlocked then "DEADLOCK" else "live");
    if cure && d.deadlocked then begin
      match Skeleton.Cure.cure ~flavour net with
      | Skeleton.Cure.Cured { network; substitutions } ->
          Format.printf "cure        : %d substitution(s)@."
            (List.length substitutions);
          Format.printf "@.%s" (Topology.Spec.print network)
      | Skeleton.Cure.Already_live -> ()
      | Skeleton.Cure.Not_cured -> Format.printf "cure        : not found@."
    end
  in
  let term = Term.(const run $ network_arg $ flavour_arg $ cure_arg) in
  Cmd.v
    (Cmd.info "deadlock"
       ~doc:"Decide liveness (static rules + skeleton simulation); optionally cure.")
    term

(* ------------------------------------------------------------------ *)
(* rtl                                                                  *)

let rtl_cmd =
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "O"; "optimize" ]
          ~doc:"Run the netlist simplifier (constant folding, CSE) first.")
  in
  let run file flavour lang width optimize =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    (* capability errors (e.g. a variable-latency channel with no
       retransmitting station to realize it in hardware) surface as
       [Invalid_argument] from the elaborator — [with_diagnostics]
       turns them into a clean diagnostic instead of a backtrace *)
    let circ = Topology.Rtl_net.of_network ~flavour ~data_width:width net in
    let circ =
      if optimize then begin
        let circ', report = Hdl.Simplify.with_report circ in
        Format.eprintf "-- %a@." Hdl.Simplify.pp_report report;
        circ'
      end
      else circ
    in
    Format.eprintf "-- %a@." Hdl.Circuit.pp_stats (Hdl.Circuit.stats circ);
    print_string
      (match lang with
      | `Vhdl -> Emit.Vhdl.emit circ
      | `Verilog -> Emit.Verilog.emit circ)
  in
  let term =
    Term.(const run $ network_arg $ flavour_arg $ lang_arg $ width_arg $ optimize_arg)
  in
  Cmd.v
    (Cmd.info "rtl" ~doc:"Elaborate the whole network to RTL and emit VHDL/Verilog.")
    term

(* ------------------------------------------------------------------ *)
(* blocks                                                               *)

let blocks_cmd =
  let run flavour lang width =
    let emit c =
      print_string
        (match lang with `Vhdl -> Emit.Vhdl.emit c | `Verilog -> Emit.Verilog.emit c);
      print_newline ()
    in
    emit (Lid.Rtl_gen.relay_station ~flavour ~data_width:width Lid.Relay_station.Full);
    emit (Lid.Rtl_gen.relay_station ~flavour ~data_width:width Lid.Relay_station.Half);
    emit (Lid.Rtl_gen.identity_shell ~flavour ~data_width:width ());
    emit (Lid.Rtl_gen.adder_shell ~flavour ~data_width:width ())
  in
  let term = Term.(const run $ flavour_arg $ lang_arg $ width_arg) in
  Cmd.v
    (Cmd.info "blocks"
       ~doc:"Emit the protocol block library (relay stations and shells).")
    term

(* ------------------------------------------------------------------ *)
(* verify                                                               *)

let verify_cmd =
  let file_arg =
    let doc =
      "Network description file (or - for stdin): run the compositional \
       assume-guarantee discharge on the whole network.  Without FILE, \
       model-check the paper's safety properties for the block library."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let compose_arg =
    Arg.(
      value & flag
      & info [ "compose" ]
          ~doc:"Compositional whole-network verification: discharge every \
                component class once against its protocol contract, then \
                check the contract graph (LID009-LID011).  Implied when \
                FILE is given.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let run file compose json flavour =
    with_diagnostics @@ fun () ->
    match file with
    | None when compose ->
        Printf.eprintf "error: --compose needs a network FILE\n";
        exit 2
    | None ->
        let show name outcome =
          match outcome with
          | Verify.Reach.Holds { states; transitions } ->
              Format.printf "%-22s HOLDS (%d states, %d transitions)@." name
                states transitions
          | Verify.Reach.Fails { trace } ->
              Format.printf "%-22s FAILS (%d-step counterexample)@." name
                (List.length trace - 1)
        in
        show "full relay station"
          (Verify.Props.check_relay_station ~flavour Lid.Relay_station.Full);
        show "half relay station"
          (Verify.Props.check_relay_station ~flavour Lid.Relay_station.Half);
        show "identity shell"
          (Verify.Props.check_shell ~flavour Verify.Props.Identity);
        show "adder shell" (Verify.Props.check_shell ~flavour Verify.Props.Adder)
    | Some file ->
        (* allow_direct, like lint: report what the builder would refuse *)
        let net = load_network ~allow_direct:true file in
        let report = Lint.Compose.run ~flavour net in
        if json then print_string (Lint.Compose.to_json report)
        else Format.printf "%a@." Lint.Compose.pp report;
        if Lint.Compose.max_severity report = Some Lint.Diagnostic.Error then
          exit 1
  in
  let term = Term.(const run $ file_arg $ compose_arg $ json_arg $ flavour_arg) in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Model-check the protocol: the paper's safety properties for \
             the block library, or — given a network — the compositional \
             assume-guarantee discharge over the contract graph \
             (LID009-LID011), NoC-scale.")
    term

(* ------------------------------------------------------------------ *)
(* wave                                                                 *)

let wave_cmd =
  let cycles_arg =
    Arg.(
      value & opt int 64
      & info [ "c"; "cycles" ] ~docv:"N" ~doc:"Number of cycles to dump.")
  in
  let run file flavour cycles =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    let engine = Skeleton.Engine.create ~flavour net in
    Skeleton.Wave.record ~cycles engine ~out:stdout
  in
  let term = Term.(const run $ network_arg $ flavour_arg $ cycles_arg) in
  Cmd.v
    (Cmd.info "wave"
       ~doc:"Dump the protocol skeleton's valid/stop/data activity as VCD              (view in GTKWave).")
    term

(* ------------------------------------------------------------------ *)
(* testbench                                                            *)

let testbench_cmd =
  let cycles_arg =
    Arg.(
      value & opt int 64
      & info [ "c"; "cycles" ] ~docv:"N" ~doc:"Checked window length.")
  in
  let run file flavour width cycles =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    print_string (Skeleton.Testbench.bundle ~flavour ~data_width:width ~cycles net)
  in
  let term =
    Term.(const run $ network_arg $ flavour_arg $ width_arg $ cycles_arg)
  in
  Cmd.v
    (Cmd.info "testbench"
       ~doc:"Emit the network's RTL together with a self-checking VHDL              testbench (expected activity computed by the protocol skeleton).")
    term

(* ------------------------------------------------------------------ *)
(* inject                                                               *)

let lanes_arg =
  Arg.(
    value & opt int 0
    & info [ "lanes" ] ~docv:"W"
        ~doc:"Lanes of the bit-sliced campaign screen: W-1 injections ride \
              one word-parallel run next to a fault-free reference lane \
              (0 = the full machine word, 1 = disable lane batching). \
              Outcomes are identical for every width.")

let max_cycles_arg =
  Arg.(
    value & opt int 0
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:"Cycle budget for steady-state measurement (0 = the \
              default budget).")

let signature_capacity_arg =
  Arg.(
    value & opt int 0
    & info [ "signature-capacity" ] ~docv:"N"
        ~doc:"Cap on distinct state signatures a steady-state search may \
              store before giving up (0 = the default cap).")

let opt_pos n = if n <= 0 then None else Some n

let inject_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; every injection is reproducible from it.")
  in
  let kind_conv =
    Arg.enum
      (List.map (fun k -> (Fault.Model.kind_to_string k, k)) Fault.Model.all_kinds)
  in
  let kinds_arg =
    Arg.(
      value & opt_all kind_conv []
      & info [ "k"; "kind" ] ~docv:"KIND"
          ~doc:"Fault kind to inject (repeatable). Default: all of \
                $(b,valid-flip), $(b,data-corrupt), $(b,stop-spurious), \
                $(b,stop-drop), $(b,stop-stuck), $(b,station-upset).")
  in
  let cycles_arg =
    Arg.(
      value & opt int 256
      & info [ "c"; "cycles" ] ~docv:"N"
          ~doc:"Simulation horizon per injection (0 = derive it from the \
                fault-free steady state: transient + 4 periods, at least \
                64).")
  in
  let sites_arg =
    Arg.(
      value & opt int 0
      & info [ "sites" ] ~docv:"N"
          ~doc:"Sample at most N sites per kind (0 = exhaustive).")
  in
  let per_site_arg =
    Arg.(
      value & opt int 1
      & info [ "per-site" ] ~docv:"N"
          ~doc:"Injection cycles drawn per site.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print every non-masked injection.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Fan the injections out over N domains (0 = one per \
                available core; the LIDTOOL_JOBS environment variable \
                overrides that recommendation). The report order and every \
                outcome are identical to a serial run.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the campaign report as JSON (per-kind/per-outcome \
                tallies, total recoveries, worst injection).")
  in
  let jitter_arg =
    Arg.(
      value & opt int 0
      & info [ "jitter" ] ~docv:"BOUND"
          ~doc:"Overlay a $(b,jitter:0:BOUND:SEED) latency profile (SEED = \
                the campaign seed) on every channel before injecting \
                (0 = no overlay).")
  in
  let run file flavour seed kinds cycles sites per_site verbose jobs lanes
      max_cycles signature_capacity json jitter =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    let net =
      if jitter <= 0 then net
      else
        overlay_profile net
          (Lid.Latency.Jitter { base = 0; bound = jitter; seed })
    in
    let max_cycles = opt_pos max_cycles
    and signature_capacity = opt_pos signature_capacity in
    let cycles =
      if cycles > 0 then cycles
      else
        match
          Skeleton.Measure.analyze_packed ?max_cycles ?signature_capacity
            (Skeleton.Packed.create ~flavour net)
        with
        | Some r ->
            let horizon = max 64 (r.transient + (4 * r.period)) in
            if not json then
              Format.printf
                "horizon: %d cycles (fault-free transient %d + 4 x period %d)@."
                horizon r.transient r.period;
            horizon
        | None ->
            Printf.eprintf
              "error: no fault-free steady state within the budget; pass an \
               explicit -c (or raise --max-cycles / --signature-capacity)\n";
            exit 2
    in
    let config =
      {
        Fault.Campaign.seed;
        kinds = (if kinds = [] then Fault.Model.all_kinds else kinds);
        cycles;
        flavour;
        max_sites_per_kind = sites;
        injections_per_site = max 1 per_site;
      }
    in
    if not json then
      Format.printf "fault-injection campaign: seed %d, %d cycles, %s flavour@."
        config.seed config.cycles
        (match flavour with
        | Lid.Protocol.Optimized -> "optimized"
        | Lid.Protocol.Original -> "original");
    let jobs = if jobs <= 0 then Campaign.Parallel.default_jobs () else jobs in
    let lanes =
      if lanes <= 0 then Skeleton.Packed_lanes.max_lanes else lanes
    in
    let lanes_used = ref 1 in
    let on_lanes n reason =
      lanes_used := n;
      (match reason with
      | Some why ->
          (* keep the JSON stream clean: the downgrade notice goes to
             stderr when machine output was asked for *)
          if json then Printf.eprintf "note: %s\n%!" why
          else Format.printf "note: %s@." why
      | None -> ());
      if not json then
        Format.printf "lanes: %d%s@." n
          (if n <= 1 then " (serial classification)" else "")
    in
    let result = Campaign.Fault_driver.run ~jobs ~lanes ~on_lanes config net in
    if json then
      print_string (Fault.Campaign.json ~jobs ~lanes_used:!lanes_used result)
    else Format.printf "@.%a" Fault.Campaign.pp_summary result;
    if json then ()
    else if verbose then begin
      Format.printf "@.non-masked injections:@.";
      List.iter
        (fun (r : Fault.Classify.report) ->
          if r.outcome <> Fault.Classify.Masked then begin
            Format.printf "  %-18s %a@."
              (Fault.Classify.outcome_to_string r.outcome)
              (Fault.Model.pp net) r.fault;
            List.iter
              (fun v -> Format.printf "      %a@." (Fault.Monitor.pp_violation net) v)
              r.evidence.violations;
            match r.evidence.sink_anomaly with
            | Some s -> Format.printf "      %s@." s
            | None -> ()
          end)
        result.reports
    end
    else
      match Fault.Campaign.worst result with
      | Some r when r.outcome <> Fault.Classify.Masked ->
          Format.printf "@.worst injection (%s): %a@."
            (Fault.Classify.outcome_to_string r.outcome)
            (Fault.Model.pp net) r.fault
      | _ -> Format.printf "@.all injections masked.@."
  in
  let term =
    Term.(
      const run $ network_arg $ flavour_arg $ seed_arg $ kinds_arg $ cycles_arg
      $ sites_arg $ per_site_arg $ verbose_arg $ jobs_arg $ lanes_arg
      $ max_cycles_arg $ signature_capacity_arg $ json_arg $ jitter_arg)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run a seeded fault-injection campaign against the protocol \
             skeleton: sweep faults over wires and relay registers, watch \
             the runtime monitors, and bin each injection from masked to \
             deadlock.")
    term

(* ------------------------------------------------------------------ *)
(* bench                                                                *)

let bench_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "q"; "quick" ]
          ~doc:"Shrink every topology (CI smoke mode, a few seconds).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel legs (0 = one per available core; \
                LIDTOOL_JOBS overrides that recommendation).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the results as JSON to FILE.")
  in
  let dynamic_arg =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:"Run only the dynamic-network leg (retx + jitter chain, \
                single core): serial classification against the \
                lane-parallel driver, asserted bit-identical.")
  in
  let serve_bench_arg =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:"Run only the serve-amortization leg (E19): a request \
                stream revisiting the same NoC topologies through one \
                daemon against a fresh daemon per request, responses \
                asserted identical.")
  in
  let cone_bench_arg =
    Arg.(
      value & flag
      & info [ "cone" ]
          ~doc:"Run only the cone-incremental leg (E20): long-horizon \
                fault campaigns with the incremental classifier off and \
                on, lane and flat paths, all four asserted bit-identical.")
  in
  let compose_bench_arg =
    Arg.(
      value & flag
      & info [ "compose" ]
          ~doc:"Run only the compositional-verification leg (E21): composed \
                deadlock verdicts cross-checked against explicit-state \
                reachability on every topology small enough to decide both \
                ways, plus the 64x64-mesh discharge flat reachability \
                cannot attempt.")
  in
  let write_out out text =
    match out with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc text);
        Format.printf "wrote %s@." path
    | None -> ()
  in
  let run quick jobs out lanes max_cycles signature_capacity dynamic serve cone
      compose =
    with_diagnostics @@ fun () ->
    let jobs = if jobs <= 0 then None else Some jobs in
    if compose then begin
      let r = Lint.Compose_bench.run ~quick () in
      Format.printf "%a" Lint.Compose_bench.pp r;
      write_out out (Lint.Compose_bench.to_json r);
      if not r.Lint.Compose_bench.identical then begin
        Printf.eprintf
          "benchmark aborted: composed verdicts diverged from explicit-state \
           reachability\n";
        exit 1
      end
    end
    else if cone then begin
      match Campaign.Bench.run_cone ~quick ?lanes:(opt_pos lanes) () with
      | stats ->
          Format.printf "%a" Campaign.Bench.pp_cone stats;
          write_out out (Campaign.Bench.cone_json stats)
      | exception Campaign.Bench.Divergence msg ->
          Printf.eprintf "benchmark aborted, engines diverged: %s\n" msg;
          exit 1
    end
    else if serve then begin
      let r = Serve.Bench.run ~quick ?jobs () in
      Format.printf "%a" Serve.Bench.pp r;
      write_out out (Serve.Bench.to_json r);
      if not r.Serve.Bench.identical then begin
        Printf.eprintf
          "benchmark aborted: amortized responses diverged from \
           per-invocation responses\n";
        exit 1
      end
    end
    else if dynamic then
      match Campaign.Bench.run_dynamic ~quick ?lanes:(opt_pos lanes) () with
      | d ->
          Format.printf "%a" Campaign.Bench.pp_dynamic d;
          write_out out (Campaign.Bench.dynamic_json d)
      | exception Campaign.Bench.Divergence msg ->
          Printf.eprintf "benchmark aborted, engines diverged: %s\n" msg;
          exit 1
    else
      match
        Campaign.Bench.run ~quick ?jobs ?lanes:(opt_pos lanes)
          ?max_cycles:(opt_pos max_cycles)
          ?signature_capacity:(opt_pos signature_capacity) ()
      with
      | result ->
          Format.printf "%a" Campaign.Bench.pp result;
          write_out out (Campaign.Bench.to_json result)
      | exception Campaign.Bench.Divergence msg ->
          Printf.eprintf "benchmark aborted, engines diverged: %s\n" msg;
          exit 1
  in
  let term =
    Term.(
      const run $ quick_arg $ jobs_arg $ out_arg $ lanes_arg $ max_cycles_arg
      $ signature_capacity_arg $ dynamic_arg $ serve_bench_arg $ cone_bench_arg
      $ compose_bench_arg)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Benchmark steady-state measurement: the packed engine against \
             the reference engine over generated topologies (asserting both \
             report identical steady states), plus the serial-vs-parallel \
             fault-campaign speedup.")
    term

(* ------------------------------------------------------------------ *)
(* dot                                                                  *)

let dot_cmd =
  let run file =
    with_diagnostics @@ fun () ->
    let net = load_network file in
    (* highlight the nodes of the analytic critical cycle, if any *)
    let el = Topology.Elastic.of_network net in
    let highlight =
      List.filter_map
        (fun i ->
          let label = el.Topology.Elastic.labels.(i) in
          match String.index_opt label '.' with
          | Some k ->
              let name = String.sub label 0 k in
              List.find_map
                (fun (n : Topology.Network.node) ->
                  if n.name = name then Some n.id else None)
                (Topology.Network.nodes net)
          | None -> None)
        (Topology.Elastic.critical_cycle el)
    in
    print_string (Topology.Dot.of_network ~highlight net)
  in
  let term = Term.(const run $ network_arg) in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Render the network as graphviz, highlighting the analytic              bottleneck cycle.")
    term

(* ------------------------------------------------------------------ *)
(* sample                                                               *)

let sample_cmd =
  let run () = print_string (Topology.Spec.print (Topology.Generators.fig1 ())) in
  Cmd.v
    (Cmd.info "sample" ~doc:"Print a sample network description (the paper's Fig. 1).")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)

let gen_cmd =
  let args_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FAMILY ARGS"
          ~doc:"Generator family and arguments, exactly as on a spec \
                $(b,generate) line: $(b,mesh N M [stations=KIND,...]), \
                $(b,torus N M [stations=KIND,...]), \
                $(b,butterfly K [stations=KIND,...]) or \
                $(b,soc N [seed=S] [loops=F] [reconv=F] [max_stations=N] \
                [half=F]).")
  in
  let run args =
    with_diagnostics @@ fun () ->
    match Topology.Spec.parse ("generate " ^ String.concat " " args) with
    | Ok net -> print_string (Topology.Spec.print net)
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 2
  in
  let term = Term.(const run $ args_arg) in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Instantiate a parameterized NoC family (mesh, torus, \
             butterfly, random SoC) and print it as a network \
             description, ready for any other subcommand.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                                *)

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains a batch fans out over (0 = one per available \
                core; LIDTOOL_JOBS overrides that recommendation).")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket at PATH instead of \
                serving stdin/stdout; clients are served sequentially \
                and the memo cache persists across connections.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"After every batch, emit one JSON line of cache \
                statistics (hits, misses, errors, jobs) on stderr.")
  in
  let cache_arg =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N"
          ~doc:"Result memo-cache capacity in entries (LRU-bounded; the \
                compiled-engine pool is sized proportionally).")
  in
  let run jobs socket stats cache =
    with_diagnostics @@ fun () ->
    let daemon =
      Serve.Daemon.create
        ?jobs:(opt_pos jobs)
        ~result_capacity:(max 1 cache)
        ~engine_capacity:(max 1 (cache / 8))
        ()
    in
    match socket with
    | Some path -> Serve.Daemon.serve_socket ~stats daemon path
    | None -> Serve.Daemon.serve_channel ~stats daemon stdin stdout
  in
  let term = Term.(const run $ jobs_arg $ socket_arg $ stats_arg $ cache_arg) in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batch-analysis daemon: read line-delimited JSON \
             requests (objects or arrays of objects) naming a topology \
             (inline spec or generator) and an analysis (lint, \
             throughput, equalize, inject), fan each batch over \
             domains, and memoize compiled engines and results by \
             canonical topology hash.  One response line per request \
             line; responses are byte-identical whether or not they \
             were served from the cache.")
    term

let () =
  let info =
    Cmd.info "lidtool" ~version:"1.0"
      ~doc:"Latency-insensitive design toolkit (Casu & Macchiarulo, DATE 2004)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            lint_cmd;
            simulate_cmd;
            equalize_cmd;
            deadlock_cmd;
            rtl_cmd;
            testbench_cmd;
            wave_cmd;
            blocks_cmd;
            verify_cmd;
            inject_cmd;
            bench_cmd;
            dot_cmd;
            sample_cmd;
            gen_cmd;
            serve_cmd;
          ]))
