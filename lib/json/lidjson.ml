(* ------------------------------------------------------------------ *)
(* Escaping.                                                           *)

let escape_to_buffer b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let bprintf_quoted b s =
  Buffer.add_char b '"';
  escape_to_buffer b s;
  Buffer.add_char b '"'

let quote s =
  let b = Buffer.create (String.length s + 2) in
  bprintf_quoted b s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Values.                                                             *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Printf.bprintf b "%.1f" x
      else Printf.bprintf b "%.17g" x
  | String s -> bprintf_quoted b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          bprintf_quoted b k;
          Buffer.add_string b ": ";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

exception Err of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Err (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, got %c" c c'
    | None -> fail "expected %c, got end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "bad literal"
  in
  (* Encode one Unicode scalar value as UTF-8. *)
  let add_utf8 b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub text !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape %S" s
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; loop ()
          | '\\' -> Buffer.add_char b '\\'; loop ()
          | '/' -> Buffer.add_char b '/'; loop ()
          | 'n' -> Buffer.add_char b '\n'; loop ()
          | 'r' -> Buffer.add_char b '\r'; loop ()
          | 't' -> Buffer.add_char b '\t'; loop ()
          | 'b' -> Buffer.add_char b '\b'; loop ()
          | 'f' -> Buffer.add_char b '\012'; loop ()
          | 'u' ->
              let u = hex4 () in
              let u =
                (* high surrogate: consume the low half *)
                if u >= 0xd800 && u <= 0xdbff then begin
                  if
                    !pos + 1 < n && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xdc00 || lo > 0xdfff then
                      fail "bad low surrogate %04x" lo;
                    0x10000 + (((u - 0xd800) lsl 10) lor (lo - 0xdc00))
                  end
                  else fail "lone high surrogate"
                end
                else u
              in
              add_utf8 b u;
              loop ()
          | c -> fail "bad escape \\%c" c)
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    let floaty =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s
    in
    if floaty then
      match float_of_string_opt s with
      | Some x -> Float x
      | None -> fail "bad number %S" s
    else
      match int_of_string_opt s with
      | Some v -> Int v
      | None -> (
          match float_of_string_opt s with
          | Some x -> Float x
          | None -> fail "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec loop () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          loop ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let items = ref [] in
          let rec loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          loop ();
          Obj (List.rev !items)
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Err m -> Error m

let parse_exn text =
  match parse text with
  | Ok v -> v
  | Error m -> invalid_arg ("Lidjson.parse: " ^ m)
