(** Minimal JSON kit shared by every emitter in the toolkit.

    The repository's JSON output is hand-rolled (the vocabulary is fixed
    and tiny; a json library dependency would be all cost), but the
    string escaping must not be: OCaml's [%S] emits decimal escapes like
    [\123] for control and non-ASCII bytes, which no JSON parser
    accepts.  This module provides the one correct escaper, a compact
    printer, and a small recursive-descent parser — enough to frame the
    serve protocol and to property-test every emitter by parsing its
    output back.

    Strings are treated as UTF-8: bytes at or above [0x20] other than
    the double quote and the backslash pass through verbatim (JSON
    strings may carry raw UTF-8), the short two-character escapes are
    used where they exist, and remaining control bytes become
    [\u00XX]. *)

(** {1 Escaping} *)

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the escaped body of [s] — no surrounding quotes. *)

val quote : string -> string
(** The escaped string wrapped in double quotes — the drop-in
    replacement for [%S] in JSON emitters. *)

val bprintf_quoted : Buffer.t -> string -> unit
(** [quote] straight into a buffer (avoids the intermediate string). *)

(** {1 Values} *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order preserved *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects too. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — safe for line-delimited
    framing).  Ints render as ints; floats in shortest round-trip form. *)

val to_buffer : Buffer.t -> t -> unit

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Whole-string parse: trailing non-whitespace is an error.  Numbers
    with neither [.], [e] nor exponent parse as [Int] when they fit.
    [\uXXXX] escapes decode to UTF-8 (surrogate pairs supported). *)

val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)
