module Token = Lid.Token
module RS = Lid.Relay_station

let modulus = 8

type violation = string

(* ------------------------------------------------------------------ *)
(* Producer environment: introduces values [0, 1, 2, ...] (mod M) in
   order, holds a valid presentation while the block stops it, and may
   otherwise emit or idle freely.                                       *)

type producer = { seq : int; pres : Token.t }

let producer_init ~first = { seq = first; pres = Token.void }

let producer_next p ~stopped ~emit =
  if Token.is_valid p.pres && stopped then p
  else if emit then { seq = (p.seq + 1) mod modulus; pres = Token.valid p.seq }
  else { p with pres = Token.void }

(* ------------------------------------------------------------------ *)
(* Observer: order / no-skip / hold-on-stop on an output wire.          *)

type observer = {
  expect : int;
  aux : int;  (** extra counter for value predictors that need history *)
  last_out : Token.t;
  last_stop : bool;
}

(* [next expect aux] yields the (expected value, aux) after a fresh valid
   output was matched; kept outside the state so states stay pure data *)
type predictor = int -> int -> int * int

let observer_init = { expect = 0; aux = 0; last_out = Token.void; last_stop = false }

let observe ~(next : predictor) ob ~out ~stop_in =
  let fail msg = Error msg in
  let continue ob = Ok { ob with last_out = out; last_stop = stop_in } in
  if Token.is_valid ob.last_out && ob.last_stop then
    (* the stopped datum must still be there *)
    match out with
    | Token.Void -> fail "output dropped on stop"
    | Token.Valid v ->
        if Token.equal out ob.last_out then continue ob
        else fail (Printf.sprintf "output changed under stop (got %d)" v)
  else
    match out with
    | Token.Void -> continue ob
    | Token.Valid v ->
        if v = ob.expect then
          let expect, aux = next ob.expect ob.aux in
          continue { ob with expect; aux }
        else
          fail
            (Printf.sprintf "out of order: got %d, expected %d" v ob.expect)

let counting_predictor ~advance : predictor =
 fun expect aux -> ((expect + advance) mod modulus, aux)

(* ------------------------------------------------------------------ *)
(* Relay stations.                                                      *)

type rs_step = RS.state -> input:Token.t -> stop_in:bool -> RS.state

type rs_state = {
  rs_prod : producer;
  rs : RS.state;
  rs_obs : observer;
  rs_viol : violation option;
}

let pp_rs_state fmt s =
  Format.fprintf fmt "prod=%a rs=%a expect=%d%s" Token.pp s.rs_prod.pres RS.pp
    s.rs s.rs_obs.expect
    (match s.rs_viol with None -> "" | Some v -> " VIOLATION: " ^ v)

let rs_fsm ?(flavour = Lid.Protocol.Optimized) ?(step : rs_step option) ?table
    kind =
  let step =
    match step with
    | Some f -> f
    | None -> fun st ~input ~stop_in -> RS.step ~flavour st ~input ~stop_in
  in
  (* Sequence numbers are rebased after every step: a bisimulation (seqs
     only meet in equalities and differences, and the shift is a multiple
     of the payload modulus), under which the retx station's reachable
     quotient is finite — explicit-state discharge terminates. *)
  let step st ~input ~stop_in =
    RS.rebase ~granule:modulus (step st ~input ~stop_in)
  in
  let initial =
    [
      {
        rs_prod = producer_init ~first:0;
        rs = RS.initial ?table kind;
        rs_obs = observer_init;
        rs_viol = None;
      };
    ]
  in
  let inputs s =
    if s.rs_viol <> None then []
    else List.concat_map (fun e -> [ (e, false); (e, true) ]) [ false; true ]
  in
  let next s (emit, stop_in) =
    let stop_up = RS.stop_upstream s.rs in
    let out = RS.present s.rs ~input:s.rs_prod.pres in
    match observe ~next:(counting_predictor ~advance:1) s.rs_obs ~out ~stop_in with
    | Error v -> { s with rs_viol = Some v }
    | Ok obs ->
        {
          rs_prod = producer_next s.rs_prod ~stopped:stop_up ~emit;
          rs = step s.rs ~input:s.rs_prod.pres ~stop_in;
          rs_obs = obs;
          rs_viol = None;
        }
  in
  Fsm.create ~name:(RS.kind_to_string kind ^ " relay station") ~initial ~inputs
    next

let check_relay_station ?flavour ?step ?max_states kind =
  Reach.check_invariant ?max_states (rs_fsm ?flavour ?step kind)
    ~invariant:(fun s -> s.rs_viol = None)

let rs_station s = s.rs
let rs_ok s = s.rs_viol = None
let rs_violation s = s.rs_viol
let rs_delivered ~pre ~post = post.rs_obs.expect <> pre.rs_obs.expect

(* ------------------------------------------------------------------ *)
(* Relay stations at RTL level: the same environment and observer, run
   over the generated netlist via the pure circuit stepper.  With a
   3-bit datapath the payload domain coincides with [modulus]. *)

type rtl_rs_state = {
  rr_prod : producer;
  rr_regs : Rtl_model.state;
  rr_obs : observer;
  rr_viol : violation option;
}

let rtl_rs_fsm ?(flavour = Lid.Protocol.Optimized) kind =
  let data_width = 3 in
  assert (1 lsl data_width = modulus);
  let circ = Lid.Rtl_gen.relay_station ~flavour ~data_width kind in
  let model = Rtl_model.of_circuit circ in
  let open Bitvec in
  let wires pres stop_in =
    [
      ("in_valid", Bits.of_bool (Token.is_valid pres));
      ( "in_data",
        Bits.of_int ~width:data_width
          (Option.value ~default:0 (Token.value_opt pres)) );
      ("stop_in", Bits.of_bool stop_in);
    ]
  in
  let initial =
    [
      {
        rr_prod = producer_init ~first:0;
        rr_regs = Rtl_model.initial model;
        rr_obs = observer_init;
        rr_viol = None;
      };
    ]
  in
  let inputs s =
    if s.rr_viol <> None then []
    else [ (false, false); (false, true); (true, false); (true, true) ]
  in
  let next s (emit, stop_in) =
    let out_f = Rtl_model.outputs model s.rr_regs ~inputs:(wires s.rr_prod.pres stop_in) in
    let out =
      if Bits.lsb (out_f "out_valid") then Token.valid (Bits.to_int (out_f "out_data"))
      else Token.void
    in
    let stop_up = Bits.lsb (out_f "stop_out") in
    match observe ~next:(counting_predictor ~advance:1) s.rr_obs ~out ~stop_in with
    | Error v -> { s with rr_viol = Some v }
    | Ok obs ->
        {
          rr_prod = producer_next s.rr_prod ~stopped:stop_up ~emit;
          rr_regs =
            Rtl_model.step model s.rr_regs ~inputs:(wires s.rr_prod.pres stop_in);
          rr_obs = obs;
          rr_viol = None;
        }
  in
  Fsm.create
    ~name:(RS.kind_to_string kind ^ " relay station (RTL)")
    ~initial ~inputs next

let check_relay_station_rtl ?flavour ?max_states kind =
  Reach.check_invariant ?max_states (rtl_rs_fsm ?flavour kind)
    ~invariant:(fun s -> s.rr_viol = None)

(* ------------------------------------------------------------------ *)
(* Shells.                                                              *)

type shell_pearl = Identity | Adder | Accumulator | Fork

type shell_state = {
  sh_prods : producer list;
  sh : Lid.Shell.state;
  sh_obs : observer list; (* one per output port *)
  sh_viol : violation option;
}

let pp_shell_state fmt s =
  Format.fprintf fmt "prods=[%s] %a expect=[%s]%s"
    (String.concat ";"
       (List.map (fun p -> Token.to_string p.pres) s.sh_prods))
    Lid.Shell.pp s.sh
    (String.concat ";" (List.map (fun o -> string_of_int o.expect) s.sh_obs))
    (match s.sh_viol with None -> "" | Some v -> " VIOLATION: " ^ v)

let rec bool_tuples = function
  | 0 -> [ [] ]
  | n ->
      List.concat_map
        (fun rest -> [ false :: rest; true :: rest ])
        (bool_tuples (n - 1))

(* The product of shell, per-input producers and per-output observers,
   shared by the named-pearl checks below and the shape-generic contract
   discharge.  Also returns the shell handle so callers can interrogate
   [input_stops] on reached states. *)
let shell_product ~name ~flavour pearl predictor =
  let shell = Lid.Shell.create ~flavour pearl in
  let n_in = pearl.Lid.Pearl.n_inputs in
  let n_out = pearl.Lid.Pearl.n_outputs in
  let initial =
    [
      {
        (* producers introduce 1,2,... — the shell's initial valid output
           is the pearl's initial 0 *)
        sh_prods = List.init n_in (fun _ -> producer_init ~first:1);
        sh = Lid.Shell.initial shell;
        sh_obs = List.init n_out (fun _ -> { observer_init with aux = 1 });
        sh_viol = None;
      };
    ]
  in
  let emit_choices = bool_tuples n_in in
  let stop_choices = bool_tuples n_out in
  let choices =
    List.concat_map
      (fun emits -> List.map (fun stops -> (emits, stops)) stop_choices)
      emit_choices
  in
  let inputs s = if s.sh_viol <> None then [] else choices in
  let next s (emits, stops) =
    let inputs_toks =
      Array.of_list (List.map (fun p -> p.pres) s.sh_prods)
    in
    let out_stops = Array.of_list stops in
    let observed =
      List.mapi
        (fun port ob ->
          observe ~next:predictor ob ~out:(Lid.Shell.present s.sh port)
            ~stop_in:out_stops.(port))
        s.sh_obs
    in
    match
      List.find_map (function Error v -> Some v | Ok _ -> None) observed
    with
    | Some v -> { s with sh_viol = Some v }
    | None ->
        let obs =
          List.map (function Ok o -> o | Error _ -> assert false) observed
        in
        let in_stops =
          Lid.Shell.input_stops shell s.sh ~inputs:inputs_toks ~out_stops
        in
        let prods' =
          List.mapi
            (fun i p ->
              producer_next p ~stopped:in_stops.(i) ~emit:(List.nth emits i))
            s.sh_prods
        in
        {
          sh_prods = prods';
          sh = Lid.Shell.step shell s.sh ~inputs:inputs_toks ~out_stops;
          sh_obs = obs;
          sh_viol = None;
        }
  in
  (Fsm.create ~name ~initial ~inputs next, shell)

let shell_fsm ~flavour pearl_kind =
  let pearl, predictor =
    match pearl_kind with
    | Identity -> (Lid.Pearl.identity (), counting_predictor ~advance:1)
    | Fork ->
        (* the same ordered stream must appear on both output ports, even
           though their buffers drain independently under mixed stops *)
        (Lid.Pearl.fork2 (), counting_predictor ~advance:1)
    | Adder ->
        (* sum modulo [modulus], so the observer's modular arithmetic is
           exact *)
        ( Lid.Pearl.combine ~name:"mod-adder" (fun a b -> (a + b) mod modulus),
          counting_predictor ~advance:2 )
    | Accumulator ->
        (* running sum modulo [modulus] of the stream 1,2,3,... — the k-th
           firing must see exactly the k-th input, so this is an exhaustive
           check of clock gating (a single spurious pearl tick breaks the
           prediction) *)
        ( Lid.Pearl.create ~name:"mod-accumulator" ~n_inputs:1 ~n_outputs:1
            ~init_state:[| 0 |] ~initial_output:[| 0 |]
            (fun st ins ->
              let acc = (st.(0) + ins.(0)) mod modulus in
              ([| acc |], [| acc |])),
          fun expect aux ->
            (* aux is the index of the next input to be consumed *)
            ((expect + aux) mod modulus, (aux + 1) mod modulus) )
  in
  fst
    (shell_product
       ~name:
         (Printf.sprintf "%s shell (%s)"
            (match pearl_kind with
            | Identity -> "identity"
            | Fork -> "fork"
            | Adder -> "adder"
            | Accumulator -> "accumulator")
            (Lid.Protocol.to_string flavour))
       ~flavour pearl predictor)

(* The contract face of a shell depends only on its port shape: the
   handshake obligations (hold under stop, no drop, no reorder, AND-fire
   only when every input is valid and no buffered output stalls) are the
   wrapper's, not the pearl's.  An n-ary sum modulo [modulus] broadcast to
   every output port keeps the observers' order prediction exact, so one
   discharge per (n_inputs, n_outputs) covers every pearl of that shape. *)
let shell_shape_fsm ~flavour ~n_inputs ~n_outputs =
  let pearl =
    Lid.Pearl.create
      ~name:(Printf.sprintf "sum-%dto%d" n_inputs n_outputs)
      ~n_inputs ~n_outputs ~init_state:[||]
      ~initial_output:(Array.make n_outputs 0)
      (fun st ins ->
        (st, Array.make n_outputs (Array.fold_left ( + ) 0 ins mod modulus)))
  in
  let fsm, shell =
    shell_product
      ~name:
        (Printf.sprintf "%dx%d shell (%s)" n_inputs n_outputs
           (Lid.Protocol.to_string flavour))
      ~flavour pearl
      (counting_predictor ~advance:n_inputs)
  in
  let stalls_empty s ((_, stops) : bool list * bool list) =
    (* Under this enabled choice, does the shell back-pressure some
       producer while holding no buffered output token at all?  Reachable
       under [Original] (a starved shell stops unconditionally), never
       under [Optimized] — the weak/strong classification LID010 feeds on. *)
    let inputs = Array.of_list (List.map (fun p -> p.pres) s.sh_prods) in
    let out_stops = Array.of_list stops in
    let in_stops = Lid.Shell.input_stops shell s.sh ~inputs ~out_stops in
    Array.exists Fun.id in_stops
    && not
         (List.exists
            (fun port -> Token.is_valid (Lid.Shell.present s.sh port))
            (List.init n_outputs Fun.id))
  in
  (fsm, stalls_empty)

let shell_ok s = s.sh_viol = None
let shell_violation s = s.sh_viol

let shell_delivered ~pre ~post =
  List.exists2 (fun a b -> a.expect <> b.expect) pre.sh_obs post.sh_obs

let check_shell ?max_states ~flavour pearl_kind =
  Reach.check_invariant ?max_states (shell_fsm ~flavour pearl_kind)
    ~invariant:(fun s -> s.sh_viol = None)

(* ------------------------------------------------------------------ *)
(* Entrance gates.  The automaton mirrors Skeleton.Packed's commit_gate
   / consumer_stop semantics field for field: a one-slot register whose
   datum is invisible while the per-launch delay timer runs, stop toward
   the producer asserted exactly while the slot is occupied and cannot
   drain this cycle.                                                     *)

type gate_state = {
  g_prod : producer;
  g_table : int array; (* static per-launch delay schedule *)
  g_v : bool;
  g_d : int;
  g_timer : int;
  g_count : int;
  g_obs : observer;
  g_viol : violation option;
}

let pp_gate_state fmt s =
  Format.fprintf fmt "prod=%a gate=%s timer=%d expect=%d%s" Token.pp
    s.g_prod.pres
    (if s.g_v then string_of_int s.g_d else "-")
    s.g_timer s.g_obs.expect
    (match s.g_viol with None -> "" | Some v -> " VIOLATION: " ^ v)

let gate_fsm ~table =
  let table = if Array.length table = 0 then [| 0 |] else Array.copy table in
  let initial =
    [
      {
        g_prod = producer_init ~first:0;
        g_table = table;
        g_v = false;
        g_d = 0;
        g_timer = 0;
        g_count = 0;
        g_obs = observer_init;
        g_viol = None;
      };
    ]
  in
  let inputs s =
    if s.g_viol <> None then []
    else [ (false, false); (false, true); (true, false); (true, true) ]
  in
  let next s (emit, stop_in) =
    let out =
      if s.g_v && s.g_timer = 0 then Token.valid s.g_d else Token.void
    in
    let stop_up = s.g_v && (s.g_timer > 0 || stop_in) in
    match
      observe ~next:(counting_predictor ~advance:1) s.g_obs ~out ~stop_in
    with
    | Error v -> { s with g_viol = Some v }
    | Ok obs ->
        let pres = s.g_prod.pres in
        let departs = s.g_v && s.g_timer = 0 && not stop_in in
        let accept = Token.is_valid pres && ((not s.g_v) || departs) in
        let s' =
          if accept then
            {
              s with
              g_v = true;
              g_d = Option.value ~default:0 (Token.value_opt pres);
              g_timer = s.g_table.(s.g_count);
              g_count = (s.g_count + 1) mod Array.length s.g_table;
            }
          else if departs then { s with g_v = false }
          else if s.g_v && s.g_timer > 0 then { s with g_timer = s.g_timer - 1 }
          else s
        in
        {
          s' with
          g_prod = producer_next s.g_prod ~stopped:stop_up ~emit;
          g_obs = obs;
          g_viol = None;
        }
  in
  Fsm.create ~name:"entrance gate" ~initial ~inputs next

let gate_ok s = s.g_viol = None
let gate_violation s = s.g_viol
let gate_delivered ~pre ~post = post.g_obs.expect <> pre.g_obs.expect

(* ------------------------------------------------------------------ *)
(* Mutants.                                                             *)

let mutant_drop_on_stop st ~input ~stop_in =
  (* While the consumer stops, pretend nothing arrives: the in-flight datum
     the producer already considers delivered is lost. *)
  if stop_in then RS.step st ~input:Token.void ~stop_in
  else RS.step st ~input ~stop_in

let mutant_no_hold st ~input ~stop_in:_ =
  (* Ignores back-pressure: releases the head even though the consumer did
     not take it. *)
  RS.step st ~input ~stop_in:false

let mutant_duplicate st ~input ~stop_in:_ =
  (* Never dequeues: the same datum is presented again after delivery. *)
  RS.step st ~input ~stop_in:true
