module RS = Lid.Relay_station

type cls =
  | Shell of { n_inputs : int; n_outputs : int }
  | Station of { kind : RS.kind; table : int array }
  | Gate of { table : int array }

type outcome =
  | Proved of { states : int }
  | Refuted of { reason : string }
  | Assumed of { budget : int }

type verdict = {
  cls : cls;
  flavour : Lid.Protocol.flavour;
  handshake : outcome;
  responsive : outcome;
  stall_implies_token : bool;
  symbolic : (string * bool) option;
}

let table_to_string t =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list t)) ^ "]"

let cls_to_string = function
  | Shell { n_inputs; n_outputs } ->
      Printf.sprintf "shell:%dx%d" n_inputs n_outputs
  | Station { kind = RS.Retx _ as kind; table } ->
      Printf.sprintf "station:%s%s" (RS.kind_to_string kind)
        (table_to_string table)
  | Station { kind; _ } -> "station:" ^ RS.kind_to_string kind
  | Gate { table } -> "gate" ^ table_to_string table

let class_key ~flavour cls =
  Lid.Protocol.to_string flavour ^ ":" ^ cls_to_string cls

let outcome_to_string = function
  | Proved { states } -> Printf.sprintf "proved (%d states)" states
  | Refuted { reason } -> "refuted: " ^ reason
  | Assumed { budget } -> Printf.sprintf "assumed (budget %d exceeded)" budget

let outcome_ok = function Refuted _ -> false | Proved _ | Assumed _ -> true
let verdict_ok v = outcome_ok v.handshake && outcome_ok v.responsive

(* ------------------------------------------------------------------ *)
(* Discharge primitives over the Props product machines.               *)

let safety ~violation fsm ~budget ~invariant =
  match Reach.check_invariant ~max_states:budget fsm ~invariant with
  | Reach.Holds { states; _ } -> Proved { states }
  | Reach.Fails { trace } ->
      let reason =
        match List.rev trace with
        | (_, last) :: _ ->
            Option.value ~default:"handshake violation" (violation last)
        | [] -> "handshake violation"
      in
      Refuted { reason }
  | exception Reach.State_space_exceeded _ -> Assumed { budget }

let liveness ~reason fsm ~budget ~progress =
  match Reach.check_progress ~max_states:budget fsm ~progress with
  | Reach.Live { states } -> Proved { states }
  | Reach.Wedged _ -> Refuted { reason }
  | exception Reach.State_space_exceeded _ -> Assumed { budget }

(* Is there a reachable infinite run every state of which satisfies [bad]
   — i.e. a reachable cycle inside the bad subgraph, or a bad dead end?
   This is the sustained version of a state predicate: a retx station
   transiently shows stop with an empty receiver while its replay window
   is in flight, but fault-free internal progress always forces it out of
   the bad region, whereas the half station under [Original] can sit in
   stop-while-empty forever (the environment keeps stop asserted and the
   sticky sreg loops).  Only the sustained form is deadlock fuel. *)
let exists_sustained ~max_states fsm ~bad =
  let seen = Hashtbl.create 1024 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        Queue.push s q
      end)
    fsm.Fsm.initial;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    List.iter
      (fun i ->
        let s' = fsm.Fsm.next s i in
        if not (Hashtbl.mem seen s') then begin
          if Hashtbl.length seen >= max_states then
            raise (Reach.State_space_exceeded max_states);
          Hashtbl.add seen s' ();
          Queue.push s' q
        end)
      (fsm.Fsm.inputs s)
  done;
  let grey = 1 and black = 2 in
  let color = Hashtbl.create 97 in
  let found = ref false in
  let rec dfs s =
    match Hashtbl.find_opt color s with
    | Some c when c = grey -> found := true
    | Some _ -> ()
    | None ->
        Hashtbl.replace color s grey;
        let inputs = fsm.Fsm.inputs s in
        if inputs = [] then found := true
        else
          List.iter
            (fun i ->
              if not !found then
                let s' = fsm.Fsm.next s i in
                if bad s' then dfs s')
            inputs;
        Hashtbl.replace color s black
  in
  Hashtbl.iter (fun s () -> if (not !found) && bad s then dfs s) seen;
  !found

(* ------------------------------------------------------------------ *)
(* The symbolic cross-check: the same stop-implies-occupied property over
   the generated RTL with a datapath too wide for explicit enumeration.  *)

let symbolic_station ~flavour kind =
  match kind with
  | RS.Retx _ -> None
  | RS.Full | RS.Half -> (
      try
        let circ = Lid.Rtl_gen.relay_station ~flavour ~data_width:5 kind in
        let sym = Symbolic.of_circuit circ in
        let man = Symbolic.man sym in
        let stop_out = (Symbolic.output_vector sym "stop_out").(0) in
        let occupied =
          match kind with
          | RS.Full ->
              Bdd.or_ man
                (Symbolic.reg_vector sym "v_main_r").(0)
                (Symbolic.reg_vector sym "v_aux_r").(0)
          | _ -> (Symbolic.reg_vector sym "v_hold_r").(0)
        in
        let holds =
          match Symbolic.check_invariant sym (Bdd.imp man stop_out occupied) with
          | Symbolic.Holds -> true
          | Symbolic.Violation _ -> false
        in
        Some ("stop_out implies occupied (RTL, 5-bit datapath)", holds)
      with _ -> None)

(* ------------------------------------------------------------------ *)

let responsive_reason =
  "a state is reachable from which no environment future yields a delivery"

let compute ~flavour ~budget ?step cls =
  match cls with
  | Shell { n_inputs; n_outputs } ->
      let fsm, stalls_empty =
        Props.shell_shape_fsm ~flavour ~n_inputs ~n_outputs
      in
      let handshake =
        safety ~violation:Props.shell_violation fsm ~budget
          ~invariant:Props.shell_ok
      in
      let responsive =
        liveness ~reason:responsive_reason fsm ~budget ~progress:(fun pre _ post ->
            Props.shell_delivered ~pre ~post)
      in
      let stall_implies_token =
        match handshake with
        | Refuted _ -> false
        | _ -> (
            (* instantaneous suffices for shells: a starved shell's stop
               persists as long as the starvation does *)
            match
              Reach.check_invariant ~max_states:budget fsm
                ~invariant:(fun s ->
                  not (List.exists (stalls_empty s) (fsm.Fsm.inputs s)))
            with
            | Reach.Holds _ -> true
            | Reach.Fails _ -> false
            | exception Reach.State_space_exceeded _ -> false)
      in
      { cls; flavour; handshake; responsive; stall_implies_token; symbolic = None }
  | Station { kind; table } ->
      let table = if Array.length table = 0 then None else Some table in
      let fsm = Props.rs_fsm ~flavour ?step ?table kind in
      let handshake =
        safety ~violation:Props.rs_violation fsm ~budget ~invariant:Props.rs_ok
      in
      let responsive =
        liveness ~reason:responsive_reason fsm ~budget ~progress:(fun pre _ post ->
            Props.rs_delivered ~pre ~post)
      in
      let stall_implies_token =
        match handshake with
        | Refuted _ -> false
        | _ -> (
            try
              not
                (exists_sustained ~max_states:budget fsm ~bad:(fun s ->
                     let st = Props.rs_station s in
                     RS.stop_upstream st && RS.occupancy st = 0))
            with Reach.State_space_exceeded _ -> false)
      in
      let symbolic =
        match step with
        | Some _ -> None
        | None -> symbolic_station ~flavour kind
      in
      { cls; flavour; handshake; responsive; stall_implies_token; symbolic }
  | Gate { table } ->
      let fsm = Props.gate_fsm ~table in
      let handshake =
        safety ~violation:Props.gate_violation fsm ~budget
          ~invariant:Props.gate_ok
      in
      let responsive =
        liveness ~reason:responsive_reason fsm ~budget ~progress:(fun pre _ post ->
            Props.gate_delivered ~pre ~post)
      in
      (* the gate's upstream stop is [pg_v && _]: structurally it cannot be
         asserted while the slot is empty, in either flavour *)
      let stall_implies_token =
        match handshake with Refuted _ -> false | _ -> true
      in
      { cls; flavour; handshake; responsive; stall_implies_token; symbolic = None }

(* ------------------------------------------------------------------ *)
(* Memoization: once per class key for the whole process (the daemon
   serves many topologies; classes repeat endlessly).  Guarded by a
   mutex — campaign workers run on separate domains.                   *)

let memo : (string, verdict) Hashtbl.t = Hashtbl.create 31
let hits = ref 0
let lock = Mutex.create ()

let memo_stats () =
  Mutex.lock lock;
  let r = (Hashtbl.length memo, !hits) in
  Mutex.unlock lock;
  r

let memo_clear () =
  Mutex.lock lock;
  Hashtbl.reset memo;
  hits := 0;
  Mutex.unlock lock

let discharge ?(flavour = Lid.Protocol.Optimized) ?(max_states = 1_000_000)
    ?step cls =
  match step with
  | Some _ -> compute ~flavour ~budget:max_states ?step cls
  | None -> (
      let key = Printf.sprintf "%s max=%d" (class_key ~flavour cls) max_states in
      Mutex.lock lock;
      let cached = Hashtbl.find_opt memo key in
      if cached <> None then incr hits;
      Mutex.unlock lock;
      match cached with
      | Some v -> v
      | None ->
          let v = compute ~flavour ~budget:max_states cls in
          Mutex.lock lock;
          Hashtbl.replace memo key v;
          Mutex.unlock lock;
          v)
