(** Protocol-contract automata and their once-per-class discharge.

    Assume-guarantee compositional verification in the style the paper's
    §5 decidability argument (and the NVIDIA follow-up) calls for: each
    {e component class} — a shell port shape, a relay-station kind, an
    entrance gate with a delay schedule — is checked {e once} against the
    LID valid/stop handshake contract, and whole-network verdicts are then
    discharged statically over the contract graph ({!Lint.Compose}) instead
    of over the product state space.

    The contract obligations per class:

    - {b handshake} — under producers that keep valid inputs stable while
      stopped, the component never drops a valid datum without an accept,
      never changes a datum while stalled, and delivers in order without
      duplication (the {!Props} observers);
    - {b responsive} — a fresh delivery always remains reachable under
      some environment future (bounded stall response: the component
      cannot wedge itself);
    - {b stall_implies_token} — the derived {e strength} of the upstream
      guarantee: [true] iff the component cannot sustain stop toward its
      producer indefinitely while holding no token.  Components for which
      this fails (the half station under the [Original] flavour, a bare
      wire) are the fuel of token-starved deadlock cycles — LID010.

    Each discharge is memoized by {!class_key}, so a 10⁶-node network pays
    for as many reachability runs as it has distinct classes (~4 for a
    typical NoC). *)

type cls =
  | Shell of { n_inputs : int; n_outputs : int }
      (** any shell of this port shape, pearl-independent *)
  | Station of { kind : Lid.Relay_station.kind; table : int array }
      (** a relay station; [table] is the compiled internal-hop delay
          schedule (meaningful for [Retx] only — it fixes the
          retransmission timeout; normalized away for full/half) *)
  | Gate of { table : int array }
      (** the entrance gate a channel latency profile compiles to *)

val cls_to_string : cls -> string
(** ["shell:2x1"], ["station:half"], ["station:retx:4[0,2]"],
    ["gate[1,0,3]"]. *)

val class_key : flavour:Lid.Protocol.flavour -> cls -> string
(** The memoization key; stable across runs. *)

type outcome =
  | Proved of { states : int }  (** exhaustively discharged; state count *)
  | Refuted of { reason : string }
      (** a counterexample exists; [reason] is the observer's verdict *)
  | Assumed of { budget : int }
      (** the state budget was exceeded before a verdict — the obligation
          is carried as an assumption, reported but not refuted *)

val outcome_to_string : outcome -> string
val outcome_ok : outcome -> bool
(** [true] unless [Refuted]. *)

type verdict = {
  cls : cls;
  flavour : Lid.Protocol.flavour;
  handshake : outcome;
  responsive : outcome;
  stall_implies_token : bool;
      (** the strength bit (conservatively [false] when the probe runs out
          of budget or the handshake is refuted) *)
  symbolic : (string * bool) option;
      (** BDD cross-check over the generated RTL (full/half stations,
          8-bit datapath): property text and whether it holds.  For
          full/half the instantaneous property coincides with the
          sustained probe, so this independently confirms
          [stall_implies_token]. *)
}

val verdict_ok : verdict -> bool
(** Handshake and responsiveness both non-refuted. *)

val discharge :
  ?flavour:Lid.Protocol.flavour ->
  ?max_states:int ->
  ?step:Props.rs_step ->
  cls ->
  verdict
(** Check [cls] against its contract ([flavour] defaults to [Optimized],
    [max_states] to 1_000_000).  [step] substitutes the relay-station
    transition function (mutants); discharges with [step] bypass the memo
    and skip the symbolic leg (the mutant is not the RTL). *)

val memo_stats : unit -> int * int
(** [(distinct classes discharged, memo hits)] since the last clear. *)

val memo_clear : unit -> unit
