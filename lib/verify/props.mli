(** The paper's verification properties, as explicit-state models.

    For relay stations (both kinds), under an environment whose producer
    keeps valid inputs stable while the station asserts stop and introduces
    values in increasing order, and whose consumer stops nondeterministically:

    - outputs appear in the correct order;
    - no valid output is skipped (none lost, none duplicated);
    - the output is kept on asserted stops.

    For shells (identity and 2-input adder pearls), under producers obeying
    the same assumption per input channel:

    - the shell elaborates coherent data (the adder's k-th output is the
      sum of the k-th input pair);
    - outputs are produced in the correct order;
    - no valid output is skipped.

    Values are tracked modulo {!val-modulus}; with at most three data in
    flight through any block the abstraction is exact.

    Each [check_*] returns the {!Reach} outcome over the full product of
    block, environment and observer. *)

val modulus : int

type violation = string
(** Observer verdict carried in the state; [invariant] is its absence. *)

(** {1 Relay stations} *)

type rs_step =
  Lid.Relay_station.state -> input:Lid.Token.t -> stop_in:bool ->
  Lid.Relay_station.state
(** The transition function under test — the real one or a mutant. *)

type rs_state

val pp_rs_state : Format.formatter -> rs_state -> unit

val rs_fsm :
  ?flavour:Lid.Protocol.flavour ->
  ?step:rs_step ->
  ?table:int array ->
  Lid.Relay_station.kind ->
  (rs_state, bool * bool) Fsm.t
(** The raw product of station, producer environment and order/hold
    observer — exposed so the contract layer can run liveness probes over
    it.  Retransmitting stations' sequence numbers are rebased after every
    step ({!Lid.Relay_station.rebase}), making the reachable quotient
    finite; [table] is their internal-hop delay schedule. *)

val rs_station : rs_state -> Lid.Relay_station.state
val rs_ok : rs_state -> bool
(** No observer violation recorded (the safety invariant). *)

val rs_violation : rs_state -> violation option

val rs_delivered : pre:rs_state -> post:rs_state -> bool
(** The observer matched a fresh in-order output on this transition — the
    progress event of the bounded-stall-response probe. *)

val check_relay_station :
  ?flavour:Lid.Protocol.flavour ->
  ?step:rs_step ->
  ?max_states:int ->
  Lid.Relay_station.kind ->
  (rs_state, bool * bool) Reach.safety_outcome
(** Inputs are [(producer_emits, consumer_stops)] choices.  [flavour]
    (default [Optimized]) selects the station's stop discipline; [step]
    overrides the transition function entirely (for mutants). *)

type rtl_rs_state

val check_relay_station_rtl :
  ?flavour:Lid.Protocol.flavour ->
  ?max_states:int ->
  Lid.Relay_station.kind ->
  (rtl_rs_state, bool * bool) Reach.safety_outcome
(** The same properties, checked exhaustively over the {e generated RTL}
    (3-bit datapath) via {!Rtl_model} — the abstract-FSM result extends to
    the emitted netlists. *)

(** {1 Shells} *)

type shell_pearl = Identity | Adder | Accumulator | Fork

type shell_state

val pp_shell_state : Format.formatter -> shell_state -> unit

val check_shell :
  ?max_states:int ->
  flavour:Lid.Protocol.flavour ->
  shell_pearl ->
  (shell_state, bool list * bool list) Reach.safety_outcome
(** Inputs are [(producer_emits per input channel, consumer_stops per
    output channel)] — for [Fork], the independent per-port stops
    exhaustively exercise the mixed-stop buffer logic. *)

val shell_shape_fsm :
  flavour:Lid.Protocol.flavour ->
  n_inputs:int ->
  n_outputs:int ->
  (shell_state, bool list * bool list) Fsm.t
  * (shell_state -> bool list * bool list -> bool)
(** The contract face of an [(n_inputs, n_outputs)] shell shape: an n-ary
    sum-modulo-{!modulus} pearl broadcast to every output port.  The
    handshake obligations are the wrapper's, not the pearl's, so one
    discharge per shape covers every pearl of that shape.  The second
    component answers, for a reached state and an enabled choice, whether
    the shell back-pressures some producer while holding no buffered
    output token — the weak-stop probe LID010's flavour distinction rests
    on. *)

val shell_ok : shell_state -> bool
val shell_violation : shell_state -> violation option
val shell_delivered : pre:shell_state -> post:shell_state -> bool
(** Some output observer matched a fresh in-order value on this
    transition. *)

(** {1 Entrance gates} *)

type gate_state

val pp_gate_state : Format.formatter -> gate_state -> unit

val gate_fsm : table:int array -> (gate_state, bool * bool) Fsm.t
(** Product of producer, entrance gate (the one-slot metering register a
    latency profile compiles to — semantics identical to
    [Skeleton.Packed]'s gate commit) and order/hold observer.  [table] is
    the compiled per-launch delay schedule; [[||]] means no extra delay. *)

val gate_ok : gate_state -> bool
val gate_violation : gate_state -> violation option
val gate_delivered : pre:gate_state -> post:gate_state -> bool

(** {1 Mutants}

    Deliberately broken relay stations; the test suite checks that
    [check_relay_station ~step:(mutant)] finds a counterexample for each —
    i.e. the properties have teeth. *)

val mutant_drop_on_stop : rs_step
(** Forgets the in-flight datum when stop arrives while full/passing. *)

val mutant_no_hold : rs_step
(** Releases its datum even when the consumer asserted stop. *)

val mutant_duplicate : rs_step
(** Keeps the datum after successful delivery (duplication). *)
