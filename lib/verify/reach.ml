exception State_space_exceeded of int

type ('s, 'i) trace = ('i option * 's) list

type ('s, 'i) safety_outcome =
  | Holds of { states : int; transitions : int }
  | Fails of { trace : ('s, 'i) trace }

type ('s, 'i) liveness_outcome =
  | Live of { states : int }
  | Wedged of { trace : ('s, 'i) trace }

(* Exploration record: states numbered in discovery (BFS) order, with the
   (predecessor id, input) that first produced each. *)
type ('s, 'i) graph = {
  states : 's array;
  parent : (int * 'i) option array;
  succ : (int * 'i) list array; (* successor id, input — forward edges *)
  n : int;
}

let explore ?(max_states = 1_000_000) (fsm : ('s, 'i) Fsm.t) =
  let id_of = Hashtbl.create 4096 in
  let states = ref [] in
  let parent = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let add pred s =
    match Hashtbl.find_opt id_of s with
    | Some id -> id
    | None ->
        let id = !count in
        if id >= max_states then raise (State_space_exceeded max_states);
        incr count;
        Hashtbl.add id_of s id;
        states := s :: !states;
        parent := pred :: !parent;
        Queue.add (id, s) queue;
        id
  in
  List.iter (fun s -> ignore (add None s)) fsm.initial;
  let succ_acc = Hashtbl.create 4096 in
  let n_transitions = ref 0 in
  while not (Queue.is_empty queue) do
    let id, s = Queue.pop queue in
    let outgoing =
      List.map
        (fun i ->
          let s' = fsm.next s i in
          let id' = add (Some (id, i)) s' in
          incr n_transitions;
          (id', i))
        (fsm.inputs s)
    in
    Hashtbl.replace succ_acc id outgoing
  done;
  let n = !count in
  let states = Array.of_list (List.rev !states) in
  let parent = Array.of_list (List.rev !parent) in
  let succ = Array.make n [] in
  Hashtbl.iter (fun id out -> succ.(id) <- out) succ_acc;
  { states; parent; succ; n }

let trace_to g id =
  let rec go id acc =
    match g.parent.(id) with
    | None -> (None, g.states.(id)) :: acc
    | Some (pred, input) -> go pred ((Some input, g.states.(id)) :: acc)
  in
  go id []

let check_invariant ?max_states fsm ~invariant =
  (* Check states as they are produced, so counterexamples do not require
     full exploration; reuse [explore] by wrapping the state type would
     obscure traces, so do a dedicated BFS here. *)
  let max_states = Option.value max_states ~default:1_000_000 in
  let id_of = Hashtbl.create 4096 in
  let states = ref [] and parent = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let violation = ref None in
  let add pred s =
    if !violation = None then
      match Hashtbl.find_opt id_of s with
      | Some _ -> ()
      | None ->
          let id = !count in
          if id >= max_states then raise (State_space_exceeded max_states);
          incr count;
          Hashtbl.add id_of s id;
          states := s :: !states;
          parent := pred :: !parent;
          if not (invariant s) then violation := Some id
          else Queue.add (id, s) queue
  in
  List.iter (add None) fsm.Fsm.initial;
  let n_transitions = ref 0 in
  while (not (Queue.is_empty queue)) && !violation = None do
    let id, s = Queue.pop queue in
    List.iter
      (fun i ->
        incr n_transitions;
        add (Some (id, i)) (fsm.Fsm.next s i))
      (fsm.Fsm.inputs s)
  done;
  match !violation with
  | None -> Holds { states = !count; transitions = !n_transitions }
  | Some id ->
      let states = Array.of_list (List.rev !states) in
      let parent = Array.of_list (List.rev !parent) in
      let rec go id acc =
        match parent.(id) with
        | None -> (None, states.(id)) :: acc
        | Some (pred, input) -> go pred ((Some input, states.(id)) :: acc)
      in
      Fails { trace = go id [] }

let check_progress ?max_states fsm ~progress =
  let g = explore ?max_states fsm in
  (* Mark states owning a progress transition, then close backwards. *)
  let preds = Array.make g.n [] in
  Array.iteri
    (fun id out -> List.iter (fun (id', _) -> preds.(id') <- id :: preds.(id')) out)
    g.succ;
  let good = Array.make g.n false in
  let queue = Queue.create () in
  Array.iteri
    (fun id out ->
      if
        List.exists
          (fun (id', i) -> progress g.states.(id) i g.states.(id'))
          out
      then begin
        good.(id) <- true;
        Queue.add id queue
      end)
    g.succ;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter
      (fun p ->
        if not good.(p) then begin
          good.(p) <- true;
          Queue.add p queue
        end)
      preds.(id)
  done;
  let wedged = ref None in
  Array.iteri (fun id ok -> if (not ok) && !wedged = None then wedged := Some id) good;
  match !wedged with
  | None -> Live { states = g.n }
  | Some id -> Wedged { trace = trace_to g id }

let reachable_states ?max_states fsm =
  let g = explore ?max_states fsm in
  g.n
