(** Cycle-accurate simulator of a LID network at protocol granularity.

    This is the paper's "skeleton" simulator: it tracks valid/stop wires and
    token payloads of shells, sources, sinks and relay stations, without any
    RTL overhead — the paper argues that simulating just this skeleton until
    the transient dies out is enough to decide deadlock, and that its cost
    is negligible compared to full RTL simulation (our experiment E10).

    Within one clock cycle the engine resolves:

    - forward token wires: shell/source outputs are registered (Moore);
      full relay stations are Moore; half relay stations pass through
      combinationally when empty — resolved producer-to-consumer along each
      channel;
    - backward stop wires: relay stations and sinks assert stop from their
      own state (registered); shells forward back-pressure combinationally,
      which is resolved recursively across station-less channels.  A cycle
      of station-less channels raises {!Combinational_stop_cycle} — the
      situation the paper's minimum-memory theorem outlaws.

    Dynamic-LID channels (a {!Lid.Latency.profile} on the edge) are
    elaborated per {!Topology.Network.edge_is_gated}: the profile drives
    either the first retransmitting station's internal hop or an entrance
    gate — a one-token register between the producer and the chain whose
    token is presented only once its per-launch delay has elapsed.  Both
    are ordinary sequential state, so signatures, periodicity detection
    and the packed engine's lockstep guarantee extend unchanged. *)

module Token = Lid.Token

exception Combinational_stop_cycle of string

type t

val create : ?flavour:Lid.Protocol.flavour -> Topology.Network.t -> t
(** Default flavour: [Optimized] (the paper's variant). *)

val network : t -> Topology.Network.t
val flavour : t -> Lid.Protocol.flavour
val cycle : t -> int

val step : t -> unit
val run : t -> cycles:int -> unit
val reset : t -> unit

(** {1 Observation} *)

val fired_count : t -> Topology.Network.node_id -> int
(** Cumulative number of firings of a shell or source. *)

val gated_count : t -> Topology.Network.node_id -> int
(** Cycles a shell lost to back-pressure (a relevant stop on a valid
    output) — where in the system the stop waves bite. *)

val starved_count : t -> Topology.Network.node_id -> int
(** Cycles a shell lost waiting for void inputs (and not gated). *)

val sink_values : t -> Topology.Network.node_id -> int list
(** Values consumed by a sink so far, oldest first. *)

val sink_count : t -> Topology.Network.node_id -> int

val recovery_count : t -> int
(** Total go-back-N rewinds performed by retransmitting stations so far
    (damage, loss or timeout induced — back-pressure refusals are not
    counted).  0 on networks without retransmitting stations, and on
    fault-free runs. *)

val dup_drop_count : t -> int
(** Total stale duplicates discarded by retransmitting stations'
    exactly-once filters so far. *)

val signature : t -> string
(** Skeleton state: the valid/void occupancy of every buffer and relay
    station (including the half station's registered stop bit) plus the
    environment phase — {e not} the data values.  Two cycles with equal
    signatures evolve identically at protocol level, so a repeated
    signature proves periodicity. *)

val signature_id : t -> int
(** {!signature}, interned per engine: equal signatures map to equal small
    ints, so periodicity detection can hash and store ints instead of
    structural strings.  Ids are dense from 0 in first-seen order. *)

val signature_intern_size : t -> int
(** Number of distinct signatures interned so far — the memory the intern
    table holds. *)

val signature_intern_clear : t -> unit
(** Drop the intern table (ids restart from 0).  Used by
    {!Measure.find_repeat} to bound memory on aperiodic runs; any
    previously returned id is invalidated. *)

(** {1 Per-cycle wire-level snapshot (for trace rendering and monitors)} *)

type probe = {
  pr_src_tok : Token.t;
      (** the token the producer presents on the channel (pre-fault) *)
  pr_src_stop : bool;
      (** the stop the producer actually observes (post-fault) — together
          with [pr_src_tok] this decides whether the producer believes its
          datum was handed over this cycle *)
  pr_dst_tok : Token.t;
      (** the token the consumer actually observes (post-fault) *)
  pr_dst_stop : bool;
      (** the stop the consumer genuinely asserts — together with
          [pr_dst_tok] this decides whether the consumer believes it
          received a datum this cycle *)
  pr_occupancy : int;  (** tokens stored in the channel's relay chain *)
}
(** One channel's boundary wires for a cycle, as seen by the two endpoint
    nodes.  In a fault-free run both pairs are the true wires; under
    injection they are deliberately the {e beliefs} of the endpoints, so a
    fault in between makes the producer-side and consumer-side ledgers
    disagree — exactly what the runtime conservation monitor checks. *)

type snapshot = {
  snap_cycle : int;
  node_out : (string * Token.t array) list;  (** presented output tokens *)
  node_fired : (string * bool) list;  (** shells and sources *)
  node_stopped : (string * bool) list;
      (** a relevant stop gated the node this cycle *)
  rs_contents : (string * Token.t list) list;
      (** per channel segment, producer-to-consumer *)
  chan_dst : (Topology.Network.edge_id * Token.t * bool) list;
      (** per channel: the token standing at the consumer side this cycle
          and the stop the consumer asserts against it — the wire pair the
          protocol invariants range over *)
  chan_probe : (Topology.Network.edge_id * probe) list;
      (** per channel: both boundary wire pairs plus relay occupancy *)
  sink_got : (string * Token.t) list;  (** what each sink consumed *)
}

val snapshot_next : t -> snapshot
(** Resolve the current cycle's wires, capture a snapshot, and step. *)

(** {1 Fault injection and runtime monitoring}

    Hooks for the [fault] library.  Fault hooks are pure transformers of
    wire values, addressed by cycle and site; the engine queries them from
    inside wire resolution (possibly several times per cycle for the same
    site — hooks must be deterministic).  A monitor is invoked once per
    cycle, after wire resolution and before the clock edge, with the same
    snapshot {!snapshot_next} returns; installing one turns every {!step}
    and {!run} into a monitored step at protocol granularity. *)

type fault_hooks = {
  fh_forward :
    cycle:int -> edge:Topology.Network.edge_id -> seg:int -> Token.t -> Token.t;
      (** forward token wire: segment 0 leaves the producer, segment [j > 0]
          leaves relay station [j-1] *)
  fh_stop :
    cycle:int -> edge:Topology.Network.edge_id -> boundary:int -> bool -> bool;
      (** backward stop wire: boundary 0 is observed by the producer,
          boundary [b > 0] by relay station [b-1]; for a station-less
          channel boundary 0 is the only boundary *)
  fh_station :
    cycle:int ->
    edge:Topology.Network.edge_id ->
    station:int ->
    Lid.Relay_station.state ->
    Lid.Relay_station.state;
      (** relay-station register upset, applied at the clock edge *)
  fh_link :
    cycle:int ->
    edge:Topology.Network.edge_id ->
    station:int ->
    Lid.Relay_station.link_fault;
      (** link-level fault on a retransmitting station's internal data hop,
          applied to the flit completing its traversal this cycle; ignored
          by full/half stations *)
}

val set_fault_hooks : t -> fault_hooks option -> unit
(** Install (or clear) fault hooks.  Hooks survive {!reset}; with [None]
    (the default) the engine takes the unhooked fast path. *)

val set_monitor : t -> (snapshot -> unit) option -> unit
(** Install (or clear) a per-cycle observer compiled into the step loop. *)
