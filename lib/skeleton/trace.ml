type t = { snaps : Engine.snapshot list }

let record ?(cycles = 16) engine =
  (* [snapshot_next] steps the engine, so the snapshots must be taken in
     cycle order — [List.init]'s evaluation order is unspecified *)
  let rec go n acc =
    if n = 0 then List.rev acc
    else go (n - 1) (Engine.snapshot_next engine :: acc)
  in
  { snaps = go cycles [] }

let snapshots t = t.snaps

let cell_of_tokens toks =
  String.concat "," (List.map Lid.Token.to_string toks)

let render t =
  match t.snaps with
  | [] -> ""
  | first :: _ ->
      let node_cols = List.map fst first.node_out in
      let rs_cols = List.map fst first.rs_contents in
      let sink_cols = List.map fst first.sink_got in
      let header =
        ("cycle" :: node_cols) @ rs_cols @ List.map (fun s -> s ^ "<=") sink_cols
      in
      let row snap =
        let node_cell name =
          let toks = List.assoc name snap.Engine.node_out in
          let fired = List.assoc name snap.Engine.node_fired in
          let stopped = List.assoc name snap.Engine.node_stopped in
          Printf.sprintf "%s%s%s"
            (cell_of_tokens (Array.to_list toks))
            (if fired then "*" else "")
            (if stopped then "!" else "")
        in
        let rs_cell name =
          match List.assoc name snap.Engine.rs_contents with
          | [] -> "-"
          | toks -> cell_of_tokens toks
        in
        let sink_cell name =
          Lid.Token.to_string (List.assoc name snap.Engine.sink_got)
        in
        (string_of_int snap.Engine.snap_cycle :: List.map node_cell node_cols)
        @ List.map rs_cell rs_cols
        @ List.map sink_cell sink_cols
      in
      let rows = header :: List.map row t.snaps in
      let n_cols = List.length header in
      let widths = Array.make n_cols 0 in
      List.iter
        (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
        rows;
      let render_row cells =
        String.concat "  "
          (List.mapi
             (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
             cells)
      in
      String.concat "\n" (List.map render_row rows)

let output_row t ~sink =
  List.map (fun s -> List.assoc sink s.Engine.sink_got) t.snaps
