(** Packed skeleton engine: the steady-state measurement hot path.

    {!Engine} is the instrumented reference simulator: per-cycle snapshots,
    monitors, readable signatures.  This module compiles the same network
    once into a flat, preallocated representation — dense node/edge/station
    ids, bit-packed valid/stop/occupancy planes ({!Bitvec.Bitset}), token
    payloads in plain [int array]s — and steps it with no per-cycle
    allocation.  Protocol semantics are cycle-for-cycle identical to
    {!Engine} (asserted by the test suite on random loopy networks, with
    and without fault injection): same firing rule, same stop resolution
    across station-less channels (including {!Engine.Combinational_stop_cycle}),
    same relay-station state machines, same stall attribution.

    Fault hooks ({!Engine.fault_hooks}) are supported — wire values are
    converted to {!Lid.Token.t} only at hook boundaries, so the unhooked
    path stays allocation-free.  Per-cycle monitors and wire-level
    snapshots are {e not} offered here; use {!Engine} when you need them.

    State signatures are interned: {!signature_id} packs the protocol
    state (buffer/station validity planes, half-station stop registers,
    environment phase) into a word vector and maps it to a dense small
    int, so periodicity detection ({!Measure}) hashes and stores ints
    instead of structural values.

    Dynamic-LID channels (latency profiles, retransmitting stations) are
    supported through boxed per-station/per-gate state alongside the
    planes; such networks take a general commit path (still far cheaper
    than {!Engine}) and their extra state is folded into signatures, so
    the lockstep guarantee and periodicity detection carry over. *)

type t

val create : ?flavour:Lid.Protocol.flavour -> Topology.Network.t -> t
(** Default flavour: [Optimized], as {!Engine.create}. *)

val network : t -> Topology.Network.t
val flavour : t -> Lid.Protocol.flavour
val cycle : t -> int

val step : t -> unit
val run : t -> cycles:int -> unit

val reset : t -> unit
(** Back to the initial state (shell buffers valid, stations empty,
    counters zero).  The signature intern table is kept — signatures are
    stable across resets. *)

(** {1 Observation — same meaning as the {!Engine} counterparts} *)

val fired_count : t -> Topology.Network.node_id -> int
val gated_count : t -> Topology.Network.node_id -> int
val starved_count : t -> Topology.Network.node_id -> int
val sink_values : t -> Topology.Network.node_id -> int list
val sink_count : t -> Topology.Network.node_id -> int
val recovery_count : t -> int
val dup_drop_count : t -> int

(** {1 Interned signatures} *)

val signature_id : t -> int
(** Dense id (from 0, first-seen order) of the current protocol-state
    signature.  Two cycles with equal ids evolve identically at protocol
    level.  Ids correspond to {!Engine.signature} strings one-to-one on
    the same network: both encode exactly the buffer validity planes,
    relay-station occupancy, half-station stop registers and environment
    phase. *)

val signature_intern_size : t -> int
val signature_intern_clear : t -> unit
(** As {!Engine.signature_intern_size} / {!Engine.signature_intern_clear}:
    the memory bound used by {!Measure} on aperiodic runs. *)

(** {2 The interning hash itself}

    FNV-1a, folded to OCaml's non-negative int range — the hash behind
    the signature intern table, exposed so other layers (the serve
    daemon's canonical topology hash) can key their caches with the
    same machinery. *)

val fnv1a_fold : int -> int -> int
(** One FNV-1a step: absorb a word into a running hash. *)

val fnv1a_words : int array -> int
val fnv1a_string : string -> int

(** {1 Probe capture}

    The boundary beliefs the runtime monitors ([Fault.Monitor]) consume,
    without the cost of a full {!Engine.snapshot}: per-edge probes, the
    progress flags the deadlock watchdog needs, and nothing else. *)

type probe_view = {
  pv_cycle : int;
      (** the cycle the probes describe (pre-commit, as
          {!Engine.snapshot.snap_cycle}) *)
  pv_probes : Engine.probe array;
      (** per-edge boundary beliefs, indexed by edge id — field for field
          what {!Engine.capture} puts in [chan_probe] *)
  pv_any_fired : bool;  (** some shell or source fired this cycle *)
  pv_sink_valid : bool;  (** some sink consumed a valid token this cycle *)
}

val probe_next : t -> probe_view
(** Resolve the current cycle, capture the probes, then commit the clock
    edge — the packed counterpart of {!Engine.snapshot_next}.  Calling
    {!signature_id} right after gives the post-commit signature, exactly
    what {!Engine.signature} yields after {!Engine.snapshot_next}. *)

(** {1 Fault injection} *)

val set_fault_hooks : t -> Engine.fault_hooks option -> unit
(** Install (or clear) the same hooks {!Engine.set_fault_hooks} takes.
    Hooks survive {!reset}. *)
