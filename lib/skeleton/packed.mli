(** Packed skeleton engine: the steady-state measurement hot path.

    {!Engine} is the instrumented reference simulator: per-cycle snapshots,
    monitors, readable signatures.  This module compiles the same network
    once into a flat, preallocated representation — dense node/edge/station
    ids, bit-packed valid/stop/occupancy planes ({!Bitvec.Bitset}), token
    payloads in plain [int array]s — and steps it with no per-cycle
    allocation.  Protocol semantics are cycle-for-cycle identical to
    {!Engine} (asserted by the test suite on random loopy networks, with
    and without fault injection): same firing rule, same stop resolution
    across station-less channels (including {!Engine.Combinational_stop_cycle}),
    same relay-station state machines, same stall attribution.

    Fault hooks ({!Engine.fault_hooks}) are supported — wire values are
    converted to {!Lid.Token.t} only at hook boundaries, so the unhooked
    path stays allocation-free.  Per-cycle monitors and wire-level
    snapshots are {e not} offered here; use {!Engine} when you need them.

    State signatures are interned: {!signature_id} packs the protocol
    state (buffer/station validity planes, half-station stop registers,
    environment phase) into a word vector and maps it to a dense small
    int, so periodicity detection ({!Measure}) hashes and stores ints
    instead of structural values.

    Dynamic-LID channels (latency profiles, retransmitting stations) are
    supported through boxed per-station/per-gate state alongside the
    planes; such networks take a general commit path (still far cheaper
    than {!Engine}) and their extra state is folded into signatures, so
    the lockstep guarantee and periodicity detection carry over. *)

type t

val create : ?flavour:Lid.Protocol.flavour -> Topology.Network.t -> t
(** Default flavour: [Optimized], as {!Engine.create}. *)

val network : t -> Topology.Network.t
val flavour : t -> Lid.Protocol.flavour
val cycle : t -> int

val step : t -> unit
val run : t -> cycles:int -> unit

val reset : t -> unit
(** Back to the initial state (shell buffers valid, stations empty,
    counters zero).  The signature intern table is kept — signatures are
    stable across resets. *)

(** {1 Observation — same meaning as the {!Engine} counterparts} *)

val fired_count : t -> Topology.Network.node_id -> int
val gated_count : t -> Topology.Network.node_id -> int
val starved_count : t -> Topology.Network.node_id -> int
val sink_values : t -> Topology.Network.node_id -> int list
val sink_count : t -> Topology.Network.node_id -> int
val recovery_count : t -> int
val dup_drop_count : t -> int

(** {1 Interned signatures} *)

val signature_id : t -> int
(** Dense id (from 0, first-seen order) of the current protocol-state
    signature.  Two cycles with equal ids evolve identically at protocol
    level.  Ids correspond to {!Engine.signature} strings one-to-one on
    the same network: both encode exactly the buffer validity planes,
    relay-station occupancy, half-station stop registers and environment
    phase. *)

val signature_intern_size : t -> int
val signature_intern_clear : t -> unit
(** As {!Engine.signature_intern_size} / {!Engine.signature_intern_clear}:
    the memory bound used by {!Measure} on aperiodic runs. *)

(** {2 The interning hash itself}

    FNV-1a, folded to OCaml's non-negative int range — the hash behind
    the signature intern table, exposed so other layers (the serve
    daemon's canonical topology hash) can key their caches with the
    same machinery. *)

val fnv1a_fold : int -> int -> int
(** One FNV-1a step: absorb a word into a running hash. *)

val fnv1a_words : int array -> int
val fnv1a_string : string -> int

val fnv1a_bytes : Bytes.t -> int
(** Fold a buffer that is a whole number of 64-bit words (the signature
    buffers are), one unboxed int64 read at a time. *)

(** {1 Probe capture}

    The boundary beliefs the runtime monitors ([Fault.Monitor]) consume,
    without the cost of a full {!Engine.snapshot}: per-edge probes, the
    progress flags the deadlock watchdog needs, and nothing else. *)

type probe_view = {
  pv_cycle : int;
      (** the cycle the probes describe (pre-commit, as
          {!Engine.snapshot.snap_cycle}) *)
  pv_probes : Engine.probe array;
      (** per-edge boundary beliefs, indexed by edge id — field for field
          what {!Engine.capture} puts in [chan_probe] *)
  pv_any_fired : bool;  (** some shell or source fired this cycle *)
  pv_sink_valid : bool;  (** some sink consumed a valid token this cycle *)
}

val probe_next : t -> probe_view
(** Resolve the current cycle, capture the probes, then commit the clock
    edge — the packed counterpart of {!Engine.snapshot_next}.  Calling
    {!signature_id} right after gives the post-commit signature, exactly
    what {!Engine.signature} yields after {!Engine.snapshot_next}. *)

(** {1 Fault injection} *)

val set_fault_hooks : t -> Engine.fault_hooks option -> unit
(** Install (or clear) the same hooks {!Engine.set_fault_hooks} takes.
    Hooks survive {!reset}. *)

(** {1 Cone of influence}

    The forward-reachable closure of one edge over the compiled CSR:
    every edge a perturbation at the site can ever touch, every node it
    can make fire or stall differently, in a Blarney-style partial
    topological order.  Computed once per (topology, edge) and memoized
    on the engine; {!resume} siblings share the memo.

    Stop wires propagate combinationally {e upstream}, so a forward cone
    is {e not} a sound bound on which elements change within one cycle —
    it is the locality structure the campaign driver uses to group
    faults with overlapping perturbations, and a statistic for the cone
    benchmarks.  Correctness of incremental classification rests on the
    exact convergence test ({!converged}), never on these masks. *)

module Cone : sig
  type c

  val of_edge : t -> Topology.Network.edge_id -> c
  (** Memoized forward cone of an edge.  Raises [Invalid_argument] on an
      out-of-range id. *)

  val site : c -> Topology.Network.edge_id
  val edges : c -> Bitvec.Bitset.t
  (** Edge membership mask, indexed by edge id (includes the site). *)

  val nodes : c -> Bitvec.Bitset.t
  (** Nodes reachable downstream of the site edge. *)

  val order : c -> int array
  (** The cone's edges in partial topological order: Kahn's algorithm
      restricted to the cone with min-id tie-breaking; edges on cycles
      are appended in id order. *)

  val rep : c -> Topology.Network.edge_id
  (** Canonical representative (minimum edge id in the cone) — equal
      reps mean equal-or-overlapping cones, the grouping key the lane
      batcher sorts by. *)

  val size : c -> int
end

(** {1 Snapshots — the substrate of incremental re-simulation}

    [snapshot] captures the registered state (planes, payloads, pearl
    and station state, progress counters); [restore] writes it back.
    The incremental fault classifier records the fault-free run at
    checkpoint cycles, restores to a fault's window start, re-steps the
    perturbed middle, and splices the recorded tail on once {!converged}
    holds. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Raises [Invalid_argument] if the snapshot came from an engine of a
    different shape. *)

val converged : t -> snapshot -> bool
(** Behavioural state equality: true only if the engine and the snapshot
    evolve identically from here on and yield the same monitor, watchdog
    and sink observations.  Dead payloads (validity bit clear) are
    masked; the monotone progress counters (fired/gated/starved totals,
    sink and recovery counts) are excluded — they do not drive evolution
    and are spliced from recorded totals instead. *)

val splice_sinks : t -> at:snapshot -> final:snapshot -> unit
(** Append the sink tokens the recording consumed between [at] and
    [final] onto the live engine's streams — the convergence splice. *)

val snapshot_cycle : snapshot -> int
val snapshot_recoveries : snapshot -> int
val snapshot_sink_count : snapshot -> Topology.Network.node_id -> int

(** {1 Incremental re-elaboration} *)

val resume : t -> edits:(Topology.Network.edge_id * Lid.Latency.profile option) list -> t
(** [resume t ~edits] is an engine for the network [t] simulates with
    the given channels re-profiled ([None] strips a profile), in its
    initial state.  [Network.with_latency] preserves the topology shape,
    so the compiled CSR (offsets, kinds, pearls, patterns, station
    layout) and the cone memo are shared with [t] rather than rebuilt —
    only delay tables, entrance gates, retx initial states and the
    mutable state are re-elaborated.  [t] itself is untouched (sharing
    is read-only), so a cached engine can keep serving its own topology
    while spawning edited variants. *)

(** {1 Read-only CSR views}

    Dense-id accessors over the compiled topology, for static analyses
    that traverse the contract graph ({!Lint.Compose}) in the same
    label-propagation style as the stop-path prover — no simulation
    state is read or written.  Node and edge ids coincide with
    {!Topology.Network} ids. *)

module Csr : sig
  val n_nodes : t -> int
  val n_edges : t -> int
  val is_shell : t -> int -> bool
  val is_source : t -> int -> bool
  val is_sink : t -> int -> bool
  val node_name : t -> int -> string

  val in_degree : t -> int -> int
  val out_degree : t -> int -> int

  val out_edge : t -> int -> int -> int
  (** [out_edge t n k] is the edge id leaving node [n]'s [k]-th output
      port, [0 <= k < out_degree t n]. *)

  val edge_src : t -> int -> int
  (** Producer node of an edge (by binary search over the CSR offsets). *)

  val edge_dst : t -> int -> int

  val stations : t -> int -> Lid.Relay_station.kind list
  (** Station kinds of an edge's chain, producer-to-consumer order. *)

  val gate_table : t -> int -> int array option
  (** The entrance gate's compiled delay schedule, when the edge carries
      a latency profile with no retransmitting station in its chain. *)
end
