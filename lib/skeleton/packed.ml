module Token = Lid.Token
module Net = Topology.Network
module RS = Lid.Relay_station
module Bitset = Bitvec.Bitset

(* Raw bit operations over a plane's backing buffer ([Bitset.bytes]).
   This compiler has no cross-module inlining, so every [Bitset.get] in the
   hot loops would cost a call (~2ns) per wire read; these same-module
   twins inline (the library compiles with [-inline 200]).  They are
   byte-granular on purpose: without flambda an int64-word read would box
   per wire access, while [i lsr 3] / [i land 7] over characters compile
   to a shift and a mask.  The whole-word (unboxed int64) view of the same
   buffers is only taken on batch paths (signatures, set algebra). *)
let bget (w : Bytes.t) i =
  Char.code (Bytes.unsafe_get w (i lsr 3)) lsr (i land 7) land 1 = 1

let bset (w : Bytes.t) i =
  let k = i lsr 3 in
  Bytes.unsafe_set w k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get w k) lor (1 lsl (i land 7))))

let bclr (w : Bytes.t) i =
  let k = i lsr 3 in
  Bytes.unsafe_set w k
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get w k) land lnot (1 lsl (i land 7))))

let bassign w i b = if b then bset w i else bclr w i

(* Node kind tags. *)
let k_shell = 0
let k_source = 1
let k_sink = 2

(* FNV-1a over the signature words: the polymorphic [Hashtbl.hash] only
   inspects a bounded prefix, which degenerates on wide networks whose
   signatures differ late in the word vector.  The fold is exposed so
   other layers (the serve daemon's canonical topology hash) key their
   caches with the same machinery. *)
let fnv1a_basis = 0x811c9dc5
let fnv1a_fold h w = (h lxor w) * 0x01000193 land max_int

let fnv1a_words a = Array.fold_left fnv1a_fold fnv1a_basis a

let fnv1a_string s =
  let h = ref fnv1a_basis in
  String.iter (fun c -> h := fnv1a_fold !h (Char.code c)) s;
  !h

(* Signature buffers are whole numbers of 64-bit words (the [Bitset]
   backing-store invariant carries over), so hash them one unboxed int64
   read at a time. *)
let fnv1a_bytes b =
  let h = ref fnv1a_basis in
  for w = 0 to (Bytes.length b lsr 3) - 1 do
    h := fnv1a_fold !h (Int64.to_int (Bytes.get_int64_ne b (w lsl 3)))
  done;
  !h

module Sig_key = struct
  type t = Bytes.t

  let equal = Bytes.equal
  let hash = fnv1a_bytes
end

module Sig_tbl = Hashtbl.Make (Sig_key)

(* Entrance gate of a variable-latency channel (no retransmitting station
   in the chain) — same semantics as the typed engine's gate. *)
type pgate = {
  pg_table : int array;
  mutable pg_v : bool;
  mutable pg_d : int;
  mutable pg_timer : int;
  mutable pg_count : int;
}

(* Forward cone of influence of one edge: everything a perturbation at
   that edge can ever reach.  Computed once per (topology, edge) and
   memoized on the engine — see the [Cone] module below. *)
type cone = {
  cn_site : int;
  cn_edges : Bitset.t;
  cn_nodes : Bitset.t;
  cn_order : int array;
  cn_rep : int;
}

type t = {
  net : Net.t;
  flavour : Lid.Protocol.flavour;
  optimized : bool;
  env_period : int;
  (* --- compiled topology (immutable) --- *)
  n_nodes : int;
  n_edges : int;
  kind : int array; (* node -> k_shell / k_source / k_sink *)
  names : string array;
  pearls : Lid.Pearl.t option array;
  pat : bool array array; (* node -> activity word (sources/sinks), [||] else *)
  src_start : int array;
  in_off : int array; (* node -> offset into in_last_seg (n_nodes + 1) *)
  in_last_seg : int array; (* flat: consumer-side segment index per in port *)
  out_off : int array; (* node -> offset into out slots (n_nodes + 1) *)
  out_edge : int array; (* flat: edge id per out port *)
  e_src_slot : int array; (* edge -> out slot of its producer port *)
  e_dst_node : int array;
  st_off : int array; (* edge -> offset into station arrays (n_edges + 1) *)
  st_full : Bitset.t; (* station -> is a full station *)
  st_retx : Bitset.t; (* station -> is a retransmitting station *)
  seg_off : int array; (* edge -> offset into segment arrays (n_edges + 1) *)
  (* --- dynamic-LID channels (boxed state; only touched when [has_dyn]) --- *)
  has_dyn : bool;
  retx_st : Lid.Relay_station.state option array; (* per station, retx only *)
  retx_init : Lid.Relay_station.state option array; (* pristine, for reset *)
  gates : pgate option array; (* per edge *)
  (* --- registered state --- *)
  out_valid : Bitset.t; (* shell output buffers and source buffers *)
  out_val : int array;
  pearl_state : int array array; (* node -> pearl state ([||] for non-shells) *)
  st_v0 : Bitset.t; (* full: main valid; half: hold valid *)
  st_v1 : Bitset.t; (* full: aux valid;  half: sreg *)
  st_d0 : int array;
  st_d1 : int array;
  src_next : int array;
  fired : int array;
  gated : int array;
  starved : int array;
  snk_count : int array;
  snk_vals : int list array; (* consumed, reversed *)
  mutable cycle : int;
  mutable hooks : Engine.fault_hooks option;
  (* --- per-cycle scratch --- *)
  seg_valid : Bitset.t; (* forward wire per channel segment *)
  seg_val : int array;
  fire : Bytes.t; (* 0 unknown, 1 in progress, 2 no, 3 yes *)
  stop_known : Bytes.t;
  in_scratch : int array array; (* shell -> reused pearl-input buffer *)
  (* cached backing buffers of the planes above, addressed via [bget] &c. *)
  w_out_valid : Bytes.t;
  w_st_full : Bytes.t;
  w_st_retx : Bytes.t;
  w_st_v0 : Bytes.t;
  w_st_v1 : Bytes.t;
  w_seg_valid : Bytes.t;
  w_out_stop : Bytes.t;
  w_st_stop_in : Bytes.t;
  (* --- signature interning --- *)
  sig_bytes : Bytes.t;
  sig_intern : int Sig_tbl.t;
  mutable sig_next : int;
  (* --- cone-of-influence memo (shared across [resume] siblings) --- *)
  cone_memo : cone option array;
}

let pattern_word p =
  let n = Topology.Pattern.period p in
  Array.init n (fun cycle -> Topology.Pattern.active p ~cycle)

(* Boxed initial states for retransmitting stations; the channel's
   latency profile drives the FIRST retx station of its chain (same
   elaboration as [Engine.chain_states]).  Top-level because [resume]
   re-runs it against an edited network with the same station layout. *)
let initial_retx_st net st_off n_st =
  let a = Array.make n_st None in
  List.iteri
    (fun i (e : Net.edge) ->
      let table = Net.delay_table net i in
      let used = ref false in
      List.iteri
        (fun j k ->
          match k with
          | RS.Retx _ ->
              let st =
                if not !used then begin
                  used := true;
                  match table with
                  | Some table -> RS.initial ~table k
                  | None -> RS.initial k
                end
                else RS.initial k
              in
              a.(st_off.(i) + j) <- Some st
          | _ -> ())
        e.stations)
    (Net.edges net);
  a

let initial_gates net n_edges =
  Array.init n_edges (fun e ->
      if Net.edge_is_gated net e then
        match Net.delay_table net e with
        | Some pg_table ->
            Some { pg_table; pg_v = false; pg_d = 0; pg_timer = 0; pg_count = 0 }
        | None -> None
      else None)

let create ?(flavour = Lid.Protocol.Optimized) net =
  let nodes = Array.of_list (Net.nodes net) in
  let edges = Array.of_list (Net.edges net) in
  let n_nodes = Array.length nodes and n_edges = Array.length edges in
  let kind =
    Array.map
      (fun (n : Net.node) ->
        match n.kind with
        | Net.Shell _ -> k_shell
        | Net.Source _ -> k_source
        | Net.Sink _ -> k_sink)
      nodes
  in
  let offsets count =
    let off = Array.make (n_nodes + 1) 0 in
    for i = 0 to n_nodes - 1 do
      off.(i + 1) <- off.(i) + count i
    done;
    off
  in
  let in_off = offsets (fun i -> Array.length (Net.in_edges net i)) in
  let out_off = offsets (fun i -> Array.length (Net.out_edges net i)) in
  let st_off = Array.make (n_edges + 1) 0 in
  let seg_off = Array.make (n_edges + 1) 0 in
  Array.iteri
    (fun i (e : Net.edge) ->
      let m = List.length e.stations in
      st_off.(i + 1) <- st_off.(i) + m;
      seg_off.(i + 1) <- seg_off.(i) + m + 1)
    edges;
  let n_st = st_off.(n_edges) and n_seg = seg_off.(n_edges) in
  let st_full = Bitset.create n_st in
  let st_retx = Bitset.create n_st in
  Array.iteri
    (fun i (e : Net.edge) ->
      List.iteri
        (fun j k ->
          match k with
          | RS.Full -> Bitset.set st_full (st_off.(i) + j)
          | RS.Retx _ -> Bitset.set st_retx (st_off.(i) + j)
          | RS.Half -> ())
        e.stations)
    edges;
  let in_last_seg = Array.make in_off.(n_nodes) 0 in
  let out_edge = Array.make out_off.(n_nodes) 0 in
  for i = 0 to n_nodes - 1 do
    Array.iteri
      (fun p (e : Net.edge) -> in_last_seg.(in_off.(i) + p) <- seg_off.(e.id + 1) - 1)
      (Net.in_edges net i);
    Array.iteri
      (fun p (e : Net.edge) -> out_edge.(out_off.(i) + p) <- e.id)
      (Net.out_edges net i)
  done;
  let pearls =
    Array.map
      (fun (n : Net.node) -> match n.kind with Net.Shell p -> Some p | _ -> None)
      nodes
  in
  Array.iteri
    (fun i p ->
      match p with
      | None -> ()
      | Some (p : Lid.Pearl.t) ->
          let n_in = in_off.(i + 1) - in_off.(i)
          and n_out = out_off.(i + 1) - out_off.(i) in
          if p.n_inputs <> n_in || p.n_outputs <> n_out then
            invalid_arg
              (Printf.sprintf
                 "Packed.create: pearl %s wants %d->%d but node %S has %d->%d"
                 p.name p.n_inputs p.n_outputs nodes.(i).name n_in n_out))
    pearls;
  let out_valid = Bitset.create out_off.(n_nodes) in
  let st_v0 = Bitset.create n_st and st_v1 = Bitset.create n_st in
  let seg_valid = Bitset.create n_seg in
  let out_stop = Bitset.create out_off.(n_nodes) in
  let st_stop_in = Bitset.create n_st in
  let retx_init = initial_retx_st net st_off n_st in
  let retx_st = Array.copy retx_init in
  let gates = initial_gates net n_edges in
  let n_retx = Array.fold_left (fun n s -> if s = None then n else n + 1) 0 retx_st in
  let n_gates = Array.fold_left (fun n g -> if g = None then n else n + 1) 0 gates in
  let t =
    {
      net;
      flavour;
      optimized = (flavour = Lid.Protocol.Optimized);
      env_period = Net.env_period net;
      n_nodes;
      n_edges;
      kind;
      names = Array.map (fun (n : Net.node) -> n.name) nodes;
      pearls;
      pat =
        Array.map
          (fun (n : Net.node) ->
            match n.kind with
            | Net.Source { pattern; _ } | Net.Sink { pattern } ->
                pattern_word pattern
            | Net.Shell _ -> [||])
          nodes;
      src_start =
        Array.map
          (fun (n : Net.node) ->
            match n.kind with Net.Source { start; _ } -> start | _ -> 0)
          nodes;
      in_off;
      in_last_seg;
      out_off;
      out_edge;
      e_src_slot =
        Array.map
          (fun (e : Net.edge) -> out_off.(e.src.node) + e.src.port)
          edges;
      e_dst_node = Array.map (fun (e : Net.edge) -> e.dst.node) edges;
      st_off;
      st_full;
      st_retx;
      seg_off;
      has_dyn = Net.has_dynamics net;
      retx_st;
      retx_init;
      gates;
      out_valid;
      out_val = Array.make out_off.(n_nodes) 0;
      pearl_state = Array.make n_nodes [||];
      st_v0;
      st_v1;
      st_d0 = Array.make n_st 0;
      st_d1 = Array.make n_st 0;
      src_next = Array.make n_nodes 0;
      fired = Array.make n_nodes 0;
      gated = Array.make n_nodes 0;
      starved = Array.make n_nodes 0;
      snk_count = Array.make n_nodes 0;
      snk_vals = Array.make n_nodes [];
      cycle = 0;
      hooks = None;
      seg_valid;
      seg_val = Array.make n_seg 0;
      fire = Bytes.create n_nodes;
      stop_known = Bytes.create n_nodes;
      in_scratch =
        Array.init n_nodes (fun i ->
            if kind.(i) = k_shell then
              Array.make (in_off.(i + 1) - in_off.(i)) 0
            else [||]);
      w_out_valid = Bitset.bytes out_valid;
      w_st_full = Bitset.bytes st_full;
      w_st_retx = Bitset.bytes st_retx;
      w_st_v0 = Bitset.bytes st_v0;
      w_st_v1 = Bitset.bytes st_v1;
      w_seg_valid = Bitset.bytes seg_valid;
      w_out_stop = Bitset.bytes out_stop;
      w_st_stop_in = Bitset.bytes st_stop_in;
      sig_bytes =
        Bytes.make
          (Bitset.n_bytes out_valid
          + (2 * Bitset.n_bytes st_full)
          + (8 * (1 + n_retx + n_gates)))
          '\000';
      sig_intern = Sig_tbl.create 1024;
      sig_next = 0;
      cone_memo = Array.make n_edges None;
    }
  in
  (* initial state: shell buffers valid with the pearl's initial output,
     source buffers valid with [start], stations empty *)
  let init t =
    Bitset.fill_false t.st_v0;
    Bitset.fill_false t.st_v1;
    Array.fill t.st_d0 0 n_st 0;
    Array.fill t.st_d1 0 n_st 0;
    for i = 0 to n_nodes - 1 do
      t.fired.(i) <- 0;
      t.gated.(i) <- 0;
      t.starved.(i) <- 0;
      t.snk_count.(i) <- 0;
      t.snk_vals.(i) <- [];
      (match t.pearls.(i) with
      | Some p ->
          t.pearl_state.(i) <- Array.copy p.Lid.Pearl.init_state;
          Array.iteri
            (fun o v ->
              Bitset.set t.out_valid (out_off.(i) + o);
              t.out_val.(out_off.(i) + o) <- v)
            p.Lid.Pearl.initial_output
      | None -> ());
      if t.kind.(i) = k_source then begin
        let slot = out_off.(i) in
        Bitset.set t.out_valid slot;
        t.out_val.(slot) <- t.src_start.(i);
        t.src_next.(i) <- t.src_start.(i) + 1
      end
    done;
    t.cycle <- 0
  in
  init t;
  t

let network t = t.net
let flavour t = t.flavour
let cycle t = t.cycle
let set_fault_hooks t hooks = t.hooks <- hooks

let reset t =
  Array.blit t.retx_init 0 t.retx_st 0 (Array.length t.retx_st);
  Array.iter
    (function
      | Some g ->
          g.pg_v <- false;
          g.pg_d <- 0;
          g.pg_timer <- 0;
          g.pg_count <- 0
      | None -> ())
    t.gates;
  Bitset.fill_false t.out_valid;
  Array.fill t.out_val 0 (Array.length t.out_val) 0;
  Bitset.fill_false t.st_v0;
  Bitset.fill_false t.st_v1;
  Array.fill t.st_d0 0 (Array.length t.st_d0) 0;
  Array.fill t.st_d1 0 (Array.length t.st_d1) 0;
  for i = 0 to t.n_nodes - 1 do
    t.fired.(i) <- 0;
    t.gated.(i) <- 0;
    t.starved.(i) <- 0;
    t.snk_count.(i) <- 0;
    t.snk_vals.(i) <- [];
    (match t.pearls.(i) with
    | Some p ->
        t.pearl_state.(i) <- Array.copy p.Lid.Pearl.init_state;
        Array.iteri
          (fun o v ->
            Bitset.set t.out_valid (t.out_off.(i) + o);
            t.out_val.(t.out_off.(i) + o) <- v)
          p.Lid.Pearl.initial_output
    | None -> ());
    if t.kind.(i) = k_source then begin
      let slot = t.out_off.(i) in
      Bitset.set t.out_valid slot;
      t.out_val.(slot) <- t.src_start.(i);
      t.src_next.(i) <- t.src_start.(i) + 1
    end
  done;
  t.cycle <- 0

(* ------------------------------------------------------------------ *)
(* Per-cycle wire resolution.                                          *)

let pat_active t node =
  let p = Array.unsafe_get t.pat node in
  let n = Array.length p in
  (* period-1 patterns ([always]/[never]) are the common case; skip the
     integer division for them *)
  if n = 1 then Array.unsafe_get p 0 else Array.unsafe_get p (t.cycle mod n)

let token_of v d = if v then Token.valid d else Token.void
let of_token tok = match tok with Token.Valid d -> (true, d) | Token.Void -> (false, 0)

(* What station [j] drives on its output this cycle, given the (already
   resolved) incoming segment.  Mirrors [Relay_station.present]. *)
let station_present t j ~in_v ~in_d =
  if Bitset.get t.st_retx j then
    (* Moore: the boxed receiver's output register *)
    match t.retx_st.(j) with
    | Some st -> of_token (RS.present st ~input:Token.void)
    | None -> assert false
  else if Bitset.get t.st_full j then (Bitset.get t.st_v0 j, t.st_d0.(j))
  else if Bitset.get t.st_v0 j then (true, t.st_d0.(j))
  else if Bitset.get t.st_v1 j then (false, 0)
  else (in_v, in_d)

(* What feeds the first segment of edge [e]: the producer's output buffer,
   or the channel's entrance gate. *)
let head_token t e =
  match t.gates.(e) with
  | Some g -> if g.pg_timer = 0 then (g.pg_v, g.pg_d) else (false, 0)
  | None ->
      let slot = t.e_src_slot.(e) in
      (Bitset.get t.out_valid slot, t.out_val.(slot))

let forward t =
  match t.hooks with
  | None when not t.has_dyn ->
      (* allocation-free: each segment is derived from the one before it,
         read back from the planes just written *)
      let wsv = t.w_seg_valid
      and wov = t.w_out_valid
      and wfull = t.w_st_full
      and wv0 = t.w_st_v0
      and wv1 = t.w_st_v1 in
      let seg_off = t.seg_off
      and st_off = t.st_off
      and e_src_slot = t.e_src_slot
      and out_val = t.out_val
      and seg_val = t.seg_val
      and st_d0 = t.st_d0 in
      for e = 0 to t.n_edges - 1 do
        let k0 = Array.unsafe_get seg_off e in
        let slot = Array.unsafe_get e_src_slot e in
        bassign wsv k0 (bget wov slot);
        Array.unsafe_set seg_val k0 (Array.unsafe_get out_val slot);
        let s0 = Array.unsafe_get st_off e in
        for j = s0 to Array.unsafe_get st_off (e + 1) - 1 do
          let k = k0 + (j - s0) + 1 in
          if bget wfull j then begin
            (* Moore: drives main regardless of the incoming segment *)
            bassign wsv k (bget wv0 j);
            Array.unsafe_set seg_val k (Array.unsafe_get st_d0 j)
          end
          else if bget wv0 j then begin
            (* half, holding: drives the held datum *)
            bset wsv k;
            Array.unsafe_set seg_val k (Array.unsafe_get st_d0 j)
          end
          else if bget wv1 j then
            (* half, sreg set: pass-through suppressed *)
            bclr wsv k
          else begin
            (* half, empty: combinational pass-through *)
            bassign wsv k (bget wsv (k - 1));
            Array.unsafe_set seg_val k (Array.unsafe_get seg_val (k - 1))
          end
        done
      done
  | hooks ->
      let fwd =
        match hooks with
        | None -> fun ~edge:_ ~seg:_ tok -> tok
        | Some h -> fun ~edge ~seg tok -> h.fh_forward ~cycle:t.cycle ~edge ~seg tok
      in
      for e = 0 to t.n_edges - 1 do
        let k0 = t.seg_off.(e) in
        let hv, hd = head_token t e in
        let tok0 = fwd ~edge:e ~seg:0 (token_of hv hd) in
        let v, d = of_token tok0 in
        Bitset.assign t.seg_valid k0 v;
        t.seg_val.(k0) <- d;
        let cv = ref v and cd = ref d in
        for j = t.st_off.(e) to t.st_off.(e + 1) - 1 do
          let pv, pd = station_present t j ~in_v:!cv ~in_d:!cd in
          let seg = j - t.st_off.(e) + 1 in
          let tok = fwd ~edge:e ~seg (token_of pv pd) in
          let v', d' = of_token tok in
          let k = k0 + seg in
          Bitset.assign t.seg_valid k v';
          t.seg_val.(k) <- d';
          cv := v';
          cd := d'
        done
      done

let hook_stop t ~edge ~boundary raw =
  match t.hooks with
  | None -> raw
  | Some h -> h.fh_stop ~cycle:t.cycle ~edge ~boundary raw

(* Mirrors [Relay_station.stop_upstream]. *)
let station_stop_upstream t j =
  if bget t.w_st_retx j then
    match t.retx_st.(j) with
    | Some st -> RS.stop_upstream st
    | None -> assert false
  else if bget t.w_st_full j then bget t.w_st_v1 j
  else bget t.w_st_v0 j || bget t.w_st_v1 j

(* Recursive fire/stop resolution — the same fixpoint [Engine.fire_of]
   computes, on dense ids. *)
let rec fire_of t node =
  match Bytes.unsafe_get t.fire node with
  | '\003' -> true
  | '\002' -> false
  | '\001' ->
      raise
        (Engine.Combinational_stop_cycle
           (Printf.sprintf
              "combinational stop cycle through %S: a loop of station-less \
               channels between shells"
              t.names.(node)))
  | _ ->
      Bytes.unsafe_set t.fire node '\001';
      ensure_out_stops t node;
      let f =
        let knd = Array.unsafe_get t.kind node in
        if knd = k_shell then begin
          (* all inputs valid ... *)
          let wsv = t.w_seg_valid in
          let all_valid = ref true in
          for p = Array.unsafe_get t.in_off node
              to Array.unsafe_get t.in_off (node + 1) - 1 do
            if not (bget wsv (Array.unsafe_get t.in_last_seg p)) then
              all_valid := false
          done;
          (* ... and no relevant stop on the outputs *)
          let wos = t.w_out_stop and wov = t.w_out_valid in
          let gated = ref false in
          for p = Array.unsafe_get t.out_off node
              to Array.unsafe_get t.out_off (node + 1) - 1 do
            if bget wos p && ((not t.optimized) || bget wov p) then
              gated := true
          done;
          !all_valid && not !gated
        end
        else if knd = k_source then begin
          let slot = Array.unsafe_get t.out_off node in
          let gated =
            bget t.w_out_stop slot
            && ((not t.optimized) || bget t.w_out_valid slot)
          in
          pat_active t node && not gated
        end
        else false
      in
      Bytes.unsafe_set t.fire node (if f then '\003' else '\002');
      f

and ensure_out_stops t node =
  if Bytes.unsafe_get t.stop_known node = '\000' then begin
    Bytes.unsafe_set t.stop_known node '\001';
    match t.hooks with
    | None when not t.has_dyn ->
        (* unhooked fast path: an edge with stations answers from its first
           station's planes directly (no recursion possible there) *)
        let wos = t.w_out_stop
        and wfull = t.w_st_full
        and wv0 = t.w_st_v0
        and wv1 = t.w_st_v1 in
        for p = Array.unsafe_get t.out_off node
            to Array.unsafe_get t.out_off (node + 1) - 1 do
          let e = Array.unsafe_get t.out_edge p in
          let s0 = Array.unsafe_get t.st_off e in
          let stop =
            if Array.unsafe_get t.st_off (e + 1) > s0 then
              if bget wfull s0 then bget wv1 s0
              else bget wv0 s0 || bget wv1 s0
            else dst_stop t e
          in
          bassign wos p stop
        done
    | _ ->
        for p = Array.unsafe_get t.out_off node
            to Array.unsafe_get t.out_off (node + 1) - 1 do
          bassign t.w_out_stop p
            (consumer_stop t (Array.unsafe_get t.out_edge p))
        done
  end

and consumer_stop t e =
  let raw =
    match Array.unsafe_get t.gates e with
    | Some g -> g.pg_v && (g.pg_timer > 0 || chain_head_stop t e)
    | None -> chain_head_stop t e
  in
  hook_stop t ~edge:e ~boundary:0 raw

(* The stop facing whatever feeds the relay chain (the producer, or the
   channel's entrance gate). *)
and chain_head_stop t e =
  let s0 = Array.unsafe_get t.st_off e in
  if Array.unsafe_get t.st_off (e + 1) > s0 then station_stop_upstream t s0
  else dst_stop t e

and dst_stop t e =
  let dn = Array.unsafe_get t.e_dst_node e in
  if Array.unsafe_get t.kind dn = k_sink then pat_active t dn
  else if fire_of t dn then false
  else if not t.optimized then true
  else bget t.w_seg_valid (Array.unsafe_get t.seg_off (e + 1) - 1)

let resolve t =
  Bytes.fill t.fire 0 t.n_nodes '\000';
  Bytes.fill t.stop_known 0 t.n_nodes '\000';
  forward t;
  for node = 0 to t.n_nodes - 1 do
    if t.kind.(node) <> k_sink then ignore (fire_of t node)
  done

(* ------------------------------------------------------------------ *)
(* Fault-hook materialization of station states.

   [fh_station] transforms a typed [Relay_station.state]; the packed
   arrays are the only representation we keep, so under injection we
   rebuild the state through the station's own public step function,
   hand it to the hook, and read the result back.  Only runs when hooks
   are installed. *)

let state_of_packed t j =
  let v0 = Bitset.get t.st_v0 j
  and v1 = Bitset.get t.st_v1 j
  and d0 = t.st_d0.(j)
  and d1 = t.st_d1.(j) in
  if Bitset.get t.st_retx j then
    match t.retx_st.(j) with Some st -> st | None -> assert false
  else if Bitset.get t.st_full j then begin
    let s = RS.initial RS.Full in
    let s =
      if v0 then RS.step s ~input:(Token.valid d0) ~stop_in:false else s
    in
    if v1 then RS.step s ~input:(Token.valid d1) ~stop_in:true else s
  end
  else
    let s = RS.initial RS.Half in
    match (v0, v1) with
    | false, false -> s
    | true, false ->
        RS.step ~flavour:Lid.Protocol.Optimized s ~input:(Token.valid d0)
          ~stop_in:true
    | true, true ->
        RS.step ~flavour:Lid.Protocol.Original s ~input:(Token.valid d0)
          ~stop_in:true
    | false, true ->
        RS.step ~flavour:Lid.Protocol.Original s ~input:Token.void ~stop_in:true

let packed_of_state t j s =
  if Bitset.get t.st_retx j then t.retx_st.(j) <- Some s
  else if Bitset.get t.st_full j then begin
    let occ = RS.occupancy s in
    Bitset.assign t.st_v0 j (occ >= 1);
    Bitset.assign t.st_v1 j (occ = 2);
    match RS.tokens s with
    | [] -> ()
    | [ m ] -> t.st_d0.(j) <- Token.value m
    | m :: a :: _ ->
        t.st_d0.(j) <- Token.value m;
        t.st_d1.(j) <- Token.value a
  end
  else begin
    Bitset.assign t.st_v0 j (RS.occupancy s = 1);
    Bitset.assign t.st_v1 j (RS.sreg s);
    match RS.tokens s with [] -> () | h :: _ -> t.st_d0.(j) <- Token.value h
  end

(* ------------------------------------------------------------------ *)
(* Clock edge.                                                         *)

(* Unhooked fast path: one upstream walk per chain.  [stop_in] of station
   [j] is decided by the pre-step state of station [j+1], so stepping the
   chain from the consumer end lets each station's pre-step state be read
   once — it serves as its own transition input and as the next (upstream)
   station's stop — with no [st_stop_in] scratch pass. *)
let commit_stations_fast t =
  let wfull = t.w_st_full
  and wv0 = t.w_st_v0
  and wv1 = t.w_st_v1
  and wsv = t.w_seg_valid in
  let st_off = t.st_off
  and st_d0 = t.st_d0
  and st_d1 = t.st_d1
  and seg_val = t.seg_val in
  for e = 0 to t.n_edges - 1 do
    let s0 = Array.unsafe_get st_off e
    and s1 = Array.unsafe_get st_off (e + 1) in
    if s1 > s0 then begin
      let k0 = Array.unsafe_get t.seg_off e in
      let stop_in = ref (dst_stop t e) in
      for j = s1 - 1 downto s0 do
        let full = bget wfull j in
        let v0 = bget wv0 j and v1 = bget wv1 j in
        let upstream_stop = if full then v1 else v0 || v1 in
        let k = k0 + (j - s0) in
        let in_v = bget wsv k and in_d = Array.unsafe_get seg_val k in
        let stop = !stop_in in
        if full then begin
          (* mirrors [Relay_station.step] for full stations *)
          let take = in_v && not v1 in
          let consumed = v0 && not stop in
          if not v0 then begin
            bassign wv0 j take;
            if take then Array.unsafe_set st_d0 j in_d;
            bclr wv1 j
          end
          else if consumed && v1 then begin
            Array.unsafe_set st_d0 j (Array.unsafe_get st_d1 j);
            bclr wv1 j
          end
          else if consumed (* aux void *) then begin
            bassign wv0 j take;
            if take then Array.unsafe_set st_d0 j in_d;
            bclr wv1 j
          end
          else if not v1 (* held, aux free *) then begin
            bassign wv1 j take;
            if take then Array.unsafe_set st_d1 j in_d
          end
          (* held, aux occupied: unchanged *)
        end
        else begin
          (* mirrors [Relay_station.step] for half stations *)
          let sreg' = (not t.optimized) && stop in
          if v0 then begin
            if not stop then bclr wv0 j
          end
          else if (not v1) && in_v && stop then begin
            bset wv0 j;
            Array.unsafe_set st_d0 j in_d
          end
          else bclr wv0 j;
          bassign wv1 j sreg'
        end;
        stop_in := upstream_stop
      done
    end
  done

(* Commit one entrance gate; all reads are pre-step state (the node
   commit loop has not touched the producer's buffer yet). *)
let commit_gate t e g =
  let slot = t.e_src_slot.(e) in
  let in_v = Bitset.get t.out_valid slot in
  let was_valid = g.pg_v in
  let departs = was_valid && g.pg_timer = 0 && not (chain_head_stop t e) in
  let accept = in_v && ((not was_valid) || departs) in
  if accept then begin
    g.pg_v <- true;
    g.pg_d <- t.out_val.(slot);
    g.pg_timer <- g.pg_table.(g.pg_count);
    g.pg_count <- (g.pg_count + 1) mod Array.length g.pg_table
  end
  else if departs then g.pg_v <- false
  else if was_valid && g.pg_timer > 0 then g.pg_timer <- g.pg_timer - 1

(* General commit: taken under fault hooks or channel dynamics. *)
let commit_stations_dyn t =
  let wfull = t.w_st_full
  and wretx = t.w_st_retx
  and wv0 = t.w_st_v0
  and wv1 = t.w_st_v1
  and wsv = t.w_seg_valid
  and wsi = t.w_st_stop_in in
  let st_off = t.st_off
  and st_d0 = t.st_d0
  and st_d1 = t.st_d1
  and seg_val = t.seg_val in
  for e = 0 to t.n_edges - 1 do
    (match Array.unsafe_get t.gates e with
    | Some g -> commit_gate t e g
    | None -> ());
    let s0 = Array.unsafe_get st_off e
    and s1 = Array.unsafe_get st_off (e + 1) in
    if s1 > s0 then begin
      (* stops observed this cycle, from pre-step state of the chain *)
      for j = s0 to s1 - 1 do
        let raw =
          if j = s1 - 1 then dst_stop t e else station_stop_upstream t (j + 1)
        in
        bassign wsi j (hook_stop t ~edge:e ~boundary:(j - s0 + 1) raw)
      done;
      let k0 = Array.unsafe_get t.seg_off e in
      for j = s0 to s1 - 1 do
        let k = k0 + (j - s0) in
        let in_v = bget wsv k and in_d = Array.unsafe_get seg_val k in
        let stop_in = bget wsi j in
        if bget wretx j then begin
          let st =
            match t.retx_st.(j) with Some s -> s | None -> assert false
          in
          let link =
            match t.hooks with
            | None -> RS.Link_ok
            | Some h -> h.fh_link ~cycle:t.cycle ~edge:e ~station:(j - s0)
          in
          t.retx_st.(j) <-
            Some
              (RS.step ~flavour:t.flavour ~link st ~input:(token_of in_v in_d)
                 ~stop_in)
        end
        else if bget wfull j then begin
          (* mirrors [Relay_station.step] for full stations *)
          let main_v = bget wv0 j and aux_v = bget wv1 j in
          let take = in_v && not aux_v in
          let consumed = main_v && not stop_in in
          if not main_v then begin
            bassign wv0 j take;
            if take then Array.unsafe_set st_d0 j in_d;
            bclr wv1 j
          end
          else if consumed && aux_v then begin
            Array.unsafe_set st_d0 j (Array.unsafe_get st_d1 j);
            bclr wv1 j
          end
          else if consumed (* aux void *) then begin
            bassign wv0 j take;
            if take then Array.unsafe_set st_d0 j in_d;
            bclr wv1 j
          end
          else if not aux_v (* held, aux free *) then begin
            bassign wv1 j take;
            if take then Array.unsafe_set st_d1 j in_d
          end
          (* held, aux occupied: unchanged *)
        end
        else begin
          (* mirrors [Relay_station.step] for half stations *)
          let hold_v = bget wv0 j and sreg = bget wv1 j in
          let sreg' = (not t.optimized) && stop_in in
          if hold_v then begin
            if not stop_in then bclr wv0 j
          end
          else if (not sreg) && in_v && stop_in then begin
            bset wv0 j;
            Array.unsafe_set st_d0 j in_d
          end
          else bclr wv0 j;
          bassign wv1 j sreg'
        end
      done;
      match t.hooks with
      | None -> ()
      | Some h ->
          for j = s0 to s1 - 1 do
            let s' =
              h.fh_station ~cycle:t.cycle ~edge:e ~station:(j - s0)
                (state_of_packed t j)
            in
            packed_of_state t j s'
          done
    end
  done

let commit_stations t =
  match t.hooks with
  | None when not t.has_dyn -> commit_stations_fast t
  | _ -> commit_stations_dyn t

let commit t =
  commit_stations t;
  let wov = t.w_out_valid and wos = t.w_out_stop and wsv = t.w_seg_valid in
  let out_off = t.out_off
  and in_off = t.in_off
  and in_last_seg = t.in_last_seg
  and out_val = t.out_val
  and seg_val = t.seg_val in
  for node = 0 to t.n_nodes - 1 do
    let knd = Array.unsafe_get t.kind node in
    if knd = k_shell then begin
      let o0 = Array.unsafe_get out_off node
      and o1 = Array.unsafe_get out_off (node + 1) in
      (* every non-sink was resolved in [resolve]; read the memo directly *)
      if Bytes.unsafe_get t.fire node = '\003' then begin
        t.fired.(node) <- t.fired.(node) + 1;
        let p =
          match t.pearls.(node) with Some p -> p | None -> assert false
        in
        (* refill the preallocated input buffer: the per-fire [Array.init]
           (closure + array per shell per cycle) dominated the GC bill *)
        let inputs = Array.unsafe_get t.in_scratch node in
        let i0 = Array.unsafe_get in_off node in
        for i = 0 to Array.length inputs - 1 do
          Array.unsafe_set inputs i
            (Array.unsafe_get seg_val (Array.unsafe_get in_last_seg (i0 + i)))
        done;
        (* arity was validated in [create]; call the pearl directly *)
        let state', outputs = p.Lid.Pearl.f t.pearl_state.(node) inputs in
        if Array.length outputs <> o1 - o0 then
          invalid_arg
            (Printf.sprintf "Pearl.apply %s: output arity" p.Lid.Pearl.name);
        t.pearl_state.(node) <- state';
        for o = 0 to o1 - o0 - 1 do
          bset wov (o0 + o);
          Array.unsafe_set out_val (o0 + o) (Array.unsafe_get outputs o)
        done
      end
      else begin
        (* attribute the lost cycle: back-pressure beats starvation *)
        let stopped = ref false in
        for p = o0 to o1 - 1 do
          if bget wos p && ((not t.optimized) || bget wov p) then
            stopped := true
        done;
        if !stopped then t.gated.(node) <- t.gated.(node) + 1
        else begin
          let all_valid = ref true in
          for p = Array.unsafe_get in_off node
              to Array.unsafe_get in_off (node + 1) - 1 do
            if not (bget wsv (Array.unsafe_get in_last_seg p)) then
              all_valid := false
          done;
          if not !all_valid then t.starved.(node) <- t.starved.(node) + 1
        end;
        (* a valid-and-stopped output survives; everything else voids *)
        for p = o0 to o1 - 1 do
          if not (bget wov p && bget wos p) then bclr wov p
        done
      end
    end
    else if knd = k_source then begin
      let slot = Array.unsafe_get out_off node in
      if Bytes.unsafe_get t.fire node = '\003' then begin
        t.fired.(node) <- t.fired.(node) + 1;
        bset wov slot;
        Array.unsafe_set out_val slot t.src_next.(node);
        t.src_next.(node) <- t.src_next.(node) + 1
      end
      else if bget wov slot && bget wos slot then ()
      else bclr wov slot
    end
    else begin
      (* sink *)
      let k = Array.unsafe_get in_last_seg (Array.unsafe_get in_off node) in
      if bget wsv k && not (pat_active t node) then begin
        t.snk_vals.(node) <- Array.unsafe_get seg_val k :: t.snk_vals.(node);
        t.snk_count.(node) <- t.snk_count.(node) + 1
      end
    end
  done;
  t.cycle <- t.cycle + 1

let step t =
  resolve t;
  commit t

let run t ~cycles =
  for _ = 1 to cycles do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Observation.                                                        *)

let fired_count t node = t.fired.(node)
let gated_count t node = t.gated.(node)
let starved_count t node = t.starved.(node)

let sink_values t node =
  if t.kind.(node) <> k_sink then invalid_arg "Packed.sink_values: not a sink";
  List.rev t.snk_vals.(node)

let sink_count t node =
  if t.kind.(node) <> k_sink then invalid_arg "Packed.sink_count: not a sink";
  t.snk_count.(node)

let recovery_count t =
  Array.fold_left
    (fun acc st ->
      match st with Some st -> acc + RS.recoveries st | None -> acc)
    0 t.retx_st

let dup_drop_count t =
  Array.fold_left
    (fun acc st ->
      match st with Some st -> acc + RS.dup_discards st | None -> acc)
    0 t.retx_st

(* ------------------------------------------------------------------ *)
(* Probe capture: the boundary beliefs the runtime monitors consume.
   Mirrors the [chan_probe] part of [Engine.capture] field for field, on
   the resolved planes, so a packed run can feed [Fault.Monitor] without
   building full snapshots. *)

type probe_view = {
  pv_cycle : int;  (* pre-commit cycle, as [Engine.snapshot.snap_cycle] *)
  pv_probes : Engine.probe array;  (* indexed by edge id *)
  pv_any_fired : bool;  (* some shell or source fired this cycle *)
  pv_sink_valid : bool;  (* some sink consumed a valid token this cycle *)
}

let capture_probes t =
  Array.init t.n_edges (fun e ->
      let slot = t.e_src_slot.(e) in
      let k_last = t.seg_off.(e + 1) - 1 in
      let occ = ref 0 in
      for j = t.st_off.(e) to t.st_off.(e + 1) - 1 do
        if Bitset.get t.st_retx j then
          occ :=
            !occ
            + (match t.retx_st.(j) with Some st -> RS.occupancy st | None -> 0)
        else begin
          if Bitset.get t.st_v0 j then incr occ;
          if Bitset.get t.st_full j && Bitset.get t.st_v1 j then incr occ
        end
      done;
      (match t.gates.(e) with Some g when g.pg_v -> incr occ | _ -> ());
      {
        Engine.pr_src_tok =
          token_of (Bitset.get t.out_valid slot) t.out_val.(slot);
        pr_src_stop = consumer_stop t e;
        pr_dst_tok = token_of (Bitset.get t.seg_valid k_last) t.seg_val.(k_last);
        pr_dst_stop = dst_stop t e;
        pr_occupancy = !occ;
      })

let probe_next t =
  resolve t;
  let any_fired = ref false and sink_valid = ref false in
  for node = 0 to t.n_nodes - 1 do
    if t.kind.(node) = k_sink then begin
      let k = t.in_last_seg.(t.in_off.(node)) in
      if bget t.w_seg_valid k && not (pat_active t node) then sink_valid := true
    end
    else if Bytes.unsafe_get t.fire node = '\003' then any_fired := true
  done;
  let pv =
    {
      pv_cycle = t.cycle;
      pv_probes = capture_probes t;
      pv_any_fired = !any_fired;
      pv_sink_valid = !sink_valid;
    }
  in
  commit t;
  pv

(* ------------------------------------------------------------------ *)
(* Interned signatures.                                                *)

let signature_id t =
  let b = t.sig_bytes in
  let pos = ref 0 in
  Bitset.blit_into t.out_valid b !pos;
  pos := !pos + Bitset.n_bytes t.out_valid;
  Bitset.blit_into t.st_v0 b !pos;
  pos := !pos + Bitset.n_bytes t.st_v0;
  Bitset.blit_into t.st_v1 b !pos;
  pos := !pos + Bitset.n_bytes t.st_v1;
  Bytes.set_int64_ne b !pos (Int64.of_int (t.cycle mod t.env_period));
  pos := !pos + 8;
  if t.has_dyn then begin
    (* dynamic state lives in boxed records, not the planes: fold each
       retx station's dense code and each gate's register into the key *)
    Array.iter
      (fun st ->
        match st with
        | Some st ->
            Bytes.set_int64_ne b !pos (Int64.of_int (RS.signature_code st));
            pos := !pos + 8
        | None -> ())
      t.retx_st;
    Array.iter
      (fun g ->
        match g with
        | Some g ->
            Bytes.set_int64_ne b !pos
              (Int64.of_int
                 ((if g.pg_v then 1 else 0)
                 lor (g.pg_timer lsl 1)
                 lor (g.pg_count lsl 16)));
            pos := !pos + 8
        | None -> ())
      t.gates
  end;
  match Sig_tbl.find_opt t.sig_intern b with
  | Some id -> id
  | None ->
      let id = t.sig_next in
      t.sig_next <- id + 1;
      Sig_tbl.add t.sig_intern (Bytes.copy b) id;
      id

let signature_intern_size t = Sig_tbl.length t.sig_intern

let signature_intern_clear t =
  Sig_tbl.reset t.sig_intern;
  t.sig_next <- 0

(* ------------------------------------------------------------------ *)
(* Cone of influence.

   The forward-reachable closure of one edge over the CSR: every edge a
   perturbation at the site can ever touch, every node it can ever make
   fire or stall differently.  Stop wires run combinationally upstream,
   so this is NOT a sound bound on single-cycle dirtiness — it is the
   locality structure the campaign driver uses to group faults whose
   perturbations overlap (shared snapshots, shared cache footprint) and
   the statistic the cone benchmark reports.  Correctness of incremental
   classification rests on exact convergence checks ([converged] below),
   never on these masks. *)

module Cone = struct
  type c = cone

  let site c = c.cn_site
  let edges c = c.cn_edges
  let nodes c = c.cn_nodes
  let order c = c.cn_order
  let rep c = c.cn_rep
  let size c = Array.length c.cn_order

  let compute t e0 =
    let in_cone = Bitset.create t.n_edges in
    let in_nodes = Bitset.create t.n_nodes in
    let stack = ref [ e0 ] in
    Bitset.set in_cone e0;
    let running = ref true in
    while !running do
      match !stack with
      | [] -> running := false
      | e :: rest ->
          stack := rest;
          let dn = t.e_dst_node.(e) in
          if not (Bitset.get in_nodes dn) then begin
            Bitset.set in_nodes dn;
            for p = t.out_off.(dn) to t.out_off.(dn + 1) - 1 do
              let e' = t.out_edge.(p) in
              if not (Bitset.get in_cone e') then begin
                Bitset.set in_cone e';
                stack := e' :: !stack
              end
            done
          end
    done;
    let size = Bitset.popcount in_cone in
    (* Kahn's algorithm restricted to the cone, min-id tie-break through
       a binary heap (Blarney's partialTopologicalSort idiom); edges
       stuck on cycles are appended in id order afterwards *)
    let indeg = Array.make t.n_edges 0 in
    Bitset.iter_set in_cone (fun e ->
        let dn = t.e_dst_node.(e) in
        for p = t.out_off.(dn) to t.out_off.(dn + 1) - 1 do
          let e' = t.out_edge.(p) in
          if Bitset.get in_cone e' then indeg.(e') <- indeg.(e') + 1
        done);
    let heap = Array.make (max size 1) 0 in
    let hn = ref 0 in
    let swap i j =
      let v = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- v
    in
    let push v =
      heap.(!hn) <- v;
      incr hn;
      let i = ref (!hn - 1) in
      while !i > 0 && heap.((!i - 1) / 2) > heap.(!i) do
        swap ((!i - 1) / 2) !i;
        i := (!i - 1) / 2
      done
    in
    let pop () =
      let v = heap.(0) in
      decr hn;
      heap.(0) <- heap.(!hn);
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < !hn && heap.(l) < heap.(!m) then m := l;
        if r < !hn && heap.(r) < heap.(!m) then m := r;
        if !m = !i then sifting := false
        else begin
          swap !m !i;
          i := !m
        end
      done;
      v
    in
    Bitset.iter_set in_cone (fun e -> if indeg.(e) = 0 then push e);
    let order = Array.make size 0 in
    let placed = Bitset.create t.n_edges in
    let k = ref 0 in
    while !hn > 0 do
      let e = pop () in
      order.(!k) <- e;
      incr k;
      Bitset.set placed e;
      let dn = t.e_dst_node.(e) in
      for p = t.out_off.(dn) to t.out_off.(dn + 1) - 1 do
        let e' = t.out_edge.(p) in
        if Bitset.get in_cone e' then begin
          indeg.(e') <- indeg.(e') - 1;
          if indeg.(e') = 0 then push e'
        end
      done
    done;
    Bitset.iter_set in_cone (fun e ->
        if not (Bitset.get placed e) then begin
          order.(!k) <- e;
          incr k
        end);
    let rep = ref e0 in
    Bitset.iter_set in_cone (fun e -> if e < !rep then rep := e);
    {
      cn_site = e0;
      cn_edges = in_cone;
      cn_nodes = in_nodes;
      cn_order = order;
      cn_rep = !rep;
    }

  (* The memo is shared across [resume] siblings (cones depend only on
     the topology shape, which [resume] preserves).  Concurrent domains
     may race to fill a slot: the computation is deterministic and the
     slot write is a single pointer store, so the worst case is a wasted
     recomputation, never a torn value. *)
  let of_edge t e =
    if e < 0 || e >= t.n_edges then invalid_arg "Packed.Cone.of_edge";
    match t.cone_memo.(e) with
    | Some c -> c
    | None ->
        let c = compute t e in
        t.cone_memo.(e) <- Some c;
        c
end

(* ------------------------------------------------------------------ *)
(* Snapshots.

   The registered state, captured and restored wholesale.  The
   incremental fault classifier ([Fault.Classify.classify_incr]) records
   the fault-free run's state at checkpoint cycles, restores to a
   fault's window start, re-steps only the perturbed middle, and splices
   the recorded tail back on once [converged] proves the live engine is
   behaviourally back on the recorded trajectory. *)

type snapshot = {
  sn_cycle : int;
  sn_out_valid : Bitset.t;
  sn_out_val : int array;
  sn_pearl_state : int array array;
  sn_st_v0 : Bitset.t;
  sn_st_v1 : Bitset.t;
  sn_st_d0 : int array;
  sn_st_d1 : int array;
  sn_src_next : int array;
  sn_fired : int array;
  sn_gated : int array;
  sn_starved : int array;
  sn_snk_count : int array;
  sn_snk_vals : int list array;
  sn_retx : RS.state option array;
  sn_gates : (bool * int * int * int) option array;
  sn_recoveries : int;
}

let snapshot t =
  {
    sn_cycle = t.cycle;
    sn_out_valid = Bitset.copy t.out_valid;
    sn_out_val = Array.copy t.out_val;
    sn_pearl_state = Array.map Array.copy t.pearl_state;
    sn_st_v0 = Bitset.copy t.st_v0;
    sn_st_v1 = Bitset.copy t.st_v1;
    sn_st_d0 = Array.copy t.st_d0;
    sn_st_d1 = Array.copy t.st_d1;
    sn_src_next = Array.copy t.src_next;
    sn_fired = Array.copy t.fired;
    sn_gated = Array.copy t.gated;
    sn_starved = Array.copy t.starved;
    sn_snk_count = Array.copy t.snk_count;
    sn_snk_vals = Array.copy t.snk_vals;
    (* [RS.state] values are immutable; sharing them is safe *)
    sn_retx = Array.copy t.retx_st;
    sn_gates =
      Array.map
        (Option.map (fun g -> (g.pg_v, g.pg_d, g.pg_timer, g.pg_count)))
        t.gates;
    sn_recoveries = recovery_count t;
  }

let restore t s =
  t.cycle <- s.sn_cycle;
  Bitset.blit ~src:s.sn_out_valid ~dst:t.out_valid;
  Array.blit s.sn_out_val 0 t.out_val 0 (Array.length t.out_val);
  for i = 0 to t.n_nodes - 1 do
    t.pearl_state.(i) <- Array.copy s.sn_pearl_state.(i)
  done;
  Bitset.blit ~src:s.sn_st_v0 ~dst:t.st_v0;
  Bitset.blit ~src:s.sn_st_v1 ~dst:t.st_v1;
  Array.blit s.sn_st_d0 0 t.st_d0 0 (Array.length t.st_d0);
  Array.blit s.sn_st_d1 0 t.st_d1 0 (Array.length t.st_d1);
  Array.blit s.sn_src_next 0 t.src_next 0 t.n_nodes;
  Array.blit s.sn_fired 0 t.fired 0 t.n_nodes;
  Array.blit s.sn_gated 0 t.gated 0 t.n_nodes;
  Array.blit s.sn_starved 0 t.starved 0 t.n_nodes;
  Array.blit s.sn_snk_count 0 t.snk_count 0 t.n_nodes;
  Array.blit s.sn_snk_vals 0 t.snk_vals 0 t.n_nodes;
  Array.blit s.sn_retx 0 t.retx_st 0 (Array.length t.retx_st);
  Array.iteri
    (fun e saved ->
      match (saved, t.gates.(e)) with
      | Some (v, d, timer, count), Some g ->
          g.pg_v <- v;
          g.pg_d <- d;
          g.pg_timer <- timer;
          g.pg_count <- count
      | None, None -> ()
      | _ -> invalid_arg "Packed.restore: snapshot from a different engine")
    s.sn_gates

let snapshot_cycle s = s.sn_cycle
let snapshot_recoveries s = s.sn_recoveries
let snapshot_sink_count s node = s.sn_snk_count.(node)

exception Differ

(* Behavioural state equality: true only if the engine and the snapshot
   evolve identically from here on and produce the same monitor/watchdog/
   sink observations.  Dead data is masked (a datum is compared only
   where its validity bit is set — invalid payloads are never read by
   [forward]/[commit] before being overwritten, and probes erase them
   behind [Token.void]).  The monotone progress counters (fired/gated/
   starved/sink/recovery totals) are deliberately excluded: they do not
   drive evolution, relay-station signature codes exclude them too, and
   the classifier splices them from recorded totals instead. *)
let converged t s =
  let check b = if not b then raise Differ in
  try
    check (t.cycle = s.sn_cycle);
    check (Bitset.equal t.out_valid s.sn_out_valid);
    check (Bitset.equal t.st_v0 s.sn_st_v0);
    check (Bitset.equal t.st_v1 s.sn_st_v1);
    Bitset.iter_set t.out_valid (fun i -> check (t.out_val.(i) = s.sn_out_val.(i)));
    Bitset.iter_set t.st_v0 (fun j -> check (t.st_d0.(j) = s.sn_st_d0.(j)));
    Bitset.iter_set t.st_v1 (fun j ->
        if Bitset.get t.st_full j then check (t.st_d1.(j) = s.sn_st_d1.(j)));
    check (t.src_next = s.sn_src_next);
    for i = 0 to t.n_nodes - 1 do
      check (t.pearl_state.(i) = s.sn_pearl_state.(i))
    done;
    Array.iteri
      (fun j st ->
        match (st, s.sn_retx.(j)) with
        | None, None -> ()
        | Some a, Some b -> check (RS.behavioural_equal a b)
        | _ -> raise Differ)
      t.retx_st;
    Array.iteri
      (fun e go ->
        match (go, s.sn_gates.(e)) with
        | None, None -> ()
        | Some g, Some (v, d, timer, count) ->
            check (g.pg_v = v && g.pg_timer = timer && g.pg_count = count);
            if v then check (g.pg_d = d)
        | _ -> raise Differ)
      t.gates;
    true
  with Differ -> false

(* Splice the recorded tail's sink consumption onto the live engine:
   the tokens the recording consumed between snapshot [at] and the final
   snapshot are exactly what the live engine would consume after
   reconverging at [at]. *)
let splice_sinks t ~at ~final =
  let rec take k l =
    if k = 0 then []
    else match l with [] -> [] | x :: rest -> x :: take (k - 1) rest
  in
  for n = 0 to t.n_nodes - 1 do
    if t.kind.(n) = k_sink then begin
      let extra = final.sn_snk_count.(n) - at.sn_snk_count.(n) in
      if extra > 0 then begin
        (* both lists are newest-first; the recorded tail's consumption
           is the first [extra] elements of the final snapshot's list *)
        t.snk_vals.(n) <- take extra final.sn_snk_vals.(n) @ t.snk_vals.(n);
        t.snk_count.(n) <- t.snk_count.(n) + extra
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Incremental re-elaboration.

   [resume t ~edits] compiles the network obtained by re-profiling the
   edited channels, sharing every immutable compiled array (CSR offsets,
   kinds, pearls, patterns, station layout) and the cone memo with [t].
   [Network.with_latency] preserves the topology shape, so only the
   dynamic-channel artifacts (delay tables, entrance gates, retx initial
   states) and the mutable state need rebuilding. *)

let resume t ~edits =
  let net =
    List.fold_left (fun n (e, p) -> Net.with_latency n e p) t.net edits
  in
  let n_out = t.out_off.(t.n_nodes) in
  let n_st = t.st_off.(t.n_edges) in
  let n_seg = t.seg_off.(t.n_edges) in
  let retx_init = initial_retx_st net t.st_off n_st in
  let gates = initial_gates net t.n_edges in
  let n_retx =
    Array.fold_left (fun n s -> if s = None then n else n + 1) 0 retx_init
  in
  let n_gates =
    Array.fold_left (fun n g -> if g = None then n else n + 1) 0 gates
  in
  let out_valid = Bitset.create n_out in
  let st_v0 = Bitset.create n_st and st_v1 = Bitset.create n_st in
  let seg_valid = Bitset.create n_seg in
  let out_stop = Bitset.create n_out in
  let st_stop_in = Bitset.create n_st in
  let t' =
    {
      t with
      net;
      env_period = Net.env_period net;
      has_dyn = Net.has_dynamics net;
      retx_st = Array.copy retx_init;
      retx_init;
      gates;
      out_valid;
      out_val = Array.make n_out 0;
      pearl_state = Array.make t.n_nodes [||];
      st_v0;
      st_v1;
      st_d0 = Array.make n_st 0;
      st_d1 = Array.make n_st 0;
      src_next = Array.make t.n_nodes 0;
      fired = Array.make t.n_nodes 0;
      gated = Array.make t.n_nodes 0;
      starved = Array.make t.n_nodes 0;
      snk_count = Array.make t.n_nodes 0;
      snk_vals = Array.make t.n_nodes [];
      cycle = 0;
      hooks = None;
      seg_valid;
      seg_val = Array.make n_seg 0;
      fire = Bytes.create t.n_nodes;
      stop_known = Bytes.create t.n_nodes;
      in_scratch =
        Array.init t.n_nodes (fun i ->
            if t.kind.(i) = k_shell then
              Array.make (t.in_off.(i + 1) - t.in_off.(i)) 0
            else [||]);
      w_out_valid = Bitset.bytes out_valid;
      w_st_v0 = Bitset.bytes st_v0;
      w_st_v1 = Bitset.bytes st_v1;
      w_seg_valid = Bitset.bytes seg_valid;
      w_out_stop = Bitset.bytes out_stop;
      w_st_stop_in = Bitset.bytes st_stop_in;
      sig_bytes =
        Bytes.make
          (Bitset.n_bytes out_valid
          + (2 * Bitset.n_bytes st_v0)
          + (8 * (1 + n_retx + n_gates)))
          '\000';
      sig_intern = Sig_tbl.create 1024;
      sig_next = 0;
    }
  in
  reset t';
  t'

(* ------------------------------------------------------------------ *)
(* Read-only views of the compiled CSR topology, for static analyses
   (the compositional contract checker) that want dense-id traversal
   without touching simulation state.                                  *)

module Csr = struct
  let n_nodes t = t.n_nodes
  let n_edges t = t.n_edges
  let is_shell t n = t.kind.(n) = k_shell
  let is_source t n = t.kind.(n) = k_source
  let is_sink t n = t.kind.(n) = k_sink
  let node_name t n = t.names.(n)
  let in_degree t n = t.in_off.(n + 1) - t.in_off.(n)
  let out_degree t n = t.out_off.(n + 1) - t.out_off.(n)
  let out_edge t n k = t.out_edge.(t.out_off.(n) + k)
  let edge_dst t e = t.e_dst_node.(e)

  let edge_src t e =
    (* invert [e_src_slot] by binary search over the out-slot offsets *)
    let slot = t.e_src_slot.(e) in
    let lo = ref 0 and hi = ref t.n_nodes in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.out_off.(mid) <= slot then lo := mid else hi := mid
    done;
    !lo

  let stations t e =
    List.init
      (t.st_off.(e + 1) - t.st_off.(e))
      (fun k ->
        let s = t.st_off.(e) + k in
        if Bitset.get t.st_retx s then
          match t.retx_init.(s) with
          | Some st -> Lid.Relay_station.kind st
          | None -> assert false
        else if Bitset.get t.st_full s then Lid.Relay_station.Full
        else Lid.Relay_station.Half)

  let gate_table t e =
    match t.gates.(e) with
    | Some g -> Some (Array.copy g.pg_table)
    | None -> None
end
