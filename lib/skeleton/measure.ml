module Net = Topology.Network

type report = {
  transient : int;
  period : int;
  node_throughput : (Net.node_id * float) list;
  sink_throughput : (Net.node_id * float) list;
  deadlocked : bool;
}

let default_signature_capacity = 1_000_000

(* The detection loop only needs five operations of an engine, so the same
   loop serves {!Engine} and {!Packed}. *)
type driver = {
  d_cycle : unit -> int;
  d_step : unit -> unit;
  d_sig_id : unit -> int;
  d_intern_size : unit -> int;
  d_intern_clear : unit -> unit;
}

let engine_driver e =
  {
    d_cycle = (fun () -> Engine.cycle e);
    d_step = (fun () -> Engine.step e);
    d_sig_id = (fun () -> Engine.signature_id e);
    d_intern_size = (fun () -> Engine.signature_intern_size e);
    d_intern_clear = (fun () -> Engine.signature_intern_clear e);
  }

let packed_driver p =
  {
    d_cycle = (fun () -> Packed.cycle p);
    d_step = (fun () -> Packed.step p);
    d_sig_id = (fun () -> Packed.signature_id p);
    d_intern_size = (fun () -> Packed.signature_intern_size p);
    d_intern_clear = (fun () -> Packed.signature_intern_clear p);
  }

(* Run until the skeleton signature repeats.  The transient is reported
   relative to the cycle the search started at, so analyzing a warmed-up
   engine means "periodic regime reached [transient] cycles from here" —
   not from cycle 0, where the engine may long have left the transient.
   Detection succeeds iff [transient + period <= max_cycles]: exactly
   [max_cycles] steps are taken before giving up, not [max_cycles + 2].

   Signatures are interned to dense ints by the engine, so [seen] maps
   ints to cycles; when the intern table outgrows [signature_capacity]
   both tables are dropped and detection restarts at the current cycle —
   memory stays O(capacity) and the transient degrades to an upper bound
   (a capacity below the period can no longer converge and runs into the
   [max_cycles] budget instead). *)
let find_repeat_driver ?(max_cycles = 100_000)
    ?(signature_capacity = default_signature_capacity) d =
  let start = d.d_cycle () in
  let seen = Hashtbl.create 1024 in
  let rec go () =
    let id = d.d_sig_id () in
    match Hashtbl.find_opt seen id with
    | Some first -> Some (first - start, d.d_cycle () - first)
    | None ->
        if d.d_cycle () - start >= max_cycles then None
        else begin
          if d.d_intern_size () > signature_capacity then begin
            d.d_intern_clear ();
            Hashtbl.reset seen
          end
          else Hashtbl.add seen id (d.d_cycle ());
          d.d_step ();
          go ()
        end
  in
  go ()

let find_repeat ?max_cycles ?signature_capacity engine =
  find_repeat_driver ?max_cycles ?signature_capacity (engine_driver engine)

let transient_and_period ?max_cycles ?signature_capacity engine =
  find_repeat ?max_cycles ?signature_capacity engine

let transient_and_period_packed ?max_cycles ?signature_capacity packed =
  find_repeat_driver ?max_cycles ?signature_capacity (packed_driver packed)

let analyze_core ~net ~find ~run ~fired ~sunk =
  match find () with
  | None -> None
  | Some (transient, period) ->
      let shellish =
        List.filter
          (fun (n : Net.node) ->
            match n.kind with
            | Net.Shell _ | Net.Source _ -> true
            | Net.Sink _ -> false)
          (Net.nodes net)
      in
      let sinks = Net.sinks net in
      let fired0 =
        List.map (fun (n : Net.node) -> (n.id, fired n.id)) shellish
      in
      let sunk0 = List.map (fun (n : Net.node) -> (n.id, sunk n.id)) sinks in
      run period;
      (* integer fired-count deltas over exactly one period: deadlock is
         "nothing fired", decided on counters, never on float rates *)
      let deltas = List.map (fun (id, before) -> (id, fired id - before)) fired0 in
      let rate d = float_of_int d /. float_of_int period in
      let node_throughput = List.map (fun (id, d) -> (id, rate d)) deltas in
      let sink_throughput =
        List.map (fun (id, before) -> (id, rate (sunk id - before))) sunk0
      in
      let deadlocked =
        (* a degenerate net with nothing shell-like cannot deadlock *)
        match deltas with
        | [] -> false
        | _ -> List.for_all (fun (_, d) -> d = 0) deltas
      in
      Some { transient; period; node_throughput; sink_throughput; deadlocked }

let analyze ?max_cycles ?signature_capacity engine =
  analyze_core
    ~net:(Engine.network engine)
    ~find:(fun () -> find_repeat ?max_cycles ?signature_capacity engine)
    ~run:(fun cycles -> Engine.run engine ~cycles)
    ~fired:(Engine.fired_count engine)
    ~sunk:(Engine.sink_count engine)

let analyze_packed ?max_cycles ?signature_capacity packed =
  analyze_core
    ~net:(Packed.network packed)
    ~find:(fun () ->
      find_repeat_driver ?max_cycles ?signature_capacity (packed_driver packed))
    ~run:(fun cycles -> Packed.run packed ~cycles)
    ~fired:(Packed.fired_count packed)
    ~sunk:(Packed.sink_count packed)

(* Exact steady-state system throughput: the minimum, over shells and
   sources, of integer tokens fired over exactly one period.  This is
   what [analyze] computes in floats, kept as a ratio so static
   predictions can be cross-checked by cross-multiplication (the lint
   suite and E16), with no float rounding in the comparison. *)
let steady_ratio_packed ?max_cycles ?signature_capacity p =
  match
    find_repeat_driver ?max_cycles ?signature_capacity (packed_driver p)
  with
  | None -> None
  | Some (_, period) ->
      let shellish =
        List.filter
          (fun (n : Net.node) ->
            match n.kind with
            | Net.Shell _ | Net.Source _ -> true
            | Net.Sink _ -> false)
          (Net.nodes (Packed.network p))
      in
      let before =
        List.map (fun (n : Net.node) -> (n.id, Packed.fired_count p n.id)) shellish
      in
      Packed.run p ~cycles:period;
      let deltas =
        List.map (fun (id, b) -> Packed.fired_count p id - b) before
      in
      Some
        (match deltas with
        | [] -> (0, 1)
        | x :: rest -> (List.fold_left min x rest, period))

let system_throughput r =
  let net_rates = List.map snd r.node_throughput in
  match net_rates with
  | [] -> 0.
  | x :: rest -> List.fold_left min x rest

let pp_report net fmt r =
  Format.fprintf fmt "transient=%d period=%d%s@." r.transient r.period
    (if r.deadlocked then " DEADLOCK" else "");
  List.iter
    (fun (id, rate) ->
      Format.fprintf fmt "  %-12s throughput %.4f@." (Net.node net id).name rate)
    r.node_throughput;
  List.iter
    (fun (id, rate) ->
      Format.fprintf fmt "  %-12s consumes   %.4f@." (Net.node net id).name rate)
    r.sink_throughput
