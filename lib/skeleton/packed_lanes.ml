module Net = Topology.Network
module RS = Lid.Relay_station
module Token = Lid.Token

(* Lane-parallel boolean campaign engine.

   The skeleton's protocol state is pure boolean — valid wires, stop
   wires, station occupancy — so a native int can carry one independent
   run per bit position and a single AND/OR/XOR advances all of them.
   Lane 0 runs fault free; lanes 1..W-1 each carry one injected fault,
   applied as per-lane XOR/OR/AND-NOT masks on the wires (and a per-lane
   upset transform on station registers) at the fault's cycles.

   The engine keeps no payloads.  Its job is not classification but a
   sound divergence filter: a lane that never differs from lane 0 on any
   plane a classifier could observe ran, observationally, the fault-free
   schedule — so its report can be synthesized from one recorded
   fault-free run instead of re-simulated.  Divergence is accumulated
   per cycle over exactly the observable planes:

   P1  registered planes after every clock edge (output buffers,
       station main/aux or hold/sreg validity) — the state signature and
       the occupancy probes;
   P2  fire words of every shell and source — progress and stop beliefs;
   P3  the consumer-side forward valid of every channel — deliveries and
       the hold check;
   P4  the producer-boundary handover word (buffer valid and no stop at
       boundary 0) — the monitors' token ledger.

   A clean lane under a valid-bit or stop fault is therefore exactly the
   fault-free run for every probe, signature and sink stream the
   classifier reads (payloads included: a conjured valid that is stored
   or consumed anywhere trips P1, P2 or P3).  Payload faults
   (data-corrupt) have no boolean footprint at all; for them the engine
   instead watches whether the target wire was ever valid during the
   fault window ([touched]) — an untouched corruption is a literal
   no-op.  Register upsets always change occupancy, so they are always
   reported divergent.

   Channel dynamics do not fit a word: a retransmitting station's
   go-back-N state (sequence numbers, replay buffer, hop timers) and an
   entrance gate's delay counters are integers, not bits.  Those few
   stations keep one boxed state PER LANE ([xst]) stepped through
   [Relay_station.step] itself, while every boolean wire around them
   stays word-parallel; the station's Moore face (output valid, stop
   upstream) is re-packed into lane words each cycle.  Divergence for
   these sites compares each lane's [Relay_station.signature_code] AND
   its recovery counter against lane 0 — the recovery count is
   classifier evidence (the [Masked_by_retx] and [Livelock] bins) but is
   deliberately excluded from the signature, so a lane whose only trace
   of a fault is an extra recovery would otherwise pass as clean.
   Link-plane faults (corrupt/drop/duplicate in flight) are injected per
   lane through the station's own [link] parameter. *)

(* One lane per bit of a native int, sign bit included: 63 lanes on
   64-bit.  Every lane-word operation is bitwise or a logical shift, so
   the top bit carries a lane like any other; the only care needed is
   the all-lanes mask, which is [-1] (not [(1 lsl lanes) - 1], which
   would overflow) at full width — see [create]. *)
let max_lanes = Sys.int_size

type site =
  | Forward of { edge : Net.edge_id; seg : int }
  | Backward of { edge : Net.edge_id; boundary : int }
  | Register of { edge : Net.edge_id; station : int }
  | Link of { edge : Net.edge_id; station : int }

type effect =
  | Flip_valid  (** XOR the forward valid wire at the site *)
  | Force_stop  (** OR the stop wire crossing the boundary *)
  | Drop_stop  (** AND-NOT the stop wire crossing the boundary *)
  | Upset  (** apply the relay-register upset transform *)
  | Watch
      (** no dynamics; record whether the wire was valid while active
          (the boolean shadow of a payload corruption) *)
  | Link_fault of RS.link_fault
      (** damage flits in flight inside a retransmitting station *)

type spec = { eff : effect; site : site; from_cycle : int; duration : int }

type lane_report = {
  lr_diverged : bool;
  lr_touched : bool;
  lr_first_divergence : int option;
  lr_divergent_cycles : int;
}

(* Node kind tags, as [Packed]. *)
let k_shell = 0
let k_source = 1
let k_sink = 2

(* One channel entrance gate, all lanes: validity is a lane word, the
   delay counters are per lane (mirrors [Packed]'s [pgate], minus the
   payload — the engine keeps none). *)
type lgate = {
  lg_table : int array;
  mutable lg_v : int; (* per-lane gate-occupied word *)
  lg_timer : int array; (* per lane: residual delay *)
  lg_count : int array; (* per lane: schedule position *)
  mutable lg_out : int; (* scratch: head word this cycle *)
  mutable lg_wait : int; (* scratch: timer > 0 word this cycle *)
}

type t = {
  optimized : bool;
  lanes : int;
  ones : int; (* (1 lsl lanes) - 1: the live-lane mask *)
  n_specs : int;
  specs : spec array;
  (* --- compiled topology (immutable, ~the [Packed] CSR layout) --- *)
  n_nodes : int;
  n_edges : int;
  kind : int array;
  pat : bool array array; (* node -> activity word (sources/sinks) *)
  in_off : int array;
  in_last_seg : int array;
  out_off : int array;
  out_edge : int array;
  e_src_slot : int array;
  e_dst_node : int array;
  st_off : int array;
  st_full : bool array;
  st_retx : bool array;
  seg_off : int array;
  order : int array; (* non-sink nodes, stop/fire dependencies first *)
  cyclic : string option; (* a station-less stop loop found at compile *)
  (* --- lane-word state: one int per wire, one lane per bit --- *)
  ov : int array; (* out slot -> output-buffer valid lanes *)
  st_v0 : int array; (* station -> main/hold valid lanes *)
  st_v1 : int array; (* station -> aux valid / sreg lanes *)
  sv : int array; (* segment -> forward valid lanes (scratch) *)
  os : int array; (* out slot -> consumer stop lanes (scratch) *)
  fire : int array; (* node -> fire lanes (scratch) *)
  (* --- per-cycle fault masks (zero except while a fault is active) --- *)
  fwd_xor : int array; (* segment space *)
  stop_or : int array; (* boundary space (same layout as segments) *)
  stop_andn : int array;
  upset : int array; (* station space *)
  (* --- channel dynamics: boxed per-lane state, word-packed faces --- *)
  has_dyn : bool;
  xst : RS.state array array; (* retx station -> lane -> state; [||] else *)
  x_link : RS.link_fault array array; (* retx station -> lane -> fault *)
  xout : int array; (* station -> Moore output-valid lanes (scratch) *)
  xstop : int array; (* station -> stop-upstream lanes (scratch) *)
  lg : lgate option array; (* edge space *)
  (* --- divergence bookkeeping --- *)
  mutable diff : int; (* lanes that ever diverged *)
  mutable touched : int; (* lanes whose watched wire was valid *)
  mutable hist : int array; (* per-cycle divergence words *)
  mutable cycle : int;
}

let pattern_word p =
  let n = Topology.Pattern.period p in
  Array.init n (fun cycle -> Topology.Pattern.active p ~cycle)

let validate_spec t i (s : spec) =
  let bad msg = invalid_arg (Printf.sprintf "Packed_lanes: spec %d %s" i msg) in
  if s.duration < 1 then bad "has duration < 1";
  if s.from_cycle < 0 then bad "starts before cycle 0";
  let check_edge e = if e < 0 || e >= t.n_edges then bad "names no such edge" in
  (match s.site with
  | Forward { edge; seg } ->
      check_edge edge;
      if seg < 0 || seg >= t.seg_off.(edge + 1) - t.seg_off.(edge) then
        bad "names no such segment"
  | Backward { edge; boundary } ->
      check_edge edge;
      if boundary < 0 || boundary >= t.seg_off.(edge + 1) - t.seg_off.(edge)
      then bad "names no such boundary"
  | Register { edge; station } ->
      check_edge edge;
      if station < 0 || station >= t.st_off.(edge + 1) - t.st_off.(edge) then
        bad "names no such station"
  | Link { edge; station } ->
      check_edge edge;
      if station < 0 || station >= t.st_off.(edge + 1) - t.st_off.(edge) then
        bad "names no such station";
      if not t.st_retx.(t.st_off.(edge) + station) then
        bad "targets the link of a non-retransmitting station");
  match (s.eff, s.site) with
  | (Flip_valid | Watch), Forward _
  | (Force_stop | Drop_stop), Backward _
  | Upset, Register _
  | Link_fault _, Link _ ->
      ()
  | _ -> bad "pairs an effect with the wrong site plane"

let create ?(flavour = Lid.Protocol.Optimized) ~lanes net specs =
  if lanes < 2 || lanes > max_lanes then
    invalid_arg
      (Printf.sprintf "Packed_lanes.create: lanes must be in [2, %d]" max_lanes);
  let specs = Array.of_list specs in
  if Array.length specs > lanes - 1 then
    invalid_arg "Packed_lanes.create: more specs than injection lanes";
  let nodes = Array.of_list (Net.nodes net) in
  let edges = Array.of_list (Net.edges net) in
  let n_nodes = Array.length nodes and n_edges = Array.length edges in
  let kind =
    Array.map
      (fun (n : Net.node) ->
        match n.kind with
        | Net.Shell _ -> k_shell
        | Net.Source _ -> k_source
        | Net.Sink _ -> k_sink)
      nodes
  in
  let offsets count =
    let off = Array.make (n_nodes + 1) 0 in
    for i = 0 to n_nodes - 1 do
      off.(i + 1) <- off.(i) + count i
    done;
    off
  in
  let in_off = offsets (fun i -> Array.length (Net.in_edges net i)) in
  let out_off = offsets (fun i -> Array.length (Net.out_edges net i)) in
  let st_off = Array.make (n_edges + 1) 0 in
  let seg_off = Array.make (n_edges + 1) 0 in
  Array.iteri
    (fun i (e : Net.edge) ->
      let m = List.length e.stations in
      st_off.(i + 1) <- st_off.(i) + m;
      seg_off.(i + 1) <- seg_off.(i) + m + 1)
    edges;
  let n_st = st_off.(n_edges) and n_seg = seg_off.(n_edges) in
  let st_full = Array.make n_st false in
  let st_retx = Array.make n_st false in
  Array.iteri
    (fun i (e : Net.edge) ->
      List.iteri
        (fun j k ->
          match k with
          | RS.Full -> st_full.(st_off.(i) + j) <- true
          | RS.Retx _ -> st_retx.(st_off.(i) + j) <- true
          | RS.Half -> ())
        e.stations)
    edges;
  (* Per-lane boxed states for retransmitting stations; the channel's
     latency profile drives the FIRST retx station of its chain (the
     same elaboration as [Engine] and [Packed]).  [Relay_station.state]
     is immutable, so all lanes share the one initial value. *)
  let xst = Array.make n_st [||] in
  let x_link = Array.make n_st [||] in
  Array.iteri
    (fun i (e : Net.edge) ->
      let table = Net.delay_table net i in
      let used = ref false in
      List.iteri
        (fun j k ->
          match k with
          | RS.Retx _ ->
              let st =
                if not !used then begin
                  used := true;
                  match table with
                  | Some table -> RS.initial ~table k
                  | None -> RS.initial k
                end
                else RS.initial k
              in
              xst.(st_off.(i) + j) <- Array.make lanes st;
              x_link.(st_off.(i) + j) <- Array.make lanes RS.Link_ok
          | _ -> ())
        e.stations)
    edges;
  let lg =
    Array.init n_edges (fun e ->
        if Net.edge_is_gated net e then
          match Net.delay_table net e with
          | Some lg_table ->
              Some
                {
                  lg_table;
                  lg_v = 0;
                  lg_timer = Array.make lanes 0;
                  lg_count = Array.make lanes 0;
                  lg_out = 0;
                  lg_wait = 0;
                }
          | None -> None
        else None)
  in
  let in_last_seg = Array.make in_off.(n_nodes) 0 in
  let out_edge = Array.make out_off.(n_nodes) 0 in
  for i = 0 to n_nodes - 1 do
    Array.iteri
      (fun p (e : Net.edge) ->
        in_last_seg.(in_off.(i) + p) <- seg_off.(e.id + 1) - 1)
      (Net.in_edges net i);
    Array.iteri
      (fun p (e : Net.edge) -> out_edge.(out_off.(i) + p) <- e.id)
      (Net.out_edges net i)
  done;
  (* Stop resolution order.  A node's fire decision needs the stop of
     every out edge; a station-less edge answers with its destination
     shell's fire decision, so that shell must be resolved first.  The
     dependency graph is static — [Engine.fire_of] recurses on exactly
     these edges regardless of wire values — so a cycle here is the same
     station-less stop loop [Engine] reports. *)
  let state = Array.make n_nodes 0 in
  let order_rev = ref [] in
  let cyclic = ref None in
  let rec visit i =
    if state.(i) = 1 then begin
      if !cyclic = None then Some nodes.(i).Net.name |> fun c -> cyclic := c
    end
    else if state.(i) = 0 then begin
      state.(i) <- 1;
      Array.iter
        (fun (e : Net.edge) ->
          if e.stations = [] && kind.(e.dst.node) = k_shell then
            visit e.dst.node)
        (Net.out_edges net i);
      state.(i) <- 2;
      order_rev := i :: !order_rev
    end
  in
  for i = 0 to n_nodes - 1 do
    if kind.(i) <> k_sink then visit i
  done;
  let t =
    {
      optimized = (flavour = Lid.Protocol.Optimized);
      lanes;
      ones = (if lanes >= Sys.int_size then -1 else (1 lsl lanes) - 1);
      n_specs = Array.length specs;
      specs;
      n_nodes;
      n_edges;
      kind;
      pat =
        Array.map
          (fun (n : Net.node) ->
            match n.kind with
            | Net.Source { pattern; _ } | Net.Sink { pattern } ->
                pattern_word pattern
            | Net.Shell _ -> [||])
          nodes;
      in_off;
      in_last_seg;
      out_off;
      out_edge;
      e_src_slot =
        Array.map
          (fun (e : Net.edge) -> out_off.(e.src.node) + e.src.port)
          edges;
      e_dst_node = Array.map (fun (e : Net.edge) -> e.dst.node) edges;
      st_off;
      st_full;
      st_retx;
      seg_off;
      order = Array.of_list (List.rev !order_rev);
      cyclic = !cyclic;
      ov = Array.make out_off.(n_nodes) 0;
      st_v0 = Array.make n_st 0;
      st_v1 = Array.make n_st 0;
      sv = Array.make n_seg 0;
      os = Array.make out_off.(n_nodes) 0;
      fire = Array.make n_nodes 0;
      fwd_xor = Array.make n_seg 0;
      stop_or = Array.make n_seg 0;
      stop_andn = Array.make n_seg 0;
      upset = Array.make n_st 0;
      has_dyn = Net.has_dynamics net;
      xst;
      x_link;
      xout = Array.make n_st 0;
      xstop = Array.make n_st 0;
      lg;
      diff = 0;
      touched = 0;
      hist = [||];
      cycle = 0;
    }
  in
  Array.iteri (validate_spec t) specs;
  (* Initial state, broadcast to every lane: shell output buffers valid
     (pearls present their initial output), source buffers valid,
     stations empty — as [Packed.create]. *)
  for i = 0 to n_nodes - 1 do
    if kind.(i) = k_shell || kind.(i) = k_source then
      for p = out_off.(i) to out_off.(i + 1) - 1 do
        t.ov.(p) <- t.ones
      done
  done;
  t

let lanes t = t.lanes
let cycle t = t.cycle

let pat_active t node cyc =
  let p = t.pat.(node) in
  let n = Array.length p in
  if n = 1 then p.(0) else p.(cyc mod n)

(* Broadcast lane 0 of [w] to every live lane, XOR against the word:
   the lanes that differ from the reference. *)
let against_lane0 t w = (w lxor - (w land 1)) land t.ones

let step t =
  (match t.cyclic with
  | Some name ->
      raise
        (Engine.Combinational_stop_cycle
           (Printf.sprintf
              "combinational stop cycle through %S: a loop of station-less \
               channels between shells"
              name))
  | None -> ());
  let cyc = t.cycle in
  let ones = t.ones in
  (* 0. arm the per-lane fault masks active this cycle *)
  let armed = ref false in
  for i = 0 to t.n_specs - 1 do
    let s = t.specs.(i) in
    if cyc >= s.from_cycle && cyc < s.from_cycle + s.duration then begin
      armed := true;
      let bit = 1 lsl (i + 1) in
      match (s.eff, s.site) with
      | Flip_valid, Forward { edge; seg } ->
          let k = t.seg_off.(edge) + seg in
          t.fwd_xor.(k) <- t.fwd_xor.(k) lor bit
      | Force_stop, Backward { edge; boundary } ->
          let b = t.seg_off.(edge) + boundary in
          t.stop_or.(b) <- t.stop_or.(b) lor bit
      | Drop_stop, Backward { edge; boundary } ->
          let b = t.seg_off.(edge) + boundary in
          t.stop_andn.(b) <- t.stop_andn.(b) lor bit
      | Upset, Register { edge; station } ->
          let j = t.st_off.(edge) + station in
          t.upset.(j) <- t.upset.(j) lor bit
      | Link_fault lf, Link { edge; station } ->
          t.x_link.(t.st_off.(edge) + station).(i + 1) <- lf
      | Watch, _ -> ()
      | _ -> assert false (* ruled out by [validate_spec] *)
    end
  done;
  let sv = t.sv
  and st_v0 = t.st_v0
  and st_v1 = t.st_v1
  and seg_off = t.seg_off
  and st_off = t.st_off
  and fwd_xor = t.fwd_xor in
  (* 0b. channel dynamics: re-pack each retransmitting station's Moore
     face and each gate's metering words from pre-step per-lane state *)
  if t.has_dyn then begin
    for j = 0 to Array.length t.st_retx - 1 do
      if t.st_retx.(j) then begin
        let sts = t.xst.(j) in
        let out = ref 0 and stop = ref 0 in
        for l = 0 to t.lanes - 1 do
          let st = sts.(l) in
          if Token.is_valid (RS.present st ~input:Token.void) then
            out := !out lor (1 lsl l);
          if RS.stop_upstream st then stop := !stop lor (1 lsl l)
        done;
        t.xout.(j) <- !out;
        t.xstop.(j) <- !stop
      end
    done;
    for e = 0 to t.n_edges - 1 do
      match t.lg.(e) with
      | None -> ()
      | Some g ->
          let wait = ref 0 in
          for l = 0 to t.lanes - 1 do
            if g.lg_timer.(l) > 0 then wait := !wait lor (1 lsl l)
          done;
          g.lg_wait <- !wait;
          g.lg_out <- g.lg_v land lnot !wait land ones
    done
  end;
  (* 1. forward valid wires, with flip masks applied in flight (a half
     station's pass-through must see the already-faulted upstream seg);
     a gated channel's first segment carries the gate's metered output *)
  for e = 0 to t.n_edges - 1 do
    let k0 = seg_off.(e) in
    let head =
      match t.lg.(e) with
      | Some g -> g.lg_out
      | None -> t.ov.(t.e_src_slot.(e))
    in
    sv.(k0) <- head lxor fwd_xor.(k0);
    let s0 = st_off.(e) in
    for j = s0 to st_off.(e + 1) - 1 do
      let k = k0 + (j - s0) + 1 in
      let base =
        if t.st_retx.(j) then t.xout.(j)
        else if t.st_full.(j) then st_v0.(j)
        else st_v0.(j) lor (sv.(k - 1) land lnot (st_v0.(j) lor st_v1.(j)))
      in
      sv.(k) <- (base lxor fwd_xor.(k)) land ones
    done
  done;
  (* watched wires: valid during the fault window means the payload
     corruption is not a no-op *)
  if !armed then
    for i = 0 to t.n_specs - 1 do
      let s = t.specs.(i) in
      if
        s.eff = Watch
        && cyc >= s.from_cycle
        && cyc < s.from_cycle + s.duration
      then
        match s.site with
        | Forward { edge; seg } ->
            t.touched <-
              t.touched lor (sv.(seg_off.(edge) + seg) land (1 lsl (i + 1)))
        | _ -> ()
    done;
  (* 2. stop and fire resolution, dependencies first *)
  let dst_stop e =
    let dn = t.e_dst_node.(e) in
    if t.kind.(dn) = k_sink then if pat_active t dn cyc then ones else 0
    else
      let nf = lnot t.fire.(dn) land ones in
      if t.optimized then nf land sv.(seg_off.(e + 1) - 1) else nf
  in
  (* the stop facing whatever feeds the relay chain (mirrors [Packed]'s
     [chain_head_stop]) *)
  let chain_head_word e =
    let s0 = st_off.(e) in
    if st_off.(e + 1) > s0 then
      if t.st_retx.(s0) then t.xstop.(s0)
      else if t.st_full.(s0) then st_v1.(s0)
      else st_v0.(s0) lor st_v1.(s0)
    else dst_stop e
  in
  let os = t.os in
  for idx = 0 to Array.length t.order - 1 do
    let node = t.order.(idx) in
    let gated = ref 0 in
    for p = t.out_off.(node) to t.out_off.(node + 1) - 1 do
      let e = t.out_edge.(p) in
      let raw =
        match t.lg.(e) with
        | Some g -> g.lg_v land (g.lg_wait lor chain_head_word e)
        | None -> chain_head_word e
      in
      let b = seg_off.(e) in
      let stop = (raw lor t.stop_or.(b)) land lnot t.stop_andn.(b) land ones in
      os.(p) <- stop;
      gated := !gated lor (stop land if t.optimized then t.ov.(p) else ones)
    done;
    t.fire.(node) <-
      (if t.kind.(node) = k_shell then begin
         let all_valid = ref ones in
         for ip = t.in_off.(node) to t.in_off.(node + 1) - 1 do
           all_valid := !all_valid land sv.(t.in_last_seg.(ip))
         done;
         !all_valid land lnot !gated land ones
       end
       else (if pat_active t node cyc then ones else 0) land lnot !gated)
  done;
  (* 3. pre-commit divergence: fire words (P2), consumer-side valids
     (P3), producer handover words (P4) *)
  let cdiff = ref 0 in
  for node = 0 to t.n_nodes - 1 do
    if t.kind.(node) <> k_sink then
      cdiff := !cdiff lor against_lane0 t t.fire.(node)
  done;
  for e = 0 to t.n_edges - 1 do
    cdiff := !cdiff lor against_lane0 t sv.(seg_off.(e + 1) - 1);
    let slot = t.e_src_slot.(e) in
    cdiff := !cdiff lor against_lane0 t (t.ov.(slot) land lnot os.(slot))
  done;
  (* 4. station clock edge, consumer end first so each station's
     pre-step word is read once (its own input and the upstream stop) *)
  let flavour =
    if t.optimized then Lid.Protocol.Optimized else Lid.Protocol.Original
  in
  for e = 0 to t.n_edges - 1 do
    let s0 = st_off.(e) and s1 = st_off.(e + 1) in
    (* the entrance gate commits first: every read is pre-step state
       (mirrors [Packed.commit_gate], word-parallel where possible) *)
    (match t.lg.(e) with
    | None -> ()
    | Some g ->
        let was = g.lg_v in
        let departs = was land lnot g.lg_wait land lnot (chain_head_word e) in
        let in_v = t.ov.(t.e_src_slot.(e)) in
        let accept = in_v land (lnot was lor departs) land ones in
        g.lg_v <- ((was land lnot departs) lor accept) land ones;
        if was lor accept <> 0 then
          for l = 0 to t.lanes - 1 do
            let bit = 1 lsl l in
            if accept land bit <> 0 then begin
              g.lg_timer.(l) <- g.lg_table.(g.lg_count.(l));
              g.lg_count.(l) <- (g.lg_count.(l) + 1) mod Array.length g.lg_table
            end
            else if was land bit <> 0 && g.lg_timer.(l) > 0 then
              g.lg_timer.(l) <- g.lg_timer.(l) - 1
          done);
    if s1 > s0 then begin
      let k0 = seg_off.(e) in
      let m = s1 - s0 in
      let last_b = k0 + m in
      let stop_in =
        ref
          ((dst_stop e lor t.stop_or.(last_b))
          land lnot t.stop_andn.(last_b)
          land ones)
      in
      for j = s1 - 1 downto s0 do
        let v0 = st_v0.(j) and v1 = st_v1.(j) in
        let k = k0 + (j - s0) in
        let in_v = sv.(k) in
        let stop = !stop_in in
        let um = t.upset.(j) in
        if t.st_retx.(j) then begin
          (* go-back-N state does not fit a word: step each lane's boxed
             state through the station's own FSM, with that lane's link
             fault; a flit completing its hop under an armed link fault
             marks the lane touched (the payload-corruption shadow) *)
          let sts = t.xst.(j) in
          let links = t.x_link.(j) in
          for l = 0 to t.lanes - 1 do
            let bit = 1 lsl l in
            let link = links.(l) in
            let st = sts.(l) in
            if link <> RS.Link_ok && RS.flit_arriving st then
              t.touched <- t.touched lor bit;
            let st' =
              RS.step ~flavour ~link st
                ~input:(if in_v land bit <> 0 then Token.valid 0 else Token.void)
                ~stop_in:(stop land bit <> 0)
            in
            sts.(l) <- (if um land bit <> 0 then RS.upset ~payload:0 st' else st')
          done;
          stop_in :=
            ((t.xstop.(j) lor t.stop_or.(k)) land lnot t.stop_andn.(k)) land ones
        end
        else if t.st_full.(j) then begin
          (* word-parallel [Relay_station.step], Full *)
          let take = in_v land lnot v1 in
          let consumed = v0 land lnot stop in
          let v0' =
            lnot v0 land take
            lor (consumed land v1)
            lor (consumed land lnot v1 land take)
            lor (v0 land stop)
          in
          let v1' = v0 land stop land (v1 lor take) in
          (* word-parallel [Relay_station.upset]: 2->1, 1->0, 0->1 *)
          let v0'' =
            (v0' land lnot um) lor (um land (v0' land v1' lor lnot v0'))
          in
          st_v0.(j) <- v0'' land ones;
          st_v1.(j) <- v1' land lnot um land ones;
          stop_in := ((v1 lor t.stop_or.(k)) land lnot t.stop_andn.(k)) land ones
        end
        else begin
          (* word-parallel [Relay_station.step], Half *)
          let v0' = stop land (v0 lor (lnot v1 land in_v)) in
          let v1' = if t.optimized then 0 else stop in
          st_v0.(j) <- (v0' lxor um) land ones;
          st_v1.(j) <- v1' land ones;
          stop_in :=
            ((v0 lor v1 lor t.stop_or.(k)) land lnot t.stop_andn.(k)) land ones
        end
      done
    end
  done;
  (* 5. shell and source output buffers: fired lanes load a fresh valid,
     a valid-and-stopped buffer survives, the rest void *)
  for node = 0 to t.n_nodes - 1 do
    if t.kind.(node) <> k_sink then begin
      let f = t.fire.(node) in
      for p = t.out_off.(node) to t.out_off.(node + 1) - 1 do
        t.ov.(p) <- (f lor (t.ov.(p) land os.(p))) land ones
      done
    end
  done;
  (* 6. post-commit divergence: every registered plane (P1) *)
  for p = 0 to Array.length t.ov - 1 do
    cdiff := !cdiff lor against_lane0 t t.ov.(p)
  done;
  for j = 0 to Array.length st_v0 - 1 do
    cdiff := !cdiff lor against_lane0 t st_v0.(j);
    cdiff := !cdiff lor against_lane0 t st_v1.(j)
  done;
  (* dynamic state: each lane's protocol signature AND recovery counter
     against lane 0 — recoveries are classifier evidence (Masked_by_retx,
     Livelock) but excluded from the signature, so a fault whose only
     trace is an extra NACK recovery must still flag its lane here *)
  if t.has_dyn then begin
    for j = 0 to Array.length t.st_retx - 1 do
      if t.st_retx.(j) then begin
        let sts = t.xst.(j) in
        let c0 = RS.signature_code sts.(0) and r0 = RS.recoveries sts.(0) in
        for l = 1 to t.lanes - 1 do
          if RS.signature_code sts.(l) <> c0 || RS.recoveries sts.(l) <> r0
          then cdiff := !cdiff lor (1 lsl l)
        done
      end
    done;
    for e = 0 to t.n_edges - 1 do
      match t.lg.(e) with
      | None -> ()
      | Some g ->
          cdiff := !cdiff lor against_lane0 t g.lg_v;
          let t0 = g.lg_timer.(0) and c0 = g.lg_count.(0) in
          for l = 1 to t.lanes - 1 do
            if g.lg_timer.(l) <> t0 || g.lg_count.(l) <> c0 then
              cdiff := !cdiff lor (1 lsl l)
          done
    done
  end;
  (* 7. disarm the masks and log the cycle *)
  if !armed then
    for i = 0 to t.n_specs - 1 do
      let s = t.specs.(i) in
      if cyc >= s.from_cycle && cyc < s.from_cycle + s.duration then begin
        match (s.eff, s.site) with
        | Flip_valid, Forward { edge; seg } ->
            t.fwd_xor.(t.seg_off.(edge) + seg) <- 0
        | Force_stop, Backward { edge; boundary } ->
            t.stop_or.(t.seg_off.(edge) + boundary) <- 0
        | Drop_stop, Backward { edge; boundary } ->
            t.stop_andn.(t.seg_off.(edge) + boundary) <- 0
        | Upset, Register { edge; station } ->
            t.upset.(t.st_off.(edge) + station) <- 0
        | Link_fault _, Link { edge; station } ->
            t.x_link.(t.st_off.(edge) + station).(i + 1) <- RS.Link_ok
        | Watch, _ -> ()
        | _ -> assert false
      end
    done;
  t.diff <- t.diff lor !cdiff;
  if cyc >= Array.length t.hist then begin
    let cap = max 64 (2 * Array.length t.hist) in
    let h = Array.make cap 0 in
    Array.blit t.hist 0 h 0 (Array.length t.hist);
    t.hist <- h
  end;
  t.hist.(cyc) <- !cdiff;
  t.cycle <- cyc + 1

let run t ~cycles =
  for _ = 1 to cycles do
    step t
  done

(* Per-lane results.  Clean lanes answer from the accumulated [diff]
   word alone; only divergent lanes pay for exact counters, recovered
   from the cycle-major divergence history through the [Bitset] lane
   views (transpose for the first-divergence scan, lane extraction +
   popcount for the cycle counts). *)
let lane_reports t =
  let n = t.cycle in
  let hist_bits = Bitvec.Bitset.create (n * t.lanes) in
  let any = t.diff <> 0 in
  if any then
    for c = 0 to n - 1 do
      let w = t.hist.(c) in
      if w <> 0 then
        for l = 1 to t.lanes - 1 do
          if (w lsr l) land 1 = 1 then
            Bitvec.Bitset.set hist_bits ((c * t.lanes) + l)
        done
    done;
  let by_lane =
    if any then Bitvec.Bitset.transpose ~rows:n ~cols:t.lanes hist_bits
    else hist_bits
  in
  Array.init t.n_specs (fun i ->
      let lane = i + 1 in
      let diverged = (t.diff lsr lane) land 1 = 1 in
      let touched = (t.touched lsr lane) land 1 = 1 in
      if not diverged then
        {
          lr_diverged = false;
          lr_touched = touched;
          lr_first_divergence = None;
          lr_divergent_cycles = 0;
        }
      else begin
        let plane =
          Bitvec.Bitset.lane_extract ~lanes:t.lanes ~lane hist_bits
        in
        let first = ref None in
        (let c = ref 0 in
         while !first = None && !c < n do
           (* lane-major row of the transposed plane: bit lane*n + c *)
           if Bitvec.Bitset.get by_lane ((lane * n) + !c) then
             first := Some !c;
           incr c
         done);
        {
          lr_diverged = true;
          lr_touched = touched;
          lr_first_divergence = !first;
          lr_divergent_cycles = Bitvec.Bitset.popcount plane;
        }
      end)
