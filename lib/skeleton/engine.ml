module Token = Lid.Token
module Net = Topology.Network

exception Combinational_stop_cycle of string

type source_state = {
  src_pattern : Topology.Pattern.t;
  mutable next_val : int;
  mutable buf : Token.t;
}

type sink_state = {
  snk_pattern : Topology.Pattern.t;
  mutable consumed_rev : int list;
  mutable consumed_n : int;
}

type node_impl =
  | I_shell of { shell : Lid.Shell.t; mutable st : Lid.Shell.state }
  | I_source of source_state
  | I_sink of sink_state

type fault_hooks = {
  fh_forward : cycle:int -> edge:Net.edge_id -> seg:int -> Token.t -> Token.t;
  fh_stop : cycle:int -> edge:Net.edge_id -> boundary:int -> bool -> bool;
  fh_station :
    cycle:int ->
    edge:Net.edge_id ->
    station:int ->
    Lid.Relay_station.state ->
    Lid.Relay_station.state;
  fh_link :
    cycle:int ->
    edge:Net.edge_id ->
    station:int ->
    Lid.Relay_station.link_fault;
}

(* Entrance gate of a variable-latency channel without a retransmitting
   station: a one-token register whose token is presented to the chain
   only once its per-launch delay (from the channel's compiled table) has
   elapsed.  Accept-on-departure keeps rate 1 when the delay is 0. *)
type gate = {
  g_table : int array;
  mutable g_tok : Token.t;
  mutable g_timer : int;
  mutable g_count : int;
}

type t = {
  net : Net.t;
  flavour : Lid.Protocol.flavour;
  impls : node_impl array;
  rs : Lid.Relay_station.state array array; (* edge id -> chain states *)
  gates : gate option array; (* edge id -> entrance gate *)
  fired : int array;
  gated : int array; (* cycles lost to back-pressure, per node *)
  starved : int array; (* cycles lost waiting for void inputs, per node *)
  env_period : int;
  mutable cycle : int;
  mutable hooks : fault_hooks option;
  mutable monitor : (snapshot -> unit) option;
  sig_intern : (string, int) Hashtbl.t;
  (* per-cycle scratch, rebuilt by [resolve] *)
  seg : Token.t array array; (* edge id -> m+1 forward tokens *)
  dst_token : Token.t array;
  out_stops : bool array option array; (* node id -> stops seen per out port *)
  fire : fire_state array;
}

and fire_state = F_unknown | F_in_progress | F_done of bool

and probe = {
  pr_src_tok : Token.t;
  pr_src_stop : bool;
  pr_dst_tok : Token.t;
  pr_dst_stop : bool;
  pr_occupancy : int;
}

and snapshot = {
  snap_cycle : int;
  node_out : (string * Token.t array) list;
  node_fired : (string * bool) list;
  node_stopped : (string * bool) list;
  rs_contents : (string * Token.t list) list;
  chan_dst : (Net.edge_id * Token.t * bool) list;
  chan_probe : (Net.edge_id * probe) list;
  sink_got : (string * Token.t) list;
}

let make_impl flavour (n : Net.node) =
  match n.kind with
  | Net.Shell pearl ->
      let shell = Lid.Shell.create ~flavour pearl in
      I_shell { shell; st = Lid.Shell.initial shell }
  | Net.Source { pattern; start } ->
      I_source
        { src_pattern = pattern; next_val = start + 1;
          buf = Token.valid start }
  | Net.Sink { pattern } ->
      I_sink { snk_pattern = pattern; consumed_rev = []; consumed_n = 0 }

(* Initial station states for a chain; a latency profile on a channel with
   a retransmitting station drives the FIRST such station's internal hop. *)
let chain_states net (e : Net.edge) =
  let table = Net.delay_table net e.id in
  let used = ref false in
  Array.of_list
    (List.map
       (fun k ->
         match k with
         | Lid.Relay_station.Retx _ when not !used -> (
             used := true;
             match table with
             | Some table -> Lid.Relay_station.initial ~table k
             | None -> Lid.Relay_station.initial k)
         | _ -> Lid.Relay_station.initial k)
       e.stations)

let make_gate net (e : Net.edge) =
  if Net.edge_is_gated net e.id then
    match Net.delay_table net e.id with
    | Some g_table ->
        Some { g_table; g_tok = Token.void; g_timer = 0; g_count = 0 }
    | None -> None
  else None

let create ?(flavour = Lid.Protocol.Optimized) net =
  let nodes = Array.of_list (Net.nodes net) in
  {
    net;
    flavour;
    impls = Array.map (make_impl flavour) nodes;
    rs = Array.of_list (List.map (chain_states net) (Net.edges net));
    gates = Array.of_list (List.map (make_gate net) (Net.edges net));
    fired = Array.make (Array.length nodes) 0;
    gated = Array.make (Array.length nodes) 0;
    starved = Array.make (Array.length nodes) 0;
    env_period = Net.env_period net;
    cycle = 0;
    hooks = None;
    monitor = None;
    sig_intern = Hashtbl.create 1024;
    seg =
      Array.of_list
        (List.map
           (fun (e : Net.edge) ->
             Array.make (List.length e.stations + 1) Token.void)
           (Net.edges net));
    dst_token = Array.make (Net.n_edges net) Token.void;
    out_stops = Array.make (Array.length nodes) None;
    fire = Array.make (Array.length nodes) F_unknown;
  }

let network t = t.net
let flavour t = t.flavour
let cycle t = t.cycle
let set_fault_hooks t hooks = t.hooks <- hooks
let set_monitor t monitor = t.monitor <- monitor

let reset t =
  Array.iteri
    (fun i n -> t.impls.(i) <- make_impl t.flavour n)
    (Array.of_list (Net.nodes t.net));
  List.iteri
    (fun i (e : Net.edge) ->
      t.rs.(i) <- chain_states t.net e;
      t.gates.(i) <- make_gate t.net e)
    (Net.edges t.net);
  Array.fill t.fired 0 (Array.length t.fired) 0;
  Array.fill t.gated 0 (Array.length t.gated) 0;
  Array.fill t.starved 0 (Array.length t.starved) 0;
  t.cycle <- 0

(* ------------------------------------------------------------------ *)
(* Per-cycle wire resolution.                                          *)

let presented_token t node port =
  match t.impls.(node) with
  | I_shell { st; _ } -> Lid.Shell.present st port
  | I_source { buf; _ } -> buf
  | I_sink _ -> invalid_arg "Engine: sink has no outputs"

let forward_tokens t =
  let fwd =
    match t.hooks with
    | None -> fun ~edge:_ ~seg:_ tok -> tok
    | Some h -> fun ~edge ~seg tok -> h.fh_forward ~cycle:t.cycle ~edge ~seg tok
  in
  List.iter
    (fun (e : Net.edge) ->
      let seg = t.seg.(e.id) in
      let head =
        match t.gates.(e.id) with
        | Some g -> if g.g_timer = 0 then g.g_tok else Token.void
        | None -> presented_token t e.src.node e.src.port
      in
      seg.(0) <- fwd ~edge:e.id ~seg:0 head;
      Array.iteri
        (fun j st ->
          seg.(j + 1) <-
            fwd ~edge:e.id ~seg:(j + 1)
              (Lid.Relay_station.present st ~input:seg.(j)))
        t.rs.(e.id);
      t.dst_token.(e.id) <- seg.(Array.length seg - 1))
    (Net.edges t.net)

(* The stop crossing boundary [b] of edge [e] (b = 0 reaches the producer,
   b > 0 reaches station b-1), after any injected stop fault. *)
let stop_at t (e : Net.edge) ~boundary raw =
  match t.hooks with
  | None -> raw
  | Some h -> h.fh_stop ~cycle:t.cycle ~edge:e.id ~boundary raw

let sink_stalls pattern ~cycle = Topology.Pattern.active pattern ~cycle

(* Recursive fire/stop resolution.  [fire_of] computes whether a shell-like
   node fires this cycle; station-less channels make it depend on the
   downstream node's fire decision. *)
let rec fire_of t node =
  match t.fire.(node) with
  | F_done f -> f
  | F_in_progress ->
      raise
        (Combinational_stop_cycle
           (Printf.sprintf
              "combinational stop cycle through %S: a loop of station-less \
               channels between shells"
              (Net.node t.net node).name))
  | F_unknown ->
      t.fire.(node) <- F_in_progress;
      let stops = out_stops_of t node in
      let f =
        match t.impls.(node) with
        | I_shell { shell; st } ->
            let inputs =
              Array.map
                (fun (e : Net.edge) -> t.dst_token.(e.id))
                (Net.in_edges t.net node)
            in
            Lid.Shell.fires shell st ~inputs ~out_stops:stops
        | I_source s ->
            let active = Topology.Pattern.active s.src_pattern ~cycle:t.cycle in
            let gated =
              stops.(0)
              &&
              (match t.flavour with
              | Lid.Protocol.Original -> true
              | Lid.Protocol.Optimized -> Token.is_valid s.buf)
            in
            active && not gated
        | I_sink _ -> false
      in
      t.fire.(node) <- F_done f;
      f

(* The stop each output port of [node] observes this cycle. *)
and out_stops_of t node =
  match t.out_stops.(node) with
  | Some stops -> stops
  | None ->
      let stops =
        Array.map (fun (e : Net.edge) -> consumer_stop t e) (Net.out_edges t.net node)
      in
      t.out_stops.(node) <- Some stops;
      stops

(* The stop asserted by the consumer side of channel [e]'s last segment. *)
and consumer_stop t (e : Net.edge) =
  let raw =
    match t.gates.(e.id) with
    | Some g ->
        (* the gate holds its token while the delay elapses or the chain
           refuses it; either way the producer must wait *)
        Token.is_valid g.g_tok && (g.g_timer > 0 || chain_head_stop t e)
    | None -> chain_head_stop t e
  in
  stop_at t e ~boundary:0 raw

(* The stop facing whatever feeds the relay chain (the producer, or the
   channel's entrance gate). *)
and chain_head_stop t (e : Net.edge) =
  if t.rs.(e.id) <> [||] then Lid.Relay_station.stop_upstream t.rs.(e.id).(0)
  else dst_stop t e

(* The stop asserted by the node at the destination of [e] (reached either
   directly or by the last relay station of the chain). *)
and dst_stop t (e : Net.edge) =
  match t.impls.(e.dst.node) with
  | I_sink s -> sink_stalls s.snk_pattern ~cycle:t.cycle
  | I_shell _ ->
      let fired = fire_of t e.dst.node in
      if fired then false
      else (
        match t.flavour with
        | Lid.Protocol.Original -> true
        | Lid.Protocol.Optimized -> Token.is_valid t.dst_token.(e.id))
  | I_source _ -> invalid_arg "Engine: source has no inputs"

let resolve t =
  Array.fill t.fire 0 (Array.length t.fire) F_unknown;
  Array.fill t.out_stops 0 (Array.length t.out_stops) None;
  forward_tokens t;
  Array.iteri (fun node _ ->
      match t.impls.(node) with
      | I_shell _ | I_source _ -> ignore (fire_of t node)
      | I_sink _ -> ())
    t.impls

(* ------------------------------------------------------------------ *)
(* Clock edge.                                                         *)

let commit_gate t (e : Net.edge) g =
  (* all reads below are pre-commit state: the chain-head stop still
     reflects the stations' resolved-cycle occupancy *)
  let input = presented_token t e.src.node e.src.port in
  let was_valid = Token.is_valid g.g_tok in
  let departs = was_valid && g.g_timer = 0 && not (chain_head_stop t e) in
  let accept = Token.is_valid input && ((not was_valid) || departs) in
  if accept then begin
    g.g_tok <- input;
    g.g_timer <- g.g_table.(g.g_count);
    g.g_count <- (g.g_count + 1) mod Array.length g.g_table
  end
  else if departs then g.g_tok <- Token.void
  else if was_valid && g.g_timer > 0 then g.g_timer <- g.g_timer - 1

let commit t =
  (* Relay station chains: stop seen by station j is the (pre-step) stop of
     station j+1, or the consumer stop for the last station.  Entrance
     gates commit first — they only read pre-step chain state. *)
  List.iter
    (fun (e : Net.edge) ->
      (match t.gates.(e.id) with
      | Some g -> commit_gate t e g
      | None -> ());
      let chain = t.rs.(e.id) in
      let m = Array.length chain in
      if m > 0 then begin
        let stop_in =
          Array.init m (fun j ->
              let raw =
                if j = m - 1 then dst_stop t e
                else Lid.Relay_station.stop_upstream chain.(j + 1)
              in
              stop_at t e ~boundary:(j + 1) raw)
        in
        let link j =
          match t.hooks with
          | None -> Lid.Relay_station.Link_ok
          | Some h -> h.fh_link ~cycle:t.cycle ~edge:e.id ~station:j
        in
        for j = 0 to m - 1 do
          chain.(j) <-
            Lid.Relay_station.step ~flavour:t.flavour ~link:(link j) chain.(j)
              ~input:t.seg.(e.id).(j) ~stop_in:stop_in.(j)
        done;
        match t.hooks with
        | None -> ()
        | Some h ->
            for j = 0 to m - 1 do
              chain.(j) <-
                h.fh_station ~cycle:t.cycle ~edge:e.id ~station:j chain.(j)
            done
      end)
    (Net.edges t.net);
  (* Shells, sources, sinks. *)
  Array.iteri
    (fun node impl ->
      match impl with
      | I_shell sh ->
          let inputs =
            Array.map
              (fun (e : Net.edge) -> t.dst_token.(e.id))
              (Net.in_edges t.net node)
          in
          let out_stops = out_stops_of t node in
          if fire_of t node then t.fired.(node) <- t.fired.(node) + 1
          else begin
            (* attribute the lost cycle: back-pressure beats starvation
               when both hold (the stop is what the designer can fix) *)
            let stopped =
              Array.exists2
                (fun stop tok ->
                  stop
                  &&
                  match t.flavour with
                  | Lid.Protocol.Original -> true
                  | Lid.Protocol.Optimized -> Token.is_valid tok)
                out_stops
                (Lid.Shell.presented sh.st)
            in
            if stopped then t.gated.(node) <- t.gated.(node) + 1
            else if not (Array.for_all Token.is_valid inputs) then
              t.starved.(node) <- t.starved.(node) + 1
          end;
          sh.st <- Lid.Shell.step sh.shell sh.st ~inputs ~out_stops
      | I_source s ->
          let stops = out_stops_of t node in
          if fire_of t node then begin
            t.fired.(node) <- t.fired.(node) + 1;
            s.buf <- Token.valid s.next_val;
            s.next_val <- s.next_val + 1
          end
          else if Token.is_valid s.buf && stops.(0) then ()
          else s.buf <- Token.void
      | I_sink s ->
          let e = (Net.in_edges t.net node).(0) in
          let tok = t.dst_token.(e.id) in
          if Token.is_valid tok && not (sink_stalls s.snk_pattern ~cycle:t.cycle)
          then begin
            s.consumed_rev <- Token.value tok :: s.consumed_rev;
            s.consumed_n <- s.consumed_n + 1
          end)
    t.impls;
  t.cycle <- t.cycle + 1

(* Build the wire-level snapshot of the current (resolved) cycle. *)
let capture t =
  let name n = (Net.node t.net n).name in
  let node_out, node_fired, node_stopped =
    Array.to_list t.impls
    |> List.mapi (fun i impl -> (i, impl))
    |> List.filter_map (fun (i, impl) ->
           match impl with
           | I_shell { st; _ } ->
               let stops = out_stops_of t i in
               let bufs = Lid.Shell.presented st in
               let gated =
                 Array.exists2
                   (fun s tok ->
                     s
                     &&
                     match t.flavour with
                     | Lid.Protocol.Original -> true
                     | Lid.Protocol.Optimized -> Token.is_valid tok)
                   stops bufs
               in
               Some ((name i, bufs), (name i, fire_of t i), (name i, gated))
           | I_source s ->
               let stops = out_stops_of t i in
               let gated =
                 stops.(0)
                 &&
                 (match t.flavour with
                 | Lid.Protocol.Original -> true
                 | Lid.Protocol.Optimized -> Token.is_valid s.buf)
               in
               Some ((name i, [| s.buf |]), (name i, fire_of t i), (name i, gated))
           | I_sink _ -> None)
    |> fun triples ->
    ( List.map (fun (a, _, _) -> a) triples,
      List.map (fun (_, b, _) -> b) triples,
      List.map (fun (_, _, c) -> c) triples )
  in
  let rs_contents =
    List.map
      (fun (e : Net.edge) ->
        let label =
          Printf.sprintf "%s->%s" (name e.src.node) (name e.dst.node)
        in
        let gate_toks =
          match t.gates.(e.id) with
          | Some g when Token.is_valid g.g_tok -> [ g.g_tok ]
          | _ -> []
        in
        ( label,
          gate_toks
          @ (Array.to_list t.rs.(e.id)
            |> List.concat_map Lid.Relay_station.tokens) ))
      (Net.edges t.net)
  in
  let chan_dst =
    List.map
      (fun (e : Net.edge) -> (e.id, t.dst_token.(e.id), dst_stop t e))
      (Net.edges t.net)
  in
  let chan_probe =
    List.map
      (fun (e : Net.edge) ->
        ( e.id,
          {
            pr_src_tok = presented_token t e.src.node e.src.port;
            pr_src_stop = consumer_stop t e;
            pr_dst_tok = t.dst_token.(e.id);
            pr_dst_stop = dst_stop t e;
            pr_occupancy =
              Array.fold_left
                (fun acc st -> acc + Lid.Relay_station.occupancy st)
                (match t.gates.(e.id) with
                | Some g when Token.is_valid g.g_tok -> 1
                | _ -> 0)
                t.rs.(e.id);
          } ))
      (Net.edges t.net)
  in
  let sink_got =
    Array.to_list t.impls
    |> List.mapi (fun i impl -> (i, impl))
    |> List.filter_map (fun (i, impl) ->
           match impl with
           | I_sink s ->
               let e = (Net.in_edges t.net i).(0) in
               let tok = t.dst_token.(e.id) in
               let got =
                 if
                   Token.is_valid tok
                   && not (sink_stalls s.snk_pattern ~cycle:t.cycle)
                 then tok
                 else Token.void
               in
               Some (name i, got)
           | _ -> None)
  in
  {
    snap_cycle = t.cycle;
    node_out;
    node_fired;
    node_stopped;
    rs_contents;
    chan_dst;
    chan_probe;
    sink_got;
  }

let step t =
  resolve t;
  (match t.monitor with Some f -> f (capture t) | None -> ());
  commit t

let run t ~cycles =
  for _ = 1 to cycles do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Observation.                                                        *)

let fired_count t node = t.fired.(node)
let gated_count t node = t.gated.(node)
let starved_count t node = t.starved.(node)

let sink_values t node =
  match t.impls.(node) with
  | I_sink s -> List.rev s.consumed_rev
  | _ -> invalid_arg "Engine.sink_values: not a sink"

let sink_count t node =
  match t.impls.(node) with
  | I_sink s -> s.consumed_n
  | _ -> invalid_arg "Engine.sink_count: not a sink"

(* Dense integer for an entrance gate's protocol state; the same packing
   is used by the packed engine's signature words. *)
let gate_code g =
  (if Token.is_valid g.g_tok then 1 else 0)
  lor (g.g_timer lsl 1)
  lor (g.g_count lsl 16)

let recovery_count t =
  Array.fold_left
    (fun acc chain ->
      Array.fold_left
        (fun acc st -> acc + Lid.Relay_station.recoveries st)
        acc chain)
    0 t.rs

let dup_drop_count t =
  Array.fold_left
    (fun acc chain ->
      Array.fold_left
        (fun acc st -> acc + Lid.Relay_station.dup_discards st)
        acc chain)
    0 t.rs

let signature t =
  let buf = Buffer.create 64 in
  Array.iter
    (fun impl ->
      match impl with
      | I_shell { st; _ } ->
          Array.iter
            (fun tok -> Buffer.add_char buf (if Token.is_valid tok then 'v' else '.'))
            (Lid.Shell.presented st)
      | I_source s ->
          Buffer.add_char buf (if Token.is_valid s.buf then 'V' else '_')
      | I_sink _ -> Buffer.add_char buf 'k')
    t.impls;
  Array.iteri
    (fun eid chain ->
      Buffer.add_char buf '/';
      (match t.gates.(eid) with
      | Some g -> Buffer.add_string buf (Printf.sprintf "g%x;" (gate_code g))
      | None -> ());
      Array.iter
        (fun st ->
          (* occupancy plus the half station's registered stop (and, for a
             retransmitting station, its whole protocol state): all of it
             must partake in periodicity proofs *)
          let code = Lid.Relay_station.signature_code st in
          if code < 10 then Buffer.add_char buf (Char.chr (Char.code '0' + code))
          else Buffer.add_string buf (Printf.sprintf "x%x;" code))
        chain)
    t.rs;
  Buffer.add_string buf (Printf.sprintf "@%d" (t.cycle mod t.env_period));
  Buffer.contents buf

let signature_id t =
  let s = signature t in
  match Hashtbl.find_opt t.sig_intern s with
  | Some id -> id
  | None ->
      let id = Hashtbl.length t.sig_intern in
      Hashtbl.add t.sig_intern s id;
      id

let signature_intern_size t = Hashtbl.length t.sig_intern
let signature_intern_clear t = Hashtbl.reset t.sig_intern

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

let snapshot_next t =
  resolve t;
  let snap = capture t in
  (match t.monitor with Some f -> f snap | None -> ());
  commit t;
  snap
