(** Steady-state measurement by periodicity detection.

    A closed LID system with periodic environments is a deterministic
    finite-state machine at skeleton level, so its valid/stop behaviour is
    eventually periodic — the paper's "after a number of clock cycles ...
    each part of it behaves in a periodic fashion".  We detect the cycle by
    interning the skeleton signature (a dense int per distinct state, via
    {!Engine.signature_id} / {!Packed.signature_id}) and hashing ints, then
    measure throughput over exactly one period.

    The detection loop is engine-agnostic: the [_packed] variants run the
    same algorithm on the flat {!Packed} engine — the hot path for large
    generated topologies and parallel campaigns. *)

type report = {
  transient : int;
      (** cycles from the start of the analysis to the periodic regime.
          Relative to the engine's state when the analysis began, {e not}
          to cycle 0 — analyzing a warmed-up engine reports the residual
          transient.  An upper bound when [signature_capacity] forced a
          mid-run restart of the detection. *)
  period : int;
  node_throughput : (Topology.Network.node_id * float) list;
      (** firings per cycle over one period, for shells and sources *)
  sink_throughput : (Topology.Network.node_id * float) list;
      (** valid tokens consumed per cycle over one period *)
  deadlocked : bool;
      (** no shell or source fired at all during the measured period —
          decided on integer fired-count deltas, never on float rates.
          [false] for degenerate nets with no shell-like node. *)
}

val analyze :
  ?max_cycles:int -> ?signature_capacity:int -> Engine.t -> report option
(** Runs the engine from its current state until the skeleton state repeats,
    then measures one period.  Gives up (returning [None]) once [max_cycles]
    steps (default 100_000) were taken without a repeat — detection succeeds
    iff [transient + period <= max_cycles].  [signature_capacity] (default
    1_000_000) bounds the number of distinct signatures remembered; when
    exceeded, the tables are dropped and detection restarts at the current
    cycle, keeping memory O(capacity) at the price of [transient] becoming
    an upper bound.  The engine is left somewhere inside the periodic
    regime. *)

val analyze_packed :
  ?max_cycles:int -> ?signature_capacity:int -> Packed.t -> report option
(** {!analyze} over the packed engine. *)

val system_throughput : report -> float
(** Minimum firing rate over all shells and sources — the figure the paper
    calls system throughput (in a connected steady state all nodes settle
    to the same rate; the minimum is the conservative reading). *)

val steady_ratio_packed :
  ?max_cycles:int -> ?signature_capacity:int -> Packed.t -> (int * int) option
(** Exact steady-state system throughput as an integer ratio
    [(fired, period)]: the minimum over shells and sources of tokens
    fired during exactly one period, measured after the transient (the
    integer-valued counterpart of {!system_throughput}, for
    cross-multiplied comparison against static predictions).  [(0, 1)]
    for a degenerate net with no shell-like node; [None] when no period
    is found within the budget. *)

val transient_and_period :
  ?max_cycles:int -> ?signature_capacity:int -> Engine.t -> (int * int) option

val transient_and_period_packed :
  ?max_cycles:int -> ?signature_capacity:int -> Packed.t -> (int * int) option

val pp_report : Topology.Network.t -> Format.formatter -> report -> unit
