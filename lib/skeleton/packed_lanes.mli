(** Lane-parallel bit-sliced campaign engine.

    The skeleton's protocol state is pure boolean, so a native int can
    carry one independent run per bit position: lane 0 is the fault-free
    reference, lanes 1..W-1 each carry one injected fault applied as a
    per-lane mask on the corresponding wire at the fault's cycles.  A
    single word operation then advances up to {!max_lanes} campaign runs
    at once.

    The engine does not classify; it is a {e sound divergence filter}.
    Per cycle it XORs every observable plane against a broadcast of lane
    0 — registered planes after the clock edge, fire words, the
    consumer-side forward valid of every channel, and the
    producer-boundary handover word the monitors' token ledger consumes.
    A lane that never differs on any of these ran, observationally, the
    fault-free schedule: its classification can be synthesized from one
    recorded fault-free run ([Fault.Classify.masked_report]) instead of
    re-simulated.  Divergent lanes are handed back with exact per-lane
    counters, recovered from the cycle-major divergence history through
    {!Bitvec.Bitset.transpose} / {!Bitvec.Bitset.lane_extract}.

    Payload corruptions have no boolean dynamics; their sites are
    declared as {!constructor-Watch} and the engine instead records
    whether the wire was ever valid during the fault window
    ([lr_touched]) — an untouched corruption is a literal no-op.
    Register upsets always change occupancy and must not be filtered;
    declare them normally ({!constructor-Upset}) and treat their lanes as
    divergent regardless.

    Channel dynamics — retransmitting stations and entrance-gated
    variable-latency channels — do not fit one bit per lane: their state
    is integers (sequence numbers, replay buffers, delay counters).  The
    engine keeps one boxed {!Lid.Relay_station.state} per lane for each
    retx station, stepped through the station's own FSM, and per-lane
    delay counters for each gate, while every boolean wire around them
    stays word-parallel.  Their divergence plane compares each lane's
    [Relay_station.signature_code] {e and} its recovery counter against
    lane 0 (recoveries are classifier evidence but excluded from the
    signature).  Link-plane faults — flits corrupted, dropped or
    duplicated in flight — are injected per lane as
    {!constructor-Link_fault} on a {!constructor-Link} site; a flit
    completing its hop while the fault is armed marks the lane
    [lr_touched], which is the filter for the silent-corruption kind.

    This module is policy free: it takes neutral wire-site specs, not
    [Fault.Model] values (the skeleton library sits below the fault
    library).  [Fault.Campaign] owns the mapping and the eligibility
    rules. *)

val max_lanes : int
(** Lanes per machine word: [Sys.int_size] (63 on 64-bit).  Every
    lane-word operation is bitwise or a logical shift, so the sign bit
    carries a lane like any other. *)

(** {1 Fault sites}

    Sites name wires in one channel's relay chain, in producer-to-consumer
    order, exactly as [Fault.Model]: an edge with [m] stations has
    segments [0..m] (forward valid), boundaries [0..m] (backward stop)
    and stations [0..m-1]. *)

type site =
  | Forward of { edge : Topology.Network.edge_id; seg : int }
  | Backward of { edge : Topology.Network.edge_id; boundary : int }
  | Register of { edge : Topology.Network.edge_id; station : int }
  | Link of { edge : Topology.Network.edge_id; station : int }
      (** the in-flight hop inside a retransmitting station *)

type effect =
  | Flip_valid  (** XOR the forward valid wire at the site *)
  | Force_stop  (** OR the stop wire crossing the boundary *)
  | Drop_stop  (** AND-NOT the stop wire crossing the boundary *)
  | Upset  (** the relay-register upset transform, after the clock edge *)
  | Watch
      (** no dynamics; record whether the wire was valid while the fault
          was active (the boolean shadow of a payload corruption) *)
  | Link_fault of Lid.Relay_station.link_fault
      (** damage flits in flight; pairs only with {!constructor-Link},
          whose station must be retransmitting *)

type spec = {
  eff : effect;
  site : site;
  from_cycle : int;  (** first active cycle *)
  duration : int;  (** active cycles, [>= 1] *)
}

(** {1 Running} *)

type t

val create :
  ?flavour:Lid.Protocol.flavour ->
  lanes:int ->
  Topology.Network.t ->
  spec list ->
  t
(** [create ~lanes net specs] compiles [net] and binds spec [i] to lane
    [i + 1] (lane 0 stays fault free).  Needs [2 <= lanes <= max_lanes]
    and [List.length specs <= lanes - 1]; unused lanes idle as extra
    fault-free copies.  Raises [Invalid_argument] on a lane or site
    violation, including effect/site plane mismatches.  Default flavour
    [Optimized], as [Engine.create]. *)

val lanes : t -> int
val cycle : t -> int

val step : t -> unit
(** One clock cycle for every lane.  Raises
    [Engine.Combinational_stop_cycle] on the same station-less stop loops
    [Engine] rejects (detected once at compile, raised at the first
    step). *)

val run : t -> cycles:int -> unit

(** {1 Per-lane results} *)

type lane_report = {
  lr_diverged : bool;
      (** the lane differed from lane 0 on some observable plane *)
  lr_touched : bool;
      (** a {!constructor-Watch} site was valid during the fault window *)
  lr_first_divergence : int option;
      (** earliest divergent cycle, [None] iff not diverged *)
  lr_divergent_cycles : int;  (** number of divergent cycles *)
}

val lane_reports : t -> lane_report array
(** One report per spec (index [i] describes lane [i + 1]), covering the
    cycles run so far.  Clean lanes are answered from one accumulated
    word; only divergent lanes pay for exact counters. *)
