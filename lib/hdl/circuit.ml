type t = {
  name : string;
  inputs : Signal.t list;
  outputs : Signal.t list;
  nodes : Signal.t array;
  comb_order : Signal.t array;
  regs : Signal.t array;
}

type stats = {
  n_inputs : int;
  n_outputs : int;
  n_regs : int;
  n_comb : int;
  reg_bits : int;
}

let check_no_duplicate_names what signals =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let n = Signal.name_of s in
      if Hashtbl.mem tbl n then
        invalid_arg (Printf.sprintf "Circuit: duplicate %s name %S" what n);
      Hashtbl.add tbl n ())
    signals

(* Depth-first traversal over all edges (combinational and sequential),
   collecting every reachable node and validating local well-formedness. *)
let collect_reachable outputs =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let rec visit s =
    let id = Signal.uid s in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      (match s with
      | Signal.Wire { driver = None; _ } ->
          invalid_arg
            (Printf.sprintf "Circuit: wire %S has no driver" (Signal.name_of s))
      | Signal.Reg { d = None; _ } ->
          invalid_arg
            (Printf.sprintf "Circuit: register %S has no data input"
               (Signal.name_of s))
      | _ -> ());
      List.iter visit (Signal.deps s);
      List.iter visit (Signal.sequential_deps s);
      acc := s :: !acc
    end
  in
  List.iter visit outputs;
  !acc

(* Topological sort of combinational nodes; White/Gray/Black DFS.  A gray
   hit is a combinational cycle. *)
let topo_sort nodes =
  let color = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit path s =
    let id = Signal.uid s in
    match Hashtbl.find_opt color id with
    | Some `Black -> ()
    | Some `Gray ->
        (* [path] runs from the immediate parent back to the DFS root; only
           its prefix up to the previous occurrence of [s] is the cycle.
           Truncate there so the message lists exactly the cycle, closed by
           repeating [s] at both ends. *)
        let rec cycle_prefix = function
          | [] -> []
          | x :: tl ->
              if Signal.uid x = id then [ x ] else x :: cycle_prefix tl
        in
        let cycle =
          List.map Signal.name_of (s :: cycle_prefix path)
          |> String.concat " <- "
        in
        invalid_arg ("Circuit: combinational cycle: " ^ cycle)
    | None ->
        if Signal.is_comb_source s then Hashtbl.replace color id `Black
        else begin
          Hashtbl.replace color id `Gray;
          List.iter (visit (s :: path)) (Signal.deps s);
          Hashtbl.replace color id `Black;
          order := s :: !order
        end
  in
  List.iter (visit []) nodes;
  List.rev !order

let create ~name ~inputs ~outputs =
  List.iter
    (fun s ->
      match s with
      | Signal.Wire { name = Some _; _ } -> ()
      | _ -> invalid_arg "Circuit: outputs must be named wires")
    outputs;
  List.iter
    (fun s ->
      match s with
      | Signal.Input _ -> ()
      | _ -> invalid_arg "Circuit: inputs must be Input signals")
    inputs;
  check_no_duplicate_names "input" inputs;
  check_no_duplicate_names "output" outputs;
  let reachable = collect_reachable outputs in
  let declared = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.add declared (Signal.uid s) ()) inputs;
  List.iter
    (fun s ->
      match s with
      | Signal.Input { name = n; _ } when not (Hashtbl.mem declared (Signal.uid s))
        ->
          invalid_arg
            (Printf.sprintf "Circuit: reachable input %S not declared" n)
      | _ -> ())
    reachable;
  let comb_roots =
    outputs
    @ List.concat_map
        (fun s ->
          match s with Signal.Reg _ -> Signal.sequential_deps s | _ -> [])
        reachable
  in
  let comb_order = topo_sort comb_roots in
  let regs =
    List.filter (fun s -> match s with Signal.Reg _ -> true | _ -> false) reachable
  in
  {
    name;
    inputs;
    outputs;
    nodes = Array.of_list reachable;
    comb_order = Array.of_list comb_order;
    regs = Array.of_list regs;
  }

let name t = t.name
let inputs t = t.inputs
let outputs t = t.outputs
let comb_order t = t.comb_order
let regs t = t.regs
let nodes t = t.nodes

let find_by_name signals n =
  match List.find_opt (fun s -> Signal.name_of s = n) signals with
  | Some s -> s
  | None -> raise Not_found

let find_input t n = find_by_name t.inputs n
let find_output t n = find_by_name t.outputs n

let stats t =
  {
    n_inputs = List.length t.inputs;
    n_outputs = List.length t.outputs;
    n_regs = Array.length t.regs;
    n_comb = Array.length t.comb_order;
    reg_bits =
      Array.fold_left (fun acc r -> acc + Signal.width r) 0 t.regs;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "inputs=%d outputs=%d regs=%d (%d bits) comb-nodes=%d" s.n_inputs
    s.n_outputs s.n_regs s.reg_bits s.n_comb
