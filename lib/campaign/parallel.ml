(* One domain per core the runtime recommends — no artificial cap: the
   old [min 8] silently wasted cores on larger machines, and long-running
   consumers (the serve daemon) inherit whatever this returns.  The
   [LIDTOOL_JOBS] environment variable overrides the recommendation
   (values below 1 or unparsable are ignored); an explicit [~jobs]
   argument anywhere in this library still wins over both. *)
let default_jobs () =
  let recommended = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "LIDTOOL_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> recommended)
  | None -> recommended

let map ?jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs =
    min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
  in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n (Error Exit) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with r -> Ok r | exception e -> Error e));
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join others;
    (* every slot was written: the cursor hands out each index exactly once
       and joining establishes the ordering *)
    Array.to_list results
    |> List.map (function Ok r -> r | Error e -> raise e)
  end
