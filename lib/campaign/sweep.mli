(** Parallel steady-state sweeps (the E-series driver).

    Measures a batch of networks — typically one generated family swept
    over a size or station-count parameter — on the packed engine, one
    network per work item, fanned out with {!Parallel.map}.  Results come
    back in input order regardless of [jobs]. *)

type entry = {
  label : string;
  report : Skeleton.Measure.report option;
      (** [None] when no periodic regime was found within the budget *)
}

val measure :
  ?jobs:int ->
  ?flavour:Lid.Protocol.flavour ->
  ?max_cycles:int ->
  ?signature_capacity:int ->
  (string * Topology.Network.t) list ->
  entry list
(** [measure nets] analyzes each labelled network with
    {!Skeleton.Measure.analyze_packed} on a fresh {!Skeleton.Packed}
    engine. *)

val jitter_family :
  ?seed:int ->
  bounds:int list ->
  Topology.Network.t ->
  (string * Topology.Network.t) list
(** [jitter_family ~bounds net] is the labelled family of copies of [net]
    where every channel carries a [Jitter { base = 0; bound; seed }]
    latency profile, one copy per requested bound (bound [0] is the
    unmodified network).  {!Lid.Latency.table} decorrelates channels by
    mixing the edge id into the seed, so one [seed] drives the whole
    network deterministically.  Feed the result to {!measure} for a
    throughput-vs-jitter sweep. *)

val pp_entry : Format.formatter -> entry -> unit
(** One line: label, transient, period, system throughput (or
    ["no steady state"]). *)
