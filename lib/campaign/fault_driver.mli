(** Parallel fault-injection campaigns.

    Same contract as {!Fault.Campaign.run} — same seeded fault list, same
    classification, same report order — but the injections are fanned out
    over domains with {!Parallel.map}.  Each injection builds its own
    engines and monitors ({!Fault.Classify.classify} is self-contained);
    the shared baseline is read-only after construction.  The result is
    bit-identical to the serial run for every [jobs]. *)

val run :
  ?jobs:int ->
  ?on_report:(Fault.Classify.report -> unit) ->
  Fault.Campaign.config ->
  Topology.Network.t ->
  Fault.Campaign.result
(** [jobs] defaults to {!Parallel.default_jobs}.  [on_report] is invoked
    on the calling domain in campaign order — after the parallel phase,
    so in parallel mode it is a post-hoc iterator rather than live
    progress. *)
