(** Parallel fault-injection campaigns.

    Same contract as {!Fault.Campaign.run} — same seeded fault list, same
    classification, same report order — but the work is reorganized for
    throughput on two independent axes:

    - {b lanes}: faults are grouped into batches of [lanes - 1] and each
      batch is screened by one bit-sliced run of
      {!Skeleton.Packed_lanes}; non-divergent faults are answered from a
      recorded fault-free replay, the rest re-simulated on the packed
      engine ({!Fault.Classify.classify_fast}).
    - {b jobs}: batches (or single faults, with [lanes <= 1]) are fanned
      out over domains with {!Parallel.map}.

    A third axis — {b cone-incremental re-simulation} — changes how a
    fault that must be simulated is simulated: each worker records one
    fault-free run with state snapshots ({!Fault.Classify.record}), and
    every fault of its chunk restores to its window start, re-steps only
    the perturbed middle, and splices the recorded tail back on once the
    state has provably reconverged ({!Fault.Classify.classify_incr}).
    On the lane path, faults are grouped into batches by the
    representative edge of their fault site's forward cone
    ({!Skeleton.Packed.Cone}) so a batch's shared recording re-steps
    similar wakes; report order is restored afterwards.

    Every injection (and the shared baseline/replay) is self-contained
    and read-only once built, so the result is bit-identical to the
    serial run for every [jobs], [lanes] and [cone] combination. *)

val run :
  ?jobs:int ->
  ?lanes:int ->
  ?cone:bool ->
  ?on_lanes:(int -> string option -> unit) ->
  ?on_report:(Fault.Classify.report -> unit) ->
  Fault.Campaign.config ->
  Topology.Network.t ->
  Fault.Campaign.result
(** [jobs] defaults to {!Parallel.default_jobs}; [lanes] to
    {!Skeleton.Packed_lanes.max_lanes} (clamped to it, [<= 1] disables
    lane batching).  Dynamic networks — variable-latency channels,
    retransmitting stations — ride the lane path like any other: the
    lane engine keeps per-lane go-back-N state and injects link-plane
    faults through it.

    [cone] selects the incremental path; default on, unless the
    [LIDTOOL_NO_CONE=1] environment variable is set or the estimated
    recording footprint across [jobs] workers exceeds the
    [LIDTOOL_CONE_MB] budget (default 512 MB) — either way the driver
    silently falls back to {!Fault.Classify.classify_fast} with
    identical reports.

    [on_lanes] is called once, before any classification, with the lane
    width actually used and, when that differs from the request, the
    reason it was downgraded (currently: the fault-free run was unusable
    as a replay).  [on_report] is invoked on the calling domain in
    campaign order — after the parallel phase, so in parallel mode it is
    a post-hoc iterator rather than live progress. *)
