(** Deterministic parallel map over OCaml domains.

    The unit of the campaign layer: [map ~jobs f xs] applies [f] to every
    element of [xs] on up to [jobs] domains and returns the results {e in
    input order} — the merge is positional, so the output is independent
    of scheduling, and a parallel campaign is bit-identical to a serial
    one.  Work is distributed by an atomic cursor (dynamic load balance,
    no chunking bias).

    [f] must be safe to run concurrently with itself: it may freely
    mutate state it creates, but must not write shared state.  Everything
    this library passes to [map] creates its own engines per item
    ({!Fault_driver}, {!Sweep}). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — one domain per
    available core, uncapped.  The [LIDTOOL_JOBS] environment variable
    (an integer [>= 1]) overrides the recommendation; invalid values are
    ignored.  An explicit [~jobs] argument always wins. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs] defaults to {!default_jobs}; [jobs <= 1] (or a singleton/empty
    list) degrades to [List.map] on the calling domain.  If applications
    of [f] raise, the exception of the {e lowest input index} is re-raised
    after all domains have been joined — again deterministic. *)
