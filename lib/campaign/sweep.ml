type entry = { label : string; report : Skeleton.Measure.report option }

let measure ?jobs ?flavour ?max_cycles ?signature_capacity nets =
  Parallel.map ?jobs
    (fun (label, net) ->
      let packed = Skeleton.Packed.create ?flavour net in
      let report =
        Skeleton.Measure.analyze_packed ?max_cycles ?signature_capacity packed
      in
      { label; report })
    nets

let jitter_family ?(seed = 1) ~bounds net =
  List.map
    (fun bound ->
      let label = Printf.sprintf "jitter=%d" bound in
      if bound = 0 then (label, net)
      else
        let profile = Lid.Latency.Jitter { base = 0; bound; seed } in
        let net' =
          List.fold_left
            (fun acc (e : Topology.Network.edge) ->
              Topology.Network.with_latency acc e.id (Some profile))
            net
            (Topology.Network.edges net)
        in
        (label, net'))
    bounds

let pp_entry fmt e =
  match e.report with
  | None -> Format.fprintf fmt "%-24s no steady state@." e.label
  | Some r ->
      Format.fprintf fmt "%-24s transient=%-6d period=%-6d throughput=%.4f%s@."
        e.label r.Skeleton.Measure.transient r.Skeleton.Measure.period
        (Skeleton.Measure.system_throughput r)
        (if r.Skeleton.Measure.deadlocked then " DEADLOCK" else "")
