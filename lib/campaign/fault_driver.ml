module Packed = Skeleton.Packed
module Model = Fault.Model
module Classify = Fault.Classify

let edge_of_fault (f : Model.t) =
  match f.site with
  | Model.Forward { edge; _ }
  | Model.Backward { edge; _ }
  | Model.Register { edge; _ }
  | Model.Link { edge; _ } ->
      edge

let env_flag name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let cone_budget_bytes () =
  let mb =
    match Sys.getenv_opt "LIDTOOL_CONE_MB" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 512)
    | None -> 512
  in
  mb * 1024 * 1024

(* Order-preserving split into chunks of [size]. *)
let chunk ~size items =
  if size < 1 then invalid_arg "Fault_driver.chunk";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 items

let window_starts faults = List.map (fun (f : Model.t) -> f.cycle) faults

(* A recording costs one monitored fault-free run plus snapshots; refuse
   the incremental path when [jobs] concurrent recordings would blow the
   budget (LIDTOOL_CONE_MB, default 512).  The per-snapshot word count is
   a deliberate overestimate of the packed state (planes, pearls,
   stations, sink tails). *)
let cone_fits (config : Fault.Campaign.config) net ~jobs ~faults =
  let edges = Topology.Network.n_edges net in
  let nodes = Topology.Network.n_nodes net in
  let snapshots =
    List.length (List.sort_uniq compare (window_starts faults))
    + (config.cycles / Classify.recording_checkpoint)
    + 2
  in
  let state_words = nodes + (4 * edges) + 16 in
  let estimate =
    Classify.recording_estimate ~cycles:config.cycles ~edges ~snapshots
      ~state_words
  in
  estimate * jobs <= cone_budget_bytes ()

let run ?jobs ?(lanes = Skeleton.Packed_lanes.max_lanes) ?cone ?on_lanes
    ?on_report (config : Fault.Campaign.config) net =
  let faults = Fault.Campaign.faults_of_config config net in
  let baseline =
    Classify.baseline ~cycles:config.cycles ~flavour:config.flavour net
  in
  let jobs_n =
    match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ()
  in
  let cone_on =
    (match cone with
    | Some b -> b
    | None -> not (env_flag "LIDTOOL_NO_CONE"))
    && faults <> []
    && cone_fits config net ~jobs:jobs_n ~faults
  in
  let note n reason = match on_lanes with Some f -> f n reason | None -> () in
  let reports =
    if lanes <= 1 then begin
      note 1 None;
      if not cone_on then
        Parallel.map ?jobs
          (fun fault -> Classify.classify_fast baseline fault)
          faults
      else begin
        (* Contiguous chunks, about two per worker; a chunk below four
           faults cannot amortize its recording's fault-free run. *)
        let n = List.length faults in
        let size = max 4 ((n + (2 * jobs_n) - 1) / (2 * jobs_n)) in
        List.concat
          (Parallel.map ?jobs
             (fun ch ->
               match
                 Classify.record baseline ~window_starts:(window_starts ch)
               with
               | None -> List.map (Classify.classify_fast baseline) ch
               | Some rc -> List.map (Classify.classify_incr baseline rc) ch)
             (chunk ~size faults))
      end
    end
    else begin
      let lanes = min lanes Skeleton.Packed_lanes.max_lanes in
      let replay = Classify.replay baseline in
      (match replay with
      | None ->
          (* every batch will re-simulate each fault individually *)
          note 1
            (Some
               "fault-free run unusable as a replay (monitor violation or \
                stream mismatch); classifying every fault individually")
      | Some _ -> note lanes None);
      (* Group faults whose cones overlap: one packed engine computes
         (and memoizes) each channel's forward cone, and sorting by the
         cone's representative edge clusters faults that perturb the
         same region into the same lane batch, so a batch's shared
         recording re-steps similar wakes.  The stable sort is undone
         after classification — reports keep campaign order. *)
      let tagged = List.mapi (fun i f -> (i, f)) faults in
      let ordered =
        if not cone_on then tagged
        else begin
          let eng = Packed.create ~flavour:config.flavour net in
          let rep f =
            Packed.Cone.rep (Packed.Cone.of_edge eng (edge_of_fault f))
          in
          List.stable_sort (fun (_, a) (_, b) -> compare (rep a) (rep b)) tagged
        end
      in
      let classified =
        Parallel.map ?jobs
          (fun batch ->
            let fs = List.map snd batch in
            let classify =
              if not cone_on then None
              else begin
                (* Lazy: a batch whose lanes all filter clean never pays
                   for its recording. *)
                let rc =
                  lazy
                    (Classify.record baseline ~window_starts:(window_starts fs))
                in
                Some
                  (fun fault ->
                    match Lazy.force rc with
                    | Some rc -> Classify.classify_incr baseline rc fault
                    | None -> Classify.classify_fast baseline fault)
              end
            in
            let rs =
              Fault.Campaign.classify_lane_batch ?classify baseline replay
                config net ~lanes fs
            in
            List.map2 (fun (i, _) r -> (i, r)) batch rs)
          (chunk ~size:(lanes - 1) ordered)
      in
      List.concat classified
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      |> List.map snd
    end
  in
  (match on_report with Some f -> List.iter f reports | None -> ());
  { Fault.Campaign.config; net; reports }
