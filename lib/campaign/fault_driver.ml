let run ?jobs ?(lanes = Skeleton.Packed_lanes.max_lanes) ?on_lanes ?on_report
    (config : Fault.Campaign.config) net =
  let faults = Fault.Campaign.faults_of_config config net in
  let baseline =
    Fault.Classify.baseline ~cycles:config.cycles ~flavour:config.flavour net
  in
  let note n reason = match on_lanes with Some f -> f n reason | None -> () in
  let reports =
    if lanes <= 1 then begin
      note 1 None;
      Parallel.map ?jobs
        (fun fault -> Fault.Classify.classify_fast baseline fault)
        faults
    end
    else begin
      let lanes = min lanes Skeleton.Packed_lanes.max_lanes in
      let replay = Fault.Classify.replay baseline in
      (match replay with
      | None ->
          (* every batch will re-simulate each fault individually *)
          note 1
            (Some
               "fault-free run unusable as a replay (monitor violation or \
                stream mismatch); classifying every fault individually")
      | Some _ -> note lanes None);
      List.concat
        (Parallel.map ?jobs
           (fun batch ->
             Fault.Campaign.classify_lane_batch baseline replay config net
               ~lanes batch)
           (Fault.Campaign.lane_batches ~lanes faults))
    end
  in
  (match on_report with Some f -> List.iter f reports | None -> ());
  { Fault.Campaign.config; net; reports }
