let run ?jobs ?(lanes = Skeleton.Packed_lanes.max_lanes) ?on_report
    (config : Fault.Campaign.config) net =
  let faults = Fault.Campaign.faults_of_config config net in
  let baseline =
    Fault.Classify.baseline ~cycles:config.cycles ~flavour:config.flavour net
  in
  let reports =
    (* lane batching cannot model dynamic-LID state; classify per fault *)
    if lanes <= 1 || Topology.Network.has_dynamics net then
      Parallel.map ?jobs
        (fun fault -> Fault.Classify.classify_fast baseline fault)
        faults
    else begin
      let lanes = min lanes Skeleton.Packed_lanes.max_lanes in
      let replay = Fault.Classify.replay baseline in
      List.concat
        (Parallel.map ?jobs
           (fun batch ->
             Fault.Campaign.classify_lane_batch baseline replay config net
               ~lanes batch)
           (Fault.Campaign.lane_batches ~lanes faults))
    end
  in
  (match on_report with Some f -> List.iter f reports | None -> ());
  { Fault.Campaign.config; net; reports }
