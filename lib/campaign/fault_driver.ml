let run ?jobs ?on_report (config : Fault.Campaign.config) net =
  let faults = Fault.Campaign.faults_of_config config net in
  let baseline =
    Fault.Classify.baseline ~cycles:config.cycles ~flavour:config.flavour net
  in
  let reports =
    Parallel.map ?jobs (fun fault -> Fault.Classify.classify baseline fault) faults
  in
  (match on_report with Some f -> List.iter f reports | None -> ());
  { Fault.Campaign.config; net; reports }
