module G = Topology.Generators
module M = Skeleton.Measure

type case = {
  case_name : string;
  transient : int;
  period : int;
  throughput : float;
  cycles_per_rep : int;
  reps : int;
  engine_s : float;
  packed_s : float;
  speedup : float;
}

type campaign_stat = {
  injections : int;
  jobs : int;
  lanes : int;
  serial_s : float;
  parallel_s : float;
  lanes_s : float;
  campaign_speedup : float;
  lane_speedup : float;
}

type dynamic_stat = {
  dyn_injections : int;
  dyn_lanes : int;
  dyn_serial_s : float;
  dyn_lanes_s : float;
  dyn_speedup : float;
}

type result = {
  quick : bool;
  cases : case list;
  campaign : campaign_stat;
  dynamic : dynamic_stat;
  geomean_speedup : float;
}

exception Divergence of string

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Wall-clock on a shared machine jitters by tens of percent; the minimum
   over a few timed blocks is the standard stable estimator. *)
let time_best ~blocks f =
  let best = ref infinity in
  for _ = 1 to blocks do
    let (), d = time f in
    if d < !best then best := d
  done;
  !best

let report_key (r : M.report) =
  (r.transient, r.period, r.node_throughput, r.sink_throughput, r.deadlocked)

let bench_case ?max_cycles ?signature_capacity ~reps case_name net =
  (* one unmeasured pass per engine: check agreement, learn the figures *)
  let re =
    match M.analyze ?max_cycles ?signature_capacity (Skeleton.Engine.create net) with
    | Some r -> r
    | None -> raise (Divergence (case_name ^ ": engine found no steady state"))
  in
  let rp =
    match
      M.analyze_packed ?max_cycles ?signature_capacity
        (Skeleton.Packed.create net)
    with
    | Some r -> r
    | None -> raise (Divergence (case_name ^ ": packed found no steady state"))
  in
  if report_key re <> report_key rp then
    raise
      (Divergence
         (Printf.sprintf
            "%s: engine (transient %d, period %d) != packed (transient %d, \
             period %d)"
            case_name re.transient re.period rp.transient rp.period));
  let engine_s =
    time_best ~blocks:3 (fun () ->
        for _ = 1 to reps do
          ignore
            (M.analyze ?max_cycles ?signature_capacity
               (Skeleton.Engine.create net))
        done)
  in
  let packed_s =
    time_best ~blocks:3 (fun () ->
        for _ = 1 to reps do
          ignore
            (M.analyze_packed ?max_cycles ?signature_capacity
               (Skeleton.Packed.create net))
        done)
  in
  {
    case_name;
    transient = re.transient;
    period = re.period;
    throughput = M.system_throughput re;
    cycles_per_rep = re.transient + (2 * re.period);
    reps;
    engine_s;
    packed_s;
    speedup = (if packed_s > 0. then engine_s /. packed_s else infinity);
  }

let suite ~quick =
  let rng = Random.State.make [| 0xbe; 0x2c |] in
  (* an irregular environment: source up 4/5, sink stalled 2/7 — the
     env period of 35 keeps the steady-state search running long enough
     that per-cycle cost, not construction, is what gets measured *)
  let source_pattern = Topology.Pattern.periodic ~period:5 ~active:4 () in
  let sink_pattern = Topology.Pattern.periodic ~period:7 ~active:2 () in
  if quick then
    [
      ("chain-48", 3, G.chain ~n_shells:48 ());
      ("tree-d4", 3, G.tree ~depth:4 ());
      ( "ring-tapped-32",
        3,
        G.ring_tapped ~n_shells:32 ~source_pattern ~sink_pattern () );
      ( "loopy-20",
        3,
        G.random_loopy ~rng ~n_shells:20 ~extra_back_edges:3
          ~half_probability:0.3 () );
    ]
  else
    [
      ("chain-300", 3, G.chain ~n_shells:300 ());
      ("tree-d7", 3, G.tree ~depth:7 ());
      ( "ring-tapped-200",
        2,
        G.ring_tapped ~n_shells:200 ~source_pattern ~sink_pattern () );
      ( "loopy-120",
        2,
        G.random_loopy ~rng ~n_shells:120 ~extra_back_edges:6
          ~half_probability:0.3 () );
      ( "reconv-40",
        3,
        G.reconvergent ~r_short:40 ~r_long_head:40 ~r_long_tail:40 () );
    ]

let campaign_setup ~quick =
  let rng = Random.State.make [| 0xca; 0x4a |] in
  let net =
    if quick then G.random_loopy ~rng ~n_shells:6 ~extra_back_edges:1 ()
    else G.random_loopy ~rng ~n_shells:12 ~extra_back_edges:2 ()
  in
  let config =
    {
      Fault.Campaign.default_config with
      seed = 11;
      cycles = (if quick then 96 else 256);
      max_sites_per_kind = (if quick then 3 else 0);
    }
  in
  (config, net)

let bench_campaign ~quick ~jobs ~lanes =
  let config, net = campaign_setup ~quick in
  let serial, serial_s = time (fun () -> Fault.Campaign.run config net) in
  (* the two throughput axes, timed separately: domains only, then
     domains x lanes (the bit-sliced batches) *)
  let par, parallel_s =
    time (fun () -> Fault_driver.run ~jobs ~lanes:1 config net)
  in
  if serial.Fault.Campaign.reports <> par.Fault.Campaign.reports then
    raise (Divergence "parallel campaign reports differ from the serial run");
  let lp, lanes_s = time (fun () -> Fault_driver.run ~jobs ~lanes config net) in
  if serial.Fault.Campaign.reports <> lp.Fault.Campaign.reports then
    raise
      (Divergence "lane-parallel campaign reports differ from the serial run");
  {
    injections = List.length serial.Fault.Campaign.reports;
    jobs;
    lanes;
    serial_s;
    parallel_s;
    lanes_s;
    campaign_speedup =
      (if parallel_s > 0. then serial_s /. parallel_s else infinity);
    lane_speedup = (if lanes_s > 0. then serial_s /. lanes_s else infinity);
  }

(* The dynamic leg: a chain whose head channels are variable-latency and
   spanned by go-back-N stations, so the campaign exercises per-lane retx
   state, entrance-gate counters and the link-fault plane.  Timed
   single-core (jobs = 1) so the figure isolates the lane win itself.
   The kind mix emphasizes the planes the dynamic path adds — link
   faults, payload corruption, stop perturbations; the always-divergent
   kinds (valid flips, register upsets, long stop stick) are covered by
   the static campaign leg above and would only add identical serial
   work to both sides here.  The 1/3-duty source leaves most wires void
   on most cycles, so single-cycle faults frequently land on idle
   traffic and the fault-free replay answers them. *)
let dynamic_setup ~quick =
  let n_shells = if quick then 8 else 16 in
  let source_pattern = Topology.Pattern.periodic ~period:3 ~active:1 () in
  let net = G.chain ~n_shells ~source_pattern () in
  let dynamize net edge ~bound ~seed ~depth =
    let net =
      Topology.Network.with_stations net edge
        [ Lid.Relay_station.Retx { depth } ]
    in
    Topology.Network.with_latency net edge
      (Some (Lid.Latency.Jitter { base = 0; bound; seed }))
  in
  let net = dynamize net 0 ~bound:2 ~seed:7 ~depth:6 in
  let net = dynamize net 1 ~bound:1 ~seed:3 ~depth:5 in
  let config =
    {
      Fault.Campaign.default_config with
      seed = 23;
      kinds =
        [
          Fault.Model.Data_corrupt;
          Fault.Model.Stop_spurious;
          Fault.Model.Stop_drop;
          Fault.Model.Flit_corrupt;
          Fault.Model.Flit_corrupt_silent;
          Fault.Model.Flit_drop;
          Fault.Model.Flit_dup;
        ];
      cycles = (if quick then 128 else 256);
      max_sites_per_kind = (if quick then 4 else 0);
      injections_per_site = (if quick then 4 else 3);
    }
  in
  (config, net)

let bench_dynamic ~quick ~lanes =
  let config, net = dynamic_setup ~quick in
  let serial, dyn_serial_s = time (fun () -> Fault.Campaign.run config net) in
  let used = ref 1 in
  let lp, dyn_lanes_s =
    time (fun () ->
        Fault_driver.run ~jobs:1 ~lanes
          ~on_lanes:(fun n _ -> used := n)
          config net)
  in
  if serial.Fault.Campaign.reports <> lp.Fault.Campaign.reports then
    raise
      (Divergence
         "dynamic-net lane campaign reports differ from the serial run");
  {
    dyn_injections = List.length serial.Fault.Campaign.reports;
    dyn_lanes = !used;
    dyn_serial_s;
    dyn_lanes_s;
    dyn_speedup =
      (if dyn_lanes_s > 0. then dyn_serial_s /. dyn_lanes_s else infinity);
  }

let run_dynamic ?(quick = false) ?lanes () =
  let lanes =
    match lanes with
    | Some l -> max 1 (min l Skeleton.Packed_lanes.max_lanes)
    | None -> Skeleton.Packed_lanes.max_lanes
  in
  bench_dynamic ~quick ~lanes

let dynamic_json d =
  let f x = Printf.sprintf "%.6f" x in
  Printf.sprintf
    "{\n\
    \  \"injections\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"lanes\": %d,\n\
    \  \"serial_s\": %s,\n\
    \  \"lanes_s\": %s,\n\
    \  \"lane_speedup\": %s\n\
     }\n"
    d.dyn_injections d.dyn_lanes (f d.dyn_serial_s) (f d.dyn_lanes_s)
    (f d.dyn_speedup)

let pp_dynamic fmt d =
  Format.fprintf fmt
    "dynamic net, retx + jitter (%d injections): serial %.3fs, 1 job x %d \
     lanes %.3fs -> %.1fx@."
    d.dyn_injections d.dyn_serial_s d.dyn_lanes d.dyn_lanes_s d.dyn_speedup

(* The cone leg (E20): long horizons are where incremental
   re-simulation earns its keep — a fault window near the front of a
   1024-cycle run leaves ~768 post-window cycles that classify_fast
   re-simulates and classify_incr replaces with a splice once the wake
   has converged.  Two workloads: the retx + jitter chain (the dynamic
   E18 shape, every fault kind armed so plenty of lanes diverge) and a
   mesh campaign (the E19 NoC shape).  Four drivers each — the lane
   path and the flat path, cone off and on — all asserted bit-identical
   before any figure is reported.  Single-core (jobs = 1): the cone win
   must not hide behind domain parallelism. *)
let cone_setup ~quick =
  let horizon = if quick then 256 else 1024 in
  let chain =
    let net =
      G.chain
        ~n_shells:(if quick then 8 else 16)
        ~source_pattern:(Topology.Pattern.periodic ~period:3 ~active:1 ())
        ()
    in
    let dynamize net edge ~bound ~seed ~depth =
      let net =
        Topology.Network.with_stations net edge
          [ Lid.Relay_station.Retx { depth } ]
      in
      Topology.Network.with_latency net edge
        (Some (Lid.Latency.Jitter { base = 0; bound; seed }))
    in
    dynamize (dynamize net 0 ~bound:2 ~seed:7 ~depth:6) 1 ~bound:1 ~seed:3
      ~depth:5
  in
  let config =
    {
      Fault.Campaign.default_config with
      seed = 29;
      cycles = horizon;
      max_sites_per_kind = (if quick then 2 else 4);
      injections_per_site = 2;
    }
  in
  [
    ("retx-jitter-chain", config, chain);
    ("mesh-4x4", { config with seed = 31 }, G.mesh ~n:4 ~m:4 ());
  ]

type cone_stat = {
  co_workload : string;
  co_injections : int;
  co_cycles : int;
  co_lanes : int;
  co_lanes_off_s : float;
  co_lanes_on_s : float;
  co_flat_off_s : float;
  co_flat_on_s : float;
  co_lane_speedup : float;
  co_flat_speedup : float;
}

let bench_cone_workload ~lanes (name, (config : Fault.Campaign.config), net) =
  let reference = ref None in
  let check label (r : Fault.Campaign.result) =
    match !reference with
    | None -> reference := Some r.reports
    | Some rs ->
        if rs <> r.reports then
          raise
            (Divergence
               (Printf.sprintf "%s: %s reports differ from the baseline" name
                  label))
  in
  let used = ref 1 in
  let off, lanes_off_s =
    time (fun () ->
        Fault_driver.run ~jobs:1 ~lanes ~cone:false
          ~on_lanes:(fun n _ -> used := n)
          config net)
  in
  check "cone-off lane driver" off;
  let on, lanes_on_s =
    time (fun () -> Fault_driver.run ~jobs:1 ~lanes ~cone:true config net)
  in
  check "cone-on lane driver" on;
  let foff, flat_off_s =
    time (fun () -> Fault_driver.run ~jobs:1 ~lanes:1 ~cone:false config net)
  in
  check "cone-off flat driver" foff;
  let fon, flat_on_s =
    time (fun () -> Fault_driver.run ~jobs:1 ~lanes:1 ~cone:true config net)
  in
  check "cone-on flat driver" fon;
  {
    co_workload = name;
    co_injections = List.length off.Fault.Campaign.reports;
    co_cycles = config.cycles;
    co_lanes = !used;
    co_lanes_off_s = lanes_off_s;
    co_lanes_on_s = lanes_on_s;
    co_flat_off_s = flat_off_s;
    co_flat_on_s = flat_on_s;
    co_lane_speedup =
      (if lanes_on_s > 0. then lanes_off_s /. lanes_on_s else infinity);
    co_flat_speedup =
      (if flat_on_s > 0. then flat_off_s /. flat_on_s else infinity);
  }

let run_cone ?(quick = false) ?lanes () =
  let lanes =
    match lanes with
    | Some l -> max 2 (min l Skeleton.Packed_lanes.max_lanes)
    | None -> Skeleton.Packed_lanes.max_lanes
  in
  List.map (bench_cone_workload ~lanes) (cone_setup ~quick)

let cone_json stats =
  let f x = Printf.sprintf "%.6f" x in
  let workload s =
    Printf.sprintf
      "    {\n\
      \      \"workload\": %S,\n\
      \      \"injections\": %d,\n\
      \      \"cycles\": %d,\n\
      \      \"lanes\": %d,\n\
      \      \"lanes_cone_off_s\": %s,\n\
      \      \"lanes_cone_on_s\": %s,\n\
      \      \"flat_cone_off_s\": %s,\n\
      \      \"flat_cone_on_s\": %s,\n\
      \      \"lane_cone_speedup\": %s,\n\
      \      \"flat_cone_speedup\": %s\n\
      \    }"
      s.co_workload s.co_injections s.co_cycles s.co_lanes
      (f s.co_lanes_off_s) (f s.co_lanes_on_s) (f s.co_flat_off_s)
      (f s.co_flat_on_s) (f s.co_lane_speedup) (f s.co_flat_speedup)
  in
  Printf.sprintf "{\n  \"workloads\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map workload stats))

let pp_cone fmt stats =
  List.iter
    (fun s ->
      Format.fprintf fmt
        "%s (%d injections, %d cycles): lanes x%d %.3fs -> cone %.3fs \
         (%.1fx); flat %.3fs -> cone %.3fs (%.1fx)@."
        s.co_workload s.co_injections s.co_cycles s.co_lanes s.co_lanes_off_s
        s.co_lanes_on_s s.co_lane_speedup s.co_flat_off_s s.co_flat_on_s
        s.co_flat_speedup)
    stats

type lane_point = { lp_lanes : int; lp_s : float; lp_speedup : float }

let lane_sweep ?(quick = false) ?(widths = [ 1; 2; 8; 32; Skeleton.Packed_lanes.max_lanes ]) () =
  let config, net = campaign_setup ~quick in
  let serial, serial_s = time (fun () -> Fault.Campaign.run config net) in
  let points =
    List.map
      (fun lanes ->
        let r, s =
          time (fun () -> Fault.Campaign.run_lanes ~lanes config net)
        in
        if serial.Fault.Campaign.reports <> r.Fault.Campaign.reports then
          raise
            (Divergence
               (Printf.sprintf
                  "lane sweep at width %d differs from the serial run" lanes));
        {
          lp_lanes = lanes;
          lp_s = s;
          lp_speedup = (if s > 0. then serial_s /. s else infinity);
        })
      widths
  in
  (List.length serial.Fault.Campaign.reports, serial_s, points)

let run ?(quick = false) ?jobs ?lanes ?max_cycles ?signature_capacity () =
  let jobs = match jobs with Some j -> max 1 j | None -> Parallel.default_jobs () in
  let lanes =
    match lanes with
    | Some l -> max 1 (min l Skeleton.Packed_lanes.max_lanes)
    | None -> Skeleton.Packed_lanes.max_lanes
  in
  let cases =
    List.map
      (fun (name, reps, net) ->
        bench_case ?max_cycles ?signature_capacity ~reps name net)
      (suite ~quick)
  in
  let campaign = bench_campaign ~quick ~jobs ~lanes in
  let dynamic = bench_dynamic ~quick ~lanes in
  let geomean_speedup =
    let logs = List.map (fun c -> log c.speedup) cases in
    exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))
  in
  { quick; cases; campaign; dynamic; geomean_speedup }

let to_json r =
  let b = Buffer.create 1024 in
  let f x = Printf.sprintf "%.6f" x in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"quick\": %b,\n  \"cases\": [\n" r.quick);
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %s, \"transient\": %d, \"period\": %d, \
            \"throughput\": %s, \"cycles_per_rep\": %d, \"reps\": %d, \
            \"engine_s\": %s, \"packed_s\": %s, \"speedup\": %s}%s\n"
           (Lidjson.quote c.case_name) c.transient c.period (f c.throughput)
           c.cycles_per_rep
           c.reps (f c.engine_s) (f c.packed_s) (f c.speedup)
           (if i = List.length r.cases - 1 then "" else ",")))
    r.cases;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"campaign\": {\"injections\": %d, \"jobs\": %d, \"lanes\": %d, \
        \"serial_s\": %s, \"parallel_s\": %s, \"lanes_s\": %s, \"speedup\": \
        %s, \"lane_speedup\": %s},\n"
       r.campaign.injections r.campaign.jobs r.campaign.lanes
       (f r.campaign.serial_s) (f r.campaign.parallel_s) (f r.campaign.lanes_s)
       (f r.campaign.campaign_speedup)
       (f r.campaign.lane_speedup));
  Buffer.add_string b
    (Printf.sprintf
       "  \"dynamic_campaign\": {\"injections\": %d, \"jobs\": 1, \"lanes\": \
        %d, \"serial_s\": %s, \"lanes_s\": %s, \"lane_speedup\": %s},\n"
       r.dynamic.dyn_injections r.dynamic.dyn_lanes (f r.dynamic.dyn_serial_s)
       (f r.dynamic.dyn_lanes_s)
       (f r.dynamic.dyn_speedup));
  Buffer.add_string b
    (Printf.sprintf "  \"geomean_speedup\": %s\n}\n" (f r.geomean_speedup));
  Buffer.contents b

let pp fmt r =
  Format.fprintf fmt "steady-state measurement, engine vs packed:@.";
  Format.fprintf fmt "  %-18s %10s %8s %12s %12s %9s@." "case" "transient"
    "period" "engine (s)" "packed (s)" "speedup";
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-18s %10d %8d %12.4f %12.4f %8.1fx@." c.case_name
        c.transient c.period c.engine_s c.packed_s c.speedup)
    r.cases;
  Format.fprintf fmt "  geomean speedup: %.1fx@." r.geomean_speedup;
  Format.fprintf fmt
    "fault campaign (%d injections): serial %.3fs, %d jobs %.3fs -> %.1fx@."
    r.campaign.injections r.campaign.serial_s r.campaign.jobs
    r.campaign.parallel_s r.campaign.campaign_speedup;
  Format.fprintf fmt
    "  %d jobs x %d lanes %.3fs -> %.1fx over serial@."
    r.campaign.jobs r.campaign.lanes r.campaign.lanes_s
    r.campaign.lane_speedup;
  pp_dynamic fmt r.dynamic
