(** Reference-vs-packed engine benchmark and parallel-campaign speedup.

    Times steady-state measurement ({!Skeleton.Measure.analyze} on the
    reference {!Skeleton.Engine} against {!Skeleton.Measure.analyze_packed}
    on {!Skeleton.Packed}) over a fixed family of generated topologies,
    checking on every case that both engines report the {e same} transient,
    period and throughputs — a benchmark that silently diverged would be
    meaningless.  Also times one seeded fault campaign serially
    ({!Fault.Campaign.run}) and in parallel ({!Fault_driver.run}),
    asserting bit-identical reports.

    Wall-clock (monotonic enough at these scales: [Unix.gettimeofday]);
    each case runs [reps] fresh engines per side. *)

type case = {
  case_name : string;
  transient : int;
  period : int;
  throughput : float;
  cycles_per_rep : int;  (** cycles one measurement steps: transient + 2·period *)
  reps : int;
  engine_s : float;
  packed_s : float;
  speedup : float;
}

type campaign_stat = {
  injections : int;
  jobs : int;  (** domains the parallel runs actually used *)
  lanes : int;  (** lane width of the bit-sliced run *)
  serial_s : float;  (** {!Fault.Campaign.run}: instrumented engine, 1 job *)
  parallel_s : float;  (** {!Fault_driver.run} with [jobs], lanes disabled *)
  lanes_s : float;  (** {!Fault_driver.run} with [jobs] and [lanes] *)
  campaign_speedup : float;  (** serial over parallel *)
  lane_speedup : float;  (** serial over lane-parallel — the headline figure *)
}

type dynamic_stat = {
  dyn_injections : int;
  dyn_lanes : int;  (** lane width the driver actually used *)
  dyn_serial_s : float;  (** {!Fault.Campaign.run}, 1 job *)
  dyn_lanes_s : float;  (** {!Fault_driver.run} with [jobs = 1] and lanes *)
  dyn_speedup : float;  (** serial over lane-parallel, single-core *)
}
(** The dynamic-network leg: a chain whose head channels carry jitter
    latency profiles spanned by go-back-N stations, so the lane engine's
    per-lane retx state, entrance-gate counters and link-fault plane are
    all on the timed path.  Single-core by construction — the figure
    isolates the bit-sliced win on dynamic nets, which previously fell
    back to serial classification. *)

type result = {
  quick : bool;
  cases : case list;
  campaign : campaign_stat;
  dynamic : dynamic_stat;
  geomean_speedup : float;  (** over the per-case engine/packed speedups *)
}

exception Divergence of string
(** Raised when the two engines (or the serial and parallel campaigns)
    disagree — the benchmark refuses to time wrong code. *)

val run :
  ?quick:bool ->
  ?jobs:int ->
  ?lanes:int ->
  ?max_cycles:int ->
  ?signature_capacity:int ->
  unit ->
  result
(** [quick] (default false) shrinks every topology for CI smoke runs;
    [jobs] (default {!Parallel.default_jobs}) sizes the parallel campaign;
    [lanes] (default {!Skeleton.Packed_lanes.max_lanes}, clamped to it)
    sizes the bit-sliced campaign.  [max_cycles] / [signature_capacity]
    are handed to every steady-state measurement, as the
    {!Skeleton.Measure.analyze} arguments of the same names. *)

val run_dynamic : ?quick:bool -> ?lanes:int -> unit -> dynamic_stat
(** The dynamic-network leg alone (seconds, not minutes — suitable for
    CI).  Same divergence guarantee: raises {!Divergence} unless the
    lane-parallel reports are bit-identical to the serial run. *)

val dynamic_json : dynamic_stat -> string
(** Stable JSON rendering of the dynamic leg (the BENCH_pr7.json payload). *)

val pp_dynamic : Format.formatter -> dynamic_stat -> unit

(** {1 The cone leg (E20)} *)

type cone_stat = {
  co_workload : string;
  co_injections : int;
  co_cycles : int;  (** horizon per injection *)
  co_lanes : int;  (** width of the lane-path runs *)
  co_lanes_off_s : float;  (** lane driver, incremental path disabled *)
  co_lanes_on_s : float;  (** lane driver, cone-incremental *)
  co_flat_off_s : float;  (** lanes disabled, [classify_fast] per fault *)
  co_flat_on_s : float;  (** lanes disabled, [classify_incr] per fault *)
  co_lane_speedup : float;  (** lanes off over on *)
  co_flat_speedup : float;  (** flat off over on *)
}

val run_cone : ?quick:bool -> ?lanes:int -> unit -> cone_stat list
(** The cone-incremental campaign benchmark: per workload (the dynamic
    retx + jitter chain and a mesh NoC, long horizons), time the driver
    with the incremental path off and on, on the lane path and the flat
    path, all single-core.  Raises {!Divergence} unless all four runs
    report bit-identically. *)

val cone_json : cone_stat list -> string
(** Stable JSON rendering (the BENCH_pr9.json payload). *)

val pp_cone : Format.formatter -> cone_stat list -> unit

type lane_point = { lp_lanes : int; lp_s : float; lp_speedup : float }

val lane_sweep :
  ?quick:bool -> ?widths:int list -> unit -> int * float * lane_point list
(** Time the benchmark campaign once serially, then once per lane width
    (default widths [1; 2; 8; 32; max_lanes], each asserted
    bit-identical): [(injections, serial_s, points)].  The experiment
    behind EXPERIMENTS.md E15. *)

val to_json : result -> string
(** Stable, human-diffable JSON rendering (the BENCH_pr3.json payload). *)

val pp : Format.formatter -> result -> unit
