(** Mutable bit-packed boolean vectors.

    The packed skeleton engine keeps its per-cycle valid/stop/occupancy
    planes in these: a fixed-length vector of bits stored in an [int array]
    of 32-bit words, mutated in place with no per-cycle allocation.  The
    backing words are exposed read-only so a state signature can be built
    by blitting whole words instead of walking bits (see
    {!Skeleton.Packed.signature_id}).

    This is the mutable counterpart of {!Bits} (which is immutable and
    value-oriented); it deliberately offers only what a simulation hot
    path needs. *)

type t

val word_shift : int
(** [i lsr word_shift] is the backing word holding bit [i]. *)

val bit_mask : int
(** [i land bit_mask] is bit [i]'s position inside its word. *)

val create : int -> t
(** [create n] is an all-false vector of [n] bits ([n >= 0]). *)

val length : t -> int

val get : t -> int -> bool
(** Unchecked: an out-of-range index is undefined behaviour.  The packed
    engine only ever indexes with compile-time-derived dense ids. *)

val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val fill_false : t -> unit
(** Reset every bit — one [Array.fill] on the backing words. *)

val popcount : t -> int

val words : t -> int array
(** The backing words (low bit of word 0 is bit 0).  Callers must treat
    the array as read-only; bits beyond [length] are kept zero, so two
    equal vectors have equal word arrays. *)

val n_words : t -> int

(** {1 Lane views}

    A vector of [rows * lanes] bits can be read as a cycle-major matrix:
    bit [i * lanes + lane] is lane [lane] at row (cycle) [i].  The
    lane-parallel campaign engine ({!Skeleton.Packed_lanes}) records its
    per-cycle divergence words this way; these views recover per-lane
    planes from it. *)

val transpose : rows:int -> cols:int -> t -> t
(** [transpose ~rows ~cols t] rereads [t] (of length [rows * cols],
    row-major) column-major: bit [i * cols + j] of [t] becomes bit
    [j * rows + i] of the result.  [transpose ~rows:c ~cols:r] is the
    inverse, so the function is an involution up to the swapped
    dimensions. *)

val lane_mask : lanes:int -> lane:int -> t -> t
(** [lane_mask ~lanes ~lane t] keeps only the bits of [lane] (positions
    congruent to [lane] modulo [lanes]), zeroing every other lane.  The
    length of [t] must be a multiple of [lanes]. *)

val lane_extract : lanes:int -> lane:int -> t -> t
(** [lane_extract ~lanes ~lane t] is the dense per-row plane of [lane]:
    bit [i] of the result is bit [i * lanes + lane] of [t].  Composed
    with {!popcount} it counts a lane's set rows exactly;
    [lane_extract (lane_mask t)] equals [lane_extract t]. *)

(** {1 Set algebra}

    Word-at-a-time set operations over equal-length vectors, used by
    analyses that propagate label sets over a graph (the lint stop-path
    pass).  All three raise [Invalid_argument] on a length mismatch. *)

val union_into : into:t -> t -> unit
(** [union_into ~into src] ors every bit of [src] into [into]. *)

val is_subset : t -> of_:t -> bool
(** [is_subset a ~of_:b] is true iff every set bit of [a] is set in [b]. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to the index of every set bit, in
    increasing order. *)

val blit_words : t -> int array -> int -> unit
(** [blit_words t dst pos] copies the backing words into [dst] starting at
    [pos] — the signature-assembly primitive. *)

val copy : t -> t
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Bits lsb-first, e.g. [10110]. *)
