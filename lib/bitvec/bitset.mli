(** Mutable bit-packed boolean vectors.

    The packed skeleton engine keeps its per-cycle valid/stop/occupancy
    planes in these: a fixed-length vector of bits stored in a [Bytes.t]
    of 64-bit words, mutated in place with no per-cycle allocation.
    Single-bit reads and writes are byte-granular (a shift and a mask,
    and — without flambda — no boxed [Int64] on the wire-level hot
    path); whole-word passes (signature blits, set algebra, the masked
    step loop's dirty-set scans) go through the unboxed-int64 views
    below, where one boxed word per 64 bits is amortized noise.

    This is the mutable counterpart of {!Bits} (which is immutable and
    value-oriented); it deliberately offers only what a simulation hot
    path needs. *)

type t

val bits_per_word : int
(** 64: the logical word size of the int64 views. *)

val word_shift : int
(** [i lsr word_shift] is the backing 64-bit word holding bit [i]. *)

val bit_mask : int
(** [i land bit_mask] is bit [i]'s position inside its word. *)

val create : int -> t
(** [create n] is an all-false vector of [n] bits ([n >= 0]). *)

val length : t -> int

val get : t -> int -> bool
(** Unchecked: an out-of-range index is undefined behaviour.  The packed
    engine only ever indexes with compile-time-derived dense ids. *)

val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val fill_false : t -> unit
(** Reset every bit — one [Bytes.fill] on the backing buffer. *)

val popcount : t -> int

(** {1 Word views}

    The backing store is always a whole number of 64-bit words; bits
    beyond [length] are kept zero, so two equal vectors have equal
    backing bytes.  These are the word-iteration primitives the masked
    step loop and the signature machinery are built on. *)

val bytes : t -> Bytes.t
(** The backing buffer (low bit of byte 0 is bit 0).  Callers must treat
    it as read-only unless they own the vector. *)

val n_words : t -> int
(** Number of 64-bit words. *)

val n_bytes : t -> int
(** [8 * n_words] — the buffer size in bytes. *)

val get_word : t -> int -> int64
(** [get_word t w] is 64-bit word [w] (bits [64w .. 64w+63]). *)

val set_word : t -> int -> int64 -> unit
(** Write word [w] whole.  The caller must keep tail bits past [length]
    zero. *)

val iter_words : t -> (int -> int64 -> unit) -> unit
(** [iter_words t f] applies [f w word] to every word in order. *)

val iter_set_words : t -> (int -> int64 -> unit) -> unit
(** As {!iter_words} but skips all-zero words — the sparse scan the
    cone-masked step loop runs per cycle. *)

val blit : src:t -> dst:t -> unit
(** Whole-vector copy between equal-length vectors (one [Bytes.blit]).
    Raises [Invalid_argument] on a length mismatch. *)

val blit_into : t -> Bytes.t -> int -> unit
(** [blit_into t dst pos] copies the backing bytes into [dst] starting
    at byte [pos] — the signature-assembly primitive ([n_bytes t]
    bytes are written). *)

(** {1 Lane views}

    A vector of [rows * lanes] bits can be read as a cycle-major matrix:
    bit [i * lanes + lane] is lane [lane] at row (cycle) [i].  The
    lane-parallel campaign engine ({!Skeleton.Packed_lanes}) records its
    per-cycle divergence words this way; these views recover per-lane
    planes from it. *)

val transpose : rows:int -> cols:int -> t -> t
(** [transpose ~rows ~cols t] rereads [t] (of length [rows * cols],
    row-major) column-major: bit [i * cols + j] of [t] becomes bit
    [j * rows + i] of the result.  [transpose ~rows:c ~cols:r] is the
    inverse, so the function is an involution up to the swapped
    dimensions. *)

val lane_mask : lanes:int -> lane:int -> t -> t
(** [lane_mask ~lanes ~lane t] keeps only the bits of [lane] (positions
    congruent to [lane] modulo [lanes]), zeroing every other lane.  The
    length of [t] must be a multiple of [lanes]. *)

val lane_extract : lanes:int -> lane:int -> t -> t
(** [lane_extract ~lanes ~lane t] is the dense per-row plane of [lane]:
    bit [i] of the result is bit [i * lanes + lane] of [t].  Composed
    with {!popcount} it counts a lane's set rows exactly;
    [lane_extract (lane_mask t)] equals [lane_extract t]. *)

(** {1 Set algebra}

    Word-at-a-time set operations over equal-length vectors, used by
    analyses that propagate label sets over a graph (the lint stop-path
    pass) and by the dirty-set bookkeeping of incremental re-simulation.
    All of them raise [Invalid_argument] on a length mismatch. *)

val union_into : into:t -> t -> unit
(** [union_into ~into src] ors every bit of [src] into [into]. *)

val is_subset : t -> of_:t -> bool
(** [is_subset a ~of_:b] is true iff every set bit of [a] is set in [b]. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to the index of every set bit, in
    increasing order. *)

val copy : t -> t
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Bits lsb-first, e.g. [10110]. *)
