(* 32 payload bits per word: a power of two, so the index split compiles
   to a shift and a mask — the hot path of the packed engine never pays an
   integer division.  (62 bits per word would halve the array but put two
   idivs in front of every wire read.)  Words stay immediate ints. *)
let bits_per_word = 32
let word_shift = 5
let bit_mask = 31

type t = { len : int; words : int array }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { len = n; words = Array.make ((n + bits_per_word - 1) lsr word_shift) 0 }

let length t = t.len

let get t i =
  Array.unsafe_get t.words (i lsr word_shift) lsr (i land bit_mask) land 1 = 1

let set t i =
  let w = i lsr word_shift in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i land bit_mask)))

let clear t i =
  let w = i lsr word_shift in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w land lnot (1 lsl (i land bit_mask)))

let assign t i b = if b then set t i else clear t i
let fill_false t = Array.fill t.words 0 (Array.length t.words) 0

let popcount t =
  let count = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr count
      done)
    t.words;
  !count

let words t = t.words
let n_words t = Array.length t.words

let blit_words t dst pos =
  Array.blit t.words 0 dst pos (Array.length t.words)

let copy t = { len = t.len; words = Array.copy t.words }
let equal a b = a.len = b.len && a.words = b.words

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done
