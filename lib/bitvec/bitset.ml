(* 64 payload bits per logical word, stored in a [Bytes.t] so word-level
   passes read and write unboxed [Int64]s ([Bytes.get_int64_ne] /
   [Bytes.set_int64_ne]) while the single-bit hot path of the packed
   engine stays on byte-granular character accesses: [i lsr 3] / [i land 7]
   compile to a shift and a mask (no integer division), and — crucially
   without flambda — never materialize a boxed [Int64] per wire read.
   One boxed value per 64 bits on the batch paths is amortized noise;
   one per bit would dominate the simulator. *)

let bits_per_word = 64
let word_shift = 6
let bit_mask = 63

type t = { len : int; bytes : Bytes.t }

(* The buffer is always a whole number of 64-bit words so the int64 views
   never straddle the end; tail bits past [len] are kept at zero ([set] is
   only ever called with [i < len]), which [equal]/[popcount]/signature
   blits rely on. *)
let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { len = n; bytes = Bytes.make (((n + bits_per_word - 1) lsr word_shift) * 8) '\000' }

let length t = t.len

let get t i =
  Char.code (Bytes.unsafe_get t.bytes (i lsr 3)) lsr (i land 7) land 1 = 1

let set t i =
  let b = i lsr 3 in
  Bytes.unsafe_set t.bytes b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bytes b) lor (1 lsl (i land 7))))

let clear t i =
  let b = i lsr 3 in
  Bytes.unsafe_set t.bytes b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bytes b) land lnot (1 lsl (i land 7))))

let assign t i b = if b then set t i else clear t i
let fill_false t = Bytes.fill t.bytes 0 (Bytes.length t.bytes) '\000'

(* --- word views ----------------------------------------------------- *)

let n_words t = Bytes.length t.bytes lsr 3
let n_bytes t = Bytes.length t.bytes
let bytes t = t.bytes
let get_word t w = Bytes.get_int64_ne t.bytes (w lsl 3)
let set_word t w v = Bytes.set_int64_ne t.bytes (w lsl 3) v

let iter_words t f =
  for w = 0 to n_words t - 1 do
    f w (Bytes.get_int64_ne t.bytes (w lsl 3))
  done

let iter_set_words t f =
  for w = 0 to n_words t - 1 do
    let v = Bytes.get_int64_ne t.bytes (w lsl 3) in
    if v <> 0L then f w v
  done

let blit ~src ~dst =
  if src.len <> dst.len then invalid_arg "Bitset.blit: length mismatch";
  Bytes.blit src.bytes 0 dst.bytes 0 (Bytes.length src.bytes)

let blit_into t dst pos = Bytes.blit t.bytes 0 dst pos (Bytes.length t.bytes)

(* byte-wide popcount table: allocation free, and fast enough for the
   observability paths that count divergences *)
let pop8 =
  let tbl = Bytes.create 256 in
  for i = 0 to 255 do
    let c = ref 0 and v = ref i in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done;
    Bytes.unsafe_set tbl i (Char.unsafe_chr !c)
  done;
  tbl

let popcount t =
  let count = ref 0 in
  for b = 0 to Bytes.length t.bytes - 1 do
    count :=
      !count
      + Char.code (Bytes.unsafe_get pop8 (Char.code (Bytes.unsafe_get t.bytes b)))
  done;
  !count

(* --- lane views --------------------------------------------------- *)
(* The lane-parallel campaign engine packs W concurrent runs into the
   bit positions of its plane words and records one divergence word per
   cycle; these views unpack that cycle-major (rows = cycles, cols =
   lanes) history into per-lane planes.  They run once per campaign
   batch on short vectors, so plain bit loops are fast enough. *)

let transpose ~rows ~cols t =
  if rows < 0 || cols < 0 || rows * cols <> t.len then
    invalid_arg "Bitset.transpose: rows * cols must equal length";
  let r = create t.len in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if get t ((i * cols) + j) then set r ((j * rows) + i)
    done
  done;
  r

let check_lane ~who ~lanes ~lane len =
  if lanes <= 0 then invalid_arg (who ^ ": lanes must be positive");
  if lane < 0 || lane >= lanes then invalid_arg (who ^ ": lane out of range");
  if len mod lanes <> 0 then
    invalid_arg (who ^ ": length must be a multiple of lanes")

let lane_mask ~lanes ~lane t =
  check_lane ~who:"Bitset.lane_mask" ~lanes ~lane t.len;
  let r = create t.len in
  let i = ref lane in
  while !i < t.len do
    if get t !i then set r !i;
    i := !i + lanes
  done;
  r

let lane_extract ~lanes ~lane t =
  check_lane ~who:"Bitset.lane_extract" ~lanes ~lane t.len;
  let r = create (t.len / lanes) in
  for i = 0 to (t.len / lanes) - 1 do
    if get t ((i * lanes) + lane) then set r i
  done;
  r

(* --- set algebra --------------------------------------------------- *)
(* Word-at-a-time set operations for analyses that propagate label sets
   over a graph (the lint stop-path pass) and for the masked step loop's
   dirty-set bookkeeping.  Lengths must match exactly: mixing universes
   is a caller bug, not something to paper over. *)

let check_same_length who a b =
  if a.len <> b.len then invalid_arg (who ^ ": length mismatch")

let union_into ~into src =
  check_same_length "Bitset.union_into" into src;
  for w = 0 to n_words into - 1 do
    let o = w lsl 3 in
    Bytes.set_int64_ne into.bytes o
      (Int64.logor (Bytes.get_int64_ne into.bytes o) (Bytes.get_int64_ne src.bytes o))
  done

let is_subset a ~of_ =
  check_same_length "Bitset.is_subset" a of_;
  let ok = ref true in
  for w = 0 to n_words a - 1 do
    let o = w lsl 3 in
    if
      Int64.logand (Bytes.get_int64_ne a.bytes o)
        (Int64.lognot (Bytes.get_int64_ne of_.bytes o))
      <> 0L
    then ok := false
  done;
  !ok

let iter_set t f =
  (* byte-granular Kernighan walk: skips empty bytes with an immediate
     compare, never touches a boxed word *)
  for b = 0 to Bytes.length t.bytes - 1 do
    let bits = ref (Char.code (Bytes.unsafe_get t.bytes b)) in
    while !bits <> 0 do
      let low = !bits land - !bits in
      let j = ref 0 in
      while low lsr !j land 1 = 0 do
        incr j
      done;
      f ((b * 8) + !j);
      bits := !bits land (!bits - 1)
    done
  done

let copy t = { len = t.len; bytes = Bytes.copy t.bytes }
let equal a b = a.len = b.len && Bytes.equal a.bytes b.bytes

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done
