(* 32 payload bits per word: a power of two, so the index split compiles
   to a shift and a mask — the hot path of the packed engine never pays an
   integer division.  (62 bits per word would halve the array but put two
   idivs in front of every wire read.)  Words stay immediate ints. *)
let bits_per_word = 32
let word_shift = 5
let bit_mask = 31

type t = { len : int; words : int array }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { len = n; words = Array.make ((n + bits_per_word - 1) lsr word_shift) 0 }

let length t = t.len

let get t i =
  Array.unsafe_get t.words (i lsr word_shift) lsr (i land bit_mask) land 1 = 1

let set t i =
  let w = i lsr word_shift in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i land bit_mask)))

let clear t i =
  let w = i lsr word_shift in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w land lnot (1 lsl (i land bit_mask)))

let assign t i b = if b then set t i else clear t i
let fill_false t = Array.fill t.words 0 (Array.length t.words) 0

let popcount t =
  let count = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr count
      done)
    t.words;
  !count

let words t = t.words
let n_words t = Array.length t.words

(* --- lane views --------------------------------------------------- *)
(* The lane-parallel campaign engine packs W concurrent runs into the
   bit positions of its plane words and records one divergence word per
   cycle; these views unpack that cycle-major (rows = cycles, cols =
   lanes) history into per-lane planes.  They run once per campaign
   batch on short vectors, so plain bit loops are fast enough. *)

let transpose ~rows ~cols t =
  if rows < 0 || cols < 0 || rows * cols <> t.len then
    invalid_arg "Bitset.transpose: rows * cols must equal length";
  let r = create t.len in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if get t ((i * cols) + j) then set r ((j * rows) + i)
    done
  done;
  r

let check_lane ~who ~lanes ~lane len =
  if lanes <= 0 then invalid_arg (who ^ ": lanes must be positive");
  if lane < 0 || lane >= lanes then invalid_arg (who ^ ": lane out of range");
  if len mod lanes <> 0 then
    invalid_arg (who ^ ": length must be a multiple of lanes")

let lane_mask ~lanes ~lane t =
  check_lane ~who:"Bitset.lane_mask" ~lanes ~lane t.len;
  let r = create t.len in
  let i = ref lane in
  while !i < t.len do
    if get t !i then set r !i;
    i := !i + lanes
  done;
  r

let lane_extract ~lanes ~lane t =
  check_lane ~who:"Bitset.lane_extract" ~lanes ~lane t.len;
  let r = create (t.len / lanes) in
  for i = 0 to (t.len / lanes) - 1 do
    if get t ((i * lanes) + lane) then set r i
  done;
  r

(* --- set algebra --------------------------------------------------- *)
(* Word-at-a-time set operations for analyses that propagate label sets
   over a graph (the lint stop-path pass).  Lengths must match exactly:
   mixing universes is a caller bug, not something to paper over. *)

let check_same_length who a b =
  if a.len <> b.len then invalid_arg (who ^ ": length mismatch")

let union_into ~into src =
  check_same_length "Bitset.union_into" into src;
  for w = 0 to Array.length into.words - 1 do
    Array.unsafe_set into.words w
      (Array.unsafe_get into.words w lor Array.unsafe_get src.words w)
  done

let is_subset a ~of_ =
  check_same_length "Bitset.is_subset" a of_;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if Array.unsafe_get a.words w land lnot (Array.unsafe_get of_.words w) <> 0
    then ok := false
  done;
  !ok

let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    let bits = ref (Array.unsafe_get t.words w) in
    while !bits <> 0 do
      let low = !bits land - !bits in
      (* count trailing zeros of an isolated low bit within the word *)
      let j = ref 0 in
      while low lsr !j land 1 = 0 do
        incr j
      done;
      f ((w * bits_per_word) + !j);
      bits := !bits land (!bits - 1)
    done
  done

let blit_words t dst pos =
  Array.blit t.words 0 dst pos (Array.length t.words)

let copy t = { len = t.len; words = Array.copy t.words }
let equal a b = a.len = b.len && a.words = b.words

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done
