(** Channel latency profiles — the "dynamic LID" wire model.

    The paper's channels have fixed unit latency; real chip-to-chip links
    and GALS bridges do not.  A profile describes the {e extra} traversal
    delay (in cycles) successive tokens experience on a channel:

    - [Fixed d] — every token takes [d] extra cycles (an unpipelined long
      wire);
    - [Jitter {base; bound; seed}] — each launch draws a delay in
      [base, base + bound], pseudo-randomly but deterministically from
      [seed] and the channel id;
    - [Distance {length; pitch}] — the delay a wire of [length] units
      needs when a repeater covers [pitch] units per cycle
      ([ceil(length/pitch) - 1]);
    - [Table t] — an explicit periodic schedule (tests, regressions).

    Profiles are compiled by {!table} into a periodic per-launch delay
    table.  Compilation is a pure function of the profile and the channel
    id — no hidden RNG state — so the typed and packed skeleton engines,
    and every campaign worker domain, replay the exact same schedule. *)

type profile =
  | Fixed of int
  | Jitter of { base : int; bound : int; seed : int }
  | Distance of { length : int; pitch : int }
  | Table of int array

val jitter_period : int
(** Length of the compiled [Jitter] table (a prime, so the schedule does
    not resonate with small environment periods). *)

val table : edge:int -> profile -> int array
(** The per-launch extra-delay schedule for channel [edge]: launch [n]
    experiences [t.((count n) mod Array.length t)] extra cycles.  Always
    non-empty; entries are clamped to be non-negative. *)

val max_delay : profile -> int
(** Worst-case extra delay — the bound the LID008 lint and the
    retransmission timeout derive round trips from. *)

val min_delay : profile -> int

val equal : profile -> profile -> bool

val to_string : profile -> string
(** [fixed:D], [jitter:BASE:BOUND:SEED], [dist:LENGTH:PITCH] or
    [table:D0,D1,...] — the spec-file / CLI syntax. *)

val of_string : string -> profile option
(** Inverse of {!to_string}; also accepts the short forms
    [jitter:BOUND] and [jitter:BASE:BOUND] (seed 1). *)

val pp : Format.formatter -> profile -> unit
