open Bitvec
open Hdl.Signal

let bit0 = Bits.of_bool false
let bit1 = Bits.of_bool true

type port = { valid : Hdl.Signal.t; data : Hdl.Signal.t }

(* Width to hold the values 0..n (at least one bit). *)
let bits_for n =
  let rec go w = if 1 lsl w > n then w else go (w + 1) in
  max 1 (go 0)

(* Retransmitting station, mirroring [Relay_station.step_retx] field for
   field on the fault-free path.  Sequence numbers free-run modulo
   2^seq_width and enter the logic only as differences, so the windowed
   (two's-complement) comparisons are exact as long as the in-flight skew
   stays below 2^(seq_width-1) — it is bounded by depth + 2.  The replay
   RAM is a register file of [depth] entries addressed by seq mod depth
   (kept as the rotating head pointer [hp], the slot of the oldest
   unacked sequence), read through a mux with a same-cycle write
   bypass. *)
let retx_fragment ~depth ~table ~in_valid ~in_data ~stop_in =
  let data_width = width in_data in
  let depth = max 1 depth in
  let table = if Array.length table = 0 then [| 0 |] else table in
  let tlen = Array.length table in
  let max_wait = Array.fold_left max 0 table in
  let timeout = Relay_station.timeout_of_table table in
  let seq_w = 16 in
  let cw = bits_for depth (* counts and cursors: 0..depth *) in
  let hw = bits_for (depth - 1) (* RAM slots: 0..depth-1 *) in
  let ww = bits_for max_wait in
  let tw = bits_for timeout in
  let lw = bits_for (tlen - 1) in
  let zero w = consti ~width:w 0 in
  let one w = consti ~width:w 1 in
  let st name w = wire ~name:(Printf.sprintf "rx_%s" name) w in
  (* current state *)
  let count = st "count" cw in
  let cursor = st "cursor" cw in
  let timer = st "timer" tw in
  let lc = st "lc" lw in
  let hp = st "hp" hw in
  let nseq = st "nseq" seq_w in
  let expect = st "expect" seq_w in
  let out_v = st "out_v" 1 in
  let out_d = st "out_d" data_width in
  let flit_v = st "flit_v" 1 in
  let flit_seq = st "flit_seq" seq_w in
  let flit_val = st "flit_val" data_width in
  let flit_wait = st "flit_wait" ww in
  let ack_v = st "ack_v" 1 in
  let ack_seq = st "ack_seq" seq_w in
  let ack_nack = st "ack_nack" 1 in
  let ram = Array.init depth (fun i -> st (Printf.sprintf "ram_%d" i) data_width) in
  let uext s w = zero_extend s ~width:w in
  (* (slot + k) mod depth, for k <= depth *)
  let add_mod a b =
    let sw = bits_for ((2 * depth) - 1) in
    let s = uext a sw +: uext b sw in
    let wrapped = mux2 (s <: consti ~width:sw depth) s (s -: consti ~width:sw depth) in
    select wrapped ~hi:(hw - 1) ~lo:0
  in
  let base = nseq -: uext count seq_w in
  (* 1. the flit finishing its internal-hop traversal; output consumption *)
  let wait_pos = reduce_or flit_wait in
  let arr = flit_v &: ~:wait_pos in
  let flit_left_v = flit_v &: wait_pos in
  let out0_v = out_v &: stop_in in
  (* 2. receiver: exactly-once, in-order *)
  let d_exp = flit_seq -: expect in
  let seq_eq = ~:(reduce_or d_exp) in
  let seq_lt = msb d_exp in
  let seq_gt = ~:seq_lt &: ~:seq_eq in
  let deliver = arr &: seq_eq &: ~:out0_v in
  let refuse = arr &: seq_eq &: out0_v in
  let gap = arr &: seq_gt in
  let out1_v = out0_v |: deliver in
  let out1_d = mux2 deliver flit_val out_d in
  let expect' = mux2 deliver (expect +: one seq_w) expect in
  let rx_ack_v = arr in
  let rx_ack_seq = expect' in
  let rx_ack_nack = gap |: refuse in
  (* 3. sender: the cumulative ack launched last cycle arrives.  The
     replay buffer holds the consecutive sequences base..base+count-1, so
     "drop everything below a_seq" is the clamped difference. *)
  let dr_raw = ack_seq -: base in
  let dr_neg = msb dr_raw in
  let dr_gt = ~:(dr_raw <=: uext count seq_w) in
  let dr_low = select dr_raw ~hi:(cw - 1) ~lo:0 in
  let dropped =
    mux2 ack_v (mux2 dr_neg (zero cw) (mux2 dr_gt count dr_low)) (zero cw)
  in
  let dropped_nz = reduce_or dropped in
  let nack_eff = ack_v &: ack_nack in
  let progressed = nack_eff |: (ack_v &: dropped_nz) in
  let count1 = count -: dropped in
  let cursor1 =
    mux2 nack_eff (zero cw)
      (mux2 (cursor <=: dropped) (zero cw) (cursor -: dropped))
  in
  let timer1 = mux2 (nack_eff |: (ack_v &: dropped_nz)) (zero tw) timer in
  let hp1 = add_mod hp dropped in
  let base1 = base +: uext dropped seq_w in
  (* 4. timeout: outstanding un-acked data and no ack progress *)
  let empty1 = ~:(reduce_or count1) in
  let fire_to =
    ~:empty1 &: ~:progressed &: ~:(timer1 <: consti ~width:tw timeout)
  in
  let timer2 =
    mux2 empty1 (zero tw)
      (mux2 progressed timer1 (mux2 fire_to (zero tw) (timer1 +: one tw)))
  in
  let cursor2 = mux2 fire_to (zero cw) cursor1 in
  (* 5. accept the producer's handover (it saw our pre-cycle stop) *)
  let room = count <: consti ~width:cw depth in
  let accept = in_valid &: room in
  let count2 = count1 +: uext accept cw in
  let nseq' = nseq +: uext accept seq_w in
  let wslot = add_mod hp count in
  (* 6. launch the next flit when the data hop is free *)
  let do_launch = ~:flit_left_v &: (cursor2 <: count2) in
  let launch_seq = base1 +: uext cursor2 seq_w in
  let lslot = add_mod hp1 cursor2 in
  let ram_rd = mux lslot (Array.to_list ram) in
  let bypass = accept &: (cursor2 ==: count1) in
  let launch_data = mux2 bypass in_data ram_rd in
  let launch_wait =
    mux lc (Array.to_list (Array.map (fun d -> consti ~width:ww d) table))
  in
  let lc' =
    if tlen = 1 then lc
    else
      mux2 do_launch
        (mux2 (lc ==: consti ~width:lw (tlen - 1)) (zero lw) (lc +: one lw))
        lc
  in
  let flit_v' = flit_left_v |: do_launch in
  let flit_seq' = mux2 do_launch launch_seq flit_seq in
  let flit_val' = mux2 do_launch launch_data flit_val in
  let flit_wait' =
    mux2 do_launch launch_wait
      (mux2 flit_left_v (flit_wait -: one ww) flit_wait)
  in
  let cursor3 = mux2 do_launch (cursor2 +: one cw) cursor2 in
  (* clock edge *)
  let latch ?enable w name next =
    assign w (reg ?enable ~name:(Printf.sprintf "rx_%s_r" name)
                ~reset:(Bits.zero (width w)) next)
  in
  latch count "count" count2;
  latch cursor "cursor" cursor3;
  latch timer "timer" timer2;
  latch lc "lc" lc';
  latch hp "hp" hp1;
  latch nseq "nseq" nseq';
  latch expect "expect" expect';
  latch out_v "out_v" out1_v;
  latch out_d "out_d" out1_d;
  latch flit_v "flit_v" flit_v';
  latch flit_seq "flit_seq" flit_seq';
  latch flit_val "flit_val" flit_val';
  latch flit_wait "flit_wait" flit_wait';
  latch ack_v "ack_v" rx_ack_v;
  latch ack_seq "ack_seq" rx_ack_seq;
  latch ack_nack "ack_nack" rx_ack_nack;
  Array.iteri
    (fun i slot ->
      latch
        ~enable:(accept &: (wslot ==: consti ~width:hw i))
        slot
        (Printf.sprintf "ram_%d" i)
        in_data)
    ram;
  (* Moore face: the output register and "replay buffer full" *)
  (out_v, out_d, ~:room)

let relay_station_fragment ?(flavour = Protocol.Optimized) ?(table = [| 0 |])
    kind ~input:{ valid = in_valid; data = in_data } ~stop_in =
  let data_width = width in_data in
  let out_valid, out_data, stop_out =
    match kind with
    | Relay_station.Full ->
        let v_main = wire ~name:"v_main" 1 in
        let v_aux = wire ~name:"v_aux" 1 in
        let d_aux = wire ~name:"d_aux" data_width in
        let take = in_valid &: ~:v_aux in
        let consumed = v_main &: ~:stop_in in
        let v_main' = mux2 v_main (mux2 consumed (v_aux |: take) vdd) take in
        let v_aux' = v_main &: ~:consumed &: (take |: v_aux) in
        let d_main_next d_main =
          mux2 v_main (mux2 consumed (mux2 v_aux d_aux in_data) d_main) in_data
        in
        let d_main =
          reg_fb ~name:"d_main" ~reset:(Bits.zero data_width) ~width:data_width
            d_main_next
        in
        let d_aux_next cur = mux2 (v_main &: ~:consumed &: take &: ~:v_aux) in_data cur in
        assign v_main (reg ~name:"v_main_r" ~reset:bit0 v_main');
        assign v_aux (reg ~name:"v_aux_r" ~reset:bit0 v_aux');
        assign d_aux
          (reg_fb ~name:"d_aux_r" ~reset:(Bits.zero data_width) ~width:data_width
             d_aux_next);
        (v_main, d_main, v_aux)
    | Relay_station.Half ->
        let v_hold = wire ~name:"v_hold" 1 in
        let sreg = wire ~name:"sreg" 1 in
        let pass_ok =
          match flavour with Protocol.Optimized -> vdd | Protocol.Original -> ~:sreg
        in
        let capture = ~:v_hold &: pass_ok &: in_valid &: stop_in in
        let v_hold' = mux2 v_hold stop_in capture in
        let d_hold =
          reg_fb ~name:"d_hold" ~reset:(Bits.zero data_width) ~width:data_width
            (fun cur -> mux2 capture in_data cur)
        in
        assign v_hold (reg ~name:"v_hold_r" ~reset:bit0 v_hold');
        (match flavour with
        | Protocol.Original -> assign sreg (reg ~name:"sreg_r" ~reset:bit0 stop_in)
        | Protocol.Optimized -> assign sreg gnd);
        let out_valid = v_hold |: (pass_ok &: in_valid) in
        let out_data = mux2 v_hold d_hold in_data in
        let stop_out = v_hold |: sreg in
        (out_valid, out_data, stop_out)
    | Relay_station.Retx { depth } ->
        retx_fragment ~depth ~table ~in_valid ~in_data ~stop_in
  in
  (* The registers above latch unconditionally; the mux trees encode the
     hold conditions, exactly like the abstract FSM. *)
  ({ valid = out_valid; data = out_data }, stop_out)

let relay_station ?(flavour = Protocol.Optimized) ?table ?name ~data_width kind
    =
  let name =
    Option.value name
      ~default:
        (Printf.sprintf "%s_relay_station_%s"
           (Relay_station.kind_to_string kind)
           (Protocol.to_string flavour))
  in
  let in_valid = input "in_valid" 1 in
  let in_data = input "in_data" data_width in
  let stop_in = input "stop_in" 1 in
  let out, stop_out =
    relay_station_fragment ~flavour ?table kind
      ~input:{ valid = in_valid; data = in_data }
      ~stop_in
  in
  Hdl.Circuit.create ~name
    ~inputs:[ in_valid; in_data; stop_in ]
    ~outputs:
      [
        output "out_valid" out.valid;
        output "out_data" out.data;
        output "stop_out" stop_out;
      ]

type shell_spec = {
  name : string;
  data_width : int;
  n_inputs : int;
  n_outputs : int;
  initial_outputs : Bits.t list;
  datapath : fire:Hdl.Signal.t -> Hdl.Signal.t list -> Hdl.Signal.t list;
}

let shell_fragment ?(flavour = Protocol.Optimized) spec ~inputs ~stop_ins =
  if List.length spec.initial_outputs <> spec.n_outputs then
    invalid_arg "Rtl_gen.shell: initial_outputs arity mismatch";
  if List.length inputs <> spec.n_inputs then
    invalid_arg "Rtl_gen.shell_fragment: input arity mismatch";
  if List.length stop_ins <> spec.n_outputs then
    invalid_arg "Rtl_gen.shell_fragment: stop arity mismatch";
  let in_valids = List.map (fun p -> p.valid) inputs in
  let in_datas = List.map (fun p -> p.data) inputs in
  let v_bufs =
    List.init spec.n_outputs (fun o -> wire ~name:(Printf.sprintf "v_buf_%d" o) 1)
  in
  let all_valid =
    List.fold_left ( &: ) vdd in_valids
  in
  let gated =
    List.fold_left ( |: ) gnd
      (List.map2
         (fun stop v_buf ->
           match flavour with
           | Protocol.Original -> stop
           | Protocol.Optimized -> stop &: v_buf)
         stop_ins v_bufs)
  in
  let fire = all_valid &: ~:gated in
  let pearl_outs = spec.datapath ~fire in_datas in
  if List.length pearl_outs <> spec.n_outputs then
    invalid_arg "Rtl_gen.shell: datapath arity mismatch";
  List.iteri
    (fun o po ->
      if width po <> spec.data_width then
        invalid_arg (Printf.sprintf "Rtl_gen.shell: output %d width" o))
    pearl_outs;
  (* output buffers: valid flags reset to 1, data to the initial outputs —
     the paper's initialization convention for shells *)
  List.iteri
    (fun o v_buf ->
      let stop = List.nth stop_ins o in
      assign v_buf
        (reg
           ~name:(Printf.sprintf "v_buf_%d_r" o)
           ~reset:bit1
           (mux2 fire vdd (v_buf &: stop))))
    v_bufs;
  let d_bufs =
    List.mapi
      (fun o po ->
        reg
          ~name:(Printf.sprintf "d_buf_%d" o)
          ~enable:fire
          ~reset:(List.nth spec.initial_outputs o)
          po)
      pearl_outs
  in
  let stop_outs =
    List.map
      (fun in_valid ->
        match flavour with
        | Protocol.Original -> ~:fire
        | Protocol.Optimized -> ~:fire &: in_valid)
      in_valids
  in
  let out_ports =
    List.map2 (fun v d -> { valid = v; data = d }) v_bufs d_bufs
  in
  (out_ports, stop_outs)

let shell ?(flavour = Protocol.Optimized) spec =
  let in_valids =
    List.init spec.n_inputs (fun i -> input (Printf.sprintf "in_valid_%d" i) 1)
  in
  let in_datas =
    List.init spec.n_inputs (fun i ->
        input (Printf.sprintf "in_data_%d" i) spec.data_width)
  in
  let stop_ins =
    List.init spec.n_outputs (fun o -> input (Printf.sprintf "stop_in_%d" o) 1)
  in
  let inputs =
    List.map2 (fun v d -> { valid = v; data = d }) in_valids in_datas
  in
  let out_ports, stop_outs = shell_fragment ~flavour spec ~inputs ~stop_ins in
  let outputs =
    List.mapi (fun o p -> output (Printf.sprintf "out_valid_%d" o) p.valid) out_ports
    @ List.mapi (fun o p -> output (Printf.sprintf "out_data_%d" o) p.data) out_ports
    @ List.mapi (fun i s -> output (Printf.sprintf "stop_out_%d" i) s) stop_outs
  in
  Hdl.Circuit.create
    ~name:(Printf.sprintf "%s_shell_%s" spec.name (Protocol.to_string flavour))
    ~inputs:(in_valids @ in_datas @ stop_ins)
    ~outputs

let identity_shell ?flavour ~data_width () =
  shell ?flavour
    {
      name = "identity";
      data_width;
      n_inputs = 1;
      n_outputs = 1;
      initial_outputs = [ Bits.zero data_width ];
      datapath = (fun ~fire:_ ins -> ins);
    }

let adder_shell ?flavour ~data_width () =
  shell ?flavour
    {
      name = "adder";
      data_width;
      n_inputs = 2;
      n_outputs = 1;
      initial_outputs = [ Bits.zero data_width ];
      datapath =
        (fun ~fire:_ ins ->
          match ins with [ a; b ] -> [ a +: b ] | _ -> assert false);
    }

let accumulator_shell ?flavour ~data_width () =
  shell ?flavour
    {
      name = "accumulator";
      data_width;
      n_inputs = 1;
      n_outputs = 1;
      initial_outputs = [ Bits.zero data_width ];
      datapath =
        (fun ~fire ins ->
          match ins with
          | [ x ] ->
              (* running sum, clock-gated on [fire] *)
              let acc =
                reg_fb ~name:"acc" ~enable:fire ~reset:(Bits.zero data_width)
                  ~width:data_width (fun acc -> acc +: x)
              in
              (* the pearl's visible output is the post-firing sum *)
              [ acc +: x ]
          | _ -> assert false);
    }
