open Bitvec
open Hdl.Signal

let bit0 = Bits.of_bool false
let bit1 = Bits.of_bool true

type port = { valid : Hdl.Signal.t; data : Hdl.Signal.t }

let relay_station_fragment ?(flavour = Protocol.Optimized) kind
    ~input:{ valid = in_valid; data = in_data } ~stop_in =
  let data_width = width in_data in
  let out_valid, out_data, stop_out =
    match kind with
    | Relay_station.Full ->
        let v_main = wire ~name:"v_main" 1 in
        let v_aux = wire ~name:"v_aux" 1 in
        let d_aux = wire ~name:"d_aux" data_width in
        let take = in_valid &: ~:v_aux in
        let consumed = v_main &: ~:stop_in in
        let v_main' = mux2 v_main (mux2 consumed (v_aux |: take) vdd) take in
        let v_aux' = v_main &: ~:consumed &: (take |: v_aux) in
        let d_main_next d_main =
          mux2 v_main (mux2 consumed (mux2 v_aux d_aux in_data) d_main) in_data
        in
        let d_main =
          reg_fb ~name:"d_main" ~reset:(Bits.zero data_width) ~width:data_width
            d_main_next
        in
        let d_aux_next cur = mux2 (v_main &: ~:consumed &: take &: ~:v_aux) in_data cur in
        assign v_main (reg ~name:"v_main_r" ~reset:bit0 v_main');
        assign v_aux (reg ~name:"v_aux_r" ~reset:bit0 v_aux');
        assign d_aux
          (reg_fb ~name:"d_aux_r" ~reset:(Bits.zero data_width) ~width:data_width
             d_aux_next);
        (v_main, d_main, v_aux)
    | Relay_station.Half ->
        let v_hold = wire ~name:"v_hold" 1 in
        let sreg = wire ~name:"sreg" 1 in
        let pass_ok =
          match flavour with Protocol.Optimized -> vdd | Protocol.Original -> ~:sreg
        in
        let capture = ~:v_hold &: pass_ok &: in_valid &: stop_in in
        let v_hold' = mux2 v_hold stop_in capture in
        let d_hold =
          reg_fb ~name:"d_hold" ~reset:(Bits.zero data_width) ~width:data_width
            (fun cur -> mux2 capture in_data cur)
        in
        assign v_hold (reg ~name:"v_hold_r" ~reset:bit0 v_hold');
        (match flavour with
        | Protocol.Original -> assign sreg (reg ~name:"sreg_r" ~reset:bit0 stop_in)
        | Protocol.Optimized -> assign sreg gnd);
        let out_valid = v_hold |: (pass_ok &: in_valid) in
        let out_data = mux2 v_hold d_hold in_data in
        let stop_out = v_hold |: sreg in
        (out_valid, out_data, stop_out)
    | Relay_station.Retx _ ->
        (* The retransmitting station's serdes/CRC datapath has no RTL
           model yet — it exists at skeleton granularity only. *)
        invalid_arg
          "Rtl_gen.relay_station_fragment: retransmitting stations have no \
           RTL model (skeleton-only)"
  in
  (* The registers above latch unconditionally; the mux trees encode the
     hold conditions, exactly like the abstract FSM. *)
  ({ valid = out_valid; data = out_data }, stop_out)

let relay_station ?(flavour = Protocol.Optimized) ?name ~data_width kind =
  let name =
    Option.value name
      ~default:
        (Printf.sprintf "%s_relay_station_%s"
           (Relay_station.kind_to_string kind)
           (Protocol.to_string flavour))
  in
  let in_valid = input "in_valid" 1 in
  let in_data = input "in_data" data_width in
  let stop_in = input "stop_in" 1 in
  let out, stop_out =
    relay_station_fragment ~flavour kind
      ~input:{ valid = in_valid; data = in_data }
      ~stop_in
  in
  Hdl.Circuit.create ~name
    ~inputs:[ in_valid; in_data; stop_in ]
    ~outputs:
      [
        output "out_valid" out.valid;
        output "out_data" out.data;
        output "stop_out" stop_out;
      ]

type shell_spec = {
  name : string;
  data_width : int;
  n_inputs : int;
  n_outputs : int;
  initial_outputs : Bits.t list;
  datapath : fire:Hdl.Signal.t -> Hdl.Signal.t list -> Hdl.Signal.t list;
}

let shell_fragment ?(flavour = Protocol.Optimized) spec ~inputs ~stop_ins =
  if List.length spec.initial_outputs <> spec.n_outputs then
    invalid_arg "Rtl_gen.shell: initial_outputs arity mismatch";
  if List.length inputs <> spec.n_inputs then
    invalid_arg "Rtl_gen.shell_fragment: input arity mismatch";
  if List.length stop_ins <> spec.n_outputs then
    invalid_arg "Rtl_gen.shell_fragment: stop arity mismatch";
  let in_valids = List.map (fun p -> p.valid) inputs in
  let in_datas = List.map (fun p -> p.data) inputs in
  let v_bufs =
    List.init spec.n_outputs (fun o -> wire ~name:(Printf.sprintf "v_buf_%d" o) 1)
  in
  let all_valid =
    List.fold_left ( &: ) vdd in_valids
  in
  let gated =
    List.fold_left ( |: ) gnd
      (List.map2
         (fun stop v_buf ->
           match flavour with
           | Protocol.Original -> stop
           | Protocol.Optimized -> stop &: v_buf)
         stop_ins v_bufs)
  in
  let fire = all_valid &: ~:gated in
  let pearl_outs = spec.datapath ~fire in_datas in
  if List.length pearl_outs <> spec.n_outputs then
    invalid_arg "Rtl_gen.shell: datapath arity mismatch";
  List.iteri
    (fun o po ->
      if width po <> spec.data_width then
        invalid_arg (Printf.sprintf "Rtl_gen.shell: output %d width" o))
    pearl_outs;
  (* output buffers: valid flags reset to 1, data to the initial outputs —
     the paper's initialization convention for shells *)
  List.iteri
    (fun o v_buf ->
      let stop = List.nth stop_ins o in
      assign v_buf
        (reg
           ~name:(Printf.sprintf "v_buf_%d_r" o)
           ~reset:bit1
           (mux2 fire vdd (v_buf &: stop))))
    v_bufs;
  let d_bufs =
    List.mapi
      (fun o po ->
        reg
          ~name:(Printf.sprintf "d_buf_%d" o)
          ~enable:fire
          ~reset:(List.nth spec.initial_outputs o)
          po)
      pearl_outs
  in
  let stop_outs =
    List.map
      (fun in_valid ->
        match flavour with
        | Protocol.Original -> ~:fire
        | Protocol.Optimized -> ~:fire &: in_valid)
      in_valids
  in
  let out_ports =
    List.map2 (fun v d -> { valid = v; data = d }) v_bufs d_bufs
  in
  (out_ports, stop_outs)

let shell ?(flavour = Protocol.Optimized) spec =
  let in_valids =
    List.init spec.n_inputs (fun i -> input (Printf.sprintf "in_valid_%d" i) 1)
  in
  let in_datas =
    List.init spec.n_inputs (fun i ->
        input (Printf.sprintf "in_data_%d" i) spec.data_width)
  in
  let stop_ins =
    List.init spec.n_outputs (fun o -> input (Printf.sprintf "stop_in_%d" o) 1)
  in
  let inputs =
    List.map2 (fun v d -> { valid = v; data = d }) in_valids in_datas
  in
  let out_ports, stop_outs = shell_fragment ~flavour spec ~inputs ~stop_ins in
  let outputs =
    List.mapi (fun o p -> output (Printf.sprintf "out_valid_%d" o) p.valid) out_ports
    @ List.mapi (fun o p -> output (Printf.sprintf "out_data_%d" o) p.data) out_ports
    @ List.mapi (fun i s -> output (Printf.sprintf "stop_out_%d" i) s) stop_outs
  in
  Hdl.Circuit.create
    ~name:(Printf.sprintf "%s_shell_%s" spec.name (Protocol.to_string flavour))
    ~inputs:(in_valids @ in_datas @ stop_ins)
    ~outputs

let identity_shell ?flavour ~data_width () =
  shell ?flavour
    {
      name = "identity";
      data_width;
      n_inputs = 1;
      n_outputs = 1;
      initial_outputs = [ Bits.zero data_width ];
      datapath = (fun ~fire:_ ins -> ins);
    }

let adder_shell ?flavour ~data_width () =
  shell ?flavour
    {
      name = "adder";
      data_width;
      n_inputs = 2;
      n_outputs = 1;
      initial_outputs = [ Bits.zero data_width ];
      datapath =
        (fun ~fire:_ ins ->
          match ins with [ a; b ] -> [ a +: b ] | _ -> assert false);
    }

let accumulator_shell ?flavour ~data_width () =
  shell ?flavour
    {
      name = "accumulator";
      data_width;
      n_inputs = 1;
      n_outputs = 1;
      initial_outputs = [ Bits.zero data_width ];
      datapath =
        (fun ~fire ins ->
          match ins with
          | [ x ] ->
              (* running sum, clock-gated on [fire] *)
              let acc =
                reg_fb ~name:"acc" ~enable:fire ~reset:(Bits.zero data_width)
                  ~width:data_width (fun acc -> acc +: x)
              in
              (* the pearl's visible output is the post-firing sum *)
              [ acc +: x ]
          | _ -> assert false);
    }
