(** RTL implementations of the protocol blocks.

    These generate, on our structural HDL IR, the same FSMs that
    {!Relay_station} and {!Shell} define abstractly — the paper's "details
    of the RTL implementation of relay stations as FSM's, and of the
    shells".  The test suite locksteps each circuit against its abstract
    model cycle by cycle; {!Emit} renders them as VHDL or Verilog.

    Port conventions (all circuits share an implicit clock; registers carry
    initialization values, as in the paper's simulation setup):

    - relay station: inputs [in_valid], [in_data], [stop_in] (from the
      consumer side); outputs [out_valid], [out_data], [stop_out] (toward
      the producer);
    - shell: inputs [in_valid_i], [in_data_i] per input channel and
      [stop_in_o] per output channel; outputs [out_valid_o], [out_data_o]
      and [stop_out_i]. *)

open Bitvec

type port = { valid : Hdl.Signal.t; data : Hdl.Signal.t }
(** A forward channel bundle. *)

val relay_station_fragment :
  ?flavour:Protocol.flavour ->
  ?table:int array ->
  Relay_station.kind ->
  input:port ->
  stop_in:Hdl.Signal.t ->
  port * Hdl.Signal.t
(** In-circuit relay station: returns the consumer-side port and the stop
    asserted toward the producer.  [stop_in] may be a yet-undriven wire,
    which is how larger structures close their backward paths.

    [table] (default [[|0|]]) is a retransmitting station's per-launch
    extra-delay schedule, as for {!Relay_station.initial}; ignored by
    full and half stations.  The retx model is the go-back-N FSM itself:
    16-bit free-running sequence counters compared through bounded
    differences, a [depth]-entry replay register file addressed by a
    rotating head pointer, the internal data/ack hops, and a timeout
    counter sized by {!Relay_station.timeout_of_table} — the same bound
    the skeleton and the LID008 lint use. *)

val relay_station :
  ?flavour:Protocol.flavour ->
  ?table:int array ->
  ?name:string ->
  data_width:int ->
  Relay_station.kind ->
  Hdl.Circuit.t

type shell_spec = {
  name : string;
  data_width : int;
  n_inputs : int;
  n_outputs : int;
  initial_outputs : Bits.t list;  (** per output; length [n_outputs] *)
  datapath : fire:Hdl.Signal.t -> Hdl.Signal.t list -> Hdl.Signal.t list;
      (** the pearl: combinational function of the consumed inputs; any
          internal state must be registers enabled by [fire] (clock
          gating) *)
}

val shell_fragment :
  ?flavour:Protocol.flavour ->
  shell_spec ->
  inputs:port list ->
  stop_ins:Hdl.Signal.t list ->
  port list * Hdl.Signal.t list
(** In-circuit shell: returns the output ports and the per-input
    back-pressure stops. *)

val shell : ?flavour:Protocol.flavour -> shell_spec -> Hdl.Circuit.t

val identity_shell :
  ?flavour:Protocol.flavour -> data_width:int -> unit -> Hdl.Circuit.t
(** 1-in/1-out repeater shell (initial output 0). *)

val adder_shell :
  ?flavour:Protocol.flavour -> data_width:int -> unit -> Hdl.Circuit.t
(** 2-in/1-out sum shell (initial output 0). *)

val accumulator_shell :
  ?flavour:Protocol.flavour -> data_width:int -> unit -> Hdl.Circuit.t
(** 1-in/1-out running-sum shell: demonstrates clock-gated pearl state. *)
