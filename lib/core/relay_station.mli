(** Relay stations.

    A relay station pipelines a long channel while complying with the
    latency-insensitive protocol.  The paper distinguishes:

    - the {b full} relay station — two data registers; a pipeline stage of
      forward latency 1 and storage capacity 2 (the second register absorbs
      the datum in flight while an asserted stop travels one cycle
      upstream); its output is a pure function of its state (Moore);
    - the {b half} relay station — one data register; forward latency 0
      (combinational pass-through when empty); when a stop arrives while a
      valid datum is passing, the register captures it and stop is asserted
      upstream one cycle later.  This is the minimum memory element that
      must separate two shells, because the stop signal cannot be
      back-propagated combinationally through a shell.

    The {b retransmitting} station ([Retx]) extends the family for
    dynamic-LID links whose internal hop may delay, damage, drop or
    duplicate a flit: the sender tags accepted tokens with sequence
    numbers, keeps them in a bounded replay buffer until cumulatively
    acknowledged, and re-sends (go-back-N) on NACK or timeout; the
    receiver delivers in order, exactly once, discarding stale
    duplicates.  Its observable protocol face is a Moore station of
    forward latency 2 whose upstream stop is "replay buffer full".

    Relay stations are initialized empty ("with non valid outputs", as the
    paper requires); shells are initialized with valid outputs.

    In both flavours of the protocol the relay station asserts stop upstream
    purely from its own occupancy — the station never loses or duplicates a
    datum provided its environment keeps inputs stable under asserted stop
    (the environment assumption the paper verifies blocks under). *)

type kind = Full | Half | Retx of { depth : int }

val kind_to_string : kind -> string
(** ["full"], ["half"], ["retx:N"]. *)

val pp_kind : Format.formatter -> kind -> unit

val capacity : kind -> int
(** Storage slots: 2 for full, 1 for half, replay depth + 1 for retx. *)

val forward_latency : kind -> int
(** 1 for full, 0 for half, 2 for retx (internal data hop + output
    register), before any extra link delay. *)

(** A fault on the retransmitting station's internal data hop, applied to
    the flit completing its traversal this cycle.  [Link_corrupt] damages
    the payload detectably (the flit checksum catches it and the receiver
    NACKs); [Link_corrupt_silent] models a corruption that escapes the
    checksum and is delivered as if intact. *)
type link_fault =
  | Link_ok
  | Link_corrupt of int
  | Link_corrupt_silent of int
  | Link_drop
  | Link_dup

val round_trip : max_delay:int -> int
(** Worst-case round trip of a retransmitting station's internal hop
    whose extra-delay schedule peaks at [max_delay]: launch slot, data
    traversal ([1 + max_delay]) and the ack's way back.  The single
    source of truth shared by the LID008 replay-depth lint, the
    retransmission timeout and the RTL replay-RAM/timeout sizing. *)

val timeout_of_table : int array -> int
(** The retransmission timeout derived from a delay schedule: two
    {!round_trip}s (a full go-back-N rewind must be able to show ack
    progress) plus slack.  Used identically by {!step} and the RTL
    model's timeout counter. *)

type state

val initial : ?table:int array -> kind -> state
(** [table] (default [[|0|]]) is the per-launch extra-delay schedule of
    the retransmitting station's internal hop, from
    {!Latency.table}; ignored by full and half stations. *)

val kind : state -> kind

val occupancy : state -> int
(** Number of valid data currently stored (for retx: accepted and not yet
    consumed downstream — the count the conservation monitor audits). *)

val sreg : state -> bool
(** The half station's registered copy of the incoming stop ([false] for
    full stations).  Protocol state under the [Original] flavour: together
    with {!occupancy} it determines the station's future valid/stop
    behaviour, so state signatures must include it. *)

val recoveries : state -> int
(** Retransmitting stations: go-back-N rewinds triggered by detected
    damage, loss or timeout — {e not} by downstream back-pressure.  0 for
    other kinds; 0 in any fault-free run. *)

val dup_discards : state -> int
(** Retransmitting stations: stale duplicates the receiver discarded to
    preserve exactly-once delivery.  0 for other kinds. *)

val behavioural_equal : state -> state -> bool
(** Structural equality with the monotone observability counters
    ({!recoveries}, {!dup_discards}) masked out — true iff the two states
    evolve identically under further stepping and produce equal
    {!signature_code}s, differing at most by constant counter offsets.
    The convergence test of incremental re-simulation
    ([Skeleton.Packed.converged]) is built on this. *)

val flit_arriving : state -> bool
(** A retransmitting station's internal-hop flit completes its traversal
    on the next {!step} — i.e. a [link] fault passed to that step will
    actually touch a flit (and a payload-corrupting one will matter).
    [false] for other kinds. *)

val present : state -> input:Token.t -> Token.t
(** The token driven on the output this cycle.  Full and retx stations
    ignore [input] (Moore); a half station passes [input] through when
    empty (Mealy). *)

val stop_upstream : state -> bool
(** The stop the station asserts toward its producer this cycle (a function
    of state only — i.e. a registered signal, which is the whole point). *)

val step :
  ?flavour:Protocol.flavour ->
  ?link:link_fault ->
  state ->
  input:Token.t ->
  stop_in:bool ->
  state
(** One clock edge. [input] is the producer-side token, [stop_in] the
    consumer-side stop observed this cycle; [link] (default [Link_ok])
    is the fault on a retx station's internal data hop this cycle.

    The flavour (default [Optimized]) selects the half station's stop
    discipline: under [Optimized], stop is asserted upstream only while a
    datum is actually held (stops arriving on void traffic are discarded);
    under [Original], the incoming stop is back-propagated regardless of
    data validity, one cycle delayed — faithful to the pre-refinement
    protocol, and the source of the loop deadlocks the paper discusses.
    Full stations assert stop purely from occupancy in both flavours. *)

val tokens : state -> Token.t list
(** Stored valid tokens, output-first — for trace rendering and state
    hashing. *)

val map_tokens : (Token.t -> Token.t) -> state -> state
(** Apply [f] to every stored token (valid or void), preserving control
    state — used by the verifier to abstract payloads away.  On a retx
    station, a payload [f] maps to void is kept unchanged (control fields
    cannot represent a void flit). *)

val upset : payload:int -> state -> state
(** Single-event upset of the station's primary data register: a stored
    datum is dropped (valid becomes void; the full station's [aux] datum is
    promoted so the older-first order of the survivors is kept) or, when the
    register is empty, a spurious datum carrying [payload] is conjured.
    Models a soft error in the relay register file — the fault the
    fault-injection campaigns address by station index. *)

val rebase : granule:int -> state -> state
(** Shift a retransmitting station's absolute sequence numbers (sender
    next/cursor base, replay-buffer tags, in-flight flit and ack, receiver
    expectation) down by the largest multiple of [granule] not exceeding
    their minimum, and zero the monotone observability counters
    ({!recoveries}, {!dup_discards}).  Sequence numbers only ever meet in
    equalities and differences, so the result is bisimilar to the input —
    but the reachable quotient under repeated [rebase . step] is {e finite},
    which is what lets an explicit-state contract discharge of a retx
    station terminate.  Rebasing by multiples of [granule] keeps any
    payload-modulo-[granule] correspondence an observer tracks intact.
    Identity for full and half stations (their state is already finite). *)

val signature_code : state -> int
(** A dense integer capturing every protocol-relevant field of the
    station — for full/half the occupancy plus the half station's [sreg]
    (values 0..5), for retx the replay/flit/ack/timer control state with
    sequence numbers folded in as bounded differences.  Monotone
    observability counters ({!recoveries}, {!dup_discards}) are excluded,
    so periodic runs still repeat signatures.  Both skeleton engines fold
    exactly these codes into their interned state signatures. *)

val pp : Format.formatter -> state -> unit
