type kind = Full | Half | Retx of { depth : int }

let kind_to_string = function
  | Full -> "full"
  | Half -> "half"
  | Retx { depth } -> Printf.sprintf "retx:%d" depth

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let capacity = function
  | Full -> 2
  | Half -> 1
  | Retx { depth } -> max 1 depth + 1 (* replay buffer + output register *)

let forward_latency = function Full -> 1 | Half -> 0 | Retx _ -> 2

type link_fault =
  | Link_ok
  | Link_corrupt of int
  | Link_corrupt_silent of int
  | Link_drop
  | Link_dup

(* A sequence-tagged flit traversing the station's internal data hop.
   [f_wait] is the extra link delay still to elapse (from the channel's
   latency table) before it reaches the receiver. *)
type flit = { f_seq : int; f_val : int; f_wait : int }

(* Cumulative acknowledgement travelling back on the (fault-free) ack
   hop: everything below [a_seq] was delivered.  [a_nack] asks the sender
   to rewind to [a_seq]; [a_recover] marks the rewind as a genuine fault
   recovery (damage or loss) rather than back-pressure. *)
type ack_msg = { a_seq : int; a_nack : bool; a_recover : bool }

type retx = {
  r_depth : int;
  r_table : int array; (* per-launch extra link delay, periodic *)
  (* sender *)
  r_buf : (int * int) list; (* unacked (seq, payload), oldest first *)
  r_next_seq : int;
  r_cursor : int; (* index into [r_buf] of the next flit to launch *)
  r_timer : int; (* cycles without ack progress while data is outstanding *)
  r_count : int; (* launches so far, mod table length *)
  (* the two internal one-cycle hops *)
  r_flit : flit option;
  r_ack : ack_msg option;
  (* receiver *)
  r_expect : int;
  r_out : Token.t; (* Moore output register *)
  r_occ : int; (* tokens accepted and not yet consumed downstream *)
  (* observability counters — not protocol state, excluded from
     signatures *)
  r_recov : int;
  r_dups : int;
}

(* Invariant for [Full_state]: [aux] valid implies [main] valid. *)
type state =
  | Full_state of { main : Token.t; aux : Token.t }
  | Half_state of { hold : Token.t; sreg : bool }
      (* [sreg]: delayed copy of the incoming stop, used only under the
         [Original] flavour *)
  | Retx_state of retx

(* One worst-case round trip of the internal hop: the launch slot, the
   data traversal (1 + max extra delay) and the ack's way back.  The
   single source of truth for every bound derived from it — the LID008
   replay-depth lint, the retransmission timeout below, and the RTL
   model's timeout counter — so the analyzer, the skeleton and the
   emitted hardware can never disagree on what "deep enough" means. *)
let round_trip ~max_delay = 3 + max_delay

(* The retransmission timeout must exceed the worst-case round trip
   (go-back-N needs the whole rewind, one round trip out and one back,
   to show ack progress), or every long-delay flit costs a spurious
   rewind.  Two round trips plus slack, in terms of {!round_trip}. *)
let timeout_of_table table =
  (2 * round_trip ~max_delay:(Array.fold_left max 0 table)) + 2

let retx_timeout r = timeout_of_table r.r_table

let initial ?(table = [| 0 |]) = function
  | Full -> Full_state { main = Token.void; aux = Token.void }
  | Half -> Half_state { hold = Token.void; sreg = false }
  | Retx { depth } ->
      let table = if Array.length table = 0 then [| 0 |] else table in
      Retx_state
        {
          r_depth = max 1 depth;
          r_table = table;
          r_buf = [];
          r_next_seq = 0;
          r_cursor = 0;
          r_timer = 0;
          r_count = 0;
          r_flit = None;
          r_ack = None;
          r_expect = 0;
          r_out = Token.void;
          r_occ = 0;
          r_recov = 0;
          r_dups = 0;
        }

let kind = function
  | Full_state _ -> Full
  | Half_state _ -> Half
  | Retx_state r -> Retx { depth = r.r_depth }

let occupancy = function
  | Full_state { main; aux } ->
      (if Token.is_valid main then 1 else 0) + if Token.is_valid aux then 1 else 0
  | Half_state { hold; _ } -> if Token.is_valid hold then 1 else 0
  | Retx_state r -> r.r_occ

let sreg = function
  | Full_state _ -> false
  | Half_state { sreg; _ } -> sreg
  | Retx_state _ -> false

let recoveries = function Retx_state r -> r.r_recov | _ -> 0
let dup_discards = function Retx_state r -> r.r_dups | _ -> 0

(* Equality of everything that drives future transitions and signature
   codes: structural equality with the monotone observability counters
   masked out.  Two behaviourally equal states evolve identically under
   fault-free stepping, differing only by constant counter offsets. *)
let behavioural_equal a b =
  match (a, b) with
  | Retx_state ra, Retx_state rb ->
      { ra with r_recov = 0; r_dups = 0 } = { rb with r_recov = 0; r_dups = 0 }
  | _ -> a = b

let flit_arriving = function
  | Retx_state { r_flit = Some f; _ } -> f.f_wait = 0
  | _ -> false

let present state ~input =
  match state with
  | Full_state { main; _ } -> main
  | Half_state { hold; sreg } ->
      (* While the registered stop is asserted the producer was told its
         datum is not consumed, so it must not be forwarded either (it
         would be delivered twice). *)
      if Token.is_valid hold then hold else if sreg then Token.void else input
  | Retx_state r -> r.r_out

let stop_upstream = function
  | Full_state { aux; _ } -> Token.is_valid aux
  | Half_state { hold; sreg } -> Token.is_valid hold || sreg
  | Retx_state r -> List.length r.r_buf >= r.r_depth

let step_retx r ~input ~stop_in ~link =
  let buf_n = List.length r.r_buf in
  (* 1. receiver: the flit finishing its link traversal, as damaged by
     the injected link fault. *)
  let arriving, flit_left =
    match r.r_flit with
    | None -> (None, None)
    | Some f when f.f_wait > 0 -> (None, Some { f with f_wait = f.f_wait - 1 })
    | Some f -> (
        match link with
        | Link_ok -> (Some (f.f_seq, f.f_val, true), None)
        | Link_corrupt m -> (Some (f.f_seq, f.f_val lxor m, false), None)
        | Link_corrupt_silent m -> (Some (f.f_seq, f.f_val lxor m, true), None)
        | Link_drop -> (None, None)
        | Link_dup -> (Some (f.f_seq, f.f_val, true), Some { f with f_wait = 0 }))
  in
  let out_consumed = Token.is_valid r.r_out && not stop_in in
  let out0 = if out_consumed then Token.void else r.r_out in
  (* 2. receiver processes the arrival: exactly-once, in-order. *)
  let out1, expect', rx_ack, dups' =
    match arriving with
    | None -> (out0, r.r_expect, None, r.r_dups)
    | Some (seq, v, intact) ->
        if not intact then
          (* detected damage: ask for a resend from the expected seq *)
          ( out0,
            r.r_expect,
            Some { a_seq = r.r_expect; a_nack = true; a_recover = true },
            r.r_dups )
        else if seq < r.r_expect then
          (* stale duplicate (re-sent or duplicated in flight): discard,
             refresh the cumulative ack so the sender advances *)
          ( out0,
            r.r_expect,
            Some { a_seq = r.r_expect; a_nack = false; a_recover = false },
            r.r_dups + 1 )
        else if seq > r.r_expect then
          (* sequence gap: an earlier flit was lost on the hop *)
          ( out0,
            r.r_expect,
            Some { a_seq = r.r_expect; a_nack = true; a_recover = true },
            r.r_dups )
        else if Token.is_valid out0 then
          (* in order, but the output register is still held downstream:
             refuse without counting a recovery *)
          ( out0,
            r.r_expect,
            Some { a_seq = r.r_expect; a_nack = true; a_recover = false },
            r.r_dups )
        else
          ( Token.valid v,
            r.r_expect + 1,
            Some { a_seq = r.r_expect + 1; a_nack = false; a_recover = false },
            r.r_dups )
  in
  (* 3. sender: the ack launched last cycle arrives. *)
  let buf1, cursor1, timer1, recov1, progressed =
    match r.r_ack with
    | None -> (r.r_buf, r.r_cursor, r.r_timer, r.r_recov, false)
    | Some a ->
        let rec drop n = function
          | (s, _) :: rest when s < a.a_seq -> drop (n + 1) rest
          | rest -> (n, rest)
        in
        let dropped, buf' = drop 0 r.r_buf in
        if a.a_nack then
          ( buf',
            0,
            0,
            (if a.a_recover then r.r_recov + 1 else r.r_recov),
            true )
        else
          ( buf',
            max 0 (r.r_cursor - dropped),
            (if dropped > 0 then 0 else r.r_timer),
            r.r_recov,
            dropped > 0 )
  in
  (* 4. timeout: outstanding un-acked data and no progress. *)
  let timer2, cursor2, recov2 =
    if buf1 = [] then (0, cursor1, recov1)
    else if progressed then (timer1, cursor1, recov1)
    else if timer1 >= retx_timeout r then (0, 0, recov1 + 1)
    else (timer1 + 1, cursor1, recov1)
  in
  (* 5. accept the producer's handover (it saw our pre-cycle stop). *)
  let accept = Token.is_valid input && buf_n < r.r_depth in
  let buf2, next_seq' =
    if accept then (buf1 @ [ (r.r_next_seq, Token.value input) ], r.r_next_seq + 1)
    else (buf1, r.r_next_seq)
  in
  (* 6. launch the next flit when the data hop is free. *)
  let flit', cursor3, count' =
    match flit_left with
    | Some _ -> (flit_left, cursor2, r.r_count)
    | None ->
        if cursor2 < List.length buf2 then
          let s, v = List.nth buf2 cursor2 in
          let wait = r.r_table.(r.r_count) in
          ( Some { f_seq = s; f_val = v; f_wait = wait },
            cursor2 + 1,
            (r.r_count + 1) mod Array.length r.r_table )
        else (None, cursor2, r.r_count)
  in
  Retx_state
    {
      r with
      r_buf = buf2;
      r_next_seq = next_seq';
      r_cursor = cursor3;
      r_timer = timer2;
      r_count = count';
      r_flit = flit';
      r_ack = rx_ack;
      r_expect = expect';
      r_out = out1;
      r_occ = r.r_occ + (if accept then 1 else 0) - (if out_consumed then 1 else 0);
      r_recov = recov2;
      r_dups = dups';
    }

let step ?(flavour = Protocol.Optimized) ?(link = Link_ok) state ~input ~stop_in =
  match state with
  | Full_state { main; aux } ->
      (* [take]: a valid datum is arriving and we did not assert stop this
         cycle, so the producer considers it consumed — we must store it. *)
      let take = Token.is_valid input && not (Token.is_valid aux) in
      let consumed = Token.is_valid main && not stop_in in
      let main', aux' =
        match (Token.is_valid main, consumed, Token.is_valid aux) with
        | false, _, _ -> ((if take then input else Token.void), Token.void)
        | true, true, true -> (aux, Token.void)
        | true, true, false -> ((if take then input else Token.void), Token.void)
        | true, false, false -> (main, if take then input else Token.void)
        | true, false, true -> (main, aux)
      in
      Full_state { main = main'; aux = aux' }
  | Half_state { hold; sreg } ->
      let sreg' =
        match flavour with
        | Protocol.Original -> stop_in
        | Protocol.Optimized -> false
      in
      if Token.is_valid hold then
        (* Producer is held by our registered stop; the datum leaves when
           the consumer releases stop. *)
        Half_state { hold = (if stop_in then hold else Token.void); sreg = sreg' }
      else if (not sreg) && Token.is_valid input && stop_in then
        (* The passing datum was not consumed downstream: capture it. *)
        Half_state { hold = input; sreg = sreg' }
      else Half_state { hold = Token.void; sreg = sreg' }
  | Retx_state r -> step_retx r ~input ~stop_in ~link

let tokens = function
  | Full_state { main; aux } -> List.filter Token.is_valid [ main; aux ]
  | Half_state { hold; _ } -> List.filter Token.is_valid [ hold ]
  | Retx_state r ->
      List.filter Token.is_valid
        (r.r_out
         :: (match r.r_flit with
            | Some f -> [ Token.valid f.f_val ]
            | None -> [])
        @ List.map (fun (_, v) -> Token.valid v) r.r_buf)

let map_tokens f = function
  | Full_state { main; aux } -> Full_state { main = f main; aux = f aux }
  | Half_state { hold; sreg } -> Half_state { hold = f hold; sreg }
  | Retx_state r ->
      let pay v =
        match f (Token.valid v) with Token.Valid v' -> v' | Token.Void -> v
      in
      Retx_state
        {
          r with
          r_out = f r.r_out;
          r_buf = List.map (fun (s, v) -> (s, pay v)) r.r_buf;
          r_flit =
            Option.map (fun fl -> { fl with f_val = pay fl.f_val }) r.r_flit;
        }

let upset ~payload = function
  | Full_state { main; aux } ->
      if Token.is_valid main then
        if Token.is_valid aux then Full_state { main = aux; aux = Token.void }
        else Full_state { main = Token.void; aux = Token.void }
      else Full_state { main = Token.valid payload; aux = Token.void }
  | Half_state { hold; sreg } ->
      if Token.is_valid hold then Half_state { hold = Token.void; sreg }
      else Half_state { hold = Token.valid payload; sreg }
  | Retx_state r ->
      (* upset the output register; [r_occ] tracks the token count so the
         conservation monitor sees exactly one loss (or conjure) *)
      if Token.is_valid r.r_out then
        Retx_state { r with r_out = Token.void; r_occ = r.r_occ - 1 }
      else Retx_state { r with r_out = Token.valid payload; r_occ = r.r_occ + 1 }

(* A dense integer capturing every protocol-relevant field of a station:
   the code the engines fold into state signatures.  Sequence numbers
   enter only as clamped differences, and the monotone observability
   counters not at all — otherwise no periodic run would ever repeat a
   signature. *)
(* Sequence numbers only ever meet in equalities and differences (ack
   prefix drops, duplicate detection, go-back-N rewinds), so shifting
   every seq field by one common offset is a bisimulation.  Shifting by a
   multiple of [granule] additionally preserves any payload = seq mod
   granule correspondence an external observer tracks.  The verifier's
   contract discharge folds this into the transition function so the
   reachable quotient of a retx station is finite. *)
let rebase ~granule state =
  match state with
  | Full_state _ | Half_state _ -> state
  | Retx_state r ->
      let granule = max 1 granule in
      let seqs =
        r.r_next_seq :: r.r_expect
        :: List.map fst r.r_buf
        @ (match r.r_flit with Some f -> [ f.f_seq ] | None -> [])
        @ (match r.r_ack with Some a -> [ a.a_seq ] | None -> [])
      in
      let base =
        List.fold_left min max_int seqs / granule * granule
      in
      if base <= 0 then Retx_state { r with r_recov = 0; r_dups = 0 }
      else
        Retx_state
          {
            r with
            r_buf = List.map (fun (s, v) -> (s - base, v)) r.r_buf;
            r_next_seq = r.r_next_seq - base;
            r_flit =
              Option.map (fun f -> { f with f_seq = f.f_seq - base }) r.r_flit;
            r_ack =
              Option.map (fun a -> { a with a_seq = a.a_seq - base }) r.r_ack;
            r_expect = r.r_expect - base;
            r_recov = 0;
            r_dups = 0;
          }

let signature_code state =
  match state with
  | Full_state _ | Half_state _ ->
      occupancy state + if sreg state then 4 else 0
  | Retx_state r ->
      let clamp lo hi v = if v < lo then lo else if v > hi then hi else v in
      let d = r.r_depth in
      let base_seq =
        match r.r_buf with (s, _) :: _ -> s | [] -> r.r_next_seq
      in
      let rel v = clamp 0 ((2 * d) + 4) (v + d + 2) in
      let acc = List.length r.r_buf in
      let acc = (acc * (d + 2)) + r.r_cursor in
      let acc = (acc * (retx_timeout r + 2)) + clamp 0 (retx_timeout r + 1) r.r_timer in
      let acc = (acc * Array.length r.r_table) + r.r_count in
      let acc =
        (acc * ((2 * d) + 6))
        +
        match r.r_flit with
        | None -> 0
        | Some f -> 1 + rel (f.f_seq - base_seq)
      in
      let acc =
        (acc * (Array.fold_left max 0 r.r_table + 2))
        + match r.r_flit with None -> 0 | Some f -> f.f_wait
      in
      let acc =
        (acc * (2 * ((2 * d) + 6)))
        +
        match r.r_ack with
        | None -> 0
        | Some a ->
            (if a.a_nack then (2 * d) + 6 else 0) + 1 + rel (a.a_seq - r.r_expect)
      in
      let acc = (acc * 2) + if Token.is_valid r.r_out then 1 else 0 in
      let acc = (acc * ((2 * d) + 5)) + rel (r.r_next_seq - r.r_expect) in
      (acc * ((2 * d) + 5)) + rel r.r_occ

let pp fmt state =
  match state with
  | Full_state { main; aux } ->
      Format.fprintf fmt "RS[%a|%a]" Token.pp main Token.pp aux
  | Half_state { hold; sreg } ->
      Format.fprintf fmt "HRS[%a%s]" Token.pp hold (if sreg then "|s" else "")
  | Retx_state r ->
      Format.fprintf fmt "XRS[buf:%d cur:%d %s%s out:%a exp:%d rec:%d]"
        (List.length r.r_buf) r.r_cursor
        (match r.r_flit with
        | Some f -> Printf.sprintf "fl:%d+%d " f.f_seq f.f_wait
        | None -> "")
        (match r.r_ack with
        | Some a -> Printf.sprintf "%s:%d " (if a.a_nack then "nack" else "ack") a.a_seq
        | None -> "")
        Token.pp r.r_out r.r_expect r.r_recov
