type kind = Full | Half

let kind_to_string = function Full -> "full" | Half -> "half"
let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)
let capacity = function Full -> 2 | Half -> 1
let forward_latency = function Full -> 1 | Half -> 0

(* Invariant for [Full_state]: [aux] valid implies [main] valid. *)
type state =
  | Full_state of { main : Token.t; aux : Token.t }
  | Half_state of { hold : Token.t; sreg : bool }
      (* [sreg]: delayed copy of the incoming stop, used only under the
         [Original] flavour *)

let initial = function
  | Full -> Full_state { main = Token.void; aux = Token.void }
  | Half -> Half_state { hold = Token.void; sreg = false }

let kind = function Full_state _ -> Full | Half_state _ -> Half

let occupancy = function
  | Full_state { main; aux } ->
      (if Token.is_valid main then 1 else 0) + if Token.is_valid aux then 1 else 0
  | Half_state { hold; _ } -> if Token.is_valid hold then 1 else 0

let sreg = function Full_state _ -> false | Half_state { sreg; _ } -> sreg

let present state ~input =
  match state with
  | Full_state { main; _ } -> main
  | Half_state { hold; sreg } ->
      (* While the registered stop is asserted the producer was told its
         datum is not consumed, so it must not be forwarded either (it
         would be delivered twice). *)
      if Token.is_valid hold then hold else if sreg then Token.void else input

let stop_upstream = function
  | Full_state { aux; _ } -> Token.is_valid aux
  | Half_state { hold; sreg } -> Token.is_valid hold || sreg

let step ?(flavour = Protocol.Optimized) state ~input ~stop_in =
  match state with
  | Full_state { main; aux } ->
      (* [take]: a valid datum is arriving and we did not assert stop this
         cycle, so the producer considers it consumed — we must store it. *)
      let take = Token.is_valid input && not (Token.is_valid aux) in
      let consumed = Token.is_valid main && not stop_in in
      let main', aux' =
        match (Token.is_valid main, consumed, Token.is_valid aux) with
        | false, _, _ -> ((if take then input else Token.void), Token.void)
        | true, true, true -> (aux, Token.void)
        | true, true, false -> ((if take then input else Token.void), Token.void)
        | true, false, false -> (main, if take then input else Token.void)
        | true, false, true -> (main, aux)
      in
      Full_state { main = main'; aux = aux' }
  | Half_state { hold; sreg } ->
      let sreg' =
        match flavour with
        | Protocol.Original -> stop_in
        | Protocol.Optimized -> false
      in
      if Token.is_valid hold then
        (* Producer is held by our registered stop; the datum leaves when
           the consumer releases stop. *)
        Half_state { hold = (if stop_in then hold else Token.void); sreg = sreg' }
      else if (not sreg) && Token.is_valid input && stop_in then
        (* The passing datum was not consumed downstream: capture it. *)
        Half_state { hold = input; sreg = sreg' }
      else Half_state { hold = Token.void; sreg = sreg' }

let tokens = function
  | Full_state { main; aux } ->
      List.filter Token.is_valid [ main; aux ]
  | Half_state { hold; _ } -> List.filter Token.is_valid [ hold ]

let map_tokens f = function
  | Full_state { main; aux } -> Full_state { main = f main; aux = f aux }
  | Half_state { hold; sreg } -> Half_state { hold = f hold; sreg }

let upset ~payload = function
  | Full_state { main; aux } ->
      if Token.is_valid main then
        if Token.is_valid aux then Full_state { main = aux; aux = Token.void }
        else Full_state { main = Token.void; aux = Token.void }
      else Full_state { main = Token.valid payload; aux = Token.void }
  | Half_state { hold; sreg } ->
      if Token.is_valid hold then Half_state { hold = Token.void; sreg }
      else Half_state { hold = Token.valid payload; sreg }

let pp fmt state =
  match state with
  | Full_state { main; aux } ->
      Format.fprintf fmt "RS[%a|%a]" Token.pp main Token.pp aux
  | Half_state { hold; sreg } ->
      Format.fprintf fmt "HRS[%a%s]" Token.pp hold (if sreg then "|s" else "")
