(** Pearls: the functional modules that shells encapsulate.

    A pearl is a deterministic Moore machine over integer data: its visible
    outputs are registered, so at cycle 0 it presents [initial_output] and
    afterwards the outputs computed from the inputs it consumed one firing
    earlier.  In the zero-latency reference design a pearl fires every
    cycle; inside a shell it fires only when the protocol allows. *)

type t = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  init_state : int array;
  initial_output : int array;  (** presented before the first firing *)
  f : int array -> int array -> int array * int array;
      (** [f state inputs] is [(state', outputs)];  [Array.length inputs =
          n_inputs] and the result must have [n_outputs] outputs. *)
}

val create :
  name:string ->
  n_inputs:int ->
  n_outputs:int ->
  ?init_state:int array ->
  initial_output:int array ->
  (int array -> int array -> int array * int array) ->
  t

(** {1 A small standard library of pearls} *)

val counter : ?start:int -> unit -> t
(** 0-input, 1-output source emitting [start, start+1, ...]; initial output
    [start]. *)

val identity : unit -> t
(** 1-input, 1-output repeater; initial output 0. *)

val delay_chain : ?name:string -> int -> t
(** [delay_chain k]: 1-input, 1-output pearl whose output is the input
    delayed by [k] firings (internal pipeline of depth [k], initialized to
    zero). [k >= 0]; [delay_chain 0] is {!identity}. *)

val adder : unit -> t
(** 2-input, 1-output sum. *)

val accumulator : unit -> t
(** 1-input, 1-output running sum. *)

val fork2 : unit -> t
(** 1-input, 2-output copy. *)

val combine : ?name:string -> (int -> int -> int) -> t
(** 2-input, 1-output pointwise combination. *)

val tap : unit -> t
(** 2-input, 2-output router: both outputs carry the sum of the inputs
    (the loop tap of {!Topology.Generators.ring_tapped} and the switch
    node of the NoC fabrics). *)

val map1 : ?name:string -> (int -> int) -> t
(** 1-input, 1-output pointwise function. *)

val apply : t -> state:int array -> inputs:int array -> int array * int array
(** [apply p ~state ~inputs] runs [p.f] and validates arities; raises
    [Invalid_argument] on violation. *)

val of_name : string -> t option
(** Standard-library lookup: ["identity"], ["inc"], ["square"], ["adder"],
    ["diff"], ["fork2"], ["tap"], ["accumulator"], ["counter"], ["delayN"]
    (e.g. ["delay3"]).  These are exactly the pearls {!Rtl_gen} /
    [Topology.Rtl_net] can also map to hardware. *)

val standard_names : string list

val pp : Format.formatter -> t -> unit
