(* Channel latency profiles: the "dynamic LID" wire model.

   A profile describes the extra traversal delay (in cycles, beyond the
   channel's usual relay pipeline) that successive tokens experience on a
   long or unpredictable wire.  Profiles are compiled once per channel
   into a small periodic delay table; everything downstream (both
   skeleton engines, the retransmitting relay station) indexes that
   table with a per-channel launch counter, so a given (profile, edge)
   pair yields the same delay schedule everywhere — bit-for-bit. *)

type profile =
  | Fixed of int
  | Jitter of { base : int; bound : int; seed : int }
  | Distance of { length : int; pitch : int }
  | Table of int array

(* Length of the compiled table for [Jitter]: a prime, so the schedule
   does not resonate with small environment periods. *)
let jitter_period = 31

let clampd d = if d < 0 then 0 else d

(* splitmix-style finalizer over OCaml's 63-bit ints; pure, so the two
   engines and every campaign domain agree on the schedule. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x3f58476d1ce4e5b9 land max_int in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14d049bb133111eb land max_int in
  x lxor (x lsr 31)

let distance_delay ~length ~pitch =
  if length <= 0 || pitch <= 0 then 0
  else clampd (((length + pitch - 1) / pitch) - 1)

let table ~edge profile =
  match profile with
  | Fixed d -> [| clampd d |]
  | Distance { length; pitch } -> [| distance_delay ~length ~pitch |]
  | Table [||] -> [| 0 |]
  | Table t -> Array.map clampd t
  | Jitter { base; bound; seed } ->
      let base = clampd base and bound = clampd bound in
      Array.init jitter_period (fun i ->
          let h = mix ((seed * 0x1009) lxor (edge * 0x9e3779b9) lxor i) in
          base + (h mod (bound + 1)))

let max_delay profile =
  match profile with
  | Fixed d -> clampd d
  | Distance { length; pitch } -> distance_delay ~length ~pitch
  | Table t -> Array.fold_left (fun acc d -> max acc (clampd d)) 0 t
  | Jitter { base; bound; _ } -> clampd base + clampd bound

let min_delay profile =
  match profile with
  | Fixed d -> clampd d
  | Distance { length; pitch } -> distance_delay ~length ~pitch
  | Table [||] -> 0
  | Table t ->
      Array.fold_left (fun acc d -> min acc (clampd d)) max_int t
  | Jitter { base; _ } -> clampd base

let equal (a : profile) b = a = b

let to_string = function
  | Fixed d -> Printf.sprintf "fixed:%d" d
  | Jitter { base; bound; seed } -> Printf.sprintf "jitter:%d:%d:%d" base bound seed
  | Distance { length; pitch } -> Printf.sprintf "dist:%d:%d" length pitch
  | Table t ->
      "table:"
      ^ String.concat ","
          (Array.to_list (Array.map string_of_int t))

let of_string s =
  let int_of s = int_of_string_opt s in
  match String.split_on_char ':' s with
  | [ "fixed"; d ] -> Option.map (fun d -> Fixed d) (int_of d)
  | [ "jitter"; bound ] ->
      Option.map (fun bound -> Jitter { base = 0; bound; seed = 1 }) (int_of bound)
  | [ "jitter"; base; bound ] -> (
      match (int_of base, int_of bound) with
      | Some base, Some bound -> Some (Jitter { base; bound; seed = 1 })
      | _ -> None)
  | [ "jitter"; base; bound; seed ] -> (
      match (int_of base, int_of bound, int_of seed) with
      | Some base, Some bound, Some seed -> Some (Jitter { base; bound; seed })
      | _ -> None)
  | [ "dist"; length; pitch ] -> (
      match (int_of length, int_of pitch) with
      | Some length, Some pitch -> Some (Distance { length; pitch })
      | _ -> None)
  | [ "table"; entries ] -> (
      let parts = String.split_on_char ',' entries in
      let ds = List.filter_map int_of parts in
      if List.length ds = List.length parts && ds <> [] then
        Some (Table (Array.of_list ds))
      else None)
  | _ -> None

let pp fmt p = Format.pp_print_string fmt (to_string p)
