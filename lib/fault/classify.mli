(** Outcome classification of a single fault injection.

    Each injection runs the faulted LID side by side with two oracles — the
    zero-latency reference ({!Skeleton.Reference}) for the value streams
    the sinks must see, and a fault-free run of the same LID for the pace
    they should arrive at — plus the runtime monitors and the deadlock
    watchdog.  The evidence is folded into one of eight bins, ordered by
    severity; when several symptoms coexist the worst wins.

    Systems with retransmitting stations ({!Lid.Relay_station.Retx}) add a
    recovery dimension: a run that stayed clean {e because} the protocol
    resent damaged or dropped flits is binned {!Masked_by_retx} rather than
    {!Masked}, and a wedged run that was still burning retransmissions is
    {!Livelock} rather than {!Deadlock}. *)

type outcome =
  | Masked  (** no observable difference, no monitor violation *)
  | Latency_only
      (** sink streams still a prefix of the reference, but the schedule
          shifted against the fault-free run *)
  | Masked_by_retx
      (** observationally {!Masked} or {!Latency_only}, but only because a
          retransmitting station recovered at least one flit *)
  | Token_loss  (** a token vanished (or a refused token was not held) *)
  | Token_duplication  (** a token was delivered or stored twice *)
  | Data_corrupting
      (** a sink saw a value the reference never produced (including
          out-of-order delivery) *)
  | Livelock
      (** wedged like {!Deadlock}, but with recovery traffic still being
          generated — the protocol keeps retrying and never wins *)
  | Deadlock
      (** the post-fault system settled into a periodic regime with no
          firing — wedged forever *)

val all_outcomes : outcome list

val rank : outcome -> int
(** Severity, [0] = {!Masked} .. [7] = {!Deadlock}. *)

val outcome_to_string : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

type evidence = {
  violations : Monitor.violation list;  (** runtime monitor verdicts *)
  watchdog : Monitor.Watchdog.verdict;
  delivered : int;  (** total values the faulted run's sinks consumed *)
  baseline_delivered : int;  (** same for the fault-free run *)
  sink_anomaly : string option;
      (** first stream-level divergence from the reference, rendered *)
  recoveries : int;
      (** successful flit retransmissions across all retransmitting
          stations ([0] on networks without them) *)
}

type report = { fault : Model.t; outcome : outcome; evidence : evidence }

type baseline
(** Oracles shared by every injection of a campaign: the reference streams
    and the fault-free LID run for one (network, flavour, horizon). *)

val baseline :
  ?cycles:int -> flavour:Lid.Protocol.flavour -> Topology.Network.t -> baseline
(** Default horizon: 256 cycles. *)

val classify : baseline -> Model.t -> report
(** Inject one fault, run to the horizon, and bin the outcome. *)

val classify_fast : baseline -> Model.t -> report
(** As {!classify}, on the packed engine ({!Skeleton.Packed.probe_next})
    instead of the instrumented one: identical reports (the probes,
    watchdog keys and streams carry the same information), several times
    faster.  The campaign drivers use this path. *)

type replay
(** A recorded fault-free monitored run — the stand-in classification
    input for faults proven non-divergent by the lane-parallel engine
    ({!Skeleton.Packed_lanes}). *)

val replay : baseline -> replay option
(** Run the fault-free system once, monitored, recording per-cycle
    watchdog keys, progress bits and the sink streams.  [None] if the
    fault-free run itself trips a monitor or contradicts the baseline
    streams (then nothing can be synthesized and every fault must be
    simulated). *)

val masked_report : baseline -> replay -> Model.t -> report
(** The report {!classify} would produce for a fault whose injected run
    is observationally identical to the fault-free run: no simulation,
    just the fault's own watchdog window re-played over the recorded
    keys.  Sound only for faults the lane engine proved non-divergent. *)

(** {1 Incremental classification}

    A {!recording} captures one fault-free run — per-cycle probes,
    signature keys, progress bits, and full state snapshots at fault
    window starts and a fixed checkpoint stride — on a single packed
    engine whose signature intern is shared by every fault classified
    against it.  {!classify_incr} restores that engine to a fault's
    window start, re-steps only the perturbed middle, and splices the
    recorded tail back on once {!Skeleton.Packed.converged} proves the
    live state is behaviourally back on the recorded trajectory.
    Reports are structurally identical to {!classify_fast}'s (asserted
    by the lockstep tests); post-window cycles cost a state compare at
    checkpoints instead of a re-simulation whenever the perturbation
    has been absorbed. *)

type recording

val recording_checkpoint : int
(** Default checkpoint stride (cycles between convergence tests). *)

val recording_estimate :
  cycles:int -> edges:int -> snapshots:int -> state_words:int -> int
(** Rough recording footprint in bytes — the campaign driver's memory
    gate compares this against its budget before choosing the
    incremental path. *)

val record :
  ?checkpoint:int -> baseline -> window_starts:int list -> recording option
(** Run the fault-free system once, monitored, snapshotting before each
    cycle in [window_starts] (clamped to the horizon), every
    [checkpoint] cycles, and at the horizon.  [None] under the same
    conditions as {!replay} — then every fault of the batch must be
    simulated with {!classify_fast}.

    The recording owns its engine: classifying against it mutates that
    engine, so a recording must not be shared across domains — build one
    per worker. *)

val classify_incr : baseline -> recording -> Model.t -> report
(** As {!classify_fast}, against a recording: restore, re-step the
    window and the wake of the perturbation, splice the recorded tail at
    the first checkpoint where the state has provably reconverged.
    Falls back to {!classify_fast} when the fault's window start has no
    snapshot (a caller that listed it in [window_starts] never hits
    this). *)
