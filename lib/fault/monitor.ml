module Net = Topology.Network
module Token = Lid.Token
module Engine = Skeleton.Engine

type violation_kind =
  | Token_lost
  | Token_duplicated
  | Token_mismatched
  | Token_reordered
  | Hold_violated

type violation = {
  v_cycle : int;
  v_edge : Net.edge_id;
  v_kind : violation_kind;
  v_detail : string;
}

let violation_kind_to_string = function
  | Token_lost -> "token-lost"
  | Token_duplicated -> "token-duplicated"
  | Token_mismatched -> "token-mismatched"
  | Token_reordered -> "token-reordered"
  | Hold_violated -> "hold-violated"

let pp_violation net fmt v =
  let e = Net.edge net v.v_edge in
  Format.fprintf fmt "cycle %d, %s.%d->%s.%d: %s (%s)" v.v_cycle
    (Net.node net e.src.node).name e.src.port
    (Net.node net e.dst.node).name e.dst.port
    (violation_kind_to_string v.v_kind)
    v.v_detail

(* A value the resynchronized ledger uses for tokens whose payload it could
   not observe; it matches anything on delivery. *)
let unknown = min_int

type chan = {
  ledger : int Queue.t;  (* values in flight, oldest first *)
  mutable prev_dst : (Token.t * bool) option;
}

type t = {
  chans : chan array;  (* indexed by edge id *)
  mutable violations_rev : violation list;
}

let create net =
  {
    chans =
      Array.init (Net.n_edges net) (fun _ ->
          { ledger = Queue.create (); prev_dst = None });
    violations_rev = [];
  }

let flag t ~cycle ~edge kind detail =
  t.violations_rev <-
    { v_cycle = cycle; v_edge = edge; v_kind = kind; v_detail = detail }
    :: t.violations_rev

(* The per-channel obligations for one cycle, shared by every probe
   source ([Engine] snapshots and [Packed] probe views). *)
let observe_chan t ~cycle ~edge (p : Engine.probe) =
  let c = t.chans.(edge) in
  (* 1. conservation: the ledger left by the previous cycles must agree
     with the tokens actually resting in the relay chain. *)
  let len = Queue.length c.ledger in
  if len <> p.pr_occupancy then begin
    if len > p.pr_occupancy then begin
      flag t ~cycle ~edge Token_lost
        (Printf.sprintf "%d token(s) in flight but %d stored" len
           p.pr_occupancy);
      for _ = 1 to len - p.pr_occupancy do
        ignore (Queue.pop c.ledger)
      done
    end
    else begin
      flag t ~cycle ~edge Token_duplicated
        (Printf.sprintf "%d token(s) stored but only %d in flight"
           p.pr_occupancy len);
      for _ = 1 to p.pr_occupancy - len do
        Queue.push unknown c.ledger
      done
    end
  end;
  (* 2. stop-implies-hold at the consumer boundary. *)
  (match c.prev_dst with
  | Some (Token.Valid v, true)
    when not (Token.equal p.pr_dst_tok (Token.valid v)) ->
      flag t ~cycle ~edge Hold_violated
        (Printf.sprintf "refused token %d replaced by %s" v
           (Token.to_string p.pr_dst_tok))
  | _ -> ());
  c.prev_dst <- Some (p.pr_dst_tok, p.pr_dst_stop);
  (* 3. the producer hands a datum over: it enters the channel. *)
  (match p.pr_src_tok with
  | Token.Valid v when not p.pr_src_stop -> Queue.push v c.ledger
  | _ -> ());
  (* 4. the consumer accepts a datum: the oldest in flight leaves. *)
  match p.pr_dst_tok with
  | Token.Valid got when not p.pr_dst_stop ->
      if Queue.is_empty c.ledger then
        flag t ~cycle ~edge Token_duplicated
          (Printf.sprintf "delivered %d with nothing in flight" got)
      else
        let expected = Queue.pop c.ledger in
        if expected <> got && expected <> unknown then
          (* a wrong value that is still in flight further back is a
             reordering, not a substitution *)
          if Queue.fold (fun acc v -> acc || v = got) false c.ledger then
            flag t ~cycle ~edge Token_reordered
              (Printf.sprintf
                 "expected %d, delivered %d (still in flight)" expected got)
          else
            flag t ~cycle ~edge Token_mismatched
              (Printf.sprintf "expected %d, delivered %d" expected got)
  | _ -> ()

let observe t (snap : Engine.snapshot) =
  let cycle = snap.snap_cycle in
  List.iter
    (fun (edge, p) -> observe_chan t ~cycle ~edge p)
    snap.chan_probe

let observe_probes t ~cycle probes =
  Array.iteri (fun edge p -> observe_chan t ~cycle ~edge p) probes

let violations t = List.rev t.violations_rev
let attach t engine = Engine.set_monitor engine (Some (observe t))

module Watchdog = struct
  type verdict =
    | Watching
    | Periodic of { transient : int; period : int; live : bool }

  type w = {
    quiesce_after : int;
    seen : (string, int * int) Hashtbl.t;  (* signature -> cycle, progress *)
    mutable progress_n : int;
    mutable verdict : verdict;
  }

  let create ?(quiesce_after = 0) () =
    { quiesce_after; seen = Hashtbl.create 64; progress_n = 0; verdict = Watching }

  let note w ~cycle ~signature ~progress =
    if progress then w.progress_n <- w.progress_n + 1;
    match w.verdict with
    | Periodic _ -> ()
    | Watching ->
        if cycle >= w.quiesce_after then (
          match Hashtbl.find_opt w.seen signature with
          | Some (c0, p0) ->
              w.verdict <-
                Periodic
                  {
                    transient = c0;
                    period = cycle - c0;
                    live = w.progress_n > p0;
                  }
          | None -> Hashtbl.replace w.seen signature (cycle, w.progress_n))

  let verdict w = w.verdict

  let deadlocked w =
    match w.verdict with
    | Periodic { live; _ } -> not live
    | Watching -> false
end
