module Net = Topology.Network
module Engine = Skeleton.Engine
module Reference = Skeleton.Reference

type outcome =
  | Masked
  | Latency_only
  | Masked_by_retx
  | Token_loss
  | Token_duplication
  | Data_corrupting
  | Livelock
  | Deadlock

let all_outcomes =
  [
    Masked;
    Latency_only;
    Masked_by_retx;
    Token_loss;
    Token_duplication;
    Data_corrupting;
    Livelock;
    Deadlock;
  ]

let rank = function
  | Masked -> 0
  | Latency_only -> 1
  | Masked_by_retx -> 2
  | Token_loss -> 3
  | Token_duplication -> 4
  | Data_corrupting -> 5
  | Livelock -> 6
  | Deadlock -> 7

let outcome_to_string = function
  | Masked -> "masked"
  | Latency_only -> "latency-only"
  | Masked_by_retx -> "masked-by-retx"
  | Token_loss -> "token-loss"
  | Token_duplication -> "token-duplication"
  | Data_corrupting -> "data-corrupting"
  | Livelock -> "livelock"
  | Deadlock -> "deadlock"

let pp_outcome fmt o = Format.pp_print_string fmt (outcome_to_string o)

type evidence = {
  violations : Monitor.violation list;
  watchdog : Monitor.Watchdog.verdict;
  delivered : int;
  baseline_delivered : int;
  sink_anomaly : string option;
  recoveries : int;
}

type report = { fault : Model.t; outcome : outcome; evidence : evidence }

type baseline = {
  net : Net.t;
  b_flavour : Lid.Protocol.flavour;
  b_cycles : int;
  ref_streams : (Net.node_id * string * int array) list;
  base_streams : (Net.node_id * int list) list;
  b_delivered : int;
  b_live : bool;
      (* a fault is only blamed for a deadlock if the fault-free system
         was live — some systems (e.g. half stations in loops under the
         original flavour) wedge on their own *)
}

let sink_streams engine net =
  List.map (fun (n : Net.node) -> (n.id, Engine.sink_values engine n.id)) (Net.sinks net)

let baseline ?(cycles = 256) ~flavour net =
  let reference = Reference.create net in
  Reference.run reference ~cycles;
  let ref_streams =
    List.map
      (fun (n : Net.node) ->
        (n.id, n.name, Array.of_list (Reference.sink_values reference n.id)))
      (Net.sinks net)
  in
  let engine = Engine.create ~flavour net in
  let wd = Monitor.Watchdog.create () in
  for _ = 1 to cycles do
    let snap = Engine.snapshot_next engine in
    let progress = List.exists (fun (_, fired) -> fired) snap.node_fired in
    Monitor.Watchdog.note wd ~cycle:snap.snap_cycle
      ~signature:(Engine.signature engine) ~progress
  done;
  let base_streams = sink_streams engine net in
  let b_delivered =
    List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 base_streams
  in
  {
    net;
    b_flavour = flavour;
    b_cycles = cycles;
    ref_streams;
    base_streams;
    b_delivered;
    b_live = not (Monitor.Watchdog.deadlocked wd);
  }

(* Greedy alignment of a delivered stream against the reference stream:
   walks both, forgiving one-step lookahead (a lost token) and one-step
   lookback (a duplicated delivery); anything else is a substitution. *)
let align reference delivered =
  let subs = ref 0 and dups = ref 0 and losses = ref 0 in
  let n = Array.length reference in
  let i = ref 0 in
  List.iter
    (fun got ->
      if !i < n && got = reference.(!i) then incr i
      else if !i + 1 < n && got = reference.(!i + 1) then begin
        incr losses;
        i := !i + 2
      end
      else if !i > 0 && got = reference.(!i - 1) then incr dups
      else begin
        incr subs;
        incr i
      end)
    delivered;
  (!subs, !dups, !losses)

(* Fold one faulted run's evidence — monitor violations, watchdog
   verdict, sink streams — into a report.  Shared verbatim by the three
   run strategies: {!classify} (instrumented [Engine]), {!classify_fast}
   (packed engine + probe views) and {!masked_report} (no run at all:
   a recorded fault-free replay). *)
let bin baseline fault ~violations ~wd ~recoveries ~streams =
  let delivered =
    List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 streams
  in
  (* Evidence from the runtime monitors. *)
  let from_violation (v : Monitor.violation) =
    match v.v_kind with
    | Monitor.Token_mismatched | Monitor.Token_reordered -> Data_corrupting
    | Monitor.Token_duplicated -> Token_duplication
    | Monitor.Token_lost | Monitor.Hold_violated -> Token_loss
  in
  (* Evidence from the sink streams against the reference. *)
  let sink_anomaly = ref None in
  let stream_outcomes =
    List.map
      (fun (id, got) ->
        let _, name, reference =
          List.find (fun (i, _, _) -> i = id) baseline.ref_streams
        in
        let n_got = List.length got in
        let prefix =
          n_got <= Array.length reference
          && List.for_all2
               (fun a b -> a = b)
               got
               (Array.to_list (Array.sub reference 0 n_got))
        in
        if prefix then Masked
        else begin
          let subs, dups, losses = align reference got in
          if !sink_anomaly = None then
            sink_anomaly :=
              Some
                (Printf.sprintf
                   "%s: %d substituted, %d duplicated, %d lost vs reference"
                   name subs dups losses);
          if subs > 0 then Data_corrupting
          else if dups > 0 then Token_duplication
          else if losses > 0 then Token_loss
          else Masked
        end)
      streams
  in
  let schedule_shifted =
    List.exists2
      (fun (id, got) (id', base) -> id = id' && got <> base)
      streams baseline.base_streams
  in
  let candidates =
    (if baseline.b_live && Monitor.Watchdog.deadlocked wd then
       (* a wedged system that burned retransmissions on the way down is a
          livelock: the protocol kept fighting, and lost *)
       [ (if recoveries > 0 then Livelock else Deadlock) ]
     else [])
    @ List.map from_violation violations
    @ stream_outcomes
    @ (if schedule_shifted then [ Latency_only ] else [])
  in
  let outcome =
    List.fold_left
      (fun worst o -> if rank o > rank worst then o else worst)
      Masked candidates
  in
  (* A clean run that needed retransmissions to stay clean was recovered,
     not untouched — credit the protocol. *)
  let outcome =
    match outcome with
    | (Masked | Latency_only) when recoveries > 0 -> Masked_by_retx
    | o -> o
  in
  {
    fault;
    outcome;
    evidence =
      {
        violations;
        watchdog = Monitor.Watchdog.verdict wd;
        delivered;
        baseline_delivered = baseline.b_delivered;
        sink_anomaly = !sink_anomaly;
        recoveries;
      };
  }

let classify baseline fault =
  let engine = Engine.create ~flavour:baseline.b_flavour baseline.net in
  Engine.set_fault_hooks engine (Some (Model.hooks [ fault ]));
  let mon = Monitor.create baseline.net in
  let wd =
    Monitor.Watchdog.create ~quiesce_after:(Model.last_cycle fault + 1) ()
  in
  for _ = 1 to baseline.b_cycles do
    let snap = Engine.snapshot_next engine in
    Monitor.observe mon snap;
    let progress =
      List.exists (fun (_, fired) -> fired) snap.node_fired
      || List.exists (fun (_, tok) -> Lid.Token.is_valid tok) snap.sink_got
    in
    Monitor.Watchdog.note wd ~cycle:snap.snap_cycle
      ~signature:(Engine.signature engine) ~progress
  done;
  bin baseline fault
    ~violations:(Monitor.violations mon)
    ~wd
    ~recoveries:(Engine.recovery_count engine)
    ~streams:(sink_streams engine baseline.net)

module Packed = Skeleton.Packed

let packed_sink_streams packed net =
  List.map
    (fun (n : Net.node) -> (n.id, Packed.sink_values packed n.id))
    (Net.sinks net)

(* The packed engine's interned signature ids correspond one-to-one to
   [Engine.signature] strings on the same network, so rendering the id is
   an exact watchdog key: the verdict depends only on which cycles share
   a signature, not on what the string spells. *)
let classify_fast baseline fault =
  let packed = Packed.create ~flavour:baseline.b_flavour baseline.net in
  let hooks = Some (Model.hooks [ fault ]) in
  let first = fault.Model.cycle and last = Model.last_cycle fault in
  let mon = Monitor.create baseline.net in
  let wd =
    Monitor.Watchdog.create ~quiesce_after:(Model.last_cycle fault + 1) ()
  in
  for _ = 1 to baseline.b_cycles do
    (* hooks are identity outside the fault window ([Model.active]), so
       the engine only pays the hooked slow path on the window's cycles *)
    let c = Packed.cycle packed in
    Packed.set_fault_hooks packed
      (if c >= first && c <= last then hooks else None);
    let pv = Packed.probe_next packed in
    Monitor.observe_probes mon ~cycle:pv.Packed.pv_cycle pv.Packed.pv_probes;
    Monitor.Watchdog.note wd ~cycle:pv.Packed.pv_cycle
      ~signature:(string_of_int (Packed.signature_id packed))
      ~progress:(pv.Packed.pv_any_fired || pv.Packed.pv_sink_valid)
  done;
  bin baseline fault
    ~violations:(Monitor.violations mon)
    ~wd
    ~recoveries:(Packed.recovery_count packed)
    ~streams:(packed_sink_streams packed baseline.net)

(* A recorded fault-free monitored run: everything needed to classify,
   without re-simulating, a fault whose lane never diverged from the
   reference lane (see [Skeleton.Packed_lanes]).  Such a fault's run is
   observationally identical to the fault-free one on every input of
   [bin] — probes, signatures, progress, streams — except the watchdog's
   quiesce window, which depends on the fault's own last cycle; so the
   replay keeps the per-cycle signature keys and progress bits and
   re-runs only the (cheap) watchdog per fault. *)
type replay = {
  rp_keys : string array;  (* post-commit signature key per cycle *)
  rp_progress : bool array;
  rp_streams : (Net.node_id * int list) list;
  rp_recoveries : int;  (* retx recoveries of the fault-free run *)
}

let replay baseline =
  let packed = Packed.create ~flavour:baseline.b_flavour baseline.net in
  let mon = Monitor.create baseline.net in
  let n = baseline.b_cycles in
  let keys = Array.make n "" and progress = Array.make n false in
  for c = 0 to n - 1 do
    let pv = Packed.probe_next packed in
    Monitor.observe_probes mon ~cycle:pv.Packed.pv_cycle pv.Packed.pv_probes;
    keys.(c) <- string_of_int (Packed.signature_id packed);
    progress.(c) <- pv.Packed.pv_any_fired || pv.Packed.pv_sink_valid
  done;
  let streams = packed_sink_streams packed baseline.net in
  (* A fault-free run that trips a monitor or misses the recorded base
     streams is not a usable stand-in — fall back to real simulation. *)
  if Monitor.violations mon <> [] || streams <> baseline.base_streams then None
  else
    Some
      {
        rp_keys = keys;
        rp_progress = progress;
        rp_streams = streams;
        rp_recoveries = Packed.recovery_count packed;
      }

let masked_report baseline rp fault =
  let wd =
    Monitor.Watchdog.create ~quiesce_after:(Model.last_cycle fault + 1) ()
  in
  Array.iteri
    (fun c key ->
      Monitor.Watchdog.note wd ~cycle:c ~signature:key
        ~progress:rp.rp_progress.(c))
    rp.rp_keys;
  bin baseline fault ~violations:[] ~wd ~recoveries:rp.rp_recoveries
    ~streams:rp.rp_streams

(* ------------------------------------------------------------------ *)
(* Incremental classification.

   [classify_fast] pays a full horizon of simulation per fault even
   though a fault only perturbs the system between its window start and
   the cycle the protocol has absorbed it.  A {!recording} captures one
   fault-free run — per-cycle probes, interned signature keys, progress
   bits, and full state snapshots at fault window starts and at a fixed
   checkpoint stride — sharing ONE packed engine (and thus one signature
   intern) for every fault classified against it.  {!classify_incr} then
   restores that engine to the fault's window start (the pre-window
   prefix of a faulted run IS the fault-free run: hooks are identity
   before the window), re-steps the perturbed middle with hooks exactly
   as [classify_fast] would, and, at each checkpoint past the window,
   tests exact behavioural state equality against the recorded snapshot.
   On convergence the recorded tail is spliced on: remaining watchdog
   keys and dirty-channel probe rows come from the recording, sink
   streams and recovery totals from the snapshot deltas.

   Bit-identity with [classify_fast] rests on:
   - the restored state at the window start equals what a fresh faulted
     run would hold there (pre-window hooks are [None], and the packed
     engine is deterministic);
   - watchdog verdicts depend only on which cycles share a signature —
     and the shared intern makes id equality coincide with state
     equality across the recorded prefix/tail and the live middle, while
     {!Skeleton.Packed.converged}'s counter-masked equality is exactly
     signature-code equality (relay-station codes exclude the monotone
     counters);
   - each channel's monitor obligations are a pure function of its own
     probe history, so a channel is fed lazily: recorded rows (provably
     violation-free) up to its first divergence, live rows after, and
     recorded rows again past convergence — ascending edge order within
     each cycle preserves the canonical violation order;
   - sink streams and recovery counts after convergence replay the
     recording exactly, so the spliced totals are the live run's. *)

module Bitset = Bitvec.Bitset

type recording = {
  rc_engine : Packed.t;
      (* restored and re-stepped per fault — single-threaded by design;
         build one recording per domain *)
  rc_cycles : int;
  rc_keys : int array; (* post-commit interned signature id per cycle *)
  rc_progress : bool array;
  rc_probes : Engine.probe array array; (* cycle -> edge -> probe *)
  rc_snaps : (int, Packed.snapshot) Hashtbl.t; (* pre-step cycle -> state *)
  rc_final : Packed.snapshot; (* state at the horizon *)
}

let recording_checkpoint = 16

(* Rough recording footprint in bytes, for the driver's memory gate:
   dominated by the per-cycle probe rows (one 7-word block per edge per
   cycle, counting the two boxed tokens). *)
let recording_estimate ~cycles ~edges ~snapshots ~state_words =
  (cycles * edges * 7 * 8) + (snapshots * state_words * 8)

let record ?(checkpoint = recording_checkpoint) baseline ~window_starts =
  let packed = Packed.create ~flavour:baseline.b_flavour baseline.net in
  let mon = Monitor.create baseline.net in
  let n = baseline.b_cycles in
  let keys = Array.make n 0
  and progress = Array.make n false
  and probes = Array.make n [||] in
  let want = Array.make (n + 1) false in
  List.iter (fun w -> if w >= 0 && w < n then want.(w) <- true) window_starts;
  let c = ref 0 in
  while !c < n do
    want.(!c) <- true;
    c := !c + checkpoint
  done;
  let snaps = Hashtbl.create 64 in
  for c = 0 to n - 1 do
    if want.(c) then Hashtbl.replace snaps c (Packed.snapshot packed);
    let pv = Packed.probe_next packed in
    Monitor.observe_probes mon ~cycle:pv.Packed.pv_cycle pv.Packed.pv_probes;
    keys.(c) <- Packed.signature_id packed;
    progress.(c) <- pv.Packed.pv_any_fired || pv.Packed.pv_sink_valid;
    probes.(c) <- pv.Packed.pv_probes
  done;
  let streams = packed_sink_streams packed baseline.net in
  (* Same validity rule as {!replay}: a fault-free run that trips a
     monitor or contradicts the baseline streams cannot stand in for
     anything — callers fall back to [classify_fast]. *)
  if Monitor.violations mon <> [] || streams <> baseline.base_streams then None
  else
    Some
      {
        rc_engine = packed;
        rc_cycles = n;
        rc_keys = keys;
        rc_progress = progress;
        rc_probes = probes;
        rc_snaps = snaps;
        rc_final = Packed.snapshot packed;
      }

let classify_incr baseline rc fault =
  let n = rc.rc_cycles in
  let first = fault.Model.cycle and last = Model.last_cycle fault in
  let w = min (max first 0) n in
  let start =
    if w = n then Some rc.rc_final else Hashtbl.find_opt rc.rc_snaps w
  in
  match start with
  | None -> classify_fast baseline fault (* no snapshot: fall back *)
  | Some start ->
      let t = rc.rc_engine in
      Packed.restore t start;
      let hooks = Some (Model.hooks [ fault ]) in
      let mon = Monitor.create baseline.net in
      let wd = Monitor.Watchdog.create ~quiesce_after:(last + 1) () in
      for c = 0 to w - 1 do
        Monitor.Watchdog.note wd ~cycle:c
          ~signature:(string_of_int rc.rc_keys.(c))
          ~progress:rc.rc_progress.(c)
      done;
      let n_edges = List.length (Net.edges baseline.net) in
      let dirty = Bitset.create n_edges in
      let spliced = ref None in
      let c = ref w in
      while !spliced = None && !c < n do
        let cy = !c in
        Packed.set_fault_hooks t
          (if cy >= first && cy <= last then hooks else None);
        let pv = Packed.probe_next t in
        let live = pv.Packed.pv_probes and recorded = rc.rc_probes.(cy) in
        for e = 0 to n_edges - 1 do
          if (not (Bitset.get dirty e)) && live.(e) <> recorded.(e) then begin
            Bitset.set dirty e;
            (* first divergence of this channel: reconstruct its monitor
               from the recorded (violation-free) history *)
            for c0 = 0 to cy - 1 do
              Monitor.observe_chan mon ~cycle:c0 ~edge:e rc.rc_probes.(c0).(e)
            done
          end
        done;
        Bitset.iter_set dirty (fun e ->
            Monitor.observe_chan mon ~cycle:cy ~edge:e live.(e));
        Monitor.Watchdog.note wd ~cycle:cy
          ~signature:(string_of_int (Packed.signature_id t))
          ~progress:(pv.Packed.pv_any_fired || pv.Packed.pv_sink_valid);
        incr c;
        if !c > last then begin
          match
            if !c = n then Some rc.rc_final
            else Hashtbl.find_opt rc.rc_snaps !c
          with
          | Some s when Packed.converged t s -> spliced := Some s
          | _ -> ()
        end
      done;
      Packed.set_fault_hooks t None;
      let recoveries, streams =
        match !spliced with
        | None ->
            (* ran to the horizon: the live engine holds the whole run *)
            (Packed.recovery_count t, packed_sink_streams t baseline.net)
        | Some s ->
            let c' = Packed.snapshot_cycle s in
            for cy = c' to n - 1 do
              Monitor.Watchdog.note wd ~cycle:cy
                ~signature:(string_of_int rc.rc_keys.(cy))
                ~progress:rc.rc_progress.(cy);
              Bitset.iter_set dirty (fun e ->
                  Monitor.observe_chan mon ~cycle:cy ~edge:e
                    rc.rc_probes.(cy).(e))
            done;
            Packed.splice_sinks t ~at:s ~final:rc.rc_final;
            ( Packed.recovery_count t
              + (Packed.snapshot_recoveries rc.rc_final
                - Packed.snapshot_recoveries s),
              packed_sink_streams t baseline.net )
      in
      bin baseline fault
        ~violations:(Monitor.violations mon)
        ~wd ~recoveries ~streams
