(** Seeded fault-injection campaigns.

    A campaign sweeps fault kind x site x injection cycle over one network
    under one protocol flavour, classifies every injection with
    {!Classify}, and tallies the outcome distribution.  Everything derives
    from [config.seed], so a campaign (and any single injection in it) is
    reproducible from the command line. *)

type config = {
  seed : int;
  kinds : Model.kind list;
  cycles : int;  (** simulation horizon per injection *)
  flavour : Lid.Protocol.flavour;
  max_sites_per_kind : int;  (** [0] = exhaustive over the plane *)
  injections_per_site : int;  (** distinct injection cycles per site *)
}

val default_config : config
(** seed 1, all kinds, 256 cycles, [Optimized], exhaustive sites, one
    injection per site. *)

val faults_of_config : config -> Topology.Network.t -> Model.t list
(** The deterministic fault list a campaign with [config] injects into the
    network — derived entirely from [config.seed].  Exposed so drivers can
    fan the same injections out over several workers (see
    [Campaign.Fault_driver]) and tests can replay single injections. *)

type result = {
  config : config;
  net : Topology.Network.t;
  reports : Classify.report list;
}

val run : ?on_report:(Classify.report -> unit) -> config -> Topology.Network.t -> result
(** [on_report] is called after each injection (progress reporting). *)

val tally : result -> (Model.kind * (Classify.outcome * int) list) list
(** Outcome counts per kind, kinds in [config.kinds] order, all six
    outcome columns present (possibly 0). *)

val worst : result -> Classify.report option
(** The highest-severity report, ties broken by campaign order. *)

val pp_summary : Format.formatter -> result -> unit
(** Render the kind x outcome table plus totals. *)
