(** Seeded fault-injection campaigns.

    A campaign sweeps fault kind x site x injection cycle over one network
    under one protocol flavour, classifies every injection with
    {!Classify}, and tallies the outcome distribution.  Everything derives
    from [config.seed], so a campaign (and any single injection in it) is
    reproducible from the command line. *)

type config = {
  seed : int;
  kinds : Model.kind list;
  cycles : int;  (** simulation horizon per injection *)
  flavour : Lid.Protocol.flavour;
  max_sites_per_kind : int;  (** [0] = exhaustive over the plane *)
  injections_per_site : int;  (** distinct injection cycles per site *)
}

val default_config : config
(** seed 1, all kinds, 256 cycles, [Optimized], exhaustive sites, one
    injection per site. *)

val faults_of_config : config -> Topology.Network.t -> Model.t list
(** The deterministic fault list a campaign with [config] injects into the
    network — derived entirely from [config.seed].  Exposed so drivers can
    fan the same injections out over several workers (see
    [Campaign.Fault_driver]) and tests can replay single injections. *)

type result = {
  config : config;
  net : Topology.Network.t;
  reports : Classify.report list;
}

val run : ?on_report:(Classify.report -> unit) -> config -> Topology.Network.t -> result
(** [on_report] is called after each injection (progress reporting). *)

(** {1 Lane-parallel driving}

    One bit-sliced run of {!Skeleton.Packed_lanes} carries a whole batch
    of injections next to a fault-free reference lane; faults whose lanes
    never diverge are answered from one recorded fault-free replay
    ({!Classify.masked_report}), the rest are re-simulated exactly
    ({!Classify.classify_fast}).  Reports are bit-identical to {!run} in
    the same order — only the work to produce them changes.

    Dynamic networks take the same path: the lane engine keeps per-lane
    go-back-N state for retransmitting stations and per-lane delay
    counters for gated channels, and link-plane faults (flit
    corrupt/drop/duplicate) are injected through the station's own FSM
    per lane. *)

val spec_of_fault : Model.t -> Skeleton.Packed_lanes.spec
(** The boolean shadow of a fault, as the lane engine injects it. *)

val lane_batches : lanes:int -> Model.t list -> Model.t list list
(** Split a campaign's fault list into batches of at most [lanes - 1]
    (lane 0 is the reference), order preserved.  [lanes >= 2]. *)

val classify_lane_batch :
  ?classify:(Model.t -> Classify.report) ->
  Classify.baseline ->
  Classify.replay option ->
  config ->
  Topology.Network.t ->
  lanes:int ->
  Model.t list ->
  Classify.report list
(** Classify one batch through the lane engine (batch length at most
    [lanes - 1]).  With no replay every fault is simulated individually.
    [classify] is how divergent (and replay-less) faults are simulated —
    default {!Classify.classify_fast}; the parallel driver substitutes
    {!Classify.classify_incr} against a per-batch recording.  Exposed so
    parallel drivers ([Campaign.Fault_driver]) can fan batches over
    workers. *)

val run_lanes :
  ?lanes:int ->
  ?on_report:(Classify.report -> unit) ->
  config ->
  Topology.Network.t ->
  result
(** The lane-parallel campaign: same reports as {!run}, same order.
    [lanes] defaults to {!Skeleton.Packed_lanes.max_lanes} (clamped to
    it); [lanes <= 1] falls back to {!run}. *)

val tally : result -> (Model.kind * (Classify.outcome * int) list) list
(** Outcome counts per kind, kinds in [config.kinds] order, all six
    outcome columns present (possibly 0). *)

val worst : result -> Classify.report option
(** The highest-severity report, ties broken by campaign order. *)

val pp_summary : Format.formatter -> result -> unit
(** Render the kind x outcome table plus totals. *)

val json : jobs:int -> lanes_used:int -> result -> string
(** The machine-readable campaign report (the payload of
    [lidtool inject --json] and the serve daemon's [inject] analysis):
    per-kind/per-outcome tallies, total recoveries, the worst injection,
    plus the [jobs] and [lanes_used] the driver actually ran with. *)
